package gpuscale

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	space, err := NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	ks := []*Kernel{
		NewKernel("demo", "prog", "compute").Compute(30000, 100).MustBuild(),
		NewKernel("demo", "prog", "stream").Compute(200, 20).MustBuild(),
	}
	m, err := RunSweep(ks, space, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cs := Classify(m)
	if len(cs) != 2 {
		t.Fatalf("classified %d kernels, want 2", len(cs))
	}
	for _, c := range cs {
		if c.Category < CompCoupled || c.Category > Irregular {
			t.Errorf("%s: category %v out of range", c.Kernel, c.Category)
		}
	}
}

func TestFacadeSimulate(t *testing.T) {
	k := NewKernel("demo", "prog", "k").MustBuild()
	r, err := Simulate(k, ReferenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 {
		t.Fatalf("Throughput = %g", r.Throughput)
	}
	d, err := SimulateDetailed(k, ReferenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Throughput <= 0 {
		t.Fatalf("detailed Throughput = %g", d.Throughput)
	}
}

func TestFacadeCorpus(t *testing.T) {
	if got := len(Corpus()); got != 8 {
		t.Errorf("suites = %d, want 8", got)
	}
	if got := len(CorpusKernels()); got != 267 {
		t.Errorf("kernels = %d, want 267", got)
	}
	if got := StudySpace().Size(); got != 891 {
		t.Errorf("space size = %d, want 891", got)
	}
}

func TestFacadeStudy(t *testing.T) {
	s, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TableR3().String(); !strings.Contains(got, "cu-intolerant") {
		t.Errorf("study table malformed:\n%s", got)
	}
}

func TestFacadeSurfaces(t *testing.T) {
	space, err := NewSpace([]int{4, 44}, []float64{200, 1000}, []float64{150, 1250})
	if err != nil {
		t.Fatal(err)
	}
	ks := []*Kernel{NewKernel("d", "p", "k").MustBuild()}
	m, err := RunSweep(ks, space, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ss := Surfaces(m)
	if len(ss) != 1 || ss[0].Kernel != "p.k" {
		t.Fatalf("Surfaces = %+v", ss)
	}
	c := ClassifySurface(ss[0])
	if c.Kernel != "p.k" {
		t.Fatalf("ClassifySurface kernel = %q", c.Kernel)
	}
}
