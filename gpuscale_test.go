package gpuscale

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	space, err := NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	ks := []*Kernel{
		NewKernel("demo", "prog", "compute").Compute(30000, 100).MustBuild(),
		NewKernel("demo", "prog", "stream").Compute(200, 20).MustBuild(),
	}
	m, err := RunSweep(ks, space, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cs := Classify(m)
	if len(cs) != 2 {
		t.Fatalf("classified %d kernels, want 2", len(cs))
	}
	for _, c := range cs {
		if c.Category < CompCoupled || c.Category > Irregular {
			t.Errorf("%s: category %v out of range", c.Kernel, c.Category)
		}
	}
}

func TestFacadeSimulate(t *testing.T) {
	k := NewKernel("demo", "prog", "k").MustBuild()
	r, err := Simulate(k, ReferenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 {
		t.Fatalf("Throughput = %g", r.Throughput)
	}
	d, err := SimulateDetailed(k, ReferenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Throughput <= 0 {
		t.Fatalf("detailed Throughput = %g", d.Throughput)
	}
}

func TestFacadeCorpus(t *testing.T) {
	if got := len(Corpus()); got != 8 {
		t.Errorf("suites = %d, want 8", got)
	}
	if got := len(CorpusKernels()); got != 267 {
		t.Errorf("kernels = %d, want 267", got)
	}
	if got := StudySpace().Size(); got != 891 {
		t.Errorf("space size = %d, want 891", got)
	}
}

func TestFacadeStudy(t *testing.T) {
	s, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TableR3().String(); !strings.Contains(got, "cu-intolerant") {
		t.Errorf("study table malformed:\n%s", got)
	}
}

func TestFacadeSurfaces(t *testing.T) {
	space, err := NewSpace([]int{4, 44}, []float64{200, 1000}, []float64{150, 1250})
	if err != nil {
		t.Fatal(err)
	}
	ks := []*Kernel{NewKernel("d", "p", "k").MustBuild()}
	m, err := RunSweep(ks, space, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ss := Surfaces(m)
	if len(ss) != 1 || ss[0].Kernel != "p.k" {
		t.Fatalf("Surfaces = %+v", ss)
	}
	c := ClassifySurface(ss[0])
	if c.Kernel != "p.k" {
		t.Fatalf("ClassifySurface kernel = %q", c.Kernel)
	}
}

// TestFaultToleranceAcceptance is the resilience acceptance criterion:
// a full-corpus sweep under a 5% transient fault rate with 3 retries
// completes with zero failed cells at a fixed seed and reproduces the
// fault-free measurements exactly, while the same fault storm with
// retries disabled yields a partial matrix whose holes are marked in
// Status and whose fully covered kernels classify byte-identically to
// a fault-free run.
func TestFaultToleranceAcceptance(t *testing.T) {
	ks := CorpusKernels()
	space := StudySpace()
	clean, err := RunSweep(ks, space, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// With retries: every cell recovers.
	in := FaultInjector{ErrorRate: 0.05, Seed: 4}
	recovered, rep, err := RunSweepContext(context.Background(), ks, space,
		SweepOptions{Sim: in.Wrap(Simulate), Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("retried sweep left %d/%d cells failed; first: %s",
			rep.Failed, rep.Cells, rep.Failures[0])
	}
	if rep.Retries == 0 {
		t.Fatal("5% fault rate consumed no retries; injector inactive?")
	}
	if !reflect.DeepEqual(recovered.Throughput, clean.Throughput) {
		t.Fatal("recovered matrix differs from fault-free sweep")
	}

	// Without retries: graceful degradation to a partial matrix. A
	// lower rate here keeps a mix of fully covered and holed rows —
	// at 5% per cell no 891-cell row would ever survive intact.
	in2 := FaultInjector{ErrorRate: 0.001, Seed: 4}
	partial, rep2, err := RunSweepContext(context.Background(), ks, space,
		SweepOptions{Sim: in2.Wrap(Simulate)})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Failed == 0 {
		t.Fatal("no-retry fault sweep failed nothing; acceptance vacuous")
	}
	marked := 0
	for r := range partial.Kernels {
		for c := range partial.Status[r] {
			if partial.Status[r][c] == CellFailed {
				marked++
			}
		}
	}
	if marked != rep2.Failed {
		t.Fatalf("report says %d failed cells, Status plane marks %d", rep2.Failed, marked)
	}
	cleanCS := Classify(clean)
	partialCS := Classify(partial)
	covered := 0
	for i := range ks {
		if !partial.RowComplete(i) {
			if partialCS[i].Coverage >= 1 {
				t.Fatalf("incomplete kernel %s reports full coverage", ks[i].Name)
			}
			continue
		}
		covered++
		if !reflect.DeepEqual(cleanCS[i], partialCS[i]) {
			t.Fatalf("fully covered kernel %s classified differently under faults:\nclean   %+v\npartial %+v",
				ks[i].Name, cleanCS[i], partialCS[i])
		}
	}
	if covered == 0 || covered == len(ks) {
		t.Fatalf("covered kernels = %d/%d; need a real mix for the property to bite", covered, len(ks))
	}
}
