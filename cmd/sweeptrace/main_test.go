package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
	"gpuscale/internal/sweep"
)

// writeTestTrace runs a small faulty sweep with telemetry attached and
// returns the trace path plus the run report, so assertions compare
// sweeptrace's summary against ground truth.
func writeTestTrace(t *testing.T) (string, *sweep.RunReport) {
	t.Helper()
	space, err := hw.NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	kernels := []*kernel.Kernel{
		kernel.New("s", "p", "alpha").Geometry(512, 256).MustBuild(),
		kernel.New("s", "p", "beta").Geometry(512, 256).Compute(30000, 100).MustBuild(),
	}
	path := filepath.Join(t.TempDir(), "run.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := obs.NewTraceWriter(f)
	tel := sweep.NewTelemetry(nil, tw)
	in := fault.Injector{ErrorRate: 0.2, Seed: 5, OnDecision: fault.Observe(tel.Registry(), tw)}
	opts := sweep.Options{Workers: 4, Sim: in.Wrap(gcn.Simulate), Retries: 8, Observer: tel}
	_, rep, err := sweep.RunContext(context.Background(), kernels, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("fault storm caused no retries; test proves nothing")
	}
	return path, rep
}

func runToString(t *testing.T, path, kernelFilter string, top int, chromeOut string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, []string{path}, kernelFilter, top, chromeOut, false, ""); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestSummaryMatchesReport(t *testing.T) {
	path, rep := writeTestTrace(t)
	out := runToString(t, path, "", 10, "")

	for _, want := range []string{
		"Per-kernel cell latency (us)",
		"Retry hotspots",
		"Cell statuses and injected faults",
		"alpha", "beta",
		"p50", "p99",
		"fault error",
		"status ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// The sweep header line carries the report's totals.
	line, _, _ := strings.Cut(out, "\n")
	for _, frag := range []string{
		"54 cells", "54 ok",
		"attempts", "retries",
	} {
		if !strings.Contains(line, frag) {
			t.Errorf("sweep line missing %q: %s", frag, line)
		}
	}
	if rep.Cells != 54 || rep.OK != 54 {
		t.Fatalf("test sweep changed shape: %+v", rep)
	}
}

func TestKernelFilter(t *testing.T) {
	path, _ := writeTestTrace(t)
	out := runToString(t, path, "alpha", 10, "")
	if !strings.Contains(out, "alpha") {
		t.Fatalf("filtered summary lost the kept kernel:\n%s", out)
	}
	// beta rows are gone from the latency table.
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "beta") {
			t.Fatalf("filter leaked kernel beta: %s", ln)
		}
	}
	if err := run(io.Discard, []string{path}, "no-such-kernel", 10, "", false, ""); err == nil {
		t.Fatal("want error when no events match the filter")
	}
}

func TestTopCapsHotspotTable(t *testing.T) {
	path, rep := writeTestTrace(t)
	out := runToString(t, path, "", 1, "")
	_, rest, ok := strings.Cut(out, "Retry hotspots")
	if !ok {
		t.Fatalf("no hotspot table:\n%s", out)
	}
	table, _, _ := strings.Cut(rest, "\n\n")
	rows := 0
	for _, ln := range strings.Split(table, "\n") {
		if strings.Contains(ln, "@ cu=") {
			rows++
		}
	}
	if rows != 1 {
		t.Fatalf("-top 1 left %d hotspot rows:\n%s", rows, table)
	}
	if !strings.Contains(rest, "retried cells") || rep.Retries == 0 {
		t.Fatalf("hotspot title should state the full retried-cell count:\n%s", rest)
	}
}

func TestChromeExport(t *testing.T) {
	path, _ := writeTestTrace(t)
	chrome := filepath.Join(t.TempDir(), "run.json")
	runToString(t, path, "", 10, chrome)
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var evs []obs.Event
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("chrome output is not a JSON array of events: %v", err)
	}
	raw, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	orig, err := obs.ReadEvents(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(orig) {
		t.Fatalf("chrome array has %d events, trace has %d", len(evs), len(orig))
	}
}

func TestMissingFile(t *testing.T) {
	if err := run(io.Discard, []string{filepath.Join(t.TempDir(), "nope.trace")}, "", 10, "", false, ""); err == nil {
		t.Fatal("want error for missing trace file")
	}
}
