package main

import (
	"strings"
	"testing"

	"gpuscale/internal/obs"
)

// fleetEvents synthesizes one job's multi-process trace the way a
// coordinator + two workers would emit it: a serve job span, lease
// grants (one stolen), worker row spans, leaf cells, and coordinator
// completes — all linked by span parentage under one trace ID.
func fleetEvents(traceID string) []obs.Event {
	ev := func(name, cat, ph, span, parent, proc string, ts, dur float64, args map[string]any) obs.Event {
		return obs.Event{Name: name, Cat: cat, Phase: ph, TS: ts, Dur: dur,
			Trace: traceID, Span: span, Parent: parent, Proc: proc, Args: args}
	}
	return []obs.Event{
		ev("job", "serve", "X", "aaaaaaaaaaaaaaaa", "", "coordinator", 0, 5000,
			map[string]any{"job": "job-1", "state": "complete", "rows_done": 2.0, "client": "cli"}),
		ev("lease", "dist", "i", "b000000000000001", "aaaaaaaaaaaaaaaa", "coordinator", 10, 0,
			map[string]any{"job": "job-1", "row": 0.0, "epoch": 1.0, "worker": "w0"}),
		ev("steal", "dist", "i", "b000000000000002", "aaaaaaaaaaaaaaaa", "coordinator", 20, 0,
			map[string]any{"job": "job-1", "row": 1.0, "epoch": 2.0, "worker": "w1"}),
		ev("row", "dist", "X", "c000000000000001", "b000000000000001", "w0", 30, 1000,
			map[string]any{"job": "job-1", "row": 0.0, "epoch": 1.0, "worker": "w0", "accepted": true}),
		ev("row", "dist", "X", "c000000000000002", "b000000000000002", "w1", 40, 4000,
			map[string]any{"job": "job-1", "row": 1.0, "epoch": 2.0, "worker": "w1", "accepted": true}),
		ev("cell", "sweep", "X", "", "c000000000000002", "w1", 50, 900,
			map[string]any{"kernel": "hotspot", "cus": 64.0, "core_mhz": 1000.0, "mem_mhz": 1750.0, "attempts": 3.0, "status": "ok"}),
		ev("cell", "sweep", "X", "", "c000000000000002", "w1", 60, 100,
			map[string]any{"kernel": "hotspot", "cus": 32.0, "core_mhz": 1000.0, "mem_mhz": 1750.0, "attempts": 1.0, "status": "ok"}),
		ev("complete", "dist", "i", "", "b000000000000001", "coordinator", 1100, 0,
			map[string]any{"job": "job-1", "row": 0.0, "epoch": 1.0, "worker": "w0"}),
		ev("complete", "dist", "i", "", "b000000000000002", "coordinator", 4100, 0,
			map[string]any{"job": "job-1", "row": 1.0, "epoch": 2.0, "worker": "w1"}),
	}
}

func TestStitchExactlyOnceAndCriticalPath(t *testing.T) {
	var sb strings.Builder
	if err := renderStitched(&sb, fleetEvents("0123456789abcdef0123456789abcdef"), ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"trace 0123456789abcdef0123456789abcdef",
		"job job-1: state=complete",
		"every row exactly once",
		"critical path",
		"row 1 on w1",     // the 4000us row bounds wall-clock
		"hotspot @ cu=64", // its slowest cell
		"w0", "w1", "coordinator",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("stitched output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ANOMALIES") || strings.Contains(out, "warning") {
		t.Fatalf("clean trace reported anomalies:\n%s", out)
	}
}

func TestStitchFlagsDuplicateAndMissingRows(t *testing.T) {
	evs := fleetEvents("ffffffffffffffffffffffffffffffff")
	// Duplicate row 0's completion and drop row 1's.
	var mutated []obs.Event
	for _, e := range evs {
		if e.Name == "complete" {
			if num(e.Args, "row") == 1 {
				continue
			}
			mutated = append(mutated, e, e)
			continue
		}
		mutated = append(mutated, e)
	}
	var sb strings.Builder
	if err := renderStitched(&sb, mutated, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ANOMALIES") ||
		!strings.Contains(out, "1 duplicated [0]") ||
		!strings.Contains(out, "1 missing [1]") {
		t.Fatalf("expected duplicate/missing anomalies in:\n%s", out)
	}
}

func TestStitchOrphanWarningWithPartialFleet(t *testing.T) {
	evs := fleetEvents("abcdefabcdefabcdefabcdefabcdefab")
	// Keep only worker w1's events: its row span's parent lease lives in
	// the coordinator file we "forgot" to pass.
	var partial []obs.Event
	for _, e := range evs {
		if e.Proc == "w1" {
			partial = append(partial, e)
		}
	}
	var sb strings.Builder
	if err := renderStitched(&sb, partial, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "warning") {
		t.Fatalf("partial fleet should warn about unresolvable parents:\n%s", sb.String())
	}
}

func TestStitchTraceFilter(t *testing.T) {
	evs := append(fleetEvents("11111111111111111111111111111111"),
		fleetEvents("22222222222222222222222222222222")...)
	var sb strings.Builder
	if err := renderStitched(&sb, evs, "2222"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "trace 1111") || !strings.Contains(out, "trace 2222") {
		t.Fatalf("trace filter leaked the wrong trace:\n%s", out)
	}
	if err := renderStitched(io_discard{}, evs, "no-such"); err == nil {
		t.Fatal("expected error for unmatched trace filter")
	}
}

type io_discard struct{}

func (io_discard) Write(p []byte) (int, error) { return len(p), nil }

// TestStitchVerifiedAndQuarantinedColumns: coordinator-side verified
// completes and quarantine events land in the per-worker table — the
// byzantine story must be readable straight off a stitched trace,
// including a quarantined worker that contributed no row span at all.
func TestStitchVerifiedAndQuarantinedColumns(t *testing.T) {
	trace := "1123456789abcdef0123456789abcdef"
	evs := fleetEvents(trace)
	// Mark row 1's complete as settled by independent verification.
	for i := range evs {
		if evs[i].Name == "complete" && num(evs[i].Args, "row") == 1 {
			evs[i].Args["verified"] = true
		}
	}
	evs = append(evs, obs.Event{Name: "quarantine", Cat: "dist", Phase: "i",
		Trace: trace, Proc: "coordinator", TS: 4200,
		Args: map[string]any{"job": "job-1", "row": 0.0, "worker": "liar"}})

	var sb strings.Builder
	if err := renderStitched(&sb, evs, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"verified", "quarantined", "liar", "YES"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stitched output missing %q:\n%s", want, out)
		}
	}
	// The verified count sits on w1's table row; w0's stays 0, and the
	// quarantine marker sits on liar's row only.
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "w1"):
			if !strings.Contains(line, "1") {
				t.Fatalf("w1's row should count 1 verified complete: %q", line)
			}
			if strings.Contains(line, "YES") {
				t.Fatalf("w1 must not be marked quarantined: %q", line)
			}
		case strings.Contains(line, "liar"):
			if !strings.Contains(line, "YES") {
				t.Fatalf("liar's row should carry the quarantine marker: %q", line)
			}
		}
	}
}

// TestStitchTermTimeline: a failover trace — term 1 granting row 0,
// term 2 (a promoted standby) granting row 1, plus one stale-term
// complete caught by the fence — renders as a term table attributing
// each grant to the primary that made it. A healthy single-term trace
// must not be flagged, and two coordinators on one term must.
func TestStitchTermTimeline(t *testing.T) {
	trace := "2223456789abcdef0123456789abcdef"
	evs := fleetEvents(trace)
	for i := range evs {
		switch evs[i].Name {
		case "lease":
			evs[i].Args["term"] = 1.0
		case "steal":
			evs[i].Args["term"] = 2.0
		}
	}
	term := func(n float64, coord string, ts float64) obs.Event {
		return obs.Event{Name: "term", Cat: "dist", Phase: "i", Trace: trace,
			Proc: coord, TS: ts,
			Args: map[string]any{"job": "job-1", "term": n, "coordinator": coord}}
	}
	evs = append(evs,
		term(1, "primary-1", 5),
		term(2, "standby-1", 15),
		// The deposed primary's worker retried its complete against the
		// new primary with the old term and was fenced.
		obs.Event{Name: "fence", Cat: "dist", Phase: "i", Trace: trace,
			Proc: "standby-1", TS: 4150,
			Args: map[string]any{"job": "job-1", "row": 0.0, "worker": "w0",
				"term": 1.0, "current_term": 2.0}},
	)

	var sb strings.Builder
	if err := renderStitched(&sb, evs, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Coordinator terms on this trace",
		"primary-1", "standby-1",
		"failovers: 1 (1 stale-term completes fenced)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("term timeline missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "two live primaries") {
		t.Fatalf("clean failover flagged as split-brain:\n%s", out)
	}

	// Same term asserted by two coordinators = split brain, flagged.
	split := append(fleetEvents("3333456789abcdef0123456789abcdef"),
		term(1, "primary-1", 5), term(1, "primary-2", 6))
	for i := range split {
		split[i].Trace = "3333456789abcdef0123456789abcdef"
	}
	sb.Reset()
	if err := renderStitched(&sb, split, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "two live primaries") {
		t.Fatalf("split-brain trace not flagged:\n%s", sb.String())
	}

	// A pre-HA trace renders no term table at all.
	sb.Reset()
	if err := renderStitched(&sb, fleetEvents("4443456789abcdef0123456789abcdef"), ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Coordinator terms") {
		t.Fatalf("pre-HA trace grew a term table:\n%s", sb.String())
	}
}
