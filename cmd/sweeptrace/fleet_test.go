package main

// Fleet breakdown: sweeptrace over coordinator + worker traces from a
// real (in-process) distributed sweep shows per-worker rows, leases
// and renewal latency, and merging multiple trace files works.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuscale/internal/dist"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
)

// writeFleetTraces runs a 2-worker distributed sweep with every party
// tracing, and returns the coordinator's and workers' trace paths.
func writeFleetTraces(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	space, err := hw.NewSpace([]int{4, 24}, []float64{200, 1000}, []float64{150, 1250})
	if err != nil {
		t.Fatal(err)
	}
	var ks []*kernel.Kernel
	for i := 0; i < 4; i++ {
		ks = append(ks, kernel.New("s", "p", fmt.Sprintf("k%d", i)).Geometry(256+64*i, 256).MustBuild())
	}
	job := dist.Job{Name: "trace", Kernels: ks, Space: space, Seed: 11, NoiseStdDev: 0.05,
		TTL: 5 * time.Second}

	var paths []string
	var files []*os.File
	var writers []*obs.TraceWriter
	newTrace := func(name string) *obs.TraceWriter {
		p := filepath.Join(dir, name+".trace")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		tw := obs.NewTraceWriter(f)
		paths = append(paths, p)
		files = append(files, f)
		writers = append(writers, tw)
		return tw
	}

	coord, err := dist.NewCoordinator(dir+"/coord", dist.CoordinatorOptions{Trace: newTrace("coord")})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.AddJob(job); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("w%d", i)
		w, err := dist.NewWorker(dist.WorkerOptions{
			Name: name, Coordinator: srv.URL, Dir: dir + "/" + name,
			Client:       &http.Client{Timeout: 10 * time.Second},
			SweepWorkers: 2, IdleSleep: 2 * time.Millisecond,
			Trace: newTrace(name),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer w.Close()
			w.Run(ctx)
		}()
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st, ok := coord.Status(job.Name); ok && st.Complete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	for i, tw := range writers {
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := files[i].Close(); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

func TestFleetBreakdown(t *testing.T) {
	paths := writeFleetTraces(t)
	var sb strings.Builder
	if err := run(&sb, paths, "", 10, "", false, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fleet workers") {
		t.Fatalf("merged fleet trace has no fleet table:\n%s", out)
	}
	for _, want := range []string{"w0", "w1", "rows", "leases", "steals", "fenced", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet table missing %q:\n%s", want, out)
		}
	}
	// Rows must sum to the job's kernel count across workers: every
	// row completed exactly once, and the table accounts for all of it.
	_, rest, ok := strings.Cut(out, "Fleet workers")
	if !ok {
		t.Fatal("no fleet section")
	}
	table, _, _ := strings.Cut(rest, "\n\n")
	total := 0
	for _, ln := range strings.Split(table, "\n") {
		f := strings.Fields(ln)
		if len(f) >= 2 && strings.HasPrefix(f[0], "w") && len(f[0]) == 2 {
			var rows int
			if _, err := fmt.Sscan(f[1], &rows); err == nil {
				total += rows
			}
		}
	}
	if total != 4 {
		t.Fatalf("fleet table accounts for %d rows, want 4:\n%s", total, table)
	}

	// A coordinator-only trace still produces the table (rows from
	// accepted completes, no renewal data needed).
	sb.Reset()
	if err := run(&sb, paths[:1], "", 10, "", false, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fleet workers") {
		t.Fatalf("coordinator-only trace has no fleet table:\n%s", sb.String())
	}
}
