// Command sweeptrace summarizes a sweep trace written by
// `gpusweep -trace-out` or `gpuscaled -trace-out`: per-kernel
// cell-latency percentiles, retry hotspots (the cells that burned the
// most attempts), a breakdown of injected fault kinds, and — when the
// trace carries distributed-sweep events — a per-worker fleet table
// (rows completed, leases stolen, stale completes fenced, renewal
// latency percentiles) so stragglers are diagnosable from the trace
// alone. Several trace files can be summarized together, e.g. a
// coordinator's plus each worker's. It can also re-wrap the JSONL
// stream into a JSON array loadable by Chrome-compatible trace
// viewers (chrome://tracing, Perfetto).
//
// Usage:
//
//	sweeptrace run.trace                  # summary tables
//	sweeptrace -top 5 run.trace           # cap the hotspot listing
//	sweeptrace -kernel graphana run.trace # restrict to matching kernels
//	sweeptrace -chrome run.json run.trace # convert for trace viewers
//	sweeptrace coord.trace w0.trace w1.trace  # merge a fleet's traces
//	gpusweep ... -trace-out - | sweeptrace -   # not supported: trace
//	                                      # files only, "-" reads stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gpuscale/internal/obs"
	"gpuscale/internal/report"
	"gpuscale/internal/stats"
)

func main() {
	top := flag.Int("top", 10, "rows to show in the retry-hotspot table")
	kernelFilter := flag.String("kernel", "", "only summarize kernels whose name contains this substring")
	chromeOut := flag.String("chrome", "", "also write the events as a Chrome-viewer JSON array to this file")
	stitchView := flag.Bool("stitch", false, "stitch multi-process traces by trace ID: per-job workers, exactly-once row accounting, critical path")
	traceFilter := flag.String("trace", "", "with -stitch, only render traces whose ID starts with this prefix")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: sweeptrace [-top n] [-kernel substr] [-chrome out.json] [-stitch [-trace id]] <trace.jsonl ... | ->")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Args(), *kernelFilter, *top, *chromeOut, *stitchView, *traceFilter); err != nil {
		fmt.Fprintln(os.Stderr, "sweeptrace:", err)
		os.Exit(1)
	}
}

func readTrace(path string) ([]obs.Event, error) {
	if path == "-" {
		return obs.ReadEvents(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := obs.ReadEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}

func run(w io.Writer, paths []string, kernelFilter string, top int, chromeOut string, stitchView bool, traceFilter string) error {
	var evs []obs.Event
	for _, path := range paths {
		e, err := readTrace(path)
		if err != nil {
			return err
		}
		evs = append(evs, e...)
	}
	if chromeOut != "" {
		if err := writeChrome(chromeOut, evs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", chromeOut)
	}
	if stitchView {
		return renderStitched(w, evs, traceFilter)
	}
	s := summarize(evs, kernelFilter)
	if kernelFilter != "" && len(s.perKernel) == 0 {
		return fmt.Errorf("no cell spans match kernel filter %q", kernelFilter)
	}
	return s.render(w, top)
}

// cellID names one (kernel, configuration) cell the way CellFailure
// does, so hotspot rows read like failure dumps.
type cellID struct {
	kernel string
	cus    int
	core   float64
	mem    float64
}

func (c cellID) String() string {
	return fmt.Sprintf("%s @ cu=%d core=%g mem=%g", c.kernel, c.cus, c.core, c.mem)
}

// workerStats aggregates one fleet worker's distributed-sweep events
// (category "dist" — emitted by the coordinator and the workers).
type workerStats struct {
	// leases and steals count grants to this worker; a steal is a grant
	// of another worker's expired lease.
	leases, steals int
	// fenced counts this worker's completes rejected as stale-epoch —
	// each one is a row it computed for nothing.
	fenced int
	// completes counts coordinator-side accepted completes; rows counts
	// worker-side accepted row spans. A merged coordinator+worker trace
	// sees both for the same row, so rowsDone() takes the max.
	completes, rows int
	// renews holds renewal round-trip durations in microseconds.
	renews []float64
}

func (w *workerStats) rowsDone() int {
	if w.completes > w.rows {
		return w.completes
	}
	return w.rows
}

// summary aggregates one trace.
type summary struct {
	// perKernel holds cell-span durations (in microseconds) by kernel.
	perKernel map[string][]float64
	// attempts holds per-cell attempt totals from cell spans.
	attempts map[cellID]int
	// statuses counts cell terminal statuses.
	statuses map[string]int
	// faults counts injected faults by kind.
	faults map[string]int
	// breakerTrips counts circuit-breaker quarantine events.
	breakerTrips int
	// fleet holds per-worker distributed-sweep stats, when present.
	fleet map[string]*workerStats
	// sweep is the whole-sweep span, if present.
	sweep *obs.Event
	// events is the total event count (post-filter).
	events int
}

// num pulls a float out of span args (JSON numbers decode as float64).
func num(args map[string]any, key string) float64 {
	v, _ := args[key].(float64)
	return v
}

func str(args map[string]any, key string) string {
	v, _ := args[key].(string)
	return v
}

func summarize(evs []obs.Event, kernelFilter string) *summary {
	s := &summary{
		perKernel: map[string][]float64{},
		attempts:  map[cellID]int{},
		statuses:  map[string]int{},
		faults:    map[string]int{},
		fleet:     map[string]*workerStats{},
	}
	worker := func(e obs.Event) *workerStats {
		name := str(e.Args, "worker")
		if name == "" {
			name = "(unnamed)"
		}
		ws := s.fleet[name]
		if ws == nil {
			ws = &workerStats{}
			s.fleet[name] = ws
		}
		return ws
	}
	for i := range evs {
		e := evs[i]
		kernel := str(e.Args, "kernel")
		// Fleet events carry no kernel; they are row-grained, so the
		// kernel filter does not apply to them.
		if kernelFilter != "" && e.Name != "sweep" && e.Cat != "dist" && !strings.Contains(kernel, kernelFilter) {
			continue
		}
		s.events++
		switch e.Name {
		case "cell":
			s.perKernel[kernel] = append(s.perKernel[kernel], e.Dur)
			id := cellID{kernel: kernel, cus: int(num(e.Args, "cus")),
				core: num(e.Args, "core_mhz"), mem: num(e.Args, "mem_mhz")}
			s.attempts[id] = int(num(e.Args, "attempts"))
			s.statuses[str(e.Args, "status")]++
		case "fault":
			s.faults[str(e.Args, "kind")]++
		case "breaker":
			s.breakerTrips++
		case "sweep":
			s.sweep = &evs[i]
		case "lease":
			worker(e).leases++
		case "steal":
			ws := worker(e)
			ws.leases++
			ws.steals++
		case "fence":
			worker(e).fenced++
		case "complete":
			worker(e).completes++
		case "renew":
			worker(e).renews = append(worker(e).renews, e.Dur)
		case "row":
			if ok, _ := e.Args["accepted"].(bool); ok {
				worker(e).rows++
			}
		}
	}
	return s
}

func (s *summary) render(w io.Writer, top int) error {
	if s.events == 0 {
		return fmt.Errorf("no matching events in trace")
	}
	if s.sweep != nil {
		a := s.sweep.Args
		fmt.Fprintf(w, "sweep: %.0f cells (%.0f ok, %.0f failed, %.0f canceled, %.0f stalled, %.0f quarantined, %.0f reused), %.0f attempts, %.0f retries, %.0f breaker trips, wall %.1fms\n\n",
			num(a, "cells"), num(a, "ok"), num(a, "failed"), num(a, "canceled"),
			num(a, "stalled"), num(a, "quarantined"),
			num(a, "skipped"), num(a, "attempts"), num(a, "retries"),
			num(a, "breaker_trips"), s.sweep.Dur/1000)
	}

	// Per-kernel latency percentiles, slowest p99 first.
	lat := &report.Table{
		Title:  "Per-kernel cell latency (us)",
		Header: []string{"kernel", "cells", "p50", "p90", "p99", "max"},
	}
	kernels := make([]string, 0, len(s.perKernel))
	for k := range s.perKernel {
		kernels = append(kernels, k)
	}
	p99 := map[string]float64{}
	for k, ds := range s.perKernel {
		p99[k] = stats.Quantile(ds, 0.99)
	}
	sort.Slice(kernels, func(i, j int) bool {
		if p99[kernels[i]] != p99[kernels[j]] {
			return p99[kernels[i]] > p99[kernels[j]]
		}
		return kernels[i] < kernels[j]
	})
	for _, k := range kernels {
		ds := s.perKernel[k]
		mx := 0.0
		for _, d := range ds {
			if d > mx {
				mx = d
			}
		}
		lat.AddRow(k, len(ds),
			report.FormatFloat(stats.Quantile(ds, 0.5)),
			report.FormatFloat(stats.Quantile(ds, 0.9)),
			report.FormatFloat(p99[k]),
			report.FormatFloat(mx))
	}
	if err := lat.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Retry hotspots: cells that consumed more than one attempt.
	type hot struct {
		id cellID
		n  int
	}
	var hots []hot
	for id, n := range s.attempts {
		if n > 1 {
			hots = append(hots, hot{id, n})
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].n != hots[j].n {
			return hots[i].n > hots[j].n
		}
		return hots[i].id.String() < hots[j].id.String()
	})
	ht := &report.Table{
		Title:  fmt.Sprintf("Retry hotspots (top %d of %d retried cells)", top, len(hots)),
		Header: []string{"cell", "attempts"},
	}
	for i, h := range hots {
		if i == top {
			break
		}
		ht.AddRow(h.id.String(), h.n)
	}
	if len(hots) == 0 {
		ht.AddRow("(no cell needed a retry)", "")
	}
	if err := ht.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Fleet breakdown: only distributed traces have one. Slowest
	// renewal p99 first — that is the straggler diagnostic.
	if len(s.fleet) > 0 {
		wt := &report.Table{
			Title:  "Fleet workers (renewal latency in us)",
			Header: []string{"worker", "rows", "leases", "steals", "fenced", "renews", "p50", "p90", "p99"},
		}
		names := make([]string, 0, len(s.fleet))
		for n := range s.fleet {
			names = append(names, n)
		}
		renewP99 := map[string]float64{}
		for n, ws := range s.fleet {
			renewP99[n] = -1 // sorts renew-less workers last, NaN-free
			if len(ws.renews) > 0 {
				renewP99[n] = stats.Quantile(ws.renews, 0.99)
			}
		}
		sort.Slice(names, func(i, j int) bool {
			if renewP99[names[i]] != renewP99[names[j]] {
				return renewP99[names[i]] > renewP99[names[j]]
			}
			return names[i] < names[j]
		})
		for _, n := range names {
			ws := s.fleet[n]
			p50, p90, p99 := "-", "-", "-"
			if len(ws.renews) > 0 {
				p50 = report.FormatFloat(stats.Quantile(ws.renews, 0.5))
				p90 = report.FormatFloat(stats.Quantile(ws.renews, 0.9))
				p99 = report.FormatFloat(renewP99[n])
			}
			wt.AddRow(n, ws.rowsDone(), ws.leases, ws.steals, ws.fenced, len(ws.renews), p50, p90, p99)
		}
		if err := wt.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	// Cell statuses and injected-fault kinds.
	ft := &report.Table{
		Title:  "Cell statuses and injected faults",
		Header: []string{"bucket", "count"},
	}
	for _, k := range sortedKeys(s.statuses) {
		ft.AddRow("status "+k, s.statuses[k])
	}
	for _, k := range sortedKeys(s.faults) {
		ft.AddRow("fault "+k, s.faults[k])
	}
	if len(s.faults) == 0 {
		ft.AddRow("fault (none)", 0)
	}
	if s.breakerTrips > 0 {
		ft.AddRow("breaker trips", s.breakerTrips)
	}
	return ft.Render(w)
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// writeChrome wraps the JSONL events into the JSON array form Chrome
// trace viewers load directly.
func writeChrome(path string, evs []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(evs); err != nil {
		return err
	}
	return f.Close()
}
