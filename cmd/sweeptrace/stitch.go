package main

import (
	"fmt"
	"io"
	"sort"

	"gpuscale/internal/obs"
	"gpuscale/internal/report"
)

// stitched is one distributed trace reassembled from any number of
// per-process trace files: the serve-side job span, the coordinator's
// lease grants, the workers' row spans, and the leaf cell events, all
// linked by span parentage. The stitcher is deliberately tolerant —
// a partial fleet (a missing worker file, a crashed process) still
// renders, with the gaps called out instead of papered over.
type stitched struct {
	id string
	// jobs holds serve job spans, one per run attempt (a resumed job
	// emits a span per attempt under the same trace ID).
	jobs []obs.Event
	// leases maps lease span ID -> the coordinator's grant instant
	// ("lease" or "steal"). Row spans point here via Parent.
	leases map[string]obs.Event
	// rows holds worker row spans (ph "X", category "dist").
	rows []obs.Event
	// cells maps a row span ID -> that row's cell events.
	cells map[string][]obs.Event
	// completes counts coordinator-accepted completions per row index;
	// exactly-once accounting checks every value is 1.
	completes map[int]int
	// leasedRows is the set of row indexes ever granted.
	leasedRows map[int]bool
	steals     int
	fences     int
	// verifiedBy counts coordinator-accepted completes per worker that
	// were settled by independent digest agreement; quarantinedW is the
	// set of workers the coordinator fenced fleet-wide on this trace.
	verifiedBy   map[string]int
	quarantinedW map[string]bool
	// termCoord maps each coordinator term observed on the trace to the
	// coordinator IDs that asserted it (more than one ID per term means
	// two live primaries — an HA invariant violation worth rendering).
	// grantsByTerm counts lease/steal grants made under each term, and
	// termFences counts completes rejected for carrying a stale term.
	termCoord    map[int]map[string]bool
	grantsByTerm map[int]int
	termFences   int
	// procs is the set of process names that contributed events.
	procs map[string]bool
	// spans is every span ID minted on this trace; used to detect
	// orphaned events whose Parent resolves to no known span.
	spans   map[string]bool
	orphans int
	events  int
}

// stitch groups trace-carrying events by trace ID and reassembles
// each into a stitched view. Events without a trace ID (single-process
// sweeps, pre-trace files) are ignored here — the flat summary covers
// them.
func stitch(evs []obs.Event) []*stitched {
	byTrace := map[string]*stitched{}
	get := func(id string) *stitched {
		st := byTrace[id]
		if st == nil {
			st = &stitched{
				id:           id,
				leases:       map[string]obs.Event{},
				cells:        map[string][]obs.Event{},
				completes:    map[int]int{},
				leasedRows:   map[int]bool{},
				procs:        map[string]bool{},
				spans:        map[string]bool{},
				verifiedBy:   map[string]int{},
				quarantinedW: map[string]bool{},
				termCoord:    map[int]map[string]bool{},
				grantsByTerm: map[int]int{},
			}
			byTrace[id] = st
		}
		return st
	}
	// First pass: collect spans so orphan detection on the second pass
	// sees the full ID set regardless of file order.
	for _, e := range evs {
		if e.Trace == "" {
			continue
		}
		st := get(e.Trace)
		st.events++
		if e.Span != "" {
			st.spans[e.Span] = true
		}
		if e.Proc != "" {
			st.procs[e.Proc] = true
		}
	}
	for _, e := range evs {
		if e.Trace == "" {
			continue
		}
		st := byTrace[e.Trace]
		switch e.Name {
		case "job":
			st.jobs = append(st.jobs, e)
		case "lease", "steal":
			if e.Span != "" {
				st.leases[e.Span] = e
			}
			st.leasedRows[int(num(e.Args, "row"))] = true
			if e.Name == "steal" {
				st.steals++
			}
			if _, ok := e.Args["term"]; ok {
				st.grantsByTerm[int(num(e.Args, "term"))]++
			}
		case "term":
			t := int(num(e.Args, "term"))
			if st.termCoord[t] == nil {
				st.termCoord[t] = map[string]bool{}
			}
			st.termCoord[t][str(e.Args, "coordinator")] = true
		case "row":
			// Only the dist-layer row span: the sweep executor emits its
			// own "row" leaf event (category "sweep") under the same name.
			if e.Cat == "dist" {
				st.rows = append(st.rows, e)
			}
		case "cell":
			if e.Parent != "" {
				st.cells[e.Parent] = append(st.cells[e.Parent], e)
			}
		case "complete":
			st.completes[int(num(e.Args, "row"))]++
			if ok, _ := e.Args["verified"].(bool); ok {
				st.verifiedBy[str(e.Args, "worker")]++
			}
		case "fence":
			st.fences++
			// Term fences carry current_term; epoch fences carry current.
			if _, ok := e.Args["current_term"]; ok {
				st.termFences++
			}
		case "quarantine":
			st.quarantinedW[str(e.Args, "worker")] = true
		}
		// The job span's parent is the submitting client's span, which
		// lives outside the fleet's files — never an orphan.
		if e.Parent != "" && e.Name != "job" && !st.spans[e.Parent] {
			st.orphans++
		}
	}
	out := make([]*stitched, 0, len(byTrace))
	for _, st := range byTrace {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// end returns a span's finishing timestamp in microseconds.
func end(e obs.Event) float64 { return e.TS + e.Dur }

// accepted reports whether a row span's completion was accepted by the
// coordinator (not fenced as a stale epoch).
func accepted(e obs.Event) bool {
	ok, _ := e.Args["accepted"].(bool)
	return ok
}

// render prints one stitched trace: the job header, per-worker
// contribution, exactly-once row accounting, and the critical path —
// the chain job -> latest-finishing row -> slowest cell that bounded
// the job's wall-clock, named by worker, lease and epoch.
func (st *stitched) render(w io.Writer) error {
	fmt.Fprintf(w, "trace %s: %d events from %d processes (%s)\n",
		st.id, st.events, len(st.procs), joinSorted(st.procs))
	for _, j := range st.jobs {
		fmt.Fprintf(w, "  job %s: state=%s rows_done=%.0f wall=%.1fms client=%s proc=%s\n",
			str(j.Args, "job"), str(j.Args, "state"), num(j.Args, "rows_done"),
			j.Dur/1000, str(j.Args, "client"), j.Proc)
	}

	// Per-worker contribution, assembled from lease grants and row
	// spans. Busy time is the sum of the worker's accepted row spans.
	type contrib struct {
		leases, steals, rows, fenced int
		busyUS                       float64
	}
	workers := map[string]*contrib{}
	wc := func(name string) *contrib {
		if name == "" {
			name = "(unnamed)"
		}
		c := workers[name]
		if c == nil {
			c = &contrib{}
			workers[name] = c
		}
		return c
	}
	for _, l := range st.leases {
		c := wc(str(l.Args, "worker"))
		c.leases++
		if l.Name == "steal" {
			c.steals++
		}
	}
	for _, r := range st.rows {
		c := wc(str(r.Args, "worker"))
		if accepted(r) {
			c.rows++
			c.busyUS += r.Dur
		} else {
			c.fenced++
		}
	}
	if len(workers) > 0 {
		// Quarantined workers may have no lease or row span at all on a
		// partial file set — still list them, the fence is the story.
		for n := range st.quarantinedW {
			wc(n)
		}
		wt := &report.Table{
			Title:  "Workers on this trace",
			Header: []string{"worker", "leases", "steals", "rows", "verified", "fenced", "quarantined", "busy(ms)"},
		}
		names := make([]string, 0, len(workers))
		for n := range workers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			c := workers[n]
			q := ""
			if st.quarantinedW[n] {
				q = "YES"
			}
			wt.AddRow(n, c.leases, c.steals, c.rows, st.verifiedBy[n], c.fenced, q,
				report.FormatFloat(c.busyUS/1000))
		}
		if err := wt.Render(w); err != nil {
			return err
		}
	}

	if err := st.renderTerms(w); err != nil {
		return err
	}
	st.renderAccounting(w)
	st.renderCriticalPath(w)
	if st.orphans > 0 {
		fmt.Fprintf(w, "  warning: %d events reference spans missing from the given files (add the other processes' traces)\n", st.orphans)
	}
	fmt.Fprintln(w)
	return nil
}

// renderTerms prints the failover story: which coordinator asserted
// each term, how many grants it made under it, and how many stale
// completes the term fence caught. Two coordinator IDs on one term is
// the no-two-live-primaries invariant failing and is flagged as such.
// Pre-HA traces (no term events, no term args) render nothing.
func (st *stitched) renderTerms(w io.Writer) error {
	terms := map[int]bool{}
	for t := range st.termCoord {
		terms[t] = true
	}
	for t := range st.grantsByTerm {
		terms[t] = true
	}
	if len(terms) == 0 {
		return nil
	}
	order := make([]int, 0, len(terms))
	for t := range terms {
		order = append(order, t)
	}
	sort.Ints(order)
	tt := &report.Table{
		Title:  "Coordinator terms on this trace",
		Header: []string{"term", "coordinator", "grants"},
	}
	split := false
	for _, t := range order {
		who := joinSorted(st.termCoord[t])
		if who == "" {
			who = "(no term event — add the coordinator's trace)"
		}
		if len(st.termCoord[t]) > 1 {
			split = true
		}
		tt.AddRow(t, who, st.grantsByTerm[t])
	}
	if err := tt.Render(w); err != nil {
		return err
	}
	if split {
		fmt.Fprintln(w, "  ANOMALY: multiple coordinators asserted the same term — two live primaries")
	}
	if len(order) > 1 {
		fmt.Fprintf(w, "  failovers: %d (%d stale-term completes fenced)\n", len(order)-1, st.termFences)
	}
	return nil
}

// renderAccounting checks exactly-once completion: every leased row
// must be accepted by the coordinator exactly once. Duplicates mean a
// fencing hole; missing rows mean lost work — both are protocol bugs
// worth shouting about, so anomalies are listed row by row.
func (st *stitched) renderAccounting(w io.Writer) {
	if len(st.leasedRows) == 0 && len(st.completes) == 0 {
		return
	}
	var dup, missing []int
	for r := range st.leasedRows {
		switch n := st.completes[r]; {
		case n == 0:
			missing = append(missing, r)
		case n > 1:
			dup = append(dup, r)
		}
	}
	sort.Ints(dup)
	sort.Ints(missing)
	done := 0
	for _, n := range st.completes {
		if n > 0 {
			done++
		}
	}
	switch {
	case len(dup) == 0 && len(missing) == 0:
		fmt.Fprintf(w, "  rows: %d leased, %d completed — every row exactly once", len(st.leasedRows), done)
	default:
		fmt.Fprintf(w, "  rows: %d leased, %d completed — ANOMALIES: %d duplicated %v, %d missing %v",
			len(st.leasedRows), done, len(dup), dup, len(missing), missing)
	}
	if st.fences > 0 {
		fmt.Fprintf(w, " (%d stale completes fenced)", st.fences)
	}
	fmt.Fprintln(w)
}

// renderCriticalPath names what bounded wall-clock: the accepted row
// span that finished last, the lease it ran under, and the slowest
// cell inside it. This is the "why was this job slow" answer — the
// straggler worker and the straggler cell, read straight off the
// stitched trace.
func (st *stitched) renderCriticalPath(w io.Writer) {
	var last *obs.Event
	for i := range st.rows {
		r := &st.rows[i]
		if !accepted(*r) {
			continue
		}
		if last == nil || end(*r) > end(*last) {
			last = r
		}
	}
	if last == nil {
		return
	}
	fmt.Fprintln(w, "  critical path (latest-finishing accepted row):")
	lease := "?"
	epoch := num(last.Args, "epoch")
	if l, ok := st.leases[last.Parent]; ok && l.Span != "" {
		lease = l.Span
	}
	fmt.Fprintf(w, "    row %.0f on %s: %.1fms (lease %s epoch %.0f, proc %s)\n",
		num(last.Args, "row"), str(last.Args, "worker"), last.Dur/1000,
		lease, epoch, last.Proc)
	var slow *obs.Event
	cells := st.cells[last.Span]
	for i := range cells {
		if slow == nil || cells[i].Dur > slow.Dur {
			slow = &cells[i]
		}
	}
	if slow != nil {
		fmt.Fprintf(w, "    slowest cell: %s @ cu=%.0f core=%g mem=%g — %.1fus, %.0f attempts (of %d cells in the row)\n",
			str(slow.Args, "kernel"), num(slow.Args, "cus"),
			num(slow.Args, "core_mhz"), num(slow.Args, "mem_mhz"),
			slow.Dur, num(slow.Args, "attempts"), len(cells))
	}
}

func joinSorted(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// renderStitched prints the stitched multi-process view for every
// trace ID found in the merged event stream, optionally restricted to
// IDs with a given prefix.
func renderStitched(w io.Writer, evs []obs.Event, traceFilter string) error {
	traces := stitch(evs)
	if traceFilter != "" {
		kept := traces[:0]
		for _, st := range traces {
			if len(st.id) >= len(traceFilter) && st.id[:len(traceFilter)] == traceFilter {
				kept = append(kept, st)
			}
		}
		traces = kept
	}
	if len(traces) == 0 {
		return fmt.Errorf("no distributed traces found (events carry no trace IDs%s)",
			filterNote(traceFilter))
	}
	for _, st := range traces {
		if err := st.render(w); err != nil {
			return err
		}
	}
	return nil
}

func filterNote(f string) string {
	if f == "" {
		return ""
	}
	return fmt.Sprintf(" matching %q", f)
}
