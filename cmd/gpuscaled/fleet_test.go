package main

// End-to-end fleet test: one run() in -coordinator mode, two run()s in
// -worker mode joined to it, a job submitted over real HTTP and
// completed entirely by leased rows, then everything shuts down
// cleanly.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestDaemonFleetMode(t *testing.T) {
	dir := t.TempDir()
	co := cliOptions{
		addr:        "127.0.0.1:0",
		stateDir:    dir + "/coord",
		runners:     1,
		workers:     2,
		maxJobs:     4,
		burst:       4,
		drainGrace:  2 * time.Second,
		coordinator: true,
		leaseTTL:    5 * time.Second,
		traceOut:    dir + "/fleet.trace",
	}
	ready := make(chan string, 1)
	co.ready = func(baseURL string) { ready <- baseURL }

	ctx, cancel := context.WithCancel(context.Background())
	coordErr := make(chan error, 1)
	go func() { coordErr <- run(ctx, co) }()

	var base string
	select {
	case base = <-ready:
	case err := <-coordErr:
		t.Fatalf("coordinator exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never became ready")
	}

	// Two workers join the fleet under their own lifecycle.
	wctx, wcancel := context.WithCancel(context.Background())
	workerErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wo := cliOptions{
			worker:     true,
			join:       base,
			stateDir:   dir + "/w" + string(rune('0'+i)),
			workers:    2,
			workerName: "w" + string(rune('0'+i)),
		}
		go func() { workerErr <- run(wctx, wo) }()
	}

	// Submit a job; only the fleet can complete it — the coordinator
	// process runs no local executor in -coordinator mode.
	body := `{"suite":"microbench","space":{"cus":[4,24],"core_mhz":[200,1000],"mem_mhz":[150,1250]}}`
	res, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit = %d %+v", res.StatusCode, st)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		res, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if st.State == "complete" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("fleet job settled %q", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet job never completed; last state %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The matrix downloads as usual — clients cannot tell a fleet ran it.
	res, err = http.Get(base + "/v1/jobs/" + st.ID + "/matrix")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.HasPrefix(string(csv), "kernel,") {
		t.Fatalf("matrix = %d %.40q", res.StatusCode, csv)
	}

	// Lease-protocol metrics ride the shared /metrics endpoint.
	res, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(metrics), "dist_rows_completed_total") {
		t.Fatalf("metrics missing lease counters:\n%.400s", metrics)
	}

	// Workers stop on their signal; the coordinator drains with exit 0.
	wcancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-workerErr:
			if err != nil {
				t.Fatalf("worker exit = %v, want nil", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("worker never stopped")
		}
	}
	cancel()
	select {
	case err := <-coordErr:
		if err != nil {
			t.Fatalf("coordinator drain exit = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never drained")
	}

	// -trace-out captured the lease lifecycle for sweeptrace.
	trace, err := os.ReadFile(co.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"lease"`) || !strings.Contains(string(trace), `"complete"`) {
		t.Fatalf("trace missing lease lifecycle events:\n%.400s", trace)
	}
}
