// Command gpuscaled serves sweep jobs over HTTP — the long-lived form
// of gpusweep. Clients POST a job (a suite or inline kernel list plus
// an optional configuration grid), poll its status, fetch the partial
// or complete matrix as CSV, and cancel it.
//
// The daemon is built to survive overload and crashes rather than
// merely work when everything is calm:
//
//   - Admission is bounded: at most -max-jobs open jobs, an optional
//     token-bucket rate limit (-rate/-burst) and per-client cap
//     (-client-cap). Anything past a bound is shed with 429/503 and a
//     Retry-After hint — never buffered without bound.
//   - Every job runs under a deadline context (-max-deadline caps what
//     clients may ask for), handlers are panic-isolated, and the HTTP
//     server has bounded read/write timeouts.
//   - State is crash-only: admissions, per-row journal checkpoints and
//     terminal states are fsynced in -state; kill -9 the daemon at any
//     instant, restart it, and every unfinished job resumes with its
//     completed rows intact.
//   - SIGTERM/SIGINT drains: admission flips to shedding (watch
//     /readyz), in-flight jobs get -drain-grace to finish, and whatever
//     is still running is interrupted and left journaled for the next
//     start.
//
// The daemon also scales out. `-coordinator` keeps the whole client
// API unchanged but executes each admitted job by leasing kernel rows
// to a fleet over `/v1/dist/` (internal/dist): monotonic lease epochs,
// expiry + work-stealing, fsync-before-ack completion. `-worker -join
// URL` runs the complementary process: an API-less worker that
// acquires leases, sweeps rows with the same journaled executor, and
// reports back; kill -9 it at any instant and its lease just expires.
//
// Usage:
//
//	gpuscaled -state /var/lib/gpuscaled          # serve on :8080
//	gpuscaled -addr :9000 -max-jobs 8 -rate 5    # tighter bounds
//	gpuscaled -fault-rate 0.05 -fault-seed 1     # chaos drill
//
//	gpuscaled -coordinator -lease-ttl 15s        # fleet head
//	gpuscaled -worker -join http://head:8080     # fleet member (xN)
//
//	curl -XPOST localhost:8080/v1/jobs -d '{"suite":"rodinia"}'
//	curl localhost:8080/v1/jobs/job-000000
//	curl localhost:8080/v1/jobs/job-000000/matrix > m.csv
//	curl -XDELETE localhost:8080/v1/jobs/job-000000
//
// The fleet defends itself against byzantine members, not just
// crashed ones. Every acquire carries a version + engine-fingerprint
// handshake (mixed binaries are fenced before computing anything),
// every completed row is attested with a digest of its journaled
// bytes, and `-verify-fraction` re-executes a seed-deterministic
// sample of rows on a second worker — a digest mismatch quarantines
// the lying worker (`-quarantine-after`), revokes its leases, retracts
// its unverified rows, and drops it from /metrics/fleet.
//
// Coordinators come in pairs. `-standby -join URL` runs a warm
// replica that tails the primary's lease ledger over `/v1/ha/` and
// promotes itself (at the next coordinator term) after
// `-promote-after` of primary silence; `-peers` lets a primary probe
// for a newer term and step down instead of splitting the brain.
// Workers given a comma-separated `-join` (or extra `-peers`) rotate
// between coordinators on failure, so a failover loses no in-flight
// lease that completes within its TTL.
//
// Exit codes: 0 clean drain, 1 startup or serve error, 4 worker
// fenced by the version/fingerprint handshake, 5 worker quarantined
// by the coordinator, 6 coordinator deposed by a newer term.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"gpuscale/internal/dist"
	"gpuscale/internal/fault"
	"gpuscale/internal/obs"
	"gpuscale/internal/serve"
	"gpuscale/internal/sweep"
)

// cliOptions collects every flag so tests can drive run directly.
type cliOptions struct {
	addr         string
	stateDir     string
	runners      int
	workers      int
	maxJobs      int
	rate         float64
	burst        int
	clientCap    int
	maxDeadline  time.Duration
	drainGrace   time.Duration
	retries      int
	backoff      time.Duration
	simTimeout   time.Duration
	stallGrace   time.Duration
	breaker      int
	faultRate    float64
	panicRate    float64
	tornRate     float64
	latency      time.Duration
	latencyRate  float64
	faultSeed    int64
	corruptRate  float64
	staleVersion string

	coordinator    bool
	standby        bool
	worker         bool
	join           string
	peers          string
	heartbeatEvery time.Duration
	promoteAfter   time.Duration
	selfFenceAfter time.Duration
	leaseTTL       time.Duration
	verifyFraction float64
	quarantineN    int
	workerName     string
	traceOut       string
	pprof          bool
	diagAddr       string
	flightDump     string

	// ready is a test seam: invoked with the server's base URL once it
	// is listening, alongside the serving loop.
	ready func(baseURL string)
}

func main() {
	var o cliOptions
	flag.StringVar(&o.addr, "addr", ":8080", "HTTP listen address")
	flag.StringVar(&o.stateDir, "state", "gpuscaled-state", "state directory (job specs, journals, matrices)")
	flag.IntVar(&o.runners, "runners", 1, "jobs run concurrently")
	flag.IntVar(&o.workers, "workers", 0, "sweep workers per job (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxJobs, "max-jobs", 16, "open (queued+running) job bound; beyond it submissions shed with 503")
	flag.Float64Var(&o.rate, "rate", 0, "admission rate limit in submissions/second (0 = unlimited)")
	flag.IntVar(&o.burst, "burst", 4, "admission token-bucket burst")
	flag.IntVar(&o.clientCap, "client-cap", 0, "open jobs allowed per client (0 = unlimited)")
	flag.DurationVar(&o.maxDeadline, "max-deadline", 0, "cap on (and default for) per-job deadlines (0 = none)")
	flag.DurationVar(&o.drainGrace, "drain-grace", 10*time.Second, "how long SIGTERM lets in-flight jobs finish before interrupting them")
	flag.IntVar(&o.retries, "retries", 0, "extra attempts per cell after a failed or corrupt simulation")
	flag.DurationVar(&o.backoff, "backoff", 0, "initial retry backoff (doubles per retry, capped)")
	flag.DurationVar(&o.simTimeout, "sim-timeout", 0, "per-simulation timeout (0 = none)")
	flag.DurationVar(&o.stallGrace, "stall-grace", 0, "abandon engine calls this long after cancellation (0 = wait forever)")
	flag.IntVar(&o.breaker, "breaker", 0, "quarantine a kernel row after this many consecutive hard failures (0 disables)")
	flag.Float64Var(&o.faultRate, "fault-rate", 0, "inject transient faults at this rate (chaos drills)")
	flag.Float64Var(&o.panicRate, "fault-panic-rate", 0, "inject engine panics at this rate (chaos drills)")
	flag.Float64Var(&o.tornRate, "fault-torn-rate", 0, "inject torn journal writes at this rate (chaos drills)")
	flag.DurationVar(&o.latency, "fault-latency", 0, "maximum injected per-call latency (needs -fault-latency-rate)")
	flag.Float64Var(&o.latencyRate, "fault-latency-rate", 0, "inject seeded per-call latency at this rate (chaos drills)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed")
	flag.Float64Var(&o.corruptRate, "fault-corrupt-row-rate", 0, "make this -worker byzantine: tamper computed rows at this rate before journaling and attesting them (chaos drills)")
	flag.StringVar(&o.staleVersion, "fault-stale-version", "", "make this -worker present the given protocol version on acquire instead of its real one (chaos drills)")
	flag.BoolVar(&o.coordinator, "coordinator", false, "execute jobs by leasing kernel rows to a worker fleet over /v1/dist/")
	flag.BoolVar(&o.standby, "standby", false, "run as a warm standby coordinator replicating from -join; promotes after -promote-after of primary silence")
	flag.BoolVar(&o.worker, "worker", false, "run as a fleet worker instead of serving the job API (requires -join)")
	flag.StringVar(&o.join, "join", "", "coordinator base URL(s), comma separated: a -worker acquires leases from them (rotating on failure), a -standby replicates from the first")
	flag.StringVar(&o.peers, "peers", "", "comma-separated peer coordinator base URLs: a -coordinator probes them for newer terms (and steps down if one is live); a -worker adds them to its rotation list")
	flag.DurationVar(&o.heartbeatEvery, "heartbeat-every", 250*time.Millisecond, "HA heartbeat cadence: peer-probe interval on a -coordinator, replication pacing on a -standby")
	flag.DurationVar(&o.promoteAfter, "promote-after", 3*time.Second, "missed-heartbeat deadline after which a synced -standby promotes itself to primary")
	flag.DurationVar(&o.selfFenceAfter, "self-fence-after", 0, "a -coordinator whose standby once tailed it steps down after this long without any tail contact (0 disables)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 10*time.Second, "how long a row lease lives without renewal before it is stolen (-coordinator)")
	flag.Float64Var(&o.verifyFraction, "verify-fraction", 0, "fraction of rows re-executed on a second worker before acceptance; digest mismatches strike the loser (-coordinator)")
	flag.IntVar(&o.quarantineN, "quarantine-after", 1, "digest-mismatch strikes that quarantine a worker fleet-wide (-coordinator)")
	flag.StringVar(&o.workerName, "worker-name", "", "worker identity in leases and traces (default host-pid)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write lease/steal/complete/renew spans to this JSONL trace file (see sweeptrace)")
	flag.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/ (off by default)")
	flag.StringVar(&o.diagAddr, "diag-addr", "", "worker diagnostics listen address serving /metrics, /debug/flight and (with -pprof) /debug/pprof/; advertised to the coordinator for /metrics/fleet")
	flag.StringVar(&o.flightDump, "flight-dump", "", "dump a flight recorder and exit: a daemon base URL (fetches /debug/flight) or a flight.ring file path (post-mortem after kill -9)")
	flag.Parse()

	if o.flightDump != "" {
		if err := runFlightDump(o.flightDump); err != nil {
			fmt.Fprintln(os.Stderr, "gpuscaled:", err)
			os.Exit(1)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "gpuscaled:", err)
		os.Exit(exitCodeFor(err))
	}
}

// exitCodeFor maps terminal errors to documented exit codes, so
// process supervisors can tell "rebuild me" (4: this binary cannot
// join that fleet), "investigate me" (5: the coordinator proved this
// worker computes wrong answers) and "do not restart me as primary"
// (6: a newer coordinator term is live; restart as -standby or not at
// all) from generic failure (1).
func exitCodeFor(err error) int {
	switch {
	case errors.Is(err, dist.ErrVersionFenced):
		return 4
	case errors.Is(err, dist.ErrQuarantined):
		return 5
	case errors.Is(err, dist.ErrDeposed):
		return 6
	default:
		return 1
	}
}

// splitList parses a comma-separated URL list, dropping empties and
// trailing slashes so "a,, b/" and "a,b" address the same peers.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSuffix(strings.TrimSpace(p), "/"); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runFlightDump renders a flight recorder's ring as JSONL on stdout.
// A URL asks a live daemon over /debug/flight; a path reads the
// file-backed ring a dead process left behind — torn slots from the
// moment of death are skipped by their CRCs.
func runFlightDump(target string) error {
	var (
		evs []obs.FlightEvent
		err error
	)
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		resp, herr := http.Get(strings.TrimSuffix(target, "/") + "/debug/flight")
		if herr != nil {
			return herr
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("flight dump: %s answered %d", target, resp.StatusCode)
		}
		evs, err = obs.ReadFlightDump(resp.Body)
	} else {
		evs, err = obs.ReadFlightFile(target)
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return err
		}
	}
	return nil
}

// openFlight opens the state directory's file-backed flight ring. The
// ring is written on every record with no fsync: cheap enough for the
// hot path, durable enough that a kill -9's dirty pages still reach
// the file via the page cache.
func openFlight(stateDir string) (*obs.FlightRecorder, error) {
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return nil, err
	}
	return obs.OpenFlightRecorder(filepath.Join(stateDir, "flight.ring"),
		obs.DefaultFlightSlots, obs.DefaultFlightSlotSize)
}

// dumpPath is where signal- and panic-triggered dumps land.
func dumpPath(stateDir string) string {
	return filepath.Join(stateDir, fmt.Sprintf("flight-%d.dump", os.Getpid()))
}

// armSigquit dumps the flight ring to disk on SIGQUIT without exiting
// — kill -QUIT a wedged daemon to get its recent event history.
func armSigquit(fr *obs.FlightRecorder, stateDir string) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			path := dumpPath(stateDir)
			if err := fr.DumpToFile(path, "sigquit"); err != nil {
				fmt.Fprintln(os.Stderr, "gpuscaled: flight dump:", err)
			} else {
				fmt.Fprintln(os.Stderr, "gpuscaled: flight recorder dumped to", path)
			}
		}
	}()
}

// dumpOnPanic must be deferred: it records the panic into the ring,
// dumps it, and re-panics so the crash still crashes.
func dumpOnPanic(fr *obs.FlightRecorder, stateDir string) {
	p := recover()
	if p == nil {
		return
	}
	fr.Record("panic", map[string]any{"panic": fmt.Sprint(p)})
	path := dumpPath(stateDir)
	if err := fr.DumpToFile(path, "panic"); err == nil {
		fmt.Fprintln(os.Stderr, "gpuscaled: flight recorder dumped to", path)
	}
	panic(p)
}

// mountPprof attaches the net/http/pprof handlers explicitly — the
// package's init-time DefaultServeMux registration is useless here
// because the daemon builds its own mux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// openTrace opens the -trace-out writer, or returns nils when no
// trace was requested.
func openTrace(path string) (*obs.TraceWriter, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	tw := obs.NewTraceWriter(f)
	return tw, func() {
		if err := tw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "gpuscaled: trace:", err)
		}
		f.Close()
	}, nil
}

// run builds the service, serves it until ctx ends (SIGTERM/SIGINT),
// then drains: readiness flips, in-flight jobs get their grace, the
// HTTP server shuts down cleanly, and unfinished work stays journaled
// for the next start. With -worker it instead joins a coordinator's
// fleet and never serves the job API.
func run(ctx context.Context, o cliOptions) error {
	if o.worker {
		return runWorker(ctx, o)
	}
	if o.standby {
		return runStandby(ctx, o)
	}
	if o.join != "" {
		return fmt.Errorf("-join only makes sense with -worker or -standby")
	}
	trace, closeTrace, err := openTrace(o.traceOut)
	if err != nil {
		return err
	}
	defer closeTrace()
	if trace != nil {
		trace.SetProcess("coordinator")
	}
	flight, err := openFlight(o.stateDir)
	if err != nil {
		return err
	}
	defer flight.Close()
	defer dumpOnPanic(flight, o.stateDir)
	armSigquit(flight, o.stateDir)

	// One registry feeds /metrics for both the service and, in
	// coordinator mode, the lease protocol; the federation re-exports
	// it (plus every registered worker) as /metrics/fleet.
	reg := obs.NewRegistry()
	fed := obs.NewFederation(reg, nil)
	var coord *dist.Coordinator
	var runSweep func(ctx context.Context, req serve.SweepRequest) (*sweep.Matrix, *sweep.RunReport, error)
	if o.coordinator {
		coord, err = dist.NewCoordinator(filepath.Join(o.stateDir, "dist"), dist.CoordinatorOptions{
			ID:         coordinatorID(o),
			DefaultTTL: o.leaseTTL, Metrics: reg, Trace: trace,
			Flight:          flight,
			OnWorker:        fed.SetTarget,
			VerifyFraction:  o.verifyFraction,
			QuarantineAfter: o.quarantineN,
			Peers:           splitList(o.peers),
			CheckEvery:      o.heartbeatEvery,
			SelfFenceAfter:  o.selfFenceAfter,
			// A quarantined worker leaves the federation too: its target
			// is never scraped again, and fleet_scrape_up pins to 0 so
			// the departure is visible on /metrics/fleet.
			OnQuarantine: func(worker string) {
				fed.Depart(worker)
				fmt.Fprintf(os.Stderr, "gpuscaled: worker %s quarantined and dropped from the federation\n", worker)
			},
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		// Probe peers once before serving — starting up next to a live
		// newer term must fail fast with the deposed exit code — then
		// keep probing (and self-fencing) in the background.
		if err := coord.StartHA(ctx); err != nil {
			return err
		}
		// The fan-out seam: every admitted job becomes a dist job whose
		// rows the fleet leases; serve's OnRow hook keeps the service's
		// own journal and live snapshot current as completes land. The
		// job's trace context rides along so every lease grant is a
		// child span of the job.
		runSweep = func(ctx context.Context, req serve.SweepRequest) (*sweep.Matrix, *sweep.RunReport, error) {
			return coord.Run(ctx, dist.Job{
				Name: req.JobID, Kernels: req.Kernels, Space: req.Space,
				Engine: req.Engine, Seed: req.Seed, NoiseStdDev: req.Noise,
				OnRow: req.OnRow, Trace: req.Trace,
			})
		}
	}

	// Job specs replicate alongside lease records: a promoted standby
	// cannot serve the job API, but the admission files it mirrored let
	// an operator rebuild a primary without re-asking clients.
	var replicate func(string, []byte)
	if coord != nil {
		replicate = coord.ReplicateServeSpec
	}
	svc, err := serve.New(serve.Config{
		Registry:     reg,
		RunSweep:     runSweep,
		Replicate:    replicate,
		Trace:        trace,
		Flight:       flight,
		Dir:          o.stateDir,
		Runners:      o.runners,
		SweepWorkers: o.workers,
		MaxJobs:      o.maxJobs,
		Rate:         o.rate,
		Burst:        o.burst,
		ClientCap:    o.clientCap,
		MaxDeadline:  o.maxDeadline,
		DrainGrace:   o.drainGrace,
		Retries:      o.retries,
		Backoff:      o.backoff,
		SimTimeout:   o.simTimeout,
		StallGrace:   o.stallGrace,
		Breaker:      o.breaker,
		Injector: fault.Injector{
			ErrorRate: o.faultRate, PanicRate: o.panicRate, TornWriteRate: o.tornRate,
			LatencyRate: o.latencyRate, Latency: o.latency, Seed: o.faultSeed,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// Diagnostics ride the same listener as the job API: the flight
	// ring is always fetchable, profiling is opt-in, and coordinator
	// mode adds the lease protocol plus the fleet-wide metrics view.
	mux := http.NewServeMux()
	mux.Handle("/debug/flight", obs.FlightHandler(flight))
	if o.pprof {
		mountPprof(mux)
	}
	if coord != nil {
		mux.Handle("/v1/dist/", coord.Handler())
		mux.Handle("/v1/ha/", coord.Handler())
		mux.Handle("/metrics/fleet", fed.Handler())
	}
	mux.Handle("/", svc.Handler())
	srv := obs.Server(mux)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	mode := ""
	if coord != nil {
		mode = ", coordinating a fleet on /v1/dist/"
	}
	fmt.Fprintf(os.Stderr, "gpuscaled: serving on http://%s (state in %s%s)\n", ln.Addr(), o.stateDir, mode)
	if o.ready != nil {
		o.ready("http://" + ln.Addr().String())
	}

	var deposed <-chan struct{}
	if coord != nil {
		deposed = coord.Deposed() // nil channel (blocks forever) otherwise
	}
	select {
	case err := <-serveErr:
		return err
	case <-deposed:
		// A newer term is live: every grant and ack this process could
		// make is already fenced, so serving on only confuses clients.
		fmt.Fprintln(os.Stderr, "gpuscaled: deposed — a newer coordinator term is live; exiting")
		srv.Close()
		return dist.ErrDeposed
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "gpuscaled: draining")

	// Drain order: stop admitting and finish jobs first (clients polling
	// over HTTP still get answers), then shut the listener down.
	dctx, cancel := context.WithTimeout(context.Background(), o.drainGrace+30*time.Second)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "gpuscaled: drain:", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		// A keep-alive connection that was dialed but never carried a
		// request sits in StateNew until ReadHeaderTimeout, which races
		// this shutdown budget. Every job is already settled, so
		// force-close the stragglers instead of failing a clean drain.
		srv.Close()
		if !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("http shutdown: %w", err)
		}
		fmt.Fprintln(os.Stderr, "gpuscaled: http shutdown timed out; straggler connections closed")
	}
	fmt.Fprintln(os.Stderr, "gpuscaled: drained")
	return nil
}

// coordinatorID names a coordinator (or standby) in term records and
// status probes: -worker-name if given, else host-pid.
func coordinatorID(o cliOptions) string {
	if o.workerName != "" {
		return o.workerName
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// runStandby runs the warm-replica half of an HA pair: tail the
// primary's replication stream into this process's own state
// directory, serve term probes (and typed 503s for lease traffic) in
// the meantime, and — after -promote-after of primary silence —
// promote into a live coordinator at the next term. The promoted
// coordinator serves the lease protocol on the same listener, so
// workers carrying this address in their peer list converge without
// reconfiguration. It does not serve the job API: replicated jobs
// already live in the dist layer, and admission stays with whichever
// process owns the client-facing address.
func runStandby(ctx context.Context, o cliOptions) error {
	if o.join == "" {
		return fmt.Errorf("-standby requires -join <primary URL>")
	}
	primaries := splitList(o.join)
	name := coordinatorID(o)
	trace, closeTrace, err := openTrace(o.traceOut)
	if err != nil {
		return err
	}
	defer closeTrace()
	if trace != nil {
		trace.SetProcess(name)
	}
	flight, err := openFlight(o.stateDir)
	if err != nil {
		return err
	}
	defer flight.Close()
	defer dumpOnPanic(flight, o.stateDir)
	armSigquit(flight, o.stateDir)

	reg := obs.NewRegistry()
	fed := obs.NewFederation(reg, nil)
	sb, err := dist.NewStandby(filepath.Join(o.stateDir, "dist"), dist.StandbyOptions{
		ID:           name,
		Primary:      primaries[0],
		PollEvery:    o.heartbeatEvery,
		PromoteAfter: o.promoteAfter,
		Metrics:      reg,
		Coordinator: dist.CoordinatorOptions{
			ID:         name,
			DefaultTTL: o.leaseTTL, Metrics: reg, Trace: trace, Flight: flight,
			OnWorker:        fed.SetTarget,
			VerifyFraction:  o.verifyFraction,
			QuarantineAfter: o.quarantineN,
			// After promotion the old primary is a peer to keep probing:
			// if an operator wrongly restarts it as primary, whoever holds
			// the older term steps down.
			Peers:          primaries,
			CheckEvery:     o.heartbeatEvery,
			SelfFenceAfter: o.selfFenceAfter,
			OnQuarantine: func(worker string) {
				fed.Depart(worker)
				fmt.Fprintf(os.Stderr, "gpuscaled: worker %s quarantined and dropped from the federation\n", worker)
			},
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer sb.Close()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// The listener outlives the promotion, so the handler behind it is
	// swappable: standby surface first, the promoted coordinator's
	// protocol after.
	var handler atomic.Value
	smux := http.NewServeMux()
	smux.Handle("/debug/flight", obs.FlightHandler(flight))
	smux.Handle("/metrics", obs.Handler(reg, nil))
	if o.pprof {
		mountPprof(smux)
	}
	smux.Handle("/", sb.Handler())
	handler.Store(http.Handler(smux))
	srv := obs.Server(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "gpuscaled: standby %s on http://%s replicating %s (state in %s)\n",
		name, ln.Addr(), primaries[0], o.stateDir)
	if o.ready != nil {
		o.ready("http://" + ln.Addr().String())
	}

	coord, err := sb.Run(ctx)
	if err != nil {
		return err
	}
	if coord == nil { // ctx ended while still a standby
		return nil
	}
	defer coord.Close()
	pmux := http.NewServeMux()
	pmux.Handle("/debug/flight", obs.FlightHandler(flight))
	pmux.Handle("/metrics", obs.Handler(reg, nil))
	if o.pprof {
		mountPprof(pmux)
	}
	pmux.Handle("/v1/dist/", coord.Handler())
	pmux.Handle("/v1/ha/", coord.Handler())
	pmux.Handle("/metrics/fleet", fed.Handler())
	handler.Store(http.Handler(pmux))
	fmt.Fprintf(os.Stderr, "gpuscaled: promoted to primary at term %d\n", coord.Term())
	if err := coord.StartHA(ctx); err != nil {
		return err
	}
	select {
	case err := <-serveErr:
		return err
	case <-coord.Deposed():
		fmt.Fprintln(os.Stderr, "gpuscaled: deposed — a newer coordinator term is live; exiting")
		return dist.ErrDeposed
	case <-ctx.Done():
		return nil
	}
}

// runWorker joins a coordinator's fleet: acquire a row lease, sweep
// it with the journaled executor, report it, repeat until SIGTERM.
// There is no job API and no drain protocol — a worker is crash-only
// by design, so a clean exit and a kill -9 differ only in how fast
// the lease it held gets re-granted.
func runWorker(ctx context.Context, o cliOptions) error {
	if o.join == "" {
		return fmt.Errorf("-worker requires -join <coordinator URL>")
	}
	name := o.workerName
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	trace, closeTrace, err := openTrace(o.traceOut)
	if err != nil {
		return err
	}
	defer closeTrace()
	if trace != nil {
		trace.SetProcess(name)
	}
	flight, err := openFlight(o.stateDir)
	if err != nil {
		return err
	}
	defer flight.Close()
	defer dumpOnPanic(flight, o.stateDir)
	armSigquit(flight, o.stateDir)

	// The optional diagnostics listener is what makes a worker a
	// first-class federation member: the coordinator scrapes its
	// /metrics via the URL advertised on every lease acquire.
	reg := obs.NewRegistry()
	metricsURL := ""
	if o.diagAddr != "" {
		dln, err := net.Listen("tcp", o.diagAddr)
		if err != nil {
			return err
		}
		dmux := http.NewServeMux()
		dmux.Handle("/", obs.Handler(reg, nil))
		dmux.Handle("/debug/flight", obs.FlightHandler(flight))
		if o.pprof {
			mountPprof(dmux)
		}
		dsrv := obs.Server(dmux)
		go dsrv.Serve(dln)
		defer dsrv.Close()
		metricsURL = fmt.Sprintf("http://%s/metrics", dln.Addr())
		fmt.Fprintf(os.Stderr, "gpuscaled: worker %s diagnostics on http://%s\n", name, dln.Addr())
	}

	// -join may list several coordinators (primary plus standbys), and
	// -peers appends more; the worker rotates between them on transport
	// failure, 503 not-primary and 409 deposed, so a failover needs no
	// worker restarts.
	peers := append(splitList(o.join), splitList(o.peers)...)
	w, err := dist.NewWorker(dist.WorkerOptions{
		Name:         name,
		Peers:        peers,
		Dir:          o.stateDir,
		Client:       &http.Client{Timeout: 30 * time.Second},
		SweepWorkers: o.workers,
		Retries:      o.retries,
		Backoff:      o.backoff,
		SimTimeout:   o.simTimeout,
		Trace:        trace,
		Metrics:      reg,
		MetricsURL:   metricsURL,
		Flight:       flight,
		Fault: fault.Injector{
			CorruptRowRate: o.corruptRate, StaleVersion: o.staleVersion, Seed: o.faultSeed,
		},
	})
	if err != nil {
		return err
	}
	defer w.Close()
	fmt.Fprintf(os.Stderr, "gpuscaled: worker %s joining %s (journals in %s)\n", name, o.join, o.stateDir)
	err = w.Run(ctx)
	fmt.Fprintf(os.Stderr, "gpuscaled: worker %s stopped\n", name)
	return err
}
