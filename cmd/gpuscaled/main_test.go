package main

// End-to-end daemon test: run() on a loopback port, a job submitted
// and completed over real HTTP, then SIGTERM (simulated by canceling
// the signal context) drains cleanly with exit status nil.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpuscale/internal/dist"
)

func TestDaemonServesAndDrains(t *testing.T) {
	o := cliOptions{
		addr:       "127.0.0.1:0",
		stateDir:   t.TempDir(),
		runners:    1,
		workers:    2,
		maxJobs:    4,
		burst:      4,
		drainGrace: 2 * time.Second,
	}
	ready := make(chan string, 1)
	o.ready = func(baseURL string) { ready <- baseURL }

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, o) }()

	var base string
	select {
	case base = <-ready:
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Liveness and readiness respond.
	for _, path := range []string{"/healthz", "/readyz"} {
		res, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, res.StatusCode)
		}
	}

	// Submit a small job and ride it to completion.
	body := `{"suite":"microbench","space":{"cus":[4,24],"core_mhz":[200,1000],"mem_mhz":[150,1250]}}`
	res, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit = %d %+v", res.StatusCode, st)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		res, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if st.State == "complete" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job settled %q", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed; last state %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err = http.Get(base + "/v1/jobs/" + st.ID + "/matrix")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.HasPrefix(string(csv), "kernel,") {
		t.Fatalf("matrix = %d %.40q", res.StatusCode, csv)
	}

	// SIGTERM: the signal context ends, the daemon drains and exits 0.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain exit = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}
}

// TestExitCodeFor: the documented worker exit codes — 4 for "this
// binary cannot join that fleet" (version fence), 5 for "the
// coordinator proved this worker computes wrong answers"
// (quarantine) — survive error wrapping, and everything else is a
// generic 1.
func TestExitCodeFor(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{dist.ErrVersionFenced, 4},
		{fmt.Errorf("worker liar: %w", dist.ErrVersionFenced), 4},
		{dist.ErrQuarantined, 5},
		{fmt.Errorf("worker liar: %w", dist.ErrQuarantined), 5},
		{errors.New("disk on fire"), 1},
	}
	for _, tc := range cases {
		if got := exitCodeFor(tc.err); got != tc.want {
			t.Fatalf("exitCodeFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
