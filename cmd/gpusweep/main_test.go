package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuscale/internal/kernel"
)

func TestRunSuiteSubsetWithCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "results.csv")
	if err := run(out, "graphana", "round", 0, 1, 0, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "kernel,cus,core_mhz,mem_mhz") {
		t.Fatalf("CSV header missing: %.80s", s)
	}
	if !strings.Contains(s, "graphana-p01") {
		t.Fatal("CSV missing suite kernels")
	}
	// 24 kernels x 891 configs + header.
	lines := strings.Count(s, "\n")
	if lines != 24*891+1 {
		t.Fatalf("CSV lines = %d, want %d", lines, 24*891+1)
	}
}

func TestRunNoise(t *testing.T) {
	if err := run("", "dwarfs", "round", 0.05, 7, 2, ""); err != nil {
		t.Fatalf("noisy run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "nope", "round", 0, 1, 0, ""); err == nil {
		t.Error("unknown suite accepted")
	}
	if err := run("", "", "quantum", 0, 1, 0, ""); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run("/no/such/dir/x.csv", "graphana", "round", 0, 1, 0, ""); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestCorpusDumpAndReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.json")
	if err := writeCorpus(path); err != nil {
		t.Fatalf("dump: %v", err)
	}
	ks, err := loadCorpus(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ks) != 267 {
		t.Fatalf("reloaded %d kernels, want 267", len(ks))
	}
	// A tiny custom corpus must sweep end to end.
	small := filepath.Join(dir, "small.json")
	f, err := os.Create(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := kernel.WriteAll(f, ks[:3]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(dir, "out.csv")
	if err := run(out, "", "round", 0, 1, 0, small); err != nil {
		t.Fatalf("custom-corpus sweep: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 3*891+1 {
		t.Fatalf("CSV lines = %d, want %d", lines, 3*891+1)
	}
}

func TestCorpusFlagConflicts(t *testing.T) {
	if err := run("", "graphana", "round", 0, 1, 0, "also.json"); err == nil {
		t.Error("-corpus with -suite accepted")
	}
	if err := run("", "", "round", 0, 1, 0, "/no/such/corpus.json"); err == nil {
		t.Error("missing corpus file accepted")
	}
}
