package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/sweep"
)

func TestRunSuiteSubsetWithCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "results.csv")
	if err := run(context.Background(), cliOptions{out: out, suite: "graphana", engine: "round", seed: 1}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "kernel,cus,core_mhz,mem_mhz") {
		t.Fatalf("CSV header missing: %.80s", s)
	}
	if !strings.Contains(s, "graphana-p01") {
		t.Fatal("CSV missing suite kernels")
	}
	// 24 kernels x 891 configs + header.
	lines := strings.Count(s, "\n")
	if lines != 24*891+1 {
		t.Fatalf("CSV lines = %d, want %d", lines, 24*891+1)
	}
}

func TestRunNoise(t *testing.T) {
	if err := run(context.Background(), cliOptions{suite: "dwarfs", engine: "round", noise: 0.05, seed: 7, workers: 2}); err != nil {
		t.Fatalf("noisy run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	bg := context.Background()
	if err := run(bg, cliOptions{suite: "nope", engine: "round"}); err == nil {
		t.Error("unknown suite accepted")
	}
	if err := run(bg, cliOptions{engine: "quantum"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run(bg, cliOptions{out: "/no/such/dir/x.csv", suite: "graphana", engine: "round"}); err == nil {
		t.Error("unwritable output accepted")
	}
	if err := run(bg, cliOptions{engine: "round", resume: true}); err == nil {
		t.Error("-resume without -o accepted")
	}
	if err := run(bg, cliOptions{engine: "round", faultRate: 1.5}); err == nil {
		t.Error("fault rate above 1 accepted")
	}
}

func TestRunFaultInjectionWithRetriesCompletes(t *testing.T) {
	out := filepath.Join(t.TempDir(), "faulty.csv")
	o := cliOptions{
		out: out, suite: "graphana", engine: "round",
		faultRate: 0.05, faultSeed: 3, retries: 5,
	}
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("faulty run with retries: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := sweep.ReadCSV(f, hw.StudySpace())
	if err != nil {
		t.Fatalf("archived CSV unreadable: %v", err)
	}
	for r := range m.Kernels {
		if !m.RowComplete(r) {
			t.Fatalf("kernel %s has failed cells despite retries", m.Kernels[r])
		}
	}
}

func TestRunResumeJournalCompletesAcrossRuns(t *testing.T) {
	out := filepath.Join(t.TempDir(), "journal.csv")
	space := hw.StudySpace()
	// First pass: faults on, no retries — with 891 cells per row a
	// 0.1% rate fails roughly half the rows, which then stay out of
	// the journal. The run reports the incompleteness.
	first := cliOptions{
		out: out, suite: "graphana", engine: "round",
		faultRate: 0.001, faultSeed: 11, resume: true,
	}
	err := run(context.Background(), first)
	if err == nil {
		t.Fatal("faulty pass with no retries completed; expected an incomplete journal error")
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("journal not created: %v", err)
	}
	partial, err := sweep.ReadCSVPartial(f, space)
	f.Close()
	if err != nil {
		t.Fatalf("journal unreadable between runs: %v", err)
	}
	if len(partial.Kernels) == 0 || len(partial.Kernels) >= 24 {
		t.Fatalf("journal holds %d/24 rows; expected a strict subset to survive the fault storm", len(partial.Kernels))
	}

	// Second pass: faults off, resume — only the holes are recomputed
	// and the journal must end complete.
	second := cliOptions{out: out, suite: "graphana", engine: "round", resume: true}
	if err := run(context.Background(), second); err != nil {
		t.Fatalf("resume pass: %v", err)
	}
	f, err = os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := sweep.ReadCSV(f, space)
	if err != nil {
		t.Fatalf("resumed journal is not a complete archive: %v", err)
	}
	if len(m.Kernels) != 24 {
		t.Fatalf("resumed journal has %d kernels, want 24", len(m.Kernels))
	}
}

func TestCorpusDumpAndReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.json")
	if err := writeCorpus(path); err != nil {
		t.Fatalf("dump: %v", err)
	}
	ks, err := loadCorpus(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ks) != 267 {
		t.Fatalf("reloaded %d kernels, want 267", len(ks))
	}
	// A tiny custom corpus must sweep end to end.
	small := filepath.Join(dir, "small.json")
	f, err := os.Create(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := kernel.WriteAll(f, ks[:3]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(dir, "out.csv")
	if err := run(context.Background(), cliOptions{out: out, engine: "round", corpusFile: small}); err != nil {
		t.Fatalf("custom-corpus sweep: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 3*891+1 {
		t.Fatalf("CSV lines = %d, want %d", lines, 3*891+1)
	}
}

func TestCorpusFlagConflicts(t *testing.T) {
	bg := context.Background()
	if err := run(bg, cliOptions{suite: "graphana", engine: "round", corpusFile: "also.json"}); err == nil {
		t.Error("-corpus with -suite accepted")
	}
	if err := run(bg, cliOptions{engine: "round", corpusFile: "/no/such/corpus.json"}); err == nil {
		t.Error("missing corpus file accepted")
	}
}
