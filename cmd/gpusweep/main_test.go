package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
	"gpuscale/internal/sweep"
)

func TestRunSuiteSubsetWithCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "results.csv")
	if _, err := run(context.Background(), cliOptions{out: out, suite: "graphana", engine: "round", seed: 1}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "kernel,cus,core_mhz,mem_mhz") {
		t.Fatalf("CSV header missing: %.80s", s)
	}
	if !strings.Contains(s, "graphana-p01") {
		t.Fatal("CSV missing suite kernels")
	}
	// 24 kernels x 891 configs + header.
	lines := strings.Count(s, "\n")
	if lines != 24*891+1 {
		t.Fatalf("CSV lines = %d, want %d", lines, 24*891+1)
	}
}

func TestRunNoise(t *testing.T) {
	if _, err := run(context.Background(), cliOptions{suite: "dwarfs", engine: "round", noise: 0.05, seed: 7, workers: 2}); err != nil {
		t.Fatalf("noisy run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	bg := context.Background()
	if _, err := run(bg, cliOptions{suite: "nope", engine: "round"}); err == nil {
		t.Error("unknown suite accepted")
	}
	if _, err := run(bg, cliOptions{engine: "quantum"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := run(bg, cliOptions{out: "/no/such/dir/x.csv", suite: "graphana", engine: "round"}); err == nil {
		t.Error("unwritable output accepted")
	}
	if _, err := run(bg, cliOptions{engine: "round", resume: true}); err == nil {
		t.Error("-resume without -o accepted")
	}
	if _, err := run(bg, cliOptions{engine: "round", faultRate: 1.5}); err == nil {
		t.Error("fault rate above 1 accepted")
	}
}

func TestRunFaultInjectionWithRetriesCompletes(t *testing.T) {
	out := filepath.Join(t.TempDir(), "faulty.csv")
	o := cliOptions{
		out: out, suite: "graphana", engine: "round",
		faultRate: 0.05, faultSeed: 3, retries: 5,
	}
	if _, err := run(context.Background(), o); err != nil {
		t.Fatalf("faulty run with retries: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := sweep.ReadCSV(f, hw.StudySpace())
	if err != nil {
		t.Fatalf("archived CSV unreadable: %v", err)
	}
	for r := range m.Kernels {
		if !m.RowComplete(r) {
			t.Fatalf("kernel %s has failed cells despite retries", m.Kernels[r])
		}
	}
}

func TestRunResumeJournalCompletesAcrossRuns(t *testing.T) {
	out := filepath.Join(t.TempDir(), "journal.csv")
	space := hw.StudySpace()
	// First pass: faults on, no retries — with 891 cells per row a
	// 0.1% rate fails roughly half the rows, which then stay out of
	// the journal. The run reports the incompleteness.
	first := cliOptions{
		out: out, suite: "graphana", engine: "round",
		faultRate: 0.001, faultSeed: 11, resume: true,
	}
	_, err := run(context.Background(), first)
	if err == nil {
		t.Fatal("faulty pass with no retries completed; expected an incomplete journal error")
	}
	j, err := sweep.OpenJournal(out, space)
	if err != nil {
		t.Fatalf("journal unreadable between runs: %v", err)
	}
	partial := j.Prior()
	j.Close()
	if partial == nil || len(partial.Kernels) == 0 || len(partial.Kernels) >= 24 {
		n := 0
		if partial != nil {
			n = len(partial.Kernels)
		}
		t.Fatalf("journal holds %d/24 rows; expected a strict subset to survive the fault storm", n)
	}

	// Second pass: faults off, resume — only the holes are recomputed
	// and the journal must end complete.
	second := cliOptions{out: out, suite: "graphana", engine: "round", resume: true}
	if _, err := run(context.Background(), second); err != nil {
		t.Fatalf("resume pass: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := sweep.ReadCSV(f, space)
	if err != nil {
		t.Fatalf("resumed journal is not a complete archive: %v", err)
	}
	if len(m.Kernels) != 24 {
		t.Fatalf("resumed journal has %d kernels, want 24", len(m.Kernels))
	}
}

// metricValue extracts one series value from a Prometheus exposition.
func metricValue(t *testing.T, text, series string) uint64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %s not found in exposition:\n%s", series, text)
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestObservedFaultySweepEndToEnd is the acceptance drill for the
// telemetry layer: a faulty sweep run with -trace-out, -metrics-addr
// and -progress must produce (1) a parseable JSONL trace, (2) a live
// /metrics exposition whose retry and fault counters agree with the
// trace, (3) a /progress ETA — and (4) a CSV byte-identical to the
// same sweep run with no observability at all.
func TestObservedFaultySweepEndToEnd(t *testing.T) {
	dir := t.TempDir()
	plainCSV := filepath.Join(dir, "plain.csv")
	obsCSV := filepath.Join(dir, "observed.csv")
	tracePath := filepath.Join(dir, "run.trace")

	base := cliOptions{
		suite: "graphana", engine: "round",
		faultRate: 0.05, faultSeed: 3, retries: 6,
	}
	plain := base
	plain.out = plainCSV
	if _, err := run(context.Background(), plain); err != nil {
		t.Fatalf("unobserved run: %v", err)
	}

	observed := base
	observed.out = obsCSV
	observed.traceOut = tracePath
	observed.metricsAddr = "127.0.0.1:0"
	observed.progress = true
	var metricsText string
	var progress map[string]any
	observed.probe = func(baseURL string) error {
		res, err := http.Get(baseURL + "/healthz")
		if err != nil {
			return err
		}
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("/healthz status %d", res.StatusCode)
		}
		res, err = http.Get(baseURL + "/metrics")
		if err != nil {
			return err
		}
		b, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			return err
		}
		if res.StatusCode != http.StatusOK {
			return fmt.Errorf("/metrics status %d", res.StatusCode)
		}
		metricsText = string(b)
		res, err = http.Get(baseURL + "/progress")
		if err != nil {
			return err
		}
		defer res.Body.Close()
		return json.NewDecoder(res.Body).Decode(&progress)
	}
	if _, err := run(context.Background(), observed); err != nil {
		t.Fatalf("observed run: %v", err)
	}

	// (4) Zero change to the resulting matrix.
	a, err := os.ReadFile(plainCSV)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(obsCSV)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("observability changed the measured matrix")
	}

	// (1) The trace parses and carries the expected span families.
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(tf)
	tf.Close()
	if err != nil {
		t.Fatalf("trace not parseable JSONL: %v", err)
	}
	spans := map[string]int{}
	traceRetries := 0
	traceFaults := 0
	for _, e := range evs {
		spans[e.Name]++
		if e.Name == "attempt" {
			if n, ok := e.Args["attempt"].(float64); ok && n > 1 {
				traceRetries++
			}
		}
		if e.Name == "fault" {
			traceFaults++
		}
	}
	if spans["cell"] != 24*891 {
		t.Fatalf("trace has %d cell spans, want %d", spans["cell"], 24*891)
	}
	if spans["sweep"] != 1 || traceFaults == 0 || traceRetries == 0 {
		t.Fatalf("trace span census %v (retries %d, faults %d)", spans, traceRetries, traceFaults)
	}

	// (2) /metrics agrees with the trace (and therefore the report:
	// internal/sweep asserts counters == RunReport directly).
	gotRetries := metricValue(t, metricsText, `sweep_retries_total`)
	if gotRetries != uint64(traceRetries) {
		t.Fatalf("/metrics retries %d != trace retries %d", gotRetries, traceRetries)
	}
	gotFaults := metricValue(t, metricsText, `fault_injected_total{kind="error"}`)
	if gotFaults != uint64(traceFaults) {
		t.Fatalf("/metrics faults %d != trace faults %d", gotFaults, traceFaults)
	}
	// Every injected error forced an extra attempt: with full recovery
	// the two books must balance.
	if gotFaults != gotRetries {
		t.Fatalf("fault counter %d != retry counter %d on a fully recovered sweep", gotFaults, gotRetries)
	}
	if ok := metricValue(t, metricsText, `sweep_cells_done_total{status="ok"}`); ok != 24*891 {
		t.Fatalf("/metrics ok cells = %d, want %d", ok, 24*891)
	}

	// (3) /progress reports a finished campaign.
	if progress["done"] != float64(24*891) || progress["total"] != float64(24*891) {
		t.Fatalf("/progress = %v", progress)
	}
	if _, ok := progress["eta_seconds"]; !ok {
		t.Fatal("/progress missing eta_seconds")
	}
	line, _ := progress["line"].(string)
	if !strings.Contains(line, "cells/s") {
		t.Fatalf("/progress line = %q", line)
	}
}

func TestRunCSVToStdout(t *testing.T) {
	// -o - must put only CSV on stdout; diagnostics go to stderr.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	_, runErr := run(context.Background(), cliOptions{out: "-", suite: "graphana", engine: "round"})
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run -o -: %v", runErr)
	}
	if !strings.HasPrefix(out, "kernel,cus,core_mhz,mem_mhz") {
		t.Fatalf("stdout is not a clean CSV pipe: %.80s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 24*891+1 {
		t.Fatalf("stdout CSV lines = %d, want %d", lines, 24*891+1)
	}
	if strings.Contains(out, "swept ") || strings.Contains(out, "progress:") {
		t.Fatal("diagnostics leaked onto stdout")
	}
}

func TestRunStdoutResumeRejected(t *testing.T) {
	if _, err := run(context.Background(), cliOptions{out: "-", engine: "round", resume: true}); err == nil {
		t.Fatal("-resume with -o - accepted")
	}
}

func TestCorpusDumpAndReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.json")
	if err := writeCorpus(path); err != nil {
		t.Fatalf("dump: %v", err)
	}
	ks, err := loadCorpus(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(ks) != 267 {
		t.Fatalf("reloaded %d kernels, want 267", len(ks))
	}
	// A tiny custom corpus must sweep end to end.
	small := filepath.Join(dir, "small.json")
	f, err := os.Create(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := kernel.WriteAll(f, ks[:3]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(dir, "out.csv")
	if _, err := run(context.Background(), cliOptions{out: out, engine: "round", corpusFile: small}); err != nil {
		t.Fatalf("custom-corpus sweep: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 3*891+1 {
		t.Fatalf("CSV lines = %d, want %d", lines, 3*891+1)
	}
}

func TestCorpusFlagConflicts(t *testing.T) {
	bg := context.Background()
	if _, err := run(bg, cliOptions{suite: "graphana", engine: "round", corpusFile: "also.json"}); err == nil {
		t.Error("-corpus with -suite accepted")
	}
	if _, err := run(bg, cliOptions{engine: "round", corpusFile: "/no/such/corpus.json"}); err == nil {
		t.Error("missing corpus file accepted")
	}
}
