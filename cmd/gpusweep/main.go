// Command gpusweep runs the 267-kernel x 891-configuration sweep and
// optionally archives the raw measurements as CSV — the data-collection
// step of the study.
//
// The runtime is built for flaky measurement campaigns: per-cell
// retries with backoff, per-simulation timeouts, panic isolation and
// a stall watchdog, a per-kernel circuit breaker that quarantines
// pathological rows, Ctrl-C cancellation that keeps completed work, a
// deterministic fault injector for robustness drills, and a journaled
// resume mode (checksummed journal v2) that recomputes only the rows
// a previous (crashed or canceled) run did not finish. A corrupt or
// torn journal is salvaged, not fatal: the readable prefix is kept,
// the rest recomputed, and the process exits with code 3 so scripts
// can detect that truncation happened.
//
// Long campaigns are observable while they run: -trace-out streams a
// span per cell, attempt, journal append and injected fault as JSONL
// (Chrome trace-event schema; summarize with sweeptrace), -metrics-addr
// serves Prometheus-style /metrics and a JSON /progress ETA over HTTP,
// and -progress prints a throttled progress line. All diagnostics go to
// stderr; stdout carries only data (the summary table, or the CSV when
// -o is "-").
//
// Usage:
//
//	gpusweep                          # run, print Table R-1 summary
//	gpusweep -o results.csv           # also archive raw measurements
//	gpusweep -o - | head              # stream the CSV to stdout
//	gpusweep -suite proxyapps         # restrict to one suite
//	gpusweep -engine detailed         # high-fidelity engine (slow)
//	gpusweep -noise 0.05 -seed 7      # inject measurement noise
//	gpusweep -retries 3 -backoff 2ms  # retry faulty cells
//	gpusweep -sim-timeout 5s          # bound each simulation
//	gpusweep -sim-timeout 5s -stall-grace 1s  # abandon stuck engine calls
//	gpusweep -fault-rate 0.05 -fault-seed 1  # fault-injection drill
//	gpusweep -fault-panic-rate 0.01   # drill engine panics too
//	gpusweep -breaker 5               # quarantine a kernel row after
//	                                  # 5 consecutive hard failures
//	gpusweep -o run.csv -resume       # journal rows; rerun to finish
//	gpusweep -trace-out run.trace -progress  # live telemetry
//	gpusweep -metrics-addr :9090      # curl /metrics and /progress
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"time"

	"gpuscale/internal/experiments"
	"gpuscale/internal/fault"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

// cliOptions collects every flag so tests can drive run directly.
type cliOptions struct {
	out         string
	suite       string
	engine      string
	noise       float64
	seed        int64
	workers     int
	corpusFile  string
	retries     int
	backoff     time.Duration
	simTimeout  time.Duration
	stallGrace  time.Duration
	breaker     int
	quarantine  int
	faultRate   float64
	panicRate   float64
	tornRate    float64
	latency     time.Duration
	latencyRate float64
	faultSeed   int64
	resume      bool
	traceOut    string
	metricsAddr string
	progress    bool

	// probe is a test seam: when the metrics server is up, it is
	// invoked with the server's base URL after the sweep settles but
	// before shutdown, so tests can scrape live endpoints.
	probe func(baseURL string) error
}

func main() {
	var o cliOptions
	flag.StringVar(&o.out, "o", "", "write raw measurements to this CSV file (\"-\" for stdout)")
	flag.StringVar(&o.suite, "suite", "", "restrict the sweep to one suite")
	flag.StringVar(&o.engine, "engine", "round", "simulator engine: round, detailed, wave or pipeline")
	flag.Float64Var(&o.noise, "noise", 0, "measurement-noise stddev (0 = none)")
	flag.Int64Var(&o.seed, "seed", 1, "noise seed")
	flag.IntVar(&o.workers, "workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.StringVar(&o.corpusFile, "corpus", "", "sweep kernels from this JSON file instead of the built-in corpus")
	flag.IntVar(&o.retries, "retries", 0, "extra attempts per cell after a failed or corrupt simulation")
	flag.DurationVar(&o.backoff, "backoff", 0, "initial retry backoff (doubles per retry, capped)")
	flag.DurationVar(&o.simTimeout, "sim-timeout", 0, "per-simulation timeout (0 = none)")
	flag.DurationVar(&o.stallGrace, "stall-grace", 0, "abandon engine calls this long after cancellation and mark the cell stalled (0 = wait forever)")
	flag.IntVar(&o.breaker, "breaker", 0, "quarantine the rest of a kernel row after this many consecutive hard failures (0 disables)")
	flag.IntVar(&o.quarantine, "quarantine", 0, "quarantine all unstarted kernels after this many breaker trips (0 disables)")
	flag.Float64Var(&o.faultRate, "fault-rate", 0, "inject transient faults at this rate (robustness drills)")
	flag.Float64Var(&o.panicRate, "fault-panic-rate", 0, "inject engine panics at this rate (robustness drills)")
	flag.Float64Var(&o.tornRate, "fault-torn-rate", 0, "inject torn journal writes at this rate (needs -resume)")
	flag.DurationVar(&o.latency, "fault-latency", 0, "maximum injected per-call latency (deterministic, needs -fault-latency-rate)")
	flag.Float64Var(&o.latencyRate, "fault-latency-rate", 0, "inject seeded per-call latency at this rate (robustness drills)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed")
	flag.BoolVar(&o.resume, "resume", false, "journal completed rows to -o and, on rerun, recompute only missing rows")
	flag.StringVar(&o.traceOut, "trace-out", "", "write per-cell/attempt/fault spans to this JSONL trace file (see sweeptrace)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics and /progress over HTTP on this address")
	flag.BoolVar(&o.progress, "progress", false, "print a throttled progress/ETA line to stderr")
	dumpCorpus := flag.String("dump-corpus", "", "write the built-in corpus as JSON to this file and exit")
	flag.Parse()

	if *dumpCorpus != "" {
		if err := writeCorpus(*dumpCorpus); err != nil {
			fmt.Fprintln(os.Stderr, "gpusweep:", err)
			os.Exit(1)
		}
		return
	}
	// Ctrl-C cancels the sweep but still reports (and, in resume
	// mode, keeps) every completed row.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	salvaged, err := run(ctx, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpusweep:", err)
		os.Exit(1)
	}
	if salvaged {
		// Distinct exit code: the run succeeded, but resume had to
		// drop corrupt journal records and recompute them — scripts
		// that archive journals should notice.
		os.Exit(3)
	}
}

// writeCorpus exports the built-in corpus as a JSON kernel list that
// -corpus can read back (possibly after hand edits).
func writeCorpus(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := kernel.WriteAll(f, suites.AllKernels(suites.Corpus())); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// loadCorpus reads a JSON kernel list for a custom sweep.
func loadCorpus(path string) ([]*kernel.Kernel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kernel.ReadAll(f)
}

// run executes the sweep. salvaged reports that resume recovered a
// corrupt journal by dropping records (main maps it to exit code 3).
func run(ctx context.Context, o cliOptions) (salvaged bool, err error) {
	// stdout is a data pipe (summary table, or CSV with -o -); every
	// diagnostic, progress line and accounting summary goes here.
	info := os.Stderr

	opts := sweep.Options{
		Workers:         o.workers,
		NoiseStdDev:     o.noise,
		Seed:            o.seed,
		Retries:         o.retries,
		Backoff:         o.backoff,
		SimTimeout:      o.simTimeout,
		StallGrace:      o.stallGrace,
		Breaker:         o.breaker,
		QuarantineAfter: o.quarantine,
	}
	engine, err := sweep.ParseEngine(o.engine)
	if err != nil {
		return false, err
	}
	opts.Engine = engine
	if o.resume && o.out == "" {
		return false, fmt.Errorf("-resume needs -o (the journal file)")
	}
	if o.resume && o.out == "-" {
		return false, fmt.Errorf("-resume needs a journal file, not stdout")
	}
	if o.tornRate > 0 && !o.resume {
		return false, fmt.Errorf("-fault-torn-rate needs -resume (it tears journal writes)")
	}

	// Observability: one Telemetry observer feeds the trace file, the
	// metrics endpoints and the progress line; absent all three flags
	// the sweep runs the uninstrumented (nil observer) hot path.
	var (
		tel       *sweep.Telemetry
		tw        *obs.TraceWriter
		traceFile *os.File
	)
	if o.traceOut != "" || o.metricsAddr != "" || o.progress {
		if o.traceOut != "" {
			var err error
			traceFile, err = os.Create(o.traceOut)
			if err != nil {
				return false, err
			}
			defer traceFile.Close()
			tw = obs.NewTraceWriter(traceFile)
		}
		tel = sweep.NewTelemetry(obs.NewRegistry(), tw)
		if o.progress {
			tel.EmitProgress(info, time.Second)
		}
		opts.Observer = tel
	}
	in := fault.Injector{ErrorRate: o.faultRate, PanicRate: o.panicRate, TornWriteRate: o.tornRate,
		LatencyRate: o.latencyRate, Latency: o.latency, Seed: o.faultSeed}
	if err := in.Validate(); err != nil {
		return false, err
	}
	if in.Active() || in.TornWriteRate > 0 {
		if tel != nil {
			in.OnDecision = fault.Observe(tel.Registry(), tw)
		}
	}
	if in.Active() {
		// Wrap the row engine, not the EngineFunc: the sweep derives its
		// per-cell fallback from the same wrapped engine, so both paths
		// draw from one attempt-counter stream and the injected faults
		// are identical whichever path evaluates a cell.
		opts.Row = in.WrapRow(opts.Engine.Row())
	}

	var metricsURL string
	if o.metricsAddr != "" {
		if tel == nil {
			tel = sweep.NewTelemetry(obs.NewRegistry(), nil)
			opts.Observer = tel
		}
		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			return false, err
		}
		// obs.Server bounds read/write timeouts so a stuck scraper
		// cannot pin a connection; Shutdown (not Close) lets in-flight
		// scrapes finish once the sweep settles instead of leaking the
		// listener or cutting responses mid-body.
		srv := obs.Server(obs.Handler(tel.Registry(), tel.Progress()))
		go srv.Serve(ln) //nolint:errcheck // Shutdown below reports Serve's exit
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintln(os.Stderr, "gpusweep: metrics shutdown:", err)
			}
		}()
		metricsURL = "http://" + ln.Addr().String()
		fmt.Fprintf(info, "gpusweep: serving %s/metrics and %s/progress\n", metricsURL, metricsURL)
	}

	var ks []*kernel.Kernel
	switch {
	case o.corpusFile != "":
		if o.suite != "" {
			return false, fmt.Errorf("-corpus and -suite are mutually exclusive")
		}
		var err error
		ks, err = loadCorpus(o.corpusFile)
		if err != nil {
			return false, err
		}
	case o.suite == "":
		ks = suites.AllKernels(suites.Corpus())
	default:
		s := suites.FindSuite(suites.Corpus(), o.suite)
		if s == nil {
			return false, fmt.Errorf("unknown suite %q", o.suite)
		}
		for _, p := range s.Programs {
			for _, e := range p.Kernels {
				ks = append(ks, e.Kernel)
			}
		}
	}
	space := hw.StudySpace()

	var journal *sweep.Journal
	var prior *sweep.Matrix
	if o.resume {
		var jopts sweep.JournalOptions
		if in.TornWriteRate > 0 {
			jopts.WrapWriter = in.WrapWriter
		}
		var err error
		journal, err = sweep.OpenJournalWith(o.out, space, jopts)
		if err != nil {
			return false, err
		}
		defer journal.Close()
		if s := journal.Salvage(); s != nil {
			if s.MigratedV1 {
				fmt.Fprintf(info, "gpusweep: journal %s migrated from v1 CSV format\n", o.out)
			}
			if s.DroppedBytes > 0 {
				salvaged = true
				fmt.Fprintf(info, "gpusweep: journal %s salvaged: dropped %d bytes (~%d records): %s\n",
					o.out, s.DroppedBytes, s.DroppedRecords, s.Reason)
			}
		}
		prior = journal.Prior()
		opts.OnRow = func(m *sweep.Matrix, r int) {
			start := time.Now()
			err := journal.AppendRow(m, r)
			if tel != nil {
				tel.JournalAppend(m.Kernels[r], time.Since(start), err)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "gpusweep: journal:", err)
			}
		}
	}

	m, rep, err := sweep.Resume(ctx, ks, space, opts, prior)
	if rep != nil {
		// Accounting is printed on every path — success, cancel, or
		// error — so no run ends as a black box.
		if err != nil {
			fmt.Fprintf(info, "sweep interrupted: %s\n", rep.Summary())
		} else {
			fmt.Fprintf(info, "swept %d kernels x %d configurations: %s\n", len(ks), space.Size(), rep.Summary())
		}
		if !rep.Complete() {
			printFailures(info, rep)
		}
	}
	if tw != nil {
		if terr := tw.Flush(); terr != nil {
			fmt.Fprintln(os.Stderr, "gpusweep: trace:", terr)
		} else {
			fmt.Fprintf(info, "wrote trace %s\n", o.traceOut)
		}
	}
	if err != nil {
		return salvaged, err
	}

	if o.suite == "" && o.corpusFile == "" && o.noise == 0 && o.engine == "round" &&
		o.faultRate == 0 && o.out != "-" && rep.Complete() {
		// The summary table needs the canonical full study.
		s, err := experiments.New()
		if err != nil {
			return salvaged, err
		}
		fmt.Println(s.TableR1())
	}

	switch {
	case journal != nil:
		// Rows were checkpointed as they completed; verify, then
		// atomically archive the finished matrix as plain CSV over the
		// journal (a later -resume run migrates it back if needed).
		if err := journal.VerifyComplete(m.Kernels); err != nil {
			return salvaged, fmt.Errorf("%w (rerun with -resume to finish)", err)
		}
		if err := m.WriteCSVFile(o.out); err != nil {
			return salvaged, err
		}
		fmt.Fprintf(info, "journal %s complete; archived as CSV\n", o.out)
	case o.out == "-":
		if err := m.WriteCSV(os.Stdout); err != nil {
			return salvaged, err
		}
	case o.out != "":
		if err := m.WriteCSVFile(o.out); err != nil {
			return salvaged, err
		}
		fmt.Fprintf(info, "wrote %s\n", o.out)
	}
	if o.probe != nil && metricsURL != "" {
		if err := o.probe(metricsURL); err != nil {
			return salvaged, err
		}
	}
	return salvaged, nil
}

// printFailures summarises a partial run's failed cells, capped so a
// pathological run does not flood the terminal.
func printFailures(w io.Writer, rep *sweep.RunReport) {
	const maxShown = 10
	for i, f := range rep.Failures {
		if i == maxShown {
			fmt.Fprintf(w, "  ... and %d more failed cells\n", len(rep.Failures)-maxShown)
			break
		}
		fmt.Fprintf(w, "  failed: %s\n", f)
	}
}
