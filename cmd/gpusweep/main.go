// Command gpusweep runs the 267-kernel x 891-configuration sweep and
// optionally archives the raw measurements as CSV — the data-collection
// step of the study.
//
// The runtime is built for flaky measurement campaigns: per-cell
// retries with backoff, per-simulation timeouts, Ctrl-C cancellation
// that keeps completed work, a deterministic fault injector for
// robustness drills, and a journaled resume mode that recomputes only
// the rows a previous (crashed or canceled) run did not finish.
//
// Usage:
//
//	gpusweep                          # run, print Table R-1 summary
//	gpusweep -o results.csv           # also archive raw measurements
//	gpusweep -suite proxyapps         # restrict to one suite
//	gpusweep -engine detailed         # high-fidelity engine (slow)
//	gpusweep -noise 0.05 -seed 7      # inject measurement noise
//	gpusweep -retries 3 -backoff 2ms  # retry faulty cells
//	gpusweep -sim-timeout 5s          # bound each simulation
//	gpusweep -fault-rate 0.05 -fault-seed 1  # fault-injection drill
//	gpusweep -o run.csv -resume       # journal rows; rerun to finish
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"gpuscale/internal/experiments"
	"gpuscale/internal/fault"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

// cliOptions collects every flag so tests can drive run directly.
type cliOptions struct {
	out        string
	suite      string
	engine     string
	noise      float64
	seed       int64
	workers    int
	corpusFile string
	retries    int
	backoff    time.Duration
	simTimeout time.Duration
	faultRate  float64
	faultSeed  int64
	resume     bool
}

func main() {
	var o cliOptions
	flag.StringVar(&o.out, "o", "", "write raw measurements to this CSV file")
	flag.StringVar(&o.suite, "suite", "", "restrict the sweep to one suite")
	flag.StringVar(&o.engine, "engine", "round", "simulator engine: round or detailed")
	flag.Float64Var(&o.noise, "noise", 0, "measurement-noise stddev (0 = none)")
	flag.Int64Var(&o.seed, "seed", 1, "noise seed")
	flag.IntVar(&o.workers, "workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.StringVar(&o.corpusFile, "corpus", "", "sweep kernels from this JSON file instead of the built-in corpus")
	flag.IntVar(&o.retries, "retries", 0, "extra attempts per cell after a failed or corrupt simulation")
	flag.DurationVar(&o.backoff, "backoff", 0, "initial retry backoff (doubles per retry, capped)")
	flag.DurationVar(&o.simTimeout, "sim-timeout", 0, "per-simulation timeout (0 = none)")
	flag.Float64Var(&o.faultRate, "fault-rate", 0, "inject transient faults at this rate (robustness drills)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed")
	flag.BoolVar(&o.resume, "resume", false, "journal completed rows to -o and, on rerun, recompute only missing rows")
	dumpCorpus := flag.String("dump-corpus", "", "write the built-in corpus as JSON to this file and exit")
	flag.Parse()

	if *dumpCorpus != "" {
		if err := writeCorpus(*dumpCorpus); err != nil {
			fmt.Fprintln(os.Stderr, "gpusweep:", err)
			os.Exit(1)
		}
		return
	}
	// Ctrl-C cancels the sweep but still reports (and, in resume
	// mode, keeps) every completed row.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "gpusweep:", err)
		os.Exit(1)
	}
}

// writeCorpus exports the built-in corpus as a JSON kernel list that
// -corpus can read back (possibly after hand edits).
func writeCorpus(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := kernel.WriteAll(f, suites.AllKernels(suites.Corpus())); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// loadCorpus reads a JSON kernel list for a custom sweep.
func loadCorpus(path string) ([]*kernel.Kernel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kernel.ReadAll(f)
}

func run(ctx context.Context, o cliOptions) error {
	opts := sweep.Options{
		Workers:     o.workers,
		NoiseStdDev: o.noise,
		Seed:        o.seed,
		Retries:     o.retries,
		Backoff:     o.backoff,
		SimTimeout:  o.simTimeout,
	}
	switch o.engine {
	case "round":
		opts.Engine = sweep.Round
	case "detailed":
		opts.Engine = sweep.Detailed
	default:
		return fmt.Errorf("unknown engine %q (want round or detailed)", o.engine)
	}
	if o.faultRate > 0 {
		in := fault.Injector{ErrorRate: o.faultRate, Seed: o.faultSeed}
		if err := in.Validate(); err != nil {
			return err
		}
		opts.Sim = in.Wrap(opts.Engine.Func())
	}
	if o.resume && o.out == "" {
		return fmt.Errorf("-resume needs -o (the journal file)")
	}

	var ks []*kernel.Kernel
	switch {
	case o.corpusFile != "":
		if o.suite != "" {
			return fmt.Errorf("-corpus and -suite are mutually exclusive")
		}
		var err error
		ks, err = loadCorpus(o.corpusFile)
		if err != nil {
			return err
		}
	case o.suite == "":
		ks = suites.AllKernels(suites.Corpus())
	default:
		s := suites.FindSuite(suites.Corpus(), o.suite)
		if s == nil {
			return fmt.Errorf("unknown suite %q", o.suite)
		}
		for _, p := range s.Programs {
			for _, e := range p.Kernels {
				ks = append(ks, e.Kernel)
			}
		}
	}
	space := hw.StudySpace()

	var journal *sweep.Journal
	var prior *sweep.Matrix
	if o.resume {
		var err error
		journal, err = sweep.OpenJournal(o.out, space)
		if err != nil {
			return err
		}
		defer journal.Close()
		prior = journal.Prior()
		opts.OnRow = func(m *sweep.Matrix, r int) {
			if err := journal.AppendRow(m, r); err != nil {
				fmt.Fprintln(os.Stderr, "gpusweep: journal:", err)
			}
		}
	}

	m, rep, err := sweep.Resume(ctx, ks, space, opts, prior)
	if err != nil {
		if rep != nil {
			// A canceled sweep still accounts for everything it touched.
			fmt.Printf("sweep interrupted: %s\n", rep.Summary())
		}
		return err
	}
	fmt.Printf("swept %d kernels x %d configurations: %s\n", len(ks), space.Size(), rep.Summary())
	if !rep.Complete() {
		printFailures(rep)
	}

	if o.suite == "" && o.corpusFile == "" && o.noise == 0 && o.engine == "round" &&
		o.faultRate == 0 && rep.Complete() {
		// The summary table needs the canonical full study.
		s, err := experiments.New()
		if err != nil {
			return err
		}
		fmt.Println(s.TableR1())
	}

	switch {
	case journal != nil:
		// Rows were checkpointed as they completed; just verify.
		if err := journal.VerifyComplete(m.Kernels); err != nil {
			return fmt.Errorf("%w (rerun with -resume to finish)", err)
		}
		fmt.Printf("journal %s complete\n", o.out)
	case o.out != "":
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := m.WriteCSV(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	return nil
}

// printFailures summarises a partial run's failed cells, capped so a
// pathological run does not flood the terminal.
func printFailures(rep *sweep.RunReport) {
	const maxShown = 10
	for i, f := range rep.Failures {
		if i == maxShown {
			fmt.Printf("  ... and %d more failed cells\n", len(rep.Failures)-maxShown)
			break
		}
		fmt.Printf("  failed: %s\n", f)
	}
}
