// Command gpusweep runs the 267-kernel x 891-configuration sweep and
// optionally archives the raw measurements as CSV — the data-collection
// step of the study.
//
// Usage:
//
//	gpusweep                         # run, print Table R-1 summary
//	gpusweep -o results.csv          # also archive raw measurements
//	gpusweep -suite proxyapps        # restrict to one suite
//	gpusweep -engine detailed        # high-fidelity engine (slow)
//	gpusweep -noise 0.05 -seed 7     # inject measurement noise
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpuscale/internal/experiments"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

func main() {
	out := flag.String("o", "", "write raw measurements to this CSV file")
	suite := flag.String("suite", "", "restrict the sweep to one suite")
	engine := flag.String("engine", "round", "simulator engine: round or detailed")
	noise := flag.Float64("noise", 0, "measurement-noise stddev (0 = none)")
	seed := flag.Int64("seed", 1, "noise seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	corpusFile := flag.String("corpus", "", "sweep kernels from this JSON file instead of the built-in corpus")
	dumpCorpus := flag.String("dump-corpus", "", "write the built-in corpus as JSON to this file and exit")
	flag.Parse()

	if *dumpCorpus != "" {
		if err := writeCorpus(*dumpCorpus); err != nil {
			fmt.Fprintln(os.Stderr, "gpusweep:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *suite, *engine, *noise, *seed, *workers, *corpusFile); err != nil {
		fmt.Fprintln(os.Stderr, "gpusweep:", err)
		os.Exit(1)
	}
}

// writeCorpus exports the built-in corpus as a JSON kernel list that
// -corpus can read back (possibly after hand edits).
func writeCorpus(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := kernel.WriteAll(f, suites.AllKernels(suites.Corpus())); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// loadCorpus reads a JSON kernel list for a custom sweep.
func loadCorpus(path string) ([]*kernel.Kernel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kernel.ReadAll(f)
}

func run(out, suiteName, engine string, noise float64, seed int64, workers int, corpusFile string) error {
	opts := sweep.Options{Workers: workers, NoiseStdDev: noise, Seed: seed}
	switch engine {
	case "round":
		opts.Engine = sweep.Round
	case "detailed":
		opts.Engine = sweep.Detailed
	default:
		return fmt.Errorf("unknown engine %q (want round or detailed)", engine)
	}

	var ks []*kernel.Kernel
	switch {
	case corpusFile != "":
		if suiteName != "" {
			return fmt.Errorf("-corpus and -suite are mutually exclusive")
		}
		var err error
		ks, err = loadCorpus(corpusFile)
		if err != nil {
			return err
		}
	case suiteName == "":
		ks = suites.AllKernels(suites.Corpus())
	default:
		s := suites.FindSuite(suites.Corpus(), suiteName)
		if s == nil {
			return fmt.Errorf("unknown suite %q", suiteName)
		}
		for _, p := range s.Programs {
			for _, e := range p.Kernels {
				ks = append(ks, e.Kernel)
			}
		}
	}
	space := hw.StudySpace()

	start := time.Now()
	m, err := sweep.Run(ks, space, opts)
	if err != nil {
		return err
	}
	fmt.Printf("swept %d kernels x %d configurations (%d simulations) in %v\n",
		len(ks), space.Size(), sweep.Runs(len(ks), space.Size()), time.Since(start).Round(time.Millisecond))

	if suiteName == "" && corpusFile == "" && noise == 0 && engine == "round" {
		// The summary table needs the canonical full study.
		s, err := experiments.New()
		if err != nil {
			return err
		}
		fmt.Println(s.TableR1())
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := m.WriteCSV(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}
