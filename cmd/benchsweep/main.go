// Command benchsweep measures sweep throughput for every engine on
// both evaluation paths — the legacy per-cell path (one full
// validate/lower/derive per cell) and the prepared row path (one
// Prepare per kernel, memoized per-config evaluations) — and archives
// the numbers as machine-readable JSON.
//
// The output file (BENCH_sweep.json, schema "gpuscale/bench-sweep/v1")
// is the repository's performance ledger for the data-collection hot
// path: cells per second, nanoseconds per cell, and allocation rates
// per engine and mode, measured on a single worker so the numbers
// price the evaluation pipeline rather than the scheduler. Re-run it
// after touching the engines or the sweep runtime and compare against
// the checked-in copy; see README.md ("Benchmarking the sweep").
//
// Usage:
//
//	benchsweep                  # full 891-config study grid
//	benchsweep -quick           # 27-config grid, one iteration (smoke)
//	benchsweep -o bench.json    # write somewhere else
//	benchsweep -engines round,pipeline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/sweep"
)

// Schema identifies the report format for downstream tooling.
const Schema = "gpuscale/bench-sweep/v1"

// Entry is one (engine, mode) measurement.
type Entry struct {
	// Engine is the simulator engine name (round, detailed, wave,
	// pipeline); Mode is "percell" (legacy path) or "prepared" (row
	// path).
	Engine string `json:"engine"`
	Mode   string `json:"mode"`
	// Kernel geometry and grid size describe the workload.
	Kernel     string `json:"kernel"`
	Workgroups int    `json:"workgroups"`
	WGSize     int    `json:"wg_size"`
	Configs    int    `json:"configs"`
	// Iterations is how many full sweeps the timing loop ran.
	Iterations int `json:"iterations"`
	// NsPerCell and CellsPerSec are wall-clock rates over all
	// iterations; BytesPerCell and AllocsPerCell are heap allocation
	// rates from runtime.MemStats deltas.
	NsPerCell     float64 `json:"ns_per_cell"`
	CellsPerSec   float64 `json:"cells_per_sec"`
	BytesPerCell  float64 `json:"bytes_per_cell"`
	AllocsPerCell float64 `json:"allocs_per_cell"`
}

// Report is the whole ledger.
type Report struct {
	Schema  string  `json:"schema"`
	GOOS    string  `json:"goos"`
	GOARCH  string  `json:"goarch"`
	Quick   bool    `json:"quick"`
	Entries []Entry `json:"entries"`
}

func main() {
	out := flag.String("o", "BENCH_sweep.json", "write the JSON report here (\"-\" for stdout)")
	quick := flag.Bool("quick", false, "27-config grid and a single iteration per entry (CI smoke, not a ledger run)")
	engines := flag.String("engines", "round,detailed,wave,pipeline", "comma-separated engines to measure")
	budget := flag.Duration("budget", 2*time.Second, "per-entry time budget (at least one iteration always runs)")
	flag.Parse()

	rep, err := run(*quick, strings.Split(*engines, ","), *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func run(quick bool, engineNames []string, budget time.Duration) (*Report, error) {
	space := hw.StudySpace()
	if quick {
		var err error
		space, err = hw.NewSpace([]int{8, 24, 44}, []float64{300, 600, 1000}, []float64{300, 700, 1250})
		if err != nil {
			return nil, err
		}
	}
	// Round gets the full-size bench kernel; the event-driven engines
	// get a 256-workgroup one so a per-cell iteration over the grid
	// finishes in tens of seconds, not hours.
	bigK := kernel.New("bench", "bench", "k4096").Geometry(4096, 256).MustBuild()
	smallK := kernel.New("bench", "bench", "k256").Geometry(256, 256).MustBuild()

	rep := &Report{Schema: Schema, GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Quick: quick}
	for _, name := range engineNames {
		e, err := sweep.ParseEngine(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		k := smallK
		if e == sweep.Round {
			k = bigK
		}
		for _, mode := range []string{"percell", "prepared"} {
			opts := sweep.Options{Engine: e, Workers: 1}
			if mode == "percell" {
				opts.Sim = e.Func()
			}
			ent, err := measure(e.String(), mode, k, space, opts, quick, budget)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "%-8s %-8s %9.0f cells/s  %10.0f ns/cell  %8.0f B/cell  %6.1f allocs/cell  (%d iter)\n",
				ent.Engine, ent.Mode, ent.CellsPerSec, ent.NsPerCell, ent.BytesPerCell, ent.AllocsPerCell, ent.Iterations)
			rep.Entries = append(rep.Entries, ent)
		}
	}
	return rep, nil
}

// measure runs whole sweeps of one kernel over the grid until the
// time budget is spent (always at least once) and reports wall-clock
// and allocation rates per cell. A single untimed warm-up run
// excludes one-time costs (scheduler spin-up, first-touch pages) from
// the rates.
func measure(engine, mode string, k *kernel.Kernel, space hw.Space, opts sweep.Options, quick bool, budget time.Duration) (Entry, error) {
	ks := []*kernel.Kernel{k}
	cells := space.Size()
	if _, err := sweep.Run(ks, space, opts); err != nil {
		return Entry{}, fmt.Errorf("%s/%s warm-up: %w", engine, mode, err)
	}
	if quick {
		budget = 0 // one iteration
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	iters := 0
	start := time.Now()
	for {
		if _, err := sweep.Run(ks, space, opts); err != nil {
			return Entry{}, fmt.Errorf("%s/%s: %w", engine, mode, err)
		}
		iters++
		if time.Since(start) >= budget || iters >= 1000 {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	total := float64(iters) * float64(cells)
	return Entry{
		Engine:        engine,
		Mode:          mode,
		Kernel:        k.Name,
		Workgroups:    k.Workgroups,
		WGSize:        k.WGSize,
		Configs:       cells,
		Iterations:    iters,
		NsPerCell:     float64(elapsed.Nanoseconds()) / total,
		CellsPerSec:   total / elapsed.Seconds(),
		BytesPerCell:  float64(m1.TotalAlloc-m0.TotalAlloc) / total,
		AllocsPerCell: float64(m1.Mallocs-m0.Mallocs) / total,
	}, nil
}
