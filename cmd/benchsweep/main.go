// Command benchsweep measures sweep throughput for every engine on
// the three evaluation paths — the legacy per-cell path (one full
// validate/lower/derive per cell), the prepared row path (one Prepare
// per kernel, memoized per-config evaluations), and the batched row
// path (the default: one whole-axis EvalBatch call per row) — and
// archives the numbers as machine-readable JSON.
//
// The output file (BENCH_sweep.json, schema "gpuscale/bench-sweep/v2")
// is the repository's performance ledger for the data-collection hot
// path: cells per second, nanoseconds per cell, and allocation rates
// per engine and mode, measured on a single worker so the numbers
// price the evaluation pipeline rather than the scheduler. Re-run it
// after touching the engines or the sweep runtime and compare against
// the checked-in copy; see README.md ("Benchmarking the sweep").
//
// With -gate, benchsweep instead compares a fresh measurement against
// a committed baseline ledger and exits non-zero when any matching
// (engine, mode) entry regressed by more than -gate-slack — the CI
// guard (`make bench-gate`) that keeps the hot path from silently
// losing its speed. v1 baselines gate their shared entries; modes
// absent from the baseline pass vacuously.
//
// Usage:
//
//	benchsweep                  # full 891-config study grid
//	benchsweep -quick           # 27-config grid, one iteration (smoke)
//	benchsweep -o bench.json    # write somewhere else
//	benchsweep -engines round,pipeline -modes prepared,batch
//	benchsweep -gate BENCH_sweep.json -engines round,pipeline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/sweep"
)

// Schema identifies the report format for downstream tooling. v2 adds
// the "batch" mode (whole-axis EvalBatch rows); v1 reports carry only
// the percell and prepared modes and remain valid gate baselines for
// those.
const Schema = "gpuscale/bench-sweep/v2"

// schemaV1 is accepted read-only as a gate baseline.
const schemaV1 = "gpuscale/bench-sweep/v1"

// Entry is one (engine, mode) measurement.
type Entry struct {
	// Engine is the simulator engine name (round, detailed, wave,
	// pipeline); Mode is "percell" (legacy path), "prepared" (row path,
	// batching disabled) or "batch" (row path, whole-axis EvalBatch).
	Engine string `json:"engine"`
	Mode   string `json:"mode"`
	// Kernel geometry and grid size describe the workload.
	Kernel     string `json:"kernel"`
	Workgroups int    `json:"workgroups"`
	WGSize     int    `json:"wg_size"`
	Configs    int    `json:"configs"`
	// Iterations is how many full sweeps the timing loop ran.
	Iterations int `json:"iterations"`
	// NsPerCell and CellsPerSec are wall-clock rates over all
	// iterations; BytesPerCell and AllocsPerCell are heap allocation
	// rates from runtime.MemStats deltas.
	NsPerCell     float64 `json:"ns_per_cell"`
	CellsPerSec   float64 `json:"cells_per_sec"`
	BytesPerCell  float64 `json:"bytes_per_cell"`
	AllocsPerCell float64 `json:"allocs_per_cell"`
}

// Report is the whole ledger.
type Report struct {
	Schema  string  `json:"schema"`
	GOOS    string  `json:"goos"`
	GOARCH  string  `json:"goarch"`
	Quick   bool    `json:"quick"`
	Entries []Entry `json:"entries"`
}

func main() {
	out := flag.String("o", "BENCH_sweep.json", "write the JSON report here (\"-\" for stdout)")
	quick := flag.Bool("quick", false, "27-config grid and a single iteration per entry (CI smoke, not a ledger run)")
	engines := flag.String("engines", "round,detailed,wave,pipeline", "comma-separated engines to measure")
	modes := flag.String("modes", "percell,prepared,batch", "comma-separated modes to measure (percell, prepared, batch)")
	budget := flag.Duration("budget", 2*time.Second, "per-entry time budget (at least one iteration always runs)")
	gate := flag.String("gate", "", "baseline ledger to gate against; exits non-zero on regression instead of writing a report")
	slack := flag.Float64("gate-slack", 0.25, "allowed fractional ns/cell regression before the gate fails")
	flag.Parse()

	rep, err := run(*quick, splitList(*engines), splitList(*modes), *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	if *gate != "" {
		if err := runGate(rep, *gate, *slack); err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep:", err)
			os.Exit(1)
		}
		return
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runGate compares fresh measurements against the baseline ledger and
// fails on any matching (engine, mode) pair whose ns/cell grew by more
// than slack. Entries without a baseline counterpart (a v1 ledger has
// no batch mode) pass with a notice: a gate can only hold a line that
// was drawn.
func runGate(fresh *Report, baselinePath string, slack float64) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("gate baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("gate baseline %s: %w", baselinePath, err)
	}
	if base.Schema != Schema && base.Schema != schemaV1 {
		return fmt.Errorf("gate baseline %s: unknown schema %q", baselinePath, base.Schema)
	}
	byKey := map[string]Entry{}
	for _, e := range base.Entries {
		byKey[e.Engine+"/"+e.Mode] = e
	}
	failed := false
	for _, e := range fresh.Entries {
		b, present := byKey[e.Engine+"/"+e.Mode]
		if !present || b.NsPerCell <= 0 {
			fmt.Fprintf(os.Stderr, "gate: %-8s %-8s no baseline entry, skipped\n", e.Engine, e.Mode)
			continue
		}
		ratio := e.NsPerCell / b.NsPerCell
		verdict := "ok"
		if ratio > 1+slack {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "gate: %-8s %-8s %10.0f ns/cell vs %10.0f baseline (%.2fx)  %s\n",
			e.Engine, e.Mode, e.NsPerCell, b.NsPerCell, ratio, verdict)
	}
	if failed {
		return fmt.Errorf("gate failed: ns/cell regressed more than %.0f%% against %s", slack*100, baselinePath)
	}
	return nil
}

func run(quick bool, engineNames, modes []string, budget time.Duration) (*Report, error) {
	space := hw.StudySpace()
	if quick {
		var err error
		space, err = hw.NewSpace([]int{8, 24, 44}, []float64{300, 600, 1000}, []float64{300, 700, 1250})
		if err != nil {
			return nil, err
		}
	}
	// Round gets the full-size bench kernel; the event-driven engines
	// get a 256-workgroup one so a per-cell iteration over the grid
	// finishes in tens of seconds, not hours.
	bigK := kernel.New("bench", "bench", "k4096").Geometry(4096, 256).MustBuild()
	smallK := kernel.New("bench", "bench", "k256").Geometry(256, 256).MustBuild()

	rep := &Report{Schema: Schema, GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Quick: quick}
	for _, name := range engineNames {
		e, err := sweep.ParseEngine(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		k := smallK
		if e == sweep.Round {
			k = bigK
		}
		for _, mode := range modes {
			opts := sweep.Options{Engine: e, Workers: 1}
			switch mode {
			case "percell":
				opts.Sim = e.Func()
			case "prepared":
				opts.DisableBatch = true
			case "batch":
				// The default options: prepared rows with whole-axis
				// EvalBatch first attempts.
			default:
				return nil, fmt.Errorf("unknown mode %q (want percell, prepared or batch)", mode)
			}
			ent, err := measure(e.String(), mode, k, space, opts, quick, budget)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "%-8s %-8s %9.0f cells/s  %10.0f ns/cell  %8.0f B/cell  %6.1f allocs/cell  (%d iter)\n",
				ent.Engine, ent.Mode, ent.CellsPerSec, ent.NsPerCell, ent.BytesPerCell, ent.AllocsPerCell, ent.Iterations)
			rep.Entries = append(rep.Entries, ent)
		}
	}
	return rep, nil
}

// measure runs whole sweeps of one kernel over the grid until the
// time budget is spent (always at least once) and reports wall-clock
// and allocation rates per cell. A single untimed warm-up run
// excludes one-time costs (scheduler spin-up, first-touch pages) from
// the rates.
func measure(engine, mode string, k *kernel.Kernel, space hw.Space, opts sweep.Options, quick bool, budget time.Duration) (Entry, error) {
	ks := []*kernel.Kernel{k}
	cells := space.Size()
	if _, err := sweep.Run(ks, space, opts); err != nil {
		return Entry{}, fmt.Errorf("%s/%s warm-up: %w", engine, mode, err)
	}
	if quick {
		budget = 0 // one iteration
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	iters := 0
	start := time.Now()
	for {
		if _, err := sweep.Run(ks, space, opts); err != nil {
			return Entry{}, fmt.Errorf("%s/%s: %w", engine, mode, err)
		}
		iters++
		if time.Since(start) >= budget || iters >= 1000 {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	total := float64(iters) * float64(cells)
	return Entry{
		Engine:        engine,
		Mode:          mode,
		Kernel:        k.Name,
		Workgroups:    k.Workgroups,
		WGSize:        k.WGSize,
		Configs:       cells,
		Iterations:    iters,
		NsPerCell:     float64(elapsed.Nanoseconds()) / total,
		CellsPerSec:   total / elapsed.Seconds(),
		BytesPerCell:  float64(m1.TotalAlloc-m0.TotalAlloc) / total,
		AllocsPerCell: float64(m1.Mallocs-m0.Mallocs) / total,
	}, nil
}
