package main

import "testing"

func TestRunArtifacts(t *testing.T) {
	if err := run(2, 0); err != nil {
		t.Fatalf("-table 2: %v", err)
	}
	if err := run(5, 0); err != nil {
		t.Fatalf("-table 5: %v", err)
	}
	if err := run(0, 8); err != nil {
		t.Fatalf("-fig 8: %v", err)
	}
	if err := run(0, 0); err != nil {
		t.Fatalf("default: %v", err)
	}
}

func TestRunRejectsForeignArtifacts(t *testing.T) {
	if err := run(3, 0); err == nil {
		t.Error("-table 3 accepted (belongs to taxonomy)")
	}
	if err := run(0, 2); err == nil {
		t.Error("-fig 2 accepted (belongs to taxonomy)")
	}
}
