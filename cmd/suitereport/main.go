// Command suitereport prints the corpus-composition and
// suite-scalability artifacts (Tables R-2 and R-5, Fig R-8) — the
// paper's "do current benchmark suites scale to modern GPU sizes?"
// analysis.
//
// Usage:
//
//	suitereport              # all three artifacts
//	suitereport -table 2     # corpus composition only
//	suitereport -table 5     # scalability verdicts only
//	suitereport -fig 8       # per-suite efficiency quartiles only
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuscale/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "print one table (2 or 5)")
	fig := flag.Int("fig", 0, "print one figure (8)")
	flag.Parse()

	if err := run(*table, *fig); err != nil {
		fmt.Fprintln(os.Stderr, "suitereport:", err)
		os.Exit(1)
	}
}

func run(table, fig int) error {
	s, err := experiments.New()
	if err != nil {
		return err
	}
	all := table == 0 && fig == 0
	if all || table == 2 {
		fmt.Println(s.TableR2())
	}
	if all || table == 5 {
		t, err := s.TableR5()
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if all || fig == 8 {
		f, err := s.FigR8()
		if err != nil {
			return err
		}
		fmt.Println(f)
	}
	if !all {
		if table != 0 && table != 2 && table != 5 {
			return fmt.Errorf("no table %d here (taxonomy owns 1/3/4/6)", table)
		}
		if fig != 0 && fig != 8 {
			return fmt.Errorf("no figure %d here (taxonomy owns 1..7)", fig)
		}
	}
	return nil
}
