package main

import "testing"

func TestRunTables(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		if err := run(n); err != nil {
			t.Fatalf("-table %d: %v", n, err)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run(9); err == nil {
		t.Error("-table 9 accepted")
	}
}
