// Command gpupower prints the extension tables: energy-optimal
// configurations per scaling category (E-1), scaling-surface
// prediction accuracy (E-2), and the power-cap governor comparison
// (E-3).
//
// Usage:
//
//	gpupower            # all three extension tables
//	gpupower -table 1   # one of them
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuscale/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "print one extension table (1..5)")
	flag.Parse()

	if err := run(*table); err != nil {
		fmt.Fprintln(os.Stderr, "gpupower:", err)
		os.Exit(1)
	}
}

func run(table int) error {
	s, err := experiments.New()
	if err != nil {
		return err
	}
	all := table == 0
	if all || table == 1 {
		t, err := s.TableE1()
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if all || table == 2 {
		t, err := s.TableE2([]int{2, 4, 8, 12, 16})
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if all || table == 3 {
		t, err := s.TableE3([]float64{120, 150, 200, 275})
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if all || table == 4 {
		t, err := s.TableE4()
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if all || table == 5 {
		t, err := s.TableE5([]float64{0, 50_000, 1_000_000, 5_000_000})
		if err != nil {
			return err
		}
		fmt.Println(t)
	}
	if !all && (table < 1 || table > 5) {
		return fmt.Errorf("no extension table %d", table)
	}
	return nil
}
