// Command gpusim simulates a single corpus kernel on one hardware
// configuration (or along one axis) and prints the timing breakdown —
// the interactive probe for exploring the simulator.
//
// Usage:
//
//	gpusim -list                          # list corpus kernels
//	gpusim -kernel scicomp-p01.k1_stencil # one run at the reference config
//	gpusim -kernel ... -cus 20 -core 600 -mem 700
//	gpusim -kernel ... -json              # machine-readable single run
//	gpusim -kernel ... -axis cu           # marginal sweep along one axis
//	gpusim -kernel ... -engine detailed   # high-fidelity engine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"gpuscale/internal/core"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/report"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

func main() {
	list := flag.Bool("list", false, "list all corpus kernels")
	name := flag.String("kernel", "", "corpus kernel name to simulate")
	cus := flag.Int("cus", hw.MaxCUs, "compute units")
	coreMHz := flag.Float64("core", 1000, "core clock (MHz)")
	memMHz := flag.Float64("mem", 1250, "memory clock (MHz)")
	axis := flag.String("axis", "", "sweep one axis instead: cu, coreclk, or memclk")
	engine := flag.String("engine", "round", "simulator engine: round or detailed")
	jsonOut := flag.Bool("json", false, "emit the single-run result as one JSON object")
	flag.Parse()

	if err := run(os.Stdout, *list, *name, *cus, *coreMHz, *memMHz, *axis, *engine, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}
}

func findKernel(name string) (*kernel.Kernel, error) {
	for _, k := range suites.AllKernels(suites.Corpus()) {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernel %q not in corpus (use -list)", name)
}

// runResult is the -json shape: one flat object per run so shell
// pipelines can jq it without digging.
type runResult struct {
	Kernel         string  `json:"kernel"`
	Engine         string  `json:"engine"`
	CUs            int     `json:"cus"`
	CoreMHz        float64 `json:"core_mhz"`
	MemMHz         float64 `json:"mem_mhz"`
	TimeNS         float64 `json:"time_ns"`
	KernelNS       float64 `json:"kernel_ns"`
	Throughput     float64 `json:"throughput"`
	AchievedGFLOPS float64 `json:"achieved_gflops"`
	AchievedGBs    float64 `json:"achieved_gbs"`
	PeakGFLOPS     float64 `json:"peak_gflops"`
	PeakGBs        float64 `json:"peak_gbs"`
	L1HitRate      float64 `json:"l1_hit_rate"`
	L2HitRate      float64 `json:"l2_hit_rate"`
	OccupancyWaves int     `json:"occupancy_waves"`
	Bound          string  `json:"bound"`
	BoundShare     float64 `json:"bound_share"`
}

func run(w io.Writer, list bool, name string, cus int, coreMHz, memMHz float64, axis, engine string, jsonOut bool) error {
	if list {
		t := &report.Table{
			Title:  "Corpus kernels",
			Header: []string{"kernel", "suite", "workgroups", "wg size"},
		}
		for _, s := range suites.Corpus() {
			for _, p := range s.Programs {
				for _, e := range p.Kernels {
					t.AddRow(e.Kernel.Name, s.Name, e.Kernel.Workgroups, e.Kernel.WGSize)
				}
			}
		}
		fmt.Fprint(w, t)
		return nil
	}
	if name == "" {
		return fmt.Errorf("need -kernel or -list")
	}
	k, err := findKernel(name)
	if err != nil {
		return err
	}
	sim := gcn.Simulate
	if engine == "detailed" {
		sim = gcn.SimulateDetailed
	} else if engine != "round" {
		return fmt.Errorf("unknown engine %q", engine)
	}

	if axis != "" {
		if jsonOut {
			return fmt.Errorf("-json applies to single runs, not -axis sweeps")
		}
		return sweepAxis(w, k, axis)
	}

	cfg := hw.Config{CUs: cus, CoreClockMHz: coreMHz, MemClockMHz: memMHz}
	r, err := sim(k, cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		return enc.Encode(runResult{
			Kernel:         k.Name,
			Engine:         engine,
			CUs:            cfg.CUs,
			CoreMHz:        cfg.CoreClockMHz,
			MemMHz:         cfg.MemClockMHz,
			TimeNS:         r.TimeNS,
			KernelNS:       r.KernelNS,
			Throughput:     r.Throughput,
			AchievedGFLOPS: r.AchievedGFLOPS,
			AchievedGBs:    r.AchievedGBs,
			PeakGFLOPS:     cfg.PeakGFLOPS(),
			PeakGBs:        cfg.PeakBandwidthGBs(),
			L1HitRate:      r.HitRates.L1,
			L2HitRate:      r.HitRates.L2,
			OccupancyWaves: r.OccupancyWaves,
			Bound:          fmt.Sprintf("%v", r.Bound),
			BoundShare:     r.BoundShare,
		})
	}
	t := &report.Table{
		Title:  fmt.Sprintf("%s @ %s (%s engine)", k.Name, cfg, engine),
		Header: []string{"metric", "value"},
	}
	t.AddRow("time (us)", r.TimeNS/1000)
	t.AddRow("kernel time (us)", r.KernelNS/1000)
	t.AddRow("throughput (items/ns)", r.Throughput)
	t.AddRow("achieved GFLOP/s", r.AchievedGFLOPS)
	t.AddRow("achieved DRAM GB/s", r.AchievedGBs)
	t.AddRow("peak GFLOP/s", cfg.PeakGFLOPS())
	t.AddRow("peak DRAM GB/s", cfg.PeakBandwidthGBs())
	t.AddRow("L1 hit rate", r.HitRates.L1)
	t.AddRow("L2 hit rate", r.HitRates.L2)
	t.AddRow("occupancy (waves/CU)", r.OccupancyWaves)
	t.AddRow("dominant bound", fmt.Sprintf("%v (%.0f%% of time)", r.Bound, 100*r.BoundShare))
	fmt.Fprint(w, t)
	return nil
}

func sweepAxis(w io.Writer, k *kernel.Kernel, axisName string) error {
	var axis core.Axis
	switch axisName {
	case "cu":
		axis = core.AxisCU
	case "coreclk":
		axis = core.AxisCoreClock
	case "memclk":
		axis = core.AxisMemClock
	default:
		return fmt.Errorf("unknown axis %q (want cu, coreclk, or memclk)", axisName)
	}
	space := hw.StudySpace()
	m, err := sweep.Run([]*kernel.Kernel{k}, space, sweep.Options{})
	if err != nil {
		return err
	}
	s := core.Surfaces(m)[0]
	r := s.Marginal(axis)
	cl := core.DefaultClassifier().Classify(s)
	chart := report.LineChart{
		Title: fmt.Sprintf("%s vs %s (shape when swept: category %v)",
			k.Name, axis, cl.Category),
		XLabel: axis.String(), YLabel: "normalised speedup",
		Series: []report.Series{{Name: k.Name, X: r.Settings, Y: r.Curve}},
	}
	fmt.Fprint(w, chart.String())
	fmt.Fprintln(w)
	fmt.Fprint(w, cl.Explain())
	return nil
}
