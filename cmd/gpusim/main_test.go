package main

import (
	"testing"

	"gpuscale/internal/suites"
)

// corpusKernel is any real corpus kernel name, discovered not guessed.
var corpusKernel = suites.AllKernels(suites.Corpus())[0].Name

func TestRunList(t *testing.T) {
	if err := run(true, "", 44, 1000, 1250, "", "round"); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunSingle(t *testing.T) {
	if err := run(false, corpusKernel, 20, 600, 700, "", "round"); err != nil {
		t.Fatalf("single run: %v", err)
	}
	if err := run(false, corpusKernel, 20, 600, 700, "", "detailed"); err != nil {
		t.Fatalf("detailed run: %v", err)
	}
}

func TestRunAxisSweep(t *testing.T) {
	for _, axis := range []string{"cu", "coreclk", "memclk"} {
		if err := run(false, corpusKernel, 44, 1000, 1250, axis, "round"); err != nil {
			t.Fatalf("-axis %s: %v", axis, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(false, "", 44, 1000, 1250, "", "round"); err == nil {
		t.Error("missing kernel accepted")
	}
	if err := run(false, "nope", 44, 1000, 1250, "", "round"); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := run(false, corpusKernel, 44, 1000, 1250, "", "warp"); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run(false, corpusKernel, 44, 1000, 1250, "diagonal", "round"); err == nil {
		t.Error("unknown axis accepted")
	}
}
