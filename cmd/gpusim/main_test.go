package main

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"gpuscale/internal/suites"
)

// corpusKernel is any real corpus kernel name, discovered not guessed.
var corpusKernel = suites.AllKernels(suites.Corpus())[0].Name

func TestRunList(t *testing.T) {
	if err := run(io.Discard, true, "", 44, 1000, 1250, "", "round", false); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunSingle(t *testing.T) {
	if err := run(io.Discard, false, corpusKernel, 20, 600, 700, "", "round", false); err != nil {
		t.Fatalf("single run: %v", err)
	}
	if err := run(io.Discard, false, corpusKernel, 20, 600, 700, "", "detailed", false); err != nil {
		t.Fatalf("detailed run: %v", err)
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, false, corpusKernel, 20, 600, 700, "", "round", true); err != nil {
		t.Fatalf("-json run: %v", err)
	}
	out := sb.String()
	if strings.Count(strings.TrimSpace(out), "\n") != 0 {
		t.Fatalf("-json should emit exactly one line, got:\n%s", out)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if got["kernel"] != corpusKernel || got["engine"] != "round" {
		t.Fatalf("identity fields wrong: %v", got)
	}
	for _, key := range []string{
		"cus", "core_mhz", "mem_mhz", "time_ns", "kernel_ns", "throughput",
		"achieved_gflops", "achieved_gbs", "peak_gflops", "peak_gbs",
		"l1_hit_rate", "l2_hit_rate", "occupancy_waves", "bound", "bound_share",
	} {
		if _, ok := got[key]; !ok {
			t.Errorf("-json missing key %q: %s", key, out)
		}
	}
	if tn, _ := got["time_ns"].(float64); !(tn > 0) {
		t.Errorf("time_ns = %v, want > 0", got["time_ns"])
	}
	if b, _ := got["bound"].(string); b == "" {
		t.Errorf("bound should be a non-empty string: %v", got["bound"])
	}
}

func TestRunAxisSweep(t *testing.T) {
	for _, axis := range []string{"cu", "coreclk", "memclk"} {
		if err := run(io.Discard, false, corpusKernel, 44, 1000, 1250, axis, "round", false); err != nil {
			t.Fatalf("-axis %s: %v", axis, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(io.Discard, false, "", 44, 1000, 1250, "", "round", false); err == nil {
		t.Error("missing kernel accepted")
	}
	if err := run(io.Discard, false, "nope", 44, 1000, 1250, "", "round", false); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := run(io.Discard, false, corpusKernel, 44, 1000, 1250, "", "warp", false); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run(io.Discard, false, corpusKernel, 44, 1000, 1250, "diagonal", "round", false); err == nil {
		t.Error("unknown axis accepted")
	}
	if err := run(io.Discard, false, corpusKernel, 44, 1000, 1250, "cu", "round", true); err == nil {
		t.Error("-json with -axis accepted")
	}
}
