package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleArtifacts(t *testing.T) {
	if err := run(3, 0, false, false, 8, "", "", ""); err != nil {
		t.Fatalf("-table 3: %v", err)
	}
	if err := run(0, 2, false, false, 8, "", "", ""); err != nil {
		t.Fatalf("-fig 2: %v", err)
	}
	if err := run(0, 0, false, true, 8, "", "", ""); err != nil {
		t.Fatalf("-baseline: %v", err)
	}
}

func TestRunRejectsUnknownArtifacts(t *testing.T) {
	if err := run(2, 0, false, false, 8, "", "", ""); err == nil {
		t.Error("-table 2 accepted (belongs to suitereport)")
	}
	if err := run(99, 0, false, false, 8, "", "", ""); err == nil {
		t.Error("-table 99 accepted")
	}
	if err := run(0, 99, false, false, 8, "", "", ""); err == nil {
		t.Error("-fig 99 accepted")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every artifact")
	}
	if err := run(0, 0, true, false, 8, "", "", ""); err != nil {
		t.Fatalf("-all: %v", err)
	}
}

func TestRunCSVExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "classes.csv")
	if err := run(0, 0, false, false, 8, path, "", ""); err != nil {
		t.Fatalf("-csv: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "kernel,suite,archetype,category") {
		t.Fatalf("CSV header missing: %.80s", s)
	}
	if lines := strings.Count(s, "\n"); lines != 268 {
		t.Fatalf("CSV lines = %d, want 268 (header + 267 kernels)", lines)
	}
	if err := run(0, 0, false, false, 8, "/no/such/dir/x.csv", "", ""); err == nil {
		t.Error("unwritable CSV path accepted")
	}
}

func TestRunMarkdownReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	if err := run(0, 0, false, false, 8, "", path, ""); err != nil {
		t.Fatalf("-md: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"# gpuscale study report", "Table R-3", "Table E-4", "## Figure R-2", "## Figure C-2"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if err := run(0, 0, false, false, 8, "", "/no/such/dir/x.md", ""); err == nil {
		t.Error("unwritable markdown path accepted")
	}
}

func TestRunSVGFigures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "figs")
	if err := run(0, 0, false, false, 8, "", "", dir); err != nil {
		t.Fatalf("-svgdir: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 7 {
		t.Fatalf("SVG figures = %d, want >= 7", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig-r2-cu-intolerance.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("not an SVG file")
	}
}
