// Command taxonomy runs the full reproduction pipeline and prints the
// taxonomy tables and figures of EXPERIMENTS.md.
//
// Usage:
//
//	taxonomy -all           # every table and figure
//	taxonomy -table 3       # one table (1, 3, 4, 6)
//	taxonomy -fig 2         # one figure (1..8)
//	taxonomy -baseline      # roofline-baseline confusion table
//	taxonomy -k 8           # cluster count for table 6 / fig 4
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuscale/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "print one table (1, 3, 4, or 6)")
	fig := flag.Int("fig", 0, "print one figure (1..8)")
	all := flag.Bool("all", false, "print every table and figure")
	baseline := flag.Bool("baseline", false, "print the roofline-baseline confusion table")
	k := flag.Int("k", 8, "cluster count for the data-driven taxonomy")
	csvPath := flag.String("csv", "", "also export per-kernel classifications to this CSV file")
	mdPath := flag.String("md", "", "write the full study as a markdown report to this file")
	svgDir := flag.String("svgdir", "", "write the key figures as SVG files into this directory")
	flag.Parse()

	if err := run(*table, *fig, *all, *baseline, *k, *csvPath, *mdPath, *svgDir); err != nil {
		fmt.Fprintln(os.Stderr, "taxonomy:", err)
		os.Exit(1)
	}
}

func run(table, fig int, all, baseline bool, k int, csvPath, mdPath, svgDir string) error {
	s, err := experiments.New()
	if err != nil {
		return err
	}
	wroteArtifacts := false
	if svgDir != "" {
		n, err := s.WriteSVGFigures(svgDir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d SVG figures to %s\n", n, svgDir)
		wroteArtifacts = true
	}
	if mdPath != "" {
		f, err := os.Create(mdPath)
		if err != nil {
			return err
		}
		if err := s.WriteMarkdownReport(f, k); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", mdPath)
		wroteArtifacts = true
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := s.WriteClassificationsCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
		wroteArtifacts = true
	}
	if wroteArtifacts && table == 0 && fig == 0 && !all && !baseline {
		return nil
	}
	if !all && table == 0 && fig == 0 && !baseline {
		all = true
	}
	printTable := func(n int) error {
		switch n {
		case 1:
			fmt.Println(s.TableR1())
		case 3:
			fmt.Println(s.TableR3())
		case 4:
			fmt.Println(s.TableR4())
		case 6:
			t, err := s.TableR6(k)
			if err != nil {
				return err
			}
			fmt.Println(t)
		default:
			return fmt.Errorf("no table %d here (2 and 5 live in suitereport)", n)
		}
		return nil
	}
	printFig := func(n int) error {
		var out string
		var err error
		switch n {
		case 1:
			out, err = s.FigR1()
		case 2:
			out, err = s.FigR2()
		case 3:
			out, err = s.FigR3()
		case 4:
			out, err = s.FigR4(k)
		case 5:
			out, err = s.FigR5(10)
		case 6:
			out, err = s.FigR6()
		case 7:
			out = s.FigR7()
		case 8:
			out, err = s.FigR8()
		default:
			return fmt.Errorf("no figure %d", n)
		}
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}

	if all {
		for _, n := range []int{1, 3, 4, 6} {
			if err := printTable(n); err != nil {
				return err
			}
		}
		p1, err := s.TableP1()
		if err != nil {
			return err
		}
		fmt.Println(p1)
		fmt.Println(s.TableC1())
		i1, err := s.TableI1()
		if err != nil {
			return err
		}
		fmt.Println(i1)
		fmt.Println(s.TableBaseline())
		fmt.Println(s.TableArchetypeRecovery())
		for n := 1; n <= 8; n++ {
			if err := printFig(n); err != nil {
				return err
			}
		}
		return nil
	}
	if table != 0 {
		if err := printTable(table); err != nil {
			return err
		}
	}
	if fig != 0 {
		if err := printFig(fig); err != nil {
			return err
		}
	}
	if baseline {
		fmt.Println(s.TableBaseline())
	}
	return nil
}
