GO ?= go

.PHONY: build test check fuzz-smoke soak-smoke soak-dist soak-byzantine soak-failover bench bench-obs bench-sweep bench-smoke bench-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast robustness gate: vet everything, race-test the sweep runtime
# (including the supervised executor, journal recovery and
# kill-resume tests), the fault injector, and the observability layer
# (the concurrency-heavy packages) plus the CLIs, then smoke the fuzz
# targets.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/sweep/... ./internal/fault/... ./internal/obs/... ./internal/serve/... ./internal/dist/... ./cmd/gpusweep/... ./cmd/gpuscaled/... ./cmd/sweeptrace/...
	$(GO) test -race -run 'TestPreparedRowMatchesPerCell|TestResidentSetMatchesReference' ./internal/gcn/
	$(MAKE) fuzz-smoke

# Extended chaos soak of the sweep service: concurrent clients, fault
# injection and a mid-soak restart, under the race detector. The
# default in-tree soak is a few hundred milliseconds; this runs it for
# ~10s wall-clock — still well under 30s — as the pre-merge drill.
soak-smoke:
	GPUSCALE_SOAK_MS=10000 $(GO) test -race -run TestChaosSoak -v -count=1 ./internal/serve/

# Multi-process distributed chaos soak: a coordinator plus three
# child-process workers, with SIGKILLs, coordinator crash-restarts and
# injected network faults (dropped acks, duplicated deliveries,
# delays), race-enabled. Asserts exactly-once completion, a merged
# matrix byte-identical to a single-node run, and the no-two-live-
# epochs ledger invariant. On failure the log prints the chaos seed;
# replay it with GPUSCALE_FAULT_SEED=<seed> make soak-dist.
soak-dist:
	GPUSCALE_SOAK_MS=10000 $(GO) test -race -run TestChaosSoakDistributed -v -count=1 ./internal/dist/

# Byzantine fleet soak: a worker that corrupts every row it computes
# (journal, wire and attested digest consistently wrong), a worker on
# a stale protocol version, two honest workers, and a coordinator
# crash-restart after the quarantine lands — race-enabled. Asserts the
# stale worker is fenced before computing, the liar is quarantined
# with its rows invalidated and re-executed, the merged result stays
# byte-identical to a single-node run, and the ledger audit names
# every corrupt row. On failure the log prints the seed; replay it
# with GPUSCALE_FAULT_SEED=<seed> make soak-byzantine.
soak-byzantine:
	GPUSCALE_SOAK_MS=10000 $(GO) test -race -run TestChaosSoakByzantine -v -count=1 ./internal/dist/

# Coordinator-failover soak: a primary with a warm standby tailing its
# lease ledger over a partition-prone replication link, three workers
# under injected faults including seeded network partitions. The
# primary is killed mid-sweep, the standby promotes itself under a new
# term, workers re-join it through peer rotation with jittered
# backoff, and the deposed primary is term-fenced when it limps back —
# race-enabled. Asserts exactly-once completion across the failover, a
# merged matrix byte-identical to a single-node run, and the
# monotonic-terms / no-two-live-primaries ledger audit. On failure the
# log prints the seed; replay with GPUSCALE_FAULT_SEED=<seed> make
# soak-failover.
soak-failover:
	GPUSCALE_SOAK_MS=10000 $(GO) test -race -run TestChaosSoakFailover -v -count=1 ./internal/dist/

# Short coverage-guided fuzz of the journal decoder, the CSV loaders
# and the lease-ledger scanner (go test takes one -fuzz target per
# invocation).
fuzz-smoke:
	$(GO) test ./internal/sweep -run '^$$' -fuzz 'FuzzJournalScan$$' -fuzztime 5s
	$(GO) test ./internal/sweep -run '^$$' -fuzz 'FuzzReadCSV$$' -fuzztime 5s
	$(GO) test ./internal/dist -run '^$$' -fuzz 'FuzzLedgerScan$$' -fuzztime 5s

bench:
	$(GO) test -bench=. -benchmem

# Row-evaluation benchmark: measures every engine over the study grid
# in the legacy per-cell, prepared-row, and batched modes and archives
# the numbers in BENCH_sweep.json (schema documented in README.md).
# bench-smoke is the quick variant: a 27-config grid, one iteration,
# stdout only — a sanity check that the harness still runs.
bench-sweep:
	$(GO) run ./cmd/benchsweep -o BENCH_sweep.json

bench-smoke:
	$(GO) run ./cmd/benchsweep -quick -o -

# Per-cell throughput gate: re-measure the analytic engines' prepared
# and batched modes and fail if any (engine, mode) pair runs more than
# 25% slower per cell than the committed BENCH_sweep.json ledger. Only
# the fast modes are gated (the per-cell event engines take minutes
# and their variance would drown the signal).
bench-gate:
	$(GO) run ./cmd/benchsweep -engines round,pipeline -modes prepared,batch -budget 3s -gate BENCH_sweep.json

# Observer-overhead gates: the disabled (no-op) observer must add less
# than 5% to the sweep hot path, and the full distributed-tracing path
# (trace writer + span context + flight recorder) less than 10%. The
# assertions are env-gated so plain `go test ./...` stays
# timing-independent.
bench-obs:
	GPUSCALE_BENCH_OBS=1 $(GO) test -run 'TestNopObserverOverhead|TestTracedSweepOverhead' -v ./internal/sweep/
	$(GO) test -bench 'BenchmarkSweep(SingleKernelFullGrid|NopObserver)$$' -benchmem ./
