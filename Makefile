GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast robustness gate: vet everything, race-test the sweep runtime
# and the fault injector (the concurrency-heavy packages).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/sweep/... ./internal/fault/...

bench:
	$(GO) test -bench=. -benchmem
