GO ?= go

.PHONY: build test check bench bench-obs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast robustness gate: vet everything, race-test the sweep runtime,
# the fault injector, and the observability layer (the
# concurrency-heavy packages) plus the trace-consuming CLI.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/sweep/... ./internal/fault/... ./internal/obs/... ./cmd/sweeptrace/...

bench:
	$(GO) test -bench=. -benchmem

# Observer-overhead gate: the disabled (no-op) observer must add less
# than 5% to the sweep hot path. The assertion is env-gated so plain
# `go test ./...` stays timing-independent.
bench-obs:
	GPUSCALE_BENCH_OBS=1 $(GO) test -run TestNopObserverOverhead -v ./internal/sweep/
	$(GO) test -bench 'BenchmarkSweep(SingleKernelFullGrid|NopObserver)$$' -benchmem ./
