package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/kernel"
)

// testSpec returns a small, fast job: 2 kernels x 8 configurations.
func testSpec(t *testing.T) JobSpec {
	t.Helper()
	ks := []*kernel.Kernel{
		kernel.New("s", "p", "a").Geometry(512, 256).MustBuild(),
		kernel.New("s", "p", "b").Geometry(512, 256).Compute(30000, 100).MustBuild(),
	}
	var buf bytes.Buffer
	if err := kernel.WriteAll(&buf, ks); err != nil {
		t.Fatal(err)
	}
	return JobSpec{
		Kernels: json.RawMessage(buf.Bytes()),
		Space: &SpaceSpec{
			CUs:     []int{4, 24},
			CoreMHz: []float64{200, 1000},
			MemMHz:  []float64{150, 1250},
		},
	}
}

// slowInjector makes every engine call sleep a few milliseconds so
// tests can catch jobs mid-flight deterministically (the delay is
// seeded, and latency faults never change results).
func slowInjector() fault.Injector {
	return fault.Injector{LatencyRate: 1, Latency: 4 * time.Millisecond, Seed: 3}
}

// waitFor polls cond every millisecond until it holds or the deadline
// lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitTerminal polls a job until it settles and returns its status.
func waitTerminal(t *testing.T, s *Service, id string) JobStatus {
	t.Helper()
	var st JobStatus
	waitFor(t, 30*time.Second, "job "+id+" to settle", func() bool {
		var err error
		st, err = s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		return st.State.Terminal()
	})
	return st
}

func drain(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	st, err := s.Submit("alice", testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Kernels != 2 || st.Configs != 8 {
		t.Fatalf("submit status = %+v", st)
	}
	st = waitTerminal(t, s, st.ID)
	if st.State != StateComplete {
		t.Fatalf("state = %s (%s), want complete", st.State, st.Reason)
	}
	if st.RowsDone != 2 || st.Coverage != 1 {
		t.Fatalf("rows done %d coverage %g, want 2 and 1", st.RowsDone, st.Coverage)
	}
	if st.Summary == "" {
		t.Fatal("terminal job has no summary")
	}
	var csvBuf bytes.Buffer
	if err := s.MatrixCSV(st.ID, &csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "kernel,") {
		t.Fatalf("matrix does not look like sweep CSV: %.40q", csvBuf.String())
	}
	// Crash-only persistence: admission record, journal, archived
	// matrix and terminal state are all on disk.
	for _, p := range []string{s.jobPath(st.ID), s.journalPath(st.ID), s.matrixPath(st.ID), s.statePath(st.ID)} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s after completion", p)
		}
	}
}

func TestQueueBoundSheds(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1, MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("alice", testSpec(t)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err = s.Submit("alice", testSpec(t))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueFull {
		t.Fatalf("3rd submit over MaxJobs=2: %v, want queue_full shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed has no Retry-After hint: %+v", shed)
	}
	if got := s.met.shed[ShedQueueFull].Value(); got != 1 {
		t.Fatalf("serve_shed_total{queue_full} = %d, want 1", got)
	}
	if got := s.met.openJobs.Value(); got != 2 {
		t.Fatalf("serve_open_jobs = %g, want 2", got)
	}
}

func TestRateLimitSheds(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, err := New(Config{Dir: t.TempDir(), Runners: -1, MaxJobs: 16, Rate: 1, Burst: 1, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("alice", testSpec(t)); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit("alice", testSpec(t))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedRateLimited {
		t.Fatalf("burst-exhausted submit: %v, want rate_limited shed", err)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > time.Second {
		t.Fatalf("retry-after %v, want (0, 1s]", shed.RetryAfter)
	}
	now = now.Add(time.Second) // the bucket refills one token
	if _, err := s.Submit("alice", testSpec(t)); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
}

func TestClientCapSheds(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1, MaxJobs: 16, ClientCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("alice", testSpec(t)); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit("alice", testSpec(t))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedClientCap {
		t.Fatalf("over-cap submit: %v, want client_cap shed", err)
	}
	// The cap is per client: bob is unaffected by alice's jobs.
	if _, err := s.Submit("bob", testSpec(t)); err != nil {
		t.Fatalf("other client's submit: %v", err)
	}
}

func TestDrainingShedsAndFlipsReadiness(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
		t.Fatal("fresh service not ready")
	}
	drain(t, s)
	if s.Ready() {
		t.Fatal("still ready after drain")
	}
	_, err = s.Submit("alice", testSpec(t))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedDraining {
		t.Fatalf("submit while draining: %v, want draining shed", err)
	}
}

func TestCancelQueuedJobFreesItsSlot(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1, MaxJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit("alice", testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled || got.Reason != "canceled by client" {
		t.Fatalf("canceled queued job = %+v", got)
	}
	if _, err := os.Stat(s.statePath(st.ID)); err != nil {
		t.Fatalf("canceled job has no terminal state file: %v", err)
	}
	// The slot is free again: another submission fits under MaxJobs=1.
	if _, err := s.Submit("alice", testSpec(t)); err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	// Canceling a terminal job is a no-op, not an error.
	if again, err := s.Cancel(st.ID); err != nil || again.State != StateCanceled {
		t.Fatalf("re-cancel = %+v, %v", again, err)
	}
}

func TestCancelRunningJobKeepsCompletedRows(t *testing.T) {
	spec := testSpec(t)
	// One slow row at a time: plenty of window to cancel mid-run.
	s, err := New(Config{Dir: t.TempDir(), SweepWorkers: 1, Injector: slowInjector()})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	st, err := s.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "first row to settle", func() bool {
		got, err := s.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return got.RowsDone >= 1
	})
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateCanceled || got.Reason != "canceled by client" {
		t.Fatalf("canceled running job = %+v", got)
	}
	// The archived matrix keeps the completed rows.
	var csvBuf bytes.Buffer
	if err := s.MatrixCSV(st.ID, &csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), ",ok") {
		t.Fatal("canceled job's matrix has no completed cells")
	}
}

func TestDeadlineCancelsJob(t *testing.T) {
	spec := testSpec(t)
	spec.DeadlineMS = 20
	s, err := New(Config{Dir: t.TempDir(), SweepWorkers: 1,
		Injector: fault.Injector{LatencyRate: 1, Latency: 50 * time.Millisecond, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	st, err := s.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateCanceled || got.Reason != "deadline exceeded" {
		t.Fatalf("deadlined job = %+v", got)
	}
}

func TestMaxDeadlineCapsJobs(t *testing.T) {
	spec := testSpec(t)
	spec.DeadlineMS = 3600_000 // asks for an hour
	s, err := New(Config{Dir: t.TempDir(), SweepWorkers: 1, MaxDeadline: 20 * time.Millisecond,
		Injector: fault.Injector{LatencyRate: 1, Latency: 50 * time.Millisecond, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	st, err := s.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateCanceled || got.Reason != "deadline exceeded" {
		t.Fatalf("job over MaxDeadline = %+v", got)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1})
	if err != nil {
		t.Fatal(err)
	}
	good := testSpec(t)
	cases := map[string]JobSpec{
		"empty":             {},
		"suite and kernels": {Suite: "x", Kernels: good.Kernels},
		"unknown suite":     {Suite: "no-such-suite"},
		"unknown engine":    {Kernels: good.Kernels, Engine: "warp-speed"},
		"negative noise":    {Kernels: good.Kernels, Noise: -1},
		"negative deadline": {Kernels: good.Kernels, DeadlineMS: -1},
		"bad space":         {Kernels: good.Kernels, Space: &SpaceSpec{CUs: []int{0}, CoreMHz: []float64{1}, MemMHz: []float64{1}}},
		"empty kernel list": {Kernels: json.RawMessage("[]")},
		"garbage kernels":   {Kernels: json.RawMessage("{nope")},
	}
	for name, spec := range cases {
		_, err := s.Submit("alice", spec)
		if err == nil {
			t.Errorf("%s: accepted, want rejection", name)
			continue
		}
		var shed *ShedError
		if errors.As(err, &shed) {
			t.Errorf("%s: shed (%v), want a client error", name, err)
		}
	}
	// Rejections consume nothing: the table is still empty.
	if got := s.met.openJobs.Value(); got != 0 {
		t.Fatalf("serve_open_jobs = %g after rejections, want 0", got)
	}
	if len(s.List()) != 0 {
		t.Fatalf("rejected specs left jobs behind: %+v", s.List())
	}
}

func TestListOrdersBySubmission(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit("alice", testSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, st.ID)
	}
	got := s.List()
	if len(got) != 3 {
		t.Fatalf("List() has %d jobs, want 3", len(got))
	}
	for i, st := range got {
		if st.ID != want[i] {
			t.Fatalf("List()[%d] = %s, want %s", i, st.ID, want[i])
		}
	}
}

func TestSuiteSpecResolves(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit("alice", JobSpec{Suite: "microbench", Space: testSpec(t).Space})
	if err != nil {
		t.Fatalf("suite submit: %v", err)
	}
	if st.Kernels == 0 {
		t.Fatal("suite resolved to zero kernels")
	}
}
