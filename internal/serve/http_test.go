package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postJob submits spec as client over the test server and returns the
// response.
func postJob(t *testing.T, ts *httptest.Server, client string, spec JobSpec) *http.Response {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client", client)
	res, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func decodeStatus(t *testing.T, res *http.Response) JobStatus {
	t.Helper()
	defer res.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHTTPJobLifecycle(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res := postJob(t, ts, "alice", testSpec(t))
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", res.StatusCode)
	}
	st := decodeStatus(t, res)
	if st.ID == "" || st.Client != "alice" {
		t.Fatalf("submit status = %+v", st)
	}

	waitFor(t, 30*time.Second, "job to complete over HTTP", func() bool {
		res, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		got := decodeStatus(t, res)
		return got.State == StateComplete
	})

	// The list includes it.
	res, err = ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(res.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	// The matrix downloads as CSV.
	res, err = ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/matrix")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "kernel,") {
		t.Fatalf("matrix = %d %.40q", res.StatusCode, body)
	}

	// Health endpoints and metrics respond.
	for path, want := range map[string]int{
		"/healthz": http.StatusOK,
		"/readyz":  http.StatusOK,
		"/metrics": http.StatusOK,
	} {
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, res.StatusCode, want)
		}
	}
	res, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "serve_jobs_admitted_total 1") {
		t.Fatalf("metrics missing admission counter:\n%s", body)
	}
}

func TestHTTPShedCarriesRetryAfter(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1, MaxJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res := postJob(t, ts, "alice", testSpec(t))
	res.Body.Close()
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", res.StatusCode)
	}
	res = postJob(t, ts, "alice", testSpec(t))
	defer res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-bound submit = %d, want 503", res.StatusCode)
	}
	if ra := res.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive hint", ra)
	}
	var e apiError
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Reason != string(ShedQueueFull) {
		t.Fatalf("shed reason = %q, want %q", e.Reason, ShedQueueFull)
	}
}

func TestHTTPRateLimitReturns429(t *testing.T) {
	now := time.Unix(1000, 0)
	s, err := New(Config{Dir: t.TempDir(), Runners: -1, Rate: 1, Burst: 1,
		Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res := postJob(t, ts, "alice", testSpec(t))
	res.Body.Close()
	res = postJob(t, ts, "alice", testSpec(t))
	res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited submit = %d, want 429", res.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Garbage body.
	res, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body = %d, want 400", res.StatusCode)
	}
	// Unknown field: the API is strict so typos fail loudly.
	res, err = ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"suiet":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", res.StatusCode)
	}
	// Unresolvable spec.
	res = postJob(t, ts, "alice", JobSpec{Suite: "no-such-suite"})
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", res.StatusCode)
	}
	// Unknown job: status, cancel, matrix.
	for _, m := range []struct{ method, path string }{
		{"GET", "/v1/jobs/job-999999"},
		{"DELETE", "/v1/jobs/job-999999"},
		{"GET", "/v1/jobs/job-999999/matrix"},
	} {
		req, _ := http.NewRequest(m.method, ts.URL+m.path, nil)
		res, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", m.method, m.path, res.StatusCode)
		}
	}
}

func TestHTTPCancel(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st := decodeStatus(t, postJob(t, ts, "alice", testSpec(t)))
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	res, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeStatus(t, res)
	if res.StatusCode != http.StatusOK || got.State != StateCanceled {
		t.Fatalf("cancel = %d %+v", res.StatusCode, got)
	}
}

func TestHTTPReadyzFlipsDuringDrain(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	drain(t, s)
	res, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", res.StatusCode)
	}
	// Liveness is unaffected: the process still serves.
	res, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", res.StatusCode)
	}
	// Submissions shed with 503.
	res = postJob(t, ts, "alice", testSpec(t))
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", res.StatusCode)
	}
}

func TestHandlerPanicsAreIsolated(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), Runners: -1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	for i := 1; i <= 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("panicking handler = %d, want 500", rec.Code)
		}
		if got := s.met.panics.Value(); got != uint64(i) {
			t.Fatalf("serve_handler_panics_total = %d after %d panics", got, i)
		}
	}
}

func TestHTTPPartialMatrixWhileRunning(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), SweepWorkers: 1, Injector: slowInjector()})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st := decodeStatus(t, postJob(t, ts, "alice", testSpec(t)))
	waitFor(t, 10*time.Second, "first row", func() bool {
		got, err := s.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return got.RowsDone >= 1 && !got.State.Terminal()
	})
	res, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/matrix")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("partial matrix = %d, want 200", res.StatusCode)
	}
	if !strings.Contains(string(body), ",ok") {
		t.Fatalf("partial matrix has no settled cells:\n%.200s", body)
	}
}
