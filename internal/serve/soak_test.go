package serve

// Chaos soak: concurrent clients hammer the service over real HTTP
// while the fault injector breaks simulations (errors, panics,
// latency) and the daemon is drained and restarted mid-soak. The
// invariants under test are the service's whole contract:
//
//   - no admitted job is lost: every 202'd ID ends terminal
//   - no job completes twice: exactly one terminal record per ID
//   - every refusal is accounted: client-observed sheds == shed counters
//   - the admission bound holds: open jobs never exceed MaxJobs
//
// The default soak is a few hundred milliseconds so `go test` stays
// fast; `make soak-smoke` (and CI) run it under -race, and
// GPUSCALE_SOAK_MS extends it for longer drills.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"gpuscale/internal/fault"
)

func soakDuration() time.Duration {
	if ms, err := strconv.Atoi(os.Getenv("GPUSCALE_SOAK_MS")); err == nil && ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return 400 * time.Millisecond
}

func TestChaosSoak(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dir:          dir,
		Runners:      2,
		SweepWorkers: 2,
		MaxJobs:      4,
		ClientCap:    2,
		Retries:      3,
		Backoff:      time.Millisecond,
		DrainGrace:   50 * time.Millisecond,
		Injector: fault.Injector{
			ErrorRate:   0.05,
			PanicRate:   0.01,
			LatencyRate: 0.5,
			Latency:     2 * time.Millisecond,
			Seed:        11,
		},
	}
	spec := testSpec(t)
	specBytes, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	// Clients resolve the current server URL per request; during the
	// restart window requests simply fail and are retried.
	var baseURL atomic.Value
	baseURL.Store(ts1.URL)

	var (
		stop      atomic.Bool
		mu        sync.Mutex
		admitted  []string
		shedSeen  uint64
		lostRes   uint64
		boundErrs atomic.Uint64
	)
	client := &http.Client{Timeout: 5 * time.Second}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for !stop.Load() {
				req, err := http.NewRequest("POST", baseURL.Load().(string)+"/v1/jobs", bytes.NewReader(specBytes))
				if err != nil {
					continue
				}
				req.Header.Set("X-Client", name)
				res, err := client.Do(req)
				if err != nil {
					// Restart window: back off briefly and retry. An
					// error on an established connection (anything but
					// a refused dial) may have severed a response the
					// server already accounted — the old incarnation's
					// Close races its final handlers — so remember how
					// many shed responses could have been lost.
					if !errors.Is(err, syscall.ECONNREFUSED) {
						mu.Lock()
						lostRes++
						mu.Unlock()
					}
					time.Sleep(5 * time.Millisecond)
					continue
				}
				switch res.StatusCode {
				case http.StatusAccepted:
					var st JobStatus
					if err := json.NewDecoder(res.Body).Decode(&st); err == nil {
						mu.Lock()
						admitted = append(admitted, st.ID)
						n := len(admitted)
						mu.Unlock()
						// Keep some churn: cancel every 5th job.
						if n%5 == 0 {
							dreq, _ := http.NewRequest("DELETE", baseURL.Load().(string)+"/v1/jobs/"+st.ID, nil)
							if dres, err := client.Do(dreq); err == nil {
								dres.Body.Close()
							}
						}
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					mu.Lock()
					shedSeen++
					mu.Unlock()
					time.Sleep(2 * time.Millisecond)
				}
				res.Body.Close()
			}
		}("client-" + strconv.Itoa(c))
	}
	// Monitor: the open-jobs gauge must never exceed the bound, on
	// either incarnation of the service.
	activeSvc := atomic.Pointer[Service]{}
	activeSvc.Store(s1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if got := activeSvc.Load().met.openJobs.Value(); got > float64(cfg.MaxJobs) {
				boundErrs.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	dur := soakDuration()
	time.Sleep(dur / 2)

	// Mid-soak restart: drain (interrupting in-flight jobs after a
	// short grace), close the listener, bring a fresh service up on the
	// same directory. Clients keep firing the whole time.
	drain(t, s1)
	ts1.Close() // blocks until in-flight requests finish, so the counters are final
	s1Shed := shedTotal(s1)
	s1Done := doneTotal(s1)
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	activeSvc.Store(s2)
	ts2 := httptest.NewServer(s2.Handler())
	baseURL.Store(ts2.URL)

	time.Sleep(dur / 2)
	stop.Store(true)
	wg.Wait()

	// Let the survivor settle everything that was admitted, then stop.
	waitFor(t, 60*time.Second, "all jobs to settle", func() bool {
		for _, st := range s2.List() {
			if !st.State.Terminal() {
				return false
			}
		}
		return true
	})
	drain(t, s2)
	ts2.Close()

	if n := boundErrs.Load(); n != 0 {
		t.Errorf("open-jobs gauge exceeded MaxJobs %d times", n)
	}

	// No job lost, none double-recorded: every 202'd ID is terminal in
	// the final table, IDs are unique, and each has exactly one state
	// record on disk.
	final := map[string]JobStatus{}
	for _, st := range s2.List() {
		final[st.ID] = st
	}
	mu.Lock()
	got := admitted
	mu.Unlock()
	seen := map[string]bool{}
	for _, id := range got {
		if seen[id] {
			t.Errorf("job ID %s handed out twice", id)
		}
		seen[id] = true
		st, ok := final[id]
		if !ok {
			t.Errorf("admitted job %s lost across restart", id)
			continue
		}
		if !st.State.Terminal() {
			t.Errorf("job %s never settled: %+v", id, st)
		}
		if _, err := os.Stat(s2.statePath(id)); err != nil {
			t.Errorf("job %s has no terminal record: %v", id, err)
		}
	}
	if len(got) == 0 {
		t.Fatal("soak admitted zero jobs — the drill exercised nothing")
	}

	// Shed accounting: every refusal a client saw is in a counter, and
	// counters may lead what clients observed only by responses the
	// restart race severed in flight.
	wantShed := s1Shed + shedTotal(s2)
	mu.Lock()
	observed, lost := shedSeen, lostRes
	mu.Unlock()
	if observed > wantShed || wantShed > observed+lost {
		t.Errorf("clients saw %d sheds (%d responses possibly lost), counters account %d", observed, lost, wantShed)
	}
	// Completion accounting: terminal jobs across both incarnations
	// equal the admitted count (the two services never double-count a
	// job because terminal jobs are never re-run).
	if total := s1Done + doneTotal(s2); total != uint64(len(got)) {
		t.Errorf("serve_jobs_done_total across restarts = %d, want %d", total, len(got))
	}
	t.Logf("soak: %d admitted, %d shed, restart mid-way, all settled", len(got), observed)
}

func shedTotal(s *Service) uint64 {
	var n uint64
	for _, c := range s.met.shed {
		n += c.Value()
	}
	return n
}

func doneTotal(s *Service) uint64 {
	var n uint64
	for _, c := range s.met.done {
		n += c.Value()
	}
	return n
}
