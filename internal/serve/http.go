package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"gpuscale/internal/obs"
)

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// clientID identifies the submitter: the X-Client header when set,
// else the connection's host. Per-client caps key on it.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// shedStatus maps a shed reason to its HTTP status: 429 when the
// client itself is the pressure (slow down), 503 when the service is
// the bottleneck (come back later).
func shedStatus(r ShedReason) int {
	switch r {
	case ShedRateLimited, ShedClientCap:
		return http.StatusTooManyRequests
	default:
		return http.StatusServiceUnavailable
	}
}

// retryAfterSeconds renders a Retry-After value, rounded up so the
// client never retries before the hint.
func retryAfterSeconds(d time.Duration) string {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

// jitterRetryAfter renders a Retry-After hint with up to 50% random
// jitter added, so a whole fleet of workers shed at the same instant
// spreads its retries instead of returning in lockstep — the
// recovery-time thundering herd. Jitter only ever lengthens the hint:
// no client is told to retry before the unjittered value.
func jitterRetryAfter(d time.Duration) string {
	if d < time.Second {
		d = time.Second
	}
	return retryAfterSeconds(d + time.Duration(rand.Int63n(int64(d)/2+1)))
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec; 202 + status, or 429/503 shed
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/matrix the job's matrix as CSV (partial while running)
//	GET    /healthz             liveness: 200 while the process serves
//	GET    /readyz              readiness: 503 while draining
//	GET    /metrics             Prometheus text exposition
//
// Every handler is panic-isolated: a panic becomes a 500 and a
// serve_handler_panics_total increment, never a dead daemon.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrNoSuchJob) {
				code = http.StatusNotFound
			}
			writeJSON(w, code, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/matrix", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		w.Header().Set("Content-Type", "text/csv")
		if err := s.MatrixCSV(id, w); err != nil {
			if errors.Is(err, ErrNoSuchJob) {
				// The header is not committed until the first write, so a
				// matrix-less job still gets a proper 404.
				w.Header().Set("Content-Type", "application/json")
				writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
				return
			}
			s.cfg.Logf("serve: streaming matrix %s: %v", id, err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg.WriteText(w)
	})
	return s.recoverPanics(mux)
}

// handleSubmit decodes a JobSpec and admits or sheds it.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	// A submission carrying a W3C traceparent joins the client's trace;
	// otherwise the job mints its own root. Either way the job's trace
	// ID comes back in the status body and the traceparent response
	// header, so the client can follow the whole fleet run.
	caller, _ := obs.ExtractSpanContext(r.Header)
	st, err := s.SubmitTraced(clientID(r), spec, caller)
	if err != nil {
		var shed *ShedError
		if errors.As(err, &shed) {
			w.Header().Set("Retry-After", jitterRetryAfter(shed.RetryAfter))
			writeJSON(w, shedStatus(shed.Reason), apiError{Error: err.Error(), Reason: string(shed.Reason)})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	if st.Trace != "" {
		w.Header().Set("X-Trace-Id", st.Trace)
	}
	writeJSON(w, http.StatusAccepted, st)
}

// recoverPanics isolates handler panics: one bad request must not
// take down a daemon carrying other clients' jobs.
func (s *Service) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Inc()
				s.cfg.Logf("serve: handler panic on %s %s: %v", r.Method, r.URL.Path, p)
				writeJSON(w, http.StatusInternalServerError, apiError{Error: fmt.Sprintf("internal error: %v", p)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}
