package serve

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// ShedReason names why a submission was refused. Every refusal is
// explicit and accounted — the service never buffers beyond its
// bounds, it says no.
type ShedReason string

const (
	// ShedQueueFull: the bounded job table (queued + running) is at
	// capacity. HTTP 503.
	ShedQueueFull ShedReason = "queue_full"
	// ShedRateLimited: the token bucket is empty. HTTP 429.
	ShedRateLimited ShedReason = "rate_limited"
	// ShedClientCap: this client already has its maximum number of
	// open jobs. HTTP 429.
	ShedClientCap ShedReason = "client_cap"
	// ShedDraining: the service is shutting down and admits nothing
	// new. HTTP 503.
	ShedDraining ShedReason = "draining"
)

// ShedError is the typed refusal Submit returns when admission sheds a
// job. RetryAfter is the client's backoff hint (the Retry-After
// header, rounded up to whole seconds on the wire).
type ShedError struct {
	Reason     ShedReason
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: admission shed (%s, retry after %v)", e.Reason, e.RetryAfter)
}

// tokenBucket is a deterministic token-bucket rate limiter: capacity
// burst, refill rate tokens/second, clock injectable for tests. A
// zero/negative rate disables limiting.
type tokenBucket struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, now: now}
}

// take consumes one token. On refusal it returns the wait until a
// token will be available.
func (b *tokenBucket) take() (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	wait := time.Duration(math.Ceil(need / b.rate * float64(time.Second)))
	return false, wait
}

// clientCaps tracks open (queued + running) jobs per client identity.
type clientCaps struct {
	cap int

	mu   sync.Mutex
	open map[string]int
}

func newClientCaps(cap int) *clientCaps {
	return &clientCaps{cap: cap, open: map[string]int{}}
}

// tryAcquire counts one open job against client; false when the
// client is at its cap. A zero/negative cap disables the check (but
// still counts, so release stays balanced).
func (c *clientCaps) tryAcquire(client string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap > 0 && c.open[client] >= c.cap {
		return false
	}
	c.open[client]++
	return true
}

// release returns one open slot to client.
func (c *clientCaps) release(client string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.open[client] > 0 {
		c.open[client]--
		if c.open[client] == 0 {
			delete(c.open, client)
		}
	}
}
