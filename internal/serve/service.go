package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
	"gpuscale/internal/sweep"
)

// Config sizes the service. Every bound has a safe default; the zero
// value (plus a Dir) is a working single-runner service.
type Config struct {
	// Dir is the state directory: job specs, journals, archived
	// matrices and terminal states all live here. Required.
	Dir string
	// Runners is how many jobs run concurrently. 0 means 1; negative
	// means none (tests drive recovery without execution).
	Runners int
	// SweepWorkers is the per-job sweep parallelism (0 = GOMAXPROCS).
	SweepWorkers int
	// MaxJobs bounds open jobs — queued plus running. Submissions past
	// the bound are shed with 503, never buffered. 0 means 16.
	MaxJobs int
	// Rate and Burst configure the admission token bucket
	// (submissions/second and bucket capacity). Rate 0 disables.
	Rate  float64
	Burst int
	// ClientCap bounds open jobs per client identity. 0 disables.
	ClientCap int
	// MaxDeadline caps (and, for jobs that ask for none, imposes) the
	// per-job deadline. 0 leaves deadlines to the clients.
	MaxDeadline time.Duration
	// DrainGrace is how long Drain lets in-flight jobs keep running
	// before canceling their contexts. 0 cancels immediately —
	// crash-only persistence makes that safe, it just recomputes more
	// rows on the next start.
	DrainGrace time.Duration
	// Retries, Backoff, SimTimeout and StallGrace are the per-cell
	// executor knobs applied to every job (see sweep.Options).
	Retries    int
	Backoff    time.Duration
	SimTimeout time.Duration
	StallGrace time.Duration
	// Breaker is the per-kernel circuit breaker threshold (0 disables).
	Breaker int
	// RunSweep, when non-nil, executes each job's sweep in place of
	// the local executor — the fan-out seam a distributed coordinator
	// (internal/dist) plugs into. The callback receives everything the
	// local path would use, including the job's recovered prior matrix
	// and the OnRow hook that keeps the service's journal and live
	// snapshot current; implementations must invoke OnRow as rows
	// settle (or accept that partial fetches stay empty). Admission,
	// journaling, terminal-state and recovery semantics are identical
	// on both paths.
	RunSweep func(ctx context.Context, req SweepRequest) (*sweep.Matrix, *sweep.RunReport, error)
	// Registry receives service metrics; nil creates a private one.
	Registry *obs.Registry
	// Trace, when non-nil, receives job spans and — via the sweep
	// Observer — per-cell spans, all carrying the job's distributed
	// trace identity. Nil keeps the executor on its nil-observer fast
	// path.
	Trace *obs.TraceWriter
	// Flight, when non-nil, records admissions, shed decisions and job
	// terminal transitions into the crash flight recorder.
	Flight *obs.FlightRecorder
	// Injector, when active, injects deterministic faults into every
	// job's engine calls and journal writes — the chaos-drill hook.
	Injector fault.Injector
	// Replicate, when non-nil, receives every persisted job-spec file
	// (admissions and recovered non-terminal jobs) so an HA coordinator
	// can stream it to a warm standby. The bytes are the exact contents
	// of the `.job` file; the callback must not block for long — it is
	// invoked outside the service lock but on the submit path.
	Replicate func(jobID string, spec []byte)
	// Now is the clock (tests inject a fake one for the rate limiter).
	Now func() time.Time
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// SweepRequest is what Config.RunSweep receives for one job: the
// resolved work plus the hooks that keep the service's crash-only
// bookkeeping intact however the sweep is executed.
type SweepRequest struct {
	// JobID is the service's job identifier, usable as a distributed
	// job name.
	JobID string
	// Kernels and Space define the matrix.
	Kernels []*kernel.Kernel
	Space   hw.Space
	// Engine, Seed and Noise must be reproduced exactly by whatever
	// executes the sweep — they pin the noise stream byte-identity
	// depends on.
	Engine sweep.Engine
	Seed   int64
	Noise  float64
	// Prior is the matrix recovered from the job's journal; rows
	// already complete there need not be recomputed.
	Prior *sweep.Matrix
	// OnRow persists a settled row into the job's journal and live
	// snapshot; safe for concurrent use. A distributed executor may
	// invoke it MORE than once for the same row: when a quarantined
	// worker's complete is retracted and a healthy worker re-executes
	// the row, the corrected planes arrive through a second OnRow call.
	// The journal absorbs this naturally — replay is last-record-wins
	// per kernel, so the corrected append supersedes the retracted one.
	OnRow func(m *sweep.Matrix, r int)
	// Trace is the job's span context; a distributed executor hands it
	// to the coordinator so lease grants become children of the job
	// span and the whole fleet run stitches into one trace.
	Trace obs.SpanContext
}

// metrics is the service's instrument panel.
type metrics struct {
	queueDepth *obs.Gauge
	openJobs   *obs.Gauge
	shed       map[ShedReason]*obs.Counter
	admitted   *obs.Counter
	recovered  *obs.Counter
	done       map[State]*obs.Counter
	panics     *obs.Counter
	admitLat   *obs.Histogram
	queueWait  *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		queueDepth: reg.Gauge("serve_queue_depth", "jobs admitted but not yet running"),
		openJobs:   reg.Gauge("serve_open_jobs", "jobs queued or running"),
		shed:       map[ShedReason]*obs.Counter{},
		admitted:   reg.Counter("serve_jobs_admitted_total", "jobs accepted by admission"),
		recovered:  reg.Counter("serve_jobs_recovered_total", "jobs re-enqueued from disk at startup"),
		done:       map[State]*obs.Counter{},
		panics:     reg.Counter("serve_handler_panics_total", "HTTP handler panics recovered"),
		admitLat: reg.Histogram("serve_admission_latency_seconds", "submission handling latency",
			[]float64{0.0001, 0.001, 0.01, 0.1, 1}),
		queueWait: reg.Histogram("serve_queue_wait_seconds", "admission-to-run queue wait per job",
			[]float64{0.001, 0.01, 0.1, 1, 10, 60, 600}),
	}
	for _, r := range []ShedReason{ShedQueueFull, ShedRateLimited, ShedClientCap, ShedDraining} {
		m.shed[r] = reg.Counter("serve_shed_total", "submissions refused by admission", obs.L("reason", string(r)))
	}
	for _, s := range []State{StateComplete, StateCanceled, StateFailed} {
		m.done[s] = reg.Counter("serve_jobs_done_total", "jobs reaching a terminal state", obs.L("state", string(s)))
	}
	return m
}

// job is the in-memory twin of one admitted job.
type job struct {
	id     string
	client string
	spec   JobSpec
	res    *resolved
	// trace is the job's own span; parent is the submitting client's
	// span ID when the request carried a traceparent header.
	trace    obs.SpanContext
	parent   string
	admitted time.Time

	mu           sync.Mutex
	state        State
	reason       string
	summary      string
	rowsDone     int
	okCells      int
	snapshot     *sweep.Matrix // partial results, row-settled under mu
	final        *sweep.Matrix // terminal matrix (in-memory runs only)
	cancel       context.CancelFunc
	userCanceled bool
}

// status renders the client view under the job's lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.id,
		Client:  j.client,
		State:   j.state,
		Reason:  j.reason,
		Summary: j.summary,
		Trace:   j.trace.TraceID,
	}
	if j.res != nil {
		st.Kernels = len(j.res.kernels)
		st.Configs = j.res.space.Size()
	}
	st.RowsDone = j.rowsDone
	if j.rowsDone > 0 && st.Configs > 0 {
		st.Coverage = float64(j.okCells) / float64(j.rowsDone*st.Configs)
	}
	return st
}

// Service is the overload-safe sweep job service. Construct with New,
// serve its Handler, stop it with Drain.
type Service struct {
	cfg    Config
	reg    *obs.Registry
	met    *metrics
	bucket *tokenBucket
	caps   *clientCaps

	root       context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // wakes runners on enqueue and on drain
	jobs     map[string]*job
	order    []string // submission order, for List
	queue    []*job   // FIFO of queued jobs; len(queue) <= open <= MaxJobs
	nextID   int
	open     int // queued + running; the admission bound
	draining bool
}

// New opens (or creates) the state directory, recovers every job it
// finds — terminal jobs reload as history, queued and interrupted jobs
// re-enqueue — and starts the runner pool. The admission bound applies
// to recovery too, by construction: recovered open jobs were all
// admitted under the same bound.
func New(cfg Config) (*Service, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 16
	}
	if cfg.Runners == 0 {
		cfg.Runners = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if err := cfg.Injector.Validate(); err != nil {
		return nil, err
	}
	root, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		reg:        reg,
		met:        newMetrics(reg),
		bucket:     newTokenBucket(cfg.Rate, cfg.Burst, cfg.Now),
		caps:       newClientCaps(cfg.ClientCap),
		root:       root,
		rootCancel: cancel,
		jobs:       map[string]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s, nil
}

// Registry exposes the service's metrics registry (for /metrics).
func (s *Service) Registry() *obs.Registry { return s.reg }

// Ready reports whether the service is admitting jobs — false while
// draining, which is what flips /readyz during shutdown.
func (s *Service) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}

// recover scans the state directory. A <id>.state file makes a job
// terminal history; a <id>.job without one — whether it never started
// or the previous process died mid-sweep — re-enqueues, exactly as if
// it had just been admitted. Its journal makes the re-run resume
// instead of restart.
func (s *Service) recover() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".job"); ok {
			ids = append(ids, n)
		}
	}
	sort.Strings(ids) // job-%06d: lexicographic == admission order
	for _, id := range ids {
		var n int
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		b, err := os.ReadFile(s.jobPath(id))
		if err != nil {
			return err
		}
		var jf jobFile
		if err := json.Unmarshal(b, &jf); err != nil {
			return fmt.Errorf("serve: corrupt job file %s: %w", s.jobPath(id), err)
		}
		j := &job{id: id, client: jf.Client, spec: jf.Spec, admitted: time.Now()}
		if sc, err := obs.ParseTraceparent(jf.Trace); err == nil {
			j.trace, j.parent = sc, jf.Parent
		} else {
			// Pre-trace job files (or corrupt ones) still get an identity,
			// so the resumed run is traceable even if not stitched to the
			// original submission.
			j.trace = obs.NewSpanContext()
		}
		if sb, err := os.ReadFile(s.statePath(id)); err == nil {
			var sf stateFile
			if err := json.Unmarshal(sb, &sf); err != nil {
				return fmt.Errorf("serve: corrupt state file %s: %w", s.statePath(id), err)
			}
			j.state = sf.State
			j.reason = sf.Reason
			j.summary = sf.Summary
			if res, rerr := jf.Spec.resolve(s.cfg.MaxDeadline); rerr == nil {
				j.res = res
			}
			s.jobs[id] = j
			s.order = append(s.order, id)
			continue
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
		res, err := jf.Spec.resolve(s.cfg.MaxDeadline)
		if err != nil {
			// The spec was admitted once, so this means the service's
			// corpus or limits changed under it. Settle it as failed
			// rather than crash-looping on it forever.
			j.state = StateFailed
			j.reason = fmt.Sprintf("spec no longer resolvable: %v", err)
			s.jobs[id] = j
			s.order = append(s.order, id)
			if err := s.persistTerminal(id, nil, stateFile{State: StateFailed, Reason: j.reason}); err != nil {
				return err
			}
			continue
		}
		j.res = res
		j.state = StateQueued
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.caps.forceAcquire(jf.Client)
		s.open++
		s.queue = append(s.queue, j)
		s.met.recovered.Inc()
		if s.cfg.Replicate != nil {
			// Re-announce recovered non-terminal jobs so a standby that
			// attached after the original admission still learns them.
			s.cfg.Replicate(id, b)
		}
		s.cfg.Logf("serve: recovered %s (%d kernels, %d configs)", id, len(res.kernels), res.space.Size())
	}
	s.met.openJobs.Set(float64(s.open))
	s.met.queueDepth.Set(float64(len(s.queue)))
	return nil
}

// forceAcquire counts an open job against a client without checking
// the cap — recovery restores jobs that were already admitted, and
// refusing them now would lose accepted work.
func (c *clientCaps) forceAcquire(client string) {
	c.mu.Lock()
	c.open[client]++
	c.mu.Unlock()
}

func (s *Service) jobPath(id string) string     { return filepath.Join(s.cfg.Dir, id+".job") }
func (s *Service) statePath(id string) string   { return filepath.Join(s.cfg.Dir, id+".state") }
func (s *Service) journalPath(id string) string { return filepath.Join(s.cfg.Dir, id+".journal") }
func (s *Service) matrixPath(id string) string  { return filepath.Join(s.cfg.Dir, id+".csv") }

// shedding increments the shed counter for reason and records the
// decision in the flight recorder before returning the typed error.
func (s *Service) shedding(reason ShedReason, client string, retry time.Duration) error {
	s.met.shed[reason].Inc()
	if s.cfg.Flight != nil {
		s.cfg.Flight.Record("shed", map[string]any{"reason": string(reason), "client": client})
	}
	return &ShedError{Reason: reason, RetryAfter: retry}
}

// Submit admits one job or sheds it with a typed ShedError, minting a
// fresh trace root for the job. HTTP submissions that carry a
// traceparent go through SubmitTraced instead.
func (s *Service) Submit(client string, spec JobSpec) (JobStatus, error) {
	return s.SubmitTraced(client, spec, obs.SpanContext{})
}

// SubmitTraced is Submit under a caller-supplied trace context: the
// job's span becomes a child of caller, so the submitting process's
// own trace and the fleet's stitch together. An invalid caller mints
// a fresh root. The checks run cheapest-first — drain flag, rate
// limit, then spec resolution, then the per-client and global bounds —
// so overload costs as little as possible per refused request.
func (s *Service) SubmitTraced(client string, spec JobSpec, caller obs.SpanContext) (JobStatus, error) {
	start := time.Now()
	defer func() { s.met.admitLat.Observe(time.Since(start).Seconds()) }()

	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return JobStatus{}, s.shedding(ShedDraining, client, 5*time.Second)
	}
	if ok, wait := s.bucket.take(); !ok {
		return JobStatus{}, s.shedding(ShedRateLimited, client, wait)
	}
	res, err := spec.resolve(s.cfg.MaxDeadline)
	if err != nil {
		return JobStatus{}, err // client error; the handler maps non-shed errors to 400
	}
	if !s.caps.tryAcquire(client) {
		return JobStatus{}, s.shedding(ShedClientCap, client, 2*time.Second)
	}

	var sc obs.SpanContext
	var parent string
	if caller.Valid() {
		sc, parent = caller.Child(), caller.SpanID
	} else {
		sc = obs.NewSpanContext()
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.caps.release(client)
		return JobStatus{}, s.shedding(ShedDraining, client, 5*time.Second)
	}
	if s.open >= s.cfg.MaxJobs {
		s.mu.Unlock()
		s.caps.release(client)
		return JobStatus{}, s.shedding(ShedQueueFull, client, 2*time.Second)
	}
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.nextID++
	j := &job{id: id, client: client, spec: spec, res: res, state: StateQueued,
		trace: sc, parent: parent, admitted: time.Now()}
	// Persist the admission before announcing it: once Submit returns
	// 202 the job must survive any crash. The trace context rides
	// along, so a recovered job resumes under its original trace ID.
	b, err := json.MarshalIndent(jobFile{ID: id, Client: client, Spec: spec,
		Trace: sc.Traceparent(), Parent: parent}, "", "  ")
	if err == nil {
		err = writeAtomic(s.jobPath(id), b)
	}
	if err != nil {
		s.nextID-- // the slot was never used
		s.mu.Unlock()
		s.caps.release(client)
		return JobStatus{}, fmt.Errorf("serve: persisting admission: %w", err)
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.open++
	s.queue = append(s.queue, j)
	s.met.openJobs.Set(float64(s.open))
	s.met.queueDepth.Set(float64(len(s.queue)))
	s.met.admitted.Inc()
	s.cond.Signal()
	s.mu.Unlock()
	if s.cfg.Replicate != nil {
		s.cfg.Replicate(id, b)
	}
	if s.cfg.Flight != nil {
		s.cfg.Flight.Record("job.admit", map[string]any{
			"job": id, "client": client, "trace": sc.TraceID})
	}
	s.cfg.Logf("serve: admitted %s for %s (%d kernels, %d configs)", id, client, len(res.kernels), res.space.Size())
	return j.status(), nil
}

// ErrNoSuchJob marks lookups of unknown job IDs.
var ErrNoSuchJob = errors.New("serve: no such job")

// Get returns one job's status.
func (s *Service) Get(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrNoSuchJob
	}
	return j.status(), nil
}

// List returns every known job in admission order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	js := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out
}

// Cancel ends a job early. A queued job settles terminal immediately;
// a running job's context is canceled and its runner settles it with
// every completed row kept. Canceling a terminal job is a no-op.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrNoSuchJob
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
	case j.state == StateRunning:
		j.userCanceled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default: // queued: pull it out of the queue and settle it now
		// Mark it terminal under the lock first so a runner that races
		// past the dequeue below still skips it.
		j.userCanceled = true
		j.state = StateCanceled
		j.reason = "canceled by client"
		j.mu.Unlock()
		s.mu.Lock()
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		if err := s.persistTerminal(j.id, nil, stateFile{State: StateCanceled, Reason: "canceled by client"}); err != nil {
			return JobStatus{}, err
		}
		s.settle(j)
	}
	return j.status(), nil
}

// MatrixCSV streams the job's matrix as CSV: the archived file for
// terminal jobs, the live row-settled snapshot for running ones.
func (s *Service) MatrixCSV(id string, w io.Writer) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrNoSuchJob
	}
	j.mu.Lock()
	switch {
	case j.final != nil:
		m := j.final
		j.mu.Unlock()
		return m.WriteCSV(w)
	case j.state.Terminal():
		j.mu.Unlock()
		f, err := os.Open(s.matrixPath(id))
		if err != nil {
			return fmt.Errorf("%w: job %s has no archived matrix", ErrNoSuchJob, id)
		}
		defer f.Close()
		_, err = io.Copy(w, f)
		return err
	case j.snapshot != nil:
		// Copy the row slices under the lock; rows are settled whole, so
		// the copy is a consistent partial matrix.
		m := &sweep.Matrix{
			Space:      j.snapshot.Space,
			Kernels:    append([]string(nil), j.snapshot.Kernels...),
			Throughput: append([][]float64(nil), j.snapshot.Throughput...),
			TimeNS:     append([][]float64(nil), j.snapshot.TimeNS...),
			Bound:      append([][]gcn.Bound(nil), j.snapshot.Bound...),
			Status:     append([][]sweep.CellStatus(nil), j.snapshot.Status...),
		}
		j.mu.Unlock()
		return m.WriteCSV(w)
	default:
		j.mu.Unlock()
		return fmt.Errorf("%w: job %s has not produced rows yet", ErrNoSuchJob, id)
	}
}

// settle releases a job's admission resources after it reaches a
// terminal state.
func (s *Service) settle(j *job) {
	s.caps.release(j.client)
	s.mu.Lock()
	s.open--
	s.met.openJobs.Set(float64(s.open))
	s.met.queueDepth.Set(float64(len(s.queue)))
	s.mu.Unlock()
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	if c, ok := s.met.done[st]; ok {
		c.Inc()
	}
}

// persistTerminal writes a job's terminal record: the archived matrix
// first (when there is one), then the state file — so a state file's
// existence implies its matrix is on disk.
func (s *Service) persistTerminal(id string, m *sweep.Matrix, sf stateFile) error {
	if m != nil {
		if err := m.WriteCSVFile(s.matrixPath(id)); err != nil {
			return err
		}
		sf.Coverage = m.Coverage()
	}
	b, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(s.statePath(id), b)
}

// finish settles a job terminally: persistence first, the in-memory
// flip second, so a poller never observes a terminal state whose
// record is not yet durable.
func (s *Service) finish(j *job, m *sweep.Matrix, state State, reason, summary string) {
	if err := s.persistTerminal(j.id, m, stateFile{State: state, Reason: reason, Summary: summary}); err != nil {
		s.cfg.Logf("serve: %s: persisting terminal state: %v", j.id, err)
	}
	j.mu.Lock()
	j.state, j.reason, j.summary = state, reason, summary
	if m != nil {
		j.final = m
	}
	j.cancel = nil
	j.mu.Unlock()
	s.settle(j)
}

// runner is one worker: it pops queued jobs and runs them until the
// service drains. Jobs still queued when drain begins are left alone —
// their admission records re-enqueue them on the next start.
func (s *Service) runner() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.draining {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.met.queueDepth.Set(float64(len(s.queue)))
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob executes one job end to end: journal-backed Resume under the
// job's deadline, then the terminal decision. Interrupted-by-shutdown
// jobs write no terminal record — that is what makes them recoverable.
func (s *Service) runJob(j *job) {
	j.mu.Lock()
	if j.state.Terminal() { // canceled while queued
		j.mu.Unlock()
		return
	}
	s.met.queueWait.Observe(time.Since(j.admitted).Seconds())
	j.state = StateRunning
	ctx := s.root
	var cancel context.CancelFunc
	if j.res.deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.res.deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.cancel = cancel
	nCfg := j.res.space.Size()
	// Snapshot rows start as canceled ("not yet run"); OnRow overwrites
	// each as it settles, so partial fetches never show phantom OK cells.
	snap := &sweep.Matrix{
		Space:      j.res.space,
		Kernels:    make([]string, len(j.res.kernels)),
		Throughput: make([][]float64, len(j.res.kernels)),
		TimeNS:     make([][]float64, len(j.res.kernels)),
		Bound:      make([][]gcn.Bound, len(j.res.kernels)),
		Status:     make([][]sweep.CellStatus, len(j.res.kernels)),
	}
	for i, k := range j.res.kernels {
		snap.Kernels[i] = k.Name
		snap.Throughput[i] = make([]float64, nCfg)
		snap.TimeNS[i] = make([]float64, nCfg)
		snap.Bound[i] = make([]gcn.Bound, nCfg)
		st := make([]sweep.CellStatus, nCfg)
		for c := range st {
			st[c] = sweep.StatusCanceled
		}
		snap.Status[i] = st
	}
	j.snapshot = snap
	j.mu.Unlock()
	defer cancel()

	var jopts sweep.JournalOptions
	if s.cfg.Injector.TornWriteRate > 0 {
		jopts.WrapWriter = s.cfg.Injector.WrapWriter
	}
	journal, err := sweep.OpenJournalWith(s.journalPath(j.id), j.res.space, jopts)
	if err != nil {
		s.finish(j, nil, StateFailed, fmt.Sprintf("opening journal: %v", err), "")
		return
	}
	defer journal.Close()

	opts := sweep.Options{
		Workers:     s.cfg.SweepWorkers,
		Engine:      j.res.engine,
		NoiseStdDev: j.spec.Noise,
		Seed:        j.spec.Seed,
		Retries:     maxInt(j.spec.Retries, s.cfg.Retries),
		Backoff:     s.cfg.Backoff,
		SimTimeout:  s.cfg.SimTimeout,
		StallGrace:  s.cfg.StallGrace,
		Breaker:     s.cfg.Breaker,
	}
	if s.cfg.Injector.Active() {
		opts.Row = s.cfg.Injector.WrapRow(j.res.engine.Row())
	}
	if s.cfg.Trace != nil {
		// The local executor's cell/row events join the job's trace; a
		// distributed RunSweep gets the same identity via req.Trace
		// instead (its workers emit their own spans).
		tel := sweep.NewTelemetry(s.reg, s.cfg.Trace)
		tel.SetSpanContext(j.trace)
		tel.SetFlight(s.cfg.Flight)
		opts.Observer = tel
	}
	// A distributed executor may deliver the same row more than once —
	// a retracted byzantine complete followed by the healthy worker's
	// corrected one — so the counters must be idempotent per row: the
	// second delivery replaces the first instead of double-counting.
	rowSeen := make([]bool, len(j.res.kernels))
	rowOK := make([]int, len(j.res.kernels))
	opts.OnRow = func(m *sweep.Matrix, r int) {
		if err := journal.AppendRow(m, r); err != nil {
			s.cfg.Logf("serve: %s: journal: %v", j.id, err)
		}
		ok := 0
		for c := 0; c < nCfg; c++ {
			if m.CellOK(r, c) {
				ok++
			}
		}
		j.mu.Lock()
		snap.Throughput[r] = m.Throughput[r]
		snap.TimeNS[r] = m.TimeNS[r]
		snap.Bound[r] = m.Bound[r]
		snap.Status[r] = m.Status[r]
		if !rowSeen[r] {
			rowSeen[r] = true
			j.rowsDone++
		}
		j.okCells += ok - rowOK[r]
		rowOK[r] = ok
		j.mu.Unlock()
	}

	runStart := time.Now()
	var (
		m   *sweep.Matrix
		rep *sweep.RunReport
	)
	if s.cfg.RunSweep != nil {
		m, rep, err = s.cfg.RunSweep(ctx, SweepRequest{
			JobID: j.id, Kernels: j.res.kernels, Space: j.res.space,
			Engine: j.res.engine, Seed: j.spec.Seed, Noise: j.spec.Noise,
			Prior: journal.Prior(), OnRow: opts.OnRow, Trace: j.trace,
		})
	} else {
		m, rep, err = sweep.Resume(ctx, j.res.kernels, j.res.space, opts, journal.Prior())
	}
	summary := ""
	if rep != nil {
		summary = rep.Summary()
	}

	// Terminal decision. Order matters: a user cancel and the root
	// (shutdown) cancel both surface as context.Canceled, so the job's
	// own flag discriminates them; a deadline surfaces as
	// DeadlineExceeded on the job context specifically.
	switch {
	case err == nil:
		s.finish(j, m, StateComplete, "", summary)
		s.cfg.Logf("serve: %s complete: %s", j.id, summary)
	case userCanceledJob(j):
		s.finish(j, m, StateCanceled, "canceled by client", summary)
		s.cfg.Logf("serve: %s canceled by client", j.id)
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.finish(j, m, StateCanceled, "deadline exceeded", summary)
		s.cfg.Logf("serve: %s hit its deadline", j.id)
	default:
		// Shutdown interrupted the job: write nothing terminal. Its
		// journal keeps every completed row; the next start re-enqueues
		// it and Resume recomputes only the holes.
		j.mu.Lock()
		j.state = StateQueued
		j.cancel = nil
		j.mu.Unlock()
		s.cfg.Logf("serve: %s interrupted by shutdown (%s); will resume", j.id, summary)
	}

	// The job span closes with whatever the run decided; an interrupted
	// job emits a span per attempt, all under the same trace ID, so a
	// stitched view shows the resume chain.
	j.mu.Lock()
	state, rows := j.state, j.rowsDone
	j.mu.Unlock()
	if tw := s.cfg.Trace; tw != nil {
		tw.CompleteSpan("job", "serve", 0, j.trace, j.parent, runStart, time.Since(runStart), map[string]any{
			"job": j.id, "client": j.client, "state": string(state), "rows_done": rows})
	}
	if s.cfg.Flight != nil {
		s.cfg.Flight.Record("job.done", map[string]any{
			"job": j.id, "state": string(state), "rows_done": rows})
	}
}

func userCanceledJob(j *job) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCanceled
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Drain stops the service gracefully: admission flips to shedding
// (and /readyz to 503), idle runners exit, in-flight jobs get
// DrainGrace to finish, then their contexts are canceled and the
// journaled rows carry the rest across the restart. ctx bounds the
// whole wait.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if s.cfg.DrainGrace > 0 {
		t := time.NewTimer(s.cfg.DrainGrace)
		defer t.Stop()
		select {
		case <-done:
			s.rootCancel()
			return nil
		case <-t.C:
		case <-ctx.Done():
		}
	}
	s.rootCancel()
	select {
	case <-done:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}
