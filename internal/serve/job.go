// Package serve turns the one-shot sweep runtime into a long-lived,
// overload-safe job service: clients submit kernel x configuration
// sweeps over HTTP, poll their status, fetch partial or complete
// matrices, and cancel them, while the service protects itself from
// load instead of falling over.
//
// The admission plane is explicitly bounded: a fixed-capacity job
// table (queued + running), a token-bucket rate limiter, and
// per-client concurrency caps. Requests beyond any bound are shed with
// an explicit 429/503 plus Retry-After — never buffered without
// bound. Per-job deadlines propagate as contexts into the sweep
// executor, handlers are panic-isolated, and SIGTERM drains: stop
// admitting, let in-flight jobs checkpoint, exit.
//
// Persistence is crash-only, built on the CRC-journaled sweep.Journal:
// every admitted job writes an atomic spec file, every completed row
// is fsynced into the job's journal, and only terminal transitions
// write a state file. A killed daemon restarts, rescans the directory,
// and Resumes every queued and in-flight job — completed rows are
// reused, so the recovered matrices are byte-identical to an
// uninterrupted run, and an already-terminal job is never re-run.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

// State is a job's lifecycle phase. Queued and running jobs are
// recoverable (they re-enqueue after a crash or restart); complete,
// canceled and failed are terminal and persisted.
type State string

const (
	// StateQueued marks an admitted job waiting for a runner.
	StateQueued State = "queued"
	// StateRunning marks a job a runner is sweeping.
	StateRunning State = "running"
	// StateComplete marks a finished job; its matrix may still carry
	// failed cells (coverage < 1) — completion means the sweep ran to
	// the end, not that every cell measured.
	StateComplete State = "complete"
	// StateCanceled marks a job ended early by client cancellation or
	// its deadline; completed rows are kept.
	StateCanceled State = "canceled"
	// StateFailed marks a job the service could not run at all (e.g.
	// its journal could not be opened). Spec errors never get here —
	// they are rejected at submission.
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateComplete || s == StateCanceled || s == StateFailed
}

// SpaceSpec is the JSON form of a configuration grid.
type SpaceSpec struct {
	CUs     []int     `json:"cus"`
	CoreMHz []float64 `json:"core_mhz"`
	MemMHz  []float64 `json:"mem_mhz"`
}

// JobSpec is the client-supplied description of one sweep job. Either
// Suite names a built-in corpus suite or Kernels carries an inline
// kernel list (the kernel.ReadAll JSON schema); exactly one must be
// set. A nil Space means the full 891-configuration study grid.
type JobSpec struct {
	// Suite restricts the sweep to one built-in suite.
	Suite string `json:"suite,omitempty"`
	// Kernels is an inline kernel list (kernel JSON array).
	Kernels json.RawMessage `json:"kernels,omitempty"`
	// Space overrides the configuration grid.
	Space *SpaceSpec `json:"space,omitempty"`
	// Engine is the simulator fidelity ("round" when empty).
	Engine string `json:"engine,omitempty"`
	// Noise and Seed configure measurement-noise emulation.
	Noise float64 `json:"noise,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	// Retries is the per-cell retry budget.
	Retries int `json:"retries,omitempty"`
	// DeadlineMS bounds the job's total runtime in milliseconds; the
	// deadline propagates as a context into the executor and an
	// expired job settles as canceled with its completed rows kept.
	// 0 means no deadline (the service may still impose a maximum).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// resolved is a spec elaborated into runnable form.
type resolved struct {
	kernels  []*kernel.Kernel
	space    hw.Space
	engine   sweep.Engine
	deadline time.Duration
}

// resolve validates a spec and elaborates it. Every error here is a
// client error (HTTP 400): admission must only accept jobs that can
// actually run, so admitted jobs can only end complete or canceled.
func (spec *JobSpec) resolve(maxDeadline time.Duration) (*resolved, error) {
	r := &resolved{}
	switch {
	case spec.Suite != "" && len(spec.Kernels) > 0:
		return nil, fmt.Errorf("suite and kernels are mutually exclusive")
	case spec.Suite != "":
		s := suites.FindSuite(suites.Corpus(), spec.Suite)
		if s == nil {
			return nil, fmt.Errorf("unknown suite %q", spec.Suite)
		}
		for _, p := range s.Programs {
			for _, e := range p.Kernels {
				r.kernels = append(r.kernels, e.Kernel)
			}
		}
	case len(spec.Kernels) > 0:
		ks, err := kernel.ReadAll(bytes.NewReader(spec.Kernels))
		if err != nil {
			return nil, err
		}
		if len(ks) == 0 {
			return nil, fmt.Errorf("empty kernel list")
		}
		r.kernels = ks
	default:
		return nil, fmt.Errorf("spec needs a suite or an inline kernel list")
	}
	if spec.Space != nil {
		s, err := hw.NewSpace(spec.Space.CUs, spec.Space.CoreMHz, spec.Space.MemMHz)
		if err != nil {
			return nil, err
		}
		r.space = s
	} else {
		r.space = hw.StudySpace()
	}
	eng := spec.Engine
	if eng == "" {
		eng = "round"
	}
	e, err := sweep.ParseEngine(eng)
	if err != nil {
		return nil, err
	}
	r.engine = e
	if spec.Noise < 0 || spec.Retries < 0 || spec.DeadlineMS < 0 {
		return nil, fmt.Errorf("noise, retries and deadline_ms must be non-negative")
	}
	r.deadline = time.Duration(spec.DeadlineMS) * time.Millisecond
	if maxDeadline > 0 && (r.deadline == 0 || r.deadline > maxDeadline) {
		r.deadline = maxDeadline
	}
	return r, nil
}

// jobFile is the on-disk admission record (<id>.job), written
// atomically when a job is accepted. Its presence IS the admission:
// recovery re-enqueues every job file without a terminal state file.
type jobFile struct {
	ID     string  `json:"id"`
	Client string  `json:"client,omitempty"`
	Spec   JobSpec `json:"spec"`
	// Trace is the job span's traceparent and Parent the submitting
	// client's span ID; persisting them keeps a crash-recovered job on
	// its original distributed trace.
	Trace  string `json:"trace,omitempty"`
	Parent string `json:"parent,omitempty"`
}

// stateFile is the on-disk terminal record (<id>.state). Only terminal
// transitions are persisted — queued/running are implicit in the
// absence of this file, which is what makes the store crash-only: a
// kill at any instant leaves either "recoverable" or "terminal",
// never a half-written in-between (writes are temp+fsync+rename).
type stateFile struct {
	State    State   `json:"state"`
	Reason   string  `json:"reason,omitempty"`
	Summary  string  `json:"summary,omitempty"`
	Coverage float64 `json:"coverage"`
}

// writeAtomic persists b at path via temp file + fsync + rename, the
// same crash discipline the journal's v1 migration uses.
func writeAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// JobStatus is the client-visible view of one job.
type JobStatus struct {
	ID     string `json:"id"`
	Client string `json:"client,omitempty"`
	State  State  `json:"state"`
	// Reason explains canceled/failed states.
	Reason string `json:"reason,omitempty"`
	// Kernels and Configs give the job shape.
	Kernels int `json:"kernels"`
	Configs int `json:"configs"`
	// RowsDone counts settled kernel rows (complete or not).
	RowsDone int `json:"rows_done"`
	// Coverage is the fraction of cells holding validated
	// measurements, over the rows settled so far.
	Coverage float64 `json:"coverage"`
	// Summary is the executor's final accounting (terminal jobs only).
	Summary string `json:"summary,omitempty"`
	// Trace is the job's distributed trace ID — the key that finds
	// every span this job produced, on any process (sweeptrace stitches
	// by it).
	Trace string `json:"trace,omitempty"`
}
