package serve

// Crash-recovery tests: the daemon dies (or drains hard) at the three
// interesting instants — after admission but before the first cell,
// mid-sweep with rows journaled, and during drain with work still
// queued — restarts on the same state directory, and must end with the
// same job table and byte-identical matrices as an uninterrupted run.

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"gpuscale/internal/fault"
)

// referenceMatrix runs spec uninterrupted in a fresh directory and
// returns the archived matrix bytes — the ground truth recovery must
// reproduce. cfg's Dir is replaced; everything else is kept so the
// execution parameters match the interrupted run exactly.
func referenceMatrix(t *testing.T, cfg Config, spec JobSpec) []byte {
	t.Helper()
	cfg.Dir = t.TempDir()
	cfg.Runners = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	st, err := s.Submit("ref", spec)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, st.ID)
	if got.State != StateComplete {
		t.Fatalf("reference run = %+v", got)
	}
	var buf bytes.Buffer
	if err := s.MatrixCSV(st.ID, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func jobMatrix(t *testing.T, s *Service, id string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.MatrixCSV(id, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRecoverJobAdmittedButNeverStarted(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t)
	cfg := Config{Dir: dir, SweepWorkers: 2}
	want := referenceMatrix(t, cfg, spec)

	// "Kill" the daemon between admission and the first cell: no
	// runners ever start, so the only trace is the fsynced job file.
	killed := cfg
	killed.Dir = dir
	killed.Runners = -1
	s1, err := New(killed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s1.journalPath(st.ID)); !os.IsNotExist(err) {
		t.Fatalf("job not yet run already has a journal (err=%v)", err)
	}
	// s1 is abandoned without drain — the crash. A new service on the
	// same directory must pick the job up and finish it.
	restarted := cfg
	restarted.Dir = dir
	restarted.Runners = 1
	s2, err := New(restarted)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s2)
	if got := s2.met.recovered.Value(); got != 1 {
		t.Fatalf("serve_jobs_recovered_total = %d, want 1", got)
	}
	got := waitTerminal(t, s2, st.ID)
	if got.State != StateComplete {
		t.Fatalf("recovered job = %+v", got)
	}
	if !bytes.Equal(jobMatrix(t, s2, st.ID), want) {
		t.Fatal("recovered matrix differs from uninterrupted run")
	}
}

func TestRecoverJobInterruptedMidSweep(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t)
	// Latency faults slow every cell without changing any value, so the
	// interrupted and reference runs stay byte-identical.
	cfg := Config{Dir: dir, SweepWorkers: 1, Injector: slowInjector()}
	want := referenceMatrix(t, cfg, spec)

	first := cfg
	first.Dir = dir
	first.Runners = 1
	s1, err := New(first)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "a journaled row", func() bool {
		got, err := s1.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return got.RowsDone >= 1
	})
	// Hard drain: zero grace means the in-flight sweep is interrupted
	// now. Crash-only: the interrupted job writes NO terminal record.
	drain(t, s1)
	if _, err := os.Stat(s1.statePath(st.ID)); !os.IsNotExist(err) {
		t.Fatalf("interrupted job has a terminal state file (err=%v)", err)
	}
	gotMid, err := s1.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotMid.State.Terminal() {
		t.Fatalf("interrupted job settled terminally: %+v", gotMid)
	}

	second := cfg
	second.Dir = dir
	second.Runners = 1
	s2, err := New(second)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s2)
	if got := s2.met.recovered.Value(); got != 1 {
		t.Fatalf("serve_jobs_recovered_total = %d, want 1", got)
	}
	got := waitTerminal(t, s2, st.ID)
	if got.State != StateComplete {
		t.Fatalf("resumed job = %+v", got)
	}
	// The journal made the resume reuse completed rows: fewer rows
	// settled in this process than the job has kernels.
	if got.RowsDone >= got.Kernels {
		t.Fatalf("resume recomputed every row (%d of %d) — journal unused", got.RowsDone, got.Kernels)
	}
	if !bytes.Equal(jobMatrix(t, s2, st.ID), want) {
		t.Fatal("resumed matrix differs from uninterrupted run")
	}
}

func TestRecoverDrainLeavesQueuedJobsIntact(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t)
	cfg := Config{Dir: dir, SweepWorkers: 1, Runners: 1, Injector: slowInjector()}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := s1.Submit("alice", spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitFor(t, 10*time.Second, "first job under way", func() bool {
		got, err := s1.Get(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		return got.RowsDone >= 1
	})
	drain(t, s1)
	// Nothing settled terminally: the running job was interrupted, the
	// queued ones never started.
	for _, id := range ids {
		if _, err := os.Stat(s1.statePath(id)); !os.IsNotExist(err) {
			t.Fatalf("%s has a terminal state file after drain (err=%v)", id, err)
		}
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s2)
	if got := s2.met.recovered.Value(); got != 3 {
		t.Fatalf("serve_jobs_recovered_total = %d, want 3", got)
	}
	for _, id := range ids {
		got := waitTerminal(t, s2, id)
		if got.State != StateComplete {
			t.Fatalf("%s after recovery = %+v", id, got)
		}
	}
	// Exactly one terminal record per job — none lost, none duplicated.
	for _, id := range ids {
		if _, err := os.Stat(s2.statePath(id)); err != nil {
			t.Fatalf("%s missing its terminal record: %v", id, err)
		}
	}
}

func TestRecoverNeverReRunsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t)
	s1, err := New(Config{Dir: dir, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, s1, st.ID); got.State != StateComplete {
		t.Fatalf("first run = %+v", got)
	}
	drain(t, s1)
	wantMatrix, err := os.ReadFile(s1.matrixPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := os.ReadFile(s1.statePath(st.ID))
	if err != nil {
		t.Fatal(err)
	}

	// Restart with an injector that breaks every simulation: if the
	// terminal job were re-run, its matrix could not survive intact.
	s2, err := New(Config{Dir: dir, SweepWorkers: 2,
		Injector: fault.Injector{ErrorRate: 1, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s2)
	if got := s2.met.recovered.Value(); got != 0 {
		t.Fatalf("serve_jobs_recovered_total = %d, want 0 (job was terminal)", got)
	}
	got, err := s2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateComplete {
		t.Fatalf("terminal job after restart = %+v", got)
	}
	time.Sleep(20 * time.Millisecond) // give a hypothetical re-run time to do damage
	if b, _ := os.ReadFile(s2.matrixPath(st.ID)); !bytes.Equal(b, wantMatrix) {
		t.Fatal("terminal job's matrix changed across restart")
	}
	if b, _ := os.ReadFile(s2.statePath(st.ID)); !bytes.Equal(b, wantState) {
		t.Fatal("terminal job's state record changed across restart")
	}
	// And the terminal job still serves its matrix (read back from disk).
	if !bytes.Equal(jobMatrix(t, s2, st.ID), wantMatrix) {
		t.Fatal("terminal job's served matrix differs from its archive")
	}
}

func TestRecoverOpenJobsRespectAdmissionBound(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Runners: -1, MaxJobs: 2}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s1.Submit("alice", testSpec(t)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash (no drain), restart: the recovered table fills the bound,
	// so the next submission sheds rather than exceeding it.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.met.openJobs.Value(); got != 2 {
		t.Fatalf("serve_open_jobs after recovery = %g, want 2", got)
	}
	_, err = s2.Submit("alice", testSpec(t))
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueFull {
		t.Fatalf("submit over recovered bound: %v, want queue_full shed", err)
	}
}
