package serve

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"gpuscale/internal/sweep"
)

// TestRunSweepSeam: a Config.RunSweep override receives the resolved
// job and the OnRow hook, and driving OnRow keeps the service's
// journal, snapshot and terminal bookkeeping exactly as the local
// path would.
func TestRunSweepSeam(t *testing.T) {
	var (
		gotJob string
		calls  int
	)
	cfg := Config{Dir: t.TempDir(), SweepWorkers: 2}
	cfg.RunSweep = func(ctx context.Context, req SweepRequest) (*sweep.Matrix, *sweep.RunReport, error) {
		calls++
		gotJob = req.JobID
		if req.OnRow == nil {
			t.Error("SweepRequest.OnRow is nil; the seam cannot keep the journal current")
		}
		// A stand-in executor: run locally, but through the request's
		// parameters and hooks only — exactly what a distributed
		// coordinator does.
		return sweep.Resume(ctx, req.Kernels, req.Space, sweep.Options{
			Workers: 2, Engine: req.Engine, Seed: req.Seed,
			NoiseStdDev: req.Noise, OnRow: req.OnRow,
		}, req.Prior)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)

	st, err := s.Submit("alice", testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, s, st.ID)
	if st.State != StateComplete {
		t.Fatalf("state = %s (%s), want complete", st.State, st.Reason)
	}
	if calls != 1 || gotJob != st.ID {
		t.Fatalf("RunSweep calls=%d job=%q, want 1 call for %q", calls, gotJob, st.ID)
	}
	// OnRow drove the snapshot: rows and coverage are fully accounted.
	if st.RowsDone != 2 || st.Coverage != 1 {
		t.Fatalf("rows done %d coverage %g, want 2 and 1", st.RowsDone, st.Coverage)
	}
	// ...and the journal: the crash-only record is on disk even though
	// the service never called the local executor itself.
	if _, err := os.Stat(s.journalPath(st.ID)); err != nil {
		t.Fatalf("missing journal after seam-run job: %v", err)
	}
}

// TestRetryAfterJitterBounds: the jittered hint never undercuts the
// unjittered value, never exceeds it by more than 50% (plus the
// round-up second), and actually spreads.
func TestRetryAfterJitterBounds(t *testing.T) {
	const base = 10 * time.Second
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		n, err := strconv.Atoi(jitterRetryAfter(base))
		if err != nil {
			t.Fatal(err)
		}
		if n < 10 || n > 15 {
			t.Fatalf("jittered Retry-After %d outside [10, 15] for base %s", n, base)
		}
		seen[n] = true
	}
	if len(seen) < 3 {
		t.Fatalf("jitter produced only %d distinct hints over 2000 draws; the herd stays a herd", len(seen))
	}
	// Sub-second hints floor to one second before jittering.
	for i := 0; i < 200; i++ {
		n, err := strconv.Atoi(jitterRetryAfter(10 * time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 || n > 2 {
			t.Fatalf("floored Retry-After %d outside [1, 2]", n)
		}
	}
}
