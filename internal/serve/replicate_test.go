package serve

// Job-spec replication hook tests: an HA coordinator registers
// Config.Replicate to stream every persisted job spec to its warm
// standby — the hook must fire with the exact on-disk bytes at
// admission, and again for every non-terminal job a restarted daemon
// recovers (so a standby that attached after the original admission
// still learns the job before a failover could orphan it).

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// specCollector is a threadsafe Replicate sink.
type specCollector struct {
	mu    sync.Mutex
	specs map[string][]byte
}

func (c *specCollector) hook(id string, spec []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.specs == nil {
		c.specs = map[string][]byte{}
	}
	c.specs[id] = append([]byte(nil), spec...)
}

func (c *specCollector) get(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.specs[id]
	return b, ok
}

func TestReplicateFiresOnAdmission(t *testing.T) {
	dir := t.TempDir()
	var col specCollector
	s, err := New(Config{Dir: dir, SweepWorkers: 2, Replicate: col.hook})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s)
	st, err := s.Submit("alice", testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := col.get(st.ID)
	if !ok {
		t.Fatalf("Replicate never fired for admitted job %s", st.ID)
	}
	want, err := os.ReadFile(s.jobPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Replicate bytes differ from the persisted %s.job file", st.ID)
	}
	waitTerminal(t, s, st.ID)
}

func TestReplicateReannouncesRecoveredJobs(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t)

	// Crash between admission and the first cell: Runners -1 means no
	// runner ever starts, and the service is abandoned without drain.
	s1, err := New(Config{Dir: dir, SweepWorkers: 2, Runners: -1})
	if err != nil {
		t.Fatal(err)
	}
	stQueued, err := s1.Submit("alice", spec)
	if err != nil {
		t.Fatal(err)
	}
	// A second job that completes fully: terminal jobs must NOT be
	// re-announced on recovery (the standby only needs live work).
	// Job IDs are sequential per directory, so burn the first slot in
	// the side service — the terminal job must not collide with the
	// crashed directory's job-000000.
	s2, err := New(Config{Dir: t.TempDir(), SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Submit("bob", spec); err != nil {
		t.Fatal(err)
	}
	stDone, err := s2.Submit("bob", spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s2, stDone.ID)
	drain(t, s2)
	// Graft the terminal job's files into the crashed directory so one
	// recovery pass sees both a live and a finished job.
	for _, src := range []string{s2.jobPath(stDone.ID), s2.statePath(stDone.ID)} {
		b, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(src)), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var col specCollector
	s3, err := New(Config{Dir: dir, SweepWorkers: 2, Replicate: col.hook})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, s3)
	got, ok := col.get(stQueued.ID)
	if !ok {
		t.Fatalf("Replicate did not re-announce recovered job %s", stQueued.ID)
	}
	want, err := os.ReadFile(s3.jobPath(stQueued.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("re-announced bytes differ from the persisted %s.job file", stQueued.ID)
	}
	if _, ok := col.get(stDone.ID); ok {
		t.Fatalf("Replicate re-announced terminal job %s — standbys only need live work", stDone.ID)
	}
	waitTerminal(t, s3, stQueued.ID)
}
