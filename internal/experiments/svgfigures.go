package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"gpuscale/internal/core"
	"gpuscale/internal/kernel"
	"gpuscale/internal/report"
	"gpuscale/internal/roofline"
	"gpuscale/internal/stats"
)

// SVGFigures returns the study's key figures as named SVG writers —
// the vector-figure counterparts of the ASCII figures, for inclusion
// in documents. WriteSVGFigures renders them all into a directory.
func (s *Study) SVGFigures() (map[string]func(io.Writer) error, error) {
	comp, err := s.findByCategory(core.CompCoupled)
	if err != nil {
		return nil, err
	}
	bw, err := s.findByCategory(core.BWCoupled)
	if err != nil {
		return nil, err
	}
	ci, err := s.findByCategory(core.CUIntolerant)
	if err != nil {
		return nil, err
	}
	lb, err := s.findByCategory(core.LatencyBound)
	if err != nil {
		return nil, err
	}

	out := map[string]func(io.Writer) error{}

	chart := func(c report.LineChart) func(io.Writer) error {
		return func(w io.Writer) error { return c.RenderSVG(w) }
	}

	out["fig-r1a-cu-scaling"] = chart(report.LineChart{
		Title:  "Fig R-1a: intuitive scaling vs compute units",
		XLabel: "compute units", YLabel: "normalised speedup",
		Series: []report.Series{
			{Name: "comp-coupled " + comp.Kernel, X: comp.CU.Settings, Y: comp.CU.Curve},
			{Name: "bw-coupled " + bw.Kernel, X: bw.CU.Settings, Y: bw.CU.Curve},
		},
	})
	out["fig-r1b-mem-scaling"] = chart(report.LineChart{
		Title:  "Fig R-1b: intuitive scaling vs memory clock",
		XLabel: "memory clock (MHz)", YLabel: "normalised speedup",
		Series: []report.Series{
			{Name: "comp-coupled " + comp.Kernel, X: comp.Mem.Settings, Y: comp.Mem.Curve},
			{Name: "bw-coupled " + bw.Kernel, X: bw.Mem.Settings, Y: bw.Mem.Curve},
		},
	})
	out["fig-r2-cu-intolerance"] = chart(report.LineChart{
		Title:  fmt.Sprintf("Fig R-2: performance loss with added CUs (%s)", ci.Kernel),
		XLabel: "compute units", YLabel: "normalised speedup",
		Series: []report.Series{{Name: "cu-intolerant", X: ci.CU.Settings, Y: ci.CU.Curve}},
	})
	out["fig-r3-plateaus"] = chart(report.LineChart{
		Title:  fmt.Sprintf("Fig R-3: frequency/bandwidth plateaus (%s)", lb.Kernel),
		XLabel: "axis setting index", YLabel: "normalised speedup",
		Series: []report.Series{
			{Name: "vs core clock", X: indexed(lb.Core.Settings), Y: lb.Core.Curve},
			{Name: "vs mem clock", X: indexed(lb.Mem.Settings), Y: lb.Mem.Curve},
		},
	})

	// R-7: total speedup CDF.
	speedups := make([]float64, len(s.Surfaces))
	for i, sf := range s.Surfaces {
		speedups[i] = sf.TotalSpeedup()
	}
	vals, fracs := stats.CDF(speedups)
	out["fig-r7-speedup-cdf"] = chart(report.LineChart{
		Title:  "Fig R-7: CDF of total speedup, min to max configuration",
		XLabel: "speedup", YLabel: "fraction of kernels",
		Series: []report.Series{{Name: "all 267 kernels", X: vals, Y: fracs}},
	})

	// R-6: speedup heatmaps for the two signature shapes.
	for _, item := range []struct {
		name string
		c    core.Classification
	}{
		{"fig-r6-comp-surface", comp},
		{"fig-r6-intolerant-surface", ci},
	} {
		sf, err := s.surfaceOf(item.c.Kernel)
		if err != nil {
			return nil, err
		}
		rows := make([]string, len(s.Space.CUCounts))
		for i, cu := range s.Space.CUCounts {
			rows[i] = fmt.Sprintf("%dcu", cu)
		}
		cols := make([]string, len(s.Space.CoreClocksMHz))
		for i, f := range s.Space.CoreClocksMHz {
			cols[i] = fmt.Sprintf("%g", f)
		}
		h := report.Heatmap{
			Title:     fmt.Sprintf("Speedup over CU x core clock: %s", item.c.Kernel),
			RowLabels: rows, ColLabels: cols,
			Values: sf.SpeedupGrid(),
		}
		hh := h // capture
		out[item.name] = func(w io.Writer) error { return hh.RenderSVG(w) }
	}

	// C-2: roofline.
	ks := make([]*kernel.Kernel, 0, len(s.kernels))
	for _, name := range s.Matrix.Kernels {
		ks = append(ks, s.kernels[name])
	}
	cfg := s.Space.Max()
	pts, err := roofline.Place(ks, cfg)
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, p := range pts {
		if math.IsInf(p.Intensity, 1) || p.Intensity <= 0 || p.GFLOPS <= 0 {
			continue
		}
		xs = append(xs, math.Log10(p.Intensity))
		ys = append(ys, math.Log10(p.GFLOPS))
	}
	var roofX, roofY []float64
	for e := -2.0; e <= 3.0; e += 0.1 {
		roofX = append(roofX, e)
		roofY = append(roofY, math.Log10(roofline.Attainable(cfg, math.Pow(10, e))))
	}
	out["fig-c2-roofline"] = chart(report.LineChart{
		Title:  "Fig C-2: corpus on the roofline (log-log)",
		XLabel: "log10 FLOP/byte", YLabel: "log10 GFLOP/s",
		Series: []report.Series{
			{Name: "roof", X: roofX, Y: roofY},
			{Name: "kernels", X: xs, Y: ys},
		},
	})
	return out, nil
}

// WriteSVGFigures renders every SVG figure into dir (created if
// needed), one file per figure, and returns the file count.
func (s *Study) WriteSVGFigures(dir string) (int, error) {
	figs, err := s.SVGFigures()
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for name, render := range figs {
		f, err := os.Create(filepath.Join(dir, name+".svg"))
		if err != nil {
			return n, err
		}
		if err := render(f); err != nil {
			f.Close()
			return n, err
		}
		if err := f.Close(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
