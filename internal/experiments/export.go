package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteClassificationsCSV exports the per-kernel taxonomy results as
// CSV — the dataset a downstream analysis (or the paper's artifact
// appendix) would archive: one row per kernel with its suite,
// generator archetype, per-axis shapes and gains, and combined
// category.
func (s *Study) WriteClassificationsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"kernel", "suite", "archetype", "category",
		"cu_shape", "cu_gain", "cu_efficiency", "cu_r2",
		"core_shape", "core_gain", "core_efficiency", "core_r2",
		"mem_shape", "mem_gain", "mem_efficiency", "mem_r2",
		"total_speedup",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, c := range s.Classifications {
		rec := []string{
			c.Kernel, s.suiteOf[c.Kernel], s.arch[c.Kernel].String(), c.Category.String(),
			c.CUShape.String(), f(c.CU.Gain), f(c.CU.Efficiency), f(c.CU.LinearR2),
			c.CoreShape.String(), f(c.Core.Gain), f(c.Core.Efficiency), f(c.Core.LinearR2),
			c.MemShape.String(), f(c.Mem.Gain), f(c.Mem.Efficiency), f(c.Mem.LinearR2),
			f(c.TotalSpeedup),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", c.Kernel, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
