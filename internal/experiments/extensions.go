package experiments

import (
	"fmt"

	"gpuscale/internal/core"
	"gpuscale/internal/gcn"
	"gpuscale/internal/governor"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/power"
	"gpuscale/internal/predict"
	"gpuscale/internal/report"
)

// TableE1 reports, for each taxonomy category's exemplar kernel, the
// energy-optimal configuration and what it costs in performance —
// the DVFS-extension headline: which knob each class can cut for free.
func (s *Study) TableE1() (*report.Table, error) {
	pm := power.DefaultModel()
	t := &report.Table{
		Title: "Table E-1: energy-optimal configuration per scaling category",
		Header: []string{"category", "kernel", "min-energy config",
			"energy vs flagship", "perf vs flagship"},
	}
	flagship := hw.Reference()
	for _, cat := range categoriesInOrder() {
		c, err := s.findByCategory(cat)
		if err != nil {
			continue // empty category: skip the row
		}
		k := s.kernels[c.Kernel]
		bestCfg, bestRep, err := power.BestConfig(pm, k, s.Space, power.MinEnergy)
		if err != nil {
			return nil, err
		}
		refRes, refRep, err := power.Measure(pm, k, flagship)
		if err != nil {
			return nil, err
		}
		bestRes, err := gcn.Simulate(k, bestCfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(cat.String(), c.Kernel, bestCfg.String(),
			fmt.Sprintf("%.0f%%", 100*bestRep.EnergyJ/refRep.EnergyJ),
			fmt.Sprintf("%.0f%%", 100*bestRes.Throughput/refRes.Throughput))
	}
	return t, nil
}

// TableE2 evaluates the cluster-based scaling predictor: train on half
// the corpus, predict the unseen half's 891-point surfaces from five
// probe measurements, for several cluster counts.
func (s *Study) TableE2(ks []int) (*report.Table, error) {
	train, test := predict.SplitMatrix(s.Matrix)
	t := &report.Table{
		Title: fmt.Sprintf(
			"Table E-2: scaling-surface prediction from %d probes (train %d / test %d kernels)",
			len(predict.DefaultProbes(s.Space)), len(train.Kernels), len(test.Kernels)),
		Header: []string{"clusters", "MAPE", "P90 abs err", "worst-kernel MAPE"},
	}
	for _, k := range ks {
		p, err := predict.Train(train, k, ClusterSeed)
		if err != nil {
			return nil, err
		}
		acc, err := predict.Evaluate(p, test)
		if err != nil {
			return nil, err
		}
		t.AddRow(k,
			fmt.Sprintf("%.1f%%", 100*acc.MAPE),
			fmt.Sprintf("%.1f%%", 100*acc.P90APE),
			fmt.Sprintf("%.1f%%", 100*acc.WorstKernelMAPE))
	}
	// Learned probe placement at the largest cluster count: greedy
	// forward selection over the grid instead of the hand-picked
	// corner probes.
	if len(ks) > 0 {
		kMax := ks[len(ks)-1]
		probes, err := predict.SelectProbes(train, kMax, ClusterSeed, 5, 30)
		if err != nil {
			return nil, err
		}
		p, err := predict.TrainWithProbes(train, kMax, ClusterSeed, probes)
		if err != nil {
			return nil, err
		}
		acc, err := predict.Evaluate(p, test)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d (greedy probes)", kMax),
			fmt.Sprintf("%.1f%%", 100*acc.MAPE),
			fmt.Sprintf("%.1f%%", 100*acc.P90APE),
			fmt.Sprintf("%.1f%%", 100*acc.WorstKernelMAPE))
	}
	return t, nil
}

// TableE5 quantifies DVFS transition overhead: a workload alternating
// compute- and bandwidth-coupled kernels makes a per-kernel governor
// switch configurations constantly; with realistic switch costs the
// hysteresis governor recovers the loss. (Transition overhead for
// mobile DVFS is a finding of the same IISWC'15 proceedings.)
func (s *Study) TableE5(transitionCostsNS []float64) (*report.Table, error) {
	pm := power.DefaultModel()
	// Short interactive-scale kernels (sub-millisecond invocations):
	// the regime where transition stalls can eat per-kernel gains.
	dense := kernel.New("e5", "app", "dense").
		Geometry(512, 256).
		Compute(12000, 400).
		Access(kernel.Streaming, 8, 2, 4).
		MustBuild()
	stream := kernel.New("e5", "app", "stream").
		Geometry(512, 256).
		Compute(300, 50).
		Access(kernel.Streaming, 256, 64, 4).
		Locality(256*1024, 0, 0).
		MustBuild()
	var w governor.Workload
	for i := 0; i < 12; i++ {
		item := governor.Item{Launches: 1}
		if i%2 == 0 {
			item.Kernel, item.Category = dense, core.CompCoupled
		} else {
			item.Kernel, item.Category = stream, core.BWCoupled
		}
		w = append(w, item)
	}
	space, err := hw.NewSpace(
		[]int{4, 12, 20, 28, 36, 44},
		[]float64{200, 400, 600, 800, 1000},
		[]float64{150, 425, 700, 975, 1250})
	if err != nil {
		return nil, err
	}
	const cap = 110.0
	guided, err := governor.TaxonomyGuided(pm, w, space, cap)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "Table E-5: DVFS transition overhead on an alternating workload (110 W cap)",
		Header: []string{"switch cost", "per-kernel governor (ms)",
			"hysteresis governor (ms)", "hysteresis switches"},
	}
	for _, cost := range transitionCostsNS {
		hyst, err := governor.Hysteresis(pm, w, guided.Decisions, cap, cost)
		if err != nil {
			return nil, err
		}
		switches := 0
		for i := 1; i < len(hyst.Decisions); i++ {
			if hyst.Decisions[i].Config != hyst.Decisions[i-1].Config {
				switches++
			}
		}
		t.AddRow(fmt.Sprintf("%.0f us", cost/1000),
			governor.WithTransitions(guided, cost)/1e6,
			governor.WithTransitions(hyst, cost)/1e6,
			switches)
	}
	return t, nil
}

// TableE4 projects each category's exemplar across the product ladder
// (embedded -> flagship), normalised to the flagship — the paper's
// opening observation ("GPUs range from small, embedded designs to
// large, high-powered discrete cards") turned into a table: which
// classes actually benefit from a bigger product.
func (s *Study) TableE4() (*report.Table, error) {
	products := hw.Products()
	header := []string{"category", "kernel"}
	for _, p := range products {
		header = append(header, p.Name)
	}
	t := &report.Table{
		Title:  "Table E-4: performance across product tiers (fraction of flagship)",
		Header: header,
	}
	flagship := products[len(products)-1].Config
	for _, cat := range categoriesInOrder() {
		c, err := s.findByCategory(cat)
		if err != nil {
			continue
		}
		k := s.kernels[c.Kernel]
		ref, err := gcn.Simulate(k, flagship)
		if err != nil {
			return nil, err
		}
		row := []any{cat.String(), c.Kernel}
		for _, p := range products {
			r, err := gcn.Simulate(k, p.Config)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f%%", 100*r.Throughput/ref.Throughput))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// TableE3 compares three power-cap governors on a mixed workload (one
// exemplar per major category) across several caps: per-kernel oracle,
// taxonomy-guided, and best-static.
func (s *Study) TableE3(caps []float64) (*report.Table, error) {
	pm := power.DefaultModel()
	var w governor.Workload
	for _, cat := range []core.Category{
		core.CompCoupled, core.BWCoupled, core.Balanced,
		core.LatencyBound, core.CUIntolerant,
	} {
		c, err := s.findByCategory(cat)
		if err != nil {
			return nil, err
		}
		w = append(w, governor.Item{
			Kernel:   s.kernels[c.Kernel],
			Launches: 10,
			Category: cat,
		})
	}
	t := &report.Table{
		Title: "Table E-3: power-cap governors on a mixed 5-kernel workload",
		Header: []string{"cap (W)", "oracle time", "guided time", "static time",
			"guided vs oracle", "guided trials", "oracle trials"},
	}
	// Use a thinned grid so the oracle stays readable in trial counts.
	space, err := hw.NewSpace(
		[]int{4, 12, 20, 28, 36, 44},
		[]float64{200, 400, 600, 800, 1000},
		[]float64{150, 425, 700, 975, 1250})
	if err != nil {
		return nil, err
	}
	for _, cap := range caps {
		oracle, err := governor.Oracle(pm, w, space, cap)
		if err != nil {
			return nil, err
		}
		guided, err := governor.TaxonomyGuided(pm, w, space, cap)
		if err != nil {
			return nil, err
		}
		static, err := governor.Static(pm, w, space, cap)
		if err != nil {
			return nil, err
		}
		t.AddRow(cap,
			fmt.Sprintf("%.1f ms", oracle.TotalTimeNS/1e6),
			fmt.Sprintf("%.1f ms", guided.TotalTimeNS/1e6),
			fmt.Sprintf("%.1f ms", static.TotalTimeNS/1e6),
			fmt.Sprintf("%.2fx", guided.TotalTimeNS/oracle.TotalTimeNS),
			guided.TotalTrials, oracle.TotalTrials)
	}
	return t, nil
}
