package experiments

import (
	"strings"
	"testing"
)

func TestTableE1(t *testing.T) {
	tbl, err := study(t).TableE1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"comp-coupled", "bw-coupled", "min-energy config"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table E-1 missing %q:\n%s", want, out)
		}
	}
}

func TestTableE2(t *testing.T) {
	tbl, err := study(t).TableE2([]int{4, 12})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "MAPE") || !strings.Contains(out, "12") {
		t.Errorf("Table E-2 malformed:\n%s", out)
	}
}

func TestTableE3(t *testing.T) {
	tbl, err := study(t).TableE3([]float64{150, 250})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "guided vs oracle") || !strings.Contains(out, "150") {
		t.Errorf("Table E-3 malformed:\n%s", out)
	}
}

func TestTableE4(t *testing.T) {
	tbl, err := study(t).TableE4()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"embedded", "flagship", "comp-coupled"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table E-4 missing %q:\n%s", want, out)
		}
	}
	// Every flagship column entry is 100% by construction.
	if !strings.Contains(out, "100%") {
		t.Errorf("Table E-4 missing flagship normalisation:\n%s", out)
	}
}

func TestTableE5(t *testing.T) {
	tbl, err := study(t).TableE5([]float64{0, 50_000, 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "hysteresis") || !strings.Contains(out, "50 us") {
		t.Errorf("Table E-5 malformed:\n%s", out)
	}
}
