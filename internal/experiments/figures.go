package experiments

import (
	"fmt"
	"math"
	"strings"

	"gpuscale/internal/core"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/report"
	"gpuscale/internal/roofline"
	"gpuscale/internal/stats"
)

// responseSeries converts a marginal response into a chart series.
func responseSeries(name string, r core.AxisResponse) report.Series {
	return report.Series{Name: name, X: r.Settings, Y: r.Curve}
}

// FigR1 plots intuitive scaling: a compute-coupled and a
// bandwidth-coupled exemplar on all three axes.
func (s *Study) FigR1() (string, error) {
	comp, err := s.findByCategory(core.CompCoupled)
	if err != nil {
		return "", err
	}
	bw, err := s.findByCategory(core.BWCoupled)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	cu := report.LineChart{
		Title:  "Fig R-1a: intuitive scaling vs compute units (at max clocks)",
		XLabel: "CUs", YLabel: "normalised speedup",
		Series: []report.Series{
			responseSeries("comp-coupled "+comp.Kernel, comp.CU),
			responseSeries("bw-coupled "+bw.Kernel, bw.CU),
		},
	}
	mem := report.LineChart{
		Title:  "Fig R-1b: intuitive scaling vs memory clock (at max CU/clock)",
		XLabel: "mem MHz", YLabel: "normalised speedup",
		Series: []report.Series{
			responseSeries("comp-coupled "+comp.Kernel, comp.Mem),
			responseSeries("bw-coupled "+bw.Kernel, bw.Mem),
		},
	}
	b.WriteString(cu.String())
	b.WriteString("\n")
	b.WriteString(mem.String())
	return b.String(), nil
}

// FigR2 plots the non-obvious CU-intolerance curve: performance lost
// as compute units are added.
func (s *Study) FigR2() (string, error) {
	ci, err := s.findByCategory(core.CUIntolerant)
	if err != nil {
		return "", err
	}
	c := report.LineChart{
		Title: fmt.Sprintf("Fig R-2: performance loss with added CUs (%s, peak at %g CUs)",
			ci.Kernel, ci.CU.Settings[ci.CU.PeakIndex]),
		XLabel: "CUs", YLabel: "normalised speedup",
		Series: []report.Series{responseSeries("cu-intolerant", ci.CU)},
	}
	return c.String(), nil
}

// FigR3 plots latency-bound plateaus in frequency and bandwidth.
func (s *Study) FigR3() (string, error) {
	lb, err := s.findByCategory(core.LatencyBound)
	if err != nil {
		return "", err
	}
	c := report.LineChart{
		Title: fmt.Sprintf("Fig R-3: plateaus as clocks rise (%s: %.1fx over 5x clock, %.1fx over 8.3x bw)",
			lb.Kernel, lb.Core.Gain, lb.Mem.Gain),
		XLabel: "axis setting (normalised index)", YLabel: "normalised speedup",
		Series: []report.Series{
			{Name: "vs core clock", X: indexed(lb.Core.Settings), Y: lb.Core.Curve},
			{Name: "vs mem clock", X: indexed(lb.Mem.Settings), Y: lb.Mem.Curve},
		},
	}
	return c.String(), nil
}

func indexed(settings []float64) []float64 {
	out := make([]float64, len(settings))
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// FigR4 renders the data-driven taxonomy: cluster centroids as
// per-axis mean efficiencies.
func (s *Study) FigR4(k int) (string, error) {
	ct, err := core.Cluster(s.Surfaces, k, ClusterSeed)
	if err != nil {
		return "", err
	}
	sizes := make([]int, k)
	for _, a := range ct.Assignments {
		sizes[a]++
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Fig R-4: cluster centroids (k=%d) as coupling labels", k),
		Header: []string{"cluster", "kernels", "centroid coupling"},
	}
	for i := 0; i < k; i++ {
		t.AddRow(fmt.Sprintf("c%d", i), sizes[i], ct.Names[i])
	}
	return t.String(), nil
}

// FigR5 renders the cluster-count selection curves (elbow inertia and
// silhouette).
func (s *Study) FigR5(maxK int) (string, error) {
	inertia, sil, bestK, err := core.SelectK(s.Surfaces, maxK, ClusterSeed)
	if err != nil {
		return "", err
	}
	ks := make([]float64, len(inertia))
	norm := make([]float64, len(inertia))
	for i := range inertia {
		ks[i] = float64(i + 2)
		norm[i] = inertia[i] / inertia[0]
	}
	c := report.LineChart{
		Title:  fmt.Sprintf("Fig R-5: cluster-count selection (best silhouette at k=%d)", bestK),
		XLabel: "k", YLabel: "normalised inertia / silhouette",
		Series: []report.Series{
			{Name: "inertia (normalised to k=2)", X: ks, Y: norm},
			{Name: "silhouette", X: ks, Y: sil},
		},
	}
	return c.String(), nil
}

// FigR6 renders CU x core-clock speedup heatmaps for a compute-coupled
// and a CU-intolerant exemplar.
func (s *Study) FigR6() (string, error) {
	var b strings.Builder
	for _, cat := range []core.Category{core.CompCoupled, core.CUIntolerant} {
		c, err := s.findByCategory(cat)
		if err != nil {
			return "", err
		}
		sf, err := s.surfaceOf(c.Kernel)
		if err != nil {
			return "", err
		}
		rows := make([]string, len(s.Space.CUCounts))
		for i, cu := range s.Space.CUCounts {
			rows[i] = fmt.Sprintf("%dcu", cu)
		}
		cols := make([]string, len(s.Space.CoreClocksMHz))
		for i, f := range s.Space.CoreClocksMHz {
			cols[i] = fmt.Sprintf("%g", f)
		}
		h := report.Heatmap{
			Title: fmt.Sprintf("Fig R-6 (%s): speedup over CU x core clock, %s",
				cat, c.Kernel),
			RowLabels: rows,
			ColLabels: cols,
			Values:    sf.SpeedupGrid(),
		}
		b.WriteString(h.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}

// FigR7 renders the CDF of total (max-config over min-config) speedup
// across all kernels.
func (s *Study) FigR7() string {
	speedups := make([]float64, len(s.Surfaces))
	for i, sf := range s.Surfaces {
		speedups[i] = sf.TotalSpeedup()
	}
	vals, fracs := stats.CDF(speedups)
	c := report.LineChart{
		Title: fmt.Sprintf(
			"Fig R-7: CDF of total speedup, min config -> max config (median %.1fx, max %.1fx)",
			stats.Median(speedups), vals[len(vals)-1]),
		XLabel: "speedup", YLabel: "fraction of kernels",
		Series: []report.Series{{Name: "all 267 kernels", X: vals, Y: fracs}},
	}
	return c.String()
}

// FigC2 places the whole corpus on the reference configuration's
// roofline: log10 intensity vs log10 achieved GFLOP/s, with the roof
// drawn as its own series.
func (s *Study) FigC2() (string, error) {
	ks := make([]*kernel.Kernel, 0, len(s.kernels))
	for _, name := range s.Matrix.Kernels {
		ks = append(ks, s.kernels[name])
	}
	cfg := hw.Reference()
	pts, err := roofline.Place(ks, cfg)
	if err != nil {
		return "", err
	}
	var xs, ys []float64
	for _, p := range pts {
		if math.IsInf(p.Intensity, 1) || p.Intensity <= 0 || p.GFLOPS <= 0 {
			continue
		}
		xs = append(xs, math.Log10(p.Intensity))
		ys = append(ys, math.Log10(p.GFLOPS))
	}
	var roofX, roofY []float64
	for e := -2.0; e <= 3.0; e += 0.1 {
		roofX = append(roofX, e)
		roofY = append(roofY, math.Log10(roofline.Attainable(cfg, math.Pow(10, e))))
	}
	sum := roofline.Summarise(pts, cfg)
	c := report.LineChart{
		Title: fmt.Sprintf(
			"Fig C-2: corpus on the roofline at %v (%d bandwidth-side, %d compute-side, median %.0f%% of roof)",
			cfg, sum.BandwidthSide, sum.ComputeSide, 100*sum.MedianRoofFraction),
		XLabel: "log10 FLOP/byte", YLabel: "log10 GFLOP/s",
		Series: []report.Series{
			{Name: "roof", X: roofX, Y: roofY},
			{Name: "kernels", X: xs, Y: ys},
		},
	}
	return c.String(), nil
}

// FigR8 renders per-suite CU-efficiency quartiles.
func (s *Study) FigR8() (string, error) {
	t := &report.Table{
		Title:  "Fig R-8: per-suite CU-axis efficiency at 44 CUs (quartiles)",
		Header: []string{"suite", "q25", "median", "q75"},
	}
	groups := map[string][]core.Surface{}
	for _, sf := range s.Surfaces {
		suite := s.suiteOf[sf.Kernel]
		groups[suite] = append(groups[suite], sf)
	}
	for _, name := range s.sortedSuiteNames() {
		ss, ok := groups[name]
		if !ok {
			return "", fmt.Errorf("experiments: suite %q missing surfaces", name)
		}
		q25, q50, q75 := core.CUEfficiencyQuartiles(ss)
		t.AddRow(name, q25, q50, q75)
	}
	return t.String(), nil
}
