// Package experiments regenerates every table and figure of the
// reproduction (see DESIGN.md's per-experiment index). A Study bundles
// the corpus, the full 891-configuration sweep, and the taxonomy
// results; each TableRn/FigRn method renders one artifact.
package experiments

import (
	"fmt"
	"sort"

	"gpuscale/internal/core"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

// Study is one complete run of the paper's methodology: corpus,
// sweep, surfaces, and classifications.
type Study struct {
	// Corpus is the 8-suite benchmark corpus.
	Corpus []suites.Suite
	// Space is the hardware grid (891 configurations by default).
	Space hw.Space
	// Matrix holds the sweep measurements.
	Matrix *sweep.Matrix
	// Surfaces are the per-kernel scaling surfaces.
	Surfaces []core.Surface
	// Classifications are the rule-based taxonomy results.
	Classifications []core.Classification

	kernels map[string]*kernel.Kernel
	suiteOf map[string]string
	arch    map[string]suites.Archetype
}

// ClusterSeed fixes the clustering RNG across every experiment so the
// reported figures are reproducible.
const ClusterSeed = 17

// New runs the full study: the complete corpus over the complete
// study space with the round engine, classified with default
// thresholds. It takes well under a second.
func New() (*Study, error) {
	return NewWithOptions(hw.StudySpace(), sweep.Options{})
}

// NewWithOptions runs the study on a custom space or sweep options
// (used by the noise-robustness and fidelity ablations).
func NewWithOptions(space hw.Space, opts sweep.Options) (*Study, error) {
	corpus := suites.Corpus()
	ks := suites.AllKernels(corpus)
	m, err := sweep.Run(ks, space, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: sweep: %w", err)
	}
	surfaces := core.Surfaces(m)
	s := &Study{
		Corpus:          corpus,
		Space:           space,
		Matrix:          m,
		Surfaces:        surfaces,
		Classifications: core.DefaultClassifier().ClassifyAll(surfaces),
		kernels:         map[string]*kernel.Kernel{},
		suiteOf:         map[string]string{},
		arch:            map[string]suites.Archetype{},
	}
	for _, suite := range corpus {
		for _, p := range suite.Programs {
			for _, e := range p.Kernels {
				s.kernels[e.Kernel.Name] = e.Kernel
				s.suiteOf[e.Kernel.Name] = suite.Name
				s.arch[e.Kernel.Name] = e.Archetype
			}
		}
	}
	return s, nil
}

// SuiteOf returns the suite owning a kernel name ("" if unknown).
func (s *Study) SuiteOf(name string) string { return s.suiteOf[name] }

// Kernel returns the kernel description by name (nil if unknown).
func (s *Study) Kernel(name string) *kernel.Kernel { return s.kernels[name] }

// findByCategory returns the cleanest exemplar of a category: the
// kernel maximising a category-specific purity score, so figures show
// the archetypal curve rather than a boundary case.
func (s *Study) findByCategory(cat core.Category) (core.Classification, error) {
	score := func(c core.Classification) float64 {
		switch cat {
		case core.CompCoupled:
			return c.CU.Efficiency + c.Core.Efficiency - c.Mem.Efficiency
		case core.BWCoupled:
			return c.Mem.Efficiency - c.CU.Efficiency - c.Core.Efficiency
		case core.CUIntolerant:
			if c.CU.Gain <= 0 {
				return 0
			}
			return c.CU.PeakGain / c.CU.Gain // depth of the decline
		case core.LatencyBound:
			return -(c.Core.Efficiency + c.Mem.Efficiency)
		default:
			return c.TotalSpeedup
		}
	}
	best := -1
	for i, c := range s.Classifications {
		if c.Category != cat {
			continue
		}
		if best < 0 || score(c) > score(s.Classifications[best]) {
			best = i
		}
	}
	if best < 0 {
		return core.Classification{}, fmt.Errorf("experiments: no kernel in category %v", cat)
	}
	return s.Classifications[best], nil
}

// surfaceOf returns the surface for a kernel name.
func (s *Study) surfaceOf(name string) (core.Surface, error) {
	for _, sf := range s.Surfaces {
		if sf.Kernel == name {
			return sf, nil
		}
	}
	return core.Surface{}, fmt.Errorf("experiments: no surface for %q", name)
}

// categoriesInOrder returns all categories, fixed order.
func categoriesInOrder() []core.Category {
	out := make([]core.Category, 0, core.NumCategories)
	for c := core.CompCoupled; c <= core.Irregular; c++ {
		out = append(out, c)
	}
	return out
}

// sortedSuiteNames returns the corpus suite names sorted.
func (s *Study) sortedSuiteNames() []string {
	names := make([]string, 0, len(s.Corpus))
	for _, suite := range s.Corpus {
		names = append(names, suite.Name)
	}
	sort.Strings(names)
	return names
}
