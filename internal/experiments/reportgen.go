package experiments

import (
	"fmt"
	"io"

	"gpuscale/internal/report"
)

// WriteMarkdownReport emits the full study as one self-contained
// markdown document: every reconstructed table in markdown form, with
// the figures embedded as preformatted blocks. `cmd/taxonomy -md`
// writes it to disk; it is the artifact a reproduction package would
// ship.
func (s *Study) WriteMarkdownReport(w io.Writer, clusterK int) error {
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := write("# gpuscale study report\n\nAutomatically generated; see EXPERIMENTS.md for the paper-vs-measured discussion.\n\n" +
		"Provenance: raw sweep archives behind these tables come from\n" +
		"`gpusweep`. Its diagnostics (summaries, failures, progress) go to\n" +
		"stderr and the matrix alone to stdout/`-o`, and the observability\n" +
		"flags (`-trace-out`, `-metrics-addr`, `-progress`) are read-only taps\n" +
		"— enabling them does not change a single matrix byte, so archives\n" +
		"regenerated with or without them are interchangeable.\n\n"); err != nil {
		return err
	}

	tables := []struct {
		name string
		get  func() (*report.Table, error)
	}{
		{"R-1", func() (*report.Table, error) { return s.TableR1(), nil }},
		{"R-2", func() (*report.Table, error) { return s.TableR2(), nil }},
		{"R-3", func() (*report.Table, error) { return s.TableR3(), nil }},
		{"R-4", func() (*report.Table, error) { return s.TableR4(), nil }},
		{"R-5", s.TableR5},
		{"R-6", func() (*report.Table, error) { return s.TableR6(clusterK) }},
		{"P-1", s.TableP1},
		{"C-1", func() (*report.Table, error) { return s.TableC1(), nil }},
		{"I-1", s.TableI1},
		{"baseline", func() (*report.Table, error) { return s.TableBaseline(), nil }},
		{"archetype-recovery", func() (*report.Table, error) { return s.TableArchetypeRecovery(), nil }},
		{"E-1", s.TableE1},
		{"E-2", func() (*report.Table, error) { return s.TableE2([]int{2, 4, 8, 12, 16}) }},
		{"E-3", func() (*report.Table, error) { return s.TableE3([]float64{120, 150, 200, 275}) }},
		{"E-4", s.TableE4},
		{"E-5", func() (*report.Table, error) {
			return s.TableE5([]float64{0, 50_000, 1_000_000, 5_000_000})
		}},
		{"M-1", func() (*report.Table, error) { return s.TableM1(clusterK) }},
	}
	for _, tb := range tables {
		t, err := tb.get()
		if err != nil {
			return fmt.Errorf("experiments: table %s: %w", tb.name, err)
		}
		if err := t.WriteMarkdown(w); err != nil {
			return fmt.Errorf("experiments: table %s: %w", tb.name, err)
		}
		if err := write("\n"); err != nil {
			return err
		}
	}

	figs := []struct {
		name string
		get  func() (string, error)
	}{
		{"R-1", s.FigR1},
		{"R-2", s.FigR2},
		{"R-3", s.FigR3},
		{"R-4", func() (string, error) { return s.FigR4(clusterK) }},
		{"R-5", func() (string, error) { return s.FigR5(10) }},
		{"R-6", s.FigR6},
		{"R-7", func() (string, error) { return s.FigR7(), nil }},
		{"R-8", s.FigR8},
		{"C-2", s.FigC2},
	}
	for _, fg := range figs {
		out, err := fg.get()
		if err != nil {
			return fmt.Errorf("experiments: figure %s: %w", fg.name, err)
		}
		if err := write("## Figure %s\n\n```\n%s```\n\n", fg.name, out); err != nil {
			return err
		}
	}
	return nil
}
