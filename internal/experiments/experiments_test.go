package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// sharedStudy runs the full study once per test binary.
var sharedStudy = sync.OnceValues(New)

func study(t *testing.T) *Study {
	t.Helper()
	s, err := sharedStudy()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTableR1ContainsPaperNumbers(t *testing.T) {
	out := study(t).TableR1().String()
	for _, want := range []string{"891", "237897", "11.0x", "5.0x", "8.3x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table R-1 missing %q:\n%s", want, out)
		}
	}
}

func TestTableR2Totals(t *testing.T) {
	out := study(t).TableR2().String()
	if !strings.Contains(out, "97") || !strings.Contains(out, "267") {
		t.Errorf("Table R-2 missing corpus totals:\n%s", out)
	}
	if !strings.Contains(out, "proxyapps") {
		t.Errorf("Table R-2 missing suites:\n%s", out)
	}
}

func TestTableR3AllCategories(t *testing.T) {
	out := study(t).TableR3().String()
	for _, want := range []string{"comp-coupled", "bw-coupled", "cu-intolerant",
		"latency-bound", "parallelism-limited", "launch-bound", "non-obvious"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table R-3 missing %q:\n%s", want, out)
		}
	}
}

func TestTableR4HasAllSuites(t *testing.T) {
	s := study(t)
	out := s.TableR4().String()
	for _, suite := range s.Corpus {
		if !strings.Contains(out, suite.Name) {
			t.Errorf("Table R-4 missing suite %q", suite.Name)
		}
	}
}

func TestTableR5Verdicts(t *testing.T) {
	tbl, err := study(t).TableR5()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "NO") {
		t.Errorf("Table R-5 reports no failing suites:\n%s", out)
	}
	if !strings.Contains(out, "yes") {
		t.Errorf("Table R-5 reports no passing suites:\n%s", out)
	}
}

func TestTableR6RendersAgreement(t *testing.T) {
	tbl, err := study(t).TableR6(8)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "purity") || !strings.Contains(out, "silhouette") {
		t.Errorf("Table R-6 missing scores:\n%s", out)
	}
}

func TestFiguresRender(t *testing.T) {
	s := study(t)
	f1, err := s.FigR1()
	if err != nil || !strings.Contains(f1, "Fig R-1a") {
		t.Errorf("FigR1: %v\n%s", err, f1)
	}
	f2, err := s.FigR2()
	if err != nil || !strings.Contains(f2, "peak at") {
		t.Errorf("FigR2: %v\n%s", err, f2)
	}
	f3, err := s.FigR3()
	if err != nil || !strings.Contains(f3, "plateaus") {
		t.Errorf("FigR3: %v\n%s", err, f3)
	}
	f4, err := s.FigR4(8)
	if err != nil || !strings.Contains(f4, "c0") {
		t.Errorf("FigR4: %v\n%s", err, f4)
	}
	f5, err := s.FigR5(10)
	if err != nil || !strings.Contains(f5, "silhouette") {
		t.Errorf("FigR5: %v\n%s", err, f5)
	}
	f6, err := s.FigR6()
	if err != nil || !strings.Contains(f6, "scale:") {
		t.Errorf("FigR6: %v\n%s", err, f6)
	}
	f7 := s.FigR7()
	if !strings.Contains(f7, "CDF") {
		t.Errorf("FigR7:\n%s", f7)
	}
	f8, err := s.FigR8()
	if err != nil || !strings.Contains(f8, "median") {
		t.Errorf("FigR8: %v\n%s", err, f8)
	}
}

func TestBaselineAndRecoveryTables(t *testing.T) {
	s := study(t)
	base := s.TableBaseline().String()
	if !strings.Contains(base, "roofline=compute") {
		t.Errorf("baseline table malformed:\n%s", base)
	}
	rec := s.TableArchetypeRecovery().String()
	if !strings.Contains(rec, "pointer-chase") {
		t.Errorf("recovery table malformed:\n%s", rec)
	}
}

func TestAblationFidelity(t *testing.T) {
	tbl, err := study(t).AblationFidelity(25)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "mean") || !strings.Contains(out, "worst") {
		t.Errorf("fidelity ablation missing summary:\n%s", out)
	}
}

func TestAblationThresholds(t *testing.T) {
	tbl, err := study(t).AblationThresholds(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "stability") {
		t.Errorf("threshold ablation malformed:\n%s", tbl.String())
	}
}

func TestAblationNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("noise ablation reruns the sweep")
	}
	tbl, err := AblationNoise([]float64{0.02}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "0.02") {
		t.Errorf("noise ablation malformed:\n%s", tbl.String())
	}
}

func TestAblationCacheModel(t *testing.T) {
	tbl, err := AblationCacheModel(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "trace L2") {
		t.Errorf("cache ablation malformed:\n%s", tbl.String())
	}
}

func TestStudyAccessors(t *testing.T) {
	s := study(t)
	name := s.Matrix.Kernels[0]
	if s.Kernel(name) == nil {
		t.Errorf("Kernel(%q) = nil", name)
	}
	if s.SuiteOf(name) == "" {
		t.Errorf("SuiteOf(%q) empty", name)
	}
	if s.Kernel("nope") != nil || s.SuiteOf("nope") != "" {
		t.Error("unknown kernel resolved")
	}
}

func TestTableP1(t *testing.T) {
	tbl, err := study(t).TableP1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "97 programs") {
		t.Errorf("Table P-1 missing program count:\n%s", out)
	}
	if !strings.Contains(out, "mixing kernel categories") {
		t.Errorf("Table P-1 missing disagreement rows:\n%s", out)
	}
}

func TestAblationDRAMEfficiency(t *testing.T) {
	tbl, err := AblationDRAMEfficiency(20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "sequential") || !strings.Contains(out, "row-hit rate") {
		t.Errorf("DRAM ablation malformed:\n%s", out)
	}
}

func TestTableC1(t *testing.T) {
	out := study(t).TableC1().String()
	if !strings.Contains(out, "arith intensity") || !strings.Contains(out, "proxyapps") {
		t.Errorf("Table C-1 malformed:\n%s", out)
	}
}

func TestTableI1(t *testing.T) {
	tbl, err := study(t).TableI1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"cu x coreclk", "cu x memclk", "super-multiplicative"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I-1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigC2(t *testing.T) {
	out, err := study(t).FigC2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "roofline") || !strings.Contains(out, "roof") {
		t.Errorf("Fig C-2 malformed:\n%s", out)
	}
}

func TestWhatIfScaledL2CuresIntolerance(t *testing.T) {
	tbl, err := study(t).WhatIfScaledL2()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "cured") {
		t.Fatalf("what-if table malformed:\n%s", out)
	}
	// The causal claim: scaling the L2 with CUs must cure the decline
	// for the large majority of CU-intolerant kernels.
	lines := strings.Split(out, "\n")
	var curedLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "cured") {
			curedLine = l
		}
	}
	var cured, total int
	if _, err := fmt.Sscanf(strings.Fields(curedLine)[1], "%d/%d", &cured, &total); err != nil {
		t.Fatalf("cannot parse cured line %q: %v", curedLine, err)
	}
	if total == 0 {
		t.Fatal("no CU-intolerant kernels in study")
	}
	if cured*4 < total*3 {
		t.Errorf("scaled L2 cured only %d/%d kernels, want >= 75%%", cured, total)
	}
}

func TestTableO1(t *testing.T) {
	tbl, err := TableO1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "waves/CU") {
		t.Fatalf("Table O-1 malformed:\n%s", out)
	}
	// Occupancy must be monotone non-increasing with register
	// pressure, and the lowest-occupancy row must be slowest.
	var rows [][]string
	for _, l := range strings.Split(out, "\n")[3:] {
		f := strings.Fields(l)
		if len(f) >= 4 {
			rows = append(rows, f)
		}
	}
	if len(rows) < 5 {
		t.Fatalf("too few rows:\n%s", out)
	}
	first, last := rows[0], rows[len(rows)-1]
	var tputHigh, tputLow float64
	fmt.Sscanf(first[2], "%f", &tputHigh)
	fmt.Sscanf(last[2], "%f", &tputLow)
	if tputLow >= tputHigh {
		t.Errorf("occupancy collapse did not cost performance: %g -> %g", tputHigh, tputLow)
	}
}

func TestStudyDeterministicAcrossConstructions(t *testing.T) {
	// Two independently built studies must render byte-identical
	// artifacts (catches map-iteration nondeterminism in any table).
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if a.TableR3().String() != b.TableR3().String() {
		t.Error("Table R-3 nondeterministic")
	}
	if a.TableR4().String() != b.TableR4().String() {
		t.Error("Table R-4 nondeterministic")
	}
	ta, err := a.TableR6(8)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.TableR6(8)
	if err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Error("Table R-6 nondeterministic")
	}
	f7a, f7b := a.FigR7(), b.FigR7()
	if f7a != f7b {
		t.Error("Fig R-7 nondeterministic")
	}
}

func TestAblationTaxonomyFidelity(t *testing.T) {
	tbl, err := AblationTaxonomyFidelity(12)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "agreement") {
		t.Fatalf("taxonomy fidelity ablation malformed:\n%s", out)
	}
	var line string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "agreement") {
			line = l
		}
	}
	var agree, total int
	if _, err := fmt.Sscanf(strings.Fields(line)[1], "%d/%d", &agree, &total); err != nil {
		t.Fatalf("cannot parse %q: %v", line, err)
	}
	if agree*4 < total*3 {
		t.Errorf("engines agree on only %d/%d verdicts, want >= 75%%", agree, total)
	}
}

func TestAblationScheduler(t *testing.T) {
	tbl, err := AblationScheduler()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "round-robin") || !strings.Contains(out, "latency-mix") {
		t.Fatalf("scheduler ablation malformed:\n%s", out)
	}
}

func TestWriteClassificationsCSVDirect(t *testing.T) {
	var buf bytes.Buffer
	if err := study(t).WriteClassificationsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kernel,suite,archetype,category") {
		t.Fatalf("header missing: %.80s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 268 {
		t.Fatalf("lines = %d, want 268", lines)
	}
}

func TestWriteMarkdownReportDirect(t *testing.T) {
	var buf bytes.Buffer
	if err := study(t).WriteMarkdownReport(&buf, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table R-5", "Table E-5", "## Figure R-7", "|---|"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

func TestTableM1MethodRobustness(t *testing.T) {
	tbl, err := study(t).TableM1(8)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "Rand index") {
		t.Fatalf("Table M-1 malformed:\n%s", out)
	}
	// Both methods must group the corpus consistently.
	var rows []float64
	for _, l := range strings.Split(out, "\n") {
		f := strings.Fields(l)
		if len(f) < 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(f[len(f)-1], "%f", &v); err == nil && v > 0 && v <= 1 {
			rows = append(rows, v)
		}
	}
	if len(rows) < 3 {
		t.Fatalf("could not parse scores:\n%s", out)
	}
	if rows[0] < 0.7 {
		t.Errorf("k-means/hierarchical Rand index = %.3f, want >= 0.7", rows[0])
	}
	if rows[2] < 0.5 {
		t.Errorf("hierarchical purity = %.3f, want >= 0.5", rows[2])
	}
}
