package experiments

import (
	"fmt"

	"gpuscale/internal/core"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/report"
	"gpuscale/internal/stats"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

// TableM1 compares the two data-driven grouping methods on the real
// corpus: k-means and average-linkage hierarchical clustering over the
// same response vectors. The paper's exact method is unknown; if both
// methods land close to each other (Rand index) and to the rule-based
// taxonomy (purity), the conclusions do not depend on that unknown.
func (s *Study) TableM1(k int) (*report.Table, error) {
	vecs := make([][]float64, len(s.Surfaces))
	for i, sf := range s.Surfaces {
		vecs[i] = sf.ResponseVector()
	}
	km, err := stats.KMeans(vecs, k, ClusterSeed, 8)
	if err != nil {
		return nil, err
	}
	hc, err := stats.Hierarchical(vecs, k)
	if err != nil {
		return nil, err
	}
	rand, err := stats.ClusterAgreement(km.Assignments, hc)
	if err != nil {
		return nil, err
	}
	purity := func(assign []int) float64 {
		majority := make(map[int]map[core.Category]int)
		for i, a := range assign {
			if majority[a] == nil {
				majority[a] = map[core.Category]int{}
			}
			majority[a][s.Classifications[i].Category]++
		}
		match := 0
		for i, a := range assign {
			bestCat, bestN := core.Irregular, -1
			for cat, n := range majority[a] {
				if n > bestN || (n == bestN && cat < bestCat) {
					bestCat, bestN = cat, n
				}
			}
			if bestCat == s.Classifications[i].Category {
				match++
			}
		}
		return float64(match) / float64(len(assign))
	}
	t := &report.Table{
		Title: fmt.Sprintf(
			"Table M-1: clustering-method robustness (k=%d, k-means vs hierarchical)", k),
		Header: []string{"comparison", "score"},
	}
	t.AddRow("k-means vs hierarchical (Rand index)", rand)
	t.AddRow("k-means vs rule-based taxonomy (purity)", purity(km.Assignments))
	t.AddRow("hierarchical vs rule-based taxonomy (purity)", purity(hc))
	return t, nil
}

// AblationTaxonomyFidelity asks the question that matters more than
// per-run time ratios: does the taxonomy *verdict* change when the
// sweep runs on a higher-fidelity engine? It sweeps a subsample of
// small-launch corpus kernels over a thinned 5x5x5 grid with both the
// round and the detailed engine, classifies both, and reports the
// agreement.
func AblationTaxonomyFidelity(maxKernels int) (*report.Table, error) {
	if maxKernels < 4 {
		maxKernels = 4
	}
	space, err := hw.NewSpace(
		[]int{4, 12, 24, 36, 44},
		[]float64{200, 400, 600, 800, 1000},
		[]float64{150, 425, 700, 975, 1250})
	if err != nil {
		return nil, err
	}
	var ks []*kernel.Kernel
	for _, k := range suites.AllKernels(suites.Corpus()) {
		if k.Workgroups <= 1024 {
			ks = append(ks, k)
			if len(ks) == maxKernels {
				break
			}
		}
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("experiments: no small-launch kernels for fidelity ablation")
	}
	round, err := sweep.Run(ks, space, sweep.Options{})
	if err != nil {
		return nil, err
	}
	detailed, err := sweep.Run(ks, space, sweep.Options{Engine: sweep.Detailed})
	if err != nil {
		return nil, err
	}
	cl := core.DefaultClassifier()
	roundCS := cl.ClassifyAll(core.Surfaces(round))
	detCS := cl.ClassifyAll(core.Surfaces(detailed))

	t := &report.Table{
		Title: fmt.Sprintf(
			"Ablation: taxonomy verdicts, round vs detailed engine (%d kernels, 5x5x5 grid)",
			len(ks)),
		Header: []string{"kernel", "round category", "detailed category", "agree"},
	}
	agree := 0
	for i := range roundCS {
		same := roundCS[i].Category == detCS[i].Category
		if same {
			agree++
		}
		mark := "yes"
		if !same {
			mark = "NO"
		}
		t.AddRow(roundCS[i].Kernel, roundCS[i].Category.String(),
			detCS[i].Category.String(), mark)
	}
	t.AddRow("agreement", fmt.Sprintf("%d/%d", agree, len(roundCS)), "", "")
	return t, nil
}
