package experiments

import (
	"fmt"
	"math"

	"gpuscale/internal/core"
	"gpuscale/internal/report"
	"gpuscale/internal/stats"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

// TableR1 renders the hardware configuration space (Table R-1).
func (s *Study) TableR1() *report.Table {
	t := &report.Table{
		Title:  "Table R-1: hardware configuration space",
		Header: []string{"knob", "settings", "count", "range"},
	}
	t.AddRow("compute units", fmt.Sprintf("%v", s.Space.CUCounts),
		len(s.Space.CUCounts), fmt.Sprintf("%.1fx", s.Space.CURange()))
	t.AddRow("core clock (MHz)", fmt.Sprintf("%v", s.Space.CoreClocksMHz),
		len(s.Space.CoreClocksMHz), fmt.Sprintf("%.1fx", s.Space.CoreClockRange()))
	t.AddRow("memory clock (MHz)", fmt.Sprintf("%v", s.Space.MemClocksMHz),
		len(s.Space.MemClocksMHz), fmt.Sprintf("%.1fx", s.Space.MemClockRange()))
	t.AddRow("total configurations", "", s.Space.Size(), "")
	t.AddRow("total simulations", "", sweep.Runs(len(s.Matrix.Kernels), s.Space.Size()), "")
	return t
}

// TableR2 renders corpus composition (Table R-2).
func (s *Study) TableR2() *report.Table {
	t := &report.Table{
		Title:  "Table R-2: benchmark corpus composition",
		Header: []string{"suite", "stands in for", "programs", "kernels"},
	}
	programs, kernels := 0, 0
	for _, suite := range s.Corpus {
		t.AddRow(suite.Name, suite.Description, len(suite.Programs), suite.KernelCount())
		programs += len(suite.Programs)
		kernels += suite.KernelCount()
	}
	t.AddRow("total", "", programs, kernels)
	return t
}

// TableR3 renders the taxonomy distribution (Table R-3).
func (s *Study) TableR3() *report.Table {
	t := &report.Table{
		Title:  "Table R-3: taxonomy category distribution (267 kernels)",
		Header: []string{"category", "kernels", "share", "kind"},
	}
	d := core.Distribution(s.Classifications)
	total := len(s.Classifications)
	kind := map[core.Category]string{
		core.CompCoupled:        "intuitive",
		core.BWCoupled:          "intuitive",
		core.Balanced:           "intuitive",
		core.ParallelismLimited: "non-obvious",
		core.LatencyBound:       "non-obvious",
		core.CUIntolerant:       "non-obvious",
		core.LaunchBound:        "non-obvious",
		core.Irregular:          "residual",
	}
	for _, c := range categoriesInOrder() {
		t.AddRow(c.String(), d[c], fmt.Sprintf("%.1f%%", 100*float64(d[c])/float64(total)), kind[c])
	}
	return t
}

// TableR4 renders the per-suite category breakdown (Table R-4).
func (s *Study) TableR4() *report.Table {
	header := []string{"suite"}
	for _, c := range categoriesInOrder() {
		header = append(header, c.String())
	}
	t := &report.Table{
		Title:  "Table R-4: taxonomy categories per suite",
		Header: header,
	}
	counts := map[string]map[core.Category]int{}
	for _, c := range s.Classifications {
		suite := s.suiteOf[c.Kernel]
		if counts[suite] == nil {
			counts[suite] = map[core.Category]int{}
		}
		counts[suite][c.Category]++
	}
	for _, name := range s.sortedSuiteNames() {
		row := []any{name}
		for _, c := range categoriesInOrder() {
			row = append(row, counts[name][c])
		}
		t.AddRow(row...)
	}
	return t
}

// TableR5 renders suite scalability (Table R-5) — the "benchmarks do
// not scale to modern GPU sizes" result.
func (s *Study) TableR5() (*report.Table, error) {
	rs, err := core.AnalyzeSuites(s.Surfaces, func(k string) string { return s.suiteOf[k] })
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "Table R-5: suite scalability at modern GPU size (44 CUs)",
		Header: []string{"suite", "kernels", "median CU efficiency",
			"saturate at <=22 CUs", "median total speedup", "scales?"},
	}
	for _, r := range rs {
		verdict := "yes"
		if !r.Scales {
			verdict = "NO"
		}
		t.AddRow(r.Suite, r.Kernels, r.MedianCUEfficiency,
			fmt.Sprintf("%.0f%%", 100*r.SaturatedEarlyFraction),
			r.MedianTotalSpeedup, verdict)
	}
	return t, nil
}

// TableR6 renders rule-vs-cluster agreement (Table R-6).
func (s *Study) TableR6(k int) (*report.Table, error) {
	ct, err := core.Cluster(s.Surfaces, k, ClusterSeed)
	if err != nil {
		return nil, err
	}
	table, purity, err := core.Agreement(s.Classifications, ct)
	if err != nil {
		return nil, err
	}
	header := []string{"category \\ cluster"}
	for i := 0; i < k; i++ {
		header = append(header, fmt.Sprintf("c%d", i))
	}
	t := &report.Table{
		Title: fmt.Sprintf(
			"Table R-6: rule-based vs clustered taxonomy (k=%d, purity %.2f, silhouette %.2f)",
			k, purity, ct.Silhouette),
		Header: header,
	}
	for _, c := range categoriesInOrder() {
		row, ok := table[c]
		if !ok {
			continue
		}
		cells := []any{c.String()}
		for _, n := range row {
			cells = append(cells, n)
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// TableBaseline cross-tabulates the taxonomy against the static
// roofline baseline, demonstrating the classes the baseline conflates.
func (s *Study) TableBaseline() *report.Table {
	conf := core.BaselineConfusion(s.Classifications, s.kernels)
	t := &report.Table{
		Title:  "Baseline: static roofline class per taxonomy category",
		Header: []string{"category", "roofline=compute", "roofline=memory"},
	}
	for _, c := range categoriesInOrder() {
		row, ok := conf[c]
		if !ok {
			continue
		}
		t.AddRow(c.String(), row[core.BaselineCompute], row[core.BaselineMemory])
	}
	return t
}

// TableC1 characterises the corpus the way an IISWC paper would: per
// suite, the medians of the static and dynamic properties that drive
// scaling behaviour.
func (s *Study) TableC1() *report.Table {
	t := &report.Table{
		Title: "Table C-1: corpus characterisation (per-suite medians)",
		Header: []string{"suite", "workgroups", "waves/CU", "arith intensity",
			"SIMD eff", "eff MLP", "WG working set (KiB)"},
	}
	type agg struct {
		wgs, occ, ai, simd, mlp, ws []float64
	}
	bySuite := map[string]*agg{}
	for _, k := range s.kernels {
		a, ok := bySuite[k.Suite]
		if !ok {
			a = &agg{}
			bySuite[k.Suite] = a
		}
		a.wgs = append(a.wgs, float64(k.Workgroups))
		a.occ = append(a.occ, float64(k.OccupancyWavesPerCU()))
		ai := k.ArithmeticIntensity()
		if math.IsInf(ai, 1) {
			ai = 1e6
		}
		a.ai = append(a.ai, ai)
		a.simd = append(a.simd, k.SIMDEfficiency)
		a.mlp = append(a.mlp, k.EffectiveMLP())
		a.ws = append(a.ws, float64(k.Mem.WorkingSetPerWG)/1024)
	}
	for _, name := range s.sortedSuiteNames() {
		a := bySuite[name]
		t.AddRow(name,
			stats.Median(a.wgs), stats.Median(a.occ), stats.Median(a.ai),
			stats.Median(a.simd), stats.Median(a.mlp), stats.Median(a.ws))
	}
	return t
}

// TableI1 reports how the three hardware knobs compose: for every
// kernel and axis pair, whether raising both knobs multiplies,
// falls short of (shared bottleneck), or exceeds (unlock) the product
// of the individual speedups.
func (s *Study) TableI1() (*report.Table, error) {
	dist, err := core.InteractionDistribution(s.Surfaces, core.InteractionTolerance)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Table I-1: axis-pair interaction classes (tolerance %.0f%%)",
			100*core.InteractionTolerance),
		Header: []string{"axis pair", "multiplicative", "sub-multiplicative",
			"super-multiplicative"},
	}
	for p := core.PairCUCore; p <= core.PairCoreMem; p++ {
		row := dist[p]
		t.AddRow(p.String(), row[core.Multiplicative],
			row[core.SubMultiplicative], row[core.SuperMultiplicative])
	}
	return t, nil
}

// TableP1 reports the program-level view: classify the 97 aggregated
// program surfaces and count how often the program category hides a
// differently-scaling kernel inside — the motivation for the paper's
// kernel-granularity methodology.
func (s *Study) TableP1() (*report.Table, error) {
	weightOf := func(name string) (core.KernelWeight, bool) {
		k, ok := s.kernels[name]
		if !ok {
			return core.KernelWeight{}, false
		}
		return core.KernelWeight{Program: k.Program, Iterations: k.Iterations}, true
	}
	ps, err := core.ProgramSurfaces(s.Matrix, weightOf)
	if err != nil {
		return nil, err
	}
	cl := core.DefaultClassifier()
	ds, err := core.ProgramDisagreement(cl, ps, s.Classifications, func(name string) string {
		if k := s.kernels[name]; k != nil {
			return k.Program
		}
		return ""
	})
	if err != nil {
		return nil, err
	}
	dist := map[core.Category]int{}
	hidden, multi := 0, 0
	for _, d := range ds {
		dist[d.ProgramCategory]++
		if d.Hidden {
			hidden++
		}
		if d.Categories > 1 {
			multi++
		}
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Table P-1: program-level taxonomy (%d programs)", len(ds)),
		Header: []string{"category", "programs"},
	}
	for _, c := range categoriesInOrder() {
		if dist[c] == 0 {
			continue
		}
		t.AddRow(c.String(), dist[c])
	}
	t.AddRow("programs mixing kernel categories", multi)
	t.AddRow("programs whose category hides a kernel's", hidden)
	return t, nil
}

// TableArchetypeRecovery cross-tabulates generator archetypes against
// discovered categories — the corpus-validation view.
func (s *Study) TableArchetypeRecovery() *report.Table {
	header := []string{"archetype \\ category"}
	for _, c := range categoriesInOrder() {
		header = append(header, c.String())
	}
	t := &report.Table{
		Title:  "Validation: archetype vs discovered category",
		Header: header,
	}
	counts := map[suites.Archetype]map[core.Category]int{}
	for _, c := range s.Classifications {
		a := s.arch[c.Kernel]
		if counts[a] == nil {
			counts[a] = map[core.Category]int{}
		}
		counts[a][c.Category]++
	}
	for a := suites.Archetype(0); int(a) < suites.NumArchetypes; a++ {
		row := []any{a.String()}
		for _, c := range categoriesInOrder() {
			row = append(row, counts[a][c])
		}
		t.AddRow(row...)
	}
	return t
}
