package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"gpuscale/internal/core"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/isa"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
	"gpuscale/internal/report"
	"gpuscale/internal/sweep"
	"gpuscale/internal/trace"
)

// AblationFidelity compares the three engines (round, detailed
// quantum, wavefront event) on a subsample of the corpus at the grid
// corners, reporting each higher-fidelity engine's time ratio to the
// round engine. Large corpora are subsampled by `stride` to keep the
// slow engines affordable.
func (s *Study) AblationFidelity(stride int) (*report.Table, error) {
	if stride < 1 {
		stride = 1
	}
	t := &report.Table{
		Title: "Ablation: engine fidelity (kernel-time ratios to the round engine)",
		Header: []string{"kernel", "config", "round (us)",
			"detailed ratio", "wave ratio", "pipeline ratio"},
	}
	cfgs := []hw.Config{hw.Minimum(), hw.Reference()}
	var detRatios, waveRatios, pipeRatios []float64
	for i := 0; i < len(s.Matrix.Kernels); i += stride {
		k := s.kernels[s.Matrix.Kernels[i]]
		if k.Workgroups > 4096 {
			continue // keep the slow engines cheap
		}
		for _, cfg := range cfgs {
			r, err := gcn.Simulate(k, cfg)
			if err != nil {
				return nil, err
			}
			d, err := gcn.SimulateDetailed(k, cfg)
			if err != nil {
				return nil, err
			}
			wv, err := gcn.SimulateWave(k, cfg)
			if err != nil {
				return nil, err
			}
			pl, err := gcn.SimulatePipeline(k, cfg)
			if err != nil {
				return nil, err
			}
			dr := d.KernelNS / r.KernelNS
			wr := wv.KernelNS / r.KernelNS
			pr := pl.KernelNS / r.KernelNS
			detRatios = append(detRatios, dr)
			waveRatios = append(waveRatios, wr)
			pipeRatios = append(pipeRatios, pr)
			t.AddRow(k.Name, cfg.String(), r.KernelNS/1000, dr, wr, pr)
		}
	}
	if len(detRatios) == 0 {
		return nil, fmt.Errorf("experiments: fidelity ablation sampled no kernels")
	}
	summarise := func(name string, ratios []float64) {
		mean := 0.0
		worst := 1.0
		for _, r := range ratios {
			mean += r
			if math.Abs(math.Log(r)) > math.Abs(math.Log(worst)) {
				worst = r
			}
		}
		t.AddRow(name+" mean", "", "", mean/float64(len(ratios)), "", "")
		t.AddRow(name+" worst", "", "", worst, "", "")
	}
	summarise("detailed", detRatios)
	summarise("wave", waveRatios)
	summarise("pipeline", pipeRatios)
	return t, nil
}

// AblationNoise reruns the sweep with multiplicative measurement noise
// and reports how many kernels keep their category — the taxonomy's
// robustness to run-to-run variation.
func AblationNoise(stddevs []float64, seed int64) (*report.Table, error) {
	clean, err := New()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Ablation: category stability under measurement noise",
		Header: []string{"noise stddev", "stable kernels", "stability"},
	}
	for _, sd := range stddevs {
		noisy, err := NewWithOptions(hw.StudySpace(), sweep.Options{NoiseStdDev: sd, Seed: seed})
		if err != nil {
			return nil, err
		}
		same := 0
		for i := range clean.Classifications {
			if clean.Classifications[i].Category == noisy.Classifications[i].Category {
				same++
			}
		}
		total := len(clean.Classifications)
		t.AddRow(sd, fmt.Sprintf("%d/%d", same, total), float64(same)/float64(total))
	}
	return t, nil
}

// AblationThresholds perturbs each classifier threshold by +-frac and
// reports the fraction of kernels whose category survives every
// perturbation.
func (s *Study) AblationThresholds(frac float64) (*report.Table, error) {
	base := core.DefaultThresholds()
	variants := []core.Thresholds{}
	scale := []float64{1 - frac, 1 + frac}
	for _, f := range scale {
		v := base
		v.FlatGain = 1 + (base.FlatGain-1)*f
		variants = append(variants, v)
		v = base
		v.LinearEfficiency = math.Min(base.LinearEfficiency*f, 1)
		variants = append(variants, v)
		v = base
		v.SaturationTailGain = 1 + (base.SaturationTailGain-1)*f
		variants = append(variants, v)
		v = base
		v.DeclineFraction = math.Min(base.DeclineFraction*f, 1)
		variants = append(variants, v)
	}
	stable := make([]bool, len(s.Classifications))
	for i := range stable {
		stable[i] = true
	}
	for _, v := range variants {
		cl, err := core.NewClassifier(v)
		if err != nil {
			return nil, err
		}
		cs := cl.ClassifyAll(s.Surfaces)
		for i := range cs {
			if cs[i].Category != s.Classifications[i].Category {
				stable[i] = false
			}
		}
	}
	n := 0
	for _, ok := range stable {
		if ok {
			n++
		}
	}
	t := &report.Table{
		Title:  fmt.Sprintf("Ablation: category stability under +-%.0f%% threshold shifts", 100*frac),
		Header: []string{"perturbations", "stable kernels", "stability"},
	}
	t.AddRow(len(variants), fmt.Sprintf("%d/%d", n, len(stable)),
		float64(n)/float64(len(stable)))
	return t, nil
}

// AblationDRAMEfficiency derives DRAM efficiency from the event-level
// channel/bank/row simulator for canonical line traces and compares it
// with the constants the analytic engine uses (PatternEfficiency).
// The constants intentionally sit below the clean-trace measurements:
// they also absorb effects the line traces do not exercise
// (read/write turnaround, refresh, partial-burst waste).
func AblationDRAMEfficiency(lines int, seed int64) (*report.Table, error) {
	if lines < 1000 {
		lines = 1000
	}
	cfg := hw.Reference()
	t := &report.Table{
		Title: "Ablation: DRAM efficiency — event-level simulator vs analytic constant",
		Header: []string{"trace", "simulated efficiency", "row-hit rate",
			"analytic constant (pattern)"},
	}
	seq := make([]uint64, lines)
	for i := range seq {
		seq[i] = uint64(i) * hw.L2LineBytes
	}
	rng := rand.New(rand.NewSource(seed))
	rnd := make([]uint64, lines)
	for i := range rnd {
		rnd[i] = uint64(rng.Int63n(1<<24)) * hw.L2LineBytes
	}
	camp := make([]uint64, lines)
	for i := range camp {
		camp[i] = uint64(i*memory.DRAMChannels) * hw.L2LineBytes
	}
	cases := []struct {
		name    string
		trace   []uint64
		pattern kernel.AccessPattern
	}{
		{"sequential", seq, kernel.Streaming},
		{"random", rnd, kernel.Gather},
		{"channel-camping stride", camp, kernel.Strided},
	}
	for _, c := range cases {
		eff, rowHit, err := memory.MeasureEfficiency(cfg, c.trace)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, eff, rowHit,
			fmt.Sprintf("%.2f (%s)", memory.PatternEfficiency(c.pattern), c.pattern))
	}
	return t, nil
}

// WhatIfScaledL2 reruns the CU sweep for every CU-intolerant kernel on
// hypothetical hardware whose shared L2 grows in proportion to the
// enabled CU count (as it does across real product tiers, but not when
// CUs are fused off on one part). If the taxonomy's causal story is
// right — the decline comes from a fixed L2 shared by a growing
// resident set — scaling the L2 must cure the decline.
func (s *Study) WhatIfScaledL2() (*report.Table, error) {
	t := &report.Table{
		Title: "What-if: CU-intolerant kernels on hardware whose L2 scales with CUs",
		Header: []string{"kernel", "fixed-L2 shape", "peak CUs",
			"scaled-L2 shape", "gain at 44 CUs (fixed -> scaled)"},
	}
	cured, totalCI := 0, 0
	for _, c := range s.Classifications {
		if c.Category != core.CUIntolerant {
			continue
		}
		totalCI++
		k := s.kernels[c.Kernel]
		curve := make([]float64, 0, len(s.Space.CUCounts))
		var settings []float64
		for _, cu := range s.Space.CUCounts {
			cfg := hw.Config{
				CUs:          cu,
				CoreClockMHz: s.Space.CoreClocksMHz[len(s.Space.CoreClocksMHz)-1],
				MemClockMHz:  s.Space.MemClocksMHz[len(s.Space.MemClocksMHz)-1],
				L2Override:   hw.L2Bytes * cu / hw.MaxCUs,
			}
			r, err := gcn.Simulate(k, cfg)
			if err != nil {
				return nil, err
			}
			curve = append(curve, r.Throughput)
			settings = append(settings, float64(cu))
		}
		resp := core.NewAxisResponse(core.AxisCU, settings, curve)
		shape := core.DefaultThresholds().ClassifyShape(resp)
		if shape != core.PeakDecline {
			cured++
		}
		t.AddRow(c.Kernel, c.CUShape.String(),
			c.CU.Settings[c.CU.PeakIndex], shape.String(),
			fmt.Sprintf("%.2fx -> %.2fx", c.CU.Gain, resp.Gain))
	}
	t.AddRow("cured", fmt.Sprintf("%d/%d", cured, totalCI), "", "", "")
	return t, nil
}

// TableO1 sweeps register pressure for a latency-exposed kernel and
// reports occupancy vs performance — the classic GPU tuning analysis,
// here as a model validation: more resident waves must buy performance
// exactly while latency is the binding resource, and stop paying once
// it is not.
func TableO1() (*report.Table, error) {
	t := &report.Table{
		Title: "Table O-1: occupancy vs performance (register-pressure sweep)",
		Header: []string{"VGPRs/work-item", "waves/CU", "throughput (items/ns)",
			"bound"},
	}
	cfg := hw.Reference()
	base := kernel.New("occ", "occ", "latency").
		Geometry(2048, 256).
		Compute(200, 50).
		Access(kernel.Streaming, 50, 0, 1). // one line per access
		Coalescing(1).
		Locality(16<<20, 0, 0).
		MLP(1). // no intra-wave overlap: occupancy is the only hiding
		MustBuild()
	prevOcc := -1
	var prevTput float64
	for _, vgprs := range []int{32, 48, 64, 84, 128, 168, 255} {
		k := *base
		k.VGPRsPerWI = vgprs
		r, err := gcn.Simulate(&k, cfg)
		if err != nil {
			return nil, err
		}
		occ := k.OccupancyWavesPerCU()
		t.AddRow(vgprs, occ, r.Throughput, r.Bound.String())
		if occ == prevOcc && r.Throughput != prevTput {
			return nil, fmt.Errorf("experiments: same occupancy, different throughput at %d VGPRs", vgprs)
		}
		prevOcc, prevTput = occ, r.Throughput
	}
	return t, nil
}

// AblationScheduler compares wavefront scheduling policies in the
// pipeline engine across representative programs: fair round-robin vs
// greedy-then-oldest. In this model (no cache locality between waves)
// the policies should land close together — the table documents that
// the taxonomy's conclusions do not hinge on the arbitration choice.
func AblationScheduler() (*report.Table, error) {
	t := &report.Table{
		Title:  "Ablation: pipeline wavefront scheduling policy (cycles per resident set)",
		Header: []string{"program", "round-robin", "gto", "gto/rr"},
	}
	cases := []struct {
		name string
		k    *kernel.Kernel
	}{
		{"compute-heavy", kernel.New("s", "p", "c").Geometry(256, 256).
			Compute(8000, 400).Access(kernel.Streaming, 16, 4, 4).MustBuild()},
		{"stream-heavy", kernel.New("s", "p", "m").Geometry(256, 256).
			Compute(500, 100).Access(kernel.Streaming, 192, 48, 4).
			Locality(256*1024, 0, 0).MustBuild()},
		{"latency-mix", kernel.New("s", "p", "l").Geometry(256, 256).
			Compute(2000, 100).Access(kernel.Gather, 64, 8, 4).
			Locality(4<<20, 0, 0).MLP(2).MustBuild()},
	}
	for _, c := range cases {
		prog, err := isa.Lower(c.k)
		if err != nil {
			return nil, err
		}
		wgs := c.k.WorkgroupsPerCU()
		rr, err := gcn.SimulateResidentSetPolicy(prog, wgs, c.k.WavesPerWG(), 300, gcn.RoundRobin)
		if err != nil {
			return nil, err
		}
		gto, err := gcn.SimulateResidentSetPolicy(prog, wgs, c.k.WavesPerWG(), 300, gcn.GreedyThenOldest)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, rr, gto, float64(gto)/float64(rr))
	}
	return t, nil
}

// AblationCacheModel validates the analytic hit-rate model against
// trace-driven set-associative simulation on representative kernels,
// reporting both estimates side by side.
func AblationCacheModel(seed int64) (*report.Table, error) {
	t := &report.Table{
		Title: "Ablation: analytic vs trace-driven cache model",
		Header: []string{"kernel", "WGs/CU", "CUs",
			"analytic L1", "trace L1", "analytic L2", "trace L2"},
	}
	cases := []struct {
		name string
		k    *kernel.Kernel
		wgs  int
		cus  int
	}{
		{
			"reused-fits",
			kernel.New("a", "a", "fits").Access(kernel.Streaming, 256, 64, 4).
				Locality(8*1024, 0, 4).MustBuild(),
			1, 4,
		},
		{
			"thrash-gather",
			kernel.New("a", "a", "thrash").Access(kernel.Gather, 256, 64, 4).
				Locality(4<<20, 0, 1).MustBuild(),
			2, 8,
		},
		{
			"l2-shared",
			kernel.New("a", "a", "shared").Access(kernel.Streaming, 512, 0, 4).
				Locality(64*1024, 0.8, 1).MustBuild(),
			2, 8,
		},
	}
	for _, c := range cases {
		a := memory.EstimateHitRates(c.k, c.wgs, c.cus)
		tr, err := trace.Replay(c.k, c.wgs, c.cus, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, c.wgs, c.cus, a.L1, tr.L1, a.L2, tr.L2)
	}
	return t, nil
}
