package dist

import (
	"os"
	"strings"
	"testing"
	"time"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/sweep"
)

// testClock is the manual clock the lease-expiry tests advance.
type testClock struct {
	t time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1000, 0)} }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testSpace(t *testing.T) hw.Space {
	t.Helper()
	s, err := hw.NewSpace([]int{4, 44}, []float64{200, 1000}, []float64{150, 1250})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testJob(t *testing.T, name string, n int) Job {
	t.Helper()
	var ks []*kernel.Kernel
	for i := 0; i < n; i++ {
		ks = append(ks, kernel.New("s", "p", string(rune('a'+i))).Geometry(64+64*i, 256).MustBuild())
	}
	return Job{Name: name, Kernels: ks, Space: testSpace(t), Seed: 42, NoiseStdDev: 0.05,
		TTL: time.Second}
}

func newTestCoordinator(t *testing.T, dir string, clk *testClock) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(dir, CoordinatorOptions{now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// acq builds a handshake-passing acquire for worker.
func acq(worker string) acquireRequest {
	return acquireRequest{Worker: worker, Proto: ProtoVersion, Fingerprint: EngineFingerprint()}
}

// okComplete builds a valid OK complete for the granted lease by
// actually sweeping the leased row — the same computation a worker
// performs, so the planes pass validation, carry a truthful
// attestation, and are deterministic.
func okComplete(t *testing.T, l *Lease, worker string) completeRequest {
	t.Helper()
	k, err := l.DecodeKernel()
	if err != nil {
		t.Fatal(err)
	}
	space, err := l.Space.Space()
	if err != nil {
		t.Fatal(err)
	}
	m, err := sweep.Run([]*kernel.Kernel{k}, space,
		sweep.Options{Workers: 1, NoiseStdDev: l.NoiseStdDev, Seed: l.Seed})
	if err != nil {
		t.Fatal(err)
	}
	n := space.Size()
	bounds := make([]int, n)
	for c := 0; c < n; c++ {
		bounds[c] = int(m.Bound[0][c])
	}
	digest, err := sweep.RowPlanesDigest(k.Name, m.Throughput[0], m.TimeNS[0], bounds)
	if err != nil {
		t.Fatal(err)
	}
	return completeRequest{Job: l.Job, Row: l.Row, Epoch: l.Epoch, Term: l.Term, Worker: worker, OK: true,
		Tput: m.Throughput[0], TimeNS: m.TimeNS[0], Bound: bounds, Digest: digest}
}

func TestLeaseGrantCompleteDuplicate(t *testing.T) {
	clk := newTestClock()
	c := newTestCoordinator(t, t.TempDir(), clk)
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 2)); err != nil {
		t.Fatal(err)
	}

	l, err := c.acquire(acq("w1"))
	if err != nil || l == nil {
		t.Fatalf("acquire: %v %v", l, err)
	}
	if l.Epoch != 1 {
		t.Fatalf("first grant should be epoch 1, got %d", l.Epoch)
	}
	if l.Seed != 42+int64(l.Row) {
		t.Fatalf("lease seed %d not offset by row %d", l.Seed, l.Row)
	}

	req := okComplete(t, l, "w1")
	if resp, err := c.complete(req); err != nil || resp.Duplicate {
		t.Fatalf("first complete: %+v %v", resp, err)
	}
	// The retried complete (dropped-ack path) must be an idempotent
	// duplicate, not a double-merge.
	if resp, err := c.complete(req); err != nil || !resp.Duplicate {
		t.Fatalf("retried complete should ack as duplicate: %+v %v", resp, err)
	}

	st, ok := c.Status("j")
	if !ok || st.Done != 1 || st.Complete {
		t.Fatalf("status after one row: %+v", st)
	}
}

// TestExpiryRacesLateComplete is the fencing edge case: the original
// holder finishes after its lease expired and was stolen — the stale
// epoch must be rejected, and the thief's complete must land.
func TestExpiryRacesLateComplete(t *testing.T) {
	clk := newTestClock()
	c := newTestCoordinator(t, t.TempDir(), clk)
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}

	orig, err := c.acquire(acq("slow"))
	if err != nil || orig == nil {
		t.Fatalf("acquire: %v", err)
	}
	// Not expired yet: nothing to steal.
	if l, _ := c.acquire(acq("eager")); l != nil {
		t.Fatal("unexpired lease must not be re-granted")
	}
	clk.advance(2 * time.Second)
	thief, err := c.acquire(acq("thief"))
	if err != nil || thief == nil {
		t.Fatalf("steal after expiry: %v", err)
	}
	if thief.Epoch != orig.Epoch+1 {
		t.Fatalf("steal should bump epoch: %d -> %d", orig.Epoch, thief.Epoch)
	}

	// The original limps in late: fenced.
	if _, err := c.complete(okComplete(t, orig, "slow")); err != errStale {
		t.Fatalf("stale-epoch complete should be fenced, got %v", err)
	}
	// The thief's complete lands.
	if resp, err := c.complete(okComplete(t, thief, "thief")); err != nil || resp.Duplicate {
		t.Fatalf("thief complete: %+v %v", resp, err)
	}
	// Steal-then-original-finishes, other order: original retries
	// after the thief completed — idempotent duplicate, not a fence,
	// because done-ness wins.
	if resp, err := c.complete(okComplete(t, orig, "slow")); err != nil || !resp.Duplicate {
		t.Fatalf("post-done stale complete should be a duplicate ack: %+v %v", resp, err)
	}

	recs, err := ReadLedger(c.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditLedger(recs)
	if err != nil {
		t.Fatalf("ledger audit: %v", err)
	}
	if audit.Grants["j/0"] != 2 {
		t.Fatalf("row should have exactly 2 grants, got %d", audit.Grants["j/0"])
	}
}

// TestExpiredButUnstolenCompleteAccepted: expiry alone does not fence
// — only a superseding epoch does. A slow worker whose lease ran out
// but was never re-granted still owns the newest epoch.
func TestExpiredButUnstolenCompleteAccepted(t *testing.T) {
	clk := newTestClock()
	c := newTestCoordinator(t, t.TempDir(), clk)
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	l, _ := c.acquire(acq("slow"))
	clk.advance(time.Minute)
	if resp, err := c.complete(okComplete(t, l, "slow")); err != nil || resp.Duplicate {
		t.Fatalf("expired-but-unstolen complete should be accepted: %+v %v", resp, err)
	}
}

// TestRenewalAfterCoordinatorRestart: a coordinator crash must not
// strand live workers — recovered leases keep their epoch, so the
// holder's renewals and complete still validate.
func TestRenewalAfterCoordinatorRestart(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	c := newTestCoordinator(t, dir, clk)
	job := testJob(t, "j", 2)
	if err := c.AddJob(job); err != nil {
		t.Fatal(err)
	}
	l, err := c.acquire(acq("w1"))
	if err != nil || l == nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the same dir; the worker never noticed.
	clk.advance(100 * time.Millisecond)
	c2 := newTestCoordinator(t, dir, clk)
	defer c2.Close()
	if err := c2.AddJob(job); err != nil {
		t.Fatal(err)
	}
	resp, err := c2.renew(renewRequest{Job: l.Job, Row: l.Row, Epoch: l.Epoch, Term: l.Term, Worker: "w1"})
	if err != nil {
		t.Fatalf("renewal with pre-crash epoch should succeed after restart: %v", err)
	}
	if resp.TTLMillis <= 0 {
		t.Fatalf("renewal should return a fresh TTL: %+v", resp)
	}
	// A wrong epoch is still fenced after restart.
	if _, err := c2.renew(renewRequest{Job: l.Job, Row: l.Row, Epoch: l.Epoch + 7, Term: l.Term, Worker: "x"}); err != errStale {
		t.Fatalf("bogus epoch should be fenced, got %v", err)
	}
	if _, err := c2.complete(okComplete(t, l, "w1")); err != nil {
		t.Fatalf("complete with pre-crash epoch should land: %v", err)
	}
}

// TestRestartAfterCompleteNeverRegrants: the double-grant drill — a
// completed row must stay done across a coordinator crash.
func TestRestartAfterCompleteNeverRegrants(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	c := newTestCoordinator(t, dir, clk)
	job := testJob(t, "j", 2)
	if err := c.AddJob(job); err != nil {
		t.Fatal(err)
	}
	l1, _ := c.acquire(acq("w1"))
	if _, err := c.complete(okComplete(t, l1, "w1")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	clk.advance(time.Hour) // every lease long expired
	c2 := newTestCoordinator(t, dir, clk)
	defer c2.Close()
	if err := c2.AddJob(job); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for {
		l, err := c2.acquire(acq("w2"))
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			break
		}
		if l.Row == l1.Row {
			t.Fatalf("completed row %d was re-granted after restart", l1.Row)
		}
		if seen[l.Row] {
			break
		}
		seen[l.Row] = true
	}
	st, _ := c2.Status("j")
	if st.Done != 1 {
		t.Fatalf("done-ness lost across restart: %+v", st)
	}
}

// TestNotOKCompleteRequeues: a failed row releases immediately for
// re-lease with a bumped epoch.
func TestNotOKCompleteRequeues(t *testing.T) {
	clk := newTestClock()
	c := newTestCoordinator(t, t.TempDir(), clk)
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	l, _ := c.acquire(acq("w1"))
	resp, err := c.complete(completeRequest{Job: l.Job, Row: l.Row, Epoch: l.Epoch, Term: l.Term, Worker: "w1"})
	if err != nil || !resp.Requeued {
		t.Fatalf("not-OK complete should requeue: %+v %v", resp, err)
	}
	l2, err := c.acquire(acq("w2"))
	if err != nil || l2 == nil {
		t.Fatal("requeued row should be immediately re-leasable")
	}
	if l2.Epoch != l.Epoch+1 {
		t.Fatalf("requeued grant should bump epoch: %d -> %d", l.Epoch, l2.Epoch)
	}
}

// TestCompleteValidation: garbage planes never reach the matrix.
func TestCompleteValidation(t *testing.T) {
	clk := newTestClock()
	c := newTestCoordinator(t, t.TempDir(), clk)
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	l, _ := c.acquire(acq("w1"))
	req := okComplete(t, l, "w1")
	req.Tput = req.Tput[:len(req.Tput)-1]
	if _, err := c.complete(req); err == nil || !strings.Contains(err.Error(), "plane length") {
		t.Fatalf("short planes should be rejected, got %v", err)
	}
	req = okComplete(t, l, "w1")
	req.Tput[0] = -1
	if _, err := c.complete(req); err == nil || !strings.Contains(err.Error(), "throughput") {
		t.Fatalf("negative throughput should be rejected, got %v", err)
	}
	// And the row is still leasable/completable afterwards.
	if _, err := c.complete(okComplete(t, l, "w1")); err != nil {
		t.Fatalf("valid complete after rejected ones: %v", err)
	}
}

// TestLedgerTornTailSalvage: a crash mid-append costs at most the
// unacked record.
func TestLedgerTornTailSalvage(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	c := newTestCoordinator(t, dir, clk)
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	l, _ := c.acquire(acq("w1"))
	c.Close()

	// Tear the tail.
	f, err := os.OpenFile(c.LedgerPath(), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("deadbeef 99 tor")
	f.Close()

	c2 := newTestCoordinator(t, dir, clk)
	defer c2.Close()
	if err := c2.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	// The acked grant survived the torn tail.
	if _, err := c2.renew(renewRequest{Job: l.Job, Row: l.Row, Epoch: l.Epoch, Term: l.Term, Worker: "w1"}); err != nil {
		t.Fatalf("grant lost to torn tail: %v", err)
	}
}
