package dist

import (
	"bytes"
	"testing"
)

// FuzzLedgerScan hammers the lease-ledger recovery scanner with
// arbitrary bytes: it must never panic, never claim a clean prefix
// outside the input, rescan its own clean prefix as a fixpoint, and
// roundtrip every frame it accepts — the invariants replication
// leans on when a standby appends the primary's frames verbatim and
// a promoted replica replays them.
func FuzzLedgerScan(f *testing.F) {
	ledgerImage := func(recs ...LedgerRecord) []byte {
		b := []byte(ledgerMagic)
		for _, r := range recs {
			framed, err := frameRecord(r)
			if err != nil {
				f.Fatal(err)
			}
			b = append(b, framed...)
		}
		return b
	}
	full := ledgerImage(
		LedgerRecord{Kind: "term", Term: 1, Worker: "primary-1", GrantedNS: 1},
		LedgerRecord{Kind: "grant", Job: "j", Row: 0, Epoch: 1, Term: 1,
			Worker: "w1", GrantedNS: 2, ExpiryNS: 10},
		LedgerRecord{Kind: "complete", Job: "j", Row: 0, Epoch: 1, Term: 1,
			Worker: "w1", Digest: "00aa11bb22cc33dd"},
		LedgerRecord{Kind: "term", Term: 2, Worker: "standby-1", GrantedNS: 20},
	)
	f.Add(full)
	f.Add(full[:len(full)-9]) // torn tail mid-frame
	badCRC := append([]byte(nil), full...)
	badCRC[len(ledgerMagic)] ^= 0x40 // corrupt the first frame's checksum
	f.Add(badCRC)
	f.Add([]byte(ledgerMagic))           // header only
	f.Add([]byte(ledgerMagic[:7]))       // torn magic
	f.Add([]byte("deadbeef 2 {}\n"))     // frame without magic
	f.Add([]byte("00000000 0 \n"))       // zero-length payload
	f.Add([]byte("ffffffff 999999999 x")) // absurd length field
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The single-frame parser is also the replication receive path
		// (the standby CRC-checks each streamed frame at offset 0), so
		// it must be total on arbitrary bytes.
		if rec, next, ok := parseLedgerRecord(data, 0); ok {
			if next <= 0 || next > int64(len(data)) {
				t.Fatalf("accepted frame claims end %d outside (0,%d]", next, len(data))
			}
			framed, err := frameRecord(rec)
			if err != nil {
				t.Fatalf("accepted record does not reframe: %v", err)
			}
			rec2, _, ok2 := parseLedgerRecord(framed, 0)
			if !ok2 || rec2 != rec {
				t.Fatalf("frame roundtrip mangled the record: %+v vs %+v", rec, rec2)
			}
		}
		// The scanner proper runs behind the magic check, exactly as
		// openLedger and ReadLedger gate it.
		if !bytes.HasPrefix(data, []byte(ledgerMagic)) {
			return
		}
		recs, good := scanLedger(data)
		if good < int64(len(ledgerMagic)) || good > int64(len(data)) {
			t.Fatalf("clean prefix %d outside [%d,%d]", good, len(ledgerMagic), len(data))
		}
		// Torn-tail salvage must be a fixpoint: rescanning the clean
		// prefix recovers exactly the same records.
		recs2, good2 := scanLedger(data[:good])
		if good2 != good || len(recs2) != len(recs) {
			t.Fatalf("rescan of clean prefix diverged: %d/%d records, %d/%d bytes",
				len(recs2), len(recs), good2, good)
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("rescan record %d diverged: %+v vs %+v", i, recs[i], recs2[i])
			}
		}
		// Whatever was salvaged must be auditable without panicking —
		// a verdict either way is fine, a crash is not.
		AuditLedger(recs)
	})
}
