package dist

// The multi-process chaos soak: the PR's headline deliverable.
//
// Workers run as real child processes (this test binary re-exec'd
// with GPUSCALE_DIST_WORKER=1) and die by SIGKILL; the coordinator is
// crashed by abruptly closing its listener, ledger and journals and
// resuming a fresh Coordinator from the same directory on the same
// address. Worker HTTP clients run under injected network faults
// (dropped responses, duplicated deliveries, seeded delays). The soak
// asserts the protocol's whole contract afterwards:
//
//   - every row completed exactly once (ledger audit + one journal
//     record per kernel),
//   - the coordinator's matrix and journal are byte-identical to a
//     single-node run of the same job,
//   - the merged worker journals reproduce the same bytes,
//   - no lease was ever held by two live epochs (grant[n+1] starts at
//     or after grant[n]'s recorded expiry).
//
// Runs short by default; GPUSCALE_SOAK_MS extends the chaos window
// and GPUSCALE_FAULT_SEED replays a failure.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/kernel"
	"gpuscale/internal/sweep"
)

func TestMain(m *testing.M) {
	if os.Getenv("GPUSCALE_DIST_WORKER") == "1" {
		os.Exit(workerMain())
	}
	os.Exit(m.Run())
}

// workerMain is the child-process entry: a fleet worker with a
// fault-injected transport, running until SIGKILLed.
func workerMain() int {
	seed, _ := strconv.ParseInt(os.Getenv("GPUSCALE_DIST_FAULT_SEED"), 10, 64)
	in := fault.Injector{
		DropResponseRate: 0.10, DuplicateRate: 0.10, DelayRate: 0.20,
		Delay: 2 * time.Millisecond, Seed: seed,
	}
	// The failover soak additionally severs links: seeded partition
	// windows (symmetric and one-way) on the worker's transport.
	if rate, err := strconv.ParseFloat(os.Getenv("GPUSCALE_DIST_PARTITION_RATE"), 64); err == nil && rate > 0 {
		in.PartitionRate = rate
		in.PartitionFor = 150 * time.Millisecond
	}
	// GPUSCALE_DIST_PEERS lists every coordinator (primary + standbys)
	// comma separated; the worker rotates through them on error.
	var peers []string
	for _, p := range strings.Split(os.Getenv("GPUSCALE_DIST_PEERS"), ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	w, err := NewWorker(WorkerOptions{
		Name:         os.Getenv("GPUSCALE_DIST_NAME"),
		Coordinator:  os.Getenv("GPUSCALE_DIST_URL"),
		Peers:        peers,
		Dir:          os.Getenv("GPUSCALE_DIST_DIR"),
		Client:       &http.Client{Transport: in.WrapTransport(nil), Timeout: 10 * time.Second},
		SweepWorkers: 2, Retries: 2, IdleSleep: 10 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		return 1
	}
	defer w.Close()
	w.Run(context.Background())
	return 0
}

// soakJob is bigger than the unit-test jobs so crashes land mid-sweep.
func soakJob(t *testing.T) Job {
	t.Helper()
	var ks []*kernel.Kernel
	for i := 0; i < 8; i++ {
		ks = append(ks, kernel.New("soak", "p", fmt.Sprintf("k%02d", i)).
			Geometry(64+64*i, 256).Compute(10000+3000*i, 100).MustBuild())
	}
	return Job{Name: "soak", Kernels: ks, Space: testSpace(t), Seed: 7, NoiseStdDev: 0.05,
		TTL: 500 * time.Millisecond}
}

// coordProc is the crashable coordinator: listener + server + state,
// all torn down and rebuilt on the same address from the same dir.
type coordProc struct {
	dir   string
	addr  string
	job   Job
	coord *Coordinator
	srv   *http.Server
	ln    net.Listener
}

func startCoord(t *testing.T, dir, addr string, job Job) *coordProc {
	t.Helper()
	return startCoordWith(t, dir, addr, job, CoordinatorOptions{})
}

// startCoordWith is startCoord with explicit coordinator options —
// the byzantine soak wires the integrity plane (verification
// fraction, federation hooks, traces) through here.
func startCoordWith(t *testing.T, dir, addr string, job Job, opts CoordinatorOptions) *coordProc {
	t.Helper()
	c, err := NewCoordinator(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddJob(job); err != nil {
		c.Close()
		t.Fatal(err)
	}
	var ln net.Listener
	// The previous incarnation's socket may take a moment to release.
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 200 {
			c.Close()
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	return &coordProc{dir: dir, addr: ln.Addr().String(), job: job, coord: c, srv: srv, ln: ln}
}

// crash tears the incarnation down without ceremony.
func (p *coordProc) crash() {
	p.ln.Close()
	p.srv.Close()
	p.coord.Close()
}

// workerProc is one child worker.
type workerProc struct {
	cmd  *exec.Cmd
	dir  string
	name string
}

func spawnWorker(t *testing.T, url, dir, name string, faultSeed int64, extraEnv ...string) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"GPUSCALE_DIST_WORKER=1",
		"GPUSCALE_DIST_URL="+url,
		"GPUSCALE_DIST_DIR="+dir,
		"GPUSCALE_DIST_NAME="+name,
		"GPUSCALE_DIST_FAULT_SEED="+strconv.FormatInt(faultSeed, 10),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning worker %s: %v", name, err)
	}
	return &workerProc{cmd: cmd, dir: dir, name: name}
}

func (w *workerProc) kill() {
	w.cmd.Process.Signal(syscall.SIGKILL)
	w.cmd.Wait()
}

func TestChaosSoakDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process soak skipped in -short mode")
	}
	seed := time.Now().UnixNano()
	if s, err := strconv.ParseInt(os.Getenv("GPUSCALE_FAULT_SEED"), 10, 64); err == nil {
		seed = s
	}
	// Always printed so a CI failure is reproducible with
	// GPUSCALE_FAULT_SEED.
	t.Logf("chaos seed: %d (replay with GPUSCALE_FAULT_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	chaosWindow := 2 * time.Second
	if ms, err := strconv.Atoi(os.Getenv("GPUSCALE_SOAK_MS")); err == nil && ms > 0 {
		chaosWindow = time.Duration(ms) * time.Millisecond
	}

	job := soakJob(t)
	want := singleNodeCanonical(t, job)
	root := t.TempDir()
	coordDir := root + "/coord"

	p := startCoord(t, coordDir, "127.0.0.1:0", job)
	addr := p.addr
	url := "http://" + addr

	const nWorkers = 3
	workers := make([]*workerProc, nWorkers)
	workerDirs := make([]string, nWorkers)
	respawns := 0
	for i := range workers {
		workerDirs[i] = fmt.Sprintf("%s/w%d", root, i)
		workers[i] = spawnWorker(t, url, workerDirs[i], fmt.Sprintf("w%d", i), seed+int64(i))
	}
	defer func() {
		for _, w := range workers {
			w.kill()
		}
		p.crash()
	}()

	complete := func() bool {
		st, ok := p.coord.Status(job.Name)
		return ok && st.Complete
	}

	// Chaos window: kill workers and the coordinator at random while
	// the sweep runs.
	coordCrashes, workerKills := 0, 0
	chaosEnd := time.Now().Add(chaosWindow)
	for time.Now().Before(chaosEnd) && !complete() {
		time.Sleep(time.Duration(50+rng.Intn(120)) * time.Millisecond)
		if rng.Intn(4) == 0 {
			// Coordinator crash: everything not fsynced is gone.
			p.crash()
			coordCrashes++
			p = startCoord(t, coordDir, addr, job)
		} else {
			i := rng.Intn(nWorkers)
			workers[i].kill()
			workerKills++
			respawns++
			workers[i] = spawnWorker(t, url, workerDirs[i], fmt.Sprintf("w%d", i),
				seed+int64(1000*respawns+i))
		}
	}
	t.Logf("chaos: %d coordinator crashes, %d worker kills", coordCrashes, workerKills)

	// Quiescence: no more crashes; the fleet must converge.
	deadline := time.Now().Add(90 * time.Second)
	for !complete() {
		if time.Now().After(deadline) {
			st, _ := p.coord.Status(job.Name)
			t.Fatalf("fleet never converged after chaos: %+v (seed %d)", st, seed)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, w := range workers {
		w.kill()
	}

	// 1. Byte-identity: coordinator matrix == single-node run.
	m, ok := p.coord.Matrix(job.Name)
	if !ok {
		t.Fatalf("complete job must expose its matrix (seed %d)", seed)
	}
	got, err := sweep.CanonicalJournalBytes(m, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("coordinator matrix differs from single-node run (seed %d)", seed)
	}

	// 2. Exactly-once at the byte level: the coordinator journal holds
	// magic + space + exactly one record per kernel row, and re-reads
	// to the same canonical bytes.
	raw, err := os.ReadFile(p.coord.JournalPath(job.Name))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(raw, []byte{'\n'}); lines != 2+len(job.Kernels) {
		t.Fatalf("coordinator journal has %d lines, want %d — a row completed twice (seed %d)",
			lines, 2+len(job.Kernels), seed)
	}
	jm, err := sweep.ReadJournal(p.coord.JournalPath(job.Name), job.Space)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := sweep.CanonicalJournalBytes(jm, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, jb) {
		t.Fatalf("coordinator journal differs from single-node run (seed %d)", seed)
	}

	// 3. Merge: worker journals — after crash-repair opens, since a
	// SIGKILL can tear a tail — reproduce the same bytes.
	var repaired []string
	for i, dir := range workerDirs {
		path := dir + "/" + sanitize(job.Name) + ".journal"
		if _, err := os.Stat(path); err != nil {
			continue // a worker that never completed a row has no journal
		}
		j, err := sweep.OpenJournal(path, job.Space)
		if err != nil {
			t.Fatalf("repairing worker %d journal: %v (seed %d)", i, err, seed)
		}
		j.Close()
		repaired = append(repaired, path)
	}
	merged, err := sweep.MergeJournals(job.Space, repaired...)
	if err != nil {
		t.Fatalf("merging worker journals: %v (seed %d)", err, seed)
	}
	mb, err := sweep.CanonicalJournalBytes(merged, m.Kernels)
	if err != nil {
		t.Fatalf("merged journals incomplete: %v (seed %d)", err, seed)
	}
	if !bytes.Equal(want, mb) {
		t.Fatalf("merged worker journals differ from single-node run (seed %d)", seed)
	}

	// 4. Lease-protocol audit: epochs monotonic, no two live epochs,
	// at most one complete per row — and exactly one actually landed.
	recs, err := ReadLedger(p.coord.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AuditLedger(recs); err != nil {
		t.Fatalf("ledger audit: %v (seed %d)", err, seed)
	}
	completes := 0
	for _, r := range recs {
		if r.Kind == "complete" {
			completes++
		}
	}
	if completes != len(job.Kernels) {
		t.Fatalf("want %d ledger completes, got %d (seed %d)", len(job.Kernels), completes, seed)
	}
}
