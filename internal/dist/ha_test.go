package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// newHAPair builds a primary coordinator behind a real HTTP server and
// a standby pointed at it. Replication is driven explicitly from the
// tests (syncStandby / drainTail) so every stage of the failover is a
// deterministic checkpoint rather than a race against timers.
func newHAPair(t *testing.T, clk *testClock, copt CoordinatorOptions) (*Coordinator, *httptest.Server, *Standby) {
	t.Helper()
	copt.now = clk.now
	if copt.ID == "" {
		copt.ID = "primary-1"
	}
	copt.ReplTimeout = 50 * time.Millisecond
	c, err := NewCoordinator(t.TempDir(), copt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	s, err := NewStandby(t.TempDir(), StandbyOptions{
		ID:      "standby-1",
		Primary: srv.URL,
		Coordinator: CoordinatorOptions{
			ID: "standby-1", now: clk.now,
			VerifyFraction:  copt.VerifyFraction,
			QuarantineAfter: copt.QuarantineAfter,
		},
		now: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return c, srv, s
}

func syncStandby(t *testing.T, s *Standby) {
	t.Helper()
	if err := s.syncOnce(context.Background()); err != nil {
		t.Fatalf("standby snapshot sync: %v", err)
	}
}

// drainTail tails until the standby's cursor reaches everything the
// primary has published.
func drainTail(t *testing.T, s *Standby, c *Coordinator) {
	t.Helper()
	for i := 0; i < 100; i++ {
		s.mu.Lock()
		cur, synced := s.cursor, s.synced
		s.mu.Unlock()
		if !synced {
			t.Fatal("standby fell out of sync while draining")
		}
		if cur >= c.repl.latest() {
			return
		}
		if err := s.tailOnce(context.Background()); err != nil {
			t.Fatalf("standby tail: %v", err)
		}
	}
	t.Fatal("replication never caught up with the primary")
}

// TestReplicaLedgerByteIdentical: frames replicated over the tail
// stream land verbatim, so the replica ledger file is byte-identical
// to the primary's — the property that lets a promoted standby replay
// with exactly the same recovery code a crash-restart uses.
func TestReplicaLedgerByteIdentical(t *testing.T) {
	clk := newTestClock()
	c, _, s := newHAPair(t, clk, CoordinatorOptions{})
	if err := c.AddJob(testJob(t, "j", 2)); err != nil {
		t.Fatal(err)
	}
	syncStandby(t, s)
	for i := 0; i < 2; i++ {
		l, err := c.acquire(acq("w1"))
		if err != nil || l == nil {
			t.Fatalf("acquire %d: %+v %v", i, l, err)
		}
		if l.Term != 1 {
			t.Fatalf("fresh coordinator should grant term 1, got %d", l.Term)
		}
		if _, err := c.complete(okComplete(t, l, "w1")); err != nil {
			t.Fatalf("complete %d: %v", i, err)
		}
	}
	drainTail(t, s, c)

	pb, err := os.ReadFile(c.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := os.ReadFile(filepath.Join(s.dir, "lease.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, sb) {
		t.Fatalf("replica ledger diverged: primary %d bytes, replica %d bytes", len(pb), len(sb))
	}
	recs, err := ReadLedger(filepath.Join(s.dir, "lease.ledger"))
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditLedger(recs)
	if err != nil {
		t.Fatalf("replica ledger audit: %v", err)
	}
	if len(audit.Terms) != 1 || audit.Terms[0].Term != 1 || audit.Completes != 2 {
		t.Fatalf("replica audit: terms %v completes %d", audit.Terms, audit.Completes)
	}
	if sj := s.jobs["j"]; sj == nil || len(sj.appended) != 2 {
		t.Fatalf("standby should hold both replicated rows, got %+v", s.jobs["j"])
	}
}

// TestPromotionMidGrantKeepsLeaseLive: a lease granted under term N
// completes on the term-N+1 promoted standby — the grant record's term
// rides the replica ledger, so the fence admits the old lease instead
// of stranding in-flight work.
func TestPromotionMidGrantKeepsLeaseLive(t *testing.T) {
	clk := newTestClock()
	c, srv, s := newHAPair(t, clk, CoordinatorOptions{})
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	syncStandby(t, s)
	l, err := c.acquire(acq("w1"))
	if err != nil || l == nil {
		t.Fatalf("acquire: %+v %v", l, err)
	}
	drainTail(t, s, c)
	srv.Close() // primary dies mid-grant

	c2, err := s.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer c2.Close()
	if c2.Term() != 2 {
		t.Fatalf("promoted coordinator should assert term 2, got %d", c2.Term())
	}
	resp, err := c2.complete(okComplete(t, l, "w1"))
	if err != nil || resp.Duplicate {
		t.Fatalf("old-term lease should complete on the new primary: %+v %v", resp, err)
	}
	st, ok := c2.Status("j")
	if !ok || !st.Complete {
		t.Fatalf("job should be complete after failover: %+v", st)
	}
	recs, err := ReadLedger(c2.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditLedger(recs)
	if err != nil {
		t.Fatalf("post-failover audit: %v", err)
	}
	if len(audit.Terms) != 2 || audit.Terms[0].Term != 1 || audit.Terms[1].Term != 2 {
		t.Fatalf("audit should show terms 1 then 2: %+v", audit.Terms)
	}
}

// TestPromotionAfterUnackedComplete: the complete landed and
// replicated but its ack was lost with the primary. The worker's retry
// against the promoted standby must come back as a duplicate, not a
// second merge — exactly-once across the failover.
func TestPromotionAfterUnackedComplete(t *testing.T) {
	clk := newTestClock()
	c, srv, s := newHAPair(t, clk, CoordinatorOptions{})
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	syncStandby(t, s)
	l, err := c.acquire(acq("w1"))
	if err != nil || l == nil {
		t.Fatalf("acquire: %+v %v", l, err)
	}
	req := okComplete(t, l, "w1")
	if resp, err := c.complete(req); err != nil || resp.Duplicate {
		t.Fatalf("primary complete: %+v %v", resp, err)
	}
	drainTail(t, s, c)
	srv.Close() // the 200 never reached the worker

	c2, err := s.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer c2.Close()
	resp, err := c2.complete(req)
	if err != nil || !resp.Duplicate {
		t.Fatalf("retried complete after failover should be a duplicate ack: %+v %v", resp, err)
	}
	st, _ := c2.Status("j")
	if !st.Complete || st.Done != 1 {
		t.Fatalf("row must be counted exactly once: %+v", st)
	}
}

// TestPromotionDuringVerifyRevote: a sampled row whose first vote was
// pending when the primary died finishes its revote on the promoted
// standby — the attest record replicated, so the new primary grants
// the verification pass and settles on digest agreement.
func TestPromotionDuringVerifyRevote(t *testing.T) {
	clk := newTestClock()
	c, srv, s := newHAPair(t, clk, CoordinatorOptions{VerifyFraction: 1})
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	syncStandby(t, s)
	l1, err := c.acquire(acq("w1"))
	if err != nil || l1 == nil {
		t.Fatalf("acquire: %+v %v", l1, err)
	}
	if resp, err := c.complete(okComplete(t, l1, "w1")); err != nil || !resp.PendingVerify {
		t.Fatalf("sampled complete should be held pending: %+v %v", resp, err)
	}
	drainTail(t, s, c)
	srv.Close() // primary dies mid-revote

	c2, err := s.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer c2.Close()
	// Promotion replays with the crash-restart rules: the recovered
	// grant is conservatively re-extended a fresh TTL from replay time,
	// so the row only reopens once that lease would have expired.
	clk.advance(1100 * time.Millisecond)
	// The voter is still blocked from verifying itself on the new
	// primary — the pending vote replicated with the ledger.
	if l, err := c2.acquire(acq("w1")); err != nil || l != nil {
		t.Fatalf("voter must not verify itself after failover: %+v %v", l, err)
	}
	l2, err := c2.acquire(acq("w2"))
	if err != nil || l2 == nil || l2.Row != l1.Row {
		t.Fatalf("independent worker should get the pending row: %+v %v", l2, err)
	}
	resp, err := c2.complete(okComplete(t, l2, "w2"))
	if err != nil || !resp.Verified {
		t.Fatalf("agreeing revote should settle verified on the new primary: %+v %v", resp, err)
	}
	st, _ := c2.Status("j")
	if !st.Complete {
		t.Fatalf("job should settle after the cross-failover revote: %+v", st)
	}
}

// TestStaleTermCompleteFenced: a row granted by the new term cannot be
// completed with the old term, in-process and over HTTP (409
// "stale-term").
func TestStaleTermCompleteFenced(t *testing.T) {
	clk := newTestClock()
	c, srv, s := newHAPair(t, clk, CoordinatorOptions{})
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	syncStandby(t, s)
	drainTail(t, s, c)
	srv.Close()
	c2, err := s.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer c2.Close()

	l, err := c2.acquire(acq("w1"))
	if err != nil || l == nil || l.Term != 2 {
		t.Fatalf("post-failover grant should carry term 2: %+v %v", l, err)
	}
	req := okComplete(t, l, "w1")
	req.Term = 1
	if _, err := c2.complete(req); !errors.Is(err, errStaleTerm) {
		t.Fatalf("old-term complete on a new-term grant should fence, got %v", err)
	}

	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	status, eb := postJSON(t, srv2.URL+"/v1/dist/complete", req)
	if status != http.StatusConflict || eb.Code != "stale-term" {
		t.Fatalf("HTTP stale-term fence should be 409/stale-term, got %d/%q", status, eb.Code)
	}
	// The honest retry with the granted term still lands.
	req.Term = l.Term
	if resp, err := c2.complete(req); err != nil || resp.Duplicate {
		t.Fatalf("correct-term complete should land: %+v %v", resp, err)
	}
}

// TestDeposedByPeerProbe: a primary that finds a peer asserting a
// higher term steps down — StartHA returns ErrDeposed, every protocol
// call refuses with it, the HTTP surface answers 409 "deposed", and
// Deposed() is closed for the process exit path.
func TestDeposedByPeerProbe(t *testing.T) {
	clk := newTestClock()
	c, srv, s := newHAPair(t, clk, CoordinatorOptions{})
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	syncStandby(t, s)
	drainTail(t, s, c)
	c2, err := s.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer c2.Close()
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()

	// The deposed primary limps back and probes its peer list.
	c.opt.Peers = []string{srv2.URL}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.StartHA(ctx); !errors.Is(err, ErrDeposed) {
		t.Fatalf("StartHA next to a live newer term should return ErrDeposed, got %v", err)
	}
	select {
	case <-c.Deposed():
	default:
		t.Fatal("Deposed() should be closed after stepping down")
	}
	if _, err := c.acquire(acq("w9")); !errors.Is(err, ErrDeposed) {
		t.Fatalf("deposed acquire should refuse: %v", err)
	}
	status, eb := postJSON(t, srv.URL+"/v1/dist/lease", acq("w9"))
	if status != http.StatusConflict || eb.Code != "deposed" {
		t.Fatalf("deposed HTTP lease should be 409/deposed, got %d/%q", status, eb.Code)
	}
	resp, err := http.Get(srv.URL + "/v1/ha/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("deposed snapshot should refuse with 409, got %d", resp.StatusCode)
	}
}

// TestDeposedByWorkerCarriedTerm: a worker that has seen a newer term
// deposes a stale primary on contact — the partition-tolerant fencing
// path that needs no peer connectivity at all.
func TestDeposedByWorkerCarriedTerm(t *testing.T) {
	clk := newTestClock()
	c := newTestCoordinator(t, t.TempDir(), clk)
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	req := acq("w1")
	req.Term = 7
	if _, err := c.acquire(req); !errors.Is(err, ErrDeposed) {
		t.Fatalf("worker-carried newer term should depose, got %v", err)
	}
	select {
	case <-c.Deposed():
	default:
		t.Fatal("Deposed() should be closed")
	}
}

// TestAuditLedgerTermRules: the audit proves term monotonicity and
// no-two-live-primaries, while pre-HA ledgers (no term plane) still
// pass.
func TestAuditLedgerTermRules(t *testing.T) {
	cases := []struct {
		name string
		recs []LedgerRecord
		want string
	}{
		{"term regression", []LedgerRecord{
			{Kind: "term", Term: 2, Worker: "a"},
			{Kind: "term", Term: 2, Worker: "b"},
		}, "term regressed"},
		{"two live primaries", []LedgerRecord{
			{Kind: "term", Term: 1, Worker: "a"},
			{Kind: "grant", Job: "j", Row: 0, Epoch: 1, Term: 1, Worker: "w"},
			{Kind: "term", Term: 2, Worker: "b"},
			{Kind: "complete", Job: "j", Row: 0, Epoch: 1, Term: 1, Worker: "w"},
		}, "two live primaries"},
		{"pre-HA ledger still passes", []LedgerRecord{
			{Kind: "grant", Job: "j", Row: 0, Epoch: 1, Worker: "w"},
			{Kind: "complete", Job: "j", Row: 0, Epoch: 1, Worker: "w"},
		}, ""},
		{"clean failover passes", []LedgerRecord{
			{Kind: "term", Term: 1, Worker: "a"},
			{Kind: "grant", Job: "j", Row: 0, Epoch: 1, Term: 1, Worker: "w"},
			{Kind: "term", Term: 2, Worker: "b"},
			{Kind: "complete", Job: "j", Row: 0, Epoch: 1, Term: 2, Worker: "w"},
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := AuditLedger(tc.recs)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("audit should pass: %v", err)
				}
				return
			}
			if err == nil || !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Fatalf("audit error should mention %q, got %v", tc.want, err)
			}
		})
	}
}

// TestJobSpecRoundtrip: the replicated job wire form reconstructs the
// job a promoted standby re-registers.
func TestJobSpecRoundtrip(t *testing.T) {
	job := testJob(t, "jr", 2)
	spec, err := specForJob(job, job.TTL)
	if err != nil {
		t.Fatal(err)
	}
	// The spec must survive JSON (it rides the snapshot and jobspec
	// files).
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.job()
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != job.Name || len(got.Kernels) != len(job.Kernels) ||
		got.Space.Size() != job.Space.Size() || got.Seed != job.Seed ||
		got.NoiseStdDev != job.NoiseStdDev || got.TTL != job.TTL {
		t.Fatalf("job spec roundtrip mangled the job: %+v vs %+v", got, job)
	}
	for i := range got.Kernels {
		if got.Kernels[i].Name != job.Kernels[i].Name {
			t.Fatalf("kernel %d name %q != %q", i, got.Kernels[i].Name, job.Kernels[i].Name)
		}
	}
}

// TestBackoffDelaySchedule pins the worker's capped exponential
// full-jitter schedule: window doubles per attempt up to the cap, the
// roll scales inside the window, and the floor is 1ms.
func TestBackoffDelaySchedule(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	// roll=1 walks the deterministic ceiling of each window.
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second, 2 * time.Second,
	}
	for attempt, w := range want {
		if got := backoffDelay(base, max, attempt, 1); got != w {
			t.Fatalf("attempt %d ceiling: got %v want %v", attempt, got, w)
		}
	}
	// Full jitter: the roll scales linearly inside the window.
	if got := backoffDelay(base, max, 3, 0.5); got != 200*time.Millisecond {
		t.Fatalf("half roll in the 400ms window should be 200ms, got %v", got)
	}
	// Floor: a zero roll still sleeps at least 1ms (never a hot spin).
	if got := backoffDelay(base, max, 0, 0); got != time.Millisecond {
		t.Fatalf("zero roll should floor at 1ms, got %v", got)
	}
	// Defaults guard nonsensical configs.
	if got := backoffDelay(0, 0, 0, 1); got != 50*time.Millisecond {
		t.Fatalf("zero base should default to 50ms, got %v", got)
	}
	if got := backoffDelay(time.Second, time.Millisecond, 5, 1); got != time.Second {
		t.Fatalf("max below base clamps to base, got %v", got)
	}
}

// TestStandbyRestartResyncs: a restarted standby re-bases on a fresh
// snapshot (the cursor is process-local) and keeps replicating.
func TestStandbyRestartResyncs(t *testing.T) {
	clk := newTestClock()
	c, srv, s := newHAPair(t, clk, CoordinatorOptions{})
	if err := c.AddJob(testJob(t, "j", 2)); err != nil {
		t.Fatal(err)
	}
	syncStandby(t, s)
	l, err := c.acquire(acq("w1"))
	if err != nil || l == nil {
		t.Fatalf("acquire: %+v %v", l, err)
	}
	if _, err := c.complete(okComplete(t, l, "w1")); err != nil {
		t.Fatal(err)
	}
	drainTail(t, s, c)
	dir := s.dir
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// More work lands while the standby is down.
	l2, err := c.acquire(acq("w1"))
	if err != nil || l2 == nil {
		t.Fatalf("acquire while standby down: %+v %v", l2, err)
	}
	if _, err := c.complete(okComplete(t, l2, "w1")); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStandby(dir, StandbyOptions{
		ID: "standby-1", Primary: srv.URL,
		Coordinator: CoordinatorOptions{ID: "standby-1", now: clk.now},
		now:         clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	syncStandby(t, s2)
	drainTail(t, s2, c)
	pb, _ := os.ReadFile(c.LedgerPath())
	sb, _ := os.ReadFile(filepath.Join(dir, "lease.ledger"))
	if !bytes.Equal(pb, sb) {
		t.Fatalf("restarted replica diverged: primary %d bytes, replica %d bytes", len(pb), len(sb))
	}
}

// postJSON posts body as JSON and decodes the typed error envelope.
func postJSON(t *testing.T, url string, body any) (int, errorBody) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	json.Unmarshal(data, &eb)
	return resp.StatusCode, eb
}
