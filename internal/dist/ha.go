package dist

// Coordinator high availability: a warm standby tails the primary's
// lease ledger over a typed HTTP replication stream and promotes
// itself when the primary goes silent.
//
// The design is pull-based and crash-only, like everything else in
// this repo:
//
//   - The primary publishes every durable event — ledger frames (the
//     exact CRC-framed bytes it fsynced), completed row planes, job
//     specs, serve-level admissions — into an in-memory replication
//     log with a monotonically increasing cursor.
//   - The standby long-polls GET /v1/ha/tail?cursor=N, applies each
//     message exactly once (fsync before advancing its cursor), and
//     the next tail request's cursor acknowledges everything before
//     it. A standby that falls off the log's retained window — or
//     starts empty — resyncs from GET /v1/ha/snapshot, a full
//     consistent copy taken under the coordinator lock.
//   - Synchronous append-before-ack: the lease and complete handlers
//     wait (bounded) for the attached standby's cursor to pass the
//     records they appended before answering the worker, so anything
//     a worker saw acked survives a primary loss. If the standby lags
//     past the timeout the primary degrades to async — availability
//     over durability, surfaced on the replication-lag instruments —
//     and the protocol's fencing absorbs whatever the failover then
//     loses (an unreplicated complete is simply re-executed).
//   - Terms fence the deposed. Promotion replays the replica ledger
//     with the same conservative-expiry rules a crash-restart uses,
//     then asserts term+1 in a ledger "term" record. Every lease
//     carries its grant term; a deposed primary's leases die with a
//     typed 409 ("stale-term"), the deposed primary itself learns of
//     its deposition from peer probes, worker traffic carrying a
//     newer term, or tail silence — and exits through ErrDeposed.
//
// Because the standby appends the primary's exact ledger frames and
// rebuilds journals through the same sweep.Journal append path, the
// promoted coordinator's durable state is byte-compatible with the
// primary's — the merged matrix stays byte-identical to a single-node
// run across a failover, which is the repo's north-star invariant.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
	"gpuscale/internal/sweep"
)

// ErrDeposed reports this coordinator lost its term: a peer asserted
// a newer one (a standby promoted while we were gone) or the attached
// standby went silent past the self-fence deadline. A deposed
// coordinator fences every protocol call with a typed 409 and its
// process should exit with the documented distinct code.
var ErrDeposed = errors.New("dist: coordinator deposed: a newer term is live")

// errNotPrimary marks a protocol call answered by a warm standby that
// has not promoted — the worker should try the next peer.
var errNotPrimary = errors.New("dist: not primary: warm standby has not promoted")

// JobSpec is the wire form of a dist Job — everything a standby needs
// to re-register the job at promotion (the OnRow hook, which belongs
// to the primary's serve layer, does not replicate).
type JobSpec struct {
	Name        string          `json:"name"`
	Kernels     json.RawMessage `json:"kernels"` // kernel.WriteAll wire form
	Space       SpaceSpec       `json:"space"`
	Seed        int64           `json:"seed"`
	NoiseStdDev float64         `json:"noise_stddev,omitempty"`
	Engine      string          `json:"engine"`
	TTLMillis   int64           `json:"ttl_ms"`
	Traceparent string          `json:"traceparent,omitempty"`
}

// specForJob captures a registered job for the replication stream.
func specForJob(job Job, ttl time.Duration) (JobSpec, error) {
	var buf bytes.Buffer
	if err := kernel.WriteAll(&buf, job.Kernels); err != nil {
		return JobSpec{}, fmt.Errorf("dist: encoding job spec: %w", err)
	}
	return JobSpec{
		Name: job.Name, Kernels: buf.Bytes(), Space: SpecFor(job.Space),
		Seed: job.Seed, NoiseStdDev: job.NoiseStdDev, Engine: job.Engine.String(),
		TTLMillis: ttl.Milliseconds(), Traceparent: job.Trace.Traceparent(),
	}, nil
}

// job rebuilds the registrable Job. The trace context round-trips, so
// a promoted coordinator's grants stay stitched to the original
// submission's trace.
func (s JobSpec) job() (Job, error) {
	ks, err := kernel.ReadAll(bytes.NewReader(s.Kernels))
	if err != nil {
		return Job{}, fmt.Errorf("dist: decoding job spec %s: %w", s.Name, err)
	}
	space, err := s.Space.Space()
	if err != nil {
		return Job{}, fmt.Errorf("dist: job spec %s: %w", s.Name, err)
	}
	engine, err := sweep.ParseEngine(s.Engine)
	if err != nil {
		return Job{}, fmt.Errorf("dist: job spec %s: %w", s.Name, err)
	}
	j := Job{Name: s.Name, Kernels: ks, Space: space, Seed: s.Seed,
		NoiseStdDev: s.NoiseStdDev, Engine: engine,
		TTL: time.Duration(s.TTLMillis) * time.Millisecond}
	if sc, err := obs.ParseTraceparent(s.Traceparent); err == nil {
		j.Trace = sc
	}
	return j, nil
}

// RowPlanes is one completed row's measurement planes on the
// replication stream — the ledger's complete record carries only the
// digest, so the planes travel as their own message and the standby
// re-appends them through the ordinary journal path.
type RowPlanes struct {
	Job    string    `json:"job"`
	Row    int       `json:"row"`
	Kernel string    `json:"kernel"`
	Tput   []float64 `json:"tput"`
	TimeNS []float64 `json:"time_ns"`
	Bound  []int     `json:"bound"`
}

// serveSpec is a serve-level admission riding the replication stream:
// the raw job file internal/serve fsyncs before answering 202, so an
// admitted-but-not-yet-started job survives primary loss too.
type serveSpec struct {
	ID    string `json:"id"`
	Bytes []byte `json:"bytes"`
}

// replMsg is one replication-stream message.
type replMsg struct {
	Cursor int64  `json:"cursor"`
	Kind   string `json:"kind"` // "rec" | "job" | "row" | "servespec"
	// Frame is the exact framed ledger bytes for "rec" — appended
	// verbatim on the standby, so the replica ledger is byte-identical.
	Frame []byte     `json:"frame,omitempty"`
	Job   *JobSpec   `json:"job,omitempty"`
	Row   *RowPlanes `json:"row,omitempty"`
	Spec  *serveSpec `json:"spec,omitempty"`
}

// tailResponse answers GET /v1/ha/tail.
type tailResponse struct {
	ID   string    `json:"id"`
	Term uint64    `json:"term"`
	Next int64     `json:"next"`
	Msgs []replMsg `json:"msgs,omitempty"`
}

// haSnapshot answers GET /v1/ha/snapshot: a consistent full copy of
// the primary's durable state plus the cursor tailing resumes from.
type haSnapshot struct {
	ID     string      `json:"id"`
	Term   uint64      `json:"term"`
	Cursor int64       `json:"cursor"`
	Ledger []byte      `json:"ledger"`
	Jobs   []JobSpec   `json:"jobs,omitempty"`
	Rows   []RowPlanes `json:"rows,omitempty"`
	Specs  []serveSpec `json:"specs,omitempty"`
}

// HAStatus answers GET /v1/ha/status — the probe surface peers (and
// operators) use to learn who holds which term.
type HAStatus struct {
	ID   string `json:"id"`
	Role string `json:"role"` // "primary", "standby", "deposed"
	Term uint64 `json:"term"`
	// Cursor is the replication cursor: published (primary) or applied
	// (standby).
	Cursor int64 `json:"cursor"`
}

// replBacklog bounds the in-memory replication log. A standby that
// falls further behind than this resyncs from the snapshot instead of
// the tail — and a fleet with no standby at all never retains more.
const replBacklog = 4096

// replLog is the primary-side replication log: cursor-numbered
// messages, the attached standby's acknowledged cursor, and the
// condition variable the synchronous-append barrier waits on. Its
// mutex nests strictly inside the coordinator's (publishes happen
// under c.mu; the tail handler never takes c.mu while holding rl.mu).
type replLog struct {
	mu   sync.Mutex
	cond *sync.Cond
	base int64
	msgs []replMsg
	// acked is the standby's durable cursor: everything below it was
	// fsynced on the replica.
	acked int64
	// attached is live standby presence: set on every tail, cleared
	// when a barrier times out (degrade to async) so one slow poll
	// cannot stall the whole protocol. everTailed is sticky — it arms
	// the self-fence.
	attached   bool
	everTailed bool
	lastTail   time.Time
}

func newReplLog() *replLog {
	rl := &replLog{}
	rl.cond = sync.NewCond(&rl.mu)
	return rl
}

// publish appends one message and returns its cursor.
func (rl *replLog) publish(m replMsg) int64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	m.Cursor = rl.base + int64(len(rl.msgs))
	rl.msgs = append(rl.msgs, m)
	// Trim what the standby already has, and bound the backlog: a
	// standby that needs more than the window resyncs via snapshot.
	for len(rl.msgs) > 0 && (rl.base < rl.acked || len(rl.msgs) > replBacklog) {
		rl.msgs[0] = replMsg{}
		rl.msgs = rl.msgs[1:]
		rl.base++
	}
	rl.cond.Broadcast()
	return m.Cursor
}

// latest returns the cursor one past the last published message.
func (rl *replLog) latest() int64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.base + int64(len(rl.msgs))
}

// lag returns how many published messages the standby has not yet
// acknowledged.
func (rl *replLog) lag() int64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.base + int64(len(rl.msgs)) - rl.acked
}

// waitAcked blocks until the standby's acknowledged cursor reaches
// target, no standby is attached, or the timeout expires. On timeout
// the standby is detached (degrade to async) and false is returned.
func (rl *replLog) waitAcked(target int64, timeout time.Duration) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if !rl.attached || rl.acked >= target {
		return true
	}
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() {
		rl.mu.Lock()
		rl.cond.Broadcast()
		rl.mu.Unlock()
	})
	defer wake.Stop()
	for rl.attached && rl.acked < target {
		if !time.Now().Before(deadline) {
			rl.attached = false
			return false
		}
		rl.cond.Wait()
	}
	return true
}

// tail serves one tail request: cursor acknowledges everything below
// it, then the call long-polls (bounded by wait) for messages at or
// past it. ok is false when the cursor fell off the retained window.
func (rl *replLog) tail(cursor int64, wait time.Duration) (msgs []replMsg, next int64, ok bool) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.lastTail = time.Now()
	rl.attached = true
	rl.everTailed = true
	if cursor > rl.acked {
		rl.acked = cursor
		rl.cond.Broadcast()
	}
	if cursor < rl.base {
		return nil, 0, false
	}
	if cursor == rl.base+int64(len(rl.msgs)) && wait > 0 {
		deadline := time.Now().Add(wait)
		wake := time.AfterFunc(wait, func() {
			rl.mu.Lock()
			rl.cond.Broadcast()
			rl.mu.Unlock()
		})
		defer wake.Stop()
		for cursor == rl.base+int64(len(rl.msgs)) && time.Now().Before(deadline) {
			rl.cond.Wait()
		}
	}
	if cursor > rl.base+int64(len(rl.msgs)) {
		return nil, 0, false
	}
	msgs = append(msgs, rl.msgs[cursor-rl.base:]...)
	return msgs, cursor + int64(len(msgs)), true
}

// silentFor reports how long since the last tail, and whether a
// standby ever tailed at all (the self-fence only arms after one
// has).
func (rl *replLog) silentFor(now time.Time) (time.Duration, bool) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if !rl.everTailed {
		return 0, false
	}
	return now.Sub(rl.lastTail), true
}

// fetchHAStatus probes one peer's /v1/ha/status.
func fetchHAStatus(ctx context.Context, client *http.Client, base string) (HAStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/ha/status", nil)
	if err != nil {
		return HAStatus{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return HAStatus{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return HAStatus{}, fmt.Errorf("dist: %s/v1/ha/status answered %d", base, resp.StatusCode)
	}
	var st HAStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return HAStatus{}, err
	}
	return st, nil
}

// StandbyOptions configures a warm standby.
type StandbyOptions struct {
	// ID names this standby in term records and status probes.
	ID string
	// Primary is the primary coordinator's base URL.
	Primary string
	// Client is the replication HTTP client; nil uses a default with a
	// timeout comfortably above the tail long-poll.
	Client *http.Client
	// PollEvery is the pause between replication attempts (each tail
	// long-polls server-side, so this mostly paces error retries).
	// Defaults to 100ms.
	PollEvery time.Duration
	// PromoteAfter is the missed-heartbeat deadline: no successful
	// contact with the primary for this long promotes the standby
	// (once it has synced at least once). Defaults to 3s.
	PromoteAfter time.Duration
	// Coordinator is the options template the promoted coordinator is
	// built from — metrics, traces, hooks, TTLs, and its own HA wiring
	// all carry over.
	Coordinator CoordinatorOptions
	// Metrics, when non-nil, receives the standby-side HA instruments
	// (term, applied cursor, failover count).
	Metrics *obs.Registry
	// Logf receives replication and promotion log lines; nil discards.
	Logf func(format string, args ...any)
	// now is the clock seam for promotion-deadline tests.
	now func() time.Time
}

// standbyJob is one replicated job on the standby: its spec, its
// rebuilt journal, and the matrix the journal appends read from.
type standbyJob struct {
	spec    JobSpec
	space   hw.Space
	kernels []*kernel.Kernel
	journal *sweep.Journal
	matrix  *sweep.Matrix
	// appended tracks which rows this incarnation journaled, so a
	// snapshot re-apply does not double-append.
	appended map[int]bool
}

// Standby is a warm coordinator replica: it tails the primary's
// replication stream into its own directory and can promote itself
// into a full Coordinator when the primary goes silent.
type Standby struct {
	dir    string
	o      StandbyOptions
	client *http.Client
	now    func() time.Time

	mu          sync.Mutex
	led         *ledger
	term        uint64
	cursor      int64
	synced      bool
	lastContact time.Time
	jobs        map[string]*standbyJob
	specs       map[string][]byte
	promoted    *Coordinator

	mTerm, mCursor *obs.Gauge
	mFailovers     *obs.Counter
}

// NewStandby opens (or resumes) a standby rooted at dir. Existing
// replica state — the ledger, journals and job specs a previous
// incarnation replicated — is reloaded, but the first contact with
// the primary always starts from a snapshot: the replication cursor
// is process-local, so a restarted standby re-bases before tailing.
func NewStandby(dir string, o StandbyOptions) (*Standby, error) {
	if o.Primary == "" {
		return nil, fmt.Errorf("dist: standby needs a primary URL")
	}
	if o.ID == "" {
		o.ID = "standby"
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 100 * time.Millisecond
	}
	if o.PromoteAfter <= 0 {
		o.PromoteAfter = 3 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: creating standby dir: %w", err)
	}
	s := &Standby{dir: dir, o: o, client: o.Client, now: o.now,
		jobs: map[string]*standbyJob{}, specs: map[string][]byte{}}
	if s.client == nil {
		s.client = &http.Client{Timeout: 10 * time.Second}
	}
	if s.now == nil {
		s.now = time.Now
	}
	led, rec, err := openLedger(filepath.Join(dir, "lease.ledger"))
	if err != nil {
		return nil, err
	}
	s.led = led
	s.term = rec.term
	if err := s.reloadJobs(); err != nil {
		led.close()
		return nil, err
	}
	s.lastContact = s.now()
	if r := o.Metrics; r != nil {
		s.mTerm = r.Gauge("dist_ha_term", "Coordinator term this process believes is current.")
		s.mCursor = r.Gauge("dist_repl_applied_cursor", "Replication cursor durably applied by this standby.")
		s.mFailovers = r.Counter("dist_ha_failovers_total", "Standby promotions performed by this process.")
		s.mTerm.Set(float64(s.term))
	}
	return s, nil
}

// reloadJobs reopens every *.jobspec a previous incarnation
// replicated. Caller holds s.mu or has exclusive access.
func (s *Standby) reloadJobs() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".jobspec" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return err
		}
		var spec JobSpec
		if err := json.Unmarshal(b, &spec); err != nil {
			return fmt.Errorf("dist: corrupt replicated job spec %s: %w", e.Name(), err)
		}
		if err := s.registerJob(spec); err != nil {
			return err
		}
	}
	return nil
}

// registerJob opens (or reopens) one replicated job's journal and
// matrix. Idempotent per name.
func (s *Standby) registerJob(spec JobSpec) error {
	if _, ok := s.jobs[spec.Name]; ok {
		return nil
	}
	j, err := spec.job()
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, sanitize(spec.Name)+".journal")
	journal, err := sweep.OpenJournal(path, j.Space)
	if err != nil {
		return err
	}
	sj := &standbyJob{spec: spec, space: j.Space, kernels: j.Kernels,
		journal: journal, matrix: newMatrix(j.Space, j.Kernels), appended: map[int]bool{}}
	if prior := journal.Prior(); prior != nil {
		for r, k := range j.Kernels {
			if pr := prior.Row(k.Name); pr >= 0 && prior.RowComplete(pr) {
				copyRow(sj.matrix, r, prior, pr)
				sj.appended[r] = true
			}
		}
	}
	s.jobs[spec.Name] = sj
	return nil
}

// specPath is where one replicated job spec is persisted.
func (s *Standby) specPath(name string) string {
	return filepath.Join(s.dir, sanitize(name)+".jobspec")
}

// persistFile writes b at path via temp + fsync + rename, the same
// all-or-nothing discipline internal/serve uses for admissions.
func persistFile(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// Run replicates until ctx ends or the standby promotes. It returns
// the promoted Coordinator (nil when ctx ended first). The promotion
// rule: no successful primary contact for PromoteAfter, and at least
// one sync has ever landed (a standby that never saw a primary has
// nothing worth promoting).
func (s *Standby) Run(ctx context.Context) (*Coordinator, error) {
	for {
		if ctx.Err() != nil {
			return nil, nil
		}
		var err error
		s.mu.Lock()
		synced := s.synced
		s.mu.Unlock()
		if !synced {
			err = s.syncOnce(ctx)
		} else {
			err = s.tailOnce(ctx)
		}
		if err != nil {
			s.o.Logf("dist standby %s: replication: %v", s.o.ID, err)
		}
		s.mu.Lock()
		quiet := s.now().Sub(s.lastContact)
		canPromote := s.term > 0 && quiet >= s.o.PromoteAfter
		s.mu.Unlock()
		if canPromote {
			s.o.Logf("dist standby %s: primary silent for %v — promoting", s.o.ID, quiet)
			return s.Promote()
		}
		if err != nil || !synced {
			if !sleepCtx(ctx, s.o.PollEvery) {
				return nil, nil
			}
		}
	}
}

// syncOnce fetches and applies a full snapshot, re-basing the cursor.
func (s *Standby) syncOnce(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.o.Primary+"/v1/ha/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: snapshot: %s answered %d", s.o.Primary, resp.StatusCode)
	}
	var snap haSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("dist: decoding snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.applySnapshotLocked(snap); err != nil {
		return err
	}
	s.touchLocked()
	s.o.Logf("dist standby %s: synced snapshot from %s (term %d, cursor %d, %d jobs)",
		s.o.ID, snap.ID, snap.Term, snap.Cursor, len(snap.Jobs))
	return nil
}

// applySnapshotLocked replaces the replica state wholesale with the
// snapshot: ledger bytes verbatim, journals rebuilt row by row.
func (s *Standby) applySnapshotLocked(snap haSnapshot) error {
	if !bytes.HasPrefix(snap.Ledger, []byte(ledgerMagic)) {
		return fmt.Errorf("dist: snapshot ledger is not a lease ledger")
	}
	s.led.close()
	for _, sj := range s.jobs {
		sj.journal.Close()
	}
	path := filepath.Join(s.dir, "lease.ledger")
	if err := persistFile(path, snap.Ledger); err != nil {
		return fmt.Errorf("dist: persisting snapshot ledger: %w", err)
	}
	led, rec, err := openLedger(path)
	if err != nil {
		return err
	}
	s.led = led
	s.term = rec.term
	s.jobs = map[string]*standbyJob{}
	for _, spec := range snap.Jobs {
		if err := persistFile(s.specPath(spec.Name), mustJSON(spec)); err != nil {
			return err
		}
		// Journals are rebuilt from the snapshot's rows, not the old
		// replica file: remove first so stale rows cannot linger.
		if err := os.Remove(filepath.Join(s.dir, sanitize(spec.Name)+".journal")); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		if err := s.registerJob(spec); err != nil {
			return err
		}
	}
	for i := range snap.Rows {
		if err := s.applyRowLocked(&snap.Rows[i]); err != nil {
			return err
		}
	}
	for _, sp := range snap.Specs {
		if err := s.persistServeSpecLocked(sp); err != nil {
			return err
		}
	}
	s.cursor = snap.Cursor
	s.synced = true
	if s.mTerm != nil {
		s.mTerm.Set(float64(s.term))
		s.mCursor.Set(float64(s.cursor))
	}
	return nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // wire types marshal by construction
	}
	return b
}

// tailOnce runs one tail round trip and applies what it returns.
func (s *Standby) tailOnce(ctx context.Context) error {
	s.mu.Lock()
	cursor := s.cursor
	s.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		s.o.Primary+"/v1/ha/tail?cursor="+strconv.FormatInt(cursor, 10), nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		// Fell off the retained window (or the primary restarted and
		// re-based): resync from a fresh snapshot.
		s.mu.Lock()
		s.synced = false
		s.touchLocked()
		s.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("dist: tail: %s answered %d", s.o.Primary, resp.StatusCode)
	}
	var tr tailResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return fmt.Errorf("dist: decoding tail: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range tr.Msgs {
		m := &tr.Msgs[i]
		if m.Cursor < s.cursor {
			continue // retried delivery of something already applied
		}
		if m.Cursor > s.cursor {
			s.synced = false // a gap: resync
			return nil
		}
		if err := s.applyMsgLocked(m); err != nil {
			return err
		}
		s.cursor++
	}
	s.touchLocked()
	if s.mCursor != nil {
		s.mCursor.Set(float64(s.cursor))
	}
	return nil
}

func (s *Standby) touchLocked() { s.lastContact = s.now() }

// applyMsgLocked applies one replication message, fsync before the
// cursor advance that acknowledges it.
func (s *Standby) applyMsgLocked(m *replMsg) error {
	switch m.Kind {
	case "rec":
		rec, _, ok := parseLedgerRecord(m.Frame, 0)
		if !ok {
			return fmt.Errorf("dist: replicated ledger frame failed its checksum")
		}
		if err := s.led.appendFrame(m.Frame); err != nil {
			return err
		}
		if rec.Kind == "term" && rec.Term > s.term {
			s.term = rec.Term
			if s.mTerm != nil {
				s.mTerm.Set(float64(s.term))
			}
		}
	case "job":
		if m.Job == nil {
			return fmt.Errorf("dist: job message without a spec")
		}
		if err := persistFile(s.specPath(m.Job.Name), mustJSON(*m.Job)); err != nil {
			return err
		}
		return s.registerJob(*m.Job)
	case "row":
		if m.Row == nil {
			return fmt.Errorf("dist: row message without planes")
		}
		return s.applyRowLocked(m.Row)
	case "servespec":
		if m.Spec == nil {
			return fmt.Errorf("dist: servespec message without a spec")
		}
		return s.persistServeSpecLocked(*m.Spec)
	default:
		return fmt.Errorf("dist: unknown replication message kind %q", m.Kind)
	}
	return nil
}

// applyRowLocked lands one completed row in the replica journal.
func (s *Standby) applyRowLocked(rp *RowPlanes) error {
	sj := s.jobs[rp.Job]
	if sj == nil {
		return fmt.Errorf("dist: row planes for unreplicated job %s", rp.Job)
	}
	r := rp.Row
	if r < 0 || r >= len(sj.kernels) || sj.kernels[r].Name != rp.Kernel {
		return fmt.Errorf("dist: row planes for %s name a row/kernel mismatch (%d/%s)", rp.Job, r, rp.Kernel)
	}
	n := sj.space.Size()
	if len(rp.Tput) != n || len(rp.TimeNS) != n || len(rp.Bound) != n {
		return fmt.Errorf("dist: row planes for %s row %d have wrong length", rp.Job, r)
	}
	copy(sj.matrix.Throughput[r], rp.Tput)
	copy(sj.matrix.TimeNS[r], rp.TimeNS)
	for i, b := range rp.Bound {
		sj.matrix.Bound[r][i] = gcn.Bound(b)
	}
	for i := range sj.matrix.Status[r] {
		sj.matrix.Status[r][i] = sweep.StatusOK
	}
	sj.appended[r] = true
	return sj.journal.AppendRow(sj.matrix, r)
}

func (s *Standby) persistServeSpecLocked(sp serveSpec) error {
	dir := filepath.Join(s.dir, "serve-jobs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.specs[sp.ID] = append([]byte(nil), sp.Bytes...)
	return persistFile(filepath.Join(dir, sanitize(sp.ID)+".json"), sp.Bytes)
}

// Status reports this standby's probe view.
func (s *Standby) Status() HAStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted != nil {
		return HAStatus{ID: s.o.ID, Role: "primary", Term: s.promoted.Term(), Cursor: s.cursor}
	}
	return HAStatus{ID: s.o.ID, Role: "standby", Term: s.term, Cursor: s.cursor}
}

// Term returns the highest term this standby has replicated (or, once
// promoted, the term it asserted).
func (s *Standby) Term() uint64 { return s.Status().Term }

// Handler serves the standby's probe surface. Lease-protocol paths
// answer a typed 503 ("not-primary") so a worker with this standby in
// its peer list rotates on instead of hanging; /v1/ha/status answers
// term probes. After promotion the caller should swap in the promoted
// Coordinator's Handler — until it does, this handler keeps answering
// status with the promoted term.
func (s *Standby) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ha/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("/v1/dist/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: errNotPrimary.Error(), Code: "not-primary"})
	})
	return mux
}

// Promote turns the replica into a live Coordinator: the replica
// ledger is replayed with the same conservative-expiry recovery a
// crash-restart uses, every replicated job is re-registered, and the
// new coordinator asserts term+1 in the ledger — from which point the
// old primary's term is fenced everywhere.
func (s *Standby) Promote() (*Coordinator, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted != nil {
		return s.promoted, nil
	}
	s.led.close()
	for _, sj := range s.jobs {
		sj.journal.Close()
	}
	opt := s.o.Coordinator
	if opt.ID == "" {
		opt.ID = s.o.ID
	}
	if opt.now == nil {
		opt.now = s.o.now
	}
	opt.initialTerm = s.term + 1
	c, err := NewCoordinator(s.dir, opt)
	if err != nil {
		return nil, fmt.Errorf("dist: promoting standby: %w", err)
	}
	names := make([]string, 0, len(s.jobs))
	for name := range s.jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		job, err := s.jobs[name].spec.job()
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := c.AddJob(job); err != nil {
			c.Close()
			return nil, err
		}
	}
	if s.mFailovers != nil {
		s.mFailovers.Inc()
		s.mTerm.Set(float64(c.Term()))
	}
	s.o.Logf("dist standby %s: promoted to primary at term %d (%d jobs)", s.o.ID, c.Term(), len(names))
	s.promoted = c
	return c, nil
}

// Close releases the replica's files (a promoted standby's files
// belong to the Coordinator instead).
func (s *Standby) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted != nil {
		return nil
	}
	err := s.led.close()
	for _, sj := range s.jobs {
		if cerr := sj.journal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
