// Package dist shards a sweep's kernel axis across a fleet: a
// coordinator leases kernel rows to workers over HTTP, workers run
// each row through the ordinary sweep executor + journal, and a merge
// step folds the per-worker row journals back into one canonical
// matrix journal that is byte-identical to a single-node run.
//
// The protocol is built from the row up on the repo's crash-only
// primitives. A kernel row is already the unit of idempotent,
// journaled recovery (journal v2 appends whole rows, fsynced, and a
// resume recomputes exactly the missing ones), so it is also the unit
// of distribution. Three properties carry the fleet:
//
//   - Monotonic lease epochs. Every grant of a row — first lease or
//     steal after expiry — bumps the row's epoch. A complete call is
//     accepted only when its epoch matches the row's current epoch, so
//     a worker whose lease was stolen cannot race its replacement: the
//     stale epoch is fenced with 409, never merged.
//
//   - Fsync-before-ack. A grant is recorded in the coordinator's
//     lease ledger (CRC-framed, fsynced, torn-tail-salvaging — the
//     same discipline as journal v2) before the lease response is
//     sent, and a completed row is appended to the coordinator's
//     matrix journal before the complete is acknowledged. A
//     coordinator crash therefore resumes without double-granting a
//     completed row: done-ness is recovered from the journal, epochs
//     from the ledger, and recovered leases get a conservative fresh
//     TTL so a live worker's renewals still land.
//
//   - Seeded determinism. The coordinator hands each worker
//     Seed = job.Seed + row, which is exactly the per-row noise seed
//     a single-node sweep derives, so any two honest executions of a
//     row — original and thief, before and after a crash — produce
//     bit-identical planes. Exactly-once completion is then checkable
//     after the fact: the merged journal must equal the single-node
//     journal byte for byte.
//
// Workers are crash-only too: each keeps a local row journal, so a
// re-leased row a worker already finished is served from its journal
// instead of recomputed, and a worker kill mid-row just lets the
// lease expire and the row get re-leased.
package dist

import (
	"bytes"
	"encoding/json"
	"fmt"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/sweep"
)

// SpaceSpec is the wire form of a configuration space.
type SpaceSpec struct {
	CUs  []int     `json:"cus"`
	Core []float64 `json:"core_mhz"`
	Mem  []float64 `json:"mem_mhz"`
}

// SpecFor captures a space for the wire.
func SpecFor(s hw.Space) SpaceSpec {
	return SpaceSpec{CUs: s.CUCounts, Core: s.CoreClocksMHz, Mem: s.MemClocksMHz}
}

// Space validates and rebuilds the configuration space.
func (s SpaceSpec) Space() (hw.Space, error) {
	return hw.NewSpace(s.CUs, s.Core, s.Mem)
}

// Lease is a coordinator's grant of one kernel row to one worker.
type Lease struct {
	// Job and Row name the work; Epoch is the fencing token every
	// renew and complete must echo.
	Job   string `json:"job"`
	Row   int    `json:"row"`
	Epoch uint64 `json:"epoch"`
	// Term is the coordinator term the lease was granted under — the
	// second fencing factor. Epochs fence stale workers within one
	// coordinator's reign; terms fence a deposed coordinator's grants
	// after a standby promoted. Renews and completes echo both.
	Term uint64 `json:"term,omitempty"`
	// Kernel is the row's kernel as a one-element kernel JSON array
	// (the kernel.WriteAll wire form).
	Kernel json.RawMessage `json:"kernel"`
	Space  SpaceSpec       `json:"space"`
	// Seed is the row's noise seed — already offset by the row index,
	// so the worker uses it verbatim and its local row 0 reproduces
	// the global row's noise stream.
	Seed        int64   `json:"seed"`
	NoiseStdDev float64 `json:"noise_stddev,omitempty"`
	Engine      string  `json:"engine"`
	// TTLMillis is how long the lease lives without a renewal.
	TTLMillis int64 `json:"ttl_ms"`
	// Traceparent carries the lease span's W3C trace context: the
	// coordinator mints a span per grant (a child of the job's span)
	// and the worker parents its row span under it, which is what
	// stitches one job submission into a single cross-process trace.
	Traceparent string `json:"traceparent,omitempty"`
}

// DecodeKernel rebuilds the leased kernel.
func (l *Lease) DecodeKernel() (*kernel.Kernel, error) {
	ks, err := kernel.ReadAll(bytes.NewReader(l.Kernel))
	if err != nil {
		return nil, fmt.Errorf("dist: decoding leased kernel: %w", err)
	}
	if len(ks) != 1 {
		return nil, fmt.Errorf("dist: lease carries %d kernels, want 1", len(ks))
	}
	return ks[0], nil
}

// encodeKernel renders one kernel in the lease wire form.
func encodeKernel(k *kernel.Kernel) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := kernel.WriteAll(&buf, []*kernel.Kernel{k}); err != nil {
		return nil, fmt.Errorf("dist: encoding kernel: %w", err)
	}
	return buf.Bytes(), nil
}

// acquireRequest asks for the next available row.
type acquireRequest struct {
	Worker string `json:"worker"`
	// MetricsURL, when set, is where this worker serves its Prometheus
	// exposition; the coordinator registers it with the metrics
	// federation, so joining the fleet is joining /metrics/fleet.
	MetricsURL string `json:"metrics_url,omitempty"`
	// Proto and Fingerprint are the version handshake: the worker's
	// protocol version (ProtoVersion) and engine fingerprint
	// (EngineFingerprint). Either one differing from the
	// coordinator's — including absent, as a pre-attestation binary
	// would send — fences the acquire with a typed 409 before any row
	// is granted.
	Proto       string `json:"proto,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Term is the highest coordinator term this worker has observed on
	// any lease. A coordinator that receives an acquire carrying a term
	// above its own has been deposed and just didn't know it yet — the
	// worker traffic itself carries the fencing information, so a
	// partitioned old primary steps down as soon as any re-joined
	// worker talks to it.
	Term uint64 `json:"term,omitempty"`
}

// renewRequest extends a held lease.
type renewRequest struct {
	Job    string `json:"job"`
	Row    int    `json:"row"`
	Epoch  uint64 `json:"epoch"`
	Term   uint64 `json:"term,omitempty"`
	Worker string `json:"worker"`
}

// renewResponse acknowledges a renewal.
type renewResponse struct {
	// TTLMillis is the fresh time-to-live from the coordinator's
	// clock at renewal.
	TTLMillis int64 `json:"ttl_ms"`
	// Done reports the row completed under this epoch already — the
	// worker's own complete, acked or not, landed. Stop renewing.
	Done bool `json:"done,omitempty"`
}

// completeRequest reports a row's terminal state. OK rows carry the
// three measurement planes; a failed row carries none and just
// releases the lease for re-issue.
type completeRequest struct {
	Job    string    `json:"job"`
	Row    int       `json:"row"`
	Epoch  uint64    `json:"epoch"`
	Term   uint64    `json:"term,omitempty"`
	Worker string    `json:"worker"`
	OK     bool      `json:"ok"`
	Tput   []float64 `json:"tput,omitempty"`
	TimeNS []float64 `json:"time_ns,omitempty"`
	Bound  []int     `json:"bound,omitempty"`
	// Digest attests the row: sweep.RowPlanesDigest over exactly the
	// planes above, computed by the worker from the bytes it journaled.
	// The coordinator recomputes it from the received planes and
	// rejects any OK complete where the two disagree (payload damaged
	// in flight, or a worker attesting bytes it did not send). Required
	// on every OK complete.
	Digest string `json:"digest,omitempty"`
}

// completeResponse acknowledges a complete.
type completeResponse struct {
	// Duplicate reports the row was already done when this complete
	// arrived — the idempotent outcome of a retried complete whose
	// first delivery's response was lost.
	Duplicate bool `json:"duplicate,omitempty"`
	// Requeued reports a not-OK complete released the row for
	// re-lease.
	Requeued bool `json:"requeued,omitempty"`
	// PendingVerify reports the row is in the re-verification sample
	// and this complete was recorded as a vote: the worker's part is
	// done, but the row stays open until an independent worker
	// produces a matching digest.
	PendingVerify bool `json:"pending_verify,omitempty"`
	// Verified reports this complete settled a re-verified row: two
	// independent workers agreed on the digest.
	Verified bool `json:"verified,omitempty"`
}

// JobStatus is the coordinator's view of one job's progress.
type JobStatus struct {
	Job    string `json:"job"`
	Rows   int    `json:"rows"`
	Done   int    `json:"done"`
	Leased int    `json:"leased"`
	// Verifying counts rows holding at least one re-verification vote
	// and waiting for an independent worker to agree.
	Verifying int  `json:"verifying,omitempty"`
	Complete  bool `json:"complete"`
}

// errorBody is the JSON error envelope, matching internal/serve. Code
// discriminates the 4xx family machine-side: "stale-epoch" (the
// fence), "stale-term" (the lease belongs to a deposed coordinator's
// reign), "version-mismatch" (the handshake), "quarantined" (the
// worker is fenced fleet-wide), "bad-attestation" (digest/payload
// disagreement), "deposed" (this coordinator lost its term — find the
// new primary), "not-primary" (a warm standby that has not promoted).
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// reportFor synthesizes a sweep report from a finished distributed
// matrix: every cell was measured exactly once from the caller's view
// (worker-side retries are the workers' business).
func reportFor(m *sweep.Matrix) *sweep.RunReport {
	rep := &sweep.RunReport{
		Kernels: len(m.Kernels),
		Configs: m.Space.Size(),
		Cells:   len(m.Kernels) * m.Space.Size(),
	}
	for r := range m.Kernels {
		for c := 0; c < m.Space.Size(); c++ {
			switch m.Status[r][c] {
			case sweep.StatusOK:
				rep.OK++
			case sweep.StatusFailed:
				rep.Failed++
			case sweep.StatusStalled:
				rep.Stalled++
			case sweep.StatusQuarantined:
				rep.Quarantined++
			default:
				rep.Canceled++
			}
		}
	}
	rep.Attempts = rep.OK
	return rep
}
