package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
	"gpuscale/internal/sweep"
)

// Job describes one sweep to distribute: the kernel rows, the space,
// and the noise/engine parameters every worker must reproduce
// exactly.
type Job struct {
	Name        string
	Kernels     []*kernel.Kernel
	Space       hw.Space
	Seed        int64
	NoiseStdDev float64
	Engine      sweep.Engine
	// TTL is how long a lease lives without renewal; expired leases
	// are stolen. Zero uses the coordinator default.
	TTL time.Duration
	// Trace is the job's span context (usually minted by internal/serve
	// at admission). Every lease grant becomes a child span of it, so
	// one submission yields one stitched trace across the fleet. An
	// invalid (zero) context gets a fresh root at AddJob, so directly
	// registered jobs trace too.
	Trace obs.SpanContext
	// OnRow, when non-nil, is invoked as each row's complete is
	// accepted (after the row is durably journaled), with the job's
	// matrix and the row index — the hook internal/serve uses to keep
	// its own journal and live snapshot current. Not invoked for rows
	// recovered already-done from the journal at AddJob. Called with
	// the coordinator's lock held: it must not call back into the
	// Coordinator.
	OnRow func(m *sweep.Matrix, r int)
}

// CoordinatorOptions tunes a Coordinator; the zero value is usable.
type CoordinatorOptions struct {
	// DefaultTTL is the lease TTL for jobs that do not set one;
	// defaults to 10s.
	DefaultTTL time.Duration
	// Metrics, when non-nil, receives lease/steal/complete counters.
	Metrics *obs.Registry
	// Trace, when non-nil, receives lease lifecycle instants.
	Trace *obs.TraceWriter
	// Flight, when non-nil, records lease transitions (grants, steals,
	// fences, completes, requeues) into the crash flight recorder, so a
	// dead coordinator's last moves are reconstructable from its ring.
	Flight *obs.FlightRecorder
	// OnWorker, when non-nil, is invoked whenever a worker's acquire
	// advertises a metrics URL — the hook gpuscaled uses to register
	// the worker with the metrics federation. Called outside the
	// coordinator lock; must be safe for concurrent use.
	OnWorker func(worker, metricsURL string)
	// now is the clock seam for lease-expiry tests.
	now func() time.Time
}

// rowState is the coordinator's in-memory view of one kernel row.
type rowState struct {
	epoch  uint64
	worker string
	expiry time.Time
	done   bool
	// span is the current epoch's lease span ID; completes and fences
	// for this epoch parent their trace events under it.
	span string
}

// jobState is one registered job plus its durable matrix journal.
type jobState struct {
	job     Job
	ttl     time.Duration
	rows    []rowState
	matrix  *sweep.Matrix
	journal *sweep.Journal
	order   []string // kernel names, row order
	added   time.Time
	rate    *obs.Gauge // dist_job_cells_per_second SLO instrument
}

// Coordinator owns lease state for registered jobs and serves the
// /v1/dist lease protocol. All durable state lives under one
// directory: lease.ledger plus one <job>.journal per job, so pointing
// a new Coordinator at the directory of a crashed one resumes it.
type Coordinator struct {
	dir string
	opt CoordinatorOptions
	now func() time.Time

	mu        sync.Mutex
	ledger    *ledger
	jobs      map[string]*jobState
	recovered *ledgerRecovery

	mGranted, mStolen, mCompleted, mDuplicate, mFenced, mRequeued *obs.Counter
}

// NewCoordinator opens (or resumes) a coordinator rooted at dir. Lease
// epochs and completions are recovered from dir's ledger; per-job
// done-ness is recovered from each job's matrix journal when the job
// is registered with AddJob.
func NewCoordinator(dir string, opt CoordinatorOptions) (*Coordinator, error) {
	if opt.DefaultTTL <= 0 {
		opt.DefaultTTL = 10 * time.Second
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: creating coordinator dir: %w", err)
	}
	led, rec, err := openLedger(filepath.Join(dir, "lease.ledger"))
	if err != nil {
		return nil, err
	}
	c := &Coordinator{dir: dir, opt: opt, ledger: led, jobs: map[string]*jobState{}, recovered: rec}
	c.now = opt.now
	if c.now == nil {
		c.now = time.Now
	}
	if r := opt.Metrics; r != nil {
		c.mGranted = r.Counter("dist_leases_granted_total", "Row leases granted, including steals.")
		c.mStolen = r.Counter("dist_leases_stolen_total", "Leases re-granted after expiry displaced an unfinished epoch.")
		c.mCompleted = r.Counter("dist_rows_completed_total", "Rows completed exactly once.")
		c.mDuplicate = r.Counter("dist_completes_duplicate_total", "Idempotent duplicate completes acknowledged.")
		c.mFenced = r.Counter("dist_completes_fenced_total", "Stale-epoch completes rejected by fencing.")
		c.mRequeued = r.Counter("dist_rows_requeued_total", "Not-OK completes that released a row for re-lease.")
	}
	return c, nil
}

// LedgerPath returns the coordinator's lease ledger file.
func (c *Coordinator) LedgerPath() string { return filepath.Join(c.dir, "lease.ledger") }

// JournalPath returns the matrix journal file for a job.
func (c *Coordinator) JournalPath(job string) string {
	return filepath.Join(c.dir, sanitize(job)+".journal")
}

// sanitize maps a job name to a filename.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// AddJob registers a job, resuming from its matrix journal and the
// lease ledger: rows already journaled are done and will never be
// granted again; rows with a recovered grant keep their epoch (so a
// worker that outlived the coordinator crash can still renew and
// complete) with a conservative fresh TTL from now.
func (c *Coordinator) AddJob(job Job) error {
	if job.Name == "" {
		return fmt.Errorf("dist: job needs a name")
	}
	if len(job.Kernels) == 0 {
		return fmt.Errorf("dist: job %s has no kernels", job.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[job.Name]; ok {
		return fmt.Errorf("dist: job %s already registered", job.Name)
	}
	ttl := job.TTL
	if ttl <= 0 {
		ttl = c.opt.DefaultTTL
	}
	if !job.Trace.Valid() {
		job.Trace = obs.NewSpanContext()
	}
	j, err := sweep.OpenJournal(c.JournalPath(job.Name), job.Space)
	if err != nil {
		return err
	}
	js := &jobState{job: job, ttl: ttl, journal: j, rows: make([]rowState, len(job.Kernels))}
	js.added = c.now()
	if r := c.opt.Metrics; r != nil {
		js.rate = r.Gauge("dist_job_cells_per_second", "Completed cells per second since the job was registered.",
			obs.L("job", job.Name))
	}
	js.matrix = newMatrix(job.Space, job.Kernels)
	for _, k := range job.Kernels {
		js.order = append(js.order, k.Name)
	}
	now := c.now()
	for r, k := range job.Kernels {
		key := rowKey{job.Name, r}
		if g, ok := c.recovered.grants[key]; ok {
			js.rows[r] = rowState{epoch: g.Epoch, worker: g.Worker,
				expiry: laterOf(now.Add(ttl), time.Unix(0, g.ExpiryNS))}
		}
		if prior := j.Prior(); prior != nil {
			if pr := prior.Row(k.Name); pr >= 0 && prior.RowComplete(pr) {
				copyRow(js.matrix, r, prior, pr)
				js.rows[r].done = true
			}
		}
	}
	c.jobs[job.Name] = js
	return nil
}

func laterOf(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// newMatrix allocates a job's result matrix with every cell canceled
// until a worker completes its row.
func newMatrix(space hw.Space, ks []*kernel.Kernel) *sweep.Matrix {
	n := space.Size()
	m := &sweep.Matrix{Space: space}
	for _, k := range ks {
		m.Kernels = append(m.Kernels, k.Name)
		m.Throughput = append(m.Throughput, make([]float64, n))
		m.TimeNS = append(m.TimeNS, make([]float64, n))
		m.Bound = append(m.Bound, make([]gcn.Bound, n))
		st := make([]sweep.CellStatus, n)
		for i := range st {
			st[i] = sweep.StatusCanceled
		}
		m.Status = append(m.Status, st)
	}
	return m
}

// copyRow copies row src of from into row dst of to, statuses
// included.
func copyRow(to *sweep.Matrix, dst int, from *sweep.Matrix, src int) {
	copy(to.Throughput[dst], from.Throughput[src])
	copy(to.TimeNS[dst], from.TimeNS[src])
	copy(to.Bound[dst], from.Bound[src])
	copy(to.Status[dst], from.Status[src])
}

// Close closes the ledger and every job journal.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.ledger.close()
	for _, js := range c.jobs {
		if cerr := js.journal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Status reports a job's progress.
func (c *Coordinator) Status(job string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[job]
	if !ok {
		return JobStatus{}, false
	}
	return c.statusLocked(js), true
}

func (c *Coordinator) statusLocked(js *jobState) JobStatus {
	st := JobStatus{Job: js.job.Name, Rows: len(js.rows)}
	now := c.now()
	for _, r := range js.rows {
		if r.done {
			st.Done++
		} else if r.epoch > 0 && now.Before(r.expiry) {
			st.Leased++
		}
	}
	st.Complete = st.Done == st.Rows
	return st
}

// TraceID returns a registered job's trace ID, or "" when the job is
// unknown — the handle tests and tools use to find the job's stitched
// trace.
func (c *Coordinator) TraceID(job string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[job]
	if !ok {
		return ""
	}
	return js.job.Trace.TraceID
}

// Matrix returns a copy-free snapshot of a job's matrix once the job
// is complete, or false while rows are outstanding.
func (c *Coordinator) Matrix(job string) (*sweep.Matrix, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[job]
	if !ok || !c.statusLocked(js).Complete {
		return nil, false
	}
	return js.matrix, true
}

// Run registers job — tolerating a prior registration of the same
// name, the requeue-after-crash path — and blocks until every row is
// done or ctx ends. On cancellation the partial matrix and its report
// are returned alongside the context error, mirroring
// sweep.RunContext.
func (c *Coordinator) Run(ctx context.Context, job Job) (*sweep.Matrix, *sweep.RunReport, error) {
	c.mu.Lock()
	_, exists := c.jobs[job.Name]
	c.mu.Unlock()
	if !exists {
		if err := c.AddJob(job); err != nil {
			return nil, nil, err
		}
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if m, ok := c.Matrix(job.Name); ok {
			return m, reportFor(m), nil
		}
		select {
		case <-ctx.Done():
			c.mu.Lock()
			m := c.jobs[job.Name].matrix
			c.mu.Unlock()
			return m, reportFor(m), ctx.Err()
		case <-tick.C:
		}
	}
}

// acquire grants the next available row to the requesting worker,
// persisting the grant before returning it. Returns nil when nothing
// is available.
func (c *Coordinator) acquire(req acquireRequest) (*Lease, error) {
	worker := req.Worker
	if c.opt.OnWorker != nil && req.MetricsURL != "" {
		c.opt.OnWorker(worker, req.MetricsURL)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var names []string
	for name := range c.jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		js := c.jobs[name]
		for r := range js.rows {
			rs := &js.rows[r]
			if rs.done || (rs.epoch > 0 && now.Before(rs.expiry)) {
				continue
			}
			steal := rs.epoch > 0
			epoch := rs.epoch + 1
			expiry := now.Add(js.ttl)
			rec := LedgerRecord{Kind: "grant", Job: name, Row: r, Epoch: epoch,
				Worker: worker, GrantedNS: now.UnixNano(), ExpiryNS: expiry.UnixNano(), Steal: steal}
			// Fsync the grant BEFORE the worker can see it: a crash
			// after this point recovers an epoch some worker may hold.
			if err := c.ledger.append(rec); err != nil {
				return nil, err
			}
			// The lease span: a fresh child of the job span, minted per
			// grant so each epoch is its own node in the stitched trace.
			leaseSC := js.job.Trace.Child()
			rs.epoch, rs.worker, rs.expiry, rs.span = epoch, worker, expiry, leaseSC.SpanID
			kraw, err := encodeKernel(js.job.Kernels[r])
			if err != nil {
				return nil, err
			}
			if c.mGranted != nil {
				c.mGranted.Inc()
				if steal {
					c.mStolen.Inc()
				}
			}
			ev := "lease"
			if steal {
				ev = "steal"
			}
			if tw := c.opt.Trace; tw != nil {
				tw.InstantSpan(ev, "dist", 0, leaseSC, js.job.Trace.SpanID, map[string]any{
					"job": name, "row": r, "epoch": epoch, "worker": worker})
			}
			if fr := c.opt.Flight; fr != nil {
				fr.Record(ev, map[string]any{
					"job": name, "row": r, "epoch": epoch, "worker": worker})
			}
			return &Lease{
				Job: name, Row: r, Epoch: epoch, Kernel: kraw,
				Space: SpecFor(js.job.Space),
				Seed:  js.job.Seed + int64(r), NoiseStdDev: js.job.NoiseStdDev,
				Engine: js.job.Engine.String(), TTLMillis: js.ttl.Milliseconds(),
				Traceparent: leaseSC.Traceparent(),
			}, nil
		}
	}
	return nil, nil
}

// errStale marks a fenced (stale-epoch) renew or complete.
var errStale = fmt.Errorf("dist: stale lease epoch")

// errUnknown marks a renew/complete for a row the coordinator does
// not know.
var errUnknown = fmt.Errorf("dist: unknown job or row")

// renew extends a held lease. Fenced when the epoch is stale; reports
// done when the row already completed (stop renewing).
func (c *Coordinator) renew(req renewRequest) (renewResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[req.Job]
	if !ok || req.Row < 0 || req.Row >= len(js.rows) {
		return renewResponse{}, errUnknown
	}
	rs := &js.rows[req.Row]
	if rs.done {
		return renewResponse{Done: true}, nil
	}
	if req.Epoch != rs.epoch {
		return renewResponse{}, errStale
	}
	rs.expiry = c.now().Add(js.ttl)
	rs.worker = req.Worker
	return renewResponse{TTLMillis: js.ttl.Milliseconds()}, nil
}

// complete records a row's terminal state. Exactly-once discipline:
// an already-done row acks as a duplicate (so retried completes are
// idempotent); a stale epoch is fenced; an OK row is journaled and
// ledgered — both fsynced — before the ack; a not-OK row is released
// for immediate re-lease.
func (c *Coordinator) complete(req completeRequest) (completeResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[req.Job]
	if !ok || req.Row < 0 || req.Row >= len(js.rows) {
		return completeResponse{}, errUnknown
	}
	rs := &js.rows[req.Row]
	if rs.done {
		if c.mDuplicate != nil {
			c.mDuplicate.Inc()
		}
		return completeResponse{Duplicate: true}, nil
	}
	if req.Epoch != rs.epoch {
		// The fence: a worker whose lease was stolen finished anyway.
		// Its numbers are bit-identical to the thief's (seeded noise),
		// but accepting them would hide real protocol bugs — reject
		// and let the live epoch's complete land.
		if c.mFenced != nil {
			c.mFenced.Inc()
		}
		if tw := c.opt.Trace; tw != nil {
			tw.InstantSpan("fence", "dist", 0,
				obs.SpanContext{TraceID: js.job.Trace.TraceID}, rs.span, map[string]any{
					"job": req.Job, "row": req.Row, "epoch": req.Epoch, "current": rs.epoch, "worker": req.Worker})
		}
		if fr := c.opt.Flight; fr != nil {
			fr.Record("fence", map[string]any{
				"job": req.Job, "row": req.Row, "epoch": req.Epoch, "current": rs.epoch, "worker": req.Worker})
		}
		return completeResponse{}, errStale
	}
	if !req.OK {
		// Release for re-lease: epoch stays (the failed worker's token
		// dies with this call), expiry is now so the next acquire can
		// take the row.
		rs.expiry = c.now()
		if c.mRequeued != nil {
			c.mRequeued.Inc()
		}
		if fr := c.opt.Flight; fr != nil {
			fr.Record("requeue", map[string]any{
				"job": req.Job, "row": req.Row, "epoch": req.Epoch, "worker": req.Worker})
		}
		return completeResponse{Requeued: true}, nil
	}
	if err := validatePlanes(js.job.Space.Size(), req); err != nil {
		return completeResponse{}, err
	}
	r := req.Row
	copy(js.matrix.Throughput[r], req.Tput)
	copy(js.matrix.TimeNS[r], req.TimeNS)
	for i, b := range req.Bound {
		js.matrix.Bound[r][i] = gcn.Bound(b)
	}
	for i := range js.matrix.Status[r] {
		js.matrix.Status[r][i] = sweep.StatusOK
	}
	// Fsync-before-ack, twice: the row into the matrix journal (the
	// source of truth for done-ness), then the complete into the
	// ledger (the audit trail). A crash between the two recovers as
	// done from the journal, so the ledger's complete record is
	// best-effort audit, not load-bearing state.
	if err := js.journal.AppendRow(js.matrix, r); err != nil {
		// Roll the in-memory row back so a retry can try again.
		for i := range js.matrix.Status[r] {
			js.matrix.Status[r][i] = sweep.StatusCanceled
		}
		return completeResponse{}, err
	}
	if err := c.ledger.append(LedgerRecord{Kind: "complete", Job: req.Job, Row: r,
		Epoch: req.Epoch, Worker: req.Worker}); err != nil {
		return completeResponse{}, err
	}
	rs.done = true
	if js.job.OnRow != nil {
		js.job.OnRow(js.matrix, r)
	}
	if c.mCompleted != nil {
		c.mCompleted.Inc()
	}
	if js.rate != nil {
		done := 0
		for i := range js.rows {
			if js.rows[i].done {
				done++
			}
		}
		if secs := c.now().Sub(js.added).Seconds(); secs > 0 {
			js.rate.Set(float64(done*js.job.Space.Size()) / secs)
		}
	}
	if tw := c.opt.Trace; tw != nil {
		tw.InstantSpan("complete", "dist", 0,
			obs.SpanContext{TraceID: js.job.Trace.TraceID}, rs.span, map[string]any{
				"job": req.Job, "row": r, "epoch": req.Epoch, "worker": req.Worker})
	}
	if fr := c.opt.Flight; fr != nil {
		fr.Record("complete", map[string]any{
			"job": req.Job, "row": r, "epoch": req.Epoch, "worker": req.Worker})
	}
	return completeResponse{}, nil
}

// validatePlanes applies journal-grade hygiene to a complete's
// payload before it can reach the matrix.
func validatePlanes(nCfg int, req completeRequest) error {
	if len(req.Tput) != nCfg || len(req.TimeNS) != nCfg || len(req.Bound) != nCfg {
		return fmt.Errorf("dist: complete for %s row %d has wrong plane length", req.Job, req.Row)
	}
	for i := range req.Tput {
		if !(req.Tput[i] > 0) || math.IsInf(req.Tput[i], 0) {
			return fmt.Errorf("dist: complete for %s row %d has out-of-range throughput", req.Job, req.Row)
		}
		if !(req.TimeNS[i] > 0) || math.IsInf(req.TimeNS[i], 0) {
			return fmt.Errorf("dist: complete for %s row %d has out-of-range time", req.Job, req.Row)
		}
		if req.Bound[i] < int(gcn.BoundCompute) || req.Bound[i] > int(gcn.BoundLaunch) {
			return fmt.Errorf("dist: complete for %s row %d has unknown bound", req.Job, req.Row)
		}
	}
	return nil
}

// Handler serves the lease protocol under /v1/dist/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/dist/lease", func(w http.ResponseWriter, r *http.Request) {
		var req acquireRequest
		if !decodeInto(w, r, &req) {
			return
		}
		lease, err := c.acquire(req)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
			return
		}
		if lease == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, lease)
	})
	mux.HandleFunc("/v1/dist/renew", func(w http.ResponseWriter, r *http.Request) {
		var req renewRequest
		if !decodeInto(w, r, &req) {
			return
		}
		resp, err := c.renew(req)
		if err != nil {
			writeLeaseError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/v1/dist/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !decodeInto(w, r, &req) {
			return
		}
		resp, err := c.complete(req)
		if err != nil {
			writeLeaseError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/v1/dist/job", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET only"})
			return
		}
		st, ok := c.Status(r.URL.Query().Get("name"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{"unknown job"})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	return mux
}

// decodeInto parses a POST body, answering 4xx itself on failure.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST only"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// writeLeaseError maps protocol errors to status codes: stale epochs
// are 409 (the fence), unknown rows 404, anything else 500.
func writeLeaseError(w http.ResponseWriter, err error) {
	switch err {
	case errStale:
		writeJSON(w, http.StatusConflict, errorBody{err.Error()})
	case errUnknown:
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
