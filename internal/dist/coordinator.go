package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
	"gpuscale/internal/sweep"
)

// Job describes one sweep to distribute: the kernel rows, the space,
// and the noise/engine parameters every worker must reproduce
// exactly.
type Job struct {
	Name        string
	Kernels     []*kernel.Kernel
	Space       hw.Space
	Seed        int64
	NoiseStdDev float64
	Engine      sweep.Engine
	// TTL is how long a lease lives without renewal; expired leases
	// are stolen. Zero uses the coordinator default.
	TTL time.Duration
	// Trace is the job's span context (usually minted by internal/serve
	// at admission). Every lease grant becomes a child span of it, so
	// one submission yields one stitched trace across the fleet. An
	// invalid (zero) context gets a fresh root at AddJob, so directly
	// registered jobs trace too.
	Trace obs.SpanContext
	// OnRow, when non-nil, is invoked as each row's complete is
	// accepted (after the row is durably journaled), with the job's
	// matrix and the row index — the hook internal/serve uses to keep
	// its own journal and live snapshot current. Not invoked for rows
	// recovered already-done from the journal at AddJob. Called with
	// the coordinator's lock held: it must not call back into the
	// Coordinator.
	OnRow func(m *sweep.Matrix, r int)
}

// CoordinatorOptions tunes a Coordinator; the zero value is usable.
type CoordinatorOptions struct {
	// DefaultTTL is the lease TTL for jobs that do not set one;
	// defaults to 10s.
	DefaultTTL time.Duration
	// Metrics, when non-nil, receives lease/steal/complete counters.
	Metrics *obs.Registry
	// Trace, when non-nil, receives lease lifecycle instants.
	Trace *obs.TraceWriter
	// Flight, when non-nil, records lease transitions (grants, steals,
	// fences, completes, requeues) into the crash flight recorder, so a
	// dead coordinator's last moves are reconstructable from its ring.
	Flight *obs.FlightRecorder
	// OnWorker, when non-nil, is invoked whenever a worker's acquire
	// advertises a metrics URL — the hook gpuscaled uses to register
	// the worker with the metrics federation. Called outside the
	// coordinator lock; must be safe for concurrent use. Never invoked
	// for version-fenced or quarantined workers, so a fenced worker
	// cannot keep refreshing its federation target.
	OnWorker func(worker, metricsURL string)
	// VerifyFraction is the fraction of rows re-verified before they
	// are accepted: a selected row's first complete is held as a vote
	// and the row is immediately re-leased, preferring a different
	// worker; the row settles when two distinct workers agree on its
	// digest. The sample is a pure function of (job seed, row), so it
	// survives restarts. 0 disables re-verification; 1 verifies every
	// row.
	VerifyFraction float64
	// QuarantineAfter is how many conclusive digest mismatches
	// (strikes) fence a worker; <= 0 means 1 — the first proven lie
	// quarantines, because honest workers essentially never lose a
	// vote (seeded determinism makes honest re-executions
	// bit-identical).
	QuarantineAfter int
	// OnQuarantine, when non-nil, is invoked as a worker is
	// quarantined — the hook gpuscaled uses to drop the worker from
	// the metrics federation. Called with the coordinator lock held:
	// it must not call back into the Coordinator.
	OnQuarantine func(worker string)
	// ID names this coordinator in ledger term records, trace events
	// and /v1/ha/status; defaults to "coordinator".
	ID string
	// Peers are the other coordinators' base URLs (warm standbys, or
	// whoever replaced us). StartHA probes them: any peer asserting a
	// higher term means this coordinator was deposed.
	Peers []string
	// ReplTimeout bounds the synchronous append-before-ack barrier: how
	// long a grant or complete ack waits for the attached standby to
	// durably apply it before degrading to async replication. Defaults
	// to 1s.
	ReplTimeout time.Duration
	// SelfFenceAfter, when positive, steps the primary down if a
	// standby that had been tailing goes silent for this long — the
	// primary cannot tell a dead standby from a partition, and past the
	// promotion deadline it must assume the standby promoted on the
	// other side. 0 disables (solo coordinators never self-fence).
	SelfFenceAfter time.Duration
	// CheckEvery is the HA housekeeping cadence (peer probes,
	// self-fence checks, lag instruments). Defaults to 250ms.
	CheckEvery time.Duration
	// now is the clock seam for lease-expiry tests.
	now func() time.Time
	// initialTerm is the term a promoting standby asserts
	// (Standby.Promote sets it to replicated-term+1); NewCoordinator
	// adopts the larger of it and the ledger's recovered term.
	initialTerm uint64
}

// rowVote is one worker's re-verification claim about a row.
type rowVote struct {
	worker string
	digest string
	epoch  uint64
}

// rowState is the coordinator's in-memory view of one kernel row.
type rowState struct {
	epoch  uint64
	worker string
	expiry time.Time
	done   bool
	// term is the coordinator term the current epoch was granted under
	// — the second fencing factor renews and completes must echo. A
	// promoted coordinator recovers it from the grant record, so a
	// lease granted by the old primary (still within TTL) stays
	// renewable across the failover.
	term uint64
	// span is the current epoch's lease span ID; completes and fences
	// for this epoch parent their trace events under it.
	span string
	// digest/verified/completedBy describe the accepted complete:
	// the attested row digest, whether two independent workers agreed
	// on it, and who computed the accepted planes.
	digest      string
	verified    bool
	completedBy string
	// pending marks a row in the re-verification sample with open
	// votes; votes holds one claim per worker, lastVote the time the
	// most recent one landed (the revote-grace clock).
	pending  bool
	votes    []rowVote
	lastVote time.Time
	// releasedEarly marks that the current epoch was released before
	// its grant-time expiry by a deliberate coordinator action (a
	// requeue, a held vote, a quarantine revocation) — the next grant
	// records it so the ledger audit can tell an early re-grant from
	// an overlapping lease.
	releasedEarly bool
}

// jobState is one registered job plus its durable matrix journal.
type jobState struct {
	job     Job
	ttl     time.Duration
	rows    []rowState
	matrix  *sweep.Matrix
	journal *sweep.Journal
	order   []string // kernel names, row order
	added   time.Time
	rate    *obs.Gauge // dist_job_cells_per_second SLO instrument
}

// Coordinator owns lease state for registered jobs and serves the
// /v1/dist lease protocol. All durable state lives under one
// directory: lease.ledger plus one <job>.journal per job, so pointing
// a new Coordinator at the directory of a crashed one resumes it.
type Coordinator struct {
	dir string
	opt CoordinatorOptions
	now func() time.Time
	id  string
	// repl is the replication log a warm standby tails; always present
	// (a fleet with no standby just never drains it past the backlog).
	repl *replLog

	mu        sync.Mutex
	ledger    *ledger
	jobs      map[string]*jobState
	recovered *ledgerRecovery
	// term is this coordinator's reign, asserted in the ledger at
	// startup; every record and lease carries it. deposed flips once a
	// newer term is known to be live, after which every protocol call
	// is fenced.
	term      uint64
	deposed   bool
	deposedCh chan struct{}
	// serveSpecs are the serve-level admissions replicated alongside
	// the lease state, keyed by job ID, so an admitted job survives
	// primary loss.
	serveSpecs map[string][]byte
	// strikes and quarantined are fleet-wide (cross-job) integrity
	// state, recovered from the ledger on restart.
	strikes     map[string]int
	quarantined map[string]bool

	mGranted, mStolen, mCompleted, mDuplicate, mFenced, mRequeued            *obs.Counter
	mVersionFenced, mVerified, mMismatch, mQuarantined, mInvalid, mBadAttest *obs.Counter
	mTermFenced, mReplTimeouts                                               *obs.Counter
	mTerm, mReplLag                                                          *obs.Gauge
}

// NewCoordinator opens (or resumes) a coordinator rooted at dir. Lease
// epochs and completions are recovered from dir's ledger; per-job
// done-ness is recovered from each job's matrix journal when the job
// is registered with AddJob.
func NewCoordinator(dir string, opt CoordinatorOptions) (*Coordinator, error) {
	if opt.DefaultTTL <= 0 {
		opt.DefaultTTL = 10 * time.Second
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: creating coordinator dir: %w", err)
	}
	led, rec, err := openLedger(filepath.Join(dir, "lease.ledger"))
	if err != nil {
		return nil, err
	}
	c := &Coordinator{dir: dir, opt: opt, ledger: led, jobs: map[string]*jobState{}, recovered: rec,
		strikes: rec.strikes, quarantined: rec.quarantined,
		repl: newReplLog(), deposedCh: make(chan struct{}), serveSpecs: map[string][]byte{}}
	c.now = opt.now
	if c.now == nil {
		c.now = time.Now
	}
	c.id = opt.ID
	if c.id == "" {
		c.id = "coordinator"
	}
	if c.opt.ReplTimeout <= 0 {
		c.opt.ReplTimeout = time.Second
	}
	if c.opt.CheckEvery <= 0 {
		c.opt.CheckEvery = 250 * time.Millisecond
	}
	// Adopt the reign: a crash-restart resumes the ledger's recovered
	// term; a promoting standby asserts its own, higher one; a fresh
	// ledger starts at 1. The term record is appended (and fsynced)
	// before any lease can be granted under it, so the ledger's term
	// history is complete by construction.
	c.term = rec.term
	if opt.initialTerm > c.term {
		c.term = opt.initialTerm
	}
	if c.term == 0 {
		c.term = 1
	}
	if c.term != rec.term {
		if err := c.logAppend(LedgerRecord{Kind: "term", Worker: c.id, GrantedNS: c.now().UnixNano()}); err != nil {
			led.close()
			return nil, err
		}
	}
	if r := opt.Metrics; r != nil {
		c.mGranted = r.Counter("dist_leases_granted_total", "Row leases granted, including steals.")
		c.mStolen = r.Counter("dist_leases_stolen_total", "Leases re-granted after expiry displaced an unfinished epoch.")
		c.mCompleted = r.Counter("dist_rows_completed_total", "Rows completed exactly once.")
		c.mDuplicate = r.Counter("dist_completes_duplicate_total", "Idempotent duplicate completes acknowledged.")
		c.mFenced = r.Counter("dist_completes_fenced_total", "Stale-epoch completes rejected by fencing.")
		c.mRequeued = r.Counter("dist_rows_requeued_total", "Not-OK completes that released a row for re-lease.")
		c.mVersionFenced = r.Counter("dist_workers_version_fenced_total", "Acquires rejected by the version/fingerprint handshake.")
		c.mVerified = r.Counter("dist_rows_verified_total", "Rows settled by independent digest agreement.")
		c.mMismatch = r.Counter("dist_verify_mismatches_total", "Re-verification votes whose digest lost — one strike each.")
		c.mQuarantined = r.Counter("dist_workers_quarantined_total", "Workers fenced fleet-wide after crossing the strike threshold.")
		c.mInvalid = r.Counter("dist_rows_invalidated_total", "Unverified completes retracted from quarantined workers.")
		c.mBadAttest = r.Counter("dist_completes_badattest_total", "OK completes rejected because the digest does not hash the shipped planes.")
		c.mTermFenced = r.Counter("dist_completes_term_fenced_total", "Renews and completes rejected because their lease belongs to a deposed coordinator's term.")
		c.mReplTimeouts = r.Counter("dist_repl_sync_timeouts_total", "Append-before-ack barriers that timed out waiting for the standby and degraded to async.")
		c.mTerm = r.Gauge("dist_ha_term", "Coordinator term this process believes is current.")
		c.mReplLag = r.Gauge("dist_repl_lag_records", "Replication-stream records the attached standby has not yet acknowledged.")
		c.mTerm.Set(float64(c.term))
	}
	return c, nil
}

// Term returns the coordinator's current term.
func (c *Coordinator) Term() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.term
}

// Deposed returns a channel closed when this coordinator learns a
// newer term is live — the process-level signal to exit with the
// deposed code.
func (c *Coordinator) Deposed() <-chan struct{} { return c.deposedCh }

// stepDownLocked fences this coordinator permanently: a newer term is
// live somewhere, so nothing it grants or acks may reach the matrix
// again. Caller holds c.mu.
func (c *Coordinator) stepDownLocked(reason string) {
	if c.deposed {
		return
	}
	c.deposed = true
	close(c.deposedCh)
	if fr := c.opt.Flight; fr != nil {
		fr.Record("deposed", map[string]any{"coordinator": c.id, "term": c.term, "reason": reason})
	}
}

// logAppend writes one record to the ledger under the current term
// and publishes its exact framed bytes to the replication stream.
// Caller holds c.mu (or has exclusive access during construction).
func (c *Coordinator) logAppend(rec LedgerRecord) error {
	rec.Term = c.term
	framed, err := frameRecord(rec)
	if err != nil {
		return err
	}
	if err := c.ledger.appendFrame(framed); err != nil {
		return err
	}
	c.repl.publish(replMsg{Kind: "rec", Frame: framed})
	return nil
}

// replBarrier is the synchronous half of append-before-ack: called
// after c.mu is released, it waits (bounded) for the attached standby
// to durably apply everything published so far. No standby attached
// means nothing to wait for; a timeout degrades to async and is
// surfaced on the instruments rather than failing the worker's call —
// the fencing rules absorb whatever a failover then loses.
func (c *Coordinator) replBarrier() {
	target := c.repl.latest()
	if !c.repl.waitAcked(target, c.opt.ReplTimeout) && c.mReplTimeouts != nil {
		c.mReplTimeouts.Inc()
	}
	if c.mReplLag != nil {
		c.mReplLag.Set(float64(c.repl.lag()))
	}
}

// ReplicateServeSpec publishes a serve-level admission (the raw job
// file bytes internal/serve persisted) to the replication stream and
// waits for the standby to hold it, so a job acked 202 survives
// primary loss.
func (c *Coordinator) ReplicateServeSpec(id string, raw []byte) {
	c.mu.Lock()
	if !c.deposed {
		b := append([]byte(nil), raw...)
		c.serveSpecs[id] = b
		c.repl.publish(replMsg{Kind: "servespec", Spec: &serveSpec{ID: id, Bytes: b}})
	}
	c.mu.Unlock()
	c.replBarrier()
}

// StartHA begins this coordinator's term bookkeeping against its
// peers: an immediate probe (a peer already asserting a higher term
// means we were deposed while down — return ErrDeposed now, before
// serving anything), then a background loop that keeps probing and
// enforces the self-fence. ctx ends the loop.
func (c *Coordinator) StartHA(ctx context.Context) error {
	client := &http.Client{Timeout: 2 * time.Second}
	if err := c.probePeers(ctx, client); err != nil {
		return err
	}
	go func() {
		tick := time.NewTicker(c.opt.CheckEvery)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-c.deposedCh:
				return
			case <-tick.C:
			}
			if silent, armed := c.repl.silentFor(time.Now()); armed &&
				c.opt.SelfFenceAfter > 0 && silent > c.opt.SelfFenceAfter {
				c.mu.Lock()
				c.stepDownLocked(fmt.Sprintf("standby silent for %v", silent))
				c.mu.Unlock()
				return
			}
			if err := c.probePeers(ctx, client); err != nil {
				return
			}
			if c.mReplLag != nil {
				c.mReplLag.Set(float64(c.repl.lag()))
			}
		}
	}()
	return nil
}

// probePeers asks every peer's /v1/ha/status for its term; a higher
// one deposes this coordinator. Unreachable peers are skipped — a
// partition must never fence the primary by itself (the worker-carried
// term and the self-fence cover that side).
func (c *Coordinator) probePeers(ctx context.Context, client *http.Client) error {
	c.mu.Lock()
	term := c.term
	c.mu.Unlock()
	for _, p := range c.opt.Peers {
		st, err := fetchHAStatus(ctx, client, p)
		if err != nil {
			continue
		}
		if st.Term > term {
			c.mu.Lock()
			c.stepDownLocked(fmt.Sprintf("peer %s (%s) asserts term %d", p, st.ID, st.Term))
			c.mu.Unlock()
			return fmt.Errorf("%w (peer %s serves term %d, ours is %d)", ErrDeposed, st.ID, st.Term, term)
		}
	}
	return nil
}

// Quarantined returns the quarantined worker names, sorted.
func (c *Coordinator) Quarantined() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for w := range c.quarantined {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// LedgerPath returns the coordinator's lease ledger file.
func (c *Coordinator) LedgerPath() string { return filepath.Join(c.dir, "lease.ledger") }

// JournalPath returns the matrix journal file for a job.
func (c *Coordinator) JournalPath(job string) string {
	return filepath.Join(c.dir, sanitize(job)+".journal")
}

// sanitize maps a job name to a filename.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// AddJob registers a job, resuming from its matrix journal and the
// lease ledger: rows already journaled are done and will never be
// granted again; rows with a recovered grant keep their epoch (so a
// worker that outlived the coordinator crash can still renew and
// complete) with a conservative fresh TTL from now.
func (c *Coordinator) AddJob(job Job) error {
	if err := c.addJob(job); err != nil {
		return err
	}
	// The registration is on the replication stream: wait for the
	// standby to hold it before the caller can announce the job.
	c.replBarrier()
	return nil
}

func (c *Coordinator) addJob(job Job) error {
	if job.Name == "" {
		return fmt.Errorf("dist: job needs a name")
	}
	if len(job.Kernels) == 0 {
		return fmt.Errorf("dist: job %s has no kernels", job.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[job.Name]; ok {
		return fmt.Errorf("dist: job %s already registered", job.Name)
	}
	ttl := job.TTL
	if ttl <= 0 {
		ttl = c.opt.DefaultTTL
	}
	if !job.Trace.Valid() {
		job.Trace = obs.NewSpanContext()
	}
	j, err := sweep.OpenJournal(c.JournalPath(job.Name), job.Space)
	if err != nil {
		return err
	}
	js := &jobState{job: job, ttl: ttl, journal: j, rows: make([]rowState, len(job.Kernels))}
	js.added = c.now()
	if r := c.opt.Metrics; r != nil {
		js.rate = r.Gauge("dist_job_cells_per_second", "Completed cells per second since the job was registered.",
			obs.L("job", job.Name))
	}
	js.matrix = newMatrix(job.Space, job.Kernels)
	for _, k := range job.Kernels {
		js.order = append(js.order, k.Name)
	}
	now := c.now()
	for r, k := range job.Kernels {
		key := rowKey{job.Name, r}
		if g, ok := c.recovered.grants[key]; ok {
			js.rows[r] = rowState{epoch: g.Epoch, worker: g.Worker, term: g.Term,
				expiry: laterOf(now.Add(ttl), time.Unix(0, g.ExpiryNS))}
		}
		rs := &js.rows[r]
		rr := c.recovered.rows[key]
		if rr != nil && rr.invalidated {
			// The ledger retracted this row after the journal recorded
			// it: the journaled bytes are the suspect's and must be
			// ignored. Reopen pending with the replayed votes (at least
			// the retracted claim) so one honest agreement settles it.
			rs.pending = true
			rs.lastVote = now
			for _, v := range rr.votes {
				rs.votes = append(rs.votes, rowVote{worker: v.Worker, digest: v.Digest, epoch: v.Epoch})
			}
			continue
		}
		prior := j.Prior()
		havePrior := false
		var pr int
		if prior != nil {
			if pr = prior.Row(k.Name); pr >= 0 && prior.RowComplete(pr) {
				havePrior = true
			}
		}
		switch {
		case havePrior:
			copyRow(js.matrix, r, prior, pr)
			rs.done = true
			if rr != nil && rr.completed {
				rs.digest, rs.verified, rs.completedBy = rr.digest, rr.verified, rr.completedBy
			} else {
				// Crash between the journal fsync and the ledger's
				// complete record: the journal is the source of truth, so
				// the row is done — recompute its digest from the
				// journaled bytes and credit the last granted worker,
				// unverified.
				if d, derr := sweep.RowDigest(js.matrix, r); derr == nil {
					rs.digest = d
				}
				rs.completedBy = rs.worker
			}
		case rr != nil && rr.completed:
			// The ledger acked a complete the journal lost (torn-tail
			// salvage dropped the row). Done-ness follows the journal:
			// re-lease the row, keeping the ledgered digest as a vote so
			// an honest re-execution settles it verified.
			rs.pending = true
			rs.lastVote = now
			rs.votes = []rowVote{{worker: rr.completedBy, digest: rr.digest, epoch: rs.epoch}}
		case rr != nil && len(rr.votes) > 0:
			// Open re-verification votes from before the crash.
			rs.pending = true
			rs.lastVote = now
			for _, v := range rr.votes {
				rs.votes = append(rs.votes, rowVote{worker: v.Worker, digest: v.Digest, epoch: v.Epoch})
			}
		}
	}
	// A crash mid-quarantine can leave a worker ledgered as
	// quarantined with unverified completes not yet retracted: finish
	// the job now, before any of its rows can be trusted.
	for r := range js.rows {
		rs := &js.rows[r]
		if rs.done && !rs.verified && rs.completedBy != "" && c.quarantined[rs.completedBy] {
			c.invalidateLocked(js, r)
		}
	}
	c.jobs[job.Name] = js
	// Put the registration on the replication stream so a standby can
	// re-register the job at promotion (the OnRow hook stays local).
	if spec, err := specForJob(job, ttl); err == nil {
		c.repl.publish(replMsg{Kind: "job", Job: &spec})
	}
	// A per-job term instant: the stitched trace shows which
	// coordinator, under which term, served this job's grants.
	if tw := c.opt.Trace; tw != nil {
		tw.InstantSpan("term", "dist", 0, job.Trace.Child(), job.Trace.SpanID, map[string]any{
			"job": job.Name, "term": c.term, "coordinator": c.id})
	}
	return nil
}

func laterOf(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

// newMatrix allocates a job's result matrix with every cell canceled
// until a worker completes its row.
func newMatrix(space hw.Space, ks []*kernel.Kernel) *sweep.Matrix {
	n := space.Size()
	m := &sweep.Matrix{Space: space}
	for _, k := range ks {
		m.Kernels = append(m.Kernels, k.Name)
		m.Throughput = append(m.Throughput, make([]float64, n))
		m.TimeNS = append(m.TimeNS, make([]float64, n))
		m.Bound = append(m.Bound, make([]gcn.Bound, n))
		st := make([]sweep.CellStatus, n)
		for i := range st {
			st[i] = sweep.StatusCanceled
		}
		m.Status = append(m.Status, st)
	}
	return m
}

// copyRow copies row src of from into row dst of to, statuses
// included.
func copyRow(to *sweep.Matrix, dst int, from *sweep.Matrix, src int) {
	copy(to.Throughput[dst], from.Throughput[src])
	copy(to.TimeNS[dst], from.TimeNS[src])
	copy(to.Bound[dst], from.Bound[src])
	copy(to.Status[dst], from.Status[src])
}

// Close closes the ledger and every job journal.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.ledger.close()
	for _, js := range c.jobs {
		if cerr := js.journal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Status reports a job's progress.
func (c *Coordinator) Status(job string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[job]
	if !ok {
		return JobStatus{}, false
	}
	return c.statusLocked(js), true
}

func (c *Coordinator) statusLocked(js *jobState) JobStatus {
	st := JobStatus{Job: js.job.Name, Rows: len(js.rows)}
	now := c.now()
	for _, r := range js.rows {
		if r.done {
			st.Done++
			continue
		}
		if r.epoch > 0 && now.Before(r.expiry) {
			st.Leased++
		}
		if r.pending {
			st.Verifying++
		}
	}
	st.Complete = st.Done == st.Rows
	return st
}

// TraceID returns a registered job's trace ID, or "" when the job is
// unknown — the handle tests and tools use to find the job's stitched
// trace.
func (c *Coordinator) TraceID(job string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[job]
	if !ok {
		return ""
	}
	return js.job.Trace.TraceID
}

// Matrix returns a copy-free snapshot of a job's matrix once the job
// is complete, or false while rows are outstanding.
func (c *Coordinator) Matrix(job string) (*sweep.Matrix, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	js, ok := c.jobs[job]
	if !ok || !c.statusLocked(js).Complete {
		return nil, false
	}
	return js.matrix, true
}

// Run registers job — tolerating a prior registration of the same
// name, the requeue-after-crash path — and blocks until every row is
// done or ctx ends. On cancellation the partial matrix and its report
// are returned alongside the context error, mirroring
// sweep.RunContext.
func (c *Coordinator) Run(ctx context.Context, job Job) (*sweep.Matrix, *sweep.RunReport, error) {
	c.mu.Lock()
	_, exists := c.jobs[job.Name]
	c.mu.Unlock()
	if !exists {
		if err := c.AddJob(job); err != nil {
			return nil, nil, err
		}
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if m, ok := c.Matrix(job.Name); ok {
			return m, reportFor(m), nil
		}
		select {
		case <-ctx.Done():
			c.mu.Lock()
			m := c.jobs[job.Name].matrix
			c.mu.Unlock()
			return m, reportFor(m), ctx.Err()
		case <-c.deposedCh:
			// A newer term is live: this coordinator will never see the
			// job finish. Surface the partial matrix and the deposed
			// error so the process can exit with the distinct code.
			c.mu.Lock()
			m := c.jobs[job.Name].matrix
			c.mu.Unlock()
			return m, reportFor(m), ErrDeposed
		case <-tick.C:
		}
	}
}

// acquire grants the next available row to the requesting worker,
// persisting the grant before returning it. Returns nil when nothing
// is available. The version handshake and the quarantine fence run
// before anything else: a worker that fails either never touches
// lease state, never refreshes its federation target, and never sees
// a row.
func (c *Coordinator) acquire(req acquireRequest) (*Lease, error) {
	worker := req.Worker
	if req.Proto != ProtoVersion || req.Fingerprint != EngineFingerprint() {
		if c.mVersionFenced != nil {
			c.mVersionFenced.Inc()
		}
		if fr := c.opt.Flight; fr != nil {
			fr.Record("version-fence", map[string]any{
				"worker": worker, "proto": req.Proto, "fingerprint": req.Fingerprint})
		}
		return nil, fmt.Errorf("%w: worker %s speaks %q fingerprint %q, coordinator %q fingerprint %q",
			errVersionMismatch, worker, req.Proto, req.Fingerprint, ProtoVersion, EngineFingerprint())
	}
	c.mu.Lock()
	if c.quarantined[worker] {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", errQuarantined, worker)
	}
	c.mu.Unlock()
	if c.opt.OnWorker != nil && req.MetricsURL != "" {
		c.opt.OnWorker(worker, req.MetricsURL)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check under the lock: OnWorker ran outside it and a
	// concurrent complete may have quarantined this worker meanwhile.
	if c.quarantined[worker] {
		return nil, fmt.Errorf("%w: %s", errQuarantined, worker)
	}
	if req.Term > c.term {
		// The worker has seen a lease from a newer term: a standby
		// promoted while we were partitioned from it, and the worker's
		// own traffic is the first we hear of it. Step down — granting
		// anything now would be a second live primary.
		c.stepDownLocked(fmt.Sprintf("worker %s carries term %d", worker, req.Term))
	}
	if c.deposed {
		return nil, ErrDeposed
	}
	now := c.now()
	var names []string
	for name := range c.jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		js := c.jobs[name]
		for r := range js.rows {
			rs := &js.rows[r]
			if rs.done || (rs.epoch > 0 && now.Before(rs.expiry)) {
				continue
			}
			if rs.pending && voteBlocked(rs, worker, now, js.ttl) {
				// The requester already voted on this row: re-verification
				// needs an independent worker, so hold the row back from
				// this one while the grace window is open.
				continue
			}
			steal := rs.epoch > 0
			epoch := rs.epoch + 1
			expiry := now.Add(js.ttl)
			rec := LedgerRecord{Kind: "grant", Job: name, Row: r, Epoch: epoch,
				Worker: worker, GrantedNS: now.UnixNano(), ExpiryNS: expiry.UnixNano(),
				Steal: steal, Early: rs.releasedEarly}
			// Fsync the grant BEFORE the worker can see it: a crash
			// after this point recovers an epoch some worker may hold.
			if err := c.logAppend(rec); err != nil {
				return nil, err
			}
			// The lease span: a fresh child of the job span, minted per
			// grant so each epoch is its own node in the stitched trace.
			leaseSC := js.job.Trace.Child()
			rs.epoch, rs.worker, rs.expiry, rs.span = epoch, worker, expiry, leaseSC.SpanID
			rs.term = c.term
			rs.releasedEarly = false
			kraw, err := encodeKernel(js.job.Kernels[r])
			if err != nil {
				return nil, err
			}
			if c.mGranted != nil {
				c.mGranted.Inc()
				if steal {
					c.mStolen.Inc()
				}
			}
			ev := "lease"
			if steal {
				ev = "steal"
			}
			if tw := c.opt.Trace; tw != nil {
				tw.InstantSpan(ev, "dist", 0, leaseSC, js.job.Trace.SpanID, map[string]any{
					"job": name, "row": r, "epoch": epoch, "worker": worker, "term": c.term})
			}
			if fr := c.opt.Flight; fr != nil {
				fr.Record(ev, map[string]any{
					"job": name, "row": r, "epoch": epoch, "worker": worker, "term": c.term})
			}
			return &Lease{
				Job: name, Row: r, Epoch: epoch, Term: c.term, Kernel: kraw,
				Space: SpecFor(js.job.Space),
				Seed:  js.job.Seed + int64(r), NoiseStdDev: js.job.NoiseStdDev,
				Engine: js.job.Engine.String(), TTLMillis: js.ttl.Milliseconds(),
				Traceparent: leaseSC.Traceparent(),
			}, nil
		}
	}
	return nil, nil
}

// errStale marks a fenced (stale-epoch) renew or complete.
var errStale = fmt.Errorf("dist: stale lease epoch")

// errStaleTerm marks a renew or complete whose lease was granted
// under a term that is no longer the row's current one — a deposed
// coordinator's grant surviving past a failover it must not survive.
var errStaleTerm = fmt.Errorf("dist: stale coordinator term")

// errUnknown marks a renew/complete for a row the coordinator does
// not know.
var errUnknown = fmt.Errorf("dist: unknown job or row")

// errVersionMismatch marks an acquire whose proto/fingerprint
// handshake failed — the worker's binary cannot mix rows with this
// coordinator's.
var errVersionMismatch = fmt.Errorf("dist: version/fingerprint mismatch")

// errQuarantined marks any call from a worker fenced fleet-wide.
var errQuarantined = fmt.Errorf("dist: worker is quarantined")

// errBadAttest marks an OK complete whose digest does not hash the
// shipped planes.
var errBadAttest = fmt.Errorf("dist: bad row attestation")

// voteBlocked reports whether a pending row must be held back from
// worker: it already voted, and the grace window for finding an
// independent worker is still open. After 2xTTL with no second voter
// the block lifts — with a one-worker fleet, availability wins and
// the row settles unverified via the revote path in voteLocked.
func voteBlocked(rs *rowState, worker string, now time.Time, ttl time.Duration) bool {
	if now.Sub(rs.lastVote) >= 2*ttl {
		return false
	}
	for _, v := range rs.votes {
		if v.worker == worker {
			return true
		}
	}
	return false
}

// renew extends a held lease. Fenced when the epoch is stale; reports
// done when the row already completed (stop renewing).
func (c *Coordinator) renew(req renewRequest) (renewResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deposed {
		return renewResponse{}, ErrDeposed
	}
	if c.quarantined[req.Worker] {
		return renewResponse{}, fmt.Errorf("%w: %s", errQuarantined, req.Worker)
	}
	js, ok := c.jobs[req.Job]
	if !ok || req.Row < 0 || req.Row >= len(js.rows) {
		return renewResponse{}, errUnknown
	}
	rs := &js.rows[req.Row]
	if rs.done {
		return renewResponse{Done: true}, nil
	}
	if req.Term != rs.term {
		if c.mTermFenced != nil {
			c.mTermFenced.Inc()
		}
		return renewResponse{}, fmt.Errorf("%w: lease for %s row %d holds term %d, current is %d",
			errStaleTerm, req.Job, req.Row, req.Term, rs.term)
	}
	if req.Epoch != rs.epoch {
		return renewResponse{}, errStale
	}
	rs.expiry = c.now().Add(js.ttl)
	rs.worker = req.Worker
	return renewResponse{TTLMillis: js.ttl.Milliseconds()}, nil
}

// complete records a row's terminal state. Exactly-once discipline:
// an already-done row acks as a duplicate (so retried completes are
// idempotent); a stale epoch is fenced; an OK row is journaled and
// ledgered — both fsynced — before the ack; a not-OK row is released
// for immediate re-lease. The integrity plane hangs off the OK path:
// the digest must hash the shipped planes, and a row in the
// re-verification sample is held as a vote until an independent
// worker agrees on its digest.
func (c *Coordinator) complete(req completeRequest) (completeResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deposed {
		return completeResponse{}, ErrDeposed
	}
	if c.quarantined[req.Worker] {
		return completeResponse{}, fmt.Errorf("%w: %s", errQuarantined, req.Worker)
	}
	js, ok := c.jobs[req.Job]
	if !ok || req.Row < 0 || req.Row >= len(js.rows) {
		return completeResponse{}, errUnknown
	}
	rs := &js.rows[req.Row]
	if rs.done {
		// Idempotent even across a failover: a retried complete for a
		// row that already landed acks as a duplicate regardless of
		// which term granted it.
		if c.mDuplicate != nil {
			c.mDuplicate.Inc()
		}
		return completeResponse{Duplicate: true}, nil
	}
	if req.Term != rs.term {
		// The term fence: this lease was granted by a coordinator whose
		// reign ended (or predates the row's current grant). Like the
		// epoch fence one level down, the result would be bit-identical
		// — rejecting it is what keeps "which primary granted which
		// rows" answerable from the ledger.
		if c.mTermFenced != nil {
			c.mTermFenced.Inc()
		}
		if tw := c.opt.Trace; tw != nil {
			tw.InstantSpan("fence", "dist", 0,
				obs.SpanContext{TraceID: js.job.Trace.TraceID}, rs.span, map[string]any{
					"job": req.Job, "row": req.Row, "epoch": req.Epoch, "worker": req.Worker,
					"term": req.Term, "current_term": rs.term})
		}
		if fr := c.opt.Flight; fr != nil {
			fr.Record("term-fence", map[string]any{
				"job": req.Job, "row": req.Row, "worker": req.Worker,
				"term": req.Term, "current_term": rs.term})
		}
		return completeResponse{}, fmt.Errorf("%w: lease for %s row %d holds term %d, current is %d",
			errStaleTerm, req.Job, req.Row, req.Term, rs.term)
	}
	if req.Epoch != rs.epoch {
		// The fence: a worker whose lease was stolen finished anyway.
		// Its numbers are bit-identical to the thief's (seeded noise),
		// but accepting them would hide real protocol bugs — reject
		// and let the live epoch's complete land.
		if c.mFenced != nil {
			c.mFenced.Inc()
		}
		if tw := c.opt.Trace; tw != nil {
			tw.InstantSpan("fence", "dist", 0,
				obs.SpanContext{TraceID: js.job.Trace.TraceID}, rs.span, map[string]any{
					"job": req.Job, "row": req.Row, "epoch": req.Epoch, "current": rs.epoch, "worker": req.Worker})
		}
		if fr := c.opt.Flight; fr != nil {
			fr.Record("fence", map[string]any{
				"job": req.Job, "row": req.Row, "epoch": req.Epoch, "current": rs.epoch, "worker": req.Worker})
		}
		return completeResponse{}, errStale
	}
	if !req.OK {
		// Release for re-lease: epoch stays (the failed worker's token
		// dies with this call), expiry is now so the next acquire can
		// take the row.
		rs.expiry = c.now()
		rs.releasedEarly = true
		if c.mRequeued != nil {
			c.mRequeued.Inc()
		}
		if fr := c.opt.Flight; fr != nil {
			fr.Record("requeue", map[string]any{
				"job": req.Job, "row": req.Row, "epoch": req.Epoch, "worker": req.Worker})
		}
		return completeResponse{Requeued: true}, nil
	}
	if err := validatePlanes(js.job.Space.Size(), req); err != nil {
		return completeResponse{}, err
	}
	// Attestation: the digest must hash exactly the planes shipped.
	// A mismatch means the payload was damaged in flight or the worker
	// attested bytes it did not send — either way these planes must
	// not reach the matrix, and retrying the identical payload cannot
	// succeed (400, not 409).
	want, err := sweep.RowPlanesDigest(js.order[req.Row], req.Tput, req.TimeNS, req.Bound)
	if err != nil {
		return completeResponse{}, err
	}
	if req.Digest != want {
		if c.mBadAttest != nil {
			c.mBadAttest.Inc()
		}
		if fr := c.opt.Flight; fr != nil {
			fr.Record("bad-attest", map[string]any{
				"job": req.Job, "row": req.Row, "worker": req.Worker,
				"digest": req.Digest, "want": want})
		}
		return completeResponse{}, fmt.Errorf("%w: %s row %d digest %q does not hash the shipped planes (%s)",
			errBadAttest, req.Job, req.Row, req.Digest, want)
	}
	if rs.pending || verifySelected(js.job.Seed, req.Row, c.opt.VerifyFraction) {
		return c.voteLocked(js, rs, req)
	}
	return c.acceptLocked(js, rs, req, false)
}

// acceptLocked lands an attested OK complete: planes into the
// matrix, row into the journal, complete into the ledger — fsynced in
// that order before the ack — then the OnRow hook and instruments.
// Caller holds c.mu.
func (c *Coordinator) acceptLocked(js *jobState, rs *rowState, req completeRequest, verified bool) (completeResponse, error) {
	r := req.Row
	copy(js.matrix.Throughput[r], req.Tput)
	copy(js.matrix.TimeNS[r], req.TimeNS)
	for i, b := range req.Bound {
		js.matrix.Bound[r][i] = gcn.Bound(b)
	}
	for i := range js.matrix.Status[r] {
		js.matrix.Status[r][i] = sweep.StatusOK
	}
	// Fsync-before-ack, twice: the row into the matrix journal (the
	// source of truth for done-ness), then the complete into the
	// ledger (the audit trail). A crash between the two recovers as
	// done from the journal, so the ledger's complete record is
	// best-effort audit, not load-bearing state. If the row was
	// invalidated earlier, this append supersedes the retracted bytes:
	// journal replay is last-record-wins per kernel.
	if err := js.journal.AppendRow(js.matrix, r); err != nil {
		// Roll the in-memory row back so a retry can try again.
		zeroRow(js.matrix, r)
		return completeResponse{}, err
	}
	// Replicate the planes before the complete record, mirroring the
	// local journal-then-ledger order: the standby's journal append for
	// this row lands at a lower cursor than its complete frame, so a
	// promotion between the two recovers done-ness from the journal
	// exactly like a local crash would.
	c.repl.publish(replMsg{Kind: "row", Row: &RowPlanes{
		Job: req.Job, Row: r, Kernel: js.order[r],
		Tput:   append([]float64(nil), req.Tput...),
		TimeNS: append([]float64(nil), req.TimeNS...),
		Bound:  append([]int(nil), req.Bound...)}})
	if err := c.logAppend(LedgerRecord{Kind: "complete", Job: req.Job, Row: r,
		Epoch: req.Epoch, Worker: req.Worker, Digest: req.Digest, Verified: verified}); err != nil {
		return completeResponse{}, err
	}
	rs.done = true
	rs.digest, rs.verified, rs.completedBy = req.Digest, verified, req.Worker
	rs.pending, rs.votes = false, nil
	if js.job.OnRow != nil {
		js.job.OnRow(js.matrix, r)
	}
	if c.mCompleted != nil {
		c.mCompleted.Inc()
	}
	if verified && c.mVerified != nil {
		c.mVerified.Inc()
	}
	if js.rate != nil {
		done := 0
		for i := range js.rows {
			if js.rows[i].done {
				done++
			}
		}
		if secs := c.now().Sub(js.added).Seconds(); secs > 0 {
			js.rate.Set(float64(done*js.job.Space.Size()) / secs)
		}
	}
	if tw := c.opt.Trace; tw != nil {
		tw.InstantSpan("complete", "dist", 0,
			obs.SpanContext{TraceID: js.job.Trace.TraceID}, rs.span, map[string]any{
				"job": req.Job, "row": r, "epoch": req.Epoch, "worker": req.Worker, "verified": verified})
	}
	if fr := c.opt.Flight; fr != nil {
		fr.Record("complete", map[string]any{
			"job": req.Job, "row": r, "epoch": req.Epoch, "worker": req.Worker, "verified": verified})
	}
	return completeResponse{Verified: verified}, nil
}

// voteLocked handles an attested complete for a row in the
// re-verification sample: the claim is ledgered as a vote, and the
// row settles only when two distinct workers agree on its digest.
// Dissenting votes at settlement are proven lies — each costs its
// worker a strike. A lone worker re-voting its own digest after the
// grace window settles the row unverified (availability over
// byzantine safety when no independent worker exists). Caller holds
// c.mu.
func (c *Coordinator) voteLocked(js *jobState, rs *rowState, req completeRequest) (completeResponse, error) {
	now := c.now()
	agree := 1 // the incoming claim
	revote := false
	var dissent []rowVote
	for _, v := range rs.votes {
		if v.worker == req.Worker {
			revote = true
			continue // superseded by the incoming claim
		}
		if v.digest == req.Digest {
			agree++
		} else {
			dissent = append(dissent, v)
		}
	}
	// Fsync the vote before any ack: a restarted coordinator must
	// remember every claim it held a row open for.
	if err := c.logAppend(LedgerRecord{Kind: "attest", Job: req.Job, Row: req.Row,
		Epoch: req.Epoch, Worker: req.Worker, Digest: req.Digest}); err != nil {
		return completeResponse{}, err
	}
	if tw := c.opt.Trace; tw != nil {
		tw.InstantSpan("attest", "dist", 0,
			obs.SpanContext{TraceID: js.job.Trace.TraceID}, rs.span, map[string]any{
				"job": req.Job, "row": req.Row, "epoch": req.Epoch, "worker": req.Worker, "digest": req.Digest})
	}
	if fr := c.opt.Flight; fr != nil {
		fr.Record("attest", map[string]any{
			"job": req.Job, "row": req.Row, "epoch": req.Epoch, "worker": req.Worker, "digest": req.Digest})
	}
	if agree >= 2 {
		// Independent agreement: accept verified, and every dissenting
		// vote is now a proven lie.
		resp, err := c.acceptLocked(js, rs, req, true)
		if err != nil {
			return resp, err
		}
		for _, v := range dissent {
			c.strikeLocked(js, v.worker, req.Job, req.Row, v.digest)
		}
		return resp, nil
	}
	if revote && !rs.lastVote.IsZero() && now.Sub(rs.lastVote) >= 2*js.ttl {
		// Grace elapsed with no independent worker: the same worker
		// re-executed the row (fresh lease, fresh computation) and got
		// the same digest. Accept unverified rather than deadlock a
		// one-worker fleet.
		return c.acceptLocked(js, rs, req, false)
	}
	replaced := false
	for i := range rs.votes {
		if rs.votes[i].worker == req.Worker {
			rs.votes[i] = rowVote{worker: req.Worker, digest: req.Digest, epoch: req.Epoch}
			replaced = true
		}
	}
	if !replaced {
		rs.votes = append(rs.votes, rowVote{worker: req.Worker, digest: req.Digest, epoch: req.Epoch})
	}
	rs.pending = true
	rs.lastVote = now
	// Release the row for an independent re-execution; the voter's
	// part is done (its completeWithRetry stops here).
	rs.expiry = now
	rs.releasedEarly = true
	return completeResponse{PendingVerify: true}, nil
}

// strikeLocked charges worker one conclusive digest mismatch and
// quarantines it at the threshold. Ledger appends here are
// best-effort: the strike already landed in memory, and failing the
// accepted complete over an audit record would trade integrity for
// bookkeeping. Caller holds c.mu.
func (c *Coordinator) strikeLocked(js *jobState, worker, job string, row int, digest string) {
	if c.quarantined[worker] {
		return
	}
	c.strikes[worker]++
	c.logAppend(LedgerRecord{Kind: "strike", Job: job, Row: row, Worker: worker, Digest: digest}) //nolint:errcheck // best-effort audit
	if c.mMismatch != nil {
		c.mMismatch.Inc()
	}
	if fr := c.opt.Flight; fr != nil {
		fr.Record("strike", map[string]any{
			"job": job, "row": row, "worker": worker, "digest": digest, "strikes": c.strikes[worker]})
	}
	threshold := c.opt.QuarantineAfter
	if threshold <= 0 {
		threshold = 1
	}
	if c.strikes[worker] >= threshold {
		c.quarantineLocked(js, worker, job, row, digest)
	}
}

// quarantineLocked fences worker fleet-wide: future acquires, renews
// and completes are rejected; its live leases are revoked for
// immediate re-lease; and every unverified row it completed is
// retracted and reopened — graceful degradation, because healthy
// workers pick the rows back up on their next acquire. Caller holds
// c.mu.
func (c *Coordinator) quarantineLocked(js *jobState, worker, job string, row int, digest string) {
	if c.quarantined[worker] {
		return
	}
	c.quarantined[worker] = true
	c.logAppend(LedgerRecord{Kind: "quarantine", Job: job, Row: row, Worker: worker, Digest: digest}) //nolint:errcheck // best-effort audit
	if c.mQuarantined != nil {
		c.mQuarantined.Inc()
	}
	if tw := c.opt.Trace; tw != nil {
		tw.InstantSpan("quarantine", "dist", 0,
			obs.SpanContext{TraceID: js.job.Trace.TraceID}, js.job.Trace.SpanID, map[string]any{
				"job": job, "row": row, "worker": worker, "digest": digest})
	}
	if fr := c.opt.Flight; fr != nil {
		fr.Record("quarantine", map[string]any{
			"job": job, "row": row, "worker": worker, "digest": digest})
	}
	if c.opt.OnQuarantine != nil {
		c.opt.OnQuarantine(worker)
	}
	now := c.now()
	for _, other := range c.jobs {
		for r := range other.rows {
			rs := &other.rows[r]
			if rs.done {
				if rs.completedBy == worker && !rs.verified {
					c.invalidateLocked(other, r)
				}
				continue
			}
			if rs.worker == worker && rs.epoch > 0 && now.Before(rs.expiry) {
				// Revoke the live lease. The epoch stays, so anything the
				// quarantined worker still sends is fenced stale on top of
				// being quarantined.
				rs.expiry = now
				rs.releasedEarly = true
			}
		}
	}
}

// invalidateLocked retracts a done row: its ledgered invalidate names
// the worker and digest being withdrawn, the matrix row is zeroed,
// and the row reopens pending with the retracted claim seeded as a
// vote — if an honest worker reproduces the digest, the values were
// right after all and one agreement settles the row verified. Caller
// holds c.mu.
func (c *Coordinator) invalidateLocked(js *jobState, r int) {
	rs := &js.rows[r]
	c.logAppend(LedgerRecord{Kind: "invalidate", Job: js.job.Name, Row: r,
		Epoch: rs.epoch, Worker: rs.completedBy, Digest: rs.digest}) //nolint:errcheck // best-effort audit
	rs.votes = []rowVote{{worker: rs.completedBy, digest: rs.digest, epoch: rs.epoch}}
	rs.done = false
	rs.pending = true
	rs.digest, rs.verified, rs.completedBy = "", false, ""
	now := c.now()
	rs.lastVote = now
	rs.expiry = now
	rs.releasedEarly = true
	zeroRow(js.matrix, r)
	if c.mInvalid != nil {
		c.mInvalid.Inc()
	}
	if fr := c.opt.Flight; fr != nil {
		fr.Record("invalidate", map[string]any{
			"job": js.job.Name, "row": r, "epoch": rs.epoch})
	}
}

// zeroRow resets one matrix row to its never-measured state.
func zeroRow(m *sweep.Matrix, r int) {
	for i := range m.Status[r] {
		m.Throughput[r][i] = 0
		m.TimeNS[r][i] = 0
		m.Bound[r][i] = 0
		m.Status[r][i] = sweep.StatusCanceled
	}
}

// validatePlanes applies journal-grade hygiene to a complete's
// payload before it can reach the matrix.
func validatePlanes(nCfg int, req completeRequest) error {
	if len(req.Tput) != nCfg || len(req.TimeNS) != nCfg || len(req.Bound) != nCfg {
		return fmt.Errorf("dist: complete for %s row %d has wrong plane length", req.Job, req.Row)
	}
	for i := range req.Tput {
		if !(req.Tput[i] > 0) || math.IsInf(req.Tput[i], 0) {
			return fmt.Errorf("dist: complete for %s row %d has out-of-range throughput", req.Job, req.Row)
		}
		if !(req.TimeNS[i] > 0) || math.IsInf(req.TimeNS[i], 0) {
			return fmt.Errorf("dist: complete for %s row %d has out-of-range time", req.Job, req.Row)
		}
		if req.Bound[i] < int(gcn.BoundCompute) || req.Bound[i] > int(gcn.BoundLaunch) {
			return fmt.Errorf("dist: complete for %s row %d has unknown bound", req.Job, req.Row)
		}
	}
	return nil
}

// Handler serves the lease protocol under /v1/dist/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/dist/lease", func(w http.ResponseWriter, r *http.Request) {
		var req acquireRequest
		if !decodeInto(w, r, &req) {
			return
		}
		lease, err := c.acquire(req)
		if err != nil {
			writeLeaseError(w, err)
			return
		}
		if lease == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		// Append-before-ack, replication half: the grant record is on
		// the stream; hold the response until the standby holds it too
		// (bounded — a timeout degrades to async, never fails the
		// lease). Runs after c.mu is released, so a publisher never
		// blocks the snapshot or tail handlers.
		c.replBarrier()
		writeJSON(w, http.StatusOK, lease)
	})
	mux.HandleFunc("/v1/dist/renew", func(w http.ResponseWriter, r *http.Request) {
		var req renewRequest
		if !decodeInto(w, r, &req) {
			return
		}
		resp, err := c.renew(req)
		if err != nil {
			writeLeaseError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/v1/dist/complete", func(w http.ResponseWriter, r *http.Request) {
		var req completeRequest
		if !decodeInto(w, r, &req) {
			return
		}
		resp, err := c.complete(req)
		if err != nil {
			writeLeaseError(w, err)
			return
		}
		// As with grants: the worker's ack means the complete — planes
		// and record — reached the standby (or the barrier degraded and
		// said so on the instruments).
		c.replBarrier()
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/v1/dist/job", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
			return
		}
		st, ok := c.Status(r.URL.Query().Get("name"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/v1/ha/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.haStatus())
	})
	mux.HandleFunc("/v1/ha/tail", func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		deposed, term := c.deposed, c.term
		c.mu.Unlock()
		if deposed {
			writeLeaseError(w, ErrDeposed)
			return
		}
		cursor, err := strconv.ParseInt(r.URL.Query().Get("cursor"), 10, 64)
		if err != nil || cursor < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad cursor"})
			return
		}
		msgs, next, ok := c.repl.tail(cursor, 500*time.Millisecond)
		if !ok {
			writeJSON(w, http.StatusConflict, errorBody{
				Error: "cursor outside the retained replication window", Code: "out-of-sync"})
			return
		}
		writeJSON(w, http.StatusOK, tailResponse{ID: c.id, Term: term, Next: next, Msgs: msgs})
	})
	mux.HandleFunc("/v1/ha/snapshot", func(w http.ResponseWriter, r *http.Request) {
		snap, err := c.snapshot()
		if err != nil {
			writeLeaseError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})
	return mux
}

// haStatus is this coordinator's probe view.
func (c *Coordinator) haStatus() HAStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	role := "primary"
	if c.deposed {
		role = "deposed"
	}
	return HAStatus{ID: c.id, Role: role, Term: c.term, Cursor: c.repl.latest()}
}

// snapshot builds a consistent full copy of the durable state for a
// standby that cannot catch up from the tail: the exact ledger bytes,
// every job's spec and completed rows, every replicated serve
// admission, and the cursor at which tailing resumes. Taken under
// c.mu, so no publish can interleave — the cursor and the state
// describe the same instant.
func (c *Coordinator) snapshot() (*haSnapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deposed {
		return nil, ErrDeposed
	}
	ledgerBytes, err := os.ReadFile(c.LedgerPath())
	if err != nil {
		return nil, fmt.Errorf("dist: reading ledger for snapshot: %w", err)
	}
	// The file may extend past the clean prefix if a recent append
	// failed mid-write; ship only what was acked.
	if int64(len(ledgerBytes)) > c.ledger.good {
		ledgerBytes = ledgerBytes[:c.ledger.good]
	}
	snap := &haSnapshot{ID: c.id, Term: c.term, Cursor: c.repl.latest(), Ledger: ledgerBytes}
	var names []string
	for name := range c.jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		js := c.jobs[name]
		spec, err := specForJob(js.job, js.ttl)
		if err != nil {
			return nil, err
		}
		snap.Jobs = append(snap.Jobs, spec)
		for r := range js.rows {
			if !js.rows[r].done {
				continue
			}
			bound := make([]int, len(js.matrix.Bound[r]))
			for i, b := range js.matrix.Bound[r] {
				bound[i] = int(b)
			}
			snap.Rows = append(snap.Rows, RowPlanes{
				Job: name, Row: r, Kernel: js.order[r],
				Tput:   append([]float64(nil), js.matrix.Throughput[r]...),
				TimeNS: append([]float64(nil), js.matrix.TimeNS[r]...),
				Bound:  bound})
		}
	}
	var ids []string
	for id := range c.serveSpecs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		snap.Specs = append(snap.Specs, serveSpec{ID: id, Bytes: c.serveSpecs[id]})
	}
	return snap, nil
}

// decodeInto parses a POST body, answering 4xx itself on failure.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// writeLeaseError maps protocol errors to status codes and machine
// codes: the three fences — stale epoch, version mismatch, quarantine
// — are 409 (retrying as-is cannot succeed, but the request was
// well-formed), a bad attestation is 400 (the payload itself is
// wrong), unknown rows 404, anything else 500.
func writeLeaseError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errStale):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Code: "stale-epoch"})
	case errors.Is(err, errStaleTerm):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Code: "stale-term"})
	case errors.Is(err, ErrDeposed):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Code: "deposed"})
	case errors.Is(err, errVersionMismatch):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Code: "version-mismatch"})
	case errors.Is(err, errQuarantined):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Code: "quarantined"})
	case errors.Is(err, errBadAttest):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Code: "bad-attestation"})
	case errors.Is(err, errUnknown):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
