package dist

// The lease ledger: the coordinator's crash-only record of every
// grant and complete, in the same CRC-framed, fsync-before-ack,
// torn-tail-salvaging format as sweep's journal v2:
//
//	gpuscale-lease v1\n
//	<crc32:8-hex> <len:decimal> <json-payload>\n
//	...
//
// A grant record is written and fsynced BEFORE the lease response
// leaves the coordinator, and a complete record before the complete
// ack, so recovery can always reconstruct an epoch assignment the
// fleet may have seen. Renewals are deliberately NOT persisted:
// recovery instead extends every open lease by a full fresh TTL from
// the recovery clock, which is always at or after the last renewal it
// could have acked — conservative, never premature.
//
// The ledger doubles as the audit trail for the protocol's "no two
// live epochs" invariant: grants for one row carry monotonically
// increasing epochs, and each grant's timestamp is at or after the
// previous epoch's recorded expiry (AuditLedger checks both).

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strconv"

	"encoding/json"
)

// ledgerMagic is the version header.
const ledgerMagic = "gpuscale-lease v1\n"

// LedgerRecord is one persisted lease event.
type LedgerRecord struct {
	// Kind is the event: "grant", "complete", or — the integrity
	// plane — "attest" (a re-verification vote), "strike" (a worker's
	// digest lost a vote), "quarantine" (a worker crossed the strike
	// threshold and is fenced fleet-wide), "invalidate" (a quarantined
	// worker's unverified complete was retracted and the row reopened)
	// — or "term", the HA plane: a coordinator (named in Worker)
	// asserting it now serves the fleet under Term. Terms increase
	// strictly monotonically, and every other record carries the term
	// it was written under, which is what lets AuditLedger prove no
	// two primaries were ever live at once.
	Kind   string `json:"kind"`
	Job    string `json:"job,omitempty"`
	Row    int    `json:"row,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Worker string `json:"worker,omitempty"`
	// Term is the coordinator term the record was written under (the
	// asserted term itself on a "term" record). 0 on ledgers from
	// before the HA plane existed.
	Term uint64 `json:"term,omitempty"`
	// GrantedNS and ExpiryNS bound a grant's validity on the
	// coordinator's clock (UnixNano). ExpiryNS is the grant-time
	// expiry; renewals may extend the live lease beyond it in memory,
	// so it is a lower bound on when the next epoch may start.
	GrantedNS int64 `json:"granted_ns,omitempty"`
	ExpiryNS  int64 `json:"expiry_ns,omitempty"`
	// Steal marks a grant that displaced an expired, unfinished
	// earlier epoch.
	Steal bool `json:"steal,omitempty"`
	// Early marks a grant whose previous epoch was released before its
	// recorded expiry by a deliberate coordinator action (requeue, held
	// re-verification vote, quarantine revocation) — the audit's
	// no-overlap check does not apply across such a release.
	Early bool `json:"early,omitempty"`
	// Digest is the attested row digest: on "complete", the digest the
	// accepted planes hash to; on "attest", the voter's claim; on
	// "strike"/"quarantine"/"invalidate", the digest that triggered
	// the event.
	Digest string `json:"digest,omitempty"`
	// Verified marks a complete that was settled by independent
	// agreement (two distinct workers, same digest) rather than taken
	// on one worker's word.
	Verified bool `json:"verified,omitempty"`
}

// ledger is the append side. Not safe for concurrent use; the
// coordinator serializes access under its own mutex.
type ledger struct {
	f    *os.File
	good int64
}

// ledgerRecovery is what replay yields: the last grant per row, each
// row's verification state, and the fleet-wide strike/quarantine
// state — everything a restarted coordinator needs to resume the
// integrity plane where it left off.
type ledgerRecovery struct {
	grants map[rowKey]LedgerRecord
	rows   map[rowKey]*rowRecovery
	// strikes and quarantined are per-worker: strike counts replayed
	// from "strike" records, quarantine membership from "quarantine"
	// records.
	strikes     map[string]int
	quarantined map[string]bool
	// term is the highest coordinator term asserted in the ledger; 0
	// when the ledger predates the HA plane.
	term uint64
	// Dropped is the salvage report: bytes of torn tail cut off.
	dropped int64
}

// rowRecovery is one row's replayed integrity state.
type rowRecovery struct {
	// completed reports the row's latest state is complete (a
	// "complete" record not followed by an "invalidate").
	completed bool
	// invalidated reports an "invalidate" retracted an earlier
	// complete — the journal may still hold the retracted bytes, and
	// recovery must ignore them.
	invalidated bool
	// digest/verified/completedBy mirror the latest complete record.
	digest      string
	verified    bool
	completedBy string
	// votes are the open re-verification votes (worker + digest); an
	// invalidate seeds them with the suspect's retracted claim so one
	// honest agreement can still settle the row.
	votes []LedgerRecord
}

type rowKey struct {
	job string
	row int
}

// row returns (allocating) the recovery slot for k.
func (rec *ledgerRecovery) row(k rowKey) *rowRecovery {
	rr := rec.rows[k]
	if rr == nil {
		rr = &rowRecovery{}
		rec.rows[k] = rr
	}
	return rr
}

// openLedger opens or creates the ledger at path, replaying existing
// records and truncating any torn tail (a crash mid-append costs at
// most the record being written — which was never acked).
func openLedger(path string) (*ledger, *ledgerRecovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: opening lease ledger: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dist: reading lease ledger: %w", err)
	}
	l := &ledger{f: f}
	rec := &ledgerRecovery{grants: map[rowKey]LedgerRecord{}, rows: map[rowKey]*rowRecovery{},
		strikes: map[string]int{}, quarantined: map[string]bool{}}
	if len(data) == 0 {
		if err := l.writeAt(0, []byte(ledgerMagic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("dist: initializing lease ledger: %w", err)
		}
		return l, rec, nil
	}
	if !bytes.HasPrefix(data, []byte(ledgerMagic)) {
		if len(data) < len(ledgerMagic) && bytes.HasPrefix([]byte(ledgerMagic), data) {
			// Torn during creation: nothing was ever acked.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("dist: resetting torn ledger header: %w", err)
			}
			if err := l.writeAt(0, []byte(ledgerMagic)); err != nil {
				f.Close()
				return nil, nil, err
			}
			return l, rec, nil
		}
		f.Close()
		return nil, nil, fmt.Errorf("dist: %s is not a lease ledger (delete it to start over)", path)
	}
	records, good := scanLedger(data)
	for _, r := range records {
		k := rowKey{r.Job, r.Row}
		switch r.Kind {
		case "term":
			if r.Term > rec.term {
				rec.term = r.Term
			}
		case "grant":
			rec.grants[k] = r
		case "complete":
			rr := rec.row(k)
			rr.completed = true
			rr.invalidated = false
			rr.digest, rr.verified, rr.completedBy = r.Digest, r.Verified, r.Worker
			rr.votes = nil
		case "attest":
			rec.row(k).votes = append(rec.row(k).votes, r)
		case "strike":
			rec.strikes[r.Worker]++
		case "quarantine":
			rec.quarantined[r.Worker] = true
		case "invalidate":
			rr := rec.row(k)
			rr.completed = false
			rr.invalidated = true
			// The retracted claim stays on the record as a vote: if an
			// honest worker reproduces the suspect's digest, the values
			// were right after all and one agreement settles the row.
			rr.votes = []LedgerRecord{{Kind: "attest", Job: r.Job, Row: r.Row,
				Epoch: r.Epoch, Worker: r.Worker, Digest: r.Digest}}
			rr.digest, rr.verified, rr.completedBy = "", false, ""
		}
	}
	if good < int64(len(data)) {
		rec.dropped = int64(len(data)) - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("dist: truncating torn ledger tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("dist: truncating torn ledger tail: %w", err)
		}
	}
	l.good = good
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dist: seeking ledger: %w", err)
	}
	return l, rec, nil
}

// scanLedger walks a ledger image and returns the clean records plus
// the clean prefix length.
func scanLedger(data []byte) ([]LedgerRecord, int64) {
	var out []LedgerRecord
	off := int64(len(ledgerMagic))
	for off < int64(len(data)) {
		rec, next, ok := parseLedgerRecord(data, off)
		if !ok {
			return out, off
		}
		out = append(out, rec)
		off = next
	}
	return out, off
}

// parseLedgerRecord decodes one framed record at off; ok is false on
// any framing, checksum or parse failure.
func parseLedgerRecord(data []byte, off int64) (rec LedgerRecord, next int64, ok bool) {
	rest := data[off:]
	sp1 := bytes.IndexByte(rest, ' ')
	if sp1 != 8 {
		return rec, 0, false
	}
	crcWant, err := strconv.ParseUint(string(rest[:8]), 16, 32)
	if err != nil {
		return rec, 0, false
	}
	rest2 := rest[9:]
	sp2 := bytes.IndexByte(rest2, ' ')
	if sp2 <= 0 || sp2 > 10 {
		return rec, 0, false
	}
	plen, err := strconv.ParseInt(string(rest2[:sp2]), 10, 32)
	if err != nil || plen <= 0 {
		return rec, 0, false
	}
	start := int64(9 + sp2 + 1)
	if start+plen+1 > int64(len(rest)) {
		return rec, 0, false
	}
	payload := rest[start : start+plen]
	if rest[start+plen] != '\n' {
		return rec, 0, false
	}
	if crc32.ChecksumIEEE(payload) != uint32(crcWant) {
		return rec, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, false
	}
	return rec, off + start + plen + 1, true
}

// frameRecord renders one record in the ledger's CRC wire framing.
// Framing is deterministic (struct field order fixes the JSON), which
// is what lets a standby replicate frames instead of records and end
// up with a replica ledger byte-identical to the primary's.
func frameRecord(rec LedgerRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding ledger record: %w", err)
	}
	return []byte(fmt.Sprintf("%08x %d %s\n", crc32.ChecksumIEEE(payload), len(payload), payload)), nil
}

// append frames, writes and fsyncs one record; on any failure the
// file is truncated back to the clean prefix so the ledger never
// accumulates garbage in-process.
func (l *ledger) append(rec LedgerRecord) error {
	framed, err := frameRecord(rec)
	if err != nil {
		return err
	}
	return l.appendFrame(framed)
}

// appendFrame writes and fsyncs an already-framed record — the
// replication receive path, where the standby appends the primary's
// exact bytes.
func (l *ledger) appendFrame(framed []byte) error {
	if err := l.writeAt(l.good, framed); err != nil {
		return fmt.Errorf("dist: appending ledger record: %w", err)
	}
	return nil
}

func (l *ledger) writeAt(off int64, b []byte) error {
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	n, err := l.f.Write(b)
	if err == nil && n != len(b) {
		err = io.ErrShortWrite
	}
	if err == nil {
		err = l.f.Sync()
	}
	if err != nil {
		l.f.Truncate(off)
		l.f.Sync()
		l.f.Seek(off, io.SeekStart)
		return err
	}
	l.good = off + int64(len(b))
	return nil
}

func (l *ledger) close() error { return l.f.Close() }

// ReadLedger reads every clean record from a ledger file — the audit
// surface chaos tests and operators use.
func ReadLedger(path string) ([]LedgerRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dist: reading ledger: %w", err)
	}
	if !bytes.HasPrefix(data, []byte(ledgerMagic)) {
		return nil, fmt.Errorf("dist: %s is not a lease ledger", path)
	}
	recs, _ := scanLedger(data)
	return recs, nil
}

// LedgerAudit is what AuditLedger returns when a ledger passes: the
// grant accounting plus the full integrity-plane history, so a chaos
// soak (or an operator) can name every quarantine and every retracted
// row without replaying the protocol.
type LedgerAudit struct {
	// Grants maps "job/row" to its grant count (steal accounting).
	Grants map[string]int
	// Completes counts complete records, retracted ones included;
	// Verified counts the ones settled by independent agreement.
	Completes int
	Verified  int
	// Quarantines are the "quarantine" records in ledger order; each
	// names the fenced worker and the row + digest that tripped it.
	Quarantines []LedgerRecord
	// Invalidations are the "invalidate" records: every row retracted
	// from a quarantined worker, with the digest it had claimed.
	Invalidations []LedgerRecord
	// Strikes are the "strike" records: every vote a worker's digest
	// lost.
	Strikes []LedgerRecord
	// Terms are the "term" records in ledger order: every coordinator
	// that ever served this ledger's fleet, in strictly increasing
	// term order. Empty on pre-HA ledgers.
	Terms []LedgerRecord
}

// AuditLedger checks the exactly-once, no-two-live-epochs, and
// integrity-plane invariants a ledger must satisfy:
//
//   - per row, grant epochs increase strictly monotonically;
//   - a later epoch's grant time is at or after the previous epoch's
//     recorded expiry (leases never overlap);
//   - every complete's and attest's epoch matches a granted epoch;
//   - at most one live complete per row: a second complete is legal
//     only after an "invalidate" retracted the first;
//   - an invalidate only retracts a row that was complete;
//   - no complete or attest from a worker already quarantined at that
//     point in the ledger;
//   - coordinator terms increase strictly monotonically, and every
//     record is written under the term current at its position — the
//     no-two-live-primaries invariant: once a promoted standby's term
//     record lands, nothing from the deposed primary's term can ever
//     follow it.
//
// Returns the audit summary or an error describing the first
// violation.
func AuditLedger(recs []LedgerRecord) (*LedgerAudit, error) {
	type rowAudit struct {
		grants   []LedgerRecord
		complete bool
	}
	rows := map[rowKey]*rowAudit{}
	quarantined := map[string]bool{}
	audit := &LedgerAudit{Grants: map[string]int{}}
	var keys []rowKey
	var currentTerm uint64
	epochGranted := func(a *rowAudit, epoch uint64) bool {
		for _, g := range a.grants {
			if g.Epoch == epoch {
				return true
			}
		}
		return false
	}
	for _, r := range recs {
		if r.Kind == "term" {
			if r.Term <= currentTerm {
				return nil, fmt.Errorf("dist: audit: term regressed %d -> %d (coordinator %s)", currentTerm, r.Term, r.Worker)
			}
			currentTerm = r.Term
			audit.Terms = append(audit.Terms, r)
			continue
		}
		if r.Term != currentTerm {
			return nil, fmt.Errorf("dist: audit: %s record for %s row %d written under term %d while term %d was current — two live primaries",
				r.Kind, r.Job, r.Row, r.Term, currentTerm)
		}
		k := rowKey{r.Job, r.Row}
		a := rows[k]
		if a == nil {
			a = &rowAudit{}
			rows[k] = a
			keys = append(keys, k)
		}
		switch r.Kind {
		case "grant":
			a.grants = append(a.grants, r)
		case "complete":
			if !epochGranted(a, r.Epoch) {
				return nil, fmt.Errorf("dist: audit: %s row %d completed under never-granted epoch %d", r.Job, r.Row, r.Epoch)
			}
			if a.complete {
				return nil, fmt.Errorf("dist: audit: %s row %d completed twice without an invalidate", r.Job, r.Row)
			}
			if quarantined[r.Worker] {
				return nil, fmt.Errorf("dist: audit: %s row %d completed by quarantined worker %s", r.Job, r.Row, r.Worker)
			}
			a.complete = true
			audit.Completes++
			if r.Verified {
				audit.Verified++
			}
		case "attest":
			if !epochGranted(a, r.Epoch) {
				return nil, fmt.Errorf("dist: audit: %s row %d attested under never-granted epoch %d", r.Job, r.Row, r.Epoch)
			}
			if quarantined[r.Worker] {
				return nil, fmt.Errorf("dist: audit: %s row %d attested by quarantined worker %s", r.Job, r.Row, r.Worker)
			}
		case "strike":
			if r.Worker == "" {
				return nil, fmt.Errorf("dist: audit: strike record without a worker")
			}
			audit.Strikes = append(audit.Strikes, r)
		case "quarantine":
			if r.Worker == "" {
				return nil, fmt.Errorf("dist: audit: quarantine record without a worker")
			}
			quarantined[r.Worker] = true
			audit.Quarantines = append(audit.Quarantines, r)
		case "invalidate":
			if !a.complete {
				return nil, fmt.Errorf("dist: audit: %s row %d invalidated while not complete", r.Job, r.Row)
			}
			a.complete = false
			audit.Invalidations = append(audit.Invalidations, r)
		default:
			return nil, fmt.Errorf("dist: audit: unknown record kind %q", r.Kind)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].job != keys[j].job {
			return keys[i].job < keys[j].job
		}
		return keys[i].row < keys[j].row
	})
	for _, k := range keys {
		a := rows[k]
		for i, g := range a.grants {
			if i == 0 {
				continue
			}
			prev := a.grants[i-1]
			if g.Epoch <= prev.Epoch {
				return nil, fmt.Errorf("dist: audit: %s row %d epoch regressed %d -> %d", k.job, k.row, prev.Epoch, g.Epoch)
			}
			if !g.Early && g.GrantedNS < prev.ExpiryNS {
				return nil, fmt.Errorf("dist: audit: %s row %d epoch %d granted %dns before epoch %d expired",
					k.job, k.row, g.Epoch, prev.ExpiryNS-g.GrantedNS, prev.Epoch)
			}
		}
		audit.Grants[fmt.Sprintf("%s/%d", k.job, k.row)] = len(a.grants)
	}
	return audit, nil
}
