package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
	"gpuscale/internal/sweep"
)

// WorkerOptions configures one fleet worker.
type WorkerOptions struct {
	// Name identifies the worker in leases, ledger records and traces.
	Name string
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Peers lists every coordinator this worker may talk to — the
	// primary plus any warm standbys. The worker sticks to one until it
	// errors (transport failure, 503 not-primary, 409 deposed), then
	// rotates to the next: after a failover the fleet re-joins the
	// promoted standby without operator action, and in-flight leases
	// within TTL complete there. Empty means just Coordinator.
	Peers []string
	// Dir is where the worker keeps its per-job row journals; pointing
	// a restarted worker at the same directory lets it serve re-leased
	// rows it already finished from disk instead of recomputing.
	Dir string
	// Client is the HTTP client; nil uses a default with a sane
	// timeout. Chaos tests hand in a fault.Injector-wrapped transport.
	Client *http.Client
	// SweepWorkers is the per-row parallelism; <= 0 lets sweep decide.
	SweepWorkers int
	// Retries/Backoff/SimTimeout pass through to the row sweep.
	Retries    int
	Backoff    time.Duration
	SimTimeout time.Duration
	// IdleSleep is the pause after "no work available"; defaults to
	// 50ms.
	IdleSleep time.Duration
	// MaxBackoff caps the acquire-error backoff window. Errors back off
	// exponentially from IdleSleep with full jitter (a uniform draw
	// over the window), so a whole fleet reconnecting after a failover
	// spreads its retries instead of thundering-herding the new
	// primary. Defaults to 2s.
	MaxBackoff time.Duration
	// Metrics, when non-nil, receives worker-side counters and the
	// renewal latency histogram.
	Metrics *obs.Registry
	// Trace, when non-nil, receives per-row and per-renewal spans.
	Trace *obs.TraceWriter
	// MetricsURL, when set, is advertised on every lease acquire so the
	// coordinator can federate this worker's /metrics.
	MetricsURL string
	// Flight, when non-nil, records lease transitions and sweep
	// retries/breaker trips into the crash flight recorder.
	Flight *obs.FlightRecorder
	// Fault is the chaos seam: CorruptRowRate makes this worker lie
	// (tamper a computed row before journaling and attesting it, so
	// journal, wire and digest are consistently wrong), StaleVersion
	// makes it present that protocol version on acquire. Zero value
	// injects nothing.
	Fault fault.Injector
}

// ErrVersionFenced reports the coordinator refused this worker's
// version/fingerprint handshake. Permanent for this binary pair:
// retrying the same handshake cannot succeed, so Run exits with it.
var ErrVersionFenced = errors.New("dist: worker fenced: version/fingerprint mismatch")

// ErrQuarantined reports the coordinator quarantined this worker
// after proven digest mismatches. Permanent: every future call is
// rejected, so Run exits with it.
var ErrQuarantined = errors.New("dist: worker quarantined by coordinator")

// Worker runs the lease-acquire / sweep / complete loop against one
// coordinator.
type Worker struct {
	o        WorkerOptions
	client   *http.Client
	journals map[string]*sweep.Journal
	// peer indexes o.Peers: the coordinator currently being used.
	// Rotated (atomically — the renew loop and the complete retries run
	// on their own goroutines) whenever that coordinator errors.
	peer atomic.Int32
	// maxTerm is the highest coordinator term seen on any lease; sent
	// on every acquire, so worker traffic itself deposes a partitioned
	// old primary. Only the Run goroutine touches it.
	maxTerm uint64
	// rng drives the full-jitter backoff; only the Run goroutine uses
	// it.
	rng *rand.Rand

	mRows, mLost *obs.Counter
	hRenew       *obs.Histogram
}

// NewWorker validates options and prepares a worker.
func NewWorker(o WorkerOptions) (*Worker, error) {
	if o.Name == "" {
		return nil, fmt.Errorf("dist: worker needs a name")
	}
	if len(o.Peers) == 0 && o.Coordinator != "" {
		o.Peers = []string{o.Coordinator}
	}
	if len(o.Peers) == 0 {
		return nil, fmt.Errorf("dist: worker needs a coordinator URL or peer list")
	}
	if o.Dir == "" {
		return nil, fmt.Errorf("dist: worker needs a journal dir")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: creating worker dir: %w", err)
	}
	if o.IdleSleep <= 0 {
		o.IdleSleep = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	w := &Worker{o: o, client: o.Client, journals: map[string]*sweep.Journal{}}
	// Seed from the worker name so chaos runs replay; distinct names
	// give distinct jitter streams, which is the whole point.
	h := fnv.New64a()
	io.WriteString(h, o.Name)
	w.rng = rand.New(rand.NewSource(int64(h.Sum64())))
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}
	if r := o.Metrics; r != nil {
		w.mRows = r.Counter("dist_worker_rows_completed_total", "Rows this worker completed and had accepted.")
		w.mLost = r.Counter("dist_worker_leases_lost_total", "Leases this worker lost to fencing (stolen mid-row).")
		w.hRenew = r.Histogram("dist_worker_renew_seconds", "Lease renewal round-trip latency.",
			[]float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1})
	}
	return w, nil
}

// Close closes the worker's journals.
func (w *Worker) Close() error {
	var err error
	for _, j := range w.journals {
		if cerr := j.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// JournalPath returns the worker's row journal for a job.
func (w *Worker) JournalPath(job string) string {
	return filepath.Join(w.o.Dir, sanitize(job)+".journal")
}

// Run loops until ctx ends: acquire a lease, execute the row, report
// it. Transport errors — including injected network faults — are
// absorbed with a short pause; the protocol's idempotency does the
// rest. Two rejections are permanent and end the loop instead:
// ErrVersionFenced (this binary cannot mix rows with that
// coordinator) and ErrQuarantined (the coordinator proved this worker
// wrong and fenced it) — retrying either would just hammer a 409
// forever.
func (w *Worker) Run(ctx context.Context) error {
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		lease, err := w.acquire(ctx)
		if errors.Is(err, ErrVersionFenced) || errors.Is(err, ErrQuarantined) {
			return err
		}
		if err != nil {
			// The coordinator we were on errored (down, deposed, or a
			// standby that isn't primary): rotate to the next peer and
			// back off with full jitter so a reconnecting fleet doesn't
			// thundering-herd the new primary.
			w.rotate()
			failures++
			if !sleepCtx(ctx, backoffDelay(w.o.IdleSleep, w.o.MaxBackoff, failures-1, w.rng.Float64())) {
				return nil
			}
			continue
		}
		failures = 0
		if lease == nil {
			if !sleepCtx(ctx, w.o.IdleSleep) {
				return nil
			}
			continue
		}
		w.runLease(ctx, lease)
	}
}

// backoffDelay is the rejoin schedule: a uniform draw (roll in [0,1))
// over an exponentially growing window — base·2^attempt, capped at
// max. Full jitter rather than jittered-exponential: the delays of N
// workers retrying the same failed primary spread over the whole
// window, which is what flattens the reconnect spike after a
// failover.
func backoffDelay(base, max time.Duration, attempt int, roll float64) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = base
	}
	window := base
	for i := 0; i < attempt && window < max; i++ {
		window *= 2
	}
	if window > max {
		window = max
	}
	d := time.Duration(roll * float64(window))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// rotate moves to the next peer in the list.
func (w *Worker) rotate() {
	if len(w.o.Peers) > 1 {
		w.peer.Add(1)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// acquire asks the coordinator for work, presenting the version
// handshake (protocol + engine fingerprint). nil lease means none
// available.
func (w *Worker) acquire(ctx context.Context) (*Lease, error) {
	proto := ProtoVersion
	if w.o.Fault.StaleVersion != "" {
		proto = w.o.Fault.StaleVersion
	}
	var lease Lease
	status, code, err := w.post(ctx, "/v1/dist/lease",
		acquireRequest{Worker: w.o.Name, MetricsURL: w.o.MetricsURL,
			Proto: proto, Fingerprint: EngineFingerprint(), Term: w.maxTerm}, &lease)
	if err != nil {
		return nil, err
	}
	switch {
	case status == http.StatusNoContent:
		return nil, nil
	case status == http.StatusConflict && code == "version-mismatch":
		return nil, fmt.Errorf("%w (worker %s)", ErrVersionFenced, w.o.Name)
	case status == http.StatusConflict && code == "quarantined":
		return nil, fmt.Errorf("%w (worker %s)", ErrQuarantined, w.o.Name)
	case status != http.StatusOK:
		// Covers a warm standby's 503 "not-primary" and a deposed
		// coordinator's 409 "deposed" alike: not permanent for this
		// worker, just wrong coordinator — the caller rotates.
		return nil, fmt.Errorf("dist: lease acquire: status %d (%s)", status, code)
	}
	if lease.Term > w.maxTerm {
		w.maxTerm = lease.Term
	}
	return &lease, nil
}

// runLease executes one leased row end to end: compute (or recover
// from the worker journal), renew in the background, complete with
// fencing-aware retries.
func (w *Worker) runLease(ctx context.Context, lease *Lease) {
	start := time.Now()
	rowCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The lease span arrives over the wire; the row span is its child,
	// so the coordinator's grant and this worker's execution stitch
	// into one trace even though they live in different processes.
	leaseSC, _ := obs.ParseTraceparent(lease.Traceparent)
	var rowSC obs.SpanContext
	if leaseSC.Valid() {
		rowSC = leaseSC.Child()
	}
	if fr := w.o.Flight; fr != nil {
		fr.Record("lease.acquired", map[string]any{
			"job": lease.Job, "row": lease.Row, "epoch": lease.Epoch, "worker": w.o.Name})
	}

	// Background renewal at a third of the TTL. A fenced renewal means
	// the lease was stolen: abandon the row — the thief owns it now.
	ttl := time.Duration(lease.TTLMillis) * time.Millisecond
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		w.renewLoop(rowCtx, lease, leaseSC, ttl/3, cancel)
	}()
	defer func() { cancel(); <-renewDone }()

	m, r, err := w.executeRow(rowCtx, lease, rowSC)
	if err != nil {
		// Row incomplete (canceled, fenced, or engine trouble past the
		// retry budget): tell the coordinator so the row re-leases
		// immediately instead of waiting out the TTL. Best-effort — if
		// this is lost, expiry re-leases it anyway.
		req := completeRequest{Job: lease.Job, Row: lease.Row, Epoch: lease.Epoch,
			Term: lease.Term, Worker: w.o.Name, OK: false}
		var resp completeResponse
		w.post(ctx, "/v1/dist/complete", req, &resp) //nolint:errcheck // best-effort release
		if fr := w.o.Flight; fr != nil {
			fr.Record("lease.abandoned", map[string]any{
				"job": lease.Job, "row": lease.Row, "epoch": lease.Epoch,
				"worker": w.o.Name, "err": err.Error()})
		}
		return
	}

	nCfg := m.Space.Size()
	bounds := make([]int, nCfg)
	for c := 0; c < nCfg; c++ {
		bounds[c] = int(m.Bound[r][c])
	}
	// Attest the row: the digest hashes exactly the bytes this worker
	// journaled (and is now shipping), so the coordinator — and later
	// the attested merge — can hold these planes to this claim.
	digest, err := sweep.RowPlanesDigest(m.Kernels[r], m.Throughput[r], m.TimeNS[r], bounds)
	if err != nil {
		return
	}
	req := completeRequest{Job: lease.Job, Row: lease.Row, Epoch: lease.Epoch,
		Term: lease.Term, Worker: w.o.Name, OK: true,
		Tput: m.Throughput[r], TimeNS: m.TimeNS[r], Bound: bounds, Digest: digest}
	accepted := w.completeWithRetry(ctx, req)
	if accepted && w.mRows != nil {
		w.mRows.Inc()
	}
	if fr := w.o.Flight; fr != nil {
		fr.Record("lease.completed", map[string]any{
			"job": lease.Job, "row": lease.Row, "epoch": lease.Epoch,
			"worker": w.o.Name, "accepted": accepted})
	}
	if tw := w.o.Trace; tw != nil {
		tw.CompleteSpan("row", "dist", 0, rowSC, leaseSC.SpanID, start, time.Since(start), map[string]any{
			"job": lease.Job, "row": lease.Row, "epoch": lease.Epoch,
			"worker": w.o.Name, "accepted": accepted})
	}
}

// executeRow produces the leased row's matrix, serving it from the
// worker journal when this worker already completed the same kernel
// (a re-lease after a lost ack or a steal of our own expired lease).
// rowSC, when valid, joins the row's cell/attempt spans to the job's
// distributed trace.
func (w *Worker) executeRow(ctx context.Context, lease *Lease, rowSC obs.SpanContext) (*sweep.Matrix, int, error) {
	k, err := lease.DecodeKernel()
	if err != nil {
		return nil, 0, err
	}
	space, err := lease.Space.Space()
	if err != nil {
		return nil, 0, err
	}
	j := w.journals[lease.Job]
	if j == nil {
		j, err = sweep.OpenJournal(w.JournalPath(lease.Job), space)
		if err != nil {
			return nil, 0, err
		}
		w.journals[lease.Job] = j
	}
	engine, err := sweep.ParseEngine(lease.Engine)
	if err != nil {
		return nil, 0, err
	}
	opts := sweep.Options{
		Workers:     w.o.SweepWorkers,
		Engine:      engine,
		NoiseStdDev: lease.NoiseStdDev,
		// The coordinator pre-offset the seed by the global row index;
		// our local row 0 therefore reproduces the single-node noise
		// stream for this row exactly.
		Seed:       lease.Seed,
		Retries:    w.o.Retries,
		Backoff:    w.o.Backoff,
		SimTimeout: w.o.SimTimeout,
		OnRow: func(m *sweep.Matrix, r int) {
			// The byzantine seam: a lying worker corrupts the row BEFORE
			// journaling it, so its journal, its wire payload and its
			// digest are consistent — the lie is only catchable by
			// independent re-execution, which is exactly what sampled
			// re-verification does.
			if hit, sub := w.o.Fault.RowTamper(lease.Job+"/"+m.Kernels[r], 0); hit {
				tamperRow(m, r, sub)
			}
			if err := j.AppendRow(m, r); err != nil {
				// A torn local journal is survivable — the row is still
				// in memory and completes over the wire; only a worker
				// crash before the ack would cost a recompute.
				fmt.Fprintf(os.Stderr, "dist worker %s: journal append: %v\n", w.o.Name, err)
			}
		},
	}
	// Observer wiring only when a sink exists: the nil-observer fast
	// path in the sweep executor stays untouched otherwise.
	if w.o.Metrics != nil || w.o.Trace != nil {
		tel := sweep.NewTelemetry(w.o.Metrics, w.o.Trace)
		tel.SetSpanContext(rowSC)
		tel.SetFlight(w.o.Flight)
		opts.Observer = tel
	}
	m, _, err := sweep.Resume(ctx, []*kernel.Kernel{k}, space, opts, j.Prior())
	if err != nil {
		return nil, 0, err
	}
	r := m.Row(k.Name)
	if r < 0 || !m.RowComplete(r) {
		return nil, 0, fmt.Errorf("dist: row %s incomplete after sweep", k.Name)
	}
	return m, r, nil
}

// tamperRow is the injected lie: one cell's throughput nudged by one
// part in 1024 — small enough to stay positive, finite and
// plausible (it sails through validatePlanes), large enough to change
// the float64 bit pattern and therefore the digest. Which cell is
// chosen by the injector's sub-roll, deterministically.
func tamperRow(m *sweep.Matrix, r int, sub uint64) {
	c := int(sub % uint64(m.Space.Size()))
	m.Throughput[r][c] *= 1 + 1.0/1024
}

// renewLoop renews the lease every interval until the row context
// ends; a fenced (409) renewal cancels the row.
func (w *Worker) renewLoop(ctx context.Context, lease *Lease, leaseSC obs.SpanContext, every time.Duration, cancel context.CancelFunc) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		start := time.Now()
		var resp renewResponse
		status, code, err := w.post(ctx, "/v1/dist/renew",
			renewRequest{Job: lease.Job, Row: lease.Row, Epoch: lease.Epoch,
				Term: lease.Term, Worker: w.o.Name}, &resp)
		d := time.Since(start)
		if w.hRenew != nil && err == nil {
			w.hRenew.Observe(d.Seconds())
		}
		if tw := w.o.Trace; tw != nil && err == nil {
			tw.CompleteSpan("renew", "dist", 0,
				obs.SpanContext{TraceID: leaseSC.TraceID}, leaseSC.SpanID, start, d, map[string]any{
					"job": lease.Job, "row": lease.Row, "worker": w.o.Name, "status": status})
		}
		switch {
		case err != nil:
			// Dropped/delayed renewals are exactly what the TTL slack
			// absorbs; rotate in case the coordinator is gone and keep
			// trying on the next tick.
			w.rotate()
		case status == http.StatusConflict && code == "deposed",
			status == http.StatusServiceUnavailable:
			// The coordinator we renewed against is deposed (or is a
			// standby): the lease itself may still be live on the new
			// primary — it recovered our grant, term and epoch from the
			// replicated ledger — so rotate and renew there instead of
			// abandoning the row.
			w.rotate()
		case status == http.StatusConflict:
			if w.mLost != nil {
				w.mLost.Inc()
			}
			if fr := w.o.Flight; fr != nil {
				fr.Record("lease.lost", map[string]any{
					"job": lease.Job, "row": lease.Row, "epoch": lease.Epoch, "worker": w.o.Name})
			}
			cancel()
			return
		case resp.Done:
			return
		}
	}
}

// completeWithRetry reports an OK row until the coordinator acks it
// or fences it. Dropped responses are retried — the server-side
// duplicate check makes that safe. Every 4xx is a give-up: a 409
// means the lease was stolen (or this worker was quarantined) and a
// 400 means the attestation was rejected — resending the identical
// payload cannot change either verdict.
func (w *Worker) completeWithRetry(ctx context.Context, req completeRequest) bool {
	backoff := 5 * time.Millisecond
	for {
		var resp completeResponse
		status, code, err := w.post(ctx, "/v1/dist/complete", req, &resp)
		switch {
		case err == nil && status == http.StatusOK:
			return true
		case err == nil && status == http.StatusConflict && code == "deposed":
			// The coordinator lost its term mid-row; the promoted one
			// recovered our grant from the replicated ledger and will
			// accept this complete. Rotate and retry.
			w.rotate()
		case err == nil && status == http.StatusConflict:
			if w.mLost != nil {
				w.mLost.Inc()
			}
			return false
		case err == nil && (status == http.StatusNotFound || status == http.StatusBadRequest):
			return false
		case err != nil:
			w.rotate()
		}
		if !sleepCtx(ctx, backoff) {
			return false
		}
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// post sends one JSON request and decodes a JSON response into out on
// success; on an error status it decodes the errorBody envelope
// instead and returns its machine code ("stale-epoch",
// "version-mismatch", "quarantined", "bad-attestation"), best-effort.
// Injected network faults surface here as transport errors.
func (w *Worker) post(ctx context.Context, path string, body, out any) (int, string, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, "", err
	}
	base := w.o.Peers[int(uint32(w.peer.Load()))%len(w.o.Peers)]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(b))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		if errors.Is(err, fault.ErrDroppedResponse) {
			return 0, "", fault.ErrDroppedResponse
		}
		return 0, "", err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= http.StatusBadRequest {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb) //nolint:errcheck // code is advisory
		return resp.StatusCode, eb.Code, nil
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode == http.StatusOK {
			return resp.StatusCode, "", fmt.Errorf("dist: decoding %s response: %w", path, err)
		}
	}
	return resp.StatusCode, "", nil
}
