package dist

// The coordinator-failover chaos soak: this PR's headline deliverable.
//
// The scripted disaster, end to end:
//
//  1. a primary coordinator runs a sweep with three fault-injected
//     child-process workers while a warm standby tails its lease
//     ledger over a replication link that itself suffers seeded
//     delays and partition windows;
//  2. mid-sweep — at least two rows done, the rest in flight — the
//     primary is crashed without ceremony;
//  3. the standby promotes after the missed-heartbeat deadline (its
//     replication client is still partition-prone during promotion)
//     and the workers re-join it through peer rotation with jittered
//     backoff, finishing the sweep under the new term;
//  4. the deposed primary limps back from its own directory, probes
//     its peer list, finds a newer term live, and is fenced with
//     ErrDeposed before it can serve a single lease;
//  5. the promoted coordinator's ledger audit proves terms increased
//     monotonically with no record written under a stale term
//     (no-two-live-primaries), every row completed exactly once, and
//     the merged matrix is byte-identical to a single-node run.
//
// Runs short by default; GPUSCALE_SOAK_MS extends the post-promotion
// worker-kill chaos window and GPUSCALE_FAULT_SEED replays a failure.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/kernel"
	"gpuscale/internal/sweep"
)

func TestChaosSoakFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process soak skipped in -short mode")
	}
	seed := time.Now().UnixNano()
	if s, err := strconv.ParseInt(os.Getenv("GPUSCALE_FAULT_SEED"), 10, 64); err == nil {
		seed = s
	}
	t.Logf("chaos seed: %d (replay with GPUSCALE_FAULT_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	chaosWindow := 1 * time.Second
	if ms, err := strconv.Atoi(os.Getenv("GPUSCALE_SOAK_MS")); err == nil && ms > 0 {
		chaosWindow = time.Duration(ms) * time.Millisecond
	}

	// A bigger job than the other soaks: the crash must land mid-sweep
	// after the standby's cursor has caught up, so the sweep needs to
	// outlive that gate by a comfortable margin.
	job := soakJob(t)
	for i := 8; i < 16; i++ {
		job.Kernels = append(job.Kernels, kernel.New("soak", "p", fmt.Sprintf("k%02d", i)).
			Geometry(64+64*i, 256).Compute(10000+3000*i, 100).MustBuild())
	}
	want := singleNodeCanonical(t, job)
	root := t.TempDir()
	primaryDir := root + "/primary"

	p := startCoordWith(t, primaryDir, "127.0.0.1:0", job, CoordinatorOptions{ID: "primary-1"})
	url1 := "http://" + p.addr

	// The standby's address is bound before any worker starts so the
	// whole fleet knows both peers from birth.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url2 := "http://" + ln2.Addr().String()

	// The replication link is itself unreliable: seeded delays plus
	// partition windows, live through sync, tail, and promotion.
	repFaults := fault.Injector{
		DelayRate: 0.2, Delay: 2 * time.Millisecond,
		PartitionRate: 0.03, PartitionFor: 100 * time.Millisecond,
		Seed: seed + 7919,
	}
	sb, err := NewStandby(root+"/standby", StandbyOptions{
		ID:      "standby-1",
		Primary: url1,
		Client: &http.Client{
			Transport: repFaults.WrapTransport(nil),
			Timeout:   5 * time.Second,
		},
		PollEvery: 20 * time.Millisecond,
		// Must clear the tail long-poll window (500ms server-side) plus
		// a partition window with margin, or an idle-but-healthy
		// primary reads as silent and the standby promotes early.
		PromoteAfter: 1200 * time.Millisecond,
		Coordinator:  CoordinatorOptions{ID: "standby-1"},
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The standby's address serves "not-primary" refusals until
	// promotion swaps the promoted coordinator's handler in — the same
	// shape gpuscaled -standby uses.
	var handler atomic.Value
	handler.Store(http.Handler(sb.Handler()))
	srv2 := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})}
	go srv2.Serve(ln2)
	defer srv2.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	promotedCh := make(chan *Coordinator, 1)
	runErrCh := make(chan error, 1)
	go func() {
		c, err := sb.Run(ctx)
		if err != nil {
			runErrCh <- err
			return
		}
		promotedCh <- c // nil if ctx ended first
	}()

	peersEnv := []string{
		"GPUSCALE_DIST_PEERS=" + url1 + "," + url2,
		"GPUSCALE_DIST_PARTITION_RATE=0.03",
	}
	const nWorkers = 3
	workers := make([]*workerProc, nWorkers)
	workerDirs := make([]string, nWorkers)
	respawns := 0
	for i := range workers {
		workerDirs[i] = fmt.Sprintf("%s/w%d", root, i)
		workers[i] = spawnWorker(t, url1, workerDirs[i], fmt.Sprintf("w%d", i),
			seed+int64(i), peersEnv...)
	}
	defer func() {
		for _, w := range workers {
			w.kill()
		}
	}()

	// Phase 1: run until the sweep is demonstrably mid-flight (at
	// least two rows done, not all), the standby has synced, and its
	// cursor covers every frame published so far — so the crash
	// leaves the replica holding everything the fleet was acked for —
	// then crash the primary, abruptly and for good.
	midSweep := func() bool {
		latest := p.coord.repl.latest()
		st, ok := p.coord.Status(job.Name)
		return ok && st.Done >= 2 && !st.Complete && sb.Term() > 0 &&
			sb.Status().Cursor >= latest
	}
	deadline := time.Now().Add(60 * time.Second)
	for !midSweep() {
		if time.Now().After(deadline) {
			st, _ := p.coord.Status(job.Name)
			t.Fatalf("sweep never reached mid-flight: %+v standby term %d (seed %d)",
				st, sb.Term(), seed)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stAtCrash, _ := p.coord.Status(job.Name)
	p.crash()
	t.Logf("primary crashed at %d/%d rows done", stAtCrash.Done, stAtCrash.Rows)

	// Phase 2: the standby must notice the silence and promote itself
	// — through its own partition-prone replication client.
	var pc *Coordinator
	select {
	case pc = <-promotedCh:
		if pc == nil {
			t.Fatalf("standby run ended without promoting (seed %d)", seed)
		}
	case err := <-runErrCh:
		t.Fatalf("standby run failed: %v (seed %d)", err, seed)
	case <-time.After(60 * time.Second):
		t.Fatalf("standby never promoted after primary crash (seed %d)", seed)
	}
	defer pc.Close()
	handler.Store(http.Handler(pc.Handler()))
	t.Logf("standby promoted at term %d", pc.Term())

	// Phase 3: keep the partitioned fleet under worker-kill chaos
	// while it re-joins the promoted primary and finishes the sweep.
	complete := func() bool {
		st, ok := pc.Status(job.Name)
		return ok && st.Complete
	}
	chaosEnd := time.Now().Add(chaosWindow)
	workerKills := 0
	for time.Now().Before(chaosEnd) && !complete() {
		time.Sleep(time.Duration(50+rng.Intn(120)) * time.Millisecond)
		i := rng.Intn(nWorkers)
		workers[i].kill()
		workerKills++
		respawns++
		workers[i] = spawnWorker(t, url1, workerDirs[i], fmt.Sprintf("w%d", i),
			seed+int64(1000*respawns+i), peersEnv...)
	}
	t.Logf("post-promotion chaos: %d worker kills", workerKills)

	deadline = time.Now().Add(90 * time.Second)
	for !complete() {
		if time.Now().After(deadline) {
			st, _ := pc.Status(job.Name)
			t.Fatalf("fleet never converged on the promoted primary: %+v (seed %d)", st, seed)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, w := range workers {
		w.kill()
	}

	// Phase 4: the deposed primary limps back from its own directory
	// with the standby in its peer list. The initial probe must fence
	// it with ErrDeposed before it serves anything.
	old, err := NewCoordinator(primaryDir, CoordinatorOptions{
		ID:    "primary-1",
		Peers: []string{url2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if err := old.StartHA(ctx); !errors.Is(err, ErrDeposed) {
		t.Fatalf("deposed primary restart: want ErrDeposed from StartHA, got %v (seed %d)", err, seed)
	}
	select {
	case <-old.Deposed():
	default:
		t.Fatalf("deposed primary's Deposed channel must be closed (seed %d)", seed)
	}
	if _, err := old.acquire(acq("w-late")); !errors.Is(err, ErrDeposed) {
		t.Fatalf("deposed primary must refuse leases: %v (seed %d)", err, seed)
	}

	// Phase 5a: byte-identity — the promoted coordinator's matrix and
	// journal match the single-node run exactly.
	m, ok := pc.Matrix(job.Name)
	if !ok {
		t.Fatalf("complete job must expose its matrix (seed %d)", seed)
	}
	got, err := sweep.CanonicalJournalBytes(m, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("promoted coordinator matrix differs from single-node run (seed %d)", seed)
	}
	raw, err := os.ReadFile(pc.JournalPath(job.Name))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(raw, []byte{'\n'}); lines != 2+len(job.Kernels) {
		t.Fatalf("promoted journal has %d lines, want %d — a row completed twice across the failover (seed %d)",
			lines, 2+len(job.Kernels), seed)
	}

	// Phase 5b: the ledger that survived replication + promotion must
	// audit clean — terms strictly monotonic, every record written
	// under the term current at its position, exactly one live
	// complete per row.
	recs, err := ReadLedger(pc.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditLedger(recs)
	if err != nil {
		t.Fatalf("promoted ledger audit: %v (seed %d)", err, seed)
	}
	if len(audit.Terms) < 2 {
		t.Fatalf("failover ledger should record both terms, got %d term records (seed %d)",
			len(audit.Terms), seed)
	}
	for i := 1; i < len(audit.Terms); i++ {
		if audit.Terms[i].Term <= audit.Terms[i-1].Term {
			t.Fatalf("terms not monotonic: %d then %d (seed %d)",
				audit.Terms[i-1].Term, audit.Terms[i].Term, seed)
		}
	}
	// The journal is the source of truth for done-ness; a ledger
	// complete is best-effort audit, and a crash that cuts replication
	// between a row's journal frame and its complete frame legally
	// loses that one record (the journal line count above is the
	// exactly-once proof). So: never MORE completes than rows, at
	// least the rows done before the crash (the cursor gate pulled
	// their frames), and work visibly landed under both terms — the
	// failover carried in-flight work rather than redoing everything.
	if audit.Completes > len(job.Kernels) {
		t.Fatalf("%d live completes for %d rows — a row completed twice (seed %d)",
			audit.Completes, len(job.Kernels), seed)
	}
	if audit.Completes < 2 {
		t.Fatalf("replica lost pre-crash completes: %d in ledger, %d done at crash (seed %d)",
			audit.Completes, stAtCrash.Done, seed)
	}
	oldTerm, newTerm := audit.Terms[0].Term, audit.Terms[len(audit.Terms)-1].Term
	byTerm := map[uint64]int{}
	for _, r := range recs {
		if r.Kind == "complete" {
			byTerm[r.Term]++
		}
	}
	if byTerm[oldTerm] == 0 || byTerm[newTerm] == 0 {
		t.Fatalf("completes by term %v: want work under both term %d and term %d (seed %d)",
			byTerm, oldTerm, newTerm, seed)
	}

	// Phase 5c: the merged worker journals reproduce the same bytes.
	var repaired []string
	for i, dir := range workerDirs {
		path := dir + "/" + sanitize(job.Name) + ".journal"
		if _, err := os.Stat(path); err != nil {
			continue
		}
		j, err := sweep.OpenJournal(path, job.Space)
		if err != nil {
			t.Fatalf("repairing worker %d journal: %v (seed %d)", i, err, seed)
		}
		j.Close()
		repaired = append(repaired, path)
	}
	merged, err := sweep.MergeJournals(job.Space, repaired...)
	if err != nil {
		t.Fatalf("merging worker journals: %v (seed %d)", err, seed)
	}
	mb, err := sweep.CanonicalJournalBytes(merged, m.Kernels)
	if err != nil {
		t.Fatalf("merged journals incomplete: %v (seed %d)", err, seed)
	}
	if !bytes.Equal(want, mb) {
		t.Fatalf("merged worker journals differ from single-node run (seed %d)", seed)
	}
}
