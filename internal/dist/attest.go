package dist

// The integrity plane's identity half: who is allowed to compute at
// all. Fail-stop faults (PRs 6-7) are survived by leases and
// journals; a byzantine worker — stale binary, miscompiled engine,
// bit-flipped memory — needs to be kept out (the handshake) or caught
// in the act (attestation + sampled re-verification, in
// coordinator.go).
//
// The handshake has two factors. ProtoVersion names the wire
// protocol, so a binary from before (or after) an incompatible
// protocol change is fenced with a typed 409 instead of computing
// rows the coordinator will misinterpret. EngineFingerprint goes
// deeper: it hashes the float64 bit patterns the local simulator
// engines actually produce on a fixed probe, so two binaries that
// speak the same protocol but compute different numbers — a stale
// build, a different rounding under a miscompile, a patched engine —
// disagree on the fingerprint and never mix rows in one matrix.
// Byte-identity of the merged journal is the repo's north star; the
// fingerprint is that invariant checked at admission time instead of
// merge time.

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// ProtoVersion names the lease protocol this binary speaks. Workers
// send it on every acquire; a mismatch — including the empty string a
// pre-attestation binary sends — is fenced with a typed 409 before
// any work is granted. /3 added coordinator terms to every lease,
// renew and complete: a /2 binary would drop the second fencing
// factor, so it must not mix rows with an HA fleet.
const ProtoVersion = "gpuscale-dist/3"

var (
	fpOnce sync.Once
	fpVal  string
)

// EngineFingerprint returns a hex digest of what this binary's
// simulator engines compute: every engine family is evaluated on a
// fixed probe kernel at the corner configurations of the study space,
// and the exact float64 bit patterns are hashed together with
// ProtoVersion. Two processes share a fingerprint iff their engines
// are bit-for-bit interchangeable — the precondition for mixing their
// rows in one byte-identical matrix. Computed once per process; the
// probe costs a few engine evaluations.
func EngineFingerprint() string {
	fpOnce.Do(func() {
		h := fnv.New64a()
		io.WriteString(h, ProtoVersion)
		probe := kernel.New("dist", "attest", "fingerprint-probe").
			Geometry(192, 256).Compute(12000, 100).MustBuild()
		configs := []hw.Config{
			{CUs: hw.MinCUs, CoreClockMHz: 300, MemClockMHz: 150},
			{CUs: hw.MaxCUs, CoreClockMHz: 1000, MemClockMHz: 1250},
		}
		engines := []func(*kernel.Kernel, hw.Config) (gcn.Result, error){
			gcn.Simulate, gcn.SimulateDetailed, gcn.SimulatePipeline, gcn.SimulateWave,
		}
		for _, cfg := range configs {
			for _, eng := range engines {
				r, err := eng(probe, cfg)
				if err != nil {
					fmt.Fprintf(h, "|err=%v", err)
					continue
				}
				fmt.Fprintf(h, "|%016x|%016x|%d",
					math.Float64bits(r.Throughput), math.Float64bits(r.TimeNS), r.Bound)
			}
		}
		fpVal = fmt.Sprintf("%016x", h.Sum64())
	})
	return fpVal
}

// verifySelected reports whether a row is in the job's re-verification
// sample. The selection is a pure function of (job seed, row,
// fraction) — splitmix64 over seed and row, thresholded — so every
// coordinator restart, and every operator re-deriving the sample
// offline, picks exactly the same rows. fraction <= 0 selects
// nothing; >= 1 selects everything.
func verifySelected(seed int64, row int, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	s := uint64(seed)*0x9e3779b97f4a7c15 + uint64(row) + 0x9e3779b97f4a7c15
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	s *= 0x94d049bb133111eb
	s ^= s >> 31
	return float64(s>>11)/(1<<53) < fraction
}
