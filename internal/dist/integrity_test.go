package dist

// Unit tests for the integrity plane: the version/fingerprint
// handshake, per-row attestation, sampled re-verification votes,
// strikes, quarantine, invalidation of a quarantined worker's
// unverified rows, and recovery of all of it from the ledger.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpuscale/internal/sweep"
)

// tamperedComplete is okComplete with one cell nudged the way a
// byzantine worker's tamperRow does — still plausible planes, and a
// digest that truthfully hashes the tampered values, so only
// independent re-execution can expose the lie.
func tamperedComplete(t *testing.T, l *Lease, worker string) completeRequest {
	t.Helper()
	req := okComplete(t, l, worker)
	req.Tput[0] *= 1 + 1.0/1024
	k, err := l.DecodeKernel()
	if err != nil {
		t.Fatal(err)
	}
	digest, err := sweep.RowPlanesDigest(k.Name, req.Tput, req.TimeNS, req.Bound)
	if err != nil {
		t.Fatal(err)
	}
	req.Digest = digest
	return req
}

// TestVersionHandshakeFencesOverHTTP: a worker speaking the wrong
// protocol (or no protocol at all — a pre-attestation binary sends
// the empty string) is fenced with a typed 409 before touching lease
// state, and a matching handshake is granted work.
func TestVersionHandshakeFencesOverHTTP(t *testing.T) {
	clk := newTestClock()
	c := newTestCoordinator(t, t.TempDir(), clk)
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(req acquireRequest) (int, errorBody) {
		t.Helper()
		b, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/v1/dist/lease", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb) //nolint:errcheck // only set on errors
		return resp.StatusCode, eb
	}

	// Old binary: empty proto and fingerprint.
	status, eb := post(acquireRequest{Worker: "old"})
	if status != http.StatusConflict || eb.Code != "version-mismatch" {
		t.Fatalf("pre-attestation acquire: status %d code %q, want 409 version-mismatch", status, eb.Code)
	}
	// Right protocol, wrong engine fingerprint (a stale build).
	status, eb = post(acquireRequest{Worker: "stale", Proto: ProtoVersion, Fingerprint: "deadbeef"})
	if status != http.StatusConflict || eb.Code != "version-mismatch" {
		t.Fatalf("wrong-fingerprint acquire: status %d code %q, want 409 version-mismatch", status, eb.Code)
	}
	if !strings.Contains(eb.Error, ProtoVersion) {
		t.Fatalf("fence error should name the coordinator's protocol: %q", eb.Error)
	}
	// A fenced worker never consumed lease state: a healthy handshake
	// still gets the first grant at epoch 1.
	l, err := c.acquire(acq("healthy"))
	if err != nil || l == nil || l.Epoch != 1 {
		t.Fatalf("healthy acquire after fences: %+v %v", l, err)
	}
	// In-process surface agrees with the HTTP one.
	if _, err := c.acquire(acquireRequest{Worker: "old"}); !errors.Is(err, errVersionMismatch) {
		t.Fatalf("direct acquire with bad handshake: %v", err)
	}
}

// TestBadAttestationRejected: a digest that does not hash the shipped
// planes is a 400-class refusal — the planes never reach the matrix,
// and the row stays completable.
func TestBadAttestationRejected(t *testing.T) {
	clk := newTestClock()
	c := newTestCoordinator(t, t.TempDir(), clk)
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}
	l, _ := c.acquire(acq("w1"))

	req := okComplete(t, l, "w1")
	req.Digest = "0000000000000000"
	if _, err := c.complete(req); !errors.Is(err, errBadAttest) {
		t.Fatalf("mismatched digest should be rejected as bad attestation, got %v", err)
	}
	st, _ := c.Status("j")
	if st.Done != 0 {
		t.Fatalf("rejected attestation must not mark the row done: %+v", st)
	}
	// The same worker retrying with a truthful attestation lands.
	if resp, err := c.complete(okComplete(t, l, "w1")); err != nil || resp.Duplicate {
		t.Fatalf("honest complete after rejected attestation: %+v %v", resp, err)
	}
}

// TestSampledRowSettlesByIndependentAgreement: with VerifyFraction 1
// the first complete is held as a vote (PendingVerify), the voter is
// blocked from re-acquiring its own row, and a second worker's
// matching digest settles the row verified.
func TestSampledRowSettlesByIndependentAgreement(t *testing.T) {
	clk := newTestClock()
	c, err := NewCoordinator(t.TempDir(), CoordinatorOptions{now: clk.now, VerifyFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 1)); err != nil {
		t.Fatal(err)
	}

	l1, _ := c.acquire(acq("w1"))
	resp, err := c.complete(okComplete(t, l1, "w1"))
	if err != nil || !resp.PendingVerify || resp.Verified {
		t.Fatalf("sampled first complete should be held pending: %+v %v", resp, err)
	}
	st, _ := c.Status("j")
	if st.Done != 0 || st.Verifying != 1 {
		t.Fatalf("pending row should count as verifying: %+v", st)
	}
	// The voter cannot verify itself while the grace window is open.
	if l, err := c.acquire(acq("w1")); err != nil || l != nil {
		t.Fatalf("voter re-acquiring its own pending row: %+v %v", l, err)
	}
	// An independent worker can, and its agreement settles the row.
	l2, err := c.acquire(acq("w2"))
	if err != nil || l2 == nil || l2.Row != l1.Row {
		t.Fatalf("independent worker should get the pending row: %+v %v", l2, err)
	}
	resp, err = c.complete(okComplete(t, l2, "w2"))
	if err != nil || !resp.Verified || resp.PendingVerify {
		t.Fatalf("agreeing second complete should settle verified: %+v %v", resp, err)
	}
	st, _ = c.Status("j")
	if !st.Complete || st.Verifying != 0 {
		t.Fatalf("settled job status: %+v", st)
	}
	if q := c.Quarantined(); len(q) != 0 {
		t.Fatalf("agreement must not quarantine anyone: %v", q)
	}
	recs, err := ReadLedger(c.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditLedger(recs)
	if err != nil {
		t.Fatalf("ledger audit: %v", err)
	}
	if audit.Verified != 1 || audit.Completes != 1 {
		t.Fatalf("audit should count one verified complete: %+v", audit)
	}
}

// TestSingleWorkerGraceSettlesUnverified: a one-worker fleet must not
// deadlock on its own verification sample — after 2xTTL with no
// independent voter, the same worker's re-executed matching digest is
// accepted, explicitly unverified.
func TestSingleWorkerGraceSettlesUnverified(t *testing.T) {
	clk := newTestClock()
	c, err := NewCoordinator(t.TempDir(), CoordinatorOptions{now: clk.now, VerifyFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddJob(testJob(t, "j", 1)); err != nil { // TTL 1s
		t.Fatal(err)
	}

	l1, _ := c.acquire(acq("solo"))
	if resp, err := c.complete(okComplete(t, l1, "solo")); err != nil || !resp.PendingVerify {
		t.Fatalf("first complete should be held: %+v %v", resp, err)
	}
	if l, _ := c.acquire(acq("solo")); l != nil {
		t.Fatal("grace window still open: solo must not re-acquire yet")
	}
	clk.advance(2 * time.Second)
	l2, err := c.acquire(acq("solo"))
	if err != nil || l2 == nil {
		t.Fatalf("grace elapsed: solo should re-acquire, got %+v %v", l2, err)
	}
	resp, err := c.complete(okComplete(t, l2, "solo"))
	if err != nil || resp.Verified || resp.PendingVerify {
		t.Fatalf("grace revote should settle unverified: %+v %v", resp, err)
	}
	st, _ := c.Status("j")
	if !st.Complete {
		t.Fatalf("job should be complete: %+v", st)
	}
}

// TestDissentStrikesAndQuarantines is the byzantine headline in
// miniature: a liar's vote loses to two agreeing honest workers, the
// liar is quarantined (live lease revoked, future calls rejected),
// and the fleet still converges to the single-node bytes.
func TestDissentStrikesAndQuarantines(t *testing.T) {
	clk := newTestClock()
	quarantined := make([]string, 0, 1)
	c, err := NewCoordinator(t.TempDir(), CoordinatorOptions{now: clk.now, VerifyFraction: 1,
		OnQuarantine: func(w string) { quarantined = append(quarantined, w) }})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := testJob(t, "j", 2)
	want := singleNodeCanonical(t, job)
	if err := c.AddJob(job); err != nil {
		t.Fatal(err)
	}

	// The liar votes a tampered digest on row 0, then takes (and holds)
	// a live lease on row 1.
	lr0, _ := c.acquire(acq("liar"))
	if resp, err := c.complete(tamperedComplete(t, lr0, "liar")); err != nil || !resp.PendingVerify {
		t.Fatalf("tampered vote should be held pending: %+v %v", resp, err)
	}
	lr1, err := c.acquire(acq("liar"))
	if err != nil || lr1 == nil || lr1.Row == lr0.Row {
		t.Fatalf("liar should lease the other row: %+v %v", lr1, err)
	}

	// First honest worker dissents from the liar; no agreement yet.
	h1r0, _ := c.acquire(acq("h1"))
	if h1r0 == nil || h1r0.Row != lr0.Row {
		t.Fatalf("h1 should get the pending row, got %+v", h1r0)
	}
	if resp, err := c.complete(okComplete(t, h1r0, "h1")); err != nil || !resp.PendingVerify {
		t.Fatalf("lone honest dissent should stay pending: %+v %v", resp, err)
	}
	// Second honest worker agrees with h1: the row settles verified and
	// the liar's dissenting vote is a proven lie — one strike, and at
	// the default threshold, quarantine.
	h2r0, _ := c.acquire(acq("h2"))
	if h2r0 == nil || h2r0.Row != lr0.Row {
		t.Fatalf("h2 should get the pending row, got %+v", h2r0)
	}
	resp, err := c.complete(okComplete(t, h2r0, "h2"))
	if err != nil || !resp.Verified {
		t.Fatalf("two agreeing honest workers should settle verified: %+v %v", resp, err)
	}

	if q := c.Quarantined(); len(q) != 1 || q[0] != "liar" {
		t.Fatalf("liar should be quarantined, got %v", q)
	}
	if len(quarantined) != 1 || quarantined[0] != "liar" {
		t.Fatalf("OnQuarantine hook saw %v", quarantined)
	}
	// Every surface rejects the quarantined worker.
	if _, err := c.acquire(acq("liar")); !errors.Is(err, errQuarantined) {
		t.Fatalf("quarantined acquire: %v", err)
	}
	if _, err := c.renew(renewRequest{Job: "j", Row: lr1.Row, Epoch: lr1.Epoch, Worker: "liar"}); !errors.Is(err, errQuarantined) {
		t.Fatalf("quarantined renew: %v", err)
	}
	if _, err := c.complete(okComplete(t, lr1, "liar")); !errors.Is(err, errQuarantined) {
		t.Fatalf("quarantined complete: %v", err)
	}

	// The liar's live lease on row 1 was revoked at quarantine: an
	// honest worker gets it immediately, without waiting out the TTL.
	h1r1, err := c.acquire(acq("h1"))
	if err != nil || h1r1 == nil || h1r1.Row != lr1.Row {
		t.Fatalf("revoked lease should re-grant immediately: %+v %v", h1r1, err)
	}
	if resp, err := c.complete(okComplete(t, h1r1, "h1")); err != nil || !resp.PendingVerify {
		t.Fatalf("row 1 first honest vote: %+v %v", resp, err)
	}
	h2r1, _ := c.acquire(acq("h2"))
	if h2r1 == nil || h2r1.Row != lr1.Row {
		t.Fatalf("h2 should get row 1, got %+v", h2r1)
	}
	if resp, err := c.complete(okComplete(t, h2r1, "h2")); err != nil || !resp.Verified {
		t.Fatalf("row 1 settlement: %+v %v", resp, err)
	}

	// Byte-identity survived the lie.
	assertMatrixCanonical(t, c, job, want)

	recs, err := ReadLedger(c.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditLedger(recs)
	if err != nil {
		t.Fatalf("ledger audit: %v", err)
	}
	if len(audit.Quarantines) != 1 {
		t.Fatalf("audit should name one quarantine, got %+v", audit.Quarantines)
	}
	q := audit.Quarantines[0]
	if q.Worker != "liar" || q.Job != "j" || q.Row != lr0.Row || q.Digest == "" {
		t.Fatalf("quarantine record should name worker, row and digest: %+v", q)
	}
	if len(audit.Strikes) != 1 || audit.Strikes[0].Worker != "liar" {
		t.Fatalf("audit strikes: %+v", audit.Strikes)
	}
}

// TestQuarantineInvalidatesUnverifiedRows: a quarantined worker's
// earlier unsampled (accepted-on-its-word) rows are retracted, zeroed
// and re-executed by healthy workers — so a lie that slipped past the
// sample still never reaches the final matrix.
func TestQuarantineInvalidatesUnverifiedRows(t *testing.T) {
	clk := newTestClock()
	// A seed whose 50% verification sample excludes row 0 but includes
	// row 1 — so the liar's row 0 is accepted unverified and its row 1
	// lie is caught by the sample.
	seed := splitSeed(t)
	c, err := NewCoordinator(t.TempDir(), CoordinatorOptions{now: clk.now, VerifyFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := testJob(t, "j", 2)
	job.Seed = seed
	want := singleNodeCanonical(t, job)
	if err := c.AddJob(job); err != nil {
		t.Fatal(err)
	}

	// Row 0 (unsampled): the tampered complete is accepted on the
	// liar's word alone.
	lr0, _ := c.acquire(acq("liar"))
	if lr0.Row != 0 {
		t.Fatalf("expected row 0 first, got %d", lr0.Row)
	}
	if resp, err := c.complete(tamperedComplete(t, lr0, "liar")); err != nil || resp.Verified || resp.PendingVerify {
		t.Fatalf("unsampled tampered complete should be accepted unverified: %+v %v", resp, err)
	}
	// Row 1 (sampled): the lie goes to a vote and loses to two honest
	// workers — quarantine, which retracts row 0.
	lr1, _ := c.acquire(acq("liar"))
	if resp, err := c.complete(tamperedComplete(t, lr1, "liar")); err != nil || !resp.PendingVerify {
		t.Fatalf("sampled tampered complete should be held: %+v %v", resp, err)
	}
	h1r1, _ := c.acquire(acq("h1"))
	if h1r1 == nil || h1r1.Row != 1 {
		t.Fatalf("h1 should get row 1, got %+v", h1r1)
	}
	if _, err := c.complete(okComplete(t, h1r1, "h1")); err != nil {
		t.Fatal(err)
	}
	h2r1, _ := c.acquire(acq("h2"))
	if h2r1 == nil || h2r1.Row != 1 {
		t.Fatalf("h2 should get row 1, got %+v", h2r1)
	}
	if resp, err := c.complete(okComplete(t, h2r1, "h2")); err != nil || !resp.Verified {
		t.Fatalf("row 1 settlement: %+v %v", resp, err)
	}

	if q := c.Quarantined(); len(q) != 1 || q[0] != "liar" {
		t.Fatalf("liar should be quarantined, got %v", q)
	}
	st, _ := c.Status("j")
	if st.Done != 1 || st.Verifying != 1 {
		t.Fatalf("row 0 should be retracted and pending again: %+v", st)
	}

	// Healthy workers re-execute the retracted row. The liar's seeded
	// claim dissents, so settlement still takes two honest voters.
	for _, w := range []string{"h1", "h2"} {
		l, err := c.acquire(acq(w))
		if err != nil || l == nil || l.Row != 0 {
			t.Fatalf("%s should get retracted row 0: %+v %v", w, l, err)
		}
		if _, err := c.complete(okComplete(t, l, w)); err != nil {
			t.Fatal(err)
		}
	}
	assertMatrixCanonical(t, c, job, want)

	recs, err := ReadLedger(c.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditLedger(recs)
	if err != nil {
		t.Fatalf("ledger audit: %v", err)
	}
	if len(audit.Invalidations) != 1 {
		t.Fatalf("audit should name one invalidation, got %+v", audit.Invalidations)
	}
	inv := audit.Invalidations[0]
	if inv.Job != "j" || inv.Row != 0 || inv.Worker != "liar" || inv.Digest == "" {
		t.Fatalf("invalidation should name the retracted row and claim: %+v", inv)
	}
}

// TestIntegrityPlaneRecoveredAcrossRestarts: open votes, strikes and
// quarantine membership all survive coordinator crashes — at every
// stage of a verification flow.
func TestIntegrityPlaneRecoveredAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	open := func() *Coordinator {
		t.Helper()
		c, err := NewCoordinator(dir, CoordinatorOptions{now: clk.now, VerifyFraction: 1})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	job := testJob(t, "j", 1) // TTL 1s
	want := singleNodeCanonical(t, job)

	// Stage 1: the liar's tampered vote, then crash.
	c := open()
	if err := c.AddJob(job); err != nil {
		t.Fatal(err)
	}
	lr, _ := c.acquire(acq("liar"))
	if resp, err := c.complete(tamperedComplete(t, lr, "liar")); err != nil || !resp.PendingVerify {
		t.Fatalf("tampered vote: %+v %v", resp, err)
	}
	c.Close()

	// Stage 2: the vote is restored; the voter stays blocked, an
	// independent worker dissents. Recovery conservatively re-extends
	// the liar's recovered grant by a fresh TTL from reopen time, so
	// wait it out before another worker can take the row.
	c = open()
	if err := c.AddJob(job); err != nil {
		t.Fatal(err)
	}
	clk.advance(1100 * time.Millisecond)
	if st, _ := c.Status("j"); st.Verifying != 1 {
		t.Fatalf("pending vote lost across restart: %+v", st)
	}
	if l, _ := c.acquire(acq("liar")); l != nil {
		t.Fatal("restored voter must stay blocked from its own row")
	}
	h1, err := c.acquire(acq("h1"))
	if err != nil || h1 == nil {
		t.Fatalf("independent worker should get the row: %+v %v", h1, err)
	}
	if resp, err := c.complete(okComplete(t, h1, "h1")); err != nil || !resp.PendingVerify {
		t.Fatalf("honest dissent should stay pending: %+v %v", resp, err)
	}
	c.Close()

	// Stage 3: both votes restored; a second honest worker settles the
	// row, which proves the liar's restored vote a lie — strike and
	// quarantine, all from replayed state.
	c = open()
	if err := c.AddJob(job); err != nil {
		t.Fatal(err)
	}
	clk.advance(1100 * time.Millisecond)
	h2, err := c.acquire(acq("h2"))
	if err != nil || h2 == nil {
		t.Fatalf("h2 acquire: %+v %v", h2, err)
	}
	if resp, err := c.complete(okComplete(t, h2, "h2")); err != nil || !resp.Verified {
		t.Fatalf("settlement from restored votes: %+v %v", resp, err)
	}
	if q := c.Quarantined(); len(q) != 1 || q[0] != "liar" {
		t.Fatalf("quarantine from restored vote: %v", q)
	}
	c.Close()

	// Stage 4: quarantine membership itself is durable.
	c = open()
	defer c.Close()
	if err := c.AddJob(job); err != nil {
		t.Fatal(err)
	}
	if q := c.Quarantined(); len(q) != 1 || q[0] != "liar" {
		t.Fatalf("quarantine lost across restart: %v", q)
	}
	if _, err := c.acquire(acq("liar")); !errors.Is(err, errQuarantined) {
		t.Fatalf("restored quarantine should fence acquires: %v", err)
	}
	assertMatrixCanonical(t, c, job, want)
	recs, err := ReadLedger(c.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AuditLedger(recs); err != nil {
		t.Fatalf("ledger audit after restarts: %v", err)
	}
}

// TestVerifySelectedProperties: the sample is deterministic, honours
// the 0/1 endpoints, is monotone in the fraction, and lands near the
// requested rate.
func TestVerifySelectedProperties(t *testing.T) {
	for row := 0; row < 100; row++ {
		if verifySelected(42, row, 0) {
			t.Fatalf("fraction 0 selected row %d", row)
		}
		if !verifySelected(42, row, 1) {
			t.Fatalf("fraction 1 skipped row %d", row)
		}
		if verifySelected(42, row, 0.3) != verifySelected(42, row, 0.3) {
			t.Fatalf("selection not deterministic at row %d", row)
		}
		if verifySelected(42, row, 0.2) && !verifySelected(42, row, 0.6) {
			t.Fatalf("selection not monotone in fraction at row %d", row)
		}
	}
	const n = 20000
	picked := 0
	for row := 0; row < n; row++ {
		if verifySelected(7, row, 0.25) {
			picked++
		}
	}
	if rate := float64(picked) / n; rate < 0.22 || rate > 0.28 {
		t.Fatalf("sample rate %.3f far from requested 0.25", rate)
	}
}

// splitSeed finds a job seed whose 50% verification sample excludes
// row 0 and includes row 1 — the shape the invalidation test needs.
func splitSeed(t *testing.T) int64 {
	t.Helper()
	for s := int64(0); s < 10000; s++ {
		if !verifySelected(s, 0, 0.5) && verifySelected(s, 1, 0.5) {
			return s
		}
	}
	t.Fatal("no splitting seed in range")
	return 0
}

// assertMatrixCanonical checks a complete job's matrix renders to the
// given canonical journal bytes.
func assertMatrixCanonical(t *testing.T, c *Coordinator, job Job, want []byte) {
	t.Helper()
	m, ok := c.Matrix(job.Name)
	if !ok {
		t.Fatal("job should be complete")
	}
	got, err := sweep.CanonicalJournalBytes(m, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("matrix differs from single-node run")
	}
}

// TestAuditLedgerIntegrityInvariants drives the offline auditor over
// hand-built ledgers, one rule at a time: the integrity-plane record
// kinds must obey grant/complete causality, quarantine must be
// terminal, and only a deliberate early release excuses an epoch
// overlap.
func TestAuditLedgerIntegrityInvariants(t *testing.T) {
	grant := func(row int, epoch uint64, worker string, granted, expiry int64, early bool) LedgerRecord {
		return LedgerRecord{Kind: "grant", Job: "j", Row: row, Epoch: epoch, Worker: worker,
			GrantedNS: granted, ExpiryNS: expiry, Early: early}
	}
	rec := func(kind string, row int, epoch uint64, worker string) LedgerRecord {
		return LedgerRecord{Kind: kind, Job: "j", Row: row, Epoch: epoch, Worker: worker, Digest: "d"}
	}
	cases := []struct {
		name string
		recs []LedgerRecord
		want string // substring of the audit error; "" means must pass
	}{
		{"early release excuses overlap", []LedgerRecord{
			grant(0, 1, "a", 0, 100, false),
			grant(0, 2, "b", 50, 150, true),
			rec("complete", 0, 2, "b"),
		}, ""},
		{"overlap without early rejected", []LedgerRecord{
			grant(0, 1, "a", 0, 100, false),
			grant(0, 2, "b", 50, 150, false),
		}, "before epoch"},
		{"complete twice without invalidate", []LedgerRecord{
			grant(0, 1, "a", 0, 100, false),
			rec("complete", 0, 1, "a"),
			rec("complete", 0, 1, "a"),
		}, "completed twice"},
		{"invalidate then recomplete passes", []LedgerRecord{
			grant(0, 1, "a", 0, 100, false),
			rec("complete", 0, 1, "a"),
			rec("quarantine", 0, 1, "a"),
			rec("invalidate", 0, 1, "a"),
			grant(0, 2, "b", 50, 150, true),
			rec("complete", 0, 2, "b"),
		}, ""},
		{"invalidate of a never-completed row", []LedgerRecord{
			grant(0, 1, "a", 0, 100, false),
			rec("invalidate", 0, 1, "a"),
		}, "invalidated while not complete"},
		{"attest under never-granted epoch", []LedgerRecord{
			rec("attest", 0, 3, "a"),
		}, "never-granted"},
		{"attest by quarantined worker", []LedgerRecord{
			grant(0, 1, "a", 0, 100, false),
			rec("quarantine", 0, 1, "a"),
			rec("attest", 0, 1, "a"),
		}, "attested by quarantined"},
		{"complete by quarantined worker", []LedgerRecord{
			grant(0, 1, "a", 0, 100, false),
			rec("quarantine", 0, 1, "a"),
			rec("complete", 0, 1, "a"),
		}, "completed by quarantined"},
		{"strike without worker", []LedgerRecord{
			{Kind: "strike", Job: "j"},
		}, "strike record without a worker"},
		{"quarantine without worker", []LedgerRecord{
			{Kind: "quarantine", Job: "j"},
		}, "quarantine record without a worker"},
		{"unknown kind", []LedgerRecord{
			{Kind: "bribe", Job: "j"},
		}, "unknown record kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := AuditLedger(tc.recs)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("audit should pass: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("audit error %v should contain %q", err, tc.want)
			}
		})
	}
}
