package dist

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/obs"
	"gpuscale/internal/sweep"
)

// singleNodeCanonical runs the job on one node and renders its
// canonical journal — the byte-identity baseline.
func singleNodeCanonical(t *testing.T, job Job) []byte {
	t.Helper()
	m, rep, err := sweep.RunContext(context.Background(), job.Kernels, job.Space, sweep.Options{
		Workers: 2, NoiseStdDev: job.NoiseStdDev, Seed: job.Seed, Engine: job.Engine})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("baseline incomplete: %s", rep.Summary())
	}
	var names []string
	names = append(names, m.Kernels...)
	b, err := sweep.CanonicalJournalBytes(m, names)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runFleet drives a coordinator plus n in-process workers until the
// job completes, then returns the coordinator and the worker journal
// paths.
func runFleet(t *testing.T, job Job, n int, clientFor func(i int) *http.Client) (*Coordinator, []string) {
	t.Helper()
	dir := t.TempDir()
	coord, err := NewCoordinator(dir+"/coord", CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	if err := coord.AddJob(job); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var paths []string
	for i := 0; i < n; i++ {
		client := srv.Client()
		if clientFor != nil {
			client = clientFor(i)
		}
		w, err := NewWorker(WorkerOptions{
			Name: string(rune('A' + i)), Coordinator: srv.URL,
			Dir: dir + "/w" + string(rune('A'+i)), Client: client,
			SweepWorkers: 2, Retries: 2, IdleSleep: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, w.JournalPath(job.Name))
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer w.Close()
			w.Run(ctx)
		}()
	}
	deadline := time.After(60 * time.Second)
	for {
		if st, ok := coord.Status(job.Name); ok && st.Complete {
			break
		}
		select {
		case <-deadline:
			cancel()
			wg.Wait()
			st, _ := coord.Status(job.Name)
			t.Fatalf("fleet never finished: %+v", st)
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	wg.Wait()
	return coord, paths
}

// TestFleetMatchesSingleNode: two clean workers produce a coordinator
// journal byte-identical to the single-node run, and the merged
// worker journals agree.
func TestFleetMatchesSingleNode(t *testing.T) {
	job := testJob(t, "fleet", 4)
	want := singleNodeCanonical(t, job)

	coord, workerJournals := runFleet(t, job, 2, nil)

	m, ok := coord.Matrix(job.Name)
	if !ok {
		t.Fatal("complete job should expose its matrix")
	}
	got, err := sweep.CanonicalJournalBytes(m, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("coordinator matrix differs from single-node run")
	}

	// The coordinator's own journal re-reads to the same bytes.
	jm, err := sweep.ReadJournal(coord.JournalPath(job.Name), job.Space)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := sweep.CanonicalJournalBytes(jm, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, jb) {
		t.Fatal("coordinator journal differs from single-node run")
	}

	// Merging the worker journals reproduces it again.
	merged, err := sweep.MergeJournals(job.Space, workerJournals...)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := sweep.CanonicalJournalBytes(merged, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, mb) {
		t.Fatal("merged worker journals differ from single-node run")
	}
}

// TestFleetUnderNetworkFaults: dropped acks, duplicated deliveries
// and delays do not break exactly-once or byte-identity.
func TestFleetUnderNetworkFaults(t *testing.T) {
	job := testJob(t, "chaos", 5)
	want := singleNodeCanonical(t, job)

	reg := obs.NewRegistry()
	coordDir := t.TempDir()
	coord, err := NewCoordinator(coordDir, CoordinatorOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.AddJob(job); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		in := fault.Injector{DropResponseRate: 0.15, DuplicateRate: 0.15, DelayRate: 0.2,
			Delay: 2 * time.Millisecond, Seed: int64(100 + i)}
		w, err := NewWorker(WorkerOptions{
			Name: string(rune('A' + i)), Coordinator: srv.URL,
			Dir:          t.TempDir(),
			Client:       &http.Client{Transport: in.WrapTransport(nil), Timeout: 10 * time.Second},
			SweepWorkers: 2, Retries: 2, IdleSleep: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer w.Close()
			w.Run(ctx)
		}()
	}
	deadline := time.After(60 * time.Second)
	for {
		if st, ok := coord.Status(job.Name); ok && st.Complete {
			break
		}
		select {
		case <-deadline:
			st, _ := coord.Status(job.Name)
			t.Fatalf("chaos fleet never finished: %+v", st)
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	wg.Wait()

	m, _ := coord.Matrix(job.Name)
	got, err := sweep.CanonicalJournalBytes(m, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("chaos fleet result differs from single-node run")
	}
	recs, err := ReadLedger(coord.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AuditLedger(recs); err != nil {
		t.Fatalf("ledger audit after network chaos: %v", err)
	}
	// Exactly-once at the ledger level: one complete per row.
	completes := 0
	for _, r := range recs {
		if r.Kind == "complete" {
			completes++
		}
	}
	if completes != len(job.Kernels) {
		t.Fatalf("want %d complete records, got %d", len(job.Kernels), completes)
	}
}

// TestWorkerServesReleasedRowFromJournal: a worker that finished a
// row but lost the lease (or the ack) serves the re-lease from its
// journal instead of recomputing.
func TestWorkerServesReleasedRowFromJournal(t *testing.T) {
	job := testJob(t, "rejournal", 1)
	dir := t.TempDir()
	coordA, err := NewCoordinator(dir+"/c", CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coordA.Close()
	if err := coordA.AddJob(job); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coordA.Handler())
	defer srv.Close()

	w, err := NewWorker(WorkerOptions{Name: "W", Coordinator: srv.URL, Dir: dir + "/w",
		Client: srv.Client(), SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	lease, err := w.acquire(context.Background())
	if err != nil || lease == nil {
		t.Fatalf("acquire: %v", err)
	}
	m1, r1, err := w.executeRow(context.Background(), lease, obs.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	// Second execution of the same lease must come from the journal:
	// identical planes, and Resume's Skipped accounting is invisible
	// here, so prove it by byte-equality of the rows.
	m2, r2, err := w.executeRow(context.Background(), lease, obs.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < job.Space.Size(); c++ {
		if m1.Throughput[r1][c] != m2.Throughput[r2][c] {
			t.Fatal("re-executed row differs from journaled row")
		}
	}
}
