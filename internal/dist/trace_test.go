package dist

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gpuscale/internal/obs"
)

// tracedFleet runs a coordinator plus n workers, each process with its
// own TraceWriter (as separate OS processes would have) and each
// worker with a file-backed flight recorder, until the job completes
// or ctx fires. It returns the per-process event streams and the
// flight-ring paths.
func tracedFleet(t *testing.T, job Job, n int) (coordEvs []obs.Event, workerEvs [][]obs.Event, flightPaths []string, coord *Coordinator) {
	t.Helper()
	dir := t.TempDir()

	var coordBuf bytes.Buffer
	coordTW := obs.NewTraceWriter(&coordBuf)
	coordTW.SetProcess("coordinator")

	coord, err := NewCoordinator(dir+"/coord", CoordinatorOptions{Trace: coordTW})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	if err := coord.AddJob(job); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	bufs := make([]*bytes.Buffer, n)
	for i := 0; i < n; i++ {
		name := string(rune('A' + i))
		bufs[i] = &bytes.Buffer{}
		tw := obs.NewTraceWriter(bufs[i])
		tw.SetProcess(name)
		fp := filepath.Join(dir, "flight-"+name+".ring")
		fr, err := obs.OpenFlightRecorder(fp, 128, obs.DefaultFlightSlotSize)
		if err != nil {
			t.Fatal(err)
		}
		flightPaths = append(flightPaths, fp)
		w, err := NewWorker(WorkerOptions{
			Name: name, Coordinator: srv.URL, Dir: dir + "/w" + name,
			Client: srv.Client(), SweepWorkers: 2, Retries: 2,
			IdleSleep: 5 * time.Millisecond,
			Trace:     tw, Flight: fr,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer fr.Close()
			defer tw.Flush()
			defer w.Close()
			w.Run(ctx)
		}()
	}
	deadline := time.After(60 * time.Second)
	for {
		if st, ok := coord.Status(job.Name); ok && st.Complete {
			break
		}
		select {
		case <-deadline:
			cancel()
			wg.Wait()
			st, _ := coord.Status(job.Name)
			t.Fatalf("fleet never finished: %+v", st)
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	wg.Wait()
	coordTW.Flush()

	coordEvs, err = obs.ReadEvents(&coordBuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		evs, err := obs.ReadEvents(bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		workerEvs = append(workerEvs, evs)
	}
	return coordEvs, workerEvs, flightPaths, coord
}

// TestFleetTraceStitchesAcrossProcesses is the tentpole acceptance
// check: one job through a coordinator and two workers yields a single
// trace ID whose spans link parent-to-child across process boundaries
// — job root -> lease grants (coordinator) -> row spans (workers) ->
// leaf cells — and the coordinator's complete instants account for
// every row exactly once.
func TestFleetTraceStitchesAcrossProcesses(t *testing.T) {
	job := testJob(t, "traced", 4)
	coordEvs, workerEvs, _, coord := tracedFleet(t, job, 2)

	traceID := coord.TraceID(job.Name)
	if len(traceID) != 32 {
		t.Fatalf("job should carry a 32-hex trace ID, got %q", traceID)
	}

	var all []obs.Event
	all = append(all, coordEvs...)
	for _, evs := range workerEvs {
		all = append(all, evs...)
	}

	// Every trace-carrying event from every process is on THE trace.
	leaseSpans := map[string]bool{} // span ID -> granted by coordinator
	rowSpans := map[string]bool{}
	jobRoot := ""
	completes := map[int]int{}
	for _, e := range all {
		if e.Trace == "" {
			continue
		}
		if e.Trace != traceID {
			t.Fatalf("event %s on trace %s, want %s", e.Name, e.Trace, traceID)
		}
		switch e.Name {
		case "lease", "steal":
			if e.Span == "" || e.Parent == "" {
				t.Fatalf("lease grant missing span identity: %+v", e)
			}
			leaseSpans[e.Span] = true
			if jobRoot == "" {
				jobRoot = e.Parent
			} else if e.Parent != jobRoot {
				t.Fatalf("lease parent %s != job root %s", e.Parent, jobRoot)
			}
		case "row":
			// The dist row span only — the sweep layer emits its own
			// span-less "row" leaf event under the same name.
			if e.Cat == "dist" {
				rowSpans[e.Span] = true
			}
		case "complete":
			r := int(e.Args["row"].(float64))
			completes[r]++
		}
	}

	// Cross-process links: every worker row span hangs off a
	// coordinator-minted lease span; every worker cell hangs off a row.
	for i, evs := range workerEvs {
		for _, e := range evs {
			if e.Trace == "" {
				continue
			}
			switch {
			case e.Name == "row" && e.Cat == "dist":
				if !leaseSpans[e.Parent] {
					t.Fatalf("worker %d row span parent %q is not a coordinator lease span", i, e.Parent)
				}
			case e.Name == "cell":
				if !rowSpans[e.Parent] {
					t.Fatalf("worker %d cell parent %q is not a row span", i, e.Parent)
				}
			}
		}
	}

	// Exactly-once: every row completed once, no more, no less.
	if len(completes) != len(job.Kernels) {
		t.Fatalf("completed %d rows, want %d: %v", len(completes), len(job.Kernels), completes)
	}
	for r, n := range completes {
		if n != 1 {
			t.Fatalf("row %d completed %d times", r, n)
		}
	}
}

// TestKilledWorkerFlightMatchesLedger is the crash-forensics
// acceptance check: a worker that dies without any shutdown hook (its
// flight ring is written per-event, never at exit) leaves a ring whose
// lease history matches the coordinator's view of that worker's
// leases — every row the flight claims completed-and-accepted is a row
// the coordinator's trace shows accepted from that worker.
func TestKilledWorkerFlightMatchesLedger(t *testing.T) {
	job := testJob(t, "killed", 5)
	coordEvs, _, flightPaths, _ := tracedFleet(t, job, 2)

	// The fleet has exited; read worker A's ring straight off disk, the
	// way `gpuscaled -flight-dump <path>` does post-mortem.
	evs, err := obs.ReadFlightFile(flightPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("worker A recorded no flight events")
	}

	// Coordinator's ledger view: rows accepted from worker A.
	ledger := map[int]bool{}
	for _, e := range coordEvs {
		if e.Name == "complete" && e.Args["worker"] == "A" {
			ledger[int(e.Args["row"].(float64))] = true
		}
	}

	acquired, completed := 0, 0
	for _, fe := range evs {
		switch fe.Kind {
		case "lease.acquired":
			acquired++
		case "lease.completed":
			completed++
			row := int(fe.Args["row"].(float64))
			if acc, _ := fe.Args["accepted"].(bool); acc && !ledger[row] {
				t.Fatalf("flight says row %d accepted, coordinator ledger disagrees", row)
			}
		}
	}
	if acquired == 0 {
		t.Fatal("flight ring recorded no lease.acquired events")
	}
	if completed > acquired {
		t.Fatalf("flight ring: %d completes for %d acquires", completed, acquired)
	}
}
