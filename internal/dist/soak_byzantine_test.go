package dist

// The byzantine chaos soak: a fleet with lying workers must still
// produce a canonical journal byte-identical to a single-node run.
//
// The cast: one "liar" whose fault injector corrupts every row it
// computes (journal, wire and attested digest consistently wrong, so
// only independent re-execution can expose it), one worker running a
// stale protocol version, two honest workers, and a coordinator that
// crashes and restarts mid-soak after the quarantine lands. The soak
// asserts the integrity plane end to end:
//
//   - the stale worker is fenced with ErrVersionFenced before
//     computing anything, and never joins the metrics federation,
//   - the liar's lies on sampled rows lose the re-verification vote;
//     the liar is quarantined (ErrQuarantined), its unverified rows
//     are invalidated, and healthy workers re-execute every one,
//   - quarantine membership, open votes and strikes survive the
//     coordinator crash,
//   - the final matrix, the coordinator journal, and the attested
//     merge of the honest workers' journals are all byte-identical to
//     the single-node run, while the liar's journal is refused by the
//     attested merge,
//   - the ledger audit passes and names the quarantine, the strikes,
//     and every one of the liar's corrupt rows,
//   - /metrics/fleet pins the quarantined worker's scrape to 0, and
//     the coordinator trace carries the quarantine instant.
//
// Runs short by default; GPUSCALE_SOAK_MS extends the convergence
// budget and GPUSCALE_FAULT_SEED replays a failure.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
	"gpuscale/internal/sweep"
)

// byzJob builds the soak job. The TTL is deliberately generous: the
// single-voter revote grace opens at 2xTTL, and the soak must prove
// rows settle by independent agreement, not by the liar waiting out
// its own grace window.
func byzJob(t *testing.T, seed int64) Job {
	t.Helper()
	var ks []*kernel.Kernel
	for i := 0; i < 6; i++ {
		ks = append(ks, kernel.New("byz", "p", fmt.Sprintf("k%02d", i)).
			Geometry(64+64*i, 256).Compute(10000+3000*i, 100).MustBuild())
	}
	return Job{Name: "byz", Kernels: ks, Space: testSpace(t), Seed: seed, NoiseStdDev: 0.05,
		TTL: 2 * time.Second}
}

// byzJobSeed finds a job seed whose 50% verification sample covers at
// least two of the six rows and skips at least one — so the soak
// exercises both the vote path (sampled lies) and the invalidation
// path (unsampled lies retracted at quarantine), deterministically.
func byzJobSeed(t *testing.T) int64 {
	t.Helper()
	for s := int64(1); s < 10000; s++ {
		sampled := 0
		for r := 0; r < 6; r++ {
			if verifySelected(s, r, 0.5) {
				sampled++
			}
		}
		if sampled >= 2 && sampled <= 4 {
			return s
		}
	}
	t.Fatal("no job seed with a mixed verification sample in range")
	return 0
}

// byzWorker is one in-process fleet worker plus the channel its Run
// error lands on.
type byzWorker struct {
	w       *Worker
	journal string
	done    chan error
}

func spawnByzWorker(t *testing.T, ctx context.Context, url, dir, name string, in fault.Injector, job Job) *byzWorker {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("worker_alive", "liveness marker").Add(1)
	msrv := httptest.NewServer(obs.Handler(reg, nil))
	t.Cleanup(msrv.Close)
	w, err := NewWorker(WorkerOptions{
		Name: name, Coordinator: url, Dir: dir,
		Client:       &http.Client{Timeout: 10 * time.Second},
		SweepWorkers: 2, Retries: 2, IdleSleep: 10 * time.Millisecond,
		MetricsURL: msrv.URL + "/metrics", Fault: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	bw := &byzWorker{w: w, journal: w.JournalPath(job.Name), done: make(chan error, 1)}
	go func() {
		defer w.Close()
		bw.done <- w.Run(ctx)
	}()
	return bw
}

// waitErr blocks for the worker's terminal Run error.
func (bw *byzWorker) waitErr(t *testing.T, what string, timeout time.Duration) error {
	t.Helper()
	select {
	case err := <-bw.done:
		return err
	case <-time.After(timeout):
		t.Fatalf("%s: worker still running after %v", what, timeout)
		return nil
	}
}

func TestChaosSoakByzantine(t *testing.T) {
	if testing.Short() {
		t.Skip("byzantine soak skipped in -short mode")
	}
	seed := time.Now().UnixNano()
	if s, err := strconv.ParseInt(os.Getenv("GPUSCALE_FAULT_SEED"), 10, 64); err == nil {
		seed = s
	}
	// Always printed so a CI failure is reproducible with
	// GPUSCALE_FAULT_SEED.
	t.Logf("byzantine seed: %d (replay with GPUSCALE_FAULT_SEED=%d)", seed, seed)

	budget := 60 * time.Second
	if ms, err := strconv.Atoi(os.Getenv("GPUSCALE_SOAK_MS")); err == nil && ms > 0 {
		budget += time.Duration(ms) * time.Millisecond
	}

	job := byzJob(t, byzJobSeed(t))
	rows := len(job.Kernels)
	want := singleNodeCanonical(t, job)
	root := t.TempDir()
	coordDir := root + "/coord"

	// The federation and the trace buffer outlive coordinator crashes,
	// the way gpuscaled's would not — which is exactly why quarantine
	// membership must come back from the ledger, not from them.
	fed := obs.NewFederation(nil, nil)
	var traceBuf bytes.Buffer
	tw := obs.NewTraceWriter(&traceBuf)
	tw.SetProcess("coordinator")
	opts := CoordinatorOptions{VerifyFraction: 0.5, Trace: tw,
		OnWorker: fed.SetTarget, OnQuarantine: fed.Depart}

	p := startCoordWith(t, coordDir, "127.0.0.1:0", job, opts)
	addr := p.addr
	url := "http://" + addr
	defer func() { p.crash() }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Phase 1: the liar runs alone and claims every row — sampled rows
	// become held votes, unsampled rows are accepted on its word.
	liar := spawnByzWorker(t, ctx, url, root+"/liar", "liar",
		fault.Injector{CorruptRowRate: 1, Seed: seed}, job)
	phase1 := time.Now().Add(budget)
	for {
		st, ok := p.coord.Status(job.Name)
		if ok && st.Done+st.Verifying == rows {
			if st.Done == 0 || st.Verifying == 0 {
				t.Fatalf("seed search promised a mixed sample, got %+v (seed %d)", st, seed)
			}
			t.Logf("liar claimed all rows: %d accepted unverified, %d held for verification",
				st.Done, st.Verifying)
			break
		}
		if time.Now().After(phase1) {
			t.Fatalf("liar never claimed every row: %+v (seed %d)", st, seed)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: a mixed-version worker is fenced before computing
	// anything.
	stale := spawnByzWorker(t, ctx, url, root+"/stale", "stale",
		fault.Injector{StaleVersion: "gpuscale-dist/0-ancient"}, job)
	if err := stale.waitErr(t, "stale worker", 30*time.Second); !errors.Is(err, ErrVersionFenced) {
		t.Fatalf("stale worker should exit ErrVersionFenced, got %v (seed %d)", err, seed)
	}

	// Phase 3: honest workers join. The first sampled row they settle
	// proves the liar's vote a lie — strike, quarantine, and the
	// liar's unverified rows are retracted for re-execution. The liar
	// itself learns on its next acquire.
	h1 := spawnByzWorker(t, ctx, url, root+"/h1", "h1", fault.Injector{}, job)
	h2 := spawnByzWorker(t, ctx, url, root+"/h2", "h2", fault.Injector{}, job)
	if err := liar.waitErr(t, "liar", budget); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("liar should exit ErrQuarantined, got %v (seed %d)", err, seed)
	}
	if q := p.coord.Quarantined(); len(q) != 1 || q[0] != "liar" {
		t.Fatalf("quarantine roster %v (seed %d)", q, seed)
	}

	// Phase 4: the coordinator crashes mid-recovery and restarts from
	// its ledger; the honest workers ride it out, and the quarantine
	// must come back from disk.
	p.crash()
	p = startCoordWith(t, coordDir, addr, job, opts)
	if q := p.coord.Quarantined(); len(q) != 1 || q[0] != "liar" {
		t.Fatalf("quarantine lost across coordinator crash: %v (seed %d)", q, seed)
	}

	deadline := time.Now().Add(budget)
	for {
		if st, ok := p.coord.Status(job.Name); ok && st.Complete {
			break
		}
		if time.Now().After(deadline) {
			st, _ := p.coord.Status(job.Name)
			t.Fatalf("fleet never converged past the liar: %+v (seed %d)", st, seed)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	for _, w := range []*byzWorker{h1, h2} {
		if err := w.waitErr(t, "honest worker", 30*time.Second); err != nil {
			t.Fatalf("honest worker exited with %v (seed %d)", err, seed)
		}
	}

	// 1. Byte-identity: matrix and coordinator journal match the
	// single-node run despite six corrupt completions.
	m, ok := p.coord.Matrix(job.Name)
	if !ok {
		t.Fatalf("complete job must expose its matrix (seed %d)", seed)
	}
	got, err := sweep.CanonicalJournalBytes(m, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("matrix differs from single-node run (seed %d)", seed)
	}
	jm, err := sweep.ReadJournal(p.coord.JournalPath(job.Name), job.Space)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := sweep.CanonicalJournalBytes(jm, m.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, jb) {
		t.Fatalf("coordinator journal differs from single-node run (seed %d)", seed)
	}

	// 2. The attested merge: the coordinator's recorded digests accept
	// the honest journals — which re-render the single-node bytes —
	// and refuse the liar's journal by name.
	attest := map[string]string{}
	for r, k := range m.Kernels {
		d, err := sweep.RowDigest(m, r)
		if err != nil {
			t.Fatal(err)
		}
		attest[k] = d
	}
	merged, err := sweep.MergeJournalsAttested(job.Space, attest, h1.journal, h2.journal)
	if err != nil {
		t.Fatalf("honest journals failed attested merge: %v (seed %d)", err, seed)
	}
	mb, err := sweep.CanonicalJournalBytes(merged, m.Kernels)
	if err != nil {
		t.Fatalf("honest journals incomplete: %v (seed %d)", err, seed)
	}
	if !bytes.Equal(want, mb) {
		t.Fatalf("merged honest journals differ from single-node run (seed %d)", seed)
	}
	if _, err := sweep.MergeJournalsAttested(job.Space, attest, liar.journal); err == nil ||
		!strings.Contains(err.Error(), "does not match attested") {
		t.Fatalf("liar journal should be refused by the attested merge, got %v (seed %d)", err, seed)
	}

	// 3. The ledger audit passes and names the whole story: the
	// quarantine with its triggering row, at least one strike, and —
	// via the liar's attest/complete/invalidate records — every row
	// the liar corrupted.
	recs, err := ReadLedger(p.coord.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	audit, err := AuditLedger(recs)
	if err != nil {
		t.Fatalf("ledger audit: %v (seed %d)", err, seed)
	}
	if len(audit.Quarantines) != 1 || audit.Quarantines[0].Worker != "liar" ||
		audit.Quarantines[0].Digest == "" {
		t.Fatalf("audit should name the liar's quarantine with its triggering claim: %+v (seed %d)",
			audit.Quarantines, seed)
	}
	if len(audit.Strikes) == 0 {
		t.Fatalf("audit should carry the liar's strikes (seed %d)", seed)
	}
	if len(audit.Invalidations) == 0 {
		t.Fatalf("the liar's unverified rows were never invalidated (seed %d)", seed)
	}
	corrupt := map[int]bool{}
	for _, r := range recs {
		if r.Worker != "liar" {
			continue
		}
		switch r.Kind {
		case "attest", "complete", "invalidate":
			corrupt[r.Row] = true
		}
	}
	if len(corrupt) != rows {
		t.Fatalf("ledger names %d of the liar's %d corrupt rows (seed %d)", len(corrupt), rows, seed)
	}

	// 4. /metrics/fleet: the quarantined worker is pinned down, never
	// scraped; the fenced stale worker never joined; honest workers
	// scrape up.
	var fleet bytes.Buffer
	if err := fed.WriteFleet(context.Background(), &fleet); err != nil {
		t.Fatal(err)
	}
	page := fleet.String()
	for _, wantLine := range []string{
		`fleet_scrape_up{worker="liar"} 0`,
		`fleet_scrape_up{worker="h1"} 1`,
		`fleet_scrape_up{worker="h2"} 1`,
	} {
		if !strings.Contains(page, wantLine) {
			t.Fatalf("fleet page missing %q (seed %d):\n%s", wantLine, seed, page)
		}
	}
	if strings.Contains(page, `worker="stale"`) {
		t.Fatalf("version-fenced worker leaked into the federation (seed %d):\n%s", seed, page)
	}

	// 5. The coordinator trace carries the quarantine instant and at
	// least one verified complete, so the stitched view can tell the
	// story.
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sawQuarantine, sawVerified := false, false
	for _, e := range evs {
		if e.Name == "quarantine" {
			if w, _ := e.Args["worker"].(string); w == "liar" {
				sawQuarantine = true
			}
		}
		if e.Name == "complete" {
			if v, _ := e.Args["verified"].(bool); v {
				sawVerified = true
			}
		}
	}
	if !sawQuarantine || !sawVerified {
		t.Fatalf("trace missing quarantine=%v / verified complete=%v (seed %d)",
			sawQuarantine, sawVerified, seed)
	}
}
