package gcn

import (
	"fmt"
	"math"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// The wavefront-level engine: a classic discrete-event simulation in
// which each wavefront alternates compute segments and memory batches.
// Compute segments queue on their CU's issue port (one wave-instruction
// per cycle, FIFO-granted); memory batches queue on the shared L2 and
// DRAM service resources and then pay the pipeline latency. Workgroups
// dispatch wave-by-wave as occupancy slots free up.
//
// It is the highest-fidelity (and slowest) of the three engines and
// exists to validate the other two: per-wave interleaving, issue-port
// contention, and service-queue build-up are modelled explicitly
// rather than as steady-state bounds.
//
// The scheduler is a calendar queue (Brown, CACM 1988) keyed on cycle
// time rather than a comparison heap: events are spread over
// time-windowed buckets, so pushes and pops are O(1) on the workloads
// the engine sees instead of O(log n) with a cache-miss per heap
// level. Because (at, seq) is a strict total order on events, any
// correct priority queue pops them in exactly the same sequence, so
// the rewrite is bit-identical to the heap it replaced —
// wave_ref_test.go keeps the original heap implementation as the
// differential oracle that proves it.

// Event kinds, packed into the low bit of waveEvent.seqKind.
const (
	evComputeDone = 0
	evMemDone     = 1
)

// waveState tracks one in-flight wavefront. The segmentation terms
// that are identical across every wave of a launch (compute time per
// segment, per-batch L2/DRAM traffic) are hoisted to EvalWave locals
// — the same treatment the pipeline engine gives its per-instruction
// class terms — so per-wave state is three small integers.
type waveState struct {
	cu, wg   int32
	segsLeft int32
}

// waveEvent is one scheduled completion: 16 bytes, with the kind
// folded into the low bit of the push sequence number. seq is strictly
// increasing across pushes, so ordering by (at, seqKind) equals
// ordering by (at, seq) — the kind bit never decides.
type waveEvent struct {
	at      float64
	wave    int32  // index into waveScratch.waves
	seqKind uint32 // seq<<1 | kind
}

func waveEventBefore(a, b waveEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seqKind < b.seqKind
}

// calQueue is a calendar queue: a power-of-two array of buckets, each
// holding the events of every time window congruent to it (window =
// floor(at/width), bucket = window mod len). Buckets are kept in push
// order: pushes are a bare append and removals shift the tail down
// instead of swap-filling the hole. Push order implies seq order, so
// among equal-time events the first one a scan meets is the one the
// (at, seq) total order pops next — the min-scan therefore compares
// times alone, with first-match-wins, and never needs the tie-break
// field. That matters because the engine emits equal-time clusters
// (idle CUs run identical schedules, so every segment boundary
// completes once per CU); a two-field comparator pays its
// data-dependent second branch exactly on those clusters. Pops walk
// windows in order; after a full empty rotation a direct minimum
// search re-anchors the window cursor (the sparse-schedule fallback).
//
// The bucket minimum is the global minimum whenever it falls in the
// current (or an earlier) window: lower windows were drained before
// topIdx advanced, all current-window events share this bucket, and
// any later-year event in the bucket has a strictly larger time.
//
// Window membership is always computed as int64(at*invW), never by
// accumulating width, so push and pop can never disagree about which
// window an event belongs to (float accumulation drift would reorder
// events near window boundaries).
type calQueue struct {
	buckets [][]waveEvent
	heads   []int // per-bucket drained-prefix length
	mask    int
	invW    float64
	topIdx  int64 // current window number
	n       int
}

// reset prepares the queue for a run of events starting at time zero:
// nb buckets (power of two) of the given window width, reusing bucket
// capacity across evaluations.
func (q *calQueue) reset(nb int, width float64) {
	if cap(q.buckets) < nb {
		q.buckets = make([][]waveEvent, nb)
		q.heads = make([]int, nb)
	}
	q.buckets = q.buckets[:nb]
	q.heads = q.heads[:nb]
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
		q.heads[i] = 0
	}
	q.mask = nb - 1
	q.invW = 1 / width
	q.topIdx = 0
	q.n = 0
}

func (q *calQueue) push(e waveEvent) {
	win := int64(e.at * q.invW)
	b := &q.buckets[int(win)&q.mask]
	*b = append(*b, e)
	q.n++
}

// remove deletes element mi (an index into the live region) from
// bucket bi, preserving the relative order of the survivors — the
// push-order invariant the min-scan's first-match-wins rule rests on.
// A bucket usually drains front first, so the hot case is a head
// advance; removals from the middle shift the tail down. A bucket
// whose live region empties is rewound so its capacity is reused from
// the front.
func (q *calQueue) remove(bi, mi int) {
	s := q.buckets[bi]
	if h := q.heads[bi]; mi == h {
		q.heads[bi] = h + 1
	} else {
		copy(s[mi:], s[mi+1:])
		s = s[:len(s)-1]
		q.buckets[bi] = s
	}
	if q.heads[bi] == len(s) {
		q.buckets[bi] = s[:0]
		q.heads[bi] = 0
	}
	q.n--
}

// pop removes and returns the minimum event by (at, seqKind). The
// caller guarantees n > 0. Because (at, seqKind) is a strict total
// order, any correct implementation pops the same sequence, so pop
// order is independent of bucket layout. The strict < on times plus
// the push-order bucket invariant make the first minimal-time element
// the minimal-seq one too, so the scan never needs the tie-break
// field.
func (q *calQueue) pop() waveEvent {
	for scanned := 0; scanned <= q.mask; scanned++ {
		bi := int(q.topIdx) & q.mask
		if s := q.buckets[bi]; len(s) > q.heads[bi] {
			mi := q.heads[bi]
			m := s[mi].at
			for i := mi + 1; i < len(s); i++ {
				if at := s[i].at; at < m {
					mi, m = i, at
				}
			}
			if int64(m*q.invW) <= q.topIdx {
				e := s[mi]
				q.remove(bi, mi)
				return e
			}
		}
		q.topIdx++
	}
	// Every pending event lies beyond a full rotation: jump straight
	// to the earliest one. Equal times across buckets still need the
	// seq tie-break here, so this scan uses the full comparator.
	bi, mi := -1, 0
	var best waveEvent
	for i := range q.buckets {
		s := q.buckets[i]
		for j := q.heads[i]; j < len(s); j++ {
			if e := s[j]; bi < 0 || waveEventBefore(e, best) {
				bi, mi, best = i, j, e
			}
		}
	}
	q.remove(bi, mi)
	q.topIdx = int64(best.at * q.invW)
	return best
}

// waveScratch holds the wave engine's reusable per-row buffers: the
// calendar queue, the per-CU resource clocks, the per-workgroup
// wave countdowns (an indexed slice — workgroup IDs are dense), and a
// fixed arena of wave states (events hold indexes into it, so it is
// sized up front and never grown mid-run).
type waveScratch struct {
	cuIssueFree   []float64
	cuResidentWGs []int
	wgWavesLeft   []int32
	q             calQueue
	waves         []waveState
}

// waveSimLimits bounds the event engine so sweeps cannot accidentally
// run it on huge launches.
const maxWaveEvents = 50_000_000

// Calendar-queue sizing bounds: buckets cover the expected pending-
// event population (one pending event per in-flight wave) without the
// per-evaluation reset cost growing unbounded.
const (
	minWaveBuckets = 64
	maxWaveBuckets = 2048
)

// SimulateWave runs the wavefront-level event engine. Use it for
// validation on launches up to a few thousand workgroups; for sweeps
// use Simulate. For whole-row evaluation, Prepare once and call
// EvalWave per config (or EvalBatch on the row seam): the prepared
// path reuses the calendar queue, wave arena, and per-CU clocks
// across the row instead of reallocating them per cell.
func SimulateWave(k *kernel.Kernel, cfg hw.Config) (Result, error) {
	p, err := Prepare(k)
	if err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return p.EvalWave(cfg)
}

// EvalWave runs the wave engine on one already-validated
// configuration, reusing the prepared scratch buffers.
func (p *Prepared) EvalWave(cfg hw.Config) (Result, error) {
	k := p.k
	occWGs := p.occWGs
	d := p.demandFor(cfg)
	hier := memory.NewHierarchy(cfg)
	hr := p.hitRates(occWGs, cfg.CUs, cfg.L2CapacityBytes())
	effBW := hier.EffectiveBandwidthGBs(k.Mem.Pattern)
	l2BW := l2BandwidthGBs(cfg)

	// Per-wave segmentation: one memory batch of effMLP accesses per
	// segment, compute spread evenly between batches. All four terms
	// are identical for every wave of the launch, so they live here
	// rather than in the per-wave state.
	wavesPerWG := d.wavesPerWG
	accPerWave := d.accessesPerWG / float64(wavesPerWG)
	issuePerWave := d.issueNSPerWG / float64(wavesPerWG)
	segs := 1
	if accPerWave > 0 {
		segs = int(math.Ceil(accPerWave / p.der.EffectiveMLP))
	}
	transPerWave := d.transBytesPerWG / float64(wavesPerWG)
	l2PerBatch := transPerWave * (1 - hr.L1) / float64(segs)
	dramPerBatch := l2PerBatch * (1 - hr.L2)
	computeNSPerSeg := issuePerWave / float64(segs)
	l2Service := 0.0
	if l2PerBatch > 0 {
		l2Service = l2PerBatch / l2BW
	}
	dramService := 0.0
	if dramPerBatch > 0 && effBW > 0 {
		dramService = dramPerBatch / effBW
	}

	// Unloaded pipeline latency of one batch (requests overlap, so one
	// latency per batch, service time handled by the queues).
	batchLatency := hier.AvgAccessLatencyNS(hr, 0)

	totalWaves := p.der.TotalWaves
	if totalWaves > maxWaveEvents {
		// Each wave contributes at least one event, so the launch
		// cannot finish within the budget; fail before allocating.
		return Result{}, fmt.Errorf("gcn: wave engine exceeded %d events on %s (launch too large)",
			maxWaveEvents, k.Name)
	}

	// Resources, from the reusable scratch (reset covers dirty state
	// left by a previous eval, including one that returned an error).
	s := p.wave
	if s == nil {
		s = &waveScratch{}
		p.wave = s
	}
	s.cuIssueFree = growF(s.cuIssueFree, cfg.CUs)
	s.cuResidentWGs = growI(s.cuResidentWGs, cfg.CUs)
	if cap(s.wgWavesLeft) < k.Workgroups {
		s.wgWavesLeft = make([]int32, k.Workgroups)
	} else {
		// No zeroing: dispatch writes a workgroup's countdown before
		// any of its waves can retire.
		s.wgWavesLeft = s.wgWavesLeft[:k.Workgroups]
	}
	if cap(s.waves) < totalWaves {
		s.waves = make([]waveState, totalWaves)
	} else {
		s.waves = s.waves[:totalWaves]
	}

	// Calendar sizing. Pending events never exceed one per in-flight
	// wave, which occupancy bounds. The window width targets the
	// pending-event SPAN, not the makespan: at any instant the queue's
	// events live between now and the deepest resource backlog ahead —
	// one outstanding compute segment per resident wave on its CU's
	// issue port, one outstanding batch per resident wave on the shared
	// L2/DRAM queues — plus the pipeline latency every mem-done event
	// adds on top of its service grant. Spreading that span across the
	// buckets keeps each bucket at about two pending events and, more
	// importantly, keeps the whole span inside one rotation of the
	// bucket array. (A makespan/events width — the average event
	// spacing — underestimates the span whenever the batch latency
	// dwarfs a per-batch service time; the span then wraps the array
	// several times, every bucket accumulates events from several
	// window-years, and each pop's min-scan pays the overlap factor.)
	// Two events per bucket, not one: empty-bucket rotations cost a
	// random slice-header probe each, while one extra element in a
	// scan is a contiguous compare, so slightly denser buckets measure
	// faster than exactly-one occupancy.
	// Sizing affects only speed: window membership is consistent
	// between push and pop at any width, so the pop order — and
	// therefore the result — is width-independent.
	resident := cfg.CUs * occWGs * wavesPerWG
	if resident > totalWaves {
		resident = totalWaves
	}
	nb := minWaveBuckets
	for nb*2 < resident && nb < maxWaveBuckets {
		nb <<= 1
	}
	span := float64(occWGs*wavesPerWG) * computeNSPerSeg
	if t := float64(resident) * l2Service; t > span {
		span = t
	}
	if t := float64(resident) * dramService; t > span {
		span = t
	}
	span += batchLatency
	width := span / float64(nb)
	if !(width > 1e-300) || math.IsInf(width, 0) {
		width = 1
	}
	s.q.reset(nb, width)

	cuIssueFree := s.cuIssueFree
	cuResidentWGs := s.cuResidentWGs
	wgWavesLeft := s.wgWavesLeft
	waves := s.waves
	q := &s.q
	nextWave := int32(0)

	var l2Free, dramFree float64
	var dramBusyNS, l2BusyNS, issueBusyNS float64
	pendingWGs := k.Workgroups
	nextWG := 0
	var now float64
	seq := uint32(0)

	startWave := func(cu, wg int32, at float64) {
		w := nextWave
		nextWave++
		waves[w] = waveState{cu: cu, wg: wg, segsLeft: int32(segs)}
		// First phase: compute segment queued on the CU issue port.
		grant := fmax(at, cuIssueFree[cu])
		done := grant + computeNSPerSeg
		cuIssueFree[cu] = done
		issueBusyNS += computeNSPerSeg
		seq++
		q.push(waveEvent{at: done, wave: w, seqKind: seq<<1 | evComputeDone})
	}

	dispatch := func(at float64) {
		for pendingWGs > 0 {
			// Least-loaded CU with a free workgroup slot.
			best, bestLoad := -1, occWGs
			for cu := 0; cu < cfg.CUs; cu++ {
				if cuResidentWGs[cu] < bestLoad {
					best, bestLoad = cu, cuResidentWGs[cu]
				}
			}
			if best < 0 {
				return
			}
			wg := nextWG
			nextWG++
			pendingWGs--
			cuResidentWGs[best]++
			wgWavesLeft[wg] = int32(wavesPerWG)
			for i := 0; i < wavesPerWG; i++ {
				startWave(int32(best), int32(wg), at)
			}
		}
	}
	dispatch(0)

	processed := 0
	for q.n > 0 {
		processed++
		if processed > maxWaveEvents {
			return Result{}, fmt.Errorf("gcn: wave engine exceeded %d events on %s (launch too large)",
				maxWaveEvents, k.Name)
		}
		ev := q.pop()
		now = ev.at
		w := &waves[ev.wave]
		if ev.seqKind&1 == evComputeDone {
			if accPerWave == 0 || w.segsLeft == 0 {
				// Pure-compute wave (or final trailing segment): done.
				wgWavesLeft[w.wg]--
				if wgWavesLeft[w.wg] == 0 {
					cuResidentWGs[w.cu]--
				}
				dispatch(now)
				continue
			}
			// Issue the memory batch: queue on L2 then DRAM service,
			// then pay the pipeline latency.
			w.segsLeft--
			start := now
			if l2PerBatch > 0 {
				grant := fmax(start, l2Free)
				l2Free = grant + l2Service
				l2BusyNS += l2Service
				start = l2Free
			}
			if dramPerBatch > 0 && effBW > 0 {
				grant := fmax(start, dramFree)
				dramFree = grant + dramService
				dramBusyNS += dramService
				start = dramFree
			}
			seq++
			q.push(waveEvent{at: start + batchLatency, wave: ev.wave, seqKind: seq<<1 | evMemDone})
		} else {
			if w.segsLeft == 0 {
				wgWavesLeft[w.wg]--
				if wgWavesLeft[w.wg] == 0 {
					cuResidentWGs[w.cu]--
				}
				dispatch(now)
				continue
			}
			// Next compute segment on the CU issue port.
			grant := fmax(now, cuIssueFree[w.cu])
			done := grant + computeNSPerSeg
			cuIssueFree[w.cu] = done
			issueBusyNS += computeNSPerSeg
			seq++
			q.push(waveEvent{at: done, wave: ev.wave, seqKind: seq<<1 | evComputeDone})
		}
	}

	kernelNS := now
	total := kernelNS + k.LaunchOverheadNS
	var boundNS boundTimes
	boundNS[BoundCompute] = issueBusyNS / float64(cfg.CUs)
	boundNS[BoundDRAM] = dramBusyNS
	boundNS[BoundL2] = l2BusyNS
	// Whatever of the makespan is not explained by the busiest
	// resource is latency exposure.
	busiest := max(boundNS[BoundCompute], boundNS[BoundDRAM], boundNS[BoundL2])
	if kernelNS > busiest {
		boundNS[BoundLatency] = kernelNS - busiest
	}
	dominant, share := dominantBound(&boundNS, k.LaunchOverheadNS, total)

	transBytes := d.transBytesPerWG * float64(k.Workgroups)
	dramBytes := transBytes * (1 - hr.L1) * (1 - hr.L2)
	return Result{
		TimeNS:         total,
		KernelNS:       kernelNS,
		Throughput:     float64(p.der.TotalWorkItems) / total,
		AchievedGFLOPS: d.flopsPerWG * float64(k.Workgroups) / total,
		AchievedGBs:    dramBytes / total,
		HitRates:       hr,
		OccupancyWaves: p.der.OccupancyWavesPerCU,
		Bound:          dominant,
		BoundShare:     share,
	}, nil
}
