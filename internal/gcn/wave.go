package gcn

import (
	"fmt"
	"math"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// The wavefront-level engine: a classic discrete-event simulation in
// which each wavefront alternates compute segments and memory batches.
// Compute segments queue on their CU's issue port (one wave-instruction
// per cycle, FIFO-granted); memory batches queue on the shared L2 and
// DRAM service resources and then pay the pipeline latency. Workgroups
// dispatch wave-by-wave as occupancy slots free up.
//
// It is the highest-fidelity (and slowest) of the three engines and
// exists to validate the other two: per-wave interleaving, issue-port
// contention, and service-queue build-up are modelled explicitly
// rather than as steady-state bounds.

// waveEventKind tags event types in the simulation heap.
type waveEventKind int

const (
	evComputeDone waveEventKind = iota
	evMemDone
)

// waveState tracks one in-flight wavefront.
type waveState struct {
	cu       int
	wg       int
	segsLeft int
	// computeNSPerSeg is the issue time of one compute segment.
	computeNSPerSeg float64
	// batchDRAMBytes is the DRAM traffic of one memory batch.
	batchDRAMBytes float64
	// batchL2Bytes is the interconnect traffic of one memory batch.
	batchL2Bytes float64
}

// waveEvent is one scheduled completion.
type waveEvent struct {
	at   float64
	kind waveEventKind
	wave *waveState
	seq  int // tiebreak for determinism
}

// eventHeap is a min-heap ordered by time then sequence. The push and
// pop operations are concrete-typed rather than going through
// container/heap: the interface boxing there costs one allocation per
// event in the engine's hottest loop, and because (at, seq) is a
// strict total order any correct heap pops events in exactly the same
// sequence.
type eventHeap []waveEvent

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e waveEvent) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() waveEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s.less(r, c) {
			c = r
		}
		if !s.less(c, i) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// waveScratch holds the wave engine's reusable per-row buffers: the
// event heap, the per-CU resource clocks, and a fixed arena of wave
// states (events hold pointers into it, so it is sized up front and
// never grown mid-run).
type waveScratch struct {
	cuIssueFree   []float64
	cuResidentWGs []int
	wgWavesLeft   map[int]int
	events        eventHeap
	waves         []waveState
}

// waveSimLimits bounds the event engine so sweeps cannot accidentally
// run it on huge launches.
const maxWaveEvents = 50_000_000

// SimulateWave runs the wavefront-level event engine. Use it for
// validation on launches up to a few thousand workgroups; for sweeps
// use Simulate. For whole-row evaluation, Prepare once and call
// EvalWave per config.
func SimulateWave(k *kernel.Kernel, cfg hw.Config) (Result, error) {
	p, err := Prepare(k)
	if err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return p.EvalWave(cfg)
}

// EvalWave runs the wave engine on one already-validated
// configuration, reusing the prepared scratch buffers.
func (p *Prepared) EvalWave(cfg hw.Config) (Result, error) {
	k := p.k
	occWGs := p.occWGs
	d := p.demandFor(cfg)
	hier := memory.NewHierarchy(cfg)
	hr := p.hitRates(occWGs, cfg.CUs, cfg.L2CapacityBytes())
	effBW := hier.EffectiveBandwidthGBs(k.Mem.Pattern)
	l2BW := l2BandwidthGBs(cfg)

	// Per-wave segmentation: one memory batch of effMLP accesses per
	// segment, compute spread evenly between batches.
	wavesPerWG := d.wavesPerWG
	accPerWave := d.accessesPerWG / float64(wavesPerWG)
	issuePerWave := d.issueNSPerWG / float64(wavesPerWG)
	segs := 1
	if accPerWave > 0 {
		segs = int(math.Ceil(accPerWave / p.der.EffectiveMLP))
	}
	transPerWave := d.transBytesPerWG / float64(wavesPerWG)
	l2PerBatch := transPerWave * (1 - hr.L1) / float64(segs)
	dramPerBatch := l2PerBatch * (1 - hr.L2)

	// Unloaded pipeline latency of one batch (requests overlap, so one
	// latency per batch, service time handled by the queues).
	batchLatency := hier.AvgAccessLatencyNS(hr, 0)

	// Resources, from the reusable scratch (reset covers dirty state
	// left by a previous eval, including one that returned an error).
	s := p.wave
	if s == nil {
		s = &waveScratch{wgWavesLeft: make(map[int]int)}
		p.wave = s
	}
	s.cuIssueFree = growF(s.cuIssueFree, cfg.CUs)
	s.cuResidentWGs = growI(s.cuResidentWGs, cfg.CUs)
	clear(s.wgWavesLeft)
	s.events = s.events[:0]
	totalWaves := p.der.TotalWaves
	if cap(s.waves) < totalWaves {
		s.waves = make([]waveState, totalWaves)
	} else {
		s.waves = s.waves[:totalWaves]
	}
	cuIssueFree := s.cuIssueFree
	cuResidentWGs := s.cuResidentWGs
	wgWavesLeft := s.wgWavesLeft
	events := &s.events
	nextWave := 0

	var l2Free, dramFree float64
	var dramBusyNS, l2BusyNS, issueBusyNS float64
	pendingWGs := k.Workgroups
	nextWG := 0
	inFlightWaves := 0
	var now float64
	seq := 0

	startWave := func(cu, wg int, at float64) {
		w := &s.waves[nextWave]
		nextWave++
		*w = waveState{
			cu:              cu,
			wg:              wg,
			segsLeft:        segs,
			computeNSPerSeg: issuePerWave / float64(segs),
			batchDRAMBytes:  dramPerBatch,
			batchL2Bytes:    l2PerBatch,
		}
		// First phase: compute segment queued on the CU issue port.
		grant := max(at, cuIssueFree[cu])
		done := grant + w.computeNSPerSeg
		cuIssueFree[cu] = done
		issueBusyNS += w.computeNSPerSeg
		seq++
		events.push(waveEvent{at: done, kind: evComputeDone, wave: w, seq: seq})
		inFlightWaves++
	}

	dispatch := func(at float64) {
		for pendingWGs > 0 {
			// Least-loaded CU with a free workgroup slot.
			best, bestLoad := -1, occWGs
			for cu := 0; cu < cfg.CUs; cu++ {
				if cuResidentWGs[cu] < bestLoad {
					best, bestLoad = cu, cuResidentWGs[cu]
				}
			}
			if best < 0 {
				return
			}
			wg := nextWG
			nextWG++
			pendingWGs--
			cuResidentWGs[best]++
			wgWavesLeft[wg] = wavesPerWG
			for i := 0; i < wavesPerWG; i++ {
				startWave(best, wg, at)
			}
		}
	}
	dispatch(0)

	processed := 0
	for len(*events) > 0 {
		processed++
		if processed > maxWaveEvents {
			return Result{}, fmt.Errorf("gcn: wave engine exceeded %d events on %s (launch too large)",
				maxWaveEvents, k.Name)
		}
		ev := events.pop()
		now = ev.at
		w := ev.wave
		switch ev.kind {
		case evComputeDone:
			if accPerWave == 0 || w.segsLeft == 0 {
				// Pure-compute wave (or final trailing segment): done.
				finishWave(w, wgWavesLeft, cuResidentWGs, &inFlightWaves)
				dispatch(now)
				continue
			}
			// Issue the memory batch: queue on L2 then DRAM service,
			// then pay the pipeline latency.
			w.segsLeft--
			start := now
			if w.batchL2Bytes > 0 {
				grant := max(start, l2Free)
				service := w.batchL2Bytes / l2BW
				l2Free = grant + service
				l2BusyNS += service
				start = l2Free
			}
			if w.batchDRAMBytes > 0 && effBW > 0 {
				grant := max(start, dramFree)
				service := w.batchDRAMBytes / effBW
				dramFree = grant + service
				dramBusyNS += service
				start = dramFree
			}
			seq++
			events.push(waveEvent{at: start + batchLatency, kind: evMemDone, wave: w, seq: seq})
		case evMemDone:
			if w.segsLeft == 0 {
				finishWave(w, wgWavesLeft, cuResidentWGs, &inFlightWaves)
				dispatch(now)
				continue
			}
			// Next compute segment on the CU issue port.
			grant := max(now, cuIssueFree[w.cu])
			done := grant + w.computeNSPerSeg
			cuIssueFree[w.cu] = done
			issueBusyNS += w.computeNSPerSeg
			seq++
			events.push(waveEvent{at: done, kind: evComputeDone, wave: w, seq: seq})
		}
	}

	kernelNS := now
	total := kernelNS + k.LaunchOverheadNS
	var boundNS boundTimes
	boundNS[BoundCompute] = issueBusyNS / float64(cfg.CUs)
	boundNS[BoundDRAM] = dramBusyNS
	boundNS[BoundL2] = l2BusyNS
	// Whatever of the makespan is not explained by the busiest
	// resource is latency exposure.
	busiest := max(boundNS[BoundCompute], boundNS[BoundDRAM], boundNS[BoundL2])
	if kernelNS > busiest {
		boundNS[BoundLatency] = kernelNS - busiest
	}
	dominant, share := dominantBound(&boundNS, k.LaunchOverheadNS, total)

	transBytes := d.transBytesPerWG * float64(k.Workgroups)
	dramBytes := transBytes * (1 - hr.L1) * (1 - hr.L2)
	return Result{
		TimeNS:         total,
		KernelNS:       kernelNS,
		Throughput:     float64(p.der.TotalWorkItems) / total,
		AchievedGFLOPS: d.flopsPerWG * float64(k.Workgroups) / total,
		AchievedGBs:    dramBytes / total,
		HitRates:       hr,
		OccupancyWaves: p.der.OccupancyWavesPerCU,
		Bound:          dominant,
		BoundShare:     share,
	}, nil
}

// finishWave retires one wave and frees its workgroup slot when the
// whole workgroup has drained.
func finishWave(w *waveState, wgWavesLeft map[int]int, cuResidentWGs []int, inFlight *int) {
	*inFlight--
	wgWavesLeft[w.wg]--
	if wgWavesLeft[w.wg] == 0 {
		delete(wgWavesLeft, w.wg)
		cuResidentWGs[w.cu]--
	}
}
