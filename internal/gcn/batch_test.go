package gcn

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/suites"
)

// resultBitsEqual compares two Results field by field at the bit
// level: the batch path's contract is byte-identity with the scalar
// path, not approximate agreement.
func resultBitsEqual(a, b Result) bool {
	return math.Float64bits(a.TimeNS) == math.Float64bits(b.TimeNS) &&
		math.Float64bits(a.KernelNS) == math.Float64bits(b.KernelNS) &&
		math.Float64bits(a.Throughput) == math.Float64bits(b.Throughput) &&
		math.Float64bits(a.AchievedGFLOPS) == math.Float64bits(b.AchievedGFLOPS) &&
		math.Float64bits(a.AchievedGBs) == math.Float64bits(b.AchievedGBs) &&
		math.Float64bits(a.HitRates.L1) == math.Float64bits(b.HitRates.L1) &&
		math.Float64bits(a.HitRates.L2) == math.Float64bits(b.HitRates.L2) &&
		a.OccupancyWaves == b.OccupancyWaves &&
		a.Bound == b.Bound &&
		math.Float64bits(a.BoundShare) == math.Float64bits(b.BoundShare)
}

// assertBatchMatchesScalar runs EvalRoundBatch against fresh per-cell
// EvalRound calls (separate Prepared instances, so neither path warms
// the other's memos) and requires bit equality at every position.
func assertBatchMatchesScalar(t *testing.T, k *kernel.Kernel, cfgs []hw.Config) {
	t.Helper()
	pb, err := Prepare(k)
	if err != nil {
		t.Fatalf("Prepare(%s): %v", k.Name, err)
	}
	ps, err := Prepare(k)
	if err != nil {
		t.Fatalf("Prepare(%s): %v", k.Name, err)
	}
	out := make([]Result, len(cfgs))
	if err := pb.EvalRoundBatch(cfgs, out); err != nil {
		t.Fatalf("EvalRoundBatch(%s): %v", k.Name, err)
	}
	for i, cfg := range cfgs {
		want, err := ps.EvalRound(cfg)
		if err != nil {
			t.Fatalf("EvalRound(%s, %+v): %v", k.Name, cfg, err)
		}
		if !resultBitsEqual(out[i], want) {
			t.Fatalf("%s cell %d (%+v): batch %+v != scalar %+v", k.Name, i, cfg, out[i], want)
		}
	}
}

func TestEvalRoundBatchMatchesScalarOnCorpus(t *testing.T) {
	cfgs := hw.StudySpace().Configs()
	for _, k := range suites.AllKernels(suites.Corpus()) {
		assertBatchMatchesScalar(t, k, cfgs)
	}
}

// randomBatchKernel builds a random-but-valid kernel covering barrier,
// LDS, divergence, dependence and locality parameters the archetype
// kernels do not reach.
func randomBatchKernel(r *rand.Rand) *kernel.Kernel {
	b := kernel.New("t", "t", "rand").
		Geometry(1+r.Intn(6000), 64*(1+r.Intn(4))).
		Compute(1+r.Intn(40000), r.Intn(2000)).
		LDSOps(r.Intn(500), r.Intn(8)).
		Access(kernel.AccessPattern(r.Intn(5)), r.Intn(512), r.Intn(128), 1<<uint(r.Intn(4))).
		Locality(int64(r.Intn(1<<21)), r.Float64(), 4*r.Float64()).
		Coalescing(r.Float64()).
		MLP(1 + 15*r.Float64()).
		DepChain(r.Float64()).
		Divergence(0.05 + 0.95*r.Float64()).
		Launch(float64(r.Intn(20000)), 1)
	if r.Intn(2) == 0 {
		b = b.Resources(16+r.Intn(112), 16+r.Intn(80), r.Intn(48*1024))
	}
	k, err := b.Build()
	if err != nil {
		return nil
	}
	return k
}

// randomConfigs draws valid configurations with no grid structure at
// all: consecutive cells change every axis at once, which forces the
// batch evaluator through its block- and sub-block re-derivation on
// nearly every cell. A quarter of the cells carry an L2 override.
func randomConfigs(r *rand.Rand, n int) []hw.Config {
	cfgs := make([]hw.Config, n)
	for i := range cfgs {
		cfgs[i] = hw.Config{
			CUs:          1 + r.Intn(hw.MaxCUs),
			CoreClockMHz: float64(100 + r.Intn(1101)),
			MemClockMHz:  float64(100 + r.Intn(1401)),
		}
		if r.Intn(4) == 0 {
			cfgs[i].L2Override = 64 * 1024 * (1 + r.Intn(64))
		}
	}
	return cfgs
}

func TestEvalRoundBatchMatchesScalarOnRandomKernelsAndGrids(t *testing.T) {
	r := rand.New(rand.NewSource(909))
	grid := hw.StudySpace().Configs()
	built := 0
	for built < 40 {
		k := randomBatchKernel(r)
		if k == nil {
			continue
		}
		if _, err := Prepare(k); err != nil {
			continue // does not fit: no row to compare
		}
		built++
		assertBatchMatchesScalar(t, k, grid)
		assertBatchMatchesScalar(t, k, randomConfigs(r, 200))
	}
}

func TestEvalRoundBatchBufferContract(t *testing.T) {
	p, err := Prepare(computeBoundKernel())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []hw.Config{hw.Reference(), hw.Minimum()}
	if err := p.EvalRoundBatch(cfgs, make([]Result, 1)); err == nil {
		t.Fatal("undersized out accepted")
	}
	if err := p.EvalRoundBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestEvalBatchSeamMatchesEvalAllEngines proves the generic BatchRow
// seam (per-cell loop with panic isolation) agrees bit for bit with
// per-cell Eval on every engine, not just the round engine's columnar
// path.
func TestEvalBatchSeamMatchesEvalAllEngines(t *testing.T) {
	engines := map[string]RowEngine{
		"round":    RoundRow,
		"wave":     WaveRow,
		"pipeline": PipelineRow,
		"detailed": DetailedRow,
	}
	kernels := []*kernel.Kernel{
		smaller(computeBoundKernel(), 256),
		smaller(bandwidthBoundKernel(), 256),
		parallelismLimitedKernel(),
		launchBoundKernel(),
	}
	cfgs := []hw.Config{
		hw.Reference(),
		hw.Minimum(),
		{CUs: 17, CoreClockMHz: 727, MemClockMHz: 475},
	}
	for name, e := range engines {
		for _, k := range kernels {
			rowB, err := e.PrepareRow(k)
			if err != nil {
				t.Fatalf("%s PrepareRow(%s): %v", name, k.Name, err)
			}
			rowS, err := e.PrepareRow(k)
			if err != nil {
				t.Fatalf("%s PrepareRow(%s): %v", name, k.Name, err)
			}
			br, ok := rowB.(BatchRow)
			if !ok {
				t.Fatalf("%s prepared row does not implement BatchRow", name)
			}
			out := make([]Result, len(cfgs))
			errs := make([]error, len(cfgs))
			if err := br.EvalBatch(cfgs, out, errs); err != nil {
				t.Fatalf("%s EvalBatch(%s): %v", name, k.Name, err)
			}
			for i, cfg := range cfgs {
				want, werr := rowS.Eval(cfg)
				if (werr == nil) != (errs[i] == nil) {
					t.Fatalf("%s %s cell %d: batch err %v, scalar err %v", name, k.Name, i, errs[i], werr)
				}
				if werr != nil {
					continue
				}
				if !resultBitsEqual(out[i], want) {
					t.Fatalf("%s %s cell %d: batch %+v != scalar %+v", name, k.Name, i, out[i], want)
				}
			}
		}
	}
}

// TestEvalBatchIsolatesPerCellPanics: a panicking cell inside the
// generic batch loop must poison only its own slot.
func TestEvalBatchIsolatesPerCellPanics(t *testing.T) {
	k := smaller(computeBoundKernel(), 128)
	p, err := Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	row := preparedRow{p: p, eval: func(p *Prepared, cfg hw.Config) (Result, error) {
		calls++
		if calls == 2 {
			panic("boom at cell 2")
		}
		return p.EvalRound(cfg)
	}}
	cfgs := []hw.Config{hw.Reference(), hw.Minimum(), hw.Reference()}
	out := make([]Result, len(cfgs))
	errs := []error{nil, errors.New("stale"), nil}
	if err := row.EvalBatch(cfgs, out, errs); err != nil {
		t.Fatalf("EvalBatch: %v", err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy cells got errors: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil || !errors.Is(errs[1], ErrBatchPanic) {
		t.Fatalf("panicked cell error = %v, want ErrBatchPanic", errs[1])
	}
	if !strings.Contains(errs[1].Error(), "boom at cell 2") {
		t.Fatalf("panic message lost: %v", errs[1])
	}
	if out[2].TimeNS <= 0 {
		t.Fatal("cell after the panic was not evaluated")
	}
}

// FuzzEvalRoundBatchEquivalence fuzzes kernel geometry, memory
// behaviour and a two-config mini-axis, asserting the batch evaluator
// tracks the scalar path bit for bit.
func FuzzEvalRoundBatchEquivalence(f *testing.F) {
	f.Add(int64(1), 1024, 256, 2000, 80, uint8(0), 44, 1000.0, 1250.0, 4, 300.0, 500.0)
	f.Add(int64(7), 3, 64, 1, 0, uint8(4), 1, 100.0, 100.0, 44, 1200.0, 1500.0)
	f.Add(int64(9), 891, 128, 500, 300, uint8(2), 20, 727.0, 925.0, 21, 727.0, 475.0)
	f.Fuzz(func(t *testing.T, seed int64, wgs, wgSize, valu, loads int, pat uint8,
		cus1 int, core1, mem1 float64, cus2 int, core2, mem2 float64) {
		r := rand.New(rand.NewSource(seed))
		k, err := kernel.New("t", "t", "fuzz").
			Geometry(wgs, wgSize).
			Compute(valu, r.Intn(500)).
			Access(kernel.AccessPattern(pat%5), loads, r.Intn(64), 4).
			Locality(int64(r.Intn(1<<20)), r.Float64(), 2*r.Float64()).
			MLP(1 + 7*r.Float64()).
			Build()
		if err != nil {
			t.Skip()
		}
		cfgs := []hw.Config{
			{CUs: cus1, CoreClockMHz: core1, MemClockMHz: mem1},
			{CUs: cus2, CoreClockMHz: core2, MemClockMHz: mem2},
		}
		for _, cfg := range cfgs {
			if cfg.Validate() != nil {
				t.Skip()
			}
		}
		if _, err := Prepare(k); err != nil {
			t.Skip()
		}
		assertBatchMatchesScalar(t, k, cfgs)
	})
}
