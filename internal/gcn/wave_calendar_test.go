package gcn

import (
	"math/rand"
	"sort"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/suites"
)

// assertWaveMatchesReference runs the calendar-queue EvalWave against
// the heap-based reference on fresh Prepared instances and requires
// bit equality.
func assertWaveMatchesReference(t *testing.T, k *kernel.Kernel, cfgs []hw.Config) {
	t.Helper()
	pc, err := Prepare(k)
	if err != nil {
		t.Fatalf("Prepare(%s): %v", k.Name, err)
	}
	ph, err := Prepare(k)
	if err != nil {
		t.Fatalf("Prepare(%s): %v", k.Name, err)
	}
	for _, cfg := range cfgs {
		got, gerr := pc.EvalWave(cfg)
		want, werr := referenceEvalWave(ph, cfg)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s@%+v: calendar err %v, heap err %v", k.Name, cfg, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		if !resultBitsEqual(got, want) {
			t.Fatalf("%s@%+v: calendar %+v != heap %+v", k.Name, cfg, got, want)
		}
	}
}

// waveEquivalenceConfigs is a config set that stresses the calendar
// queue's sizing across the grid extremes plus off-grid points.
func waveEquivalenceConfigs() []hw.Config {
	return []hw.Config{
		hw.Reference(),
		hw.Minimum(),
		{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 150},
		{CUs: 4, CoreClockMHz: 100, MemClockMHz: 1500},
		{CUs: 17, CoreClockMHz: 727, MemClockMHz: 475},
		{CUs: 1, CoreClockMHz: 1200, MemClockMHz: 100},
		{CUs: 31, CoreClockMHz: 350, MemClockMHz: 925, L2Override: 256 * 1024},
	}
}

func TestWaveCalendarMatchesHeapOnArchetypes(t *testing.T) {
	kernels := []*kernel.Kernel{
		smaller(computeBoundKernel(), 512),
		smaller(bandwidthBoundKernel(), 512),
		parallelismLimitedKernel(),
		smaller(cuIntolerantKernel(), 512),
		smaller(latencyBoundKernel(), 256),
		launchBoundKernel(),
	}
	cfgs := waveEquivalenceConfigs()
	for _, k := range kernels {
		assertWaveMatchesReference(t, k, cfgs)
	}
}

func TestWaveCalendarMatchesHeapOnCorpusSample(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sample is slow")
	}
	cfgs := waveEquivalenceConfigs()
	all := suites.AllKernels(suites.Corpus())
	for i, k := range all {
		if i%7 != 0 {
			continue // every 7th kernel keeps the suite fast
		}
		if k.Workgroups > 2048 {
			k = smaller(k, 2048)
		}
		assertWaveMatchesReference(t, k, cfgs)
	}
}

func TestWaveCalendarMatchesHeapOnRandomKernels(t *testing.T) {
	r := rand.New(rand.NewSource(314))
	cfgs := waveEquivalenceConfigs()
	built := 0
	for built < 25 {
		k := randomBatchKernel(r)
		if k == nil || k.Workgroups > 1024 {
			continue
		}
		if _, err := Prepare(k); err != nil {
			continue
		}
		built++
		assertWaveMatchesReference(t, k, cfgs)
	}
}

// TestCalQueuePopsInSortedOrder drives the calendar queue directly
// with adversarial event streams — clustered times, exact ties, huge
// gaps, deliberately mismatched widths — and checks it always drains
// in (at, seqKind) order.
func TestCalQueuePopsInSortedOrder(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		var q calQueue
		nb := 1 << (2 + r.Intn(6))
		width := []float64{1e-6, 0.001, 1, 7.25, 1e4}[r.Intn(5)]
		q.reset(nb, width)
		n := 1 + r.Intn(400)
		evs := make([]waveEvent, 0, n)
		base := 0.0
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0: // tie with a previous event
				// keep base
			case 1: // small step
				base += r.Float64()
			case 2: // cluster gap
				base += 100 * r.Float64()
			case 3: // huge jump (forces direct-search re-anchor)
				base += 1e5 * r.Float64()
			}
			evs = append(evs, waveEvent{at: base, wave: int32(i), seqKind: uint32(i+1) << 1})
		}
		// Interleave pushes and pops the way a simulation would.
		want := append([]waveEvent(nil), evs...)
		sort.SliceStable(want, func(i, j int) bool { return waveEventBefore(want[i], want[j]) })
		for _, e := range evs {
			q.push(e)
		}
		for i := 0; q.n > 0; i++ {
			got := q.pop()
			if got != want[i] {
				t.Fatalf("trial %d (nb=%d w=%g): pop %d = %+v, want %+v", trial, nb, width, i, got, want[i])
			}
		}
	}
}

// TestCalQueueInterleavedPushPop mimics the engine's push-after-pop
// pattern: popped events reschedule themselves at later times.
func TestCalQueueInterleavedPushPop(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var q calQueue
	q.reset(64, 0.5)
	seq := uint32(0)
	push := func(at float64) {
		seq++
		q.push(waveEvent{at: at, wave: int32(seq), seqKind: seq << 1})
	}
	for i := 0; i < 50; i++ {
		push(r.Float64() * 10)
	}
	last := -1.0
	lastSeq := uint32(0)
	pops := 0
	for q.n > 0 {
		e := q.pop()
		pops++
		if e.at < last || (e.at == last && e.seqKind < lastSeq) {
			t.Fatalf("pop %d out of order: (%g, %d) after (%g, %d)", pops, e.at, e.seqKind, last, lastSeq)
		}
		last, lastSeq = e.at, e.seqKind
		if pops < 3000 {
			push(e.at + r.Float64()*20)
		}
	}
	if pops < 3000 {
		t.Fatalf("drained after only %d pops", pops)
	}
}
