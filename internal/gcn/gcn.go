// Package gcn is a timing simulator for a GCN-class GPU whose
// compute-unit count, core clock, and memory clock are configurable —
// the substitute for the reconfigurable hardware used in "A Taxonomy of
// GPGPU Performance Scaling" (IISWC 2015).
//
// Two engines share one performance model:
//
//   - The round engine (Simulate) treats execution as batches of
//     resident workgroups and solves each batch's duration from four
//     bounds (issue throughput, L2 bandwidth, DRAM bandwidth, memory
//     latency x concurrency). It is fast enough to run the paper's
//     267-kernel x 891-configuration sweep in seconds.
//   - The detailed engine (SimulateDetailed) dispatches workgroups
//     continuously and advances execution in small time quanta,
//     draining per-workgroup compute and memory work against shared
//     resources. It captures dispatch pipelining and tail effects the
//     round engine approximates, and serves as the fidelity baseline
//     in the ablation experiments.
//
// Neither engine tries to predict absolute hardware runtimes; they
// model the mechanisms that shape how runtime *responds* to the three
// hardware knobs, which is all the taxonomy consumes.
//
// Evaluation is two-phase: Prepare hoists everything a kernel needs
// that does not depend on the configuration (validation, lowering,
// derived geometry, demand factors) to once per kernel, and the
// per-engine (*Prepared).Eval* methods evaluate single configurations
// against that state; see prepared.go. The Simulate* functions remain
// the one-shot per-cell entry points and run the same cores.
package gcn

import (
	"errors"
	"fmt"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// ErrDoesNotFit reports a kernel whose single workgroup exceeds the
// resources of one compute unit.
var ErrDoesNotFit = errors.New("gcn: workgroup does not fit on a compute unit")

// Bound names the resource that limited a simulated execution.
type Bound int

// Bounds, in the order the solver checks them.
const (
	// BoundCompute means VALU/LDS issue throughput dominated.
	BoundCompute Bound = iota
	// BoundDRAM means DRAM bandwidth dominated.
	BoundDRAM
	// BoundL2 means L2/interconnect bandwidth dominated.
	BoundL2
	// BoundLatency means memory latency x limited concurrency dominated.
	BoundLatency
	// BoundLaunch means fixed launch overhead dominated.
	BoundLaunch
)

var boundNames = [...]string{"compute", "dram", "l2", "latency", "launch"}

// String returns the lower-case bound name.
func (b Bound) String() string {
	if b < 0 || int(b) >= len(boundNames) {
		return fmt.Sprintf("bound(%d)", int(b))
	}
	return boundNames[b]
}

// Result reports one simulated kernel execution.
type Result struct {
	// TimeNS is the duration of one kernel invocation, including
	// launch overhead.
	TimeNS float64
	// KernelNS is TimeNS without launch overhead.
	KernelNS float64
	// Throughput is work-items retired per nanosecond — the
	// configuration-invariant performance metric the taxonomy uses.
	Throughput float64
	// AchievedGFLOPS is useful FLOPs divided by kernel time.
	AchievedGFLOPS float64
	// AchievedGBs is DRAM traffic divided by kernel time.
	AchievedGBs float64
	// HitRates is the cache behaviour at steady-state residency.
	HitRates memory.HitRates
	// OccupancyWaves is resident waves per CU at full residency.
	OccupancyWaves int
	// Bound is the dominant limiter over the whole execution.
	Bound Bound
	// BoundShare is the fraction of execution time attributed to the
	// dominant bound's batches.
	BoundShare float64
}

// EngineFunc is the signature every simulator engine shares: one
// kernel on one configuration to one Result. Simulate,
// SimulateDetailed, SimulateWave and SimulatePipeline all satisfy it,
// as do wrappers such as the fault injector; the sweep harness is
// written against this type rather than a concrete engine.
type EngineFunc func(*kernel.Kernel, hw.Config) (Result, error)

// L2BytesPerCoreCycle is the aggregate L2/interconnect bandwidth in
// bytes per core cycle (16 slices x 64 B). At 1 GHz this yields
// ~1 TB/s, in line with GCN-generation parts.
const L2BytesPerCoreCycle = 1024

// l2BandwidthGBs returns L2 bandwidth for a configuration; it lives in
// the core clock domain and is independent of enabled CU count.
func l2BandwidthGBs(cfg hw.Config) float64 {
	return L2BytesPerCoreCycle * cfg.CoreClockMHz / 1000
}

// barrierIssueFactor inflates issue time for barrier-heavy kernels:
// every barrier drains the wavefront pipelines of the workgroup.
func barrierIssueFactor(k *kernel.Kernel) float64 {
	return 1 + 0.08*float64(k.BarriersPerWave)
}

// barrierConcurrencyFactor reduces usable memory concurrency: waves
// parked at a barrier stop issuing memory requests.
func barrierConcurrencyFactor(k *kernel.Kernel) float64 {
	return 1 / (1 + 0.10*float64(k.BarriersPerWave))
}

// demand aggregates the per-workgroup resource demands of a kernel on
// one configuration. Prepared.demandFor recombines the prepared
// config-independent factors with one configuration's clock to build
// it; all engines consume it.
type demand struct {
	wavesPerWG      int
	issueNSPerWG    float64 // CU-exclusive issue time for one WG
	accessesPerWG   float64
	transBytesPerWG float64
	flopsPerWG      float64
}
