package gcn

import (
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/suites"
)

// Corpus-wide physical sanity properties of the round engine. These
// run every one of the 267 corpus kernels against axis sweeps, so any
// modelling regression that breaks basic physics is caught here.

func TestCorpusCoreClockMonotonicity(t *testing.T) {
	// A faster core clock (everything else fixed) must never hurt:
	// every latency and bandwidth term it touches improves or stays.
	for _, k := range suites.AllKernels(suites.Corpus()) {
		prev := -1.0
		for _, f := range hw.StudySpace().CoreClocksMHz {
			r, err := Simulate(k, hw.Config{CUs: 44, CoreClockMHz: f, MemClockMHz: 1250})
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			if r.Throughput < prev*0.999 {
				t.Fatalf("%s: throughput fell from %g to %g at %g MHz core",
					k.Name, prev, r.Throughput, f)
			}
			prev = r.Throughput
		}
	}
}

func TestCorpusMemClockMonotonicity(t *testing.T) {
	for _, k := range suites.AllKernels(suites.Corpus()) {
		prev := -1.0
		for _, f := range hw.StudySpace().MemClocksMHz {
			r, err := Simulate(k, hw.Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: f})
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			if r.Throughput < prev*0.999 {
				t.Fatalf("%s: throughput fell from %g to %g at %g MHz mem",
					k.Name, prev, r.Throughput, f)
			}
			prev = r.Throughput
		}
	}
}

func TestCorpusCUDeclineOnlyFromCacheContention(t *testing.T) {
	// Adding CUs may legitimately hurt — but only via the shared-L2
	// mechanism. Kernels whose aggregate working set cannot overflow
	// the L2 must be CU-monotone.
	for _, e := range suites.AllEntries(suites.Corpus()) {
		k := e.Kernel
		maxResident := int64(k.WorkgroupsPerCU()) * int64(hw.MaxCUs)
		if maxResident*k.Mem.WorkingSetPerWG > hw.L2Bytes/2 {
			continue // contention plausible: decline allowed
		}
		prev := -1.0
		for _, cu := range hw.StudySpace().CUCounts {
			r, err := Simulate(k, hw.Config{CUs: cu, CoreClockMHz: 1000, MemClockMHz: 1250})
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			if r.Throughput < prev*0.999 {
				t.Fatalf("%s (%v): CU-decline without cache contention: %g -> %g at %d CUs",
					k.Name, e.Archetype, prev, r.Throughput, cu)
			}
			prev = r.Throughput
		}
	}
}

func TestCorpusBoundsAreConsistent(t *testing.T) {
	// The reported dominant bound must be consistent with the knobs'
	// measured influence: a kernel reported DRAM-bound at the flagship
	// config must respond to memory clock more than a compute-bound
	// one responds to it.
	for _, k := range suites.AllKernels(suites.Corpus())[:60] {
		ref, err := Simulate(k, hw.Reference())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		slowMem, err := Simulate(k, hw.Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 700})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		memSensitivity := ref.Throughput / slowMem.Throughput
		switch ref.Bound {
		case BoundDRAM:
			if ref.BoundShare > 0.9 && memSensitivity < 1.2 {
				t.Errorf("%s: reported DRAM-bound (share %.2f) but mem clock cut costs only %.2fx",
					k.Name, ref.BoundShare, memSensitivity)
			}
		case BoundCompute:
			if ref.BoundShare > 0.9 && memSensitivity > 1.3 {
				t.Errorf("%s: reported compute-bound (share %.2f) but mem clock cut costs %.2fx",
					k.Name, ref.BoundShare, memSensitivity)
			}
		}
	}
}

func TestCorpusOccupancyWithinHardwareLimits(t *testing.T) {
	for _, k := range suites.AllKernels(suites.Corpus()) {
		occ := k.OccupancyWavesPerCU()
		if occ < 1 || occ > hw.MaxWavesPerCU {
			t.Errorf("%s: occupancy %d outside [1, %d]", k.Name, occ, hw.MaxWavesPerCU)
		}
	}
}
