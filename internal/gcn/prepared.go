package gcn

import (
	"fmt"

	"gpuscale/internal/hw"
	"gpuscale/internal/isa"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// The two-phase evaluation pipeline. The paper's artifact is a
// 267-kernel x 891-configuration matrix, and everything a kernel
// needs that does not depend on the configuration — validation, ISA
// lowering, derived launch geometry, demand factors — is identical
// across a row. Prepare hoists all of it to once per kernel;
// (*Prepared).Eval* then evaluates one configuration using the
// prepared state, two memos keyed on each sub-computation's true
// inputs, and reusable scratch arenas for the event-driven engines.
//
// The legacy per-cell entry points (Simulate, SimulateWave,
// SimulatePipeline, SimulateDetailed) are thin wrappers that prepare
// a fresh kernel per call, so both paths run the same core code and
// agree bit for bit.

// PreparedStats counts the memoization behaviour of one prepared
// kernel: how often the resident-set cycle simulation and the cache
// hit-rate estimate were served from their memos (hits) versus
// computed (misses).
type PreparedStats struct {
	ResidentSetHits, ResidentSetMisses int
	HitRateHits, HitRateMisses         int
}

// hrKey is the full input of memory.EstimateHitRatesL2 beyond the
// kernel itself.
type hrKey struct {
	resident, cus, l2Bytes int
}

// rsKey is the full input of the resident-set cycle simulation beyond
// the lowered program, which is fixed per kernel. Latency is
// quantized to integer cycles before it gets here, so most of a row's
// configurations collapse onto a handful of keys.
type rsKey struct {
	wgs, wavesPerWG int
	latencyCycles   int64
	policy          SchedPolicy
}

// Prepared is the per-kernel half of the pipeline: one validated
// kernel with every config-independent quantity computed, plus the
// memos and scratch its evaluations share. A Prepared reuses internal
// state across Eval* calls and is NOT safe for concurrent use; give
// each worker its own.
type Prepared struct {
	k   *kernel.Kernel
	der kernel.Derived

	// occWGs is the resident-workgroup capacity of one CU; Prepare
	// guarantees it is at least 1.
	occWGs int

	// Demand factors, kept separate so per-config recombination
	// reproduces newDemand's original expression order bit for bit.
	issueInstr      float64
	barrierIssue    float64
	barrierConc     float64
	accessesPerWG   float64
	transBytesPerWG float64
	flopsPerWG      float64

	// prog is the lowered instruction stream, built lazily on the
	// first pipeline evaluation; the other engines never need it.
	prog *isa.Program

	hrMemo map[hrKey]memory.HitRates
	rsMemo map[rsKey]int64
	// hrByCU is the dense fast path of the hit-rate memo for the
	// common key shape (resident == occWGs, stock L2 capacity): the
	// CU count is small and bounded, so an array lookup replaces map
	// hashing in the innermost per-cell path.
	hrByCU [hw.MaxCUs + 1]memory.HitRates
	hrSeen [hw.MaxCUs + 1]bool
	// hrLast short-circuits the map for keys outside the dense shape
	// (tail batches): a sweep row holds the CU axis constant across
	// long runs of configs, so the previous tail key almost always
	// repeats.
	hrLast   hrKey
	hrLastV  memory.HitRates
	hrLastOK bool
	stats    PreparedStats

	wave *waveScratch
	pipe *cuPipeline
	det  *detailedScratch
}

// Prepare validates a kernel and hoists every config-independent
// derived quantity. It returns the kernel's validation error, or
// ErrDoesNotFit when a single workgroup exceeds one CU — both are
// row-level conditions: no configuration can change them.
func Prepare(k *kernel.Kernel) (*Prepared, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	der := k.Derive()
	if der.WorkgroupsPerCU == 0 {
		return nil, fmt.Errorf("%w: %s", ErrDoesNotFit, k.Name)
	}
	w := der.WavesPerWG
	return &Prepared{
		k:               k,
		der:             der,
		occWGs:          der.WorkgroupsPerCU,
		issueInstr:      float64(k.VALUPerWave+k.LDSOpsPerWave) * float64(w),
		barrierIssue:    barrierIssueFactor(k),
		barrierConc:     barrierConcurrencyFactor(k),
		accessesPerWG:   float64(der.MemAccessesPerWave * w),
		transBytesPerWG: float64(der.TransactionBytesPerWave * int64(w)),
		flopsPerWG:      der.FlopsPerWave * float64(w),
	}, nil
}

// Kernel returns the prepared kernel. Treat it as immutable for the
// Prepared's lifetime.
func (p *Prepared) Kernel() *kernel.Kernel { return p.k }

// Stats returns the memoization counters accumulated so far.
func (p *Prepared) Stats() PreparedStats { return p.stats }

// demandFor recombines the prepared factors with one configuration's
// clock. The issue-time expression mirrors newDemand's association
// order exactly ((instr * cycle) * barrier) so results stay
// bit-identical to the historical per-cell computation.
func (p *Prepared) demandFor(cfg hw.Config) demand {
	return demand{
		wavesPerWG:      p.der.WavesPerWG,
		issueNSPerWG:    p.issueInstr * cfg.CoreCycleNS() * p.barrierIssue,
		accessesPerWG:   p.accessesPerWG,
		transBytesPerWG: p.transBytesPerWG,
		flopsPerWG:      p.flopsPerWG,
	}
}

// hitRates memoizes memory.EstimateHitRatesL2 on its full input
// tuple; across a row only a handful of (residency, CU, L2) triples
// occur.
func (p *Prepared) hitRates(resident, cus, l2Bytes int) memory.HitRates {
	if resident == p.occWGs && l2Bytes == hw.L2Bytes && cus >= 1 && cus <= hw.MaxCUs {
		if p.hrSeen[cus] {
			p.stats.HitRateHits++
			return p.hrByCU[cus]
		}
		hr := memory.EstimateHitRatesL2(p.k, resident, cus, l2Bytes)
		p.hrByCU[cus] = hr
		p.hrSeen[cus] = true
		p.stats.HitRateMisses++
		return hr
	}
	key := hrKey{resident, cus, l2Bytes}
	if p.hrLastOK && key == p.hrLast {
		p.stats.HitRateHits++
		return p.hrLastV
	}
	if hr, ok := p.hrMemo[key]; ok {
		p.stats.HitRateHits++
		p.hrLast, p.hrLastV, p.hrLastOK = key, hr, true
		return hr
	}
	hr := memory.EstimateHitRatesL2(p.k, resident, cus, l2Bytes)
	if p.hrMemo == nil {
		p.hrMemo = make(map[hrKey]memory.HitRates, 64)
	}
	p.hrMemo[key] = hr
	p.hrLast, p.hrLastV, p.hrLastOK = key, hr, true
	p.stats.HitRateMisses++
	return hr
}

// program lowers the kernel on first use and caches the result.
func (p *Prepared) program() (*isa.Program, error) {
	if p.prog == nil {
		prog, err := isa.Lower(p.k)
		if err != nil {
			return nil, err
		}
		p.prog = prog
	}
	return p.prog, nil
}

// residentSetCycles memoizes the cycle-level resident-set simulation
// on its full input tuple (the program is fixed per kernel).
func (p *Prepared) residentSetCycles(prog *isa.Program, wgs, wavesPerWG int, latencyCycles int64, policy SchedPolicy) (int64, error) {
	key := rsKey{wgs: wgs, wavesPerWG: wavesPerWG, latencyCycles: latencyCycles, policy: policy}
	if c, ok := p.rsMemo[key]; ok {
		p.stats.ResidentSetHits++
		return c, nil
	}
	if p.pipe == nil {
		p.pipe = &cuPipeline{}
	}
	c, err := runResidentSet(p.pipe, prog, wgs, wavesPerWG, latencyCycles, policy)
	if err != nil {
		return 0, err
	}
	if p.rsMemo == nil {
		p.rsMemo = make(map[rsKey]int64, 16)
	}
	p.rsMemo[key] = c
	p.stats.ResidentSetMisses++
	return c, nil
}

// PreparedRow is one kernel prepared for a row of evaluations on one
// engine.
type PreparedRow interface {
	// Eval evaluates the prepared kernel on one configuration. The
	// configuration must already be validated; Eval skips the
	// re-check. Like Prepared, a PreparedRow reuses internal scratch
	// and is NOT safe for concurrent use.
	Eval(cfg hw.Config) (Result, error)
	// Stats reports the memoization counters accumulated so far.
	Stats() PreparedStats
}

// RowEngine is the row-granular form of an engine: one PrepareRow per
// kernel, then per-configuration evaluations that share prepared
// state. Wrappers (fault injection) interpose at this seam just as
// they do on EngineFunc.
type RowEngine interface {
	// PrepareRow validates the kernel and hoists every
	// config-independent quantity, returning the row evaluator.
	PrepareRow(k *kernel.Kernel) (PreparedRow, error)
}

// Row engines for the four simulators. Every prepared row also
// implements BatchRow; the round engine additionally routes batches
// through its columnar evaluator.
var (
	RoundRow    RowEngine = rowEngine{eval: (*Prepared).EvalRound, batch: roundBatchRow}
	WaveRow     RowEngine = rowEngine{eval: (*Prepared).EvalWave}
	PipelineRow RowEngine = rowEngine{eval: (*Prepared).EvalPipeline}
	DetailedRow RowEngine = rowEngine{eval: (*Prepared).EvalDetailed}
)

type rowEngine struct {
	eval  func(*Prepared, hw.Config) (Result, error)
	batch func(*Prepared, []hw.Config, []Result, []error) error
}

func (e rowEngine) PrepareRow(k *kernel.Kernel) (PreparedRow, error) {
	p, err := Prepare(k)
	if err != nil {
		return nil, err
	}
	return preparedRow{p: p, eval: e.eval, batch: e.batch}, nil
}

type preparedRow struct {
	p     *Prepared
	eval  func(*Prepared, hw.Config) (Result, error)
	batch func(*Prepared, []hw.Config, []Result, []error) error
}

func (r preparedRow) Eval(cfg hw.Config) (Result, error) { return r.eval(r.p, cfg) }
func (r preparedRow) Stats() PreparedStats               { return r.p.Stats() }

// PerCell adapts a row engine back to the per-cell EngineFunc
// contract: every call prepares afresh, shares no state with any
// other call, and re-validates the configuration. It is the
// degradation path the sweep falls back to when a prepared row must
// be abandoned (an abandoned engine call may still own the row's
// scratch), and wrapping a fault-injected row engine with it keeps
// both paths drawing from the same fault decision stream.
func PerCell(e RowEngine) EngineFunc {
	return func(k *kernel.Kernel, cfg hw.Config) (Result, error) {
		row, err := e.PrepareRow(k)
		if err != nil {
			return Result{}, err
		}
		if err := cfg.Validate(); err != nil {
			return Result{}, err
		}
		return row.Eval(cfg)
	}
}

// growF returns a zeroed float64 slice of length n, reusing capacity.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growI returns a zeroed int slice of length n, reusing capacity.
func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
