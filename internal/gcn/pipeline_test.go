package gcn

import (
	"errors"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/isa"
	"gpuscale/internal/kernel"
)

func mustSimPipeline(t *testing.T, k *kernel.Kernel, cfg hw.Config) Result {
	t.Helper()
	r, err := SimulatePipeline(k, cfg)
	if err != nil {
		t.Fatalf("SimulatePipeline(%s, %v): %v", k.Name, cfg, err)
	}
	return r
}

func TestPipelinePureComputeIPC(t *testing.T) {
	// With many waves and no memory, the vector port must stay busy:
	// cycles ~= total VALU+LDS instructions in the resident set.
	prog := &isa.Program{Name: "pure", Body: []isa.Instr{
		{Op: isa.OpVALU, Count: 1000},
		{Op: isa.OpEnd, Count: 1},
	}}
	cycles, err := simulateResidentSet(prog, 8, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(8 * 4 * 1000)
	if cycles < want || cycles > want+want/10 {
		t.Errorf("cycles = %d, want ~%d (vector port saturated)", cycles, want)
	}
}

func TestPipelineScoreboardStallsDependentLoads(t *testing.T) {
	// A fully dependent chain of loads serialises on latency; an
	// independent stream of the same loads pipelines.
	mk := func(dep bool) *isa.Program {
		var body []isa.Instr
		for i := 0; i < 50; i++ {
			body = append(body, isa.Instr{Op: isa.OpLoad, Count: 1, DependsOnLoad: dep})
		}
		body = append(body, isa.Instr{Op: isa.OpEnd, Count: 1})
		return &isa.Program{Name: "chain", Body: body}
	}
	const lat = 300
	serial, err := simulateResidentSet(mk(true), 1, 1, lat)
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := simulateResidentSet(mk(false), 1, 1, lat)
	if err != nil {
		t.Fatal(err)
	}
	if serial < 50*lat {
		t.Errorf("dependent chain took %d cycles, want >= %d", serial, 50*lat)
	}
	if pipelined > serial/10 {
		t.Errorf("independent loads took %d cycles vs serial %d: no pipelining", pipelined, serial)
	}
}

func TestPipelineMultiWaveLatencyHiding(t *testing.T) {
	// One wave alternating load->dependent compute stalls; many waves
	// interleave and hide each other's latency.
	prog := func() *isa.Program {
		var body []isa.Instr
		for i := 0; i < 20; i++ {
			body = append(body,
				isa.Instr{Op: isa.OpLoad, Count: 1},
				isa.Instr{Op: isa.OpVALU, Count: 40, DependsOnLoad: true},
			)
		}
		body = append(body, isa.Instr{Op: isa.OpEnd, Count: 1})
		return &isa.Program{Name: "alt", Body: body}
	}()
	const lat = 300
	one, err := simulateResidentSet(prog, 1, 1, lat)
	if err != nil {
		t.Fatal(err)
	}
	ten, err := simulateResidentSet(prog, 10, 1, lat)
	if err != nil {
		t.Fatal(err)
	}
	perWaveOne := float64(one)
	perWaveTen := float64(ten) / 10
	if perWaveTen > perWaveOne*0.5 {
		t.Errorf("10-wave per-wave cost %.0f vs solo %.0f: latency not hidden",
			perWaveTen, perWaveOne)
	}
}

func TestPipelineBarrierSynchronises(t *testing.T) {
	// Barriers force the workgroup's waves into lockstep; with the
	// vector port shared, a barrier between compute blocks must not
	// deadlock and must cost at least the no-barrier time.
	withBar := &isa.Program{Name: "bar", Body: []isa.Instr{
		{Op: isa.OpVALU, Count: 100},
		{Op: isa.OpBarrier, Count: 1},
		{Op: isa.OpVALU, Count: 100},
		{Op: isa.OpEnd, Count: 1},
	}}
	noBar := &isa.Program{Name: "nobar", Body: []isa.Instr{
		{Op: isa.OpVALU, Count: 200},
		{Op: isa.OpEnd, Count: 1},
	}}
	with, err := simulateResidentSet(withBar, 2, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	without, err := simulateResidentSet(noBar, 2, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	if with < without {
		t.Errorf("barrier program (%d cycles) faster than barrier-free (%d)", with, without)
	}
	if with < 2*4*200 {
		t.Errorf("barrier program finished in %d cycles, below issue floor %d", with, 2*4*200)
	}
}

func TestPipelineBarrierZeroCountValidates(t *testing.T) {
	p := &isa.Program{Name: "z", Body: []isa.Instr{
		{Op: isa.OpBarrier, Count: 0},
		{Op: isa.OpEnd, Count: 1},
	}}
	if _, err := simulateResidentSet(p, 1, 1, 10); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestPipelineMatchesRoundOnArchetypes(t *testing.T) {
	kernels := []*kernel.Kernel{
		smaller(computeBoundKernel(), 256),
		smaller(bandwidthBoundKernel(), 256),
		smaller(latencyBoundKernel(), 128),
	}
	for _, k := range kernels {
		for _, cfg := range []hw.Config{hw.Reference(), cfgWith(20, 600, 700)} {
			round := mustSim(t, k, cfg)
			pipe := mustSimPipeline(t, k, cfg)
			ratio := pipe.KernelNS / round.KernelNS
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s@%v: pipeline/round = %.2f (pipe %.0f ns, round %.0f ns)",
					k.Name, cfg, ratio, pipe.KernelNS, round.KernelNS)
			}
		}
	}
}

func TestPipelineScalingDirections(t *testing.T) {
	comp := smaller(computeBoundKernel(), 256)
	base := mustSimPipeline(t, comp, cfgWith(22, 500, 1250))
	fast := mustSimPipeline(t, comp, cfgWith(22, 1000, 1250))
	if r := fast.Throughput / base.Throughput; r < 1.7 || r > 2.3 {
		t.Errorf("2x clock speedup = %.2f, want ~2", r)
	}
	bw := smaller(bandwidthBoundKernel(), 256)
	slow := mustSimPipeline(t, bw, cfgWith(44, 1000, 300))
	fastM := mustSimPipeline(t, bw, cfgWith(44, 1000, 1200))
	if r := fastM.Throughput / slow.Throughput; r < 2.5 {
		t.Errorf("4x mem speedup = %.2f, want material", r)
	}
}

func TestPipelineErrors(t *testing.T) {
	bad := computeBoundKernel()
	bad.VALUPerWave = 0
	if _, err := SimulatePipeline(bad, hw.Reference()); err == nil {
		t.Error("invalid kernel accepted")
	}
	if _, err := SimulatePipeline(computeBoundKernel(), hw.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	huge := computeBoundKernel()
	huge.SGPRsPerWave = 512
	huge.WGSize = 1024
	if _, err := SimulatePipeline(huge, hw.Reference()); !errors.Is(err, ErrDoesNotFit) {
		t.Errorf("SimulatePipeline = %v, want ErrDoesNotFit", err)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	k := smaller(bandwidthBoundKernel(), 64)
	a := mustSimPipeline(t, k, cfgWith(20, 700, 700))
	b := mustSimPipeline(t, k, cfgWith(20, 700, 700))
	if a.KernelNS != b.KernelNS {
		t.Fatalf("non-deterministic: %g vs %g", a.KernelNS, b.KernelNS)
	}
}

func TestSchedulerPolicies(t *testing.T) {
	// Build a latency-mix program and run both policies; both must
	// drain the same work, and GTO's greedy draining must not beat the
	// theoretical issue floor.
	var body []isa.Instr
	for i := 0; i < 10; i++ {
		body = append(body,
			isa.Instr{Op: isa.OpLoad, Count: 2},
			isa.Instr{Op: isa.OpVALU, Count: 60, DependsOnLoad: true},
		)
	}
	body = append(body, isa.Instr{Op: isa.OpEnd, Count: 1})
	prog := &isa.Program{Name: "mix", Body: body}

	rr, err := SimulateResidentSetPolicy(prog, 4, 4, 300, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	gto, err := SimulateResidentSetPolicy(prog, 4, 4, 300, GreedyThenOldest)
	if err != nil {
		t.Fatal(err)
	}
	floor := int64(4 * 4 * 600) // total VALU instructions
	if rr < floor || gto < floor {
		t.Fatalf("policy beat the issue floor: rr=%d gto=%d floor=%d", rr, gto, floor)
	}
	// The policies differ in interleaving but must land within 2x of
	// each other on this workload.
	hi, lo := rr, gto
	if hi < lo {
		hi, lo = lo, hi
	}
	if hi > 2*lo {
		t.Errorf("policies diverge wildly: rr=%d gto=%d", rr, gto)
	}
}

func TestSchedPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || GreedyThenOldest.String() != "gto" {
		t.Error("policy names wrong")
	}
}
