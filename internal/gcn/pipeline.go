package gcn

import (
	"fmt"
	"math"

	"gpuscale/internal/hw"
	"gpuscale/internal/isa"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// The pipeline engine: execution-driven, cycle-level simulation of one
// compute unit interpreting the kernel's lowered instruction stream
// (internal/isa). One full resident set (occupancy workgroups) runs
// cycle by cycle with per-port issue arbitration, a load scoreboard,
// and workgroup barriers; the measured resident-set time then replaces
// the round engine's analytic issue bound for the whole launch.
//
// It is the only engine that sees instruction order, so it captures
// what the others assume: that latency hiding works when independent
// instructions exist and fails when the stream is dependence-bound.

// pipelinePorts is the per-cycle issue capability of a CU in this
// model: one vector-ish instruction (VALU/LDS), one memory
// instruction, one scalar instruction — matching the aggregate rates
// the coarse engines assume.
type cuPipeline struct {
	prog       *isa.Program
	waves      []pipeWave
	wavesPerWG int

	// Load completions are FIFO because latency is constant.
	loadDone []loadCompletion

	// barrier bookkeeping per resident workgroup.
	arrived []int

	policy SchedPolicy

	cycle int64
}

type pipeWave struct {
	wg        int // resident workgroup index
	instr     int // index into prog.Body
	remaining int // repetitions left of the current instruction
	loads     int // outstanding loads
	atBarrier bool
	done      bool
}

type loadCompletion struct {
	cycle int64
	wave  int
}

// SimulatePipeline runs the execution-driven engine for one kernel on
// one configuration. Use for validation; cost is
// O(resident waves x dynamic instructions) cycles per launch batch.
func SimulatePipeline(k *kernel.Kernel, cfg hw.Config) (Result, error) {
	if err := k.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	occWGs := k.WorkgroupsPerCU()
	if occWGs == 0 {
		return Result{}, fmt.Errorf("%w: %s", ErrDoesNotFit, k.Name)
	}
	prog, err := isa.Lower(k)
	if err != nil {
		return Result{}, err
	}
	d := newDemand(k, cfg)
	hier := memory.NewHierarchy(cfg)
	hr := memory.EstimateHitRatesL2(k, occWGs, cfg.CUs, cfg.L2CapacityBytes())

	// Estimate channel utilisation from the analytic solver so load
	// latency reflects queueing, then convert to cycles.
	fullBatch := cfg.CUs * occWGs
	totalWGs := fullBatch
	if k.Workgroups < totalWGs {
		totalWGs = k.Workgroups
	}
	analyticT, _, _ := batchTime(k, cfg, d, cfg.CUs, occWGs, totalWGs)
	util := 0.0
	if analyticT > 0 {
		effBW := hier.EffectiveBandwidthGBs(k.Mem.Pattern)
		dramBytes := float64(totalWGs) * d.transBytesPerWG * (1 - hr.L1) * (1 - hr.L2)
		if effBW > 0 {
			util = clampUnit(dramBytes / effBW / analyticT)
		}
	}
	latencyCycles := int64(math.Ceil(hier.AvgAccessLatencyNS(hr, util) / cfg.CoreCycleNS()))
	if latencyCycles < 1 {
		latencyCycles = 1
	}

	// Cycle-simulate one CU holding one full resident set.
	residentWGs := occWGs
	if k.Workgroups < residentWGs {
		residentWGs = k.Workgroups
	}
	cycles, err := simulateResidentSet(prog, residentWGs, d.wavesPerWG, latencyCycles)
	if err != nil {
		return Result{}, err
	}
	setTimeNS := float64(cycles) * cfg.CoreCycleNS()

	// Whole launch: the measured resident-set time replaces the
	// analytic issue bound; global bandwidth bounds still apply.
	kernelNS := 0.0
	boundNS := map[Bound]float64{}
	remaining := k.Workgroups
	for remaining > 0 {
		batch := fullBatch
		if remaining < batch {
			batch = remaining
		}
		activeCUs := (batch + occWGs - 1) / occWGs
		if activeCUs > cfg.CUs {
			activeCUs = cfg.CUs
		}
		hrB := memory.EstimateHitRatesL2(k, occWGs, activeCUs, cfg.L2CapacityBytes())
		l2Bytes := float64(batch) * d.transBytesPerWG * (1 - hrB.L1)
		dramBytes := l2Bytes * (1 - hrB.L2)
		l2T := 0.0
		if l2Bytes > 0 {
			l2T = l2Bytes / l2BandwidthGBs(cfg)
		}
		dramT := 0.0
		if eff := hier.EffectiveBandwidthGBs(k.Mem.Pattern); eff > 0 && dramBytes > 0 {
			dramT = dramBytes / eff
		}
		t := setTimeNS
		b := BoundCompute
		if dramT > t {
			t, b = dramT, BoundDRAM
		}
		if l2T > t {
			t, b = l2T, BoundL2
		}
		kernelNS += t
		boundNS[b] += t
		remaining -= batch
	}

	total := kernelNS + k.LaunchOverheadNS
	dominant, share := dominantBound(boundNS, kernelNS, k.LaunchOverheadNS, total)
	transBytes := d.transBytesPerWG * float64(k.Workgroups)
	dramBytes := transBytes * (1 - hr.L1) * (1 - hr.L2)
	return Result{
		TimeNS:         total,
		KernelNS:       kernelNS,
		Throughput:     float64(k.TotalWorkItems()) / total,
		AchievedGFLOPS: d.flopsPerWG * float64(k.Workgroups) / total,
		AchievedGBs:    dramBytes / total,
		HitRates:       hr,
		OccupancyWaves: k.OccupancyWavesPerCU(),
		Bound:          dominant,
		BoundShare:     share,
	}, nil
}

// SchedPolicy selects the wavefront scheduling policy of the pipeline
// engine's issue ports.
type SchedPolicy int

// Scheduling policies.
const (
	// RoundRobin rotates fairly across ready waves (the default; GCN's
	// baseline arbitration is close to this).
	RoundRobin SchedPolicy = iota
	// GreedyThenOldest always drains the oldest ready wave — the GTO
	// policy common in GPU-simulator studies.
	GreedyThenOldest
)

// String names the policy.
func (p SchedPolicy) String() string {
	if p == GreedyThenOldest {
		return "gto"
	}
	return "round-robin"
}

// simulateResidentSet runs wgs workgroups (wavesPerWG waves each) of
// prog on one CU, cycle by cycle, and returns the cycles to drain them
// all.
func simulateResidentSet(prog *isa.Program, wgs, wavesPerWG int, latencyCycles int64) (int64, error) {
	return SimulateResidentSetPolicy(prog, wgs, wavesPerWG, latencyCycles, RoundRobin)
}

// SimulateResidentSetPolicy is the policy-parameterised resident-set
// simulation, exposed for the scheduler-policy ablation: it returns
// the cycles one CU needs to drain wgs workgroups of the program.
func SimulateResidentSetPolicy(prog *isa.Program, wgs, wavesPerWG int, latencyCycles int64, policy SchedPolicy) (int64, error) {
	if err := prog.Validate(); err != nil {
		return 0, err
	}
	p := &cuPipeline{
		prog:       prog,
		wavesPerWG: wavesPerWG,
		arrived:    make([]int, wgs),
		policy:     policy,
	}
	for wg := 0; wg < wgs; wg++ {
		for i := 0; i < wavesPerWG; i++ {
			p.waves = append(p.waves, pipeWave{
				wg:        wg,
				remaining: prog.Body[0].Count,
			})
		}
	}

	live := len(p.waves)
	rrVec, rrMem, rrScalar := 0, 0, 0
	const safety = int64(1) << 40
	for live > 0 {
		if p.cycle > safety {
			return 0, fmt.Errorf("gcn: pipeline engine ran away on %s", prog.Name)
		}
		// Retire loads completing at or before this cycle.
		for len(p.loadDone) > 0 && p.loadDone[0].cycle <= p.cycle {
			p.waves[p.loadDone[0].wave].loads--
			p.loadDone = p.loadDone[1:]
		}

		issued := false
		// One vector (VALU/LDS), one memory (load/store), one scalar
		// issue per cycle, each from any ready wave, round-robin.
		if w := p.pickReady(&rrVec, isVector); w >= 0 {
			p.step(w)
			issued = true
		}
		if w := p.pickReady(&rrMem, isMemory); w >= 0 {
			wv := &p.waves[w]
			if p.prog.Body[wv.instr].Op == isa.OpLoad {
				wv.loads++
				p.loadDone = append(p.loadDone, loadCompletion{cycle: p.cycle + latencyCycles, wave: w})
			}
			p.step(w)
			issued = true
		}
		if w := p.pickReady(&rrScalar, isScalar); w >= 0 {
			p.step(w)
			issued = true
		}
		// Non-port instructions: barriers and ends resolve without an
		// issue slot.
		for w := range p.waves {
			wv := &p.waves[w]
			if wv.done || wv.atBarrier {
				continue
			}
			switch op := p.prog.Body[wv.instr].Op; op {
			case isa.OpBarrier:
				wv.atBarrier = true
				p.arrived[wv.wg]++
				if p.arrived[wv.wg] == p.wavesPerWG {
					p.releaseBarrier(wv.wg)
				}
				issued = true
			case isa.OpEnd:
				if wv.loads == 0 {
					wv.done = true
					live--
					issued = true
				}
			}
		}

		if issued {
			p.cycle++
			continue
		}
		// Everything is stalled: skip to the next load completion.
		if len(p.loadDone) > 0 {
			p.cycle = p.loadDone[0].cycle
			continue
		}
		return 0, fmt.Errorf("gcn: pipeline deadlock on %s at cycle %d", prog.Name, p.cycle)
	}
	return p.cycle, nil
}

func isVector(op isa.Op) bool { return op == isa.OpVALU || op == isa.OpLDS }
func isMemory(op isa.Op) bool { return op == isa.OpLoad || op == isa.OpStore }
func isScalar(op isa.Op) bool { return op == isa.OpSALU }

// pickReady returns the index of the next wave whose current
// instruction matches the port and is ready to issue, or -1. Under
// RoundRobin the scan rotates from *rr; under GreedyThenOldest it
// always starts from wave 0 (oldest first, sticking with a wave until
// it stalls).
func (p *cuPipeline) pickReady(rr *int, port func(isa.Op) bool) int {
	n := len(p.waves)
	start := *rr
	if p.policy == GreedyThenOldest {
		start = 0
	}
	for i := 0; i < n; i++ {
		w := (start + i) % n
		wv := &p.waves[w]
		if wv.done || wv.atBarrier {
			continue
		}
		in := p.prog.Body[wv.instr]
		if !port(in.Op) {
			continue
		}
		if in.DependsOnLoad && wv.loads > 0 {
			continue
		}
		if p.policy == RoundRobin {
			*rr = (w + 1) % n
		}
		return w
	}
	return -1
}

// step consumes one repetition of wave w's current instruction.
func (p *cuPipeline) step(w int) {
	wv := &p.waves[w]
	wv.remaining--
	if wv.remaining == 0 {
		wv.instr++
		if wv.instr < len(p.prog.Body) {
			wv.remaining = p.prog.Body[wv.instr].Count
		}
	}
}

// releaseBarrier wakes every wave of a workgroup waiting at a barrier
// and advances them past it.
func (p *cuPipeline) releaseBarrier(wg int) {
	p.arrived[wg] = 0
	for w := range p.waves {
		wv := &p.waves[w]
		if wv.wg == wg && wv.atBarrier {
			wv.atBarrier = false
			p.step(w)
		}
	}
}
