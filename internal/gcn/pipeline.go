package gcn

import (
	"fmt"
	"math"

	"gpuscale/internal/hw"
	"gpuscale/internal/isa"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// The pipeline engine: execution-driven, cycle-level simulation of one
// compute unit interpreting the kernel's lowered instruction stream
// (internal/isa). One full resident set (occupancy workgroups) runs
// cycle by cycle with per-port issue arbitration, a load scoreboard,
// and workgroup barriers; the measured resident-set time then replaces
// the round engine's analytic issue bound for the whole launch.
//
// It is the only engine that sees instruction order, so it captures
// what the others assume: that latency hiding works when independent
// instructions exist and fails when the stream is dependence-bound.

// Instruction classes. Each wave caches the class of its current
// instruction so the per-cycle port scans are one-byte compares
// instead of Body lookups through a predicate call, and the engine
// keeps a per-class population count so a port with no candidate
// wave is skipped without scanning at all. The counts are pure
// bookkeeping over the same state transitions the original scan
// performed, so issue order — and therefore the cycle count — is
// unchanged.
const (
	clsVector  uint8 = iota // VALU / LDS
	clsMemory               // load / store
	clsScalar               // SALU
	clsBarrier              // at a barrier instruction, not yet parked
	clsEnd                  // at the end marker, waiting for loads
	clsBlocked              // parked at a barrier, or retired
	numClasses
)

func classOfOp(op isa.Op) uint8 {
	switch op {
	case isa.OpVALU, isa.OpLDS:
		return clsVector
	case isa.OpLoad, isa.OpStore:
		return clsMemory
	case isa.OpSALU:
		return clsScalar
	case isa.OpBarrier:
		return clsBarrier
	default:
		return clsEnd
	}
}

// pipelinePorts is the per-cycle issue capability of a CU in this
// model: one vector-ish instruction (VALU/LDS), one memory
// instruction, one scalar instruction — matching the aggregate rates
// the coarse engines assume. The struct doubles as the engine's
// reusable scratch: runResidentSet resets every field, so one
// cuPipeline can serve a whole row of evaluations.
type cuPipeline struct {
	prog       *isa.Program
	waves      []pipeWave
	wavesPerWG int

	// classOf/depOf mirror prog.Body per instruction index; ready
	// counts waves per class (rebuilt at the start of every run).
	classOf []uint8
	depOf   []bool
	ready   [numClasses]int32

	// Load completions are FIFO because latency is constant. loadHead
	// indexes the next un-retired completion; consuming by advancing
	// the head instead of reslicing keeps the buffer reusable.
	loadDone []loadCompletion
	loadHead int

	// barrier bookkeeping per resident workgroup.
	arrived []int

	policy SchedPolicy

	cycle int64
}

type pipeWave struct {
	wg        int // resident workgroup index
	instr     int // index into prog.Body
	remaining int // repetitions left of the current instruction
	loads     int // outstanding loads
	cls       uint8 // class of Body[instr], clsBlocked when parked/done
	dep       bool  // Body[instr].DependsOnLoad
	atBarrier bool
	done      bool
}

type loadCompletion struct {
	cycle int64
	wave  int
}

// SimulatePipeline runs the execution-driven engine for one kernel on
// one configuration. Use for validation; cost is
// O(resident waves x dynamic instructions) cycles per launch batch.
// For whole-row evaluation, Prepare once and call EvalPipeline per
// config: the resident-set simulation is memoized on its quantized
// inputs, which collapses most of a row onto a few cycle runs.
func SimulatePipeline(k *kernel.Kernel, cfg hw.Config) (Result, error) {
	p, err := Prepare(k)
	if err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return p.EvalPipeline(cfg)
}

// EvalPipeline runs the pipeline engine on one already-validated
// configuration using the prepared (lazily lowered) program and the
// resident-set memo.
func (p *Prepared) EvalPipeline(cfg hw.Config) (Result, error) {
	k := p.k
	occWGs := p.occWGs
	prog, err := p.program()
	if err != nil {
		return Result{}, err
	}
	d := p.demandFor(cfg)
	hier := memory.NewHierarchy(cfg)
	hr := p.hitRates(occWGs, cfg.CUs, cfg.L2CapacityBytes())

	// Estimate channel utilisation from the analytic solver so load
	// latency reflects queueing, then convert to cycles.
	fullBatch := cfg.CUs * occWGs
	totalWGs := fullBatch
	if k.Workgroups < totalWGs {
		totalWGs = k.Workgroups
	}
	analyticT, _, _ := p.batchTime(cfg, d, cfg.CUs, occWGs, totalWGs)
	util := 0.0
	if analyticT > 0 {
		effBW := hier.EffectiveBandwidthGBs(k.Mem.Pattern)
		dramBytes := float64(totalWGs) * d.transBytesPerWG * (1 - hr.L1) * (1 - hr.L2)
		if effBW > 0 {
			util = clampUnit(dramBytes / effBW / analyticT)
		}
	}
	latencyCycles := int64(math.Ceil(hier.AvgAccessLatencyNS(hr, util) / cfg.CoreCycleNS()))
	if latencyCycles < 1 {
		latencyCycles = 1
	}

	// Cycle-simulate one CU holding one full resident set. The memo
	// key is the simulation's full input tuple beyond the (fixed)
	// program.
	residentWGs := occWGs
	if k.Workgroups < residentWGs {
		residentWGs = k.Workgroups
	}
	cycles, err := p.residentSetCycles(prog, residentWGs, d.wavesPerWG, latencyCycles, RoundRobin)
	if err != nil {
		return Result{}, err
	}
	setTimeNS := float64(cycles) * cfg.CoreCycleNS()

	// Whole launch: the measured resident-set time replaces the
	// analytic issue bound; global bandwidth bounds still apply.
	kernelNS := 0.0
	var boundNS boundTimes
	remaining := k.Workgroups
	for remaining > 0 {
		batch := fullBatch
		if remaining < batch {
			batch = remaining
		}
		activeCUs := (batch + occWGs - 1) / occWGs
		if activeCUs > cfg.CUs {
			activeCUs = cfg.CUs
		}
		hrB := p.hitRates(occWGs, activeCUs, cfg.L2CapacityBytes())
		l2Bytes := float64(batch) * d.transBytesPerWG * (1 - hrB.L1)
		dramBytes := l2Bytes * (1 - hrB.L2)
		l2T := 0.0
		if l2Bytes > 0 {
			l2T = l2Bytes / l2BandwidthGBs(cfg)
		}
		dramT := 0.0
		if eff := hier.EffectiveBandwidthGBs(k.Mem.Pattern); eff > 0 && dramBytes > 0 {
			dramT = dramBytes / eff
		}
		t := setTimeNS
		b := BoundCompute
		if dramT > t {
			t, b = dramT, BoundDRAM
		}
		if l2T > t {
			t, b = l2T, BoundL2
		}
		kernelNS += t
		boundNS[b] += t
		remaining -= batch
	}

	total := kernelNS + k.LaunchOverheadNS
	dominant, share := dominantBound(&boundNS, k.LaunchOverheadNS, total)
	transBytes := d.transBytesPerWG * float64(k.Workgroups)
	dramBytes := transBytes * (1 - hr.L1) * (1 - hr.L2)
	return Result{
		TimeNS:         total,
		KernelNS:       kernelNS,
		Throughput:     float64(p.der.TotalWorkItems) / total,
		AchievedGFLOPS: d.flopsPerWG * float64(k.Workgroups) / total,
		AchievedGBs:    dramBytes / total,
		HitRates:       hr,
		OccupancyWaves: p.der.OccupancyWavesPerCU,
		Bound:          dominant,
		BoundShare:     share,
	}, nil
}

// SchedPolicy selects the wavefront scheduling policy of the pipeline
// engine's issue ports.
type SchedPolicy int

// Scheduling policies.
const (
	// RoundRobin rotates fairly across ready waves (the default; GCN's
	// baseline arbitration is close to this).
	RoundRobin SchedPolicy = iota
	// GreedyThenOldest always drains the oldest ready wave — the GTO
	// policy common in GPU-simulator studies.
	GreedyThenOldest
)

// String names the policy.
func (p SchedPolicy) String() string {
	if p == GreedyThenOldest {
		return "gto"
	}
	return "round-robin"
}

// simulateResidentSet runs wgs workgroups (wavesPerWG waves each) of
// prog on one CU under the default policy and returns the cycles to
// drain them all.
func simulateResidentSet(prog *isa.Program, wgs, wavesPerWG int, latencyCycles int64) (int64, error) {
	return SimulateResidentSetPolicy(prog, wgs, wavesPerWG, latencyCycles, RoundRobin)
}

// SimulateResidentSetPolicy is the policy-parameterised resident-set
// simulation, exposed for the scheduler-policy ablation: it returns
// the cycles one CU needs to drain wgs workgroups of the program.
func SimulateResidentSetPolicy(prog *isa.Program, wgs, wavesPerWG int, latencyCycles int64, policy SchedPolicy) (int64, error) {
	if err := prog.Validate(); err != nil {
		return 0, err
	}
	return runResidentSet(&cuPipeline{}, prog, wgs, wavesPerWG, latencyCycles, policy)
}

// runResidentSet runs wgs workgroups (wavesPerWG waves each) of prog
// on one CU, cycle by cycle, and returns the cycles to drain them
// all. The program must already be validated. p is reset completely
// before use, so callers may hand in a reused scratch pipeline.
func runResidentSet(p *cuPipeline, prog *isa.Program, wgs, wavesPerWG int, latencyCycles int64, policy SchedPolicy) (int64, error) {
	p.prog = prog
	p.wavesPerWG = wavesPerWG
	p.policy = policy
	p.cycle = 0
	p.loadDone = p.loadDone[:0]
	p.loadHead = 0
	p.arrived = growI(p.arrived, wgs)
	body := prog.Body
	if cap(p.classOf) < len(body) {
		p.classOf = make([]uint8, len(body))
		p.depOf = make([]bool, len(body))
	}
	p.classOf = p.classOf[:len(body)]
	p.depOf = p.depOf[:len(body)]
	for i := range body {
		p.classOf[i] = classOfOp(body[i].Op)
		p.depOf[i] = body[i].DependsOnLoad
	}
	p.ready = [numClasses]int32{}
	p.waves = p.waves[:0]
	for wg := 0; wg < wgs; wg++ {
		for i := 0; i < wavesPerWG; i++ {
			p.waves = append(p.waves, pipeWave{
				wg:        wg,
				remaining: body[0].Count,
				cls:       p.classOf[0],
				dep:       p.depOf[0],
			})
		}
	}
	p.ready[p.classOf[0]] = int32(len(p.waves))

	live := len(p.waves)
	rrVec, rrMem, rrScalar := 0, 0, 0
	const safety = int64(1) << 40
	for live > 0 {
		if p.cycle > safety {
			return 0, fmt.Errorf("gcn: pipeline engine ran away on %s", prog.Name)
		}
		// Retire loads completing at or before this cycle.
		for p.loadHead < len(p.loadDone) && p.loadDone[p.loadHead].cycle <= p.cycle {
			p.waves[p.loadDone[p.loadHead].wave].loads--
			p.loadHead++
		}

		issued := false
		// One vector (VALU/LDS), one memory (load/store), one scalar
		// issue per cycle, each from any ready wave, round-robin.
		if w := p.pickReady(&rrVec, clsVector); w >= 0 {
			p.step(w)
			issued = true
		}
		if w := p.pickReady(&rrMem, clsMemory); w >= 0 {
			wv := &p.waves[w]
			if p.prog.Body[wv.instr].Op == isa.OpLoad {
				wv.loads++
				p.loadDone = append(p.loadDone, loadCompletion{cycle: p.cycle + latencyCycles, wave: w})
			}
			p.step(w)
			issued = true
		}
		if w := p.pickReady(&rrScalar, clsScalar); w >= 0 {
			p.step(w)
			issued = true
		}
		// Non-port instructions: barriers and ends resolve without an
		// issue slot. The scan runs only while some wave is actually
		// sitting at one (the counts make the common all-compute cycle
		// skip it entirely).
		if p.ready[clsBarrier]+p.ready[clsEnd] > 0 {
			for w := range p.waves {
				wv := &p.waves[w]
				switch wv.cls {
				case clsBarrier:
					wv.atBarrier = true
					p.ready[clsBarrier]--
					p.ready[clsBlocked]++
					wv.cls = clsBlocked
					p.arrived[wv.wg]++
					if p.arrived[wv.wg] == p.wavesPerWG {
						p.releaseBarrier(wv.wg)
					}
					issued = true
				case clsEnd:
					if wv.loads == 0 {
						wv.done = true
						p.ready[clsEnd]--
						p.ready[clsBlocked]++
						wv.cls = clsBlocked
						live--
						issued = true
					}
				}
			}
		}

		if issued {
			p.cycle++
			continue
		}
		// Everything is stalled: skip to the next load completion.
		if p.loadHead < len(p.loadDone) {
			p.cycle = p.loadDone[p.loadHead].cycle
			continue
		}
		return 0, fmt.Errorf("gcn: pipeline deadlock on %s at cycle %d", prog.Name, p.cycle)
	}
	return p.cycle, nil
}

// pickReady returns the index of the next wave whose current
// instruction matches the port class and is ready to issue, or -1.
// Under RoundRobin the scan rotates from *rr; under GreedyThenOldest
// it always starts from wave 0 (oldest first, sticking with a wave
// until it stalls). Parked and retired waves carry clsBlocked, so
// the cached class is the whole eligibility check bar the load
// dependence.
func (p *cuPipeline) pickReady(rr *int, want uint8) int {
	if p.ready[want] == 0 {
		return -1
	}
	waves := p.waves
	n := len(waves)
	start := *rr
	if p.policy == GreedyThenOldest {
		start = 0
	}
	for i := 0; i < n; i++ {
		w := start + i
		if w >= n {
			w -= n
		}
		wv := &waves[w]
		if wv.cls != want || (wv.dep && wv.loads > 0) {
			continue
		}
		if p.policy == RoundRobin {
			*rr = w + 1
			if *rr == n {
				*rr = 0
			}
		}
		return w
	}
	return -1
}

// step consumes one repetition of wave w's current instruction and
// keeps the cached class, dependence flag and class counts in sync
// when the wave moves on to the next one.
func (p *cuPipeline) step(w int) {
	wv := &p.waves[w]
	wv.remaining--
	if wv.remaining != 0 {
		return
	}
	wv.instr++
	if wv.instr < len(p.prog.Body) {
		wv.remaining = p.prog.Body[wv.instr].Count
		cls := p.classOf[wv.instr]
		p.ready[wv.cls]--
		p.ready[cls]++
		wv.cls = cls
		wv.dep = p.depOf[wv.instr]
	}
}

// releaseBarrier wakes every wave of a workgroup waiting at a barrier
// and advances them past it.
func (p *cuPipeline) releaseBarrier(wg int) {
	p.arrived[wg] = 0
	for w := range p.waves {
		wv := &p.waves[w]
		if wv.wg == wg && wv.atBarrier {
			wv.atBarrier = false
			// Un-park onto the barrier instruction before stepping so a
			// multi-repetition barrier re-arrives exactly as an
			// uncached scan of Body would.
			p.ready[clsBlocked]--
			p.ready[clsBarrier]++
			wv.cls = clsBarrier
			p.step(w)
		}
	}
}
