package gcn

import (
	"errors"
	"math"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// Archetype kernels used across the engine tests. Each is constructed
// to sit firmly in one scaling class so the tests can assert the
// qualitative responses the paper reports.

func computeBoundKernel() *kernel.Kernel {
	return kernel.New("t", "t", "compute").
		Geometry(4096, 256).
		Compute(20000, 500).
		Access(kernel.Streaming, 8, 2, 4).
		Locality(16*1024, 0, 1).
		MustBuild()
}

func bandwidthBoundKernel() *kernel.Kernel {
	return kernel.New("t", "t", "stream").
		Geometry(4096, 256).
		Compute(200, 50).
		Access(kernel.Streaming, 256, 64, 4).
		Locality(256*1024, 0, 0).
		MustBuild()
}

func parallelismLimitedKernel() *kernel.Kernel {
	return kernel.New("t", "t", "smallgrid").
		Geometry(16, 256).
		Compute(50000, 500).
		Access(kernel.Streaming, 16, 4, 4).
		Locality(16*1024, 0, 1).
		MustBuild()
}

func cuIntolerantKernel() *kernel.Kernel {
	return kernel.New("t", "t", "thrash").
		Geometry(4096, 256).
		Compute(3000, 100).
		Resources(32, 48, 32*1024). // LDS-capped at 2 WGs/CU
		Access(kernel.Tiled, 384, 96, 4).
		Locality(192*1024, 0, 4).
		MustBuild()
}

func latencyBoundKernel() *kernel.Kernel {
	return kernel.New("t", "t", "chase").
		Geometry(2048, 64).
		Resources(32, 48, 64*1024). // 1 WG (1 wave) per CU
		Compute(1000, 100).
		Access(kernel.PointerChase, 2000, 0, 1). // one line per chase step
		Coalescing(1).
		Locality(16<<20, 0, 0).
		MLP(1).
		DepChain(1).
		MustBuild()
}

func launchBoundKernel() *kernel.Kernel {
	return kernel.New("t", "t", "tiny").
		Geometry(4, 64).
		Compute(100, 10).
		Access(kernel.Streaming, 2, 1, 4).
		Locality(4096, 0, 0).
		Launch(20000, 1).
		MustBuild()
}

func mustSim(t *testing.T, k *kernel.Kernel, cfg hw.Config) Result {
	t.Helper()
	r, err := Simulate(k, cfg)
	if err != nil {
		t.Fatalf("Simulate(%s, %v): %v", k.Name, cfg, err)
	}
	return r
}

func cfgWith(cus int, core, mem float64) hw.Config {
	return hw.Config{CUs: cus, CoreClockMHz: core, MemClockMHz: mem}
}

func TestComputeBoundScalesWithFrequencyAndCUs(t *testing.T) {
	k := computeBoundKernel()
	base := mustSim(t, k, cfgWith(22, 500, 1250))
	fastClk := mustSim(t, k, cfgWith(22, 1000, 1250))
	moreCUs := mustSim(t, k, cfgWith(44, 500, 1250))
	fastMem := mustSim(t, k, cfgWith(22, 500, 150))

	if r := fastClk.Throughput / base.Throughput; r < 1.8 || r > 2.1 {
		t.Errorf("2x core clock speedup = %.2f, want ~2", r)
	}
	if r := moreCUs.Throughput / base.Throughput; r < 1.8 || r > 2.1 {
		t.Errorf("2x CU speedup = %.2f, want ~2", r)
	}
	if r := base.Throughput / fastMem.Throughput; r < 0.95 || r > 1.3 {
		t.Errorf("8.3x memory-clock sensitivity = %.2f, want ~1 (insensitive)", r)
	}
	if base.Bound != BoundCompute {
		t.Errorf("bound = %v, want compute", base.Bound)
	}
}

func TestBandwidthBoundScalesWithMemClock(t *testing.T) {
	k := bandwidthBoundKernel()
	slow := mustSim(t, k, cfgWith(44, 1000, 300))
	fast := mustSim(t, k, cfgWith(44, 1000, 1200))
	if r := fast.Throughput / slow.Throughput; r < 3.2 || r > 4.2 {
		t.Errorf("4x memory clock speedup = %.2f, want ~4", r)
	}
	// At top memory clock, doubling CUs from 22 must barely help.
	half := mustSim(t, k, cfgWith(22, 1000, 1250))
	full := mustSim(t, k, cfgWith(44, 1000, 1250))
	if r := full.Throughput / half.Throughput; r > 1.3 {
		t.Errorf("CU speedup while bandwidth-bound = %.2f, want ~1", r)
	}
	if full.Bound != BoundDRAM {
		t.Errorf("bound = %v, want dram", full.Bound)
	}
}

func TestParallelismLimitedPlateausWithCUs(t *testing.T) {
	k := parallelismLimitedKernel()
	// 16 workgroups: occupancy is high, so a handful of CUs already
	// hold the whole launch.
	at4 := mustSim(t, k, cfgWith(4, 1000, 1250))
	at16 := mustSim(t, k, cfgWith(16, 1000, 1250))
	at44 := mustSim(t, k, cfgWith(44, 1000, 1250))
	if r := at16.Throughput / at4.Throughput; r < 1.5 {
		t.Errorf("4->16 CU speedup = %.2f, want growth while underfilled", r)
	}
	if r := at44.Throughput / at16.Throughput; r > 1.05 {
		t.Errorf("16->44 CU speedup = %.2f, want plateau (only 16 workgroups)", r)
	}
}

func TestCUIntolerantLosesPerformance(t *testing.T) {
	k := cuIntolerantKernel()
	best := 0.0
	bestCUs := 0
	var at44 float64
	for cu := 4; cu <= 44; cu += 4 {
		r := mustSim(t, k, cfgWith(cu, 1000, 1250))
		if r.Throughput > best {
			best, bestCUs = r.Throughput, cu
		}
		if cu == 44 {
			at44 = r.Throughput
		}
	}
	if bestCUs >= 44 {
		t.Fatalf("peak at %d CUs, want an interior peak (CU-intolerance)", bestCUs)
	}
	if at44 >= best*0.97 {
		t.Fatalf("44-CU throughput %.4f not below peak %.4f: no decline", at44, best)
	}
}

func TestLatencyBoundPlateausInFreqAndBandwidth(t *testing.T) {
	k := latencyBoundKernel()
	base := mustSim(t, k, cfgWith(44, 200, 150))
	fastClk := mustSim(t, k, cfgWith(44, 1000, 150))
	fastMem := mustSim(t, k, cfgWith(44, 200, 1250))
	if r := fastClk.Throughput / base.Throughput; r > 3 {
		t.Errorf("5x core clock speedup = %.2f, want well under 3 (latency-bound)", r)
	}
	if r := fastMem.Throughput / base.Throughput; r > 1.5 {
		t.Errorf("8.3x memory clock speedup = %.2f, want ~1 (latency-bound)", r)
	}
	if got := mustSim(t, k, cfgWith(44, 1000, 1250)); got.Bound != BoundLatency {
		t.Errorf("bound = %v, want latency", got.Bound)
	}
}

func TestLaunchBoundFlatEverywhere(t *testing.T) {
	k := launchBoundKernel()
	a := mustSim(t, k, hw.Minimum())
	b := mustSim(t, k, hw.Reference())
	if r := b.Throughput / a.Throughput; r > 1.2 {
		t.Errorf("min->max config speedup = %.2f, want ~1 (launch-bound)", r)
	}
	if b.Bound != BoundLaunch {
		t.Errorf("bound = %v, want launch", b.Bound)
	}
}

func TestSimulateDoesNotFit(t *testing.T) {
	k := kernel.New("t", "t", "huge").
		Geometry(16, 1024).
		Resources(256, 48, 64*1024).
		MustBuild()
	k.LDSPerWG = 64 * 1024
	k.VGPRsPerWI = 256
	k.WGSize = 1024
	// 1024 items -> 16 waves; 256 VGPR -> 4 waves/SIMD -> 16 waves: fits.
	// Push it over with wave slots: 1024 items and LDS full still fits,
	// so use SGPR pressure instead.
	k.SGPRsPerWave = 512 // 3200/512 = 6 waves < 16 needed
	if _, err := Simulate(k, hw.Reference()); !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("Simulate = %v, want ErrDoesNotFit", err)
	}
}

func TestSimulateRejectsInvalidInputs(t *testing.T) {
	bad := computeBoundKernel()
	bad.Workgroups = 0
	if _, err := Simulate(bad, hw.Reference()); err == nil {
		t.Error("invalid kernel accepted")
	}
	if _, err := Simulate(computeBoundKernel(), hw.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestResultInvariants(t *testing.T) {
	kernels := []*kernel.Kernel{
		computeBoundKernel(), bandwidthBoundKernel(), parallelismLimitedKernel(),
		cuIntolerantKernel(), latencyBoundKernel(), launchBoundKernel(),
	}
	cfgs := []hw.Config{hw.Minimum(), hw.Reference(), cfgWith(20, 600, 700)}
	for _, k := range kernels {
		for _, cfg := range cfgs {
			r := mustSim(t, k, cfg)
			if r.TimeNS <= 0 || math.IsNaN(r.TimeNS) || math.IsInf(r.TimeNS, 0) {
				t.Fatalf("%s@%v: TimeNS = %g", k.Name, cfg, r.TimeNS)
			}
			if r.TimeNS < r.KernelNS {
				t.Fatalf("%s@%v: total %g < kernel %g", k.Name, cfg, r.TimeNS, r.KernelNS)
			}
			if r.Throughput <= 0 {
				t.Fatalf("%s@%v: Throughput = %g", k.Name, cfg, r.Throughput)
			}
			if r.BoundShare < 0 || r.BoundShare > 1 {
				t.Fatalf("%s@%v: BoundShare = %g", k.Name, cfg, r.BoundShare)
			}
			if r.HitRates.L1 < 0 || r.HitRates.L1 > 1 || r.HitRates.L2 < 0 || r.HitRates.L2 > 1 {
				t.Fatalf("%s@%v: hit rates %+v", k.Name, cfg, r.HitRates)
			}
			if r.AchievedGBs > cfg.PeakBandwidthGBs()*1.001 {
				t.Fatalf("%s@%v: achieved %g GB/s exceeds peak %g", k.Name, cfg,
					r.AchievedGBs, cfg.PeakBandwidthGBs())
			}
		}
	}
}

func TestMorePerformanceNeverFromWeakerEverything(t *testing.T) {
	// Strictly dominating configurations can never be slower: the
	// grid's max must beat the grid's min for every archetype except
	// the launch-bound one (where they tie).
	for _, k := range []*kernel.Kernel{
		computeBoundKernel(), bandwidthBoundKernel(), parallelismLimitedKernel(),
		latencyBoundKernel(),
	} {
		lo := mustSim(t, k, hw.Minimum())
		hi := mustSim(t, k, hw.Reference())
		if hi.Throughput < lo.Throughput {
			t.Errorf("%s: max config slower than min config (%.4f < %.4f)",
				k.Name, hi.Throughput, lo.Throughput)
		}
	}
}

func TestBoundStrings(t *testing.T) {
	for b := BoundCompute; b <= BoundLaunch; b++ {
		if s := b.String(); s == "" || s[0] == 'b' && s != "bound(99)" && len(s) > 20 {
			t.Errorf("Bound(%d).String() = %q", int(b), s)
		}
	}
	if got := Bound(99).String(); got != "bound(99)" {
		t.Errorf("invalid bound String() = %q", got)
	}
}
