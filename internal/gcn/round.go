package gcn

import (
	"math"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// boundTimes accumulates kernel time attributed to each non-launch
// bound. An array rather than a map keeps the per-cell hot path
// allocation-free and makes the dominant-bound tie-break
// deterministic (lowest Bound wins instead of map iteration order).
type boundTimes [BoundLaunch]float64

// batchTime solves the duration of one batch of workgroups: activeCUs
// compute units, qmax workgroups on the most loaded CU, totalWGs in
// flight. It returns the batch duration and the bound that set it.
func (p *Prepared) batchTime(cfg hw.Config, d demand, activeCUs, qmax, totalWGs int) (float64, Bound, memory.HitRates) {
	k := p.k
	hier := memory.NewHierarchy(cfg)
	hr := p.hitRates(qmax, activeCUs, cfg.L2CapacityBytes())

	// Issue bound: the most loaded CU drains its workgroups' issue
	// streams back to back (1 wave-instruction per cycle per CU).
	computeT := float64(qmax) * d.issueNSPerWG

	// Traffic bounds: transactions that miss L1 cross the
	// interconnect; those that also miss L2 reach DRAM.
	l2Bytes := float64(totalWGs) * d.transBytesPerWG * (1 - hr.L1)
	dramBytes := l2Bytes * (1 - hr.L2)
	l2T := 0.0
	if l2Bytes > 0 {
		l2T = l2Bytes / l2BandwidthGBs(cfg) // GB/s == bytes/ns
	}
	dramT := 0.0
	effBW := hier.EffectiveBandwidthGBs(k.Mem.Pattern)
	if dramBytes > 0 {
		// Written as a reciprocal multiply so the batched evaluator can
		// hoist 1/effBW per distinct memory clock and still agree bit
		// for bit.
		dramT = dramBytes * (1 / effBW)
	}

	// Latency bound: accesses on the most loaded CU are issued with
	// limited concurrency (resident waves x effective MLP, degraded by
	// barriers). The DRAM queueing delay depends on channel
	// utilisation, which depends on the batch time itself; the batch
	// time is therefore the fixed point of a decreasing map, which the
	// queueing model's shape lets us solve in closed form.
	latT := 0.0
	accesses := float64(qmax) * d.accessesPerWG
	if accesses > 0 {
		conc := float64(qmax*d.wavesPerWG) * p.der.EffectiveMLP * p.barrierConc
		if conc < 1 {
			conc = 1
		}
		floor := fmax(fmax(computeT, l2T), dramT)
		am := hier.AccessModel(hr)
		// The latency term is f(T) = a + c*q(u) with u = dramT/T and
		// the M/D/1 stretch q(u) = u / max(1-u, 1/F) (times D/2, folded
		// into c). f is continuous and non-increasing, so T = max(floor,
		// f(T)) has a unique fixed point: floor itself when f(floor)
		// never exceeds it, and otherwise the root of a quadratic —
		// q is hyperbolic in T on either side of its kink at u = 1-1/F:
		//   smooth (u <= 1-1/F):  (T-a)(T-dramT) = c*dramT
		//   saturated (u > 1-1/F): T*T - a*T = c*F*dramT
		// (the cap at D*F never binds for u <= 1, and T > floor >= dramT
		// keeps u below 1). Exactly one root is consistent with its
		// region; try the smooth one first.
		// When the fixed point settles on the floor itself, the latency
		// term at the floor IS the final latency term (same utilisation,
		// same expression), so it is computed once and reused; only a
		// genuine root above the floor changes the utilisation and needs
		// the recomputation.
		kl := accesses / conc
		a := kl * am.UnloadedNS()
		c := kl * (1 - hr.L1) * (1 - hr.L2) * memory.DRAMDeviceNS / 2
		latT = latencyTermNS(a, c, dramT, floor)
		if latT > floor {
			const qf = memory.MaxQueueFactor
			root := (a + dramT + math.Sqrt((a-dramT)*(a-dramT)+4*c*dramT)) / 2
			if root < dramT*qf/(qf-1) {
				root = (a + math.Sqrt(a*a+4*c*qf*dramT)) / 2
			}
			if total := fmax(root, floor); total != floor {
				latT = latencyTermNS(a, c, dramT, total)
			}
		}
	}

	t := computeT
	b := BoundCompute
	if dramT > t {
		t, b = dramT, BoundDRAM
	}
	if l2T > t {
		t, b = l2T, BoundL2
	}
	if latT > t {
		t, b = latT, BoundLatency
	}
	return t, b, hr
}

// latencyTermNS is the round engine's latency-bound term a + c*q at
// DRAM service time dramT against batch duration total: the access
// curve kl*LatencyNS(dramT/total) with the M/D/1 stretch
// q(u) = u/max(1-u, 1/F) folded to a single division
// (u/max(1-u, 1/F) == dramT/max(total-dramT, total/F) for
// total >= dramT > 0, and the D*F queue cap never binds for u <= 1).
// Both the scalar and the batched evaluator call exactly this
// function, which is what keeps the two paths bit-identical.
func latencyTermNS(a, c, dramT, total float64) float64 {
	if dramT <= 0 {
		return a
	}
	const invQF = 1.0 / memory.MaxQueueFactor
	return a + c*(dramT/fmax(total-dramT, total*invQF))
}

// fmax returns the larger of a and b by a plain compare. The builtin
// max pays for NaN propagation and signed-zero ordering that the time
// algebra cannot produce (every operand in the solve is a non-negative
// sum or product of finite model terms). Both the scalar and the
// batched evaluator use it, so the two paths agree bit for bit by
// construction.
func fmax(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

// Simulate runs the round engine: one kernel invocation on one
// configuration. It returns ErrDoesNotFit if a single workgroup cannot
// be resident on a CU. For whole-row evaluation over many
// configurations, Prepare once and call EvalRound per config instead.
func Simulate(k *kernel.Kernel, cfg hw.Config) (Result, error) {
	p, err := Prepare(k)
	if err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return p.EvalRound(cfg)
}

// EvalRound runs the round engine on one already-validated
// configuration using the prepared state.
func (p *Prepared) EvalRound(cfg hw.Config) (Result, error) {
	k := p.k
	occWGs := p.occWGs
	d := p.demandFor(cfg)

	var kernelNS float64
	var boundNS boundTimes
	var steadyHR memory.HitRates
	haveSteady := false

	remaining := k.Workgroups
	// Full batches: every CU holds occWGs workgroups.
	fullBatch := cfg.CUs * occWGs
	if n := remaining / fullBatch; n > 0 {
		t, b, hr := p.batchTime(cfg, d, cfg.CUs, occWGs, fullBatch)
		kernelNS += float64(n) * t
		boundNS[b] += float64(n) * t
		steadyHR = hr
		haveSteady = true
		remaining -= n * fullBatch
	}
	// Tail batch: fewer workgroups than full residency. The explicit
	// haveSteady flag (rather than comparing steadyHR against the zero
	// value) keeps tail-only kernels deterministic even when the model
	// legitimately reports zero hit rates for the full batch.
	if remaining > 0 {
		activeCUs := remaining
		if activeCUs > cfg.CUs {
			activeCUs = cfg.CUs
		}
		qmax := (remaining + activeCUs - 1) / activeCUs
		t, b, hr := p.batchTime(cfg, d, activeCUs, qmax, remaining)
		kernelNS += t
		boundNS[b] += t
		if !haveSteady {
			steadyHR = hr
		}
	}

	total := kernelNS + k.LaunchOverheadNS
	dominant, share := dominantBound(&boundNS, k.LaunchOverheadNS, total)

	transBytes := d.transBytesPerWG * float64(k.Workgroups)
	dramBytes := transBytes * (1 - steadyHR.L1) * (1 - steadyHR.L2)
	// Reciprocal multiplies, matching the batched evaluator's result
	// assembly expression for expression.
	invTotal := 1 / total
	res := Result{
		TimeNS:         total,
		KernelNS:       kernelNS,
		Throughput:     float64(p.der.TotalWorkItems) * invTotal,
		AchievedGFLOPS: d.flopsPerWG * float64(k.Workgroups) * invTotal,
		AchievedGBs:    dramBytes * invTotal,
		HitRates:       steadyHR,
		OccupancyWaves: p.der.OccupancyWavesPerCU,
		Bound:          dominant,
		BoundShare:     share,
	}
	return res, nil
}

// dominantBound picks the limiter with the largest share of total
// time, treating launch overhead as its own bound.
func dominantBound(boundNS *boundTimes, launchNS, totalNS float64) (Bound, float64) {
	best, bestT := BoundCompute, 0.0
	for b, t := range boundNS {
		if t > bestT {
			best, bestT = Bound(b), t
		}
	}
	if launchNS > bestT {
		best, bestT = BoundLaunch, launchNS
	}
	if totalNS <= 0 {
		return best, 0
	}
	return best, bestT / totalNS
}
