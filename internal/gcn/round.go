package gcn

import (
	"fmt"
	"math"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// batchTime solves the duration of one batch of workgroups: activeCUs
// compute units, qmax workgroups on the most loaded CU, totalWGs in
// flight. It returns the batch duration and the bound that set it.
func batchTime(k *kernel.Kernel, cfg hw.Config, d demand, activeCUs, qmax, totalWGs int) (float64, Bound, memory.HitRates) {
	hier := memory.NewHierarchy(cfg)
	hr := memory.EstimateHitRatesL2(k, qmax, activeCUs, cfg.L2CapacityBytes())

	// Issue bound: the most loaded CU drains its workgroups' issue
	// streams back to back (1 wave-instruction per cycle per CU).
	computeT := float64(qmax) * d.issueNSPerWG

	// Traffic bounds: transactions that miss L1 cross the
	// interconnect; those that also miss L2 reach DRAM.
	l2Bytes := float64(totalWGs) * d.transBytesPerWG * (1 - hr.L1)
	dramBytes := l2Bytes * (1 - hr.L2)
	l2T := 0.0
	if l2Bytes > 0 {
		l2T = l2Bytes / l2BandwidthGBs(cfg) // GB/s == bytes/ns
	}
	dramT := 0.0
	effBW := hier.EffectiveBandwidthGBs(k.Mem.Pattern)
	if dramBytes > 0 {
		dramT = dramBytes / effBW
	}

	// Latency bound: accesses on the most loaded CU are issued with
	// limited concurrency (resident waves x effective MLP, degraded by
	// barriers). The DRAM queueing delay depends on channel
	// utilisation, which depends on the batch time itself; the batch
	// time is therefore the fixed point of a decreasing map, found by
	// damped iteration (a fixed pass count oscillates near saturation
	// and can break clock monotonicity).
	latT := 0.0
	accesses := float64(qmax) * d.accessesPerWG
	if accesses > 0 {
		conc := float64(qmax*d.wavesPerWG) * k.EffectiveMLP() * barrierConcurrencyFactor(k)
		if conc < 1 {
			conc = 1
		}
		floor := math.Max(math.Max(computeT, l2T), dramT)
		g := func(T float64) float64 {
			util := 0.0
			if T > 0 {
				util = dramT / T
			}
			return math.Max(floor, accesses*hier.AvgAccessLatencyNS(hr, util)/conc)
		}
		// g is continuous and non-increasing in T, so g(T) = T has a
		// unique solution in [floor, g(floor)]; bisect for it (plain
		// damped iteration cycles when queueing makes g steep).
		lo, hi := floor, g(floor)
		total := hi
		if hi > lo {
			for pass := 0; pass < 64 && hi-lo > 1e-9*hi; pass++ {
				mid := (lo + hi) / 2
				if g(mid) > mid {
					lo = mid
				} else {
					hi = mid
				}
			}
			total = hi
		}
		util := 0.0
		if total > 0 {
			util = dramT / total
		}
		latT = accesses * hier.AvgAccessLatencyNS(hr, util) / conc
	}

	t := computeT
	b := BoundCompute
	if dramT > t {
		t, b = dramT, BoundDRAM
	}
	if l2T > t {
		t, b = l2T, BoundL2
	}
	if latT > t {
		t, b = latT, BoundLatency
	}
	return t, b, hr
}

// Simulate runs the round engine: one kernel invocation on one
// configuration. It returns ErrDoesNotFit if a single workgroup cannot
// be resident on a CU.
func Simulate(k *kernel.Kernel, cfg hw.Config) (Result, error) {
	if err := k.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	occWGs := k.WorkgroupsPerCU()
	if occWGs == 0 {
		return Result{}, fmt.Errorf("%w: %s", ErrDoesNotFit, k.Name)
	}
	d := newDemand(k, cfg)

	var kernelNS float64
	boundNS := map[Bound]float64{}
	var steadyHR memory.HitRates

	remaining := k.Workgroups
	// Full batches: every CU holds occWGs workgroups.
	fullBatch := cfg.CUs * occWGs
	if n := remaining / fullBatch; n > 0 {
		t, b, hr := batchTime(k, cfg, d, cfg.CUs, occWGs, fullBatch)
		kernelNS += float64(n) * t
		boundNS[b] += float64(n) * t
		steadyHR = hr
		remaining -= n * fullBatch
	}
	// Tail batch: fewer workgroups than full residency.
	if remaining > 0 {
		activeCUs := remaining
		if activeCUs > cfg.CUs {
			activeCUs = cfg.CUs
		}
		qmax := (remaining + activeCUs - 1) / activeCUs
		t, b, hr := batchTime(k, cfg, d, activeCUs, qmax, remaining)
		kernelNS += t
		boundNS[b] += t
		if steadyHR == (memory.HitRates{}) {
			steadyHR = hr
		}
	}

	total := kernelNS + k.LaunchOverheadNS
	dominant, share := dominantBound(boundNS, kernelNS, k.LaunchOverheadNS, total)

	transBytes := d.transBytesPerWG * float64(k.Workgroups)
	dramBytes := transBytes * (1 - steadyHR.L1) * (1 - steadyHR.L2)
	res := Result{
		TimeNS:         total,
		KernelNS:       kernelNS,
		Throughput:     float64(k.TotalWorkItems()) / total,
		AchievedGFLOPS: d.flopsPerWG * float64(k.Workgroups) / total,
		AchievedGBs:    dramBytes / total,
		HitRates:       steadyHR,
		OccupancyWaves: k.OccupancyWavesPerCU(),
		Bound:          dominant,
		BoundShare:     share,
	}
	return res, nil
}

// dominantBound picks the limiter with the largest share of total
// time, treating launch overhead as its own bound.
func dominantBound(boundNS map[Bound]float64, kernelNS, launchNS, totalNS float64) (Bound, float64) {
	best, bestT := BoundCompute, 0.0
	for b, t := range boundNS {
		if t > bestT {
			best, bestT = b, t
		}
	}
	if launchNS > bestT {
		best, bestT = BoundLaunch, launchNS
	}
	if totalNS <= 0 {
		return best, 0
	}
	return best, bestT / totalNS
}
