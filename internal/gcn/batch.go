package gcn

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"

	"gpuscale/internal/hw"
	"gpuscale/internal/memory"
)

// Batched config-axis evaluation. The taxonomy sweep's unit of work is
// one kernel row: the same prepared kernel evaluated against every
// configuration on the axis. The per-cell entry points re-derive the
// same branchy quantities for every config even though most of them
// vary along only one dimension of the grid: occupancy partitioning
// and hit rates depend only on the CU count (and L2 capacity), issue
// time and the access-latency curve only on the core clock, and only
// the DRAM-bandwidth terms move with the memory clock. EvalRoundBatch
// exploits that structure: one fused pass walks the axis re-deriving
// the CU-block, (CU, core) sub-block, and memory-clock terms exactly
// when their inputs change, so the per-cell residue is just the DRAM
// service time, the fixed-point solve, and bound selection.
//
// Bit-identity with the scalar path is load-bearing (the sweep's
// resume/merge machinery compares matrices byte for byte), so every
// hoisted quantity preserves the scalar path's exact floating-point
// expression tree: hoisting only ever names a subexpression whose
// operands are constant over the hoisted scope, never re-associates
// one. Where an expression was restructured for speed (the folded
// latency term, reciprocal multiplies for the DRAM service time and
// the result assembly), the scalar path was restructured identically,
// so the two trees are still the same tree.
// The equivalence suite in batch_test.go enforces this against
// randomized kernels and config arrays, including arrays that are not
// grid-ordered (every cell re-derives its block when the CU count or
// clock changes, so ordering affects speed, never values).

// ErrBatchPanic marks a per-cell engine panic that was isolated inside
// a batch evaluation: the cell's error wraps it, and the remaining
// cells of the batch still evaluate. The sweep maps it onto its own
// engine-panic classification so batched and per-cell rows report
// identical statuses.
var ErrBatchPanic = errors.New("gcn: engine panicked during batch evaluation")

// BatchRow is the optional batch extension of PreparedRow: evaluating
// the whole config axis in one call. Implementations must fill
// out[i]/errs[i] for every i < len(cfgs); a non-nil return value is a
// row-level failure (undersized buffers, lowering failure) after which
// the per-cell contents are unspecified and the caller should fall
// back to Eval. Configurations must already be validated, exactly as
// for Eval.
type BatchRow interface {
	EvalBatch(cfgs []hw.Config, out []Result, errs []error) error
}

// roundShape holds one batch shape (full-residency or tail) with its
// hoisted terms. Fields split by the scope they are constant over:
// block fields change only with the CU count / L2 capacity, sub-block
// fields also with the core clock. The remaining per-cell input is the
// DRAM service time.
type roundShape struct {
	present bool
	qmax    int

	// Block scope (CU count + L2 capacity).
	hr                 memory.HitRates
	l2Bytes, dramBytes float64
	hasAcc             bool
	acc, conc, kl      float64
	c, c4, cqf         float64 // latency-curve c, 4*c, (4*c)*MaxQueueFactor

	// Sub-block scope (+ core clock).
	computeT, l2T float64
	am            memory.AccessModel
	a, a2         float64 // kl*UnloadedNS() and its square
}

// timeAt mirrors batchTime's post-hit-rate logic for one batch shape
// at one configuration's DRAM service time. Every expression matches
// the scalar path's tree with block/sub-block constants substituted by
// name.
func (bs *roundShape) timeAt(dramT float64) (float64, Bound) {
	latT := 0.0
	if bs.hasAcc {
		floor := fmax(fmax(bs.computeT, bs.l2T), dramT)
		latT = latencyTermNS(bs.a, bs.c, dramT, floor)
		if latT > floor {
			const qf = memory.MaxQueueFactor
			root := (bs.a + dramT + math.Sqrt((bs.a-dramT)*(bs.a-dramT)+bs.c4*dramT)) / 2
			if root < dramT*qf/(qf-1) {
				root = (bs.a + math.Sqrt(bs.a2+bs.cqf*dramT)) / 2
			}
			if total := fmax(root, floor); total != floor {
				latT = latencyTermNS(bs.a, bs.c, dramT, total)
			}
		}
	}
	t := bs.computeT
	b := BoundCompute
	if dramT > t {
		t, b = dramT, BoundDRAM
	}
	if bs.l2T > t {
		t, b = bs.l2T, BoundL2
	}
	if latT > t {
		t, b = latT, BoundLatency
	}
	return t, b
}

// blockUpdate recomputes the shape's CU-block terms for totalWGs
// workgroups at qmax residency on activeCUs compute units.
func (p *Prepared) blockUpdate(bs *roundShape, qmax, activeCUs, totalWGs, l2Cap int) {
	bs.present = true
	bs.qmax = qmax
	bs.hr = p.hitRates(qmax, activeCUs, l2Cap)
	bs.l2Bytes = float64(totalWGs) * p.transBytesPerWG * (1 - bs.hr.L1)
	bs.dramBytes = bs.l2Bytes * (1 - bs.hr.L2)
	bs.acc = float64(qmax) * p.accessesPerWG
	bs.hasAcc = bs.acc > 0
	if bs.hasAcc {
		conc := float64(qmax*p.der.WavesPerWG) * p.der.EffectiveMLP * p.barrierConc
		if conc < 1 {
			conc = 1
		}
		bs.conc = conc
		bs.kl = bs.acc / conc
		bs.c = bs.kl * (1 - bs.hr.L1) * (1 - bs.hr.L2) * memory.DRAMDeviceNS / 2
		bs.c4 = 4 * bs.c
		bs.cqf = bs.c4 * memory.MaxQueueFactor
	}
}

// subUpdate recomputes the shape's (CU, core) sub-block terms.
func (bs *roundShape) subUpdate(hier memory.Hierarchy, issueNS, l2BW float64) {
	bs.computeT = float64(bs.qmax) * issueNS
	bs.l2T = 0
	if bs.l2Bytes > 0 {
		bs.l2T = bs.l2Bytes / l2BW
	}
	if bs.hasAcc {
		bs.am = hier.AccessModel(bs.hr)
		bs.a = bs.kl * bs.am.UnloadedNS()
		bs.a2 = bs.a * bs.a
	}
}

// EvalRoundBatch evaluates the round engine over a whole config axis
// in one call, filling out[i] for each cfgs[i]. Configurations must
// already be validated. Results are bit-identical to calling EvalRound
// per config; only a row-level problem (an undersized output buffer)
// returns an error. Like Eval, it reuses internal scratch and is NOT
// safe for concurrent use.
func (p *Prepared) EvalRoundBatch(cfgs []hw.Config, out []Result) error {
	if len(out) < len(cfgs) {
		return fmt.Errorf("gcn: EvalRoundBatch: %d results for %d configs", len(out), len(cfgs))
	}
	if len(cfgs) == 0 {
		return nil
	}
	k := p.k

	// Kernel-scope constants of the result assembly.
	transBytes := p.transBytesPerWG * float64(k.Workgroups)
	flopsKernel := p.flopsPerWG * float64(k.Workgroups)
	workItems := float64(p.der.TotalWorkItems)
	launch := k.LaunchOverheadNS
	occWaves := p.der.OccupancyWavesPerCU
	patEff := memory.PatternEfficiency(k.Mem.Pattern)

	// One fused pass over the axis, re-deriving each term exactly when
	// its clock changes: block terms with the CU count / L2 capacity,
	// sub-block terms (and the two core-clock demand terms) with the
	// core clock, the reciprocal DRAM bandwidth with the memory clock.
	// On the grid order (memory clock fastest) that is 1 block per CU
	// value and 1 sub-block per (CU, core). Every derivation preserves
	// the scalar path's expression tree — demandFor / l2BandwidthGBs /
	// Hierarchy.EffectiveBandwidthGBs — and reuse hands back the same
	// bits because the inputs are the same.
	var full, tail roundShape
	var nFull float64
	var steady memory.HitRates
	var resDram float64
	var issueV, l2bwV, invEff float64
	lastCUs, lastL2 := -1, -1
	lastCore, lastMem := math.Inf(-1), math.Inf(-1)
	for i := range cfgs {
		cfg := &cfgs[i]
		if cfg.CUs != lastCUs || cfg.L2Override != lastL2 {
			lastCUs, lastL2 = cfg.CUs, cfg.L2Override
			lastCore = math.Inf(-1)
			l2Cap := cfg.L2CapacityBytes()
			remaining := k.Workgroups
			fullBatch := cfg.CUs * p.occWGs
			full.present = false
			if nf := remaining / fullBatch; nf > 0 {
				p.blockUpdate(&full, p.occWGs, cfg.CUs, fullBatch, l2Cap)
				nFull = float64(nf)
				remaining -= nf * fullBatch
			}
			tail.present = false
			if remaining > 0 {
				activeCUs := remaining
				if activeCUs > cfg.CUs {
					activeCUs = cfg.CUs
				}
				qmax := (remaining + activeCUs - 1) / activeCUs
				p.blockUpdate(&tail, qmax, activeCUs, remaining, l2Cap)
			}
			// Steady-state hit rates: the full batch's when one ran,
			// otherwise the tail's (same haveSteady rule as EvalRound).
			if full.present {
				steady = full.hr
			} else {
				steady = tail.hr
			}
			resDram = transBytes * (1 - steady.L1) * (1 - steady.L2)
		}
		if cfg.CoreClockMHz != lastCore {
			lastCore = cfg.CoreClockMHz
			issueV = p.issueInstr * cfg.CoreCycleNS() * p.barrierIssue
			l2bwV = L2BytesPerCoreCycle * cfg.CoreClockMHz / 1000
			hier := memory.NewHierarchy(*cfg)
			if full.present {
				full.subUpdate(hier, issueV, l2bwV)
			}
			if tail.present {
				tail.subUpdate(hier, issueV, l2bwV)
			}
		}
		if cfg.MemClockMHz != lastMem {
			lastMem = cfg.MemClockMHz
			invEff = 1 / (cfg.PeakBandwidthGBs() * patEff)
		}

		kernelNS := 0.0
		var fullT, tailT float64
		var fullB, tailB Bound
		if full.present {
			dramT := 0.0
			if full.dramBytes > 0 {
				dramT = full.dramBytes * invEff
			}
			t, b := full.timeAt(dramT)
			fullT, fullB = nFull*t, b
			kernelNS += fullT
		}
		if tail.present {
			dramT := 0.0
			if tail.dramBytes > 0 {
				dramT = tail.dramBytes * invEff
			}
			t, b := tail.timeAt(dramT)
			tailT, tailB = t, b
			kernelNS += tailT
		}

		// Bound selection, replicating dominantBound over the two
		// contributions without materializing a boundTimes array:
		// ascending Bound order with a strict > comparison, so a tie
		// between distinct bounds goes to the lower index, equal bounds
		// sum in accumulation order, zero-time contributions never
		// displace the BoundCompute default, and launch overhead wins
		// only when strictly larger.
		domB, domT := BoundCompute, 0.0
		switch {
		case full.present && tail.present:
			if fullB == tailB {
				if s := fullT + tailT; s > 0 {
					domB, domT = fullB, s
				}
			} else {
				loB, loT, hiB, hiT := fullB, fullT, tailB, tailT
				if hiB < loB {
					loB, loT, hiB, hiT = tailB, tailT, fullB, fullT
				}
				if loT > 0 {
					domB, domT = loB, loT
				}
				if hiT > domT {
					domB, domT = hiB, hiT
				}
			}
		case full.present:
			if fullT > 0 {
				domB, domT = fullB, fullT
			}
		case tail.present:
			if tailT > 0 {
				domB, domT = tailB, tailT
			}
		}
		if launch > domT {
			domB, domT = BoundLaunch, launch
		}

		total := kernelNS + launch
		share := 0.0
		if total > 0 {
			share = domT / total
		}
		invTotal := 1 / total
		// Field-wise stores (every field is written) keep the wide
		// Result out of a stack temporary on this, the hottest store in
		// the sweep.
		o := &out[i]
		o.TimeNS = total
		o.KernelNS = kernelNS
		o.Throughput = workItems * invTotal
		o.AchievedGFLOPS = flopsKernel * invTotal
		o.AchievedGBs = resDram * invTotal
		o.HitRates = steady
		o.OccupancyWaves = occWaves
		o.Bound = domB
		o.BoundShare = share
	}
	return nil
}

// roundBatchRow adapts EvalRoundBatch to the BatchRow seam. The round
// engine has no per-cell failure modes, so errs stays all-nil (the
// caller zeroed it).
func roundBatchRow(p *Prepared, cfgs []hw.Config, out []Result, errs []error) error {
	return p.EvalRoundBatch(cfgs, out)
}

// evalCellIsolated runs one per-cell evaluation with panic isolation,
// so a panicking cell inside a batch poisons only its own slot.
func evalCellIsolated(p *Prepared, eval func(*Prepared, hw.Config) (Result, error), cfg hw.Config) (res Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res = Result{}
			err = fmt.Errorf("%w: %v\n%s", ErrBatchPanic, rec, debug.Stack())
		}
	}()
	return eval(p, cfg)
}

// EvalBatch implements BatchRow for every engine's prepared row. The
// round engine dispatches to its columnar evaluator; the event-driven
// engines loop the per-cell evaluator with panic isolation, which
// still amortizes prepare, memo, and scratch reuse across the axis.
func (r preparedRow) EvalBatch(cfgs []hw.Config, out []Result, errs []error) error {
	if len(out) < len(cfgs) || len(errs) < len(cfgs) {
		return fmt.Errorf("gcn: EvalBatch: %d configs, %d results, %d errors", len(cfgs), len(out), len(errs))
	}
	clear(errs[:len(cfgs)])
	if r.batch != nil {
		return r.batch(r.p, cfgs, out, errs)
	}
	for i := range cfgs {
		out[i], errs[i] = evalCellIsolated(r.p, r.eval, cfgs[i])
	}
	return nil
}
