package gcn

import (
	"errors"
	"math"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// The two-phase pipeline's contract is exact equivalence: a Prepared
// evaluated across a row must reproduce the one-shot Simulate* results
// bit for bit, including after the scratch arenas and memos have been
// dirtied by other configurations. These tests exercise every engine
// over every archetype kernel on a config grid diverse enough to hit
// multiple occupancies, hit-rate keys and resident-set keys.

// capWGs returns a copy of k with the launch shrunk to at most wgs
// workgroups. Equivalence is a per-cell property, not a scale
// property, and the event-driven engines are O(waves) — the archetype
// kernels' full 4096-workgroup launches would cost minutes here
// without testing anything extra.
func capWGs(k *kernel.Kernel, wgs int) *kernel.Kernel {
	c := *k
	if c.Workgroups > wgs {
		c.Workgroups = wgs
	}
	return &c
}

// capVALU additionally shrinks the per-wave instruction count — the
// cycle-level engine is O(instructions x waves), and a 2000-VALU wave
// against ~10 memory accesses is exactly as compute-bound as a
// 50000-VALU one.
func capVALU(k *kernel.Kernel, n int) *kernel.Kernel {
	if k.VALUPerWave > n {
		k.VALUPerWave = n
	}
	return k
}

func preparedTestKernels() []*kernel.Kernel {
	return []*kernel.Kernel{
		capVALU(capWGs(computeBoundKernel(), 96), 2000),
		capWGs(bandwidthBoundKernel(), 96),
		capVALU(parallelismLimitedKernel(), 2000),
		capWGs(cuIntolerantKernel(), 96),
		capWGs(latencyBoundKernel(), 64),
		launchBoundKernel(),
	}
}

func preparedTestConfigs() []hw.Config {
	var cfgs []hw.Config
	for _, cus := range []int{4, 16, 44} {
		for _, core := range []float64{500, 1000} {
			for _, mem := range []float64{500, 1250} {
				cfgs = append(cfgs, cfgWith(cus, core, mem))
			}
		}
	}
	return cfgs
}

// bitsEqual compares two results field by field at the bit level —
// stricter than ==, which would conflate +0 and -0.
func bitsEqual(a, b Result) bool {
	fe := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return fe(a.TimeNS, b.TimeNS) && fe(a.KernelNS, b.KernelNS) &&
		fe(a.Throughput, b.Throughput) && fe(a.AchievedGFLOPS, b.AchievedGFLOPS) &&
		fe(a.AchievedGBs, b.AchievedGBs) &&
		fe(a.HitRates.L1, b.HitRates.L1) && fe(a.HitRates.L2, b.HitRates.L2) &&
		a.OccupancyWaves == b.OccupancyWaves && a.Bound == b.Bound &&
		fe(a.BoundShare, b.BoundShare)
}

func TestPreparedRowMatchesPerCell(t *testing.T) {
	engines := []struct {
		name string
		sim  EngineFunc
		row  RowEngine
	}{
		{"round", Simulate, RoundRow},
		{"detailed", SimulateDetailed, DetailedRow},
		{"wave", SimulateWave, WaveRow},
		{"pipeline", SimulatePipeline, PipelineRow},
	}
	cfgs := preparedTestConfigs()
	for _, e := range engines {
		t.Run(e.name, func(t *testing.T) {
			for _, k := range preparedTestKernels() {
				row, err := e.row.PrepareRow(k)
				if err != nil {
					t.Fatalf("%s: PrepareRow: %v", k.Name, err)
				}
				want := make([]Result, len(cfgs))
				for i, cfg := range cfgs {
					want[i], err = e.sim(k, cfg)
					if err != nil {
						t.Fatalf("%s on %v: %v", k.Name, cfg, err)
					}
					got, err := row.Eval(cfg)
					if err != nil {
						t.Fatalf("%s on %v: Eval: %v", k.Name, cfg, err)
					}
					if !bitsEqual(got, want[i]) {
						t.Fatalf("%s on %v: prepared %+v != per-cell %+v", k.Name, cfg, got, want[i])
					}
				}
				// Re-evaluate in reverse on the now fully dirtied scratch
				// and warm memos: results must not drift.
				for i := len(cfgs) - 1; i >= 0; i-- {
					got, err := row.Eval(cfgs[i])
					if err != nil {
						t.Fatalf("%s on %v: re-Eval: %v", k.Name, cfgs[i], err)
					}
					if !bitsEqual(got, want[i]) {
						t.Fatalf("%s on %v: warm re-eval %+v != first eval %+v", k.Name, cfgs[i], got, want[i])
					}
				}
			}
		})
	}
}

func TestPerCellAdapterMatchesSimulate(t *testing.T) {
	sim := PerCell(PipelineRow)
	k := cuIntolerantKernel()
	for _, cfg := range preparedTestConfigs()[:4] {
		want, err := SimulatePipeline(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got, want) {
			t.Fatalf("PerCell %+v != SimulatePipeline %+v on %v", got, want, cfg)
		}
	}
	if _, err := sim(k, hw.Config{}); err == nil {
		t.Fatal("PerCell accepted an invalid config")
	}
}

func TestPrepareRejectsRowLevelConditions(t *testing.T) {
	// A workgroup that cannot fit on any CU is a row-level error.
	big := kernel.New("s", "p", "huge").Geometry(16, 1024).MustBuild()
	big.SGPRsPerWave = 512
	if _, err := Prepare(big); !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("Prepare(unfittable) = %v, want ErrDoesNotFit", err)
	}
	// So is a kernel that fails validation outright.
	bad := computeBoundKernel()
	bad.WGSize = 0
	if _, err := Prepare(bad); err == nil {
		t.Fatal("Prepare accepted an invalid kernel")
	}
	for _, re := range []RowEngine{RoundRow, WaveRow, PipelineRow, DetailedRow} {
		if _, err := re.PrepareRow(big); !errors.Is(err, ErrDoesNotFit) {
			t.Fatalf("PrepareRow(unfittable) = %v, want ErrDoesNotFit", err)
		}
	}
}

func TestPreparedStatsCountMemoTraffic(t *testing.T) {
	// Re-evaluating one configuration must serve the second pass
	// entirely from the memos.
	row, err := PipelineRow.PrepareRow(bandwidthBoundKernel())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgWith(16, 1000, 1250)
	if _, err := row.Eval(cfg); err != nil {
		t.Fatal(err)
	}
	first := row.Stats()
	if first.HitRateMisses == 0 || first.ResidentSetMisses == 0 {
		t.Fatalf("first eval recorded no memo misses: %+v", first)
	}
	if _, err := row.Eval(cfg); err != nil {
		t.Fatal(err)
	}
	second := row.Stats()
	if second.HitRateMisses != first.HitRateMisses || second.ResidentSetMisses != first.ResidentSetMisses {
		t.Fatalf("repeat eval recomputed memoized state: %+v -> %+v", first, second)
	}
	if second.HitRateHits <= first.HitRateHits || second.ResidentSetHits <= first.ResidentSetHits {
		t.Fatalf("repeat eval did not hit the memos: %+v -> %+v", first, second)
	}
}
