package gcn

import (
	"testing"

	"gpuscale/internal/isa"
	"gpuscale/internal/kernel"
)

// The optimized resident-set scheduler caches instruction classes and
// skips scans via per-class counts, which must not change issue order.
// referenceResidentSet is the original straightforward implementation
// — Body lookups and predicate calls every cycle — kept verbatim as a
// differential oracle: both must agree on the exact cycle count for
// every program, latency, and policy.

func refIsVector(op isa.Op) bool { return op == isa.OpVALU || op == isa.OpLDS }
func refIsMemory(op isa.Op) bool { return op == isa.OpLoad || op == isa.OpStore }
func refIsScalar(op isa.Op) bool { return op == isa.OpSALU }

type refWave struct {
	wg        int
	instr     int
	remaining int
	loads     int
	atBarrier bool
	done      bool
}

type refPipeline struct {
	prog       *isa.Program
	waves      []refWave
	wavesPerWG int
	loadDone   []loadCompletion
	loadHead   int
	arrived    []int
	policy     SchedPolicy
	cycle      int64
}

func (p *refPipeline) pickReady(rr *int, port func(isa.Op) bool) int {
	n := len(p.waves)
	start := *rr
	if p.policy == GreedyThenOldest {
		start = 0
	}
	for i := 0; i < n; i++ {
		w := (start + i) % n
		wv := &p.waves[w]
		if wv.done || wv.atBarrier {
			continue
		}
		in := p.prog.Body[wv.instr]
		if !port(in.Op) {
			continue
		}
		if in.DependsOnLoad && wv.loads > 0 {
			continue
		}
		if p.policy == RoundRobin {
			*rr = (w + 1) % n
		}
		return w
	}
	return -1
}

func (p *refPipeline) step(w int) {
	wv := &p.waves[w]
	wv.remaining--
	if wv.remaining == 0 {
		wv.instr++
		if wv.instr < len(p.prog.Body) {
			wv.remaining = p.prog.Body[wv.instr].Count
		}
	}
}

func (p *refPipeline) releaseBarrier(wg int) {
	p.arrived[wg] = 0
	for w := range p.waves {
		wv := &p.waves[w]
		if wv.wg == wg && wv.atBarrier {
			wv.atBarrier = false
			p.step(w)
		}
	}
}

func referenceResidentSet(prog *isa.Program, wgs, wavesPerWG int, latencyCycles int64, policy SchedPolicy) (int64, error) {
	p := &refPipeline{prog: prog, wavesPerWG: wavesPerWG, policy: policy, arrived: make([]int, wgs)}
	for wg := 0; wg < wgs; wg++ {
		for i := 0; i < wavesPerWG; i++ {
			p.waves = append(p.waves, refWave{wg: wg, remaining: prog.Body[0].Count})
		}
	}
	live := len(p.waves)
	rrVec, rrMem, rrScalar := 0, 0, 0
	for live > 0 {
		for p.loadHead < len(p.loadDone) && p.loadDone[p.loadHead].cycle <= p.cycle {
			p.waves[p.loadDone[p.loadHead].wave].loads--
			p.loadHead++
		}
		issued := false
		if w := p.pickReady(&rrVec, refIsVector); w >= 0 {
			p.step(w)
			issued = true
		}
		if w := p.pickReady(&rrMem, refIsMemory); w >= 0 {
			wv := &p.waves[w]
			if p.prog.Body[wv.instr].Op == isa.OpLoad {
				wv.loads++
				p.loadDone = append(p.loadDone, loadCompletion{cycle: p.cycle + latencyCycles, wave: w})
			}
			p.step(w)
			issued = true
		}
		if w := p.pickReady(&rrScalar, refIsScalar); w >= 0 {
			p.step(w)
			issued = true
		}
		for w := range p.waves {
			wv := &p.waves[w]
			if wv.done || wv.atBarrier {
				continue
			}
			switch p.prog.Body[wv.instr].Op {
			case isa.OpBarrier:
				wv.atBarrier = true
				p.arrived[wv.wg]++
				if p.arrived[wv.wg] == p.wavesPerWG {
					p.releaseBarrier(wv.wg)
				}
				issued = true
			case isa.OpEnd:
				if wv.loads == 0 {
					wv.done = true
					live--
					issued = true
				}
			}
		}
		if issued {
			p.cycle++
			continue
		}
		if p.loadHead < len(p.loadDone) {
			p.cycle = p.loadDone[p.loadHead].cycle
			continue
		}
		break
	}
	return p.cycle, nil
}

func TestResidentSetMatchesReference(t *testing.T) {
	kernels := []*kernel.Kernel{
		capVALU(capWGs(computeBoundKernel(), 8), 300),
		capWGs(bandwidthBoundKernel(), 8),
		capWGs(latencyBoundKernel(), 8),
		capVALU(capWGs(cuIntolerantKernel(), 8), 300),
		kernel.New("s", "p", "lds").Geometry(8, 256).LDSOps(64, 4).MustBuild(),
	}
	for _, k := range kernels {
		prog, err := isa.Lower(k)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, policy := range []SchedPolicy{RoundRobin, GreedyThenOldest} {
			for _, latency := range []int64{1, 7, 63, 400} {
				for _, wgs := range []int{1, 3, 8} {
					want, err := referenceResidentSet(prog, wgs, 4, latency, policy)
					if err != nil {
						t.Fatal(err)
					}
					got, err := SimulateResidentSetPolicy(prog, wgs, 4, latency, policy)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("%s policy=%v latency=%d wgs=%d: optimized %d cycles, reference %d",
							k.Name, policy, latency, wgs, got, want)
					}
				}
			}
		}
	}
}
