package gcn

import (
	"errors"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

func mustSimWave(t *testing.T, k *kernel.Kernel, cfg hw.Config) Result {
	t.Helper()
	r, err := SimulateWave(k, cfg)
	if err != nil {
		t.Fatalf("SimulateWave(%s, %v): %v", k.Name, cfg, err)
	}
	return r
}

func TestWaveEngineMatchesRoundOnArchetypes(t *testing.T) {
	kernels := []*kernel.Kernel{
		smaller(computeBoundKernel(), 512),
		smaller(bandwidthBoundKernel(), 512),
		parallelismLimitedKernel(),
		smaller(cuIntolerantKernel(), 512),
		smaller(latencyBoundKernel(), 256),
	}
	for _, k := range kernels {
		for _, cfg := range []hw.Config{hw.Reference(), hw.Minimum()} {
			round := mustSim(t, k, cfg)
			wave := mustSimWave(t, k, cfg)
			ratio := wave.KernelNS / round.KernelNS
			if ratio < 0.6 || ratio > 1.8 {
				t.Errorf("%s@%v: wave/round = %.2f (wave %.0f ns, round %.0f ns)",
					k.Name, cfg, ratio, wave.KernelNS, round.KernelNS)
			}
		}
	}
}

func TestWaveEngineScalingDirections(t *testing.T) {
	// The event engine must reproduce the class-defining responses.
	comp := smaller(computeBoundKernel(), 512)
	base := mustSimWave(t, comp, cfgWith(22, 500, 1250))
	fast := mustSimWave(t, comp, cfgWith(22, 1000, 1250))
	if r := fast.Throughput / base.Throughput; r < 1.7 || r > 2.3 {
		t.Errorf("compute kernel 2x clock speedup = %.2f, want ~2", r)
	}
	moreCU := mustSimWave(t, comp, cfgWith(44, 500, 1250))
	if r := moreCU.Throughput / base.Throughput; r < 1.7 || r > 2.3 {
		t.Errorf("compute kernel 2x CU speedup = %.2f, want ~2", r)
	}

	bw := smaller(bandwidthBoundKernel(), 512)
	slow := mustSimWave(t, bw, cfgWith(44, 1000, 300))
	fastM := mustSimWave(t, bw, cfgWith(44, 1000, 1200))
	if r := fastM.Throughput / slow.Throughput; r < 2.8 || r > 4.5 {
		t.Errorf("bw kernel 4x mem speedup = %.2f, want ~4", r)
	}
}

func TestWaveEngineParallelismPlateau(t *testing.T) {
	k := parallelismLimitedKernel()
	at16 := mustSimWave(t, k, cfgWith(16, 1000, 1250))
	at44 := mustSimWave(t, k, cfgWith(44, 1000, 1250))
	if r := at44.Throughput / at16.Throughput; r > 1.1 {
		t.Errorf("16->44 CU speedup = %.2f, want plateau (16 workgroups)", r)
	}
}

func TestWaveEnginePureCompute(t *testing.T) {
	k := kernel.New("t", "t", "pure").
		Geometry(256, 256).
		Compute(10000, 100).
		Access(kernel.Streaming, 0, 0, 0).
		MLP(0).
		MustBuild()
	r := mustSimWave(t, k, hw.Reference())
	if r.Bound != BoundCompute {
		t.Errorf("pure compute bound = %v", r.Bound)
	}
	if r.AchievedGBs != 0 {
		t.Errorf("pure compute moved %g GB/s", r.AchievedGBs)
	}
}

func TestWaveEngineDeterministic(t *testing.T) {
	k := smaller(bandwidthBoundKernel(), 200)
	a := mustSimWave(t, k, cfgWith(20, 700, 700))
	b := mustSimWave(t, k, cfgWith(20, 700, 700))
	if a.KernelNS != b.KernelNS {
		t.Fatalf("non-deterministic: %g vs %g", a.KernelNS, b.KernelNS)
	}
}

func TestWaveEngineErrors(t *testing.T) {
	bad := computeBoundKernel()
	bad.VALUPerWave = 0
	if _, err := SimulateWave(bad, hw.Reference()); err == nil {
		t.Error("invalid kernel accepted")
	}
	if _, err := SimulateWave(computeBoundKernel(), hw.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	huge := computeBoundKernel()
	huge.SGPRsPerWave = 512
	huge.WGSize = 1024
	if _, err := SimulateWave(huge, hw.Reference()); !errors.Is(err, ErrDoesNotFit) {
		t.Errorf("SimulateWave = %v, want ErrDoesNotFit", err)
	}
}

func TestWaveEngineInvariants(t *testing.T) {
	for _, k := range []*kernel.Kernel{
		smaller(computeBoundKernel(), 128),
		smaller(bandwidthBoundKernel(), 128),
		launchBoundKernel(),
	} {
		r := mustSimWave(t, k, hw.Reference())
		if r.TimeNS <= 0 || r.KernelNS > r.TimeNS || r.Throughput <= 0 {
			t.Fatalf("%s: bad result %+v", k.Name, r)
		}
		if r.BoundShare < 0 || r.BoundShare > 1 {
			t.Fatalf("%s: BoundShare = %g", k.Name, r.BoundShare)
		}
	}
}

func TestWaveEngineTailEffect(t *testing.T) {
	// One straggler workgroup beyond full residency must extend the
	// makespan by less than one full workgroup round.
	k44 := smaller(computeBoundKernel(), 44)
	k45 := smaller(computeBoundKernel(), 45)
	t44 := mustSimWave(t, k44, cfgWith(44, 1000, 1250)).KernelNS
	t45 := mustSimWave(t, k45, cfgWith(44, 1000, 1250)).KernelNS
	if t45 < t44 {
		t.Fatalf("45 WGs faster than 44: %g < %g", t45, t44)
	}
	if t45 > 2.2*t44 {
		t.Fatalf("tail workgroup more than doubled time: %g vs %g", t45, t44)
	}
}
