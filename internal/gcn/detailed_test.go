package gcn

import (
	"errors"
	"math"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

func mustSimDetailed(t *testing.T, k *kernel.Kernel, cfg hw.Config) Result {
	t.Helper()
	r, err := SimulateDetailed(k, cfg)
	if err != nil {
		t.Fatalf("SimulateDetailed(%s, %v): %v", k.Name, cfg, err)
	}
	return r
}

// smaller returns a copy of k with the workgroup count reduced so the
// detailed engine stays fast.
func smaller(k *kernel.Kernel, wgs int) *kernel.Kernel {
	c := *k
	c.Workgroups = wgs
	return &c
}

func TestDetailedMatchesRoundOnArchetypes(t *testing.T) {
	// The two engines share a performance model but differ in
	// dispatch granularity; kernel times must agree within 30% on
	// every archetype, at two corner configurations.
	kernels := []*kernel.Kernel{
		smaller(computeBoundKernel(), 512),
		smaller(bandwidthBoundKernel(), 512),
		parallelismLimitedKernel(),
		smaller(cuIntolerantKernel(), 512),
		smaller(latencyBoundKernel(), 256),
	}
	cfgs := []hw.Config{hw.Reference(), hw.Minimum()}
	for _, k := range kernels {
		for _, cfg := range cfgs {
			round := mustSim(t, k, cfg)
			det := mustSimDetailed(t, k, cfg)
			ratio := det.KernelNS / round.KernelNS
			if ratio < 0.7 || ratio > 1.45 {
				t.Errorf("%s@%v: detailed/round = %.2f (detailed %.0f ns, round %.0f ns)",
					k.Name, cfg, ratio, det.KernelNS, round.KernelNS)
			}
		}
	}
}

func TestDetailedAgreesOnScalingDirection(t *testing.T) {
	// Fidelity matters less than direction: both engines must agree
	// on which of two configurations is faster for each archetype.
	pairs := [][2]hw.Config{
		{cfgWith(8, 1000, 1250), cfgWith(44, 1000, 1250)},
		{cfgWith(44, 200, 1250), cfgWith(44, 1000, 1250)},
		{cfgWith(44, 1000, 150), cfgWith(44, 1000, 1250)},
	}
	kernels := []*kernel.Kernel{
		smaller(computeBoundKernel(), 512),
		smaller(bandwidthBoundKernel(), 512),
		smaller(latencyBoundKernel(), 256),
	}
	for _, k := range kernels {
		for _, pair := range pairs {
			r0, r1 := mustSim(t, k, pair[0]), mustSim(t, k, pair[1])
			d0, d1 := mustSimDetailed(t, k, pair[0]), mustSimDetailed(t, k, pair[1])
			roundSays := r1.Throughput / r0.Throughput
			detSays := d1.Throughput / d0.Throughput
			// Agree on "material speedup vs roughly flat".
			if (roundSays > 1.3) != (detSays > 1.3) && math.Abs(roundSays-detSays) > 0.35 {
				t.Errorf("%s %v->%v: round says %.2fx, detailed says %.2fx",
					k.Name, pair[0], pair[1], roundSays, detSays)
			}
		}
	}
}

func TestDetailedTailEffect(t *testing.T) {
	// 45 workgroups on 44 CUs: the detailed engine should show the
	// classic tail (barely faster than 44 WGs), and adding the 45th
	// workgroup must not double the time.
	k := smaller(computeBoundKernel(), 44)
	k2 := smaller(computeBoundKernel(), 45)
	t44 := mustSimDetailed(t, k, cfgWith(44, 1000, 1250)).KernelNS
	t45 := mustSimDetailed(t, k2, cfgWith(44, 1000, 1250)).KernelNS
	if t45 < t44 {
		t.Fatalf("45 WGs faster than 44: %g < %g", t45, t44)
	}
	if t45 > 2.2*t44 {
		t.Fatalf("tail workgroup more than doubled time: %g vs %g", t45, t44)
	}
}

func TestDetailedDoesNotFit(t *testing.T) {
	k := computeBoundKernel()
	k.SGPRsPerWave = 512
	k.WGSize = 1024
	if _, err := SimulateDetailed(k, hw.Reference()); !errors.Is(err, ErrDoesNotFit) {
		t.Fatalf("SimulateDetailed = %v, want ErrDoesNotFit", err)
	}
}

func TestDetailedRejectsInvalid(t *testing.T) {
	bad := computeBoundKernel()
	bad.VALUPerWave = 0
	if _, err := SimulateDetailed(bad, hw.Reference()); err == nil {
		t.Error("invalid kernel accepted")
	}
	if _, err := SimulateDetailed(computeBoundKernel(), hw.Config{CUs: -1}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDetailedInvariants(t *testing.T) {
	for _, k := range []*kernel.Kernel{
		smaller(computeBoundKernel(), 128),
		smaller(bandwidthBoundKernel(), 128),
		launchBoundKernel(),
	} {
		r := mustSimDetailed(t, k, hw.Reference())
		if r.TimeNS <= 0 || math.IsNaN(r.TimeNS) {
			t.Fatalf("%s: TimeNS = %g", k.Name, r.TimeNS)
		}
		if r.Throughput <= 0 {
			t.Fatalf("%s: Throughput = %g", k.Name, r.Throughput)
		}
		if r.KernelNS > r.TimeNS {
			t.Fatalf("%s: kernel %g > total %g", k.Name, r.KernelNS, r.TimeNS)
		}
	}
}

func TestDetailedDeterministic(t *testing.T) {
	k := smaller(bandwidthBoundKernel(), 200)
	a := mustSimDetailed(t, k, cfgWith(20, 700, 700))
	b := mustSimDetailed(t, k, cfgWith(20, 700, 700))
	if a.KernelNS != b.KernelNS {
		t.Fatalf("non-deterministic: %g vs %g", a.KernelNS, b.KernelNS)
	}
}
