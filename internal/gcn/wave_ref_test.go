package gcn

import (
	"fmt"
	"math"

	"gpuscale/internal/hw"
	"gpuscale/internal/memory"
)

// This file preserves the wave engine's original binary-heap scheduler
// as a test-only reference, following the pipeline engine's
// pipeline_ref_test.go pattern: the production engine (calendar queue,
// indexed workgroup counters, hoisted segmentation) must reproduce the
// reference bit for bit on every configuration. Because (at, seq) is a
// strict total order on events, any correct priority queue pops the
// same sequence, so the two implementations are equivalent by
// construction — this oracle is the executable proof.

type refWaveState struct {
	cu              int
	wg              int
	segsLeft        int
	computeNSPerSeg float64
	batchDRAMBytes  float64
	batchL2Bytes    float64
}

type refWaveEvent struct {
	at   float64
	kind int
	wave *refWaveState
	seq  int
}

type refEventHeap []refWaveEvent

func (h refEventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *refEventHeap) push(e refWaveEvent) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *refEventHeap) pop() refWaveEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s.less(r, c) {
			c = r
		}
		if !s.less(c, i) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// referenceEvalWave is the pre-calendar-queue EvalWave, verbatim
// except for fresh (non-scratch) buffers and the renamed heap types.
func referenceEvalWave(p *Prepared, cfg hw.Config) (Result, error) {
	k := p.k
	occWGs := p.occWGs
	d := p.demandFor(cfg)
	hier := memory.NewHierarchy(cfg)
	hr := p.hitRates(occWGs, cfg.CUs, cfg.L2CapacityBytes())
	effBW := hier.EffectiveBandwidthGBs(k.Mem.Pattern)
	l2BW := l2BandwidthGBs(cfg)

	wavesPerWG := d.wavesPerWG
	accPerWave := d.accessesPerWG / float64(wavesPerWG)
	issuePerWave := d.issueNSPerWG / float64(wavesPerWG)
	segs := 1
	if accPerWave > 0 {
		segs = int(math.Ceil(accPerWave / p.der.EffectiveMLP))
	}
	transPerWave := d.transBytesPerWG / float64(wavesPerWG)
	l2PerBatch := transPerWave * (1 - hr.L1) / float64(segs)
	dramPerBatch := l2PerBatch * (1 - hr.L2)

	batchLatency := hier.AvgAccessLatencyNS(hr, 0)

	cuIssueFree := make([]float64, cfg.CUs)
	cuResidentWGs := make([]int, cfg.CUs)
	wgWavesLeft := make(map[int]int)
	events := &refEventHeap{}
	totalWaves := p.der.TotalWaves
	waves := make([]refWaveState, totalWaves)
	nextWave := 0

	var l2Free, dramFree float64
	var dramBusyNS, l2BusyNS, issueBusyNS float64
	pendingWGs := k.Workgroups
	nextWG := 0
	inFlightWaves := 0
	var now float64
	seq := 0

	finish := func(w *refWaveState) {
		inFlightWaves--
		wgWavesLeft[w.wg]--
		if wgWavesLeft[w.wg] == 0 {
			delete(wgWavesLeft, w.wg)
			cuResidentWGs[w.cu]--
		}
	}

	startWave := func(cu, wg int, at float64) {
		w := &waves[nextWave]
		nextWave++
		*w = refWaveState{
			cu:              cu,
			wg:              wg,
			segsLeft:        segs,
			computeNSPerSeg: issuePerWave / float64(segs),
			batchDRAMBytes:  dramPerBatch,
			batchL2Bytes:    l2PerBatch,
		}
		grant := max(at, cuIssueFree[cu])
		done := grant + w.computeNSPerSeg
		cuIssueFree[cu] = done
		issueBusyNS += w.computeNSPerSeg
		seq++
		events.push(refWaveEvent{at: done, kind: evComputeDone, wave: w, seq: seq})
		inFlightWaves++
	}

	dispatch := func(at float64) {
		for pendingWGs > 0 {
			best, bestLoad := -1, occWGs
			for cu := 0; cu < cfg.CUs; cu++ {
				if cuResidentWGs[cu] < bestLoad {
					best, bestLoad = cu, cuResidentWGs[cu]
				}
			}
			if best < 0 {
				return
			}
			wg := nextWG
			nextWG++
			pendingWGs--
			cuResidentWGs[best]++
			wgWavesLeft[wg] = wavesPerWG
			for i := 0; i < wavesPerWG; i++ {
				startWave(best, wg, at)
			}
		}
	}
	dispatch(0)

	processed := 0
	for len(*events) > 0 {
		processed++
		if processed > maxWaveEvents {
			return Result{}, fmt.Errorf("gcn: wave engine exceeded %d events on %s (launch too large)",
				maxWaveEvents, k.Name)
		}
		ev := events.pop()
		now = ev.at
		w := ev.wave
		switch ev.kind {
		case evComputeDone:
			if accPerWave == 0 || w.segsLeft == 0 {
				finish(w)
				dispatch(now)
				continue
			}
			w.segsLeft--
			start := now
			if w.batchL2Bytes > 0 {
				grant := max(start, l2Free)
				service := w.batchL2Bytes / l2BW
				l2Free = grant + service
				l2BusyNS += service
				start = l2Free
			}
			if w.batchDRAMBytes > 0 && effBW > 0 {
				grant := max(start, dramFree)
				service := w.batchDRAMBytes / effBW
				dramFree = grant + service
				dramBusyNS += service
				start = dramFree
			}
			seq++
			events.push(refWaveEvent{at: start + batchLatency, kind: evMemDone, wave: w, seq: seq})
		case evMemDone:
			if w.segsLeft == 0 {
				finish(w)
				dispatch(now)
				continue
			}
			grant := max(now, cuIssueFree[w.cu])
			done := grant + w.computeNSPerSeg
			cuIssueFree[w.cu] = done
			issueBusyNS += w.computeNSPerSeg
			seq++
			events.push(refWaveEvent{at: done, kind: evComputeDone, wave: w, seq: seq})
		}
	}

	kernelNS := now
	total := kernelNS + k.LaunchOverheadNS
	var boundNS boundTimes
	boundNS[BoundCompute] = issueBusyNS / float64(cfg.CUs)
	boundNS[BoundDRAM] = dramBusyNS
	boundNS[BoundL2] = l2BusyNS
	busiest := max(boundNS[BoundCompute], boundNS[BoundDRAM], boundNS[BoundL2])
	if kernelNS > busiest {
		boundNS[BoundLatency] = kernelNS - busiest
	}
	dominant, share := dominantBound(&boundNS, k.LaunchOverheadNS, total)

	transBytes := d.transBytesPerWG * float64(k.Workgroups)
	dramBytes := transBytes * (1 - hr.L1) * (1 - hr.L2)
	return Result{
		TimeNS:         total,
		KernelNS:       kernelNS,
		Throughput:     float64(p.der.TotalWorkItems) / total,
		AchievedGFLOPS: d.flopsPerWG * float64(k.Workgroups) / total,
		AchievedGBs:    dramBytes / total,
		HitRates:       hr,
		OccupancyWaves: p.der.OccupancyWavesPerCU,
		Bound:          dominant,
		BoundShare:     share,
	}, nil
}
