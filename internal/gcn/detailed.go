package gcn

import (
	"fmt"
	"math"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// wgState tracks one in-flight workgroup in the detailed engine.
type wgState struct {
	issueRem  float64 // CU-exclusive issue nanoseconds remaining
	accessRem float64 // memory accesses remaining
}

func (w *wgState) done() bool {
	return w.issueRem <= 1e-9 && w.accessRem <= 1e-9
}

// cuState is one compute unit with its resident workgroups.
type cuState struct {
	resident []*wgState
}

// cuRates is one CU's drain rates for a quantum.
type cuRates struct {
	computePerWG float64 // issue-ns drained per ns per WG
	accessPerWG  float64 // accesses drained per ns per WG
}

// detailedScratch holds the detailed engine's reusable buffers: the
// CU array (whose resident slices keep their capacity), a fixed arena
// of workgroup states (resident lists hold pointers into it), and the
// per-quantum rate buffer.
type detailedScratch struct {
	cus   []cuState
	wgs   []wgState
	rates []cuRates
}

// SimulateDetailed runs the continuous-dispatch, time-quantum engine.
// It models each workgroup as a fluid entity draining compute (issue
// slots) and memory (latency- and bandwidth-capped accesses)
// concurrently, dispatching a queued workgroup the moment a slot
// frees. Compared with Simulate it captures dispatch pipelining,
// inter-CU imbalance, and tail drain exactly, at O(workgroups x
// residency) cost — use it for validation, not for the 237k-run
// sweep. For whole-row evaluation, Prepare once and call EvalDetailed
// per config.
func SimulateDetailed(k *kernel.Kernel, cfg hw.Config) (Result, error) {
	p, err := Prepare(k)
	if err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return p.EvalDetailed(cfg)
}

// EvalDetailed runs the detailed engine on one already-validated
// configuration, reusing the prepared scratch buffers.
func (p *Prepared) EvalDetailed(cfg hw.Config) (Result, error) {
	k := p.k
	occWGs := p.occWGs
	d := p.demandFor(cfg)
	hier := memory.NewHierarchy(cfg)
	effBW := hier.EffectiveBandwidthGBs(k.Mem.Pattern)
	l2BW := l2BandwidthGBs(cfg)
	l2Bytes := cfg.L2CapacityBytes()
	bytesPerAccess := 0.0
	if d.accessesPerWG > 0 {
		bytesPerAccess = d.transBytesPerWG / d.accessesPerWG
	}
	concPerWave := p.der.EffectiveMLP * p.barrierConc

	s := p.det
	if s == nil {
		s = &detailedScratch{}
		p.det = s
	}
	if cap(s.cus) < cfg.CUs {
		s.cus = make([]cuState, cfg.CUs)
	} else {
		s.cus = s.cus[:cfg.CUs]
	}
	cus := s.cus
	for i := range cus {
		cus[i].resident = cus[i].resident[:0]
	}
	if cap(s.wgs) < k.Workgroups {
		s.wgs = make([]wgState, k.Workgroups)
	} else {
		s.wgs = s.wgs[:k.Workgroups]
	}
	if cap(s.rates) < len(cus) {
		s.rates = make([]cuRates, len(cus))
	} else {
		s.rates = s.rates[:len(cus)]
	}
	rates := s.rates

	pending := k.Workgroups
	inFlight := 0
	nextWG := 0

	dispatch := func() {
		for pending > 0 {
			// Fill the least-loaded CU first, respecting occupancy.
			best, bestLoad := -1, occWGs
			for i := range cus {
				if l := len(cus[i].resident); l < bestLoad {
					best, bestLoad = i, l
				}
			}
			if best < 0 {
				return
			}
			wg := &s.wgs[nextWG]
			nextWG++
			*wg = wgState{
				issueRem:  d.issueNSPerWG,
				accessRem: d.accessesPerWG,
			}
			cus[best].resident = append(cus[best].resident, wg)
			pending--
			inFlight++
		}
	}
	dispatch()

	var now float64
	util := 0.0
	var boundNS boundTimes
	var lastHR memory.HitRates

	for inFlight > 0 {
		// Per-CU rates for this quantum; the buffer is reused across
		// quanta, so clear it first (idle CUs must stay at zero).
		for i := range rates {
			rates[i] = cuRates{}
		}
		active := countActive(cus)
		demandBytes := 0.0
		for i := range cus {
			q := len(cus[i].resident)
			if q == 0 {
				continue
			}
			hr := p.hitRates(q, active, l2Bytes)
			lastHR = hr
			avgLat := hier.AvgAccessLatencyNS(hr, util)
			r := cuRates{computePerWG: 1 / float64(q)}
			if d.accessesPerWG > 0 {
				conc := float64(q*d.wavesPerWG) * concPerWave
				if conc < 1 {
					conc = 1
				}
				r.accessPerWG = conc / avgLat / float64(q)
				demandBytes += r.accessPerWG * float64(q) * bytesPerAccess * (1 - hr.L1)
			}
			rates[i] = r
		}

		// Global bandwidth throttling: scale every CU's access rate by
		// the tighter of the L2 and DRAM constraints.
		scale := 1.0
		quantumBound := BoundLatency
		hrNow := lastHR
		dramDemand := demandBytes * (1 - hrNow.L2)
		if demandBytes > 0 {
			if s := l2BW / demandBytes; s < scale {
				scale, quantumBound = s, BoundL2
			}
			if dramDemand > 0 {
				if s := effBW / dramDemand; s < scale {
					scale, quantumBound = s, BoundDRAM
				}
			}
		}

		// Choose the quantum: the earliest time any workgroup exhausts
		// either resource at current rates.
		dt := math.Inf(1)
		for i := range cus {
			for _, wg := range cus[i].resident {
				if wg.issueRem > 1e-9 && rates[i].computePerWG > 0 {
					if t := wg.issueRem / rates[i].computePerWG; t < dt {
						dt = t
					}
				}
				if wg.accessRem > 1e-9 && rates[i].accessPerWG > 0 {
					if t := wg.accessRem / (rates[i].accessPerWG * scale); t < dt {
						dt = t
					}
				}
			}
		}
		if math.IsInf(dt, 1) {
			// No drainable work should be impossible; bail defensively
			// rather than spin.
			return Result{}, fmt.Errorf("gcn: detailed engine stalled at t=%g on %s", now, k.Name)
		}
		if dt < 1e-6 {
			dt = 1e-6
		}

		// Advance all workgroups by dt.
		computeActive := false
		for i := range cus {
			kept := cus[i].resident[:0]
			for _, wg := range cus[i].resident {
				if wg.issueRem > 1e-9 {
					wg.issueRem -= rates[i].computePerWG * dt
					computeActive = true
				}
				if wg.accessRem > 1e-9 {
					wg.accessRem -= rates[i].accessPerWG * scale * dt
				}
				if wg.done() {
					inFlight--
				} else {
					kept = append(kept, wg)
				}
			}
			cus[i].resident = kept
		}
		now += dt
		if scale >= 1 && computeActive {
			quantumBound = BoundCompute
		}
		boundNS[quantumBound] += dt

		// Lagged utilisation estimate for the next quantum's latency.
		if effBW > 0 {
			util = clampUnit(dramDemand * scale / effBW)
		}
		dispatch()
	}

	total := now + k.LaunchOverheadNS
	dominant, share := dominantBound(&boundNS, k.LaunchOverheadNS, total)
	transBytes := d.transBytesPerWG * float64(k.Workgroups)
	dramBytes := transBytes * (1 - lastHR.L1) * (1 - lastHR.L2)
	return Result{
		TimeNS:         total,
		KernelNS:       now,
		Throughput:     float64(p.der.TotalWorkItems) / total,
		AchievedGFLOPS: d.flopsPerWG * float64(k.Workgroups) / total,
		AchievedGBs:    dramBytes / total,
		HitRates:       lastHR,
		OccupancyWaves: p.der.OccupancyWavesPerCU,
		Bound:          dominant,
		BoundShare:     share,
	}, nil
}

func countActive(cus []cuState) int {
	n := 0
	for i := range cus {
		if len(cus[i].resident) > 0 {
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return n
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
