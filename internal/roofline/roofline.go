// Package roofline implements the roofline model for the simulated
// GPU: attainable performance as a function of arithmetic intensity,
// and the placement of measured kernels under the roof. The taxonomy
// generalises the roofline's static two-way split; this package
// provides the reference frame the comparison is made in.
package roofline

import (
	"fmt"
	"math"
	"sort"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// Point is one kernel placed on the roofline plot.
type Point struct {
	// Kernel is the kernel's name.
	Kernel string
	// Intensity is FLOPs per byte of DRAM-bound traffic.
	Intensity float64
	// GFLOPS is achieved floating-point throughput.
	GFLOPS float64
	// RoofFraction is GFLOPS divided by the attainable roof at this
	// intensity.
	RoofFraction float64
}

// Attainable returns the roofline ceiling (GFLOP/s) at the given
// arithmetic intensity for a configuration.
func Attainable(cfg hw.Config, intensity float64) float64 {
	if intensity <= 0 {
		return 0
	}
	bw := cfg.PeakBandwidthGBs() * intensity
	peak := cfg.PeakGFLOPS()
	return math.Min(bw, peak)
}

// Ridge returns the intensity at which the roofline transitions from
// bandwidth-bound to compute-bound (the machine balance).
func Ridge(cfg hw.Config) float64 { return cfg.MachineBalance() }

// Place simulates each kernel on the configuration and returns its
// roofline point, sorted by intensity. Kernels with no memory traffic
// get intensity +Inf and sort last.
func Place(ks []*kernel.Kernel, cfg hw.Config) ([]Point, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("roofline: no kernels")
	}
	out := make([]Point, 0, len(ks))
	for _, k := range ks {
		r, err := gcn.Simulate(k, cfg)
		if err != nil {
			return nil, fmt.Errorf("roofline: %s: %w", k.Name, err)
		}
		p := Point{
			Kernel:    k.Name,
			Intensity: k.ArithmeticIntensity(),
			GFLOPS:    r.AchievedGFLOPS,
		}
		if roof := Attainable(cfg, p.Intensity); roof > 0 {
			p.RoofFraction = p.GFLOPS / roof
		} else if math.IsInf(p.Intensity, 1) {
			p.RoofFraction = p.GFLOPS / cfg.PeakGFLOPS()
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Intensity < out[j].Intensity })
	return out, nil
}

// Summary aggregates a placement: how much of the corpus sits under
// which part of the roof.
type Summary struct {
	// Kernels is the number of points.
	Kernels int
	// BandwidthSide counts kernels left of the ridge.
	BandwidthSide int
	// ComputeSide counts kernels at or right of the ridge.
	ComputeSide int
	// MedianRoofFraction is the median achieved fraction of the roof.
	MedianRoofFraction float64
}

// Summarise reduces a placement against a configuration's ridge.
func Summarise(points []Point, cfg hw.Config) Summary {
	s := Summary{Kernels: len(points)}
	ridge := Ridge(cfg)
	fracs := make([]float64, 0, len(points))
	for _, p := range points {
		if p.Intensity < ridge {
			s.BandwidthSide++
		} else {
			s.ComputeSide++
		}
		fracs = append(fracs, p.RoofFraction)
	}
	if len(fracs) > 0 {
		sort.Float64s(fracs)
		s.MedianRoofFraction = fracs[len(fracs)/2]
	}
	return s
}
