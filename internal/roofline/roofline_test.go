package roofline

import (
	"math"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

func TestAttainable(t *testing.T) {
	cfg := hw.Reference() // 5632 GFLOP/s, 320 GB/s, ridge 17.6
	if got := Attainable(cfg, 1); math.Abs(got-320) > 1e-9 {
		t.Errorf("Attainable(1) = %g, want 320 (bandwidth side)", got)
	}
	if got := Attainable(cfg, 100); math.Abs(got-5632) > 1e-9 {
		t.Errorf("Attainable(100) = %g, want 5632 (compute side)", got)
	}
	if got := Attainable(cfg, 0); got != 0 {
		t.Errorf("Attainable(0) = %g", got)
	}
	ridge := Ridge(cfg)
	if got := Attainable(cfg, ridge); math.Abs(got-5632) > 1 {
		t.Errorf("Attainable(ridge) = %g, want peak", got)
	}
}

func TestPlaceOrdersAndBounds(t *testing.T) {
	ks := []*kernel.Kernel{
		kernel.New("s", "p", "hot").Geometry(2048, 256).
			Compute(30000, 100).Access(kernel.Streaming, 8, 2, 4).MustBuild(),
		kernel.New("s", "p", "cold").Geometry(2048, 256).
			Compute(300, 50).Access(kernel.Streaming, 256, 64, 4).
			Locality(256*1024, 0, 0).MustBuild(),
	}
	pts, err := Place(ks, hw.Reference())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Intensity > pts[1].Intensity {
		t.Error("points not sorted by intensity")
	}
	for _, p := range pts {
		if p.RoofFraction <= 0 || p.RoofFraction > 1.05 {
			t.Errorf("%s roof fraction = %g, want (0, ~1]", p.Kernel, p.RoofFraction)
		}
	}
	// The streaming kernel must achieve a high fraction of its
	// (bandwidth) roof; the compute kernel of its (compute) roof.
	if pts[0].RoofFraction < 0.4 {
		t.Errorf("bandwidth kernel achieves %.2f of roof, want > 0.4", pts[0].RoofFraction)
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(nil, hw.Reference()); err == nil {
		t.Error("empty kernel list accepted")
	}
	bad := kernel.New("s", "p", "bad").Geometry(8, 1024).MustBuild()
	bad.SGPRsPerWave = 512
	if _, err := Place([]*kernel.Kernel{bad}, hw.Reference()); err == nil {
		t.Error("unfittable kernel accepted")
	}
}

func TestSummarise(t *testing.T) {
	cfg := hw.Reference()
	pts := []Point{
		{Intensity: 1, RoofFraction: 0.8},
		{Intensity: 100, RoofFraction: 0.5},
		{Intensity: 200, RoofFraction: 0.9},
	}
	s := Summarise(pts, cfg)
	if s.Kernels != 3 || s.BandwidthSide != 1 || s.ComputeSide != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MedianRoofFraction != 0.8 {
		t.Errorf("median roof fraction = %g, want 0.8", s.MedianRoofFraction)
	}
	if got := Summarise(nil, cfg); got.Kernels != 0 || got.MedianRoofFraction != 0 {
		t.Errorf("empty summary = %+v", got)
	}
}
