package sweep

// Integrity-facing journal and merge coverage: ENOSPC-style write
// failures must self-heal like torn writes, and the merge must name
// exactly which row of which journal broke which promise — a
// conflicting duplicate, a row lost to a salvaged tail, or an
// attested-digest mismatch.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuscale/internal/fault"
)

// TestJournalWriteErrorSelfHeals drives AppendRow through the fault
// injector's ENOSPC model: the write fails with ErrWriteFail after a
// deterministic prefix, the append must report the failure, leave the
// file byte-identical to its pre-append state, and a later clean
// reopen must append from the healed offset.
func TestJournalWriteErrorSelfHeals(t *testing.T) {
	space := tinySpace(t)
	m, rep, err := RunContext(context.Background(), testKernels(), space, journalOpts())
	if err != nil || !rep.Complete() {
		t.Fatalf("clean sweep: %v %s", err, rep.Summary())
	}
	path := filepath.Join(t.TempDir(), "enospc.journal")
	in := fault.Injector{WriteErrRate: 1, Seed: 5}
	fired := 0
	in.OnDecision = func(d fault.Decision) {
		if d.Kind == fault.KindWriteErr {
			fired++
		}
	}
	j, err := OpenJournalWith(path, space, JournalOptions{WrapWriter: in.WrapWriter})
	// With rate 1 even the header write fails; the open itself may
	// error, which is fine — reopen must still heal whatever landed.
	if err == nil {
		before, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		aerr := j.AppendRow(m, 0)
		if aerr == nil {
			t.Fatal("failed write reported success")
		}
		if !errors.Is(aerr, fault.ErrWriteFail) {
			t.Fatalf("append error %v does not wrap ErrWriteFail", aerr)
		}
		after, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(before, after) {
			t.Fatal("failed append left partial bytes behind (self-heal failed)")
		}
		j.Close()
	}
	if fired == 0 {
		t.Fatal("injector fired no write errors at rate 1")
	}
	// The disk "recovers": a faultless reopen salvages and completes.
	j2, err := OpenJournal(path, space)
	if err != nil {
		t.Fatalf("reopen after write errors: %v", err)
	}
	defer j2.Close()
	for r := range m.Kernels {
		if err := j2.AppendRow(m, r); err != nil {
			t.Fatalf("clean append after heal: %v", err)
		}
	}
	if err := j2.VerifyComplete(m.Kernels); err != nil {
		t.Fatalf("journal incomplete after healed appends: %v", err)
	}
}

// TestMergeAttested: the attested merge accepts journals whose rows
// hash to the coordinator's recorded digests, and refuses — naming
// journal, row and kernel — a journal whose bytes disagree with the
// attestation, even though the rows are internally consistent.
func TestMergeAttested(t *testing.T) {
	space := tinySpace(t)
	ks := testKernels()[:2]
	dir := t.TempDir()
	p, m := sweepToJournal(t, dir, "w.journal", ks, space, 9)

	attest := map[string]string{}
	for r, k := range m.Kernels {
		d, err := RowDigest(m, r)
		if err != nil {
			t.Fatal(err)
		}
		attest[k] = d
	}
	merged, err := MergeJournalsAttested(space, attest, p)
	if err != nil {
		t.Fatalf("truthful journal should pass attestation: %v", err)
	}
	if _, err := CanonicalJournalBytes(merged, m.Kernels); err != nil {
		t.Fatal(err)
	}

	// Same journal, but the coordinator attested different bytes for
	// the second kernel — the merge must refuse that row by name.
	attest[m.Kernels[1]] = "0123456789abcdef"
	_, err = MergeJournalsAttested(space, attest, p)
	if err == nil || !strings.Contains(err.Error(), "does not match attested") {
		t.Fatalf("tampered attestation should be refused, got %v", err)
	}
	if !strings.Contains(err.Error(), m.Kernels[1]) || !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("refusal should name the kernel and row: %v", err)
	}
	// Rows without an attestation entry are accepted on the journal's
	// own CRC — partial coverage must not refuse honest rows.
	delete(attest, m.Kernels[1])
	if _, err := MergeJournalsAttested(space, attest, p); err != nil {
		t.Fatalf("unattested rows should merge on their own checksums: %v", err)
	}
}

// TestMergeConflictNamesConfig: a duplicate row whose copies disagree
// is refused with the first disagreeing config position named.
func TestMergeConflictNamesConfig(t *testing.T) {
	space := tinySpace(t)
	ks := testKernels()[:1]
	dir := t.TempDir()
	pa, _ := sweepToJournal(t, dir, "a.journal", ks, space, 9)
	pc, _ := sweepToJournal(t, dir, "c.journal", ks, space, 10)
	_, err := MergeJournals(space, pa, pc)
	if err == nil || !strings.Contains(err.Error(), "merge conflict") {
		t.Fatalf("conflicting duplicate should be refused: %v", err)
	}
	if !strings.Contains(err.Error(), "at config") || !strings.Contains(err.Error(), ks[0].Name) {
		t.Fatalf("conflict should name the kernel and config position: %v", err)
	}
}

// TestMergeSalvagedTailDropsRow: a worker journal whose last record
// was torn by a crash salvages on reopen to a clean-but-shorter file;
// the merge accepts it, and the missing kernel surfaces positionally
// when the merged matrix is asked for canonical bytes.
func TestMergeSalvagedTailDropsRow(t *testing.T) {
	space := tinySpace(t)
	ks := testKernels()[:2]
	dir := t.TempDir()
	p, m := sweepToJournal(t, dir, "w.journal", ks, space, 9)

	// Tear the last record mid-line, then let OpenJournal salvage: the
	// torn row is dropped, the file is clean again.
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(p, space)
	if err != nil {
		t.Fatalf("salvaging reopen: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := MergeJournals(space, p)
	if err != nil {
		t.Fatalf("salvaged journal should merge cleanly: %v", err)
	}
	if len(merged.Kernels) != 1 {
		t.Fatalf("salvage should have dropped exactly the torn row: %d rows", len(merged.Kernels))
	}
	_, err = CanonicalJournalBytes(merged, m.Kernels)
	if err == nil || !strings.Contains(err.Error(), "missing") || !strings.Contains(err.Error(), m.Kernels[1]) {
		t.Fatalf("canonical render should name the dropped kernel, got %v", err)
	}
}

// TestRowDigestSensitivity: RowDigest and RowPlanesDigest agree on
// the same row, and a one-ULP change to a single cell changes the
// digest — the property the fleet's attestation hangs on.
func TestRowDigestSensitivity(t *testing.T) {
	space := tinySpace(t)
	dir := t.TempDir()
	_, m := sweepToJournal(t, dir, "w.journal", testKernels()[:1], space, 9)

	d1, err := RowDigest(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	bounds := make([]int, space.Size())
	for c := range bounds {
		bounds[c] = int(m.Bound[0][c])
	}
	d2, err := RowPlanesDigest(m.Kernels[0], m.Throughput[0], m.TimeNS[0], bounds)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("RowDigest %s and RowPlanesDigest %s disagree on the same row", d1, d2)
	}
	m.Throughput[0][0] *= 1 + 1.0/1024
	d3, err := RowDigest(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("digest unchanged after tampering with a cell")
	}
}
