package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
)

// csvHeader is the long-form measurement schema: one row per
// (kernel, configuration) cell, mirroring the raw data file a hardware
// study would archive. The trailing status column records per-cell
// fate; files written before it existed (7 columns) read back with
// every cell StatusOK.
var csvHeader = []string{"kernel", "cus", "core_mhz", "mem_mhz", "throughput", "time_ns", "bound", "status"}

// WriteCSV persists a matrix as long-form CSV, one row per
// (kernel, configuration) measurement including its status.
func (m *Matrix) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("sweep: writing header: %w", err)
	}
	configs := m.Space.Configs()
	for r := range m.Kernels {
		for c := range configs {
			if err := cw.Write(m.record(r, c, configs)); err != nil {
				return fmt.Errorf("sweep: writing row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile archives the matrix at path atomically: the CSV is
// written to a temp file in the same directory, fsynced, and renamed
// into place, so a crash mid-write can never leave a torn archive —
// readers see either the old file or the complete new one.
func (m *Matrix) WriteCSVFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: archiving %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := m.WriteCSV(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: archiving %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: archiving %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sweep: archiving %s: %w", path, err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a rename within it survives a crash.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// record renders one cell as a CSV record.
func (m *Matrix) record(r, c int, configs []hw.Config) []string {
	cfg := configs[c]
	status := StatusOK
	if m.Status != nil && m.Status[r] != nil {
		status = m.Status[r][c]
	}
	return []string{
		m.Kernels[r],
		strconv.Itoa(cfg.CUs),
		strconv.FormatFloat(cfg.CoreClockMHz, 'g', -1, 64),
		strconv.FormatFloat(cfg.MemClockMHz, 'g', -1, 64),
		strconv.FormatFloat(m.Throughput[r][c], 'g', -1, 64),
		strconv.FormatFloat(m.TimeNS[r][c], 'g', -1, 64),
		m.Bound[r][c].String(),
		status.String(),
	}
}

// ReadCSV loads a matrix written by WriteCSV. The configuration space
// must be supplied (the CSV stores points, not the grid definition)
// and every (kernel, configuration) cell must be present; use
// ReadCSVPartial for journals and interrupted runs.
func ReadCSV(r io.Reader, space hw.Space) (*Matrix, error) {
	return readCSV(r, space, true)
}

// ReadCSVPartial loads a possibly incomplete matrix: kernels may be
// missing cells (e.g. a journal cut short by a crash). Absent cells
// are marked StatusFailed so downstream consumers mask them and a
// Resume recomputes them.
func ReadCSVPartial(r io.Reader, space hw.Space) (*Matrix, error) {
	return readCSV(r, space, false)
}

// csvCell is one decoded CSV record: a cell's position and payload.
type csvCell struct {
	kernel string
	ci     int
	tput   float64
	tns    float64
	bound  gcn.Bound
	status CellStatus
}

// boundNames inverts gcn.Bound.String for the CSV decoder.
func boundNames() map[string]gcn.Bound {
	byName := map[string]gcn.Bound{}
	for b := gcn.BoundCompute; b <= gcn.BoundLaunch; b++ {
		byName[b.String()] = b
	}
	return byName
}

// decodeCSVRecord parses and validates one data record. line is the
// 1-based file line for positional errors; legacy marks 7-column
// pre-status archives. Malformed numbers, off-grid configurations,
// NaN/negative/infinite measurements and unknown bound or status
// names are all rejected here so garbage never propagates into core.
func decodeCSVRecord(rec []string, line int, space hw.Space, bounds map[string]gcn.Bound, legacy bool) (csvCell, error) {
	var cell csvCell
	want := len(csvHeader)
	if legacy {
		want--
	}
	if len(rec) != want {
		return cell, fmt.Errorf("sweep: line %d: %d fields, want %d", line, len(rec), want)
	}
	if rec[0] == "" {
		return cell, fmt.Errorf("sweep: line %d: empty kernel name", line)
	}
	cell.kernel = rec[0]
	cus, err := strconv.Atoi(rec[1])
	if err != nil {
		return cell, fmt.Errorf("sweep: line %d: bad cu count %q: %w", line, rec[1], err)
	}
	core, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return cell, fmt.Errorf("sweep: line %d: bad core clock %q: %w", line, rec[2], err)
	}
	mem, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return cell, fmt.Errorf("sweep: line %d: bad mem clock %q: %w", line, rec[3], err)
	}
	cell.ci = space.Index(hw.Config{CUs: cus, CoreClockMHz: core, MemClockMHz: mem})
	if cell.ci < 0 {
		return cell, fmt.Errorf("sweep: line %d: config %s/%s/%s not in space", line, rec[1], rec[2], rec[3])
	}
	cell.tput, err = strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return cell, fmt.Errorf("sweep: line %d: bad throughput %q: %w", line, rec[4], err)
	}
	cell.tns, err = strconv.ParseFloat(rec[5], 64)
	if err != nil {
		return cell, fmt.Errorf("sweep: line %d: bad time %q: %w", line, rec[5], err)
	}
	// No hardware run produces NaN, infinite or negative measurements;
	// a file that claims one is corrupt, not data (failed cells hold
	// exactly 0).
	if math.IsNaN(cell.tput) || math.IsInf(cell.tput, 0) || cell.tput < 0 {
		return cell, fmt.Errorf("sweep: line %d: throughput %g out of range", line, cell.tput)
	}
	if math.IsNaN(cell.tns) || math.IsInf(cell.tns, 0) || cell.tns < 0 {
		return cell, fmt.Errorf("sweep: line %d: time %g ns out of range", line, cell.tns)
	}
	b, ok := bounds[rec[6]]
	if !ok {
		return cell, fmt.Errorf("sweep: line %d: unknown bound %q", line, rec[6])
	}
	cell.bound = b
	cell.status = StatusOK
	if !legacy {
		if cell.status, err = ParseStatus(rec[7]); err != nil {
			return cell, fmt.Errorf("sweep: line %d: %w", line, err)
		}
	}
	// A cell that claims a validated measurement must carry one.
	if cell.status == StatusOK && (cell.tput <= 0 || cell.tns <= 0) {
		return cell, fmt.Errorf("sweep: line %d: ok cell with non-positive measurement %g/%g", line, cell.tput, cell.tns)
	}
	return cell, nil
}

func readCSV(r io.Reader, space hw.Space, strict bool) (*Matrix, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // field-count errors carry line numbers via decodeCSVRecord
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sweep: reading header: %w", err)
	}
	legacy := len(header) == 7
	if (len(header) != 8 && !legacy) || header[0] != "kernel" {
		return nil, fmt.Errorf("sweep: unexpected header %v", header)
	}
	m := &Matrix{Space: space}
	rows := map[string]int{}
	nCfg := space.Size()
	bounds := boundNames()
	var filled [][]bool
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("sweep: line %d: %w", line, err)
		}
		cell, err := decodeCSVRecord(rec, line, space, bounds, legacy)
		if err != nil {
			return nil, err
		}
		ri, ok := rows[cell.kernel]
		if !ok {
			ri = len(m.Kernels)
			rows[cell.kernel] = ri
			m.Kernels = append(m.Kernels, cell.kernel)
			m.Throughput = append(m.Throughput, make([]float64, nCfg))
			m.TimeNS = append(m.TimeNS, make([]float64, nCfg))
			m.Bound = append(m.Bound, make([]gcn.Bound, nCfg))
			m.Status = append(m.Status, failedRow(nCfg))
			filled = append(filled, make([]bool, nCfg))
		}
		m.Throughput[ri][cell.ci] = cell.tput
		m.TimeNS[ri][cell.ci] = cell.tns
		m.Bound[ri][cell.ci] = cell.bound
		m.Status[ri][cell.ci] = cell.status
		filled[ri][cell.ci] = true
	}
	if strict {
		for i, cells := range filled {
			n := 0
			for _, f := range cells {
				if f {
					n++
				}
			}
			if n != nCfg {
				return nil, fmt.Errorf("sweep: kernel %s has %d/%d cells", m.Kernels[i], n, nCfg)
			}
		}
	}
	if strict && len(m.Kernels) == 0 {
		return nil, fmt.Errorf("sweep: empty CSV")
	}
	return m, nil
}

// failedRow returns a row of StatusFailed cells — the starting state
// of a partially read kernel, flipped to the recorded status as cells
// arrive.
func failedRow(n int) []CellStatus {
	row := make([]CellStatus, n)
	for i := range row {
		row[i] = StatusFailed
	}
	return row
}
