package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
)

// WriteCSV persists a matrix as long-form CSV:
// kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound — one row per
// (kernel, configuration) measurement, mirroring the shape of the raw
// data file a hardware study would archive.
func (m *Matrix) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kernel", "cus", "core_mhz", "mem_mhz", "throughput", "time_ns", "bound"}); err != nil {
		return fmt.Errorf("sweep: writing header: %w", err)
	}
	configs := m.Space.Configs()
	for r, name := range m.Kernels {
		for c, cfg := range configs {
			rec := []string{
				name,
				strconv.Itoa(cfg.CUs),
				strconv.FormatFloat(cfg.CoreClockMHz, 'g', -1, 64),
				strconv.FormatFloat(cfg.MemClockMHz, 'g', -1, 64),
				strconv.FormatFloat(m.Throughput[r][c], 'g', -1, 64),
				strconv.FormatFloat(m.TimeNS[r][c], 'g', -1, 64),
				m.Bound[r][c].String(),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("sweep: writing row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a matrix written by WriteCSV. The configuration space
// must be supplied (the CSV stores points, not the grid definition)
// and every (kernel, configuration) cell must be present.
func ReadCSV(r io.Reader, space hw.Space) (*Matrix, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sweep: reading header: %w", err)
	}
	if len(header) != 7 || header[0] != "kernel" {
		return nil, fmt.Errorf("sweep: unexpected header %v", header)
	}
	m := &Matrix{Space: space}
	rows := map[string]int{}
	nCfg := space.Size()
	boundByName := map[string]gcn.Bound{}
	for b := gcn.BoundCompute; b <= gcn.BoundLaunch; b++ {
		boundByName[b.String()] = b
	}
	filled := []int{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sweep: reading row: %w", err)
		}
		cus, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("sweep: bad cu count %q: %w", rec[1], err)
		}
		core, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad core clock %q: %w", rec[2], err)
		}
		mem, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad mem clock %q: %w", rec[3], err)
		}
		ci := space.Index(hw.Config{CUs: cus, CoreClockMHz: core, MemClockMHz: mem})
		if ci < 0 {
			return nil, fmt.Errorf("sweep: row config %s/%s/%s not in space", rec[1], rec[2], rec[3])
		}
		tput, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad throughput %q: %w", rec[4], err)
		}
		tns, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad time %q: %w", rec[5], err)
		}
		bound, ok := boundByName[rec[6]]
		if !ok {
			return nil, fmt.Errorf("sweep: unknown bound %q", rec[6])
		}
		ri, ok := rows[rec[0]]
		if !ok {
			ri = len(m.Kernels)
			rows[rec[0]] = ri
			m.Kernels = append(m.Kernels, rec[0])
			m.Throughput = append(m.Throughput, make([]float64, nCfg))
			m.TimeNS = append(m.TimeNS, make([]float64, nCfg))
			m.Bound = append(m.Bound, make([]gcn.Bound, nCfg))
			filled = append(filled, 0)
		}
		m.Throughput[ri][ci] = tput
		m.TimeNS[ri][ci] = tns
		m.Bound[ri][ci] = bound
		filled[ri]++
	}
	for i, n := range filled {
		if n != nCfg {
			return nil, fmt.Errorf("sweep: kernel %s has %d/%d cells", m.Kernels[i], n, nCfg)
		}
	}
	if len(m.Kernels) == 0 {
		return nil, fmt.Errorf("sweep: empty CSV")
	}
	return m, nil
}
