package sweep

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
)

// csvHeader is the long-form measurement schema: one row per
// (kernel, configuration) cell, mirroring the raw data file a hardware
// study would archive. The trailing status column records per-cell
// fate; files written before it existed (7 columns) read back with
// every cell StatusOK.
var csvHeader = []string{"kernel", "cus", "core_mhz", "mem_mhz", "throughput", "time_ns", "bound", "status"}

// WriteCSV persists a matrix as long-form CSV, one row per
// (kernel, configuration) measurement including its status.
func (m *Matrix) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("sweep: writing header: %w", err)
	}
	configs := m.Space.Configs()
	for r := range m.Kernels {
		for c := range configs {
			if err := cw.Write(m.record(r, c, configs)); err != nil {
				return fmt.Errorf("sweep: writing row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// record renders one cell as a CSV record.
func (m *Matrix) record(r, c int, configs []hw.Config) []string {
	cfg := configs[c]
	status := StatusOK
	if m.Status != nil && m.Status[r] != nil {
		status = m.Status[r][c]
	}
	return []string{
		m.Kernels[r],
		strconv.Itoa(cfg.CUs),
		strconv.FormatFloat(cfg.CoreClockMHz, 'g', -1, 64),
		strconv.FormatFloat(cfg.MemClockMHz, 'g', -1, 64),
		strconv.FormatFloat(m.Throughput[r][c], 'g', -1, 64),
		strconv.FormatFloat(m.TimeNS[r][c], 'g', -1, 64),
		m.Bound[r][c].String(),
		status.String(),
	}
}

// ReadCSV loads a matrix written by WriteCSV. The configuration space
// must be supplied (the CSV stores points, not the grid definition)
// and every (kernel, configuration) cell must be present; use
// ReadCSVPartial for journals and interrupted runs.
func ReadCSV(r io.Reader, space hw.Space) (*Matrix, error) {
	return readCSV(r, space, true)
}

// ReadCSVPartial loads a possibly incomplete matrix: kernels may be
// missing cells (e.g. a journal cut short by a crash). Absent cells
// are marked StatusFailed so downstream consumers mask them and a
// Resume recomputes them.
func ReadCSVPartial(r io.Reader, space hw.Space) (*Matrix, error) {
	return readCSV(r, space, false)
}

func readCSV(r io.Reader, space hw.Space, strict bool) (*Matrix, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sweep: reading header: %w", err)
	}
	legacy := len(header) == 7
	if (len(header) != 8 && !legacy) || header[0] != "kernel" {
		return nil, fmt.Errorf("sweep: unexpected header %v", header)
	}
	m := &Matrix{Space: space}
	rows := map[string]int{}
	nCfg := space.Size()
	boundByName := map[string]gcn.Bound{}
	for b := gcn.BoundCompute; b <= gcn.BoundLaunch; b++ {
		boundByName[b.String()] = b
	}
	var filled [][]bool
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sweep: reading row: %w", err)
		}
		cus, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("sweep: bad cu count %q: %w", rec[1], err)
		}
		core, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad core clock %q: %w", rec[2], err)
		}
		mem, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad mem clock %q: %w", rec[3], err)
		}
		ci := space.Index(hw.Config{CUs: cus, CoreClockMHz: core, MemClockMHz: mem})
		if ci < 0 {
			return nil, fmt.Errorf("sweep: row config %s/%s/%s not in space", rec[1], rec[2], rec[3])
		}
		tput, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad throughput %q: %w", rec[4], err)
		}
		tns, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad time %q: %w", rec[5], err)
		}
		bound, ok := boundByName[rec[6]]
		if !ok {
			return nil, fmt.Errorf("sweep: unknown bound %q", rec[6])
		}
		status := StatusOK
		if !legacy {
			if status, err = ParseStatus(rec[7]); err != nil {
				return nil, err
			}
		}
		ri, ok := rows[rec[0]]
		if !ok {
			ri = len(m.Kernels)
			rows[rec[0]] = ri
			m.Kernels = append(m.Kernels, rec[0])
			m.Throughput = append(m.Throughput, make([]float64, nCfg))
			m.TimeNS = append(m.TimeNS, make([]float64, nCfg))
			m.Bound = append(m.Bound, make([]gcn.Bound, nCfg))
			m.Status = append(m.Status, failedRow(nCfg))
			filled = append(filled, make([]bool, nCfg))
		}
		m.Throughput[ri][ci] = tput
		m.TimeNS[ri][ci] = tns
		m.Bound[ri][ci] = bound
		m.Status[ri][ci] = status
		filled[ri][ci] = true
	}
	if strict {
		for i, cells := range filled {
			n := 0
			for _, f := range cells {
				if f {
					n++
				}
			}
			if n != nCfg {
				return nil, fmt.Errorf("sweep: kernel %s has %d/%d cells", m.Kernels[i], n, nCfg)
			}
		}
	}
	if strict && len(m.Kernels) == 0 {
		return nil, fmt.Errorf("sweep: empty CSV")
	}
	return m, nil
}

// failedRow returns a row of StatusFailed cells — the starting state
// of a partially read kernel, flipped to the recorded status as cells
// arrive.
func failedRow(n int) []CellStatus {
	row := make([]CellStatus, n)
	for i := range row {
		row[i] = StatusFailed
	}
	return row
}

// Journal is an append-only CSV checkpoint for a sweep: completed
// kernel rows are flushed to disk as they finish, and reopening the
// file recovers them so a Resume only recomputes what is missing. The
// journal file is itself a valid WriteCSV-format archive once the
// sweep completes.
type Journal struct {
	space hw.Space
	prior *Matrix

	mu sync.Mutex
	f  *os.File
	cw *csv.Writer
}

// OpenJournal opens or creates a sweep journal at path. An existing
// file is parsed tolerantly (missing cells are fine — a crash may have
// cut the sweep short) and becomes the journal's prior matrix; a new
// file gets the CSV header written immediately. A file that is not a
// sweep CSV at all is rejected rather than overwritten.
func OpenJournal(path string, space hw.Space) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening journal: %w", err)
	}
	j := &Journal{space: space, f: f, cw: csv.NewWriter(f)}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: stat journal: %w", err)
	}
	if info.Size() == 0 {
		if err := j.cw.Write(csvHeader); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: writing journal header: %w", err)
		}
		j.cw.Flush()
		if err := j.cw.Error(); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: writing journal header: %w", err)
		}
		return j, nil
	}
	prior, err := ReadCSVPartial(f, space)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: journal %s is not a readable sweep CSV (delete it to start over): %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: seeking journal: %w", err)
	}
	if len(prior.Kernels) > 0 {
		j.prior = prior
	}
	return j, nil
}

// Prior returns the matrix recovered from an existing journal file, or
// nil for a fresh journal. Pass it to Resume.
func (j *Journal) Prior() *Matrix { return j.prior }

// AppendRow checkpoints row r of m if — and only if — every cell is
// StatusOK: rows with failed or canceled cells are left out so the
// next Resume recomputes them. Safe for concurrent use; matches the
// Options.OnRow signature via a closure.
func (j *Journal) AppendRow(m *Matrix, r int) error {
	if !m.RowComplete(r) {
		return nil
	}
	configs := m.Space.Configs()
	j.mu.Lock()
	defer j.mu.Unlock()
	for c := range configs {
		if err := j.cw.Write(m.record(r, c, configs)); err != nil {
			return fmt.Errorf("sweep: journaling %s: %w", m.Kernels[r], err)
		}
	}
	j.cw.Flush()
	if err := j.cw.Error(); err != nil {
		return fmt.Errorf("sweep: journaling %s: %w", m.Kernels[r], err)
	}
	// A journal's whole point is surviving a crash mid-sweep.
	return j.f.Sync()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cw.Flush()
	werr := j.cw.Error()
	cerr := j.f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ErrJournalIncomplete is returned by VerifyComplete when the journal
// is missing kernels or cells.
var ErrJournalIncomplete = errors.New("sweep: journal incomplete")

// VerifyComplete checks that the journal now covers every named kernel
// with a fully OK row — the post-Resume sanity check.
func (j *Journal) VerifyComplete(kernels []string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	defer j.f.Seek(0, io.SeekEnd)
	m, err := ReadCSVPartial(j.f, j.space)
	if err != nil {
		return err
	}
	for _, k := range kernels {
		r := m.Row(k)
		if r < 0 || !m.RowComplete(r) {
			return fmt.Errorf("%w: kernel %s", ErrJournalIncomplete, k)
		}
	}
	return nil
}
