package sweep

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// The batched config-axis path must be invisible in the data: a sweep
// whose rows evaluate through one EvalBatch call has to produce
// matrices and accounting byte-identical to the per-cell prepared
// path, with or without fault injection, and its instruments have to
// say how much work actually batched.

func TestBatchPathMatchesDisabledBatchAllEngines(t *testing.T) {
	space := testSpace(t)
	for _, e := range []Engine{Round, Wave, Pipeline, Detailed} {
		ks := testKernels()
		if e == Wave || e == Pipeline || e == Detailed {
			ks = lightKernels()
		}
		if e == Pipeline {
			ks = ks[:2]
		}
		t.Run(e.String(), func(t *testing.T) {
			batch, brep, err := RunContext(context.Background(), ks, space, Options{Engine: e})
			if err != nil {
				t.Fatal(err)
			}
			scalar, srep, err := RunContext(context.Background(), ks, space,
				Options{Engine: e, DisableBatch: true})
			if err != nil {
				t.Fatal(err)
			}
			if a, b := csvBytes(t, batch), csvBytes(t, scalar); !bytes.Equal(a, b) {
				t.Fatalf("engine %s: batched matrix differs from per-cell prepared matrix", e)
			}
			if brep.Prepared.BatchedRows != len(ks) {
				t.Fatalf("batched rows = %d, want %d (%+v)", brep.Prepared.BatchedRows, len(ks), brep.Prepared)
			}
			if brep.Prepared.BatchFallbackCells != 0 {
				t.Fatalf("fault-free batch reported %d fallback cells", brep.Prepared.BatchFallbackCells)
			}
			if srep.Prepared.BatchedRows != 0 || srep.Prepared.BatchFallbackCells != 0 {
				t.Fatalf("DisableBatch still batched: %+v", srep.Prepared)
			}
			if brep.OK != srep.OK || brep.Attempts != srep.Attempts {
				t.Fatalf("accounting diverged: batch %+v vs scalar %+v", brep, srep)
			}
		})
	}
}

// TestBatchPathFaultEquivalence storms the batch path with every
// engine-side fault kind — including injected panics mid-batch — and
// requires byte-identical matrices and identical retry accounting
// against both the per-cell prepared path and the legacy per-cell
// path. This is what proves the fault overlay advances the same
// per-(cell, attempt) decision stream the per-cell roll does.
func TestBatchPathFaultEquivalence(t *testing.T) {
	space := testSpace(t)
	model := fault.Injector{ErrorRate: 0.15, CorruptRate: 0.1, PanicRate: 0.04, LatencyRate: 0.02,
		Latency: 1, Seed: 11}
	base := Options{Retries: 2}

	batchOpts := base
	batchOpts.Row = model.WrapRow(Round.Row())
	batch, batchRep, err := RunContext(context.Background(), testKernels(), space, batchOpts)
	if err != nil {
		t.Fatal(err)
	}

	scalarOpts := base
	scalarOpts.Row = model.WrapRow(Round.Row())
	scalarOpts.DisableBatch = true
	scalar, scalarRep, err := RunContext(context.Background(), testKernels(), space, scalarOpts)
	if err != nil {
		t.Fatal(err)
	}

	perOpts := base
	perOpts.Sim = model.Wrap(Round.Func())
	perCell, perRep, err := RunContext(context.Background(), testKernels(), space, perOpts)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := csvBytes(t, batch), csvBytes(t, scalar); !bytes.Equal(a, b) {
		t.Fatal("fault-injected batch matrix differs from per-cell prepared matrix")
	}
	if a, b := csvBytes(t, batch), csvBytes(t, perCell); !bytes.Equal(a, b) {
		t.Fatal("fault-injected batch matrix differs from legacy per-cell matrix")
	}
	for _, pair := range []struct {
		name string
		rep  *RunReport
	}{{"scalar", scalarRep}, {"percell", perRep}} {
		if batchRep.OK != pair.rep.OK || batchRep.Failed != pair.rep.Failed ||
			batchRep.Attempts != pair.rep.Attempts || batchRep.Retries != pair.rep.Retries {
			t.Fatalf("fault accounting diverged from %s: batch %+v vs %+v", pair.name, batchRep, pair.rep)
		}
	}
	if batchRep.Failed == 0 || batchRep.Retries == 0 {
		t.Fatalf("fault storm too quiet to prove anything: %+v", batchRep)
	}
	if batchRep.Prepared.BatchedRows != len(testKernels()) {
		t.Fatalf("faulted rows did not batch: %+v", batchRep.Prepared)
	}
	if batchRep.Prepared.BatchFallbackCells == 0 {
		t.Fatalf("fault storm produced no per-cell fallbacks: %+v", batchRep.Prepared)
	}
}

// TestBatchInjectedPanicIsFinal pins the panic mapping: a panic
// isolated inside a batch (surfaced as gcn.ErrBatchPanic) must settle
// its cell exactly like a per-cell panic — StatusFailed, one attempt,
// an error matching ErrEnginePanic — without disturbing neighbors.
func TestBatchInjectedPanicIsFinal(t *testing.T) {
	space := testSpace(t)
	model := fault.Injector{PanicRate: 1, Seed: 1}
	opts := Options{Retries: 3, Row: model.WrapRow(Round.Row())}
	ks := testKernels()[:1]
	m, rep, err := RunContext(context.Background(), ks, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != rep.Cells {
		t.Fatalf("PanicRate 1: %d/%d cells failed", rep.Failed, rep.Cells)
	}
	// Panics are final: no retry budget may be spent on them.
	if rep.Attempts != rep.Cells || rep.Retries != 0 {
		t.Fatalf("panicked cells consumed retries: %+v", rep)
	}
	for _, f := range rep.Failures {
		if !errors.Is(f.Err, ErrEnginePanic) {
			t.Fatalf("batched panic surfaced as %v, want ErrEnginePanic", f.Err)
		}
	}
	for c := range m.Status[0] {
		if m.Status[0][c] != StatusFailed {
			t.Fatalf("cell %d status %v, want failed", c, m.Status[0][c])
		}
	}
}

// rowLevelBatchFail wraps a row engine so every EvalBatch fails at the
// row level, forcing the sweep's whole-row per-cell fallback.
type rowLevelBatchFail struct{ re gcn.RowEngine }

type rowLevelBatchFailRow struct{ gcn.PreparedRow }

var errRowBatch = errors.New("batchpath_test: row-level batch failure")

func (e rowLevelBatchFail) PrepareRow(k *kernel.Kernel) (gcn.PreparedRow, error) {
	pr, err := e.re.PrepareRow(k)
	if err != nil {
		return nil, err
	}
	return rowLevelBatchFailRow{pr}, nil
}

func (rowLevelBatchFailRow) EvalBatch([]hw.Config, []gcn.Result, []error) error {
	return errRowBatch
}

func TestRowLevelBatchFailureFallsBackPerCell(t *testing.T) {
	space := testSpace(t)
	ks := testKernels()
	broken, brep, err := RunContext(context.Background(), ks, space,
		Options{Row: rowLevelBatchFail{Round.Row()}})
	if err != nil {
		t.Fatal(err)
	}
	scalar, _, err := RunContext(context.Background(), ks, space,
		Options{Engine: Round, DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := csvBytes(t, broken), csvBytes(t, scalar); !bytes.Equal(a, b) {
		t.Fatal("row-level batch failure did not fall back to the per-cell result")
	}
	if brep.Prepared.BatchedRows != 0 {
		t.Fatalf("failed batches counted as batched rows: %+v", brep.Prepared)
	}
	if want := brep.Cells; brep.Prepared.BatchFallbackCells != want {
		t.Fatalf("fallback cells = %d, want %d", brep.Prepared.BatchFallbackCells, want)
	}
}

func TestTelemetryPublishesBatchCounters(t *testing.T) {
	space := testSpace(t)
	ks := testKernels()
	tel := NewTelemetry(nil, nil)
	_, rep, err := RunContext(context.Background(), ks, space,
		Options{Engine: Round, Workers: 1, Observer: tel})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Prepared.BatchedRows != len(ks) {
		t.Fatalf("batched rows = %d, want %d", rep.Prepared.BatchedRows, len(ks))
	}
	got := map[string]float64{}
	for _, s := range tel.Registry().Snapshot() {
		got[s.Name] = s.Value
	}
	if v := got[MetricBatchedRows]; v != float64(len(ks)) {
		t.Fatalf("%s = %g, want %d", MetricBatchedRows, v, len(ks))
	}
	if v, present := got[MetricBatchFallbackCells]; !present || v != 0 {
		t.Fatalf("%s = %g (present %v), want 0 and registered", MetricBatchFallbackCells, v, present)
	}
}
