package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

func testSpace(t *testing.T) hw.Space {
	t.Helper()
	s, err := hw.NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testKernels() []*kernel.Kernel {
	return []*kernel.Kernel{
		kernel.New("s", "p", "a").Geometry(512, 256).MustBuild(),
		kernel.New("s", "p", "b").Geometry(512, 256).Compute(30000, 100).MustBuild(),
		kernel.New("s", "p", "c").Geometry(64, 256).MustBuild(),
	}
}

// checkAccounting asserts the report partitions every cell exactly.
func checkAccounting(t *testing.T, rep *RunReport) {
	t.Helper()
	got := rep.OK + rep.Failed + rep.Canceled + rep.Stalled + rep.Quarantined + rep.Skipped
	if got != rep.Cells {
		t.Fatalf("report does not partition the matrix: ok %d + failed %d + canceled %d + stalled %d + quarantined %d + skipped %d = %d, want %d",
			rep.OK, rep.Failed, rep.Canceled, rep.Stalled, rep.Quarantined, rep.Skipped, got, rep.Cells)
	}
	// Rows that fail preparation settle wholesale with one record for
	// the whole row, so records can undercount cells — but never
	// overcount, and never drop to zero while failures exist.
	if len(rep.Failures) > rep.Failed+rep.Stalled {
		t.Fatalf("%d failure records for %d failed + %d stalled cells",
			len(rep.Failures), rep.Failed, rep.Stalled)
	}
	if rep.Failed+rep.Stalled > 0 && len(rep.Failures) == 0 {
		t.Fatalf("no failure records for %d failed + %d stalled cells",
			rep.Failed, rep.Stalled)
	}
}

func TestRunShape(t *testing.T) {
	space := testSpace(t)
	m, err := Run(testKernels(), space, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Kernels) != 3 {
		t.Fatalf("rows = %d, want 3", len(m.Kernels))
	}
	for r := range m.Kernels {
		if len(m.Throughput[r]) != space.Size() {
			t.Fatalf("row %d has %d cells, want %d", r, len(m.Throughput[r]), space.Size())
		}
		if !m.RowComplete(r) {
			t.Fatalf("fault-free sweep left row %d incomplete", r)
		}
		for c, v := range m.Throughput[r] {
			if v <= 0 {
				t.Fatalf("cell (%d,%d) = %g", r, c, v)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	space := testSpace(t)
	m1, err := Run(testKernels(), space, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m8, err := Run(testKernels(), space, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Throughput, m8.Throughput) {
		t.Fatal("results depend on worker count")
	}
}

func TestRunNoiseDeterministicAndBounded(t *testing.T) {
	space := testSpace(t)
	a, err := Run(testKernels(), space, Options{NoiseStdDev: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testKernels(), space, Options{NoiseStdDev: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Throughput, b.Throughput) {
		t.Fatal("noisy sweep not reproducible for fixed seed")
	}
	clean, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for r := range clean.Throughput {
		for c := range clean.Throughput[r] {
			n, cl := a.Throughput[r][c], clean.Throughput[r][c]
			if n != cl {
				diff = true
			}
			if n <= 0 {
				t.Fatalf("noise produced non-positive throughput %g", n)
			}
		}
	}
	if !diff {
		t.Fatal("noise had no effect")
	}
}

// TestRunNoiseLognormalUnbiasedInLog verifies the lognormal noise
// model: log-factors must average near zero (median factor 1) instead
// of the positive bias the old clamped 1+N(0,sigma) factor had.
func TestRunNoiseLognormalUnbiasedInLog(t *testing.T) {
	space := testSpace(t)
	const sigma = 0.5 // large sigma to make any clamp bias visible
	clean, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sumLog float64
	var n int
	for seed := int64(0); seed < 40; seed++ {
		noisy, err := Run(testKernels(), space, Options{NoiseStdDev: sigma, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for r := range clean.Throughput {
			for c := range clean.Throughput[r] {
				f := noisy.Throughput[r][c] / clean.Throughput[r][c]
				if f <= 0 {
					t.Fatalf("noise factor %g not positive", f)
				}
				sumLog += math.Log(f)
				n++
			}
		}
	}
	mean := sumLog / float64(n)
	// The old clamped-normal model has E[log f] ~= -sigma^2/2 offset
	// plus clamp distortion; the lognormal model is 0 by construction.
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean log noise factor %g over %d samples; want ~0 (unbiased lognormal)", mean, n)
	}
}

func TestRunErrors(t *testing.T) {
	space := testSpace(t)
	if _, err := Run(nil, space, Options{}); err == nil {
		t.Error("empty kernel list accepted")
	}
	if _, err := Run(testKernels(), hw.Space{}, Options{}); err == nil {
		t.Error("empty space accepted")
	}
	// A kernel that cannot fit on a CU must fail the strict Run path.
	bad := kernel.New("s", "p", "bad").Geometry(16, 1024).MustBuild()
	bad.SGPRsPerWave = 512
	if _, err := Run([]*kernel.Kernel{bad}, space, Options{Workers: 4}); err == nil {
		t.Error("unfittable kernel accepted")
	}
	// The graceful path reports the same kernel as failed cells
	// instead of erroring.
	m, rep, err := RunContext(context.Background(), []*kernel.Kernel{bad}, space, Options{Workers: 4})
	if err != nil {
		t.Fatalf("RunContext must degrade gracefully, got %v", err)
	}
	checkAccounting(t, rep)
	if rep.Failed != space.Size() {
		t.Fatalf("failed cells = %d, want %d", rep.Failed, space.Size())
	}
	for c := range m.Status[0] {
		if m.Status[0][c] != StatusFailed {
			t.Fatalf("cell %d status = %v, want failed", c, m.Status[0][c])
		}
		if m.Throughput[0][c] != 0 {
			t.Fatalf("failed cell %d holds throughput %g, want 0", c, m.Throughput[0][c])
		}
	}
}

func TestRunContextRetriesRecoverFaults(t *testing.T) {
	space := testSpace(t)
	clean, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := fault.Injector{ErrorRate: 0.2, Seed: 5}
	m, rep, err := RunContext(context.Background(), testKernels(), space,
		Options{Sim: in.Wrap(gcn.Simulate), Retries: 6})
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.Failed != 0 {
		t.Fatalf("%d cells still failed after retries: %v", rep.Failed, rep.Failures[0])
	}
	if rep.Retries == 0 {
		t.Fatal("20% fault rate consumed no retries")
	}
	if !reflect.DeepEqual(m.Throughput, clean.Throughput) {
		t.Fatal("recovered sweep differs from fault-free sweep")
	}
}

func TestRunContextPartialMatrixDeterministic(t *testing.T) {
	space := testSpace(t)
	sweepOnce := func(workers int) (*Matrix, *RunReport) {
		in := fault.Injector{ErrorRate: 0.3, Seed: 21}
		m, rep, err := RunContext(context.Background(), testKernels(), space,
			Options{Workers: workers, Sim: in.Wrap(gcn.Simulate)})
		if err != nil {
			t.Fatal(err)
		}
		return m, rep
	}
	m1, rep1 := sweepOnce(1)
	m8, rep8 := sweepOnce(8)
	checkAccounting(t, rep1)
	if rep1.Failed == 0 {
		t.Fatal("30% fault rate with no retries failed nothing")
	}
	if rep1.Failed != rep8.Failed {
		t.Fatalf("failure count depends on worker count: %d vs %d", rep1.Failed, rep8.Failed)
	}
	if !reflect.DeepEqual(m1.Status, m8.Status) {
		t.Fatal("status plane depends on worker count")
	}
	if !reflect.DeepEqual(m1.Throughput, m8.Throughput) {
		t.Fatal("partial throughput depends on worker count")
	}
}

func TestRunContextCorruptResultsRejectedAndRetried(t *testing.T) {
	space := testSpace(t)
	// A corrupting engine with no retries: every corrupt cell must be
	// caught by validation, never stored.
	in := fault.Injector{CorruptRate: 0.4, Seed: 13}
	m, rep, err := RunContext(context.Background(), testKernels(), space,
		Options{Sim: in.Wrap(gcn.Simulate)})
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.Failed == 0 {
		t.Fatal("corruption slipped past validation")
	}
	for _, f := range rep.Failures {
		if !errors.Is(f.Err, ErrCorruptResult) {
			t.Fatalf("failure not marked corrupt: %v", f.Err)
		}
	}
	for r := range m.Throughput {
		for c, v := range m.Throughput[r] {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("corrupt value %g stored at (%d,%d)", v, r, c)
			}
		}
	}
	// With retries the same fault stream recovers completely.
	clean, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in2 := fault.Injector{CorruptRate: 0.4, Seed: 13}
	m2, rep2, err := RunContext(context.Background(), testKernels(), space,
		Options{Sim: in2.Wrap(gcn.Simulate), Retries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Failed != 0 {
		t.Fatalf("retries left %d corrupt cells", rep2.Failed)
	}
	if !reflect.DeepEqual(m2.Throughput, clean.Throughput) {
		t.Fatal("recovered corrupt sweep differs from clean sweep")
	}
}

func TestRunContextSimTimeout(t *testing.T) {
	space := testSpace(t)
	slow := func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
		time.Sleep(30 * time.Millisecond)
		return gcn.Simulate(k, cfg)
	}
	ks := testKernels()[:1]
	m, rep, err := RunContext(context.Background(), ks, space,
		Options{Sim: slow, SimTimeout: time.Millisecond, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.Failed != space.Size() {
		t.Fatalf("failed = %d, want every cell (%d)", rep.Failed, space.Size())
	}
	for _, f := range rep.Failures {
		if !errors.Is(f.Err, ErrSimTimeout) {
			t.Fatalf("failure not a timeout: %v", f.Err)
		}
	}
	_ = m
}

func TestRunContextCancellation(t *testing.T) {
	space := testSpace(t)
	started := make(chan struct{}, 1)
	slow := func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		time.Sleep(2 * time.Millisecond)
		return gcn.Simulate(k, cfg)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-started
		cancel()
	}()
	start := time.Now()
	m, rep, err := RunContext(ctx, testKernels(), space,
		Options{Sim: slow, Workers: 2, Retries: 3, Backoff: 10 * time.Millisecond})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; sweep did not return promptly", elapsed)
	}
	checkAccounting(t, rep)
	if rep.Canceled == 0 {
		t.Fatal("cancelled sweep reported no canceled cells")
	}
	for r := range m.Kernels {
		if m.Status[r] == nil {
			t.Fatalf("row %d has no status plane after cancellation", r)
		}
	}
	// Workers must drain: allow the pool a moment, then check for
	// leaks (the race detector also patrols this test).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

func TestRunBackoffRespectsCancel(t *testing.T) {
	space := testSpace(t)
	failing := func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
		return gcn.Result{}, fmt.Errorf("always down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	// An hour of backoff per retry: only cancellation can end this.
	_, rep, err := RunContext(ctx, testKernels(), space,
		Options{Sim: failing, Retries: 5, Backoff: time.Hour, Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("backoff sleep ignored cancellation")
	}
	checkAccounting(t, rep)
}

func TestResumeRecomputesOnlyMissingRows(t *testing.T) {
	space := testSpace(t)
	ks := testKernels()
	// First pass: kernel b is permanently down.
	bDown := func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
		if k.Name == "p.b" {
			return gcn.Result{}, fmt.Errorf("b is down")
		}
		return gcn.Simulate(k, cfg)
	}
	first, rep1, err := RunContext(context.Background(), ks, space, Options{Sim: bDown})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Failed != space.Size() {
		t.Fatalf("first pass failed %d cells, want %d", rep1.Failed, space.Size())
	}

	// Resume with a counting clean engine: only b's row may run.
	var calls atomic.Int64
	counting := func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
		calls.Add(1)
		return gcn.Simulate(k, cfg)
	}
	m, rep2, err := Resume(context.Background(), ks, space, Options{Sim: counting}, first)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep2)
	if got, want := calls.Load(), int64(space.Size()); got != want {
		t.Fatalf("resume ran %d simulations, want %d (one recomputed row)", got, want)
	}
	if rep2.Skipped != 2*space.Size() {
		t.Fatalf("skipped = %d, want %d", rep2.Skipped, 2*space.Size())
	}
	clean, err := Run(ks, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Throughput, clean.Throughput) {
		t.Fatal("resumed matrix differs from a clean run")
	}
	for r := range m.Kernels {
		if !m.RowComplete(r) {
			t.Fatalf("row %d incomplete after resume", r)
		}
	}
}

func TestResumeSurvivesCorpusChanges(t *testing.T) {
	space := testSpace(t)
	ks := testKernels()
	prior, _, err := RunContext(context.Background(), ks[:2], space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The corpus grew by one kernel and reordered; prior rows must
	// still be found by name.
	grown := []*kernel.Kernel{ks[2], ks[0], ks[1]}
	m, rep, err := Resume(context.Background(), grown, space, Options{}, prior)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.Skipped != 2*space.Size() {
		t.Fatalf("skipped = %d, want two prior rows (%d)", rep.Skipped, 2*space.Size())
	}
	if m.Kernels[0] != "p.c" || m.Row("p.a") != 1 {
		t.Fatalf("resumed matrix order wrong: %v", m.Kernels)
	}
}

func TestOnRowFiresPerRow(t *testing.T) {
	space := testSpace(t)
	var mu sync.Mutex
	seen := map[string]bool{}
	opts := Options{
		Workers: 4,
		OnRow: func(m *Matrix, r int) {
			mu.Lock()
			defer mu.Unlock()
			seen[m.Kernels[r]] = m.RowComplete(r)
		},
	}
	if _, _, err := RunContext(context.Background(), testKernels(), space, opts); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("OnRow fired for %d rows, want 3", len(seen))
	}
	for k, complete := range seen {
		if !complete {
			t.Fatalf("row %s reported incomplete in OnRow", k)
		}
	}
}

func TestRowLookup(t *testing.T) {
	space := testSpace(t)
	m, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Row("p.b"); got != 1 {
		t.Errorf("Row(p.b) = %d, want 1", got)
	}
	if got := m.Row("nope"); got != -1 {
		t.Errorf("Row(nope) = %d, want -1", got)
	}
}

// TestRowLookupConcurrent exercises the lazily built index under the
// race detector: the map must build exactly once and serve all
// readers.
func TestRowLookupConcurrent(t *testing.T) {
	space := testSpace(t)
	m, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if m.Row("p.c") != 2 || m.Row("p.a") != 0 || m.Row("absent") != -1 {
					panic("bad lookup")
				}
			}
		}()
	}
	wg.Wait()
}

func TestReportSummary(t *testing.T) {
	rep := &RunReport{Cells: 12, OK: 7, Failed: 2, Canceled: 1, Stalled: 1, Quarantined: 1,
		Attempts: 12, Retries: 2, BreakerTrips: 1}
	s := rep.Summary()
	for _, want := range []string{"12 cells", "7 ok", "2 failed", "1 canceled",
		"1 stalled", "1 quarantined", "12 attempts", "2 retries", "1 breaker trip"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	if rep.Complete() {
		t.Error("report with failures claims completeness")
	}
	for _, bad := range []*RunReport{
		{Cells: 4, OK: 3, Stalled: 1},
		{Cells: 4, OK: 3, Quarantined: 1},
	} {
		if bad.Complete() {
			t.Errorf("report %+v claims completeness", bad)
		}
	}
	if !(&RunReport{Cells: 4, OK: 4}).Complete() {
		t.Error("clean report not complete")
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []CellStatus{StatusOK, StatusFailed, StatusCanceled, StatusStalled, StatusQuarantined} {
		got, err := ParseStatus(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStatus(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStatus("teapot"); err == nil {
		t.Error("bad status accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	space := testSpace(t)
	m, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, space)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Kernels, m.Kernels) {
		t.Fatalf("kernels differ: %v vs %v", got.Kernels, m.Kernels)
	}
	if !reflect.DeepEqual(got.Throughput, m.Throughput) {
		t.Fatal("throughput rows differ after round trip")
	}
	if !reflect.DeepEqual(got.Bound, m.Bound) {
		t.Fatal("bound rows differ after round trip")
	}
}

func TestRuns(t *testing.T) {
	if got := Runs(267, 891); got != 237897 {
		t.Errorf("Runs(267,891) = %d, want 237897 (the paper's measurement count)", got)
	}
}
