package sweep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

func testSpace(t *testing.T) hw.Space {
	t.Helper()
	s, err := hw.NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testKernels() []*kernel.Kernel {
	return []*kernel.Kernel{
		kernel.New("s", "p", "a").Geometry(512, 256).MustBuild(),
		kernel.New("s", "p", "b").Geometry(512, 256).Compute(30000, 100).MustBuild(),
		kernel.New("s", "p", "c").Geometry(64, 256).MustBuild(),
	}
}

func TestRunShape(t *testing.T) {
	space := testSpace(t)
	m, err := Run(testKernels(), space, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Kernels) != 3 {
		t.Fatalf("rows = %d, want 3", len(m.Kernels))
	}
	for r := range m.Kernels {
		if len(m.Throughput[r]) != space.Size() {
			t.Fatalf("row %d has %d cells, want %d", r, len(m.Throughput[r]), space.Size())
		}
		for c, v := range m.Throughput[r] {
			if v <= 0 {
				t.Fatalf("cell (%d,%d) = %g", r, c, v)
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	space := testSpace(t)
	m1, err := Run(testKernels(), space, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m8, err := Run(testKernels(), space, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Throughput, m8.Throughput) {
		t.Fatal("results depend on worker count")
	}
}

func TestRunNoiseDeterministicAndBounded(t *testing.T) {
	space := testSpace(t)
	a, err := Run(testKernels(), space, Options{NoiseStdDev: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testKernels(), space, Options{NoiseStdDev: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Throughput, b.Throughput) {
		t.Fatal("noisy sweep not reproducible for fixed seed")
	}
	clean, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for r := range clean.Throughput {
		for c := range clean.Throughput[r] {
			n, cl := a.Throughput[r][c], clean.Throughput[r][c]
			if n != cl {
				diff = true
			}
			if n <= 0 {
				t.Fatalf("noise produced non-positive throughput %g", n)
			}
		}
	}
	if !diff {
		t.Fatal("noise had no effect")
	}
}

func TestRunErrors(t *testing.T) {
	space := testSpace(t)
	if _, err := Run(nil, space, Options{}); err == nil {
		t.Error("empty kernel list accepted")
	}
	if _, err := Run(testKernels(), hw.Space{}, Options{}); err == nil {
		t.Error("empty space accepted")
	}
	// A kernel that cannot fit on a CU must abort the sweep.
	bad := kernel.New("s", "p", "bad").Geometry(16, 1024).MustBuild()
	bad.SGPRsPerWave = 512
	if _, err := Run([]*kernel.Kernel{bad}, space, Options{Workers: 4}); err == nil {
		t.Error("unfittable kernel accepted")
	}
}

func TestRowLookup(t *testing.T) {
	space := testSpace(t)
	m, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Row("p.b"); got != 1 {
		t.Errorf("Row(p.b) = %d, want 1", got)
	}
	if got := m.Row("nope"); got != -1 {
		t.Errorf("Row(nope) = %d, want -1", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	space := testSpace(t)
	m, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, space)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Kernels, m.Kernels) {
		t.Fatalf("kernels differ: %v vs %v", got.Kernels, m.Kernels)
	}
	if !reflect.DeepEqual(got.Throughput, m.Throughput) {
		t.Fatal("throughput rows differ after round trip")
	}
	if !reflect.DeepEqual(got.Bound, m.Bound) {
		t.Fatal("bound rows differ after round trip")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	space := testSpace(t)
	cases := []string{
		"",
		"x,y\n1,2\n",
		"kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound\nk,notanint,200,150,1,1,compute\n",
		"kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound\nk,5,200,150,1,1,compute\n", // off-grid
		"kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound\nk,4,200,150,1,1,teapot\n",  // bad bound
		"kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound\nk,4,200,150,1,1,compute\n", // incomplete grid
		"kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound\n",                          // no rows
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), space); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRuns(t *testing.T) {
	if got := Runs(267, 891); got != 237897 {
		t.Errorf("Runs(267,891) = %d, want 237897 (the paper's measurement count)", got)
	}
}
