package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// partialMatrix sweeps the test kernels under a fault storm with no
// retries, guaranteeing a mix of ok and failed cells.
func partialMatrix(t *testing.T, space hw.Space) *Matrix {
	t.Helper()
	in := fault.Injector{ErrorRate: 0.3, Seed: 21}
	m, rep, err := RunContext(context.Background(), testKernels(), space,
		Options{Sim: in.Wrap(gcn.Simulate)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 || rep.OK == 0 {
		t.Fatalf("fault storm produced no mix: %s", rep.Summary())
	}
	return m
}

// TestCSVRoundTripWithStatus writes a partial matrix — including its
// Status plane — and asserts a deep-equal read-back.
func TestCSVRoundTripWithStatus(t *testing.T) {
	space := testSpace(t)
	m := partialMatrix(t, space)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, space)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Kernels, m.Kernels) {
		t.Fatalf("kernels differ: %v vs %v", got.Kernels, m.Kernels)
	}
	if !reflect.DeepEqual(got.Throughput, m.Throughput) {
		t.Fatal("throughput differs after round trip")
	}
	if !reflect.DeepEqual(got.TimeNS, m.TimeNS) {
		t.Fatal("times differ after round trip")
	}
	if !reflect.DeepEqual(got.Bound, m.Bound) {
		t.Fatal("bounds differ after round trip")
	}
	if !reflect.DeepEqual(got.Status, m.Status) {
		t.Fatal("status plane differs after round trip")
	}
}

// TestReadCSVLegacySevenColumns keeps archives written before the
// status column readable: every cell comes back StatusOK.
func TestReadCSVLegacySevenColumns(t *testing.T) {
	space := testSpace(t)
	m, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	// Strip the status column to emulate an old archive.
	var legacy bytes.Buffer
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		legacy.WriteString(line[:strings.LastIndex(line, ",")] + "\n")
	}
	got, err := ReadCSV(&legacy, space)
	if err != nil {
		t.Fatalf("legacy CSV rejected: %v", err)
	}
	if !reflect.DeepEqual(got.Throughput, m.Throughput) {
		t.Fatal("legacy throughput differs")
	}
	for r := range got.Kernels {
		if !got.RowComplete(r) {
			t.Fatalf("legacy row %d not all StatusOK", r)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	space := testSpace(t)
	const hdr = "kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound,status\n"
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"wrong header", "x,y\n1,2\n"},
		{"bad cu", hdr + "k,notanint,200,150,1,1,compute,ok\n"},
		{"off-grid", hdr + "k,5,200,150,1,1,compute,ok\n"},
		{"bad bound", hdr + "k,4,200,150,1,1,teapot,ok\n"},
		{"bad status", hdr + "k,4,200,150,1,1,compute,maybe\n"},
		{"incomplete grid", hdr + "k,4,200,150,1,1,compute,ok\n"},
		{"no rows", hdr},
		{"short record", hdr + "k,4,200\n"},
		{"bad throughput", hdr + "k,4,200,150,fast,1,compute,ok\n"},
	}
	for _, c := range cases {
		_, err := ReadCSV(strings.NewReader(c.input), space)
		if err == nil {
			t.Errorf("case %q accepted", c.name)
			continue
		}
		if err.Error() == "" {
			t.Errorf("case %q produced an empty error", c.name)
		}
	}
}

// TestReadCSVPartialToleratesHoles: the lenient reader marks missing
// cells failed instead of erroring, and an only-header file is fine.
func TestReadCSVPartialToleratesHoles(t *testing.T) {
	space := testSpace(t)
	const hdr = "kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound,status\n"
	input := hdr + "p.a,4,200,150,1.5,100,compute,ok\n"
	m, err := ReadCSVPartial(strings.NewReader(input), space)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Kernels) != 1 || m.Kernels[0] != "p.a" {
		t.Fatalf("kernels = %v", m.Kernels)
	}
	okCells := 0
	for c := range m.Status[0] {
		if m.Status[0][c] == StatusOK {
			okCells++
		}
	}
	if okCells != 1 {
		t.Fatalf("ok cells = %d, want exactly the one present row", okCells)
	}
	if m.RowComplete(0) {
		t.Fatal("hole-ridden row reported complete")
	}
	empty, err := ReadCSVPartial(strings.NewReader(hdr), space)
	if err != nil {
		t.Fatalf("header-only file rejected by partial reader: %v", err)
	}
	if len(empty.Kernels) != 0 {
		t.Fatalf("header-only file produced kernels %v", empty.Kernels)
	}
	// Strict mode still rejects both.
	if _, err := ReadCSV(strings.NewReader(input), space); err == nil {
		t.Error("strict reader accepted an incomplete grid")
	}
}

func TestJournalCheckpointAndRecovery(t *testing.T) {
	space := testSpace(t)
	path := filepath.Join(t.TempDir(), "journal.csv")
	j, err := OpenJournal(path, space)
	if err != nil {
		t.Fatal(err)
	}
	if j.Prior() != nil {
		t.Fatal("fresh journal has a prior matrix")
	}
	// Sweep with the journal wired into OnRow, kernel b down.
	opts := Options{
		Sim: func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			if k.Name == "p.b" {
				return gcn.Result{}, errors.New("b is down")
			}
			return gcn.Simulate(k, cfg)
		},
		OnRow: func(m *Matrix, r int) {
			if err := j.AppendRow(m, r); err != nil {
				t.Errorf("AppendRow: %v", err)
			}
		},
	}
	if _, _, err := RunContext(context.Background(), testKernels(), space, opts); err != nil {
		t.Fatal(err)
	}
	if err := j.VerifyComplete([]string{"p.a", "p.b", "p.c"}); err == nil {
		t.Fatal("journal with a down kernel verified complete")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the two healthy rows must be recovered, b's absent.
	j2, err := OpenJournal(path, space)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	prior := j2.Prior()
	if prior == nil {
		t.Fatal("reopened journal lost its rows")
	}
	if prior.Row("p.a") < 0 || prior.Row("p.c") < 0 {
		t.Fatalf("recovered kernels %v, want p.a and p.c", prior.Kernels)
	}
	if prior.Row("p.b") >= 0 {
		t.Fatal("failed kernel p.b leaked into the journal")
	}

	// Resume against the prior, journaling the recomputed row.
	opts2 := Options{
		OnRow: func(m *Matrix, r int) {
			if err := j2.AppendRow(m, r); err != nil {
				t.Errorf("AppendRow: %v", err)
			}
		},
	}
	m, rep, err := Resume(context.Background(), testKernels(), space, opts2, prior)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 2*space.Size() {
		t.Fatalf("resume skipped %d cells, want %d", rep.Skipped, 2*space.Size())
	}
	if err := j2.VerifyComplete(m.Kernels); err != nil {
		t.Fatalf("journal incomplete after resume: %v", err)
	}

	// The finished journal recovers cleanly (no salvage) and equals a
	// clean sweep.
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path, space)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if s := j3.Salvage(); s != nil {
		t.Fatalf("clean journal reported salvage: %+v", s)
	}
	archived := j3.Prior()
	if archived == nil {
		t.Fatal("finished journal recovered no rows")
	}
	clean, err := Run(testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range clean.Kernels {
		ar, cr := archived.Row(name), clean.Row(name)
		if ar < 0 {
			t.Fatalf("kernel %s missing from archive", name)
		}
		if !reflect.DeepEqual(archived.Throughput[ar], clean.Throughput[cr]) {
			t.Fatalf("archived row %s differs from clean sweep", name)
		}
	}
}

func TestOpenJournalRejectsForeignFile(t *testing.T) {
	space := testSpace(t)
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("do not overwrite me\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, space); err == nil {
		t.Fatal("journal opened over a non-CSV file")
	}
	// The file must be untouched.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "do not overwrite me\n" {
		t.Fatal("foreign file was modified")
	}
}
