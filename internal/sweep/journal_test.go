package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
)

// tinySpace keeps the every-byte-offset harnesses fast: 8 cells/row.
func tinySpace(t *testing.T) hw.Space {
	t.Helper()
	s, err := hw.NewSpace([]int{4, 44}, []float64{200, 1000}, []float64{150, 1250})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// journalOpts is the deterministic sweep configuration the recovery
// harnesses compare against; noise is on so the tests also prove the
// per-row RNG realigns across a resume.
func journalOpts() Options {
	return Options{NoiseStdDev: 0.05, Seed: 9, Workers: 2}
}

// matrixBytes renders a matrix's canonical CSV for byte-identity
// comparisons.
func matrixBytes(t *testing.T, m *Matrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// buildFullJournal sweeps cleanly with a journal attached and returns
// the finished journal file's bytes plus the baseline CSV.
func buildFullJournal(t *testing.T, space hw.Space) (journalFile, baseline []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "full.journal")
	j, err := OpenJournal(path, space)
	if err != nil {
		t.Fatal(err)
	}
	opts := journalOpts()
	opts.OnRow = func(m *Matrix, r int) {
		if err := j.AppendRow(m, r); err != nil {
			t.Errorf("AppendRow: %v", err)
		}
	}
	m, rep, err := RunContext(context.Background(), testKernels(), space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("clean sweep incomplete: %s", rep.Summary())
	}
	if err := j.VerifyComplete(m.Kernels); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, matrixBytes(t, m)
}

// resumeFromFile opens a (possibly damaged) journal file, resumes the
// sweep against its prior, and returns the final matrix bytes. It
// fails the test if the open or resume errors, or if any recovered
// cell is double-counted (a skipped cell must match a prior row
// exactly once).
func resumeFromFile(t *testing.T, path string, space hw.Space) []byte {
	t.Helper()
	j, err := OpenJournal(path, space)
	if err != nil {
		t.Fatalf("OpenJournal on damaged file: %v", err)
	}
	defer j.Close()
	prior := j.Prior()
	opts := journalOpts()
	opts.OnRow = func(m *Matrix, r int) {
		if err := j.AppendRow(m, r); err != nil {
			t.Errorf("AppendRow during resume: %v", err)
		}
	}
	m, rep, err := Resume(context.Background(), testKernels(), space, opts, prior)
	if err != nil {
		t.Fatalf("Resume after salvage: %v", err)
	}
	if !rep.Complete() {
		t.Fatalf("resume left holes: %s", rep.Summary())
	}
	// No double-counting: every skipped cell corresponds to exactly
	// one complete prior row, everything else was recomputed.
	priorRows := 0
	if prior != nil {
		priorRows = len(prior.Kernels)
	}
	if rep.Skipped != priorRows*space.Size() {
		t.Fatalf("skipped %d cells with %d prior rows (%d cells/row)",
			rep.Skipped, priorRows, space.Size())
	}
	if err := j.VerifyComplete(m.Kernels); err != nil {
		t.Fatalf("VerifyComplete after resume: %v", err)
	}
	return matrixBytes(t, m)
}

// TestJournalTruncationAtEveryOffset is the torn-write harness: a
// finished journal cut at every possible byte offset must still open,
// salvage its clean prefix, and resume to a matrix byte-identical to
// the uninterrupted run.
func TestJournalTruncationAtEveryOffset(t *testing.T) {
	space := tinySpace(t)
	full, baseline := buildFullJournal(t, space)
	dir := t.TempDir()
	path := filepath.Join(dir, "cut.journal")
	for off := 0; off <= len(full); off++ {
		if err := os.WriteFile(path, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		got := resumeFromFile(t, path, space)
		if !bytes.Equal(got, baseline) {
			t.Fatalf("offset %d: resumed matrix differs from uninterrupted run", off)
		}
	}
}

// TestJournalBitFlipAtEveryOffset flips one bit at every byte offset.
// Flips inside the magic header make the file unidentifiable and must
// be rejected without modifying it; flips anywhere else must salvage
// and resume byte-identically.
func TestJournalBitFlipAtEveryOffset(t *testing.T) {
	space := tinySpace(t)
	full, baseline := buildFullJournal(t, space)
	dir := t.TempDir()
	path := filepath.Join(dir, "flip.journal")
	for off := 0; off < len(full); off++ {
		damaged := append([]byte(nil), full...)
		damaged[off] ^= 1 << 3
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		if off < len(journalMagic) {
			// The file no longer names itself a journal; refusing to
			// touch it protects real user files from being clobbered.
			if _, err := OpenJournal(path, space); err == nil {
				t.Fatalf("offset %d: corrupt magic accepted", off)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, damaged) {
				t.Fatalf("offset %d: rejected file was modified", off)
			}
			continue
		}
		got := resumeFromFile(t, path, space)
		if !bytes.Equal(got, baseline) {
			t.Fatalf("offset %d: resumed matrix differs from uninterrupted run", off)
		}
	}
}

// TestJournalV1MigrationAndSalvage: a v1 CSV journal — including one
// with a torn tail — still resumes, and the file comes back as v2.
func TestJournalV1MigrationAndSalvage(t *testing.T) {
	space := tinySpace(t)
	m, rep, err := RunContext(context.Background(), testKernels(), space, journalOpts())
	if err != nil || !rep.Complete() {
		t.Fatalf("clean sweep: %v %s", err, rep.Summary())
	}
	baseline := matrixBytes(t, m)

	// A v1 journal was a plain CSV; drop the last kernel's rows and
	// tear the final line to emulate a crash mid-append.
	lines := bytes.Split(bytes.TrimRight(baseline, "\n"), []byte("\n"))
	cut := 1 + 2*space.Size() // header + two complete rows
	v1 := bytes.Join(lines[:cut], []byte("\n"))
	v1 = append(v1, '\n')
	v1 = append(v1, lines[cut][:len(lines[cut])/2]...) // torn line, no newline

	path := filepath.Join(t.TempDir(), "v1.journal")
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path, space)
	if err != nil {
		t.Fatalf("v1 journal rejected: %v", err)
	}
	s := j.Salvage()
	if s == nil || !s.MigratedV1 {
		t.Fatalf("salvage report %+v, want MigratedV1", s)
	}
	if s.DroppedBytes == 0 || s.DroppedRecords == 0 {
		t.Fatalf("torn v1 tail not counted: %+v", s)
	}
	prior := j.Prior()
	if prior == nil || len(prior.Kernels) != 2 {
		t.Fatalf("v1 salvage recovered %v, want the two complete rows", prior)
	}
	// The migrated file on disk is now v2.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(journalMagic)) {
		t.Fatalf("migrated file does not start with v2 magic: %.40q", data)
	}
	j.Close()

	got := resumeFromFile(t, path, space)
	if !bytes.Equal(got, baseline) {
		t.Fatal("resume from migrated v1 journal differs from clean run")
	}
}

// TestJournalCompletedArchiveReadable: gpusweep archives a finished
// journal as plain CSV; pointing -resume at that archive must skip
// everything rather than start over.
func TestJournalCompletedArchiveReadable(t *testing.T) {
	space := tinySpace(t)
	m, rep, err := RunContext(context.Background(), testKernels(), space, journalOpts())
	if err != nil || !rep.Complete() {
		t.Fatalf("clean sweep: %v %s", err, rep.Summary())
	}
	path := filepath.Join(t.TempDir(), "archive.csv")
	if err := m.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path, space)
	if err != nil {
		t.Fatalf("completed archive rejected: %v", err)
	}
	defer j.Close()
	prior := j.Prior()
	if prior == nil || len(prior.Kernels) != 3 {
		t.Fatalf("archive recovered %v rows, want all 3", prior)
	}
	if err := j.VerifyComplete(m.Kernels); err != nil {
		t.Fatalf("complete archive fails verification: %v", err)
	}
	if !reflect.DeepEqual(prior.Throughput, m.Throughput) {
		t.Fatal("archived values changed across CSV->journal migration")
	}
}

// TestJournalTornWriteSelfHeals drives AppendRow through the fault
// injector's torn-write wrapper: the append must fail loudly, the
// file must stay byte-identical to its pre-append state, and a later
// clean append must succeed from the healed offset.
func TestJournalTornWriteSelfHeals(t *testing.T) {
	space := tinySpace(t)
	m, rep, err := RunContext(context.Background(), testKernels(), space, journalOpts())
	if err != nil || !rep.Complete() {
		t.Fatalf("clean sweep: %v %s", err, rep.Summary())
	}
	path := filepath.Join(t.TempDir(), "torn.journal")
	in := fault.Injector{TornWriteRate: 1, Seed: 3}
	torn := 0
	in.OnDecision = func(d fault.Decision) {
		if d.Kind == fault.KindTornWrite {
			torn++
		}
	}
	j, err := OpenJournalWith(path, space, JournalOptions{WrapWriter: in.WrapWriter})
	// With rate 1 even the header write tears; the open itself may
	// fail, which is fine — the file must then be empty or a clean
	// magic prefix handled on reopen.
	if err == nil {
		before, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		aerr := j.AppendRow(m, 0)
		if aerr == nil {
			t.Fatal("torn append reported success")
		}
		if !errors.Is(aerr, fault.ErrTornWrite) {
			t.Fatalf("append error %v does not wrap ErrTornWrite", aerr)
		}
		after, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(before, after) {
			t.Fatal("torn append left partial bytes behind (self-heal failed)")
		}
		j.Close()
	}
	if torn == 0 {
		t.Fatal("injector fired no torn writes at rate 1")
	}
	// Reopen without faults: whatever state the torn writer left must
	// recover to a working journal.
	j2, err := OpenJournal(path, space)
	if err != nil {
		t.Fatalf("reopen after torn writes: %v", err)
	}
	defer j2.Close()
	for r := range m.Kernels {
		if err := j2.AppendRow(m, r); err != nil {
			t.Fatalf("clean append after heal: %v", err)
		}
	}
	if err := j2.VerifyComplete(m.Kernels); err != nil {
		t.Fatalf("journal incomplete after healed appends: %v", err)
	}
}

// TestKillResumeEquivalence is the acceptance drill: one sweep is
// interrupted by all three simulated failure modes — an engine panic,
// a stalled engine call abandoned by the watchdog, and a torn journal
// write left on disk by the "crash" — and the resumed run must
// produce a matrix byte-identical to an uninterrupted sweep.
func TestKillResumeEquivalence(t *testing.T) {
	space := testSpace(t)
	clean, rep, err := RunContext(context.Background(), testKernels(), space, journalOpts())
	if err != nil || !rep.Complete() {
		t.Fatalf("clean sweep: %v %s", err, rep.Summary())
	}
	baseline := matrixBytes(t, clean)

	path := filepath.Join(t.TempDir(), "crash.journal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fault model: rare panics, one long stall. The first stall
	// decision cancels the sweep mid-flight; the stalled engine call
	// ignores the cancellation (it is asleep) and the watchdog
	// abandons it after the grace.
	var once sync.Once
	in := fault.Injector{PanicRate: 0.01, StallRate: 0.005, Stall: 300 * time.Millisecond, Seed: 7}
	in.OnDecision = func(d fault.Decision) {
		if d.Kind == fault.KindStall {
			once.Do(cancel)
		}
	}
	j, err := OpenJournal(path, space)
	if err != nil {
		t.Fatal(err)
	}
	opts := journalOpts()
	opts.Workers = 3
	opts.Sim = in.Wrap(gcn.Simulate)
	opts.StallGrace = 10 * time.Millisecond
	opts.OnRow = func(m *Matrix, r int) { _ = j.AppendRow(m, r) }
	_, rep1, err := RunContext(ctx, testKernels(), space, opts)
	if err == nil {
		t.Fatalf("interrupted sweep reported success: %s", rep1.Summary())
	}
	checkAccounting(t, rep1)
	if rep1.Stalled == 0 {
		t.Fatalf("no stalled cell despite watchdog drill: %s", rep1.Summary())
	}
	panicked := false
	for _, f := range rep1.Failures {
		if errors.Is(f.Err, ErrEnginePanic) {
			panicked = true
		}
	}
	if !panicked {
		t.Fatalf("no panic survived isolation into the failure records: %s", rep1.Summary())
	}
	j.Close()

	// The "crash" also tore the last journal write: leave half of a
	// framed record on disk.
	framed, err := rowRecord(clean, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(framed[:len(framed)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume: the torn tail is salvaged, the panicked/stalled rows
	// recomputed, and the result is byte-identical.
	j2, err := OpenJournal(path, space)
	if err != nil {
		t.Fatalf("resume open after crash: %v", err)
	}
	defer j2.Close()
	s := j2.Salvage()
	if s == nil || s.DroppedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", s)
	}
	opts2 := journalOpts()
	opts2.OnRow = func(m *Matrix, r int) {
		if err := j2.AppendRow(m, r); err != nil {
			t.Errorf("AppendRow during resume: %v", err)
		}
	}
	m2, rep2, err := Resume(context.Background(), testKernels(), space, opts2, j2.Prior())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !rep2.Complete() {
		t.Fatalf("resume incomplete: %s", rep2.Summary())
	}
	if err := j2.VerifyComplete(m2.Kernels); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(matrixBytes(t, m2), baseline) {
		t.Fatal("kill-resume matrix differs from uninterrupted run")
	}
}

// TestScanJournalRejectsForeignSpace: resuming a journal against a
// different grid must be a hard error, not a silent salvage.
func TestScanJournalRejectsForeignSpace(t *testing.T) {
	small := tinySpace(t)
	path := filepath.Join(t.TempDir(), "j.journal")
	j, err := OpenJournal(path, small)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	other, err := hw.NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, other); err == nil {
		t.Fatal("journal accepted against a different configuration space")
	}
}

// TestJournalRecordFraming pins the v2 wire format: CRC over the JSON
// payload, decimal length, one record per line.
func TestJournalRecordFraming(t *testing.T) {
	rec := journalRecord{Kernel: "k", Tput: []float64{1}, TimeNS: []float64{2}, Bound: []int{0}}
	framed, err := frameRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	var crc uint32
	var plen int
	var payload string
	n, err := fmt.Sscanf(string(framed), "%08x %d %s", &crc, &plen, &payload)
	if err != nil || n != 3 {
		t.Fatalf("framed record %q does not parse: %v", framed, err)
	}
	if framed[len(framed)-1] != '\n' {
		t.Fatalf("record not newline-terminated: %q", framed)
	}
	got, next, reason := parseRecord(framed, 0)
	if reason != "" {
		t.Fatalf("parseRecord rejected its own framing: %s", reason)
	}
	if next != int64(len(framed)) {
		t.Fatalf("parseRecord consumed %d of %d bytes", next, len(framed))
	}
	if got.Kernel != "k" || len(got.Tput) != 1 || got.Tput[0] != 1 {
		t.Fatalf("round-tripped record %+v", got)
	}
}
