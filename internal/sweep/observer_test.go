package sweep

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/obs"
)

// faultyOpts returns sweep options wrapping the round engine in a
// deterministic fault storm with enough retries to recover fully.
func faultyOpts(extra func(*Options)) Options {
	in := fault.Injector{ErrorRate: 0.2, Seed: 5}
	o := Options{Workers: 4, Sim: in.Wrap(gcn.Simulate), Retries: 8}
	if extra != nil {
		extra(&o)
	}
	return o
}

func TestTelemetryCountersMatchReport(t *testing.T) {
	space := testSpace(t)
	tel := NewTelemetry(nil, nil)
	opts := faultyOpts(func(o *Options) { o.Observer = tel })
	_, rep, err := RunContext(context.Background(), testKernels(), space, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	reg := tel.Registry()
	counters := map[string]uint64{
		"attempts": reg.Counter(MetricAttempts, "").Value(),
		"retries":  reg.Counter(MetricRetries, "").Value(),
		"ok":       reg.Counter(MetricCellsDone, "", obs.L("status", "ok")).Value(),
		"failed":   reg.Counter(MetricCellsDone, "", obs.L("status", "failed")).Value(),
		"canceled": reg.Counter(MetricCellsDone, "", obs.L("status", "canceled")).Value(),
		"rows":     reg.Counter(MetricRowsDone, "").Value(),
	}
	want := map[string]uint64{
		"attempts": uint64(rep.Attempts),
		"retries":  uint64(rep.Retries),
		"ok":       uint64(rep.OK),
		"failed":   uint64(rep.Failed),
		"canceled": uint64(rep.Canceled),
		"rows":     uint64(rep.Kernels),
	}
	if !reflect.DeepEqual(counters, want) {
		t.Fatalf("registry counters %v do not match report %v", counters, want)
	}
	if rep.Retries == 0 {
		t.Fatal("fault storm consumed no retries; test proves nothing")
	}
	if got := reg.Gauge(MetricCells, "").Value(); got != float64(rep.Cells) {
		t.Fatalf("cells gauge = %g, want %d", got, rep.Cells)
	}
	if n := reg.Histogram(MetricCellLatency, "", nil).Count(); n != uint64(rep.OK+rep.Failed+rep.Canceled) {
		t.Fatalf("latency histogram has %d observations, want %d", n, rep.OK+rep.Failed+rep.Canceled)
	}
}

func TestObservedSweepByteIdenticalMatrix(t *testing.T) {
	space := testSpace(t)
	// Noise + faults: the adversarial case for observer interference
	// with RNG streams and retry decisions.
	mk := func(o Observer) *Matrix {
		opts := faultyOpts(func(op *Options) {
			op.NoiseStdDev = 0.05
			op.Seed = 11
			op.Observer = o
		})
		m, rep, err := RunContext(context.Background(), testKernels(), space, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkAccounting(t, rep)
		return m
	}
	var tw bytes.Buffer
	plain := mk(nil)
	nop := mk(NopObserver{})
	tel := mk(func() *Telemetry {
		tl := NewTelemetry(nil, obs.NewTraceWriter(&tw))
		tl.EmitProgress(discardWriter{}, 0)
		return tl
	}())

	for name, m := range map[string]*Matrix{"NopObserver": nop, "Telemetry": tel} {
		var a, b bytes.Buffer
		if err := plain.WriteCSV(&a); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s-observed matrix differs from unobserved run", name)
		}
	}
}

// discardWriter is a throwaway writer; keeps the test free of an io
// import collision with the package under test.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestTelemetryTraceEvents(t *testing.T) {
	space := testSpace(t)
	var buf bytes.Buffer
	tel := NewTelemetry(nil, obs.NewTraceWriter(&buf))
	opts := faultyOpts(func(o *Options) { o.Observer = tel })
	_, rep, err := RunContext(context.Background(), testKernels(), space, opts)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("trace is not parseable JSONL: %v", err)
	}
	byName := map[string]int{}
	retriesInTrace := 0
	for _, e := range evs {
		byName[e.Name]++
		if e.Name == "attempt" {
			if n, ok := e.Args["attempt"].(float64); ok && n > 1 {
				retriesInTrace++
			}
			if e.Args["kernel"] == nil || e.Args["cus"] == nil {
				t.Fatalf("attempt span missing kernel/config keys: %v", e.Args)
			}
		}
	}
	if byName["cell"] != rep.Cells {
		t.Fatalf("trace has %d cell spans, want %d", byName["cell"], rep.Cells)
	}
	if byName["attempt"] != rep.Attempts {
		t.Fatalf("trace has %d attempt spans, want %d", byName["attempt"], rep.Attempts)
	}
	if retriesInTrace != rep.Retries {
		t.Fatalf("trace shows %d retries, report says %d", retriesInTrace, rep.Retries)
	}
	if byName["row"] != rep.Kernels {
		t.Fatalf("trace has %d row spans, want %d", byName["row"], rep.Kernels)
	}
	if byName["sweep"] != 1 || byName["sweep.start"] != 1 {
		t.Fatalf("trace sweep lifecycle spans = %v", byName)
	}
}

func TestTelemetrySkippedCellsOnResume(t *testing.T) {
	space := testSpace(t)
	ks := testKernels()
	prior, _, err := RunContext(context.Background(), ks, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry(nil, nil)
	_, rep, err := Resume(context.Background(), ks, space, Options{Observer: tel}, prior)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != rep.Cells {
		t.Fatalf("full prior should skip everything: %s", rep.Summary())
	}
	got := tel.Registry().Counter(MetricCellsDone, "", obs.L("status", "skipped")).Value()
	if got != uint64(rep.Skipped) {
		t.Fatalf("skipped counter = %d, want %d", got, rep.Skipped)
	}
	s := tel.Progress().Snapshot()
	if s.Done != uint64(rep.Cells) || s.Total != uint64(rep.Cells) {
		t.Fatalf("progress after all-skipped resume = %+v", s)
	}
}

// TestJournalResumeWithObserverUnderCancellation drives the full
// production wiring — journal OnRow, Telemetry observer with tracing
// and progress, fault injection — through a mid-sweep cancellation,
// then resumes. Run under -race (make check does) this doubles as the
// concurrency proof for the observer delivery path.
func TestJournalResumeWithObserverUnderCancellation(t *testing.T) {
	space := testSpace(t)
	ks := testKernels()
	path := filepath.Join(t.TempDir(), "journal.csv")

	j, err := OpenJournal(path, space)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tel := NewTelemetry(nil, obs.NewTraceWriter(&buf))
	tel.EmitProgress(discardWriter{}, 0)

	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	slowSim := func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
		// Cancel mid-sweep, from inside a worker, once the first row
		// has had time to complete.
		if calls.Add(1) == int64(space.Size()+3) {
			cancel()
		}
		return gcn.Simulate(k, cfg)
	}
	opts := Options{
		Workers: 1, // one row at a time => first row journals before cancel
		Sim:     slowSim,
		OnRow: func(m *Matrix, r int) {
			start := time.Now()
			err := j.AppendRow(m, r)
			tel.JournalAppend(m.Kernels[r], time.Since(start), err)
			if err != nil {
				t.Errorf("journal append: %v", err)
			}
		},
		Observer: tel,
	}
	_, rep, err := RunContext(ctx, ks, space, opts)
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	checkAccounting(t, rep)
	if rep.Canceled == 0 {
		t.Fatalf("cancellation landed after the sweep finished: %s", rep.Summary())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tel.Registry().Counter(MetricJournalAppends, "").Value(); got != uint64(rep.Kernels) {
		t.Fatalf("journal appends = %d, want one per row (%d)", got, rep.Kernels)
	}
	if _, err := obs.ReadEvents(&buf); err != nil {
		t.Fatalf("trace corrupted by cancellation: %v", err)
	}

	// Resume with a fresh journal + observer must complete and reuse
	// the journaled rows.
	j2, err := OpenJournal(path, space)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	tel2 := NewTelemetry(nil, nil)
	opts2 := Options{
		Workers:  4,
		OnRow:    func(m *Matrix, r int) { _ = j2.AppendRow(m, r) },
		Observer: tel2,
	}
	m2, rep2, err := Resume(context.Background(), ks, space, opts2, j2.Prior())
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep2)
	if rep2.Skipped == 0 {
		t.Fatalf("resume reused nothing despite journaled rows: %s", rep2.Summary())
	}
	for r := range m2.Kernels {
		if !m2.RowComplete(r) {
			t.Fatalf("resumed sweep left row %d incomplete", r)
		}
	}
	if err := j2.VerifyComplete(m2.Kernels); err != nil {
		t.Fatal(err)
	}
}

// TestNopObserverOverhead compares the nil-observer hot path against a
// no-op observer; the dispatch overhead must stay under 5%. It is a
// benchmark in test clothing, so it only runs when `make bench-obs`
// (or the env var) asks for it — wall-clock assertions are too noisy
// for every `go test`.
func TestNopObserverOverhead(t *testing.T) {
	if os.Getenv("GPUSCALE_BENCH_OBS") == "" {
		t.Skip("set GPUSCALE_BENCH_OBS=1 (make bench-obs) to run the overhead gate")
	}
	ks := testKernels()
	space := hw.StudySpace()
	measure := func(o Observer) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					if _, _, err := RunContext(context.Background(), ks, space, Options{Observer: o}); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(r.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	base := measure(nil)
	nop := measure(NopObserver{})
	ratio := nop / base
	t.Logf("nil observer %.2fms, NopObserver %.2fms, ratio %.3f", base/1e6, nop/1e6, ratio)
	if ratio > 1.05 {
		t.Errorf("no-op observer adds %.1f%% to the sweep hot path, budget is 5%%", 100*(ratio-1))
	}
}

// TestTracedSweepOverhead gates the full distributed-tracing path: a
// Telemetry observer with a live trace writer, span context and flight
// recorder must stay within 10% of the nil-observer sweep, measured on
// the detailed engine — the cheapest engine with a realistic per-cell
// cost (~tens of microseconds; the round engine's closed-form cell is
// cheaper than a clock read, which no tracer could shadow). This is
// what keeps leaf events on the KV fast path, span-mint-free — if
// someone adds a crypto/rand read or a reflective marshal per cell,
// this test is the alarm. Gated like TestNopObserverOverhead:
// wall-clock ratios are too noisy for every `go test`.
func TestTracedSweepOverhead(t *testing.T) {
	if os.Getenv("GPUSCALE_BENCH_OBS") == "" {
		t.Skip("set GPUSCALE_BENCH_OBS=1 (make bench-obs) to run the overhead gate")
	}
	ks := testKernels()
	space := hw.StudySpace()
	measure := func(mk func() Observer) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					var o Observer
					if mk != nil {
						o = mk()
					}
					opts := Options{Engine: Detailed, Observer: o}
					if _, _, err := RunContext(context.Background(), ks, space, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(r.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	base := measure(nil)
	fr, err := obs.OpenFlightRecorder(filepath.Join(t.TempDir(), "flight.ring"),
		obs.DefaultFlightSlots, obs.DefaultFlightSlotSize)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	traced := measure(func() Observer {
		tel := NewTelemetry(nil, obs.NewTraceWriter(io.Discard))
		tel.SetSpanContext(obs.NewSpanContext())
		tel.SetFlight(fr)
		return tel
	})
	ratio := traced / base
	t.Logf("nil observer %.2fms, traced %.2fms, ratio %.3f", base/1e6, traced/1e6, ratio)
	if ratio > 1.10 {
		t.Errorf("tracing adds %.1f%% to the sweep hot path, budget is 10%%", 100*(ratio-1))
	}
}

func TestTelemetryProgressLine(t *testing.T) {
	space := testSpace(t)
	var sb strings.Builder
	tel := NewTelemetry(nil, nil)
	tel.EmitProgress(&sb, 0)
	_, rep, err := RunContext(context.Background(), testKernels(), space, Options{Observer: tel})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "cells/s") {
		t.Fatalf("no progress lines emitted:\n%s", out)
	}
	final := out[strings.LastIndex(strings.TrimSpace(out), "\n")+1:]
	if !strings.Contains(out, "progress: ") {
		t.Fatalf("missing progress prefix: %q", final)
	}
	s := tel.Progress().Snapshot()
	if s.Done != uint64(rep.Cells) {
		t.Fatalf("final progress done = %d, want %d", s.Done, rep.Cells)
	}
}
