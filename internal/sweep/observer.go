package sweep

import (
	"io"
	"time"

	"gpuscale/internal/hw"
	"gpuscale/internal/obs"
)

// Observer receives sweep runtime events. Methods are invoked from
// worker goroutines, concurrently, so implementations must be safe for
// concurrent use; they must also be fast — every call sits on the
// measurement hot path. A nil Options.Observer costs one predictable
// branch per event site (benchmarked via `make bench-obs`).
//
// Observers are strictly read-only taps: the runtime never lets an
// observer influence scheduling, retries, noise draws, or results, so
// an observed sweep is byte-identical to an unobserved one.
type Observer interface {
	// CellTiming reports whether the observer consumes per-cell and
	// per-attempt durations. When false, the runtime skips the
	// monotonic clock read each one costs — on a ~1µs simulated cell a
	// single read is ~5% overhead, the entire bench-obs budget — and
	// delivers CellAttempt/CellDone with zero durations. Row- and
	// sweep-level timing is always measured; it is amortized over
	// hundreds of cells.
	CellTiming() bool
	// SweepStart fires once, before any cell runs: the sweep shape and
	// how many cells a Resume reused from the prior matrix.
	SweepStart(kernels, configs, skipped int)
	// CellAttempt fires after every simulator invocation with its
	// 1-based attempt number, duration, and error (nil on success;
	// validation failures arrive as ErrCorruptResult).
	CellAttempt(row int, kernel string, cfg hw.Config, attempt int, d time.Duration, err error)
	// CellDone fires when a cell reaches a terminal status. attempts
	// is the simulator invocations the cell consumed (0 when it was
	// canceled or quarantined before running); d spans first attempt
	// to settlement.
	CellDone(row int, kernel string, cfg hw.Config, status CellStatus, attempts int, d time.Duration)
	// BreakerTripped fires when a kernel row's circuit breaker opens
	// after `consecutive` hard failures; the row's remaining cells are
	// about to be quarantined.
	BreakerTripped(row int, kernel string, consecutive int)
	// RowQuarantined fires when a whole row — or the remainder of one —
	// settles wholesale without the engine running: the sweep-level
	// quarantine brake or an in-row breaker trip (StatusQuarantined),
	// or a failed row preparation (StatusFailed). It replaces the
	// per-cell CellDone stream for those cells, which never ran.
	RowQuarantined(row int, kernel string, status CellStatus, cells int)
	// RowDone fires when a kernel row settles. queueWait is how long
	// the row waited between sweep start and worker pickup; d is the
	// row's compute duration.
	RowDone(row int, kernel string, queueWait, d time.Duration)
	// SweepEnd fires once with the final report, after every worker
	// has drained.
	SweepEnd(rep *RunReport)
}

// NopObserver is an Observer that ignores every event — the default
// stand-in when callers want the instrumented code path without any
// sink attached.
type NopObserver struct{}

func (NopObserver) CellTiming() bool                                                { return false }
func (NopObserver) SweepStart(int, int, int)                                        {}
func (NopObserver) CellAttempt(int, string, hw.Config, int, time.Duration, error)   {}
func (NopObserver) CellDone(int, string, hw.Config, CellStatus, int, time.Duration) {}
func (NopObserver) BreakerTripped(int, string, int)                                 {}
func (NopObserver) RowQuarantined(int, string, CellStatus, int)                     {}
func (NopObserver) RowDone(int, string, time.Duration, time.Duration)               {}
func (NopObserver) SweepEnd(*RunReport)                                             {}

// Metric names the Telemetry observer registers. Exported so CLIs,
// dashboards and tests agree on the contract (see DESIGN.md,
// "Observing a sweep").
const (
	// MetricCells is a gauge holding the sweep's total cell count.
	MetricCells = "sweep_cells_total"
	// MetricCellsDone counts settled cells, labelled
	// status="ok|failed|canceled|skipped".
	MetricCellsDone = "sweep_cells_done_total"
	// MetricRowsDone counts settled kernel rows.
	MetricRowsDone = "sweep_rows_done_total"
	// MetricAttempts counts simulator invocations.
	MetricAttempts = "sweep_attempts_total"
	// MetricRetries counts invocations beyond each cell's first.
	MetricRetries = "sweep_retries_total"
	// MetricCellLatency is a histogram of per-cell settle latency in
	// seconds (first attempt through terminal status).
	MetricCellLatency = "sweep_cell_latency_seconds"
	// MetricQueueWait is a histogram of row queue wait in seconds
	// (sweep start to worker pickup).
	MetricQueueWait = "sweep_queue_wait_seconds"
	// MetricJournalAppends counts journal row checkpoints.
	MetricJournalAppends = "sweep_journal_appends_total"
	// MetricJournalErrors counts failed journal checkpoints.
	MetricJournalErrors = "sweep_journal_errors_total"
	// MetricBreakerTrips counts kernel rows whose circuit breaker
	// opened (Options.Breaker consecutive hard failures).
	MetricBreakerTrips = "sweep_breaker_trips_total"
	// MetricPreparedRows counts kernel rows evaluated through the
	// prepared row path (Options.Row, or the engine default). Published
	// at SweepEnd, and only when the sweep used that path.
	MetricPreparedRows = "sweep_prepared_rows_total"
	// MetricResidentSetMemoHits / MetricResidentSetMemoMisses count
	// resident-set pipeline simulations served from (or inserted into)
	// each row's memo; hits are configurations that shared a
	// (resident WGs, waves/WG, latency, policy) tuple with an earlier
	// cell in the same row.
	MetricResidentSetMemoHits   = "sweep_residentset_memo_hits_total"
	MetricResidentSetMemoMisses = "sweep_residentset_memo_misses_total"
	// MetricHitRateMemoHits / MetricHitRateMemoMisses are the same for
	// the cache-hit-rate model memo.
	MetricHitRateMemoHits   = "sweep_hitrate_memo_hits_total"
	MetricHitRateMemoMisses = "sweep_hitrate_memo_misses_total"
	// MetricBatchedRows counts kernel rows whose first attempts ran
	// through one whole-axis EvalBatch call. Published at SweepEnd,
	// only when the sweep batched (or tried to batch) at least one row.
	MetricBatchedRows = "sweep_batched_rows_total"
	// MetricBatchFallbackCells counts per-cell engine invocations that
	// batching rows still needed: retries of batched cells whose first
	// attempt faulted, plus every cell of rows whose batch call failed
	// at the row level.
	MetricBatchFallbackCells = "sweep_batch_fallback_cells_total"
)

// Telemetry is the production Observer: it feeds an obs.Registry
// (counters, gauges, latency histograms), optionally emits spans to an
// obs.TraceWriter, and optionally drives a throttled progress line.
// All sinks are safe for the runtime's concurrent delivery.
type Telemetry struct {
	reg *obs.Registry
	tw  *obs.TraceWriter

	cells           *obs.Gauge
	doneOK          *obs.Counter
	doneFailed      *obs.Counter
	doneCanceled    *obs.Counter
	doneStalled     *obs.Counter
	doneQuarantined *obs.Counter
	doneSkipped     *obs.Counter
	rowsDone        *obs.Counter
	attempts        *obs.Counter
	retries         *obs.Counter
	breakerTrips    *obs.Counter
	cellLatency     *obs.Histogram
	queueWait       *obs.Histogram
	journalAppends  *obs.Counter
	journalErrors   *obs.Counter

	progress  *obs.Progress
	progressW io.Writer

	// span, when valid, is the distributed-trace identity of the span
	// enclosing this sweep (a worker's leased row, a service's job).
	// Every emitted event then carries the trace ID with Parent set to
	// span.SpanID, which is what lets sweeptrace stitch a worker's cell
	// stream under the coordinator's lease grant. Leaf events carry no
	// span IDs of their own — minting one per cell would put a
	// crypto/rand read on the measurement hot path.
	span obs.SpanContext
	// flight, when non-nil, receives retry and breaker-trip events for
	// the crash flight recorder.
	flight *obs.FlightRecorder

	sweepStart time.Time
}

var _ Observer = (*Telemetry)(nil)

// NewTelemetry builds a Telemetry observer over reg (a fresh registry
// is created when nil) and tw (nil disables tracing).
func NewTelemetry(reg *obs.Registry, tw *obs.TraceWriter) *Telemetry {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &Telemetry{
		reg:             reg,
		tw:              tw,
		cells:           reg.Gauge(MetricCells, "total cells in the sweep"),
		doneOK:          reg.Counter(MetricCellsDone, "settled cells by status", obs.L("status", "ok")),
		doneFailed:      reg.Counter(MetricCellsDone, "", obs.L("status", "failed")),
		doneCanceled:    reg.Counter(MetricCellsDone, "", obs.L("status", "canceled")),
		doneStalled:     reg.Counter(MetricCellsDone, "", obs.L("status", "stalled")),
		doneQuarantined: reg.Counter(MetricCellsDone, "", obs.L("status", "quarantined")),
		doneSkipped:     reg.Counter(MetricCellsDone, "", obs.L("status", "skipped")),
		rowsDone:        reg.Counter(MetricRowsDone, "settled kernel rows"),
		attempts:        reg.Counter(MetricAttempts, "simulator invocations"),
		retries:         reg.Counter(MetricRetries, "invocations beyond each cell's first"),
		breakerTrips:    reg.Counter(MetricBreakerTrips, "kernel rows whose circuit breaker opened"),
		cellLatency:     reg.Histogram(MetricCellLatency, "per-cell settle latency (s)", nil),
		queueWait:       reg.Histogram(MetricQueueWait, "row queue wait (s)", nil),
		journalAppends:  reg.Counter(MetricJournalAppends, "journal row checkpoints"),
		journalErrors:   reg.Counter(MetricJournalErrors, "failed journal checkpoints"),
	}
	t.progress = obs.NewProgress(func() uint64 {
		return t.doneOK.Value() + t.doneFailed.Value() + t.doneCanceled.Value() +
			t.doneStalled.Value() + t.doneQuarantined.Value() + t.doneSkipped.Value()
	})
	return t
}

// CellTiming implements Observer: Telemetry feeds latency histograms
// and spans, so it pays for per-cell clock reads.
func (t *Telemetry) CellTiming() bool { return true }

// SetSpanContext joins this sweep's events to a distributed trace:
// every event carries sc's trace ID with sc.SpanID as its parent.
// Call before the sweep starts; events are emitted concurrently.
func (t *Telemetry) SetSpanContext(sc obs.SpanContext) { t.span = sc }

// SetFlight wires the crash flight recorder: retries and breaker
// trips are recorded so a post-mortem ring shows what the sweep was
// fighting when the process died.
func (t *Telemetry) SetFlight(fr *obs.FlightRecorder) { t.flight = fr }

// emitComplete routes a completed span through the trace writer,
// attaching distributed-trace identity when one is set.
func (t *Telemetry) emitComplete(name, cat string, tid int64, start time.Time, d time.Duration, args map[string]any) {
	if t.span.Valid() {
		t.tw.CompleteSpan(name, cat, tid, obs.SpanContext{TraceID: t.span.TraceID}, t.span.SpanID, start, d, args)
		return
	}
	t.tw.Complete(name, cat, tid, start, d, args)
}

// emitInstant is emitComplete for instant markers.
func (t *Telemetry) emitInstant(name, cat string, tid int64, args map[string]any) {
	if t.span.Valid() {
		t.tw.InstantSpan(name, cat, tid, obs.SpanContext{TraceID: t.span.TraceID}, t.span.SpanID, args)
		return
	}
	t.tw.Instant(name, cat, tid, args)
}

// emitLeaf is the per-cell span path: typed KV args and a hand-rolled
// encoder instead of map[string]any plus reflection. Two of these fire
// per cell (attempt + cell), so their cost IS the tracing overhead
// budget — see TestTracedSweepOverhead.
func (t *Telemetry) emitLeaf(name string, tid int64, start time.Time, d time.Duration, kvs ...obs.KV) {
	t.tw.CompleteSpanFast(name, "sweep", tid, t.span.TraceID, t.span.SpanID, start, d, kvs...)
}

// Registry returns the backing metrics registry (for /metrics).
func (t *Telemetry) Registry() *obs.Registry { return t.reg }

// Progress returns the progress reporter (for /progress).
func (t *Telemetry) Progress() *obs.Progress { return t.progress }

// EmitProgress turns on the throttled progress line: at most one line
// per interval is written to w as cells settle, plus a final
// unthrottled line at SweepEnd.
func (t *Telemetry) EmitProgress(w io.Writer, interval time.Duration) {
	t.progress.Interval = interval
	t.progressW = w
}

// SweepStart implements Observer.
func (t *Telemetry) SweepStart(kernels, configs, skipped int) {
	t.sweepStart = time.Now()
	t.cells.Set(float64(kernels * configs))
	if skipped > 0 {
		t.doneSkipped.Add(uint64(skipped))
	}
	t.progress.SetTotal(uint64(kernels * configs))
	if t.tw != nil {
		t.emitInstant("sweep.start", "sweep", 0, map[string]any{
			"kernels": kernels, "configs": configs, "skipped": skipped,
		})
	}
}

// CellAttempt implements Observer.
func (t *Telemetry) CellAttempt(row int, kernel string, cfg hw.Config, attempt int, d time.Duration, err error) {
	t.attempts.Inc()
	if attempt > 1 {
		t.retries.Inc()
		if t.flight != nil {
			args := map[string]any{"kernel": kernel, "row": row, "attempt": attempt}
			if err != nil {
				args["err"] = err.Error()
			}
			t.flight.Record("retry", args)
		}
	}
	if t.tw != nil {
		kvs := []obs.KV{
			obs.KS("kernel", kernel),
			obs.KN("cus", float64(cfg.CUs)),
			obs.KN("core_mhz", cfg.CoreClockMHz),
			obs.KN("mem_mhz", cfg.MemClockMHz),
			obs.KN("attempt", float64(attempt)),
		}
		if err != nil {
			kvs = append(kvs, obs.KS("err", err.Error()))
		}
		t.emitLeaf("attempt", int64(row), time.Now().Add(-d), d, kvs...)
	}
}

// CellDone implements Observer.
func (t *Telemetry) CellDone(row int, kernel string, cfg hw.Config, status CellStatus, attempts int, d time.Duration) {
	switch status {
	case StatusFailed:
		t.doneFailed.Inc()
	case StatusCanceled:
		t.doneCanceled.Inc()
	case StatusStalled:
		t.doneStalled.Inc()
	case StatusQuarantined:
		t.doneQuarantined.Inc()
	default:
		t.doneOK.Inc()
	}
	t.cellLatency.Observe(d.Seconds())
	if t.tw != nil {
		t.emitLeaf("cell", int64(row), time.Now().Add(-d), d,
			obs.KS("kernel", kernel),
			obs.KN("cus", float64(cfg.CUs)),
			obs.KN("core_mhz", cfg.CoreClockMHz),
			obs.KN("mem_mhz", cfg.MemClockMHz),
			obs.KS("status", status.String()),
			obs.KN("attempts", float64(attempts)))
	}
	if t.progressW != nil {
		t.progress.MaybeEmit(t.progressW)
	}
}

// BreakerTripped implements Observer.
func (t *Telemetry) BreakerTripped(row int, kernel string, consecutive int) {
	t.breakerTrips.Inc()
	if t.flight != nil {
		t.flight.Record("breaker", map[string]any{
			"kernel": kernel, "row": row, "consecutive_failures": consecutive})
	}
	if t.tw != nil {
		t.emitInstant("breaker", "sweep", int64(row), map[string]any{
			"kernel": kernel, "consecutive_failures": consecutive,
		})
	}
}

// RowQuarantined implements Observer: the whole batch lands on one
// status counter in a single add, with one trace instant instead of a
// per-cell span fan-out (no cell ran, so there is no latency to
// observe).
func (t *Telemetry) RowQuarantined(row int, kernel string, status CellStatus, cells int) {
	switch status {
	case StatusFailed:
		t.doneFailed.Add(uint64(cells))
	default:
		t.doneQuarantined.Add(uint64(cells))
	}
	if t.tw != nil {
		t.emitInstant("row.quarantine", "sweep", int64(row), map[string]any{
			"kernel": kernel, "status": status.String(), "cells": cells,
		})
	}
	if t.progressW != nil {
		t.progress.MaybeEmit(t.progressW)
	}
}

// RowDone implements Observer.
func (t *Telemetry) RowDone(row int, kernel string, queueWait, d time.Duration) {
	t.rowsDone.Inc()
	t.queueWait.Observe(queueWait.Seconds())
	if t.tw != nil {
		t.emitComplete("row", "sweep", int64(row), time.Now().Add(-d), d, map[string]any{
			"kernel": kernel, "queue_wait_us": float64(queueWait) / float64(time.Microsecond),
		})
	}
}

// SweepEnd implements Observer. Prepared-row counters are registered
// here rather than in NewTelemetry so sweeps on the legacy per-cell
// path don't export always-zero series.
func (t *Telemetry) SweepEnd(rep *RunReport) {
	if p := rep.Prepared; p.Rows > 0 {
		t.reg.Counter(MetricPreparedRows, "kernel rows evaluated via the prepared row path").Add(uint64(p.Rows))
		t.reg.Counter(MetricResidentSetMemoHits, "resident-set simulations served from a row memo").Add(uint64(p.ResidentSetHits))
		t.reg.Counter(MetricResidentSetMemoMisses, "resident-set simulations computed and memoized").Add(uint64(p.ResidentSetMisses))
		t.reg.Counter(MetricHitRateMemoHits, "hit-rate model evaluations served from a row memo").Add(uint64(p.HitRateHits))
		t.reg.Counter(MetricHitRateMemoMisses, "hit-rate model evaluations computed and memoized").Add(uint64(p.HitRateMisses))
		if p.BatchedRows > 0 || p.BatchFallbackCells > 0 {
			t.reg.Counter(MetricBatchedRows, "kernel rows evaluated via one whole-axis batch call").Add(uint64(p.BatchedRows))
			t.reg.Counter(MetricBatchFallbackCells, "per-cell invocations batching rows still needed").Add(uint64(p.BatchFallbackCells))
		}
	}
	if t.tw != nil {
		t.emitComplete("sweep", "sweep", 0, t.sweepStart, rep.WallTime, map[string]any{
			"cells": rep.Cells, "ok": rep.OK, "failed": rep.Failed,
			"canceled": rep.Canceled, "stalled": rep.Stalled,
			"quarantined": rep.Quarantined, "skipped": rep.Skipped,
			"attempts": rep.Attempts, "retries": rep.Retries,
			"breaker_trips": rep.BreakerTrips,
		})
		t.tw.Flush()
	}
	if t.progressW != nil {
		t.progress.Emit(t.progressW)
	}
}

// JournalAppend records one journal checkpoint (not part of the
// Observer interface — journals are wired through Options.OnRow, so
// the CLI calls this from the same closure that appends the row).
func (t *Telemetry) JournalAppend(kernel string, d time.Duration, err error) {
	t.journalAppends.Inc()
	if err != nil {
		t.journalErrors.Inc()
	}
	if t.tw != nil {
		args := map[string]any{"kernel": kernel}
		if err != nil {
			args["err"] = err.Error()
		}
		t.emitComplete("journal.append", "journal", 0, time.Now().Add(-d), d, args)
	}
}
