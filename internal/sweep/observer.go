package sweep

import (
	"io"
	"time"

	"gpuscale/internal/hw"
	"gpuscale/internal/obs"
)

// Observer receives sweep runtime events. Methods are invoked from
// worker goroutines, concurrently, so implementations must be safe for
// concurrent use; they must also be fast — every call sits on the
// measurement hot path. A nil Options.Observer costs one predictable
// branch per event site (benchmarked via `make bench-obs`).
//
// Observers are strictly read-only taps: the runtime never lets an
// observer influence scheduling, retries, noise draws, or results, so
// an observed sweep is byte-identical to an unobserved one.
type Observer interface {
	// CellTiming reports whether the observer consumes per-cell and
	// per-attempt durations. When false, the runtime skips the
	// monotonic clock read each one costs — on a ~1µs simulated cell a
	// single read is ~5% overhead, the entire bench-obs budget — and
	// delivers CellAttempt/CellDone with zero durations. Row- and
	// sweep-level timing is always measured; it is amortized over
	// hundreds of cells.
	CellTiming() bool
	// SweepStart fires once, before any cell runs: the sweep shape and
	// how many cells a Resume reused from the prior matrix.
	SweepStart(kernels, configs, skipped int)
	// CellAttempt fires after every simulator invocation with its
	// 1-based attempt number, duration, and error (nil on success;
	// validation failures arrive as ErrCorruptResult).
	CellAttempt(row int, kernel string, cfg hw.Config, attempt int, d time.Duration, err error)
	// CellDone fires when a cell reaches a terminal status. attempts
	// is the simulator invocations the cell consumed (0 when it was
	// canceled or quarantined before running); d spans first attempt
	// to settlement.
	CellDone(row int, kernel string, cfg hw.Config, status CellStatus, attempts int, d time.Duration)
	// BreakerTripped fires when a kernel row's circuit breaker opens
	// after `consecutive` hard failures; the row's remaining cells are
	// about to be quarantined.
	BreakerTripped(row int, kernel string, consecutive int)
	// RowQuarantined fires when a whole row — or the remainder of one —
	// settles wholesale without the engine running: the sweep-level
	// quarantine brake or an in-row breaker trip (StatusQuarantined),
	// or a failed row preparation (StatusFailed). It replaces the
	// per-cell CellDone stream for those cells, which never ran.
	RowQuarantined(row int, kernel string, status CellStatus, cells int)
	// RowDone fires when a kernel row settles. queueWait is how long
	// the row waited between sweep start and worker pickup; d is the
	// row's compute duration.
	RowDone(row int, kernel string, queueWait, d time.Duration)
	// SweepEnd fires once with the final report, after every worker
	// has drained.
	SweepEnd(rep *RunReport)
}

// NopObserver is an Observer that ignores every event — the default
// stand-in when callers want the instrumented code path without any
// sink attached.
type NopObserver struct{}

func (NopObserver) CellTiming() bool                                                { return false }
func (NopObserver) SweepStart(int, int, int)                                        {}
func (NopObserver) CellAttempt(int, string, hw.Config, int, time.Duration, error)   {}
func (NopObserver) CellDone(int, string, hw.Config, CellStatus, int, time.Duration) {}
func (NopObserver) BreakerTripped(int, string, int)                                 {}
func (NopObserver) RowQuarantined(int, string, CellStatus, int)                     {}
func (NopObserver) RowDone(int, string, time.Duration, time.Duration)               {}
func (NopObserver) SweepEnd(*RunReport)                                             {}

// Metric names the Telemetry observer registers. Exported so CLIs,
// dashboards and tests agree on the contract (see DESIGN.md,
// "Observing a sweep").
const (
	// MetricCells is a gauge holding the sweep's total cell count.
	MetricCells = "sweep_cells_total"
	// MetricCellsDone counts settled cells, labelled
	// status="ok|failed|canceled|skipped".
	MetricCellsDone = "sweep_cells_done_total"
	// MetricRowsDone counts settled kernel rows.
	MetricRowsDone = "sweep_rows_done_total"
	// MetricAttempts counts simulator invocations.
	MetricAttempts = "sweep_attempts_total"
	// MetricRetries counts invocations beyond each cell's first.
	MetricRetries = "sweep_retries_total"
	// MetricCellLatency is a histogram of per-cell settle latency in
	// seconds (first attempt through terminal status).
	MetricCellLatency = "sweep_cell_latency_seconds"
	// MetricQueueWait is a histogram of row queue wait in seconds
	// (sweep start to worker pickup).
	MetricQueueWait = "sweep_queue_wait_seconds"
	// MetricJournalAppends counts journal row checkpoints.
	MetricJournalAppends = "sweep_journal_appends_total"
	// MetricJournalErrors counts failed journal checkpoints.
	MetricJournalErrors = "sweep_journal_errors_total"
	// MetricBreakerTrips counts kernel rows whose circuit breaker
	// opened (Options.Breaker consecutive hard failures).
	MetricBreakerTrips = "sweep_breaker_trips_total"
	// MetricPreparedRows counts kernel rows evaluated through the
	// prepared row path (Options.Row, or the engine default). Published
	// at SweepEnd, and only when the sweep used that path.
	MetricPreparedRows = "sweep_prepared_rows_total"
	// MetricResidentSetMemoHits / MetricResidentSetMemoMisses count
	// resident-set pipeline simulations served from (or inserted into)
	// each row's memo; hits are configurations that shared a
	// (resident WGs, waves/WG, latency, policy) tuple with an earlier
	// cell in the same row.
	MetricResidentSetMemoHits   = "sweep_residentset_memo_hits_total"
	MetricResidentSetMemoMisses = "sweep_residentset_memo_misses_total"
	// MetricHitRateMemoHits / MetricHitRateMemoMisses are the same for
	// the cache-hit-rate model memo.
	MetricHitRateMemoHits   = "sweep_hitrate_memo_hits_total"
	MetricHitRateMemoMisses = "sweep_hitrate_memo_misses_total"
)

// Telemetry is the production Observer: it feeds an obs.Registry
// (counters, gauges, latency histograms), optionally emits spans to an
// obs.TraceWriter, and optionally drives a throttled progress line.
// All sinks are safe for the runtime's concurrent delivery.
type Telemetry struct {
	reg *obs.Registry
	tw  *obs.TraceWriter

	cells           *obs.Gauge
	doneOK          *obs.Counter
	doneFailed      *obs.Counter
	doneCanceled    *obs.Counter
	doneStalled     *obs.Counter
	doneQuarantined *obs.Counter
	doneSkipped     *obs.Counter
	rowsDone        *obs.Counter
	attempts        *obs.Counter
	retries         *obs.Counter
	breakerTrips    *obs.Counter
	cellLatency     *obs.Histogram
	queueWait       *obs.Histogram
	journalAppends  *obs.Counter
	journalErrors   *obs.Counter

	progress  *obs.Progress
	progressW io.Writer

	sweepStart time.Time
}

var _ Observer = (*Telemetry)(nil)

// NewTelemetry builds a Telemetry observer over reg (a fresh registry
// is created when nil) and tw (nil disables tracing).
func NewTelemetry(reg *obs.Registry, tw *obs.TraceWriter) *Telemetry {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &Telemetry{
		reg:             reg,
		tw:              tw,
		cells:           reg.Gauge(MetricCells, "total cells in the sweep"),
		doneOK:          reg.Counter(MetricCellsDone, "settled cells by status", obs.L("status", "ok")),
		doneFailed:      reg.Counter(MetricCellsDone, "", obs.L("status", "failed")),
		doneCanceled:    reg.Counter(MetricCellsDone, "", obs.L("status", "canceled")),
		doneStalled:     reg.Counter(MetricCellsDone, "", obs.L("status", "stalled")),
		doneQuarantined: reg.Counter(MetricCellsDone, "", obs.L("status", "quarantined")),
		doneSkipped:     reg.Counter(MetricCellsDone, "", obs.L("status", "skipped")),
		rowsDone:        reg.Counter(MetricRowsDone, "settled kernel rows"),
		attempts:        reg.Counter(MetricAttempts, "simulator invocations"),
		retries:         reg.Counter(MetricRetries, "invocations beyond each cell's first"),
		breakerTrips:    reg.Counter(MetricBreakerTrips, "kernel rows whose circuit breaker opened"),
		cellLatency:     reg.Histogram(MetricCellLatency, "per-cell settle latency (s)", nil),
		queueWait:       reg.Histogram(MetricQueueWait, "row queue wait (s)", nil),
		journalAppends:  reg.Counter(MetricJournalAppends, "journal row checkpoints"),
		journalErrors:   reg.Counter(MetricJournalErrors, "failed journal checkpoints"),
	}
	t.progress = obs.NewProgress(func() uint64 {
		return t.doneOK.Value() + t.doneFailed.Value() + t.doneCanceled.Value() +
			t.doneStalled.Value() + t.doneQuarantined.Value() + t.doneSkipped.Value()
	})
	return t
}

// CellTiming implements Observer: Telemetry feeds latency histograms
// and spans, so it pays for per-cell clock reads.
func (t *Telemetry) CellTiming() bool { return true }

// Registry returns the backing metrics registry (for /metrics).
func (t *Telemetry) Registry() *obs.Registry { return t.reg }

// Progress returns the progress reporter (for /progress).
func (t *Telemetry) Progress() *obs.Progress { return t.progress }

// EmitProgress turns on the throttled progress line: at most one line
// per interval is written to w as cells settle, plus a final
// unthrottled line at SweepEnd.
func (t *Telemetry) EmitProgress(w io.Writer, interval time.Duration) {
	t.progress.Interval = interval
	t.progressW = w
}

// cfgArgs renders a configuration into span args, shared by every
// span so traces key cleanly on kernel/config/attempt.
func cfgArgs(kernel string, cfg hw.Config) map[string]any {
	return map[string]any{
		"kernel":   kernel,
		"cus":      cfg.CUs,
		"core_mhz": cfg.CoreClockMHz,
		"mem_mhz":  cfg.MemClockMHz,
	}
}

// SweepStart implements Observer.
func (t *Telemetry) SweepStart(kernels, configs, skipped int) {
	t.sweepStart = time.Now()
	t.cells.Set(float64(kernels * configs))
	if skipped > 0 {
		t.doneSkipped.Add(uint64(skipped))
	}
	t.progress.SetTotal(uint64(kernels * configs))
	if t.tw != nil {
		t.tw.Instant("sweep.start", "sweep", 0, map[string]any{
			"kernels": kernels, "configs": configs, "skipped": skipped,
		})
	}
}

// CellAttempt implements Observer.
func (t *Telemetry) CellAttempt(row int, kernel string, cfg hw.Config, attempt int, d time.Duration, err error) {
	t.attempts.Inc()
	if attempt > 1 {
		t.retries.Inc()
	}
	if t.tw != nil {
		args := cfgArgs(kernel, cfg)
		args["attempt"] = attempt
		if err != nil {
			args["err"] = err.Error()
		}
		t.tw.Complete("attempt", "sweep", int64(row), time.Now().Add(-d), d, args)
	}
}

// CellDone implements Observer.
func (t *Telemetry) CellDone(row int, kernel string, cfg hw.Config, status CellStatus, attempts int, d time.Duration) {
	switch status {
	case StatusFailed:
		t.doneFailed.Inc()
	case StatusCanceled:
		t.doneCanceled.Inc()
	case StatusStalled:
		t.doneStalled.Inc()
	case StatusQuarantined:
		t.doneQuarantined.Inc()
	default:
		t.doneOK.Inc()
	}
	t.cellLatency.Observe(d.Seconds())
	if t.tw != nil {
		args := cfgArgs(kernel, cfg)
		args["status"] = status.String()
		args["attempts"] = attempts
		t.tw.Complete("cell", "sweep", int64(row), time.Now().Add(-d), d, args)
	}
	if t.progressW != nil {
		t.progress.MaybeEmit(t.progressW)
	}
}

// BreakerTripped implements Observer.
func (t *Telemetry) BreakerTripped(row int, kernel string, consecutive int) {
	t.breakerTrips.Inc()
	if t.tw != nil {
		t.tw.Instant("breaker", "sweep", int64(row), map[string]any{
			"kernel": kernel, "consecutive_failures": consecutive,
		})
	}
}

// RowQuarantined implements Observer: the whole batch lands on one
// status counter in a single add, with one trace instant instead of a
// per-cell span fan-out (no cell ran, so there is no latency to
// observe).
func (t *Telemetry) RowQuarantined(row int, kernel string, status CellStatus, cells int) {
	switch status {
	case StatusFailed:
		t.doneFailed.Add(uint64(cells))
	default:
		t.doneQuarantined.Add(uint64(cells))
	}
	if t.tw != nil {
		t.tw.Instant("row.quarantine", "sweep", int64(row), map[string]any{
			"kernel": kernel, "status": status.String(), "cells": cells,
		})
	}
	if t.progressW != nil {
		t.progress.MaybeEmit(t.progressW)
	}
}

// RowDone implements Observer.
func (t *Telemetry) RowDone(row int, kernel string, queueWait, d time.Duration) {
	t.rowsDone.Inc()
	t.queueWait.Observe(queueWait.Seconds())
	if t.tw != nil {
		t.tw.Complete("row", "sweep", int64(row), time.Now().Add(-d), d, map[string]any{
			"kernel": kernel, "queue_wait_us": float64(queueWait) / float64(time.Microsecond),
		})
	}
}

// SweepEnd implements Observer. Prepared-row counters are registered
// here rather than in NewTelemetry so sweeps on the legacy per-cell
// path don't export always-zero series.
func (t *Telemetry) SweepEnd(rep *RunReport) {
	if p := rep.Prepared; p.Rows > 0 {
		t.reg.Counter(MetricPreparedRows, "kernel rows evaluated via the prepared row path").Add(uint64(p.Rows))
		t.reg.Counter(MetricResidentSetMemoHits, "resident-set simulations served from a row memo").Add(uint64(p.ResidentSetHits))
		t.reg.Counter(MetricResidentSetMemoMisses, "resident-set simulations computed and memoized").Add(uint64(p.ResidentSetMisses))
		t.reg.Counter(MetricHitRateMemoHits, "hit-rate model evaluations served from a row memo").Add(uint64(p.HitRateHits))
		t.reg.Counter(MetricHitRateMemoMisses, "hit-rate model evaluations computed and memoized").Add(uint64(p.HitRateMisses))
	}
	if t.tw != nil {
		t.tw.Complete("sweep", "sweep", 0, t.sweepStart, rep.WallTime, map[string]any{
			"cells": rep.Cells, "ok": rep.OK, "failed": rep.Failed,
			"canceled": rep.Canceled, "stalled": rep.Stalled,
			"quarantined": rep.Quarantined, "skipped": rep.Skipped,
			"attempts": rep.Attempts, "retries": rep.Retries,
			"breaker_trips": rep.BreakerTrips,
		})
		t.tw.Flush()
	}
	if t.progressW != nil {
		t.progress.Emit(t.progressW)
	}
}

// JournalAppend records one journal checkpoint (not part of the
// Observer interface — journals are wired through Options.OnRow, so
// the CLI calls this from the same closure that appends the row).
func (t *Telemetry) JournalAppend(kernel string, d time.Duration, err error) {
	t.journalAppends.Inc()
	if err != nil {
		t.journalErrors.Inc()
	}
	if t.tw != nil {
		args := map[string]any{"kernel": kernel}
		if err != nil {
			args["err"] = err.Error()
		}
		t.tw.Complete("journal.append", "journal", 0, time.Now().Add(-d), d, args)
	}
}
