package sweep

// Journal merge: folding per-worker row journals back into one
// canonical matrix journal.
//
// A distributed sweep shards the kernel axis across workers, each of
// which keeps its own v2 journal of the rows it completed. The merge
// step reads those journals, checks the shards agree wherever they
// overlap (work-stealing can complete a row on two workers — the
// seeded noise stream makes both computations bit-identical, so any
// disagreement is a real bug, not jitter), and writes one journal
// with rows in a caller-chosen canonical order. Canonical ordering is
// what makes "byte-identical to a single-node run" checkable: a
// single-node journal appends rows in completion order, which worker
// scheduling perturbs, so both sides are compared through
// WriteCanonicalJournal.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"gpuscale/internal/hw"
)

// ReadJournal reads a v2 journal image without opening it for append:
// no truncation, no migration, no repair. Unlike OpenJournal it
// rejects a torn or corrupt tail instead of salvaging — the merge
// step must not silently drop rows a worker claims to have completed.
// Returns the recovered matrix, which is nil when the journal holds a
// space record but no rows.
func ReadJournal(path string, space hw.Space) (*Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: reading journal: %w", err)
	}
	m, good, reason, err := scanJournal(data, space)
	if err != nil {
		return nil, err
	}
	if good < int64(len(data)) {
		return nil, fmt.Errorf("sweep: journal %s: %s", path, reason)
	}
	if good == 0 {
		return nil, fmt.Errorf("sweep: journal %s: missing or torn header", path)
	}
	return m, nil
}

// MergeJournals folds the journals at srcs into one matrix. Every
// journal must be clean (see ReadJournal) and written for the same
// space. Rows appear in first-seen order; a kernel present in more
// than one journal must carry identical planes in each — exact
// float64 equality, which seeded noise guarantees for honest
// re-executions of the same row — or the merge fails rather than
// pick a side.
func MergeJournals(space hw.Space, srcs ...string) (*Matrix, error) {
	return MergeJournalsAttested(space, nil, srcs...)
}

// MergeJournalsAttested is MergeJournals under attestation: attest
// maps kernel names to the digests (RowDigest form) the coordinator
// recorded when it accepted each row. A journal row whose bytes hash
// to something other than its attested digest is refused with an
// error naming the journal, the kernel, its row position, and both
// digests — the signature of a worker whose journal disagrees with
// what it shipped over the wire, or of post-hoc file damage the CRC
// frame cannot see (the frame guards the bytes, the attestation
// guards the values). Kernels absent from attest merge unverified,
// so a nil map degrades to plain MergeJournals.
func MergeJournalsAttested(space hw.Space, attest map[string]string, srcs ...string) (*Matrix, error) {
	var merged *Matrix
	rows := map[string]int{}
	for _, src := range srcs {
		m, err := ReadJournal(src, space)
		if err != nil {
			return nil, err
		}
		if m == nil {
			continue
		}
		for r, k := range m.Kernels {
			if want, ok := attest[k]; ok {
				got, err := RowDigest(m, r)
				if err != nil {
					return nil, fmt.Errorf("sweep: merge: journal %s row %d (%s): %w", src, r, k, err)
				}
				if got != want {
					return nil, fmt.Errorf("sweep: merge: journal %s row %d (%s): digest %s does not match attested %s",
						src, r, k, got, want)
				}
			}
			ri, seen := rows[k]
			if seen {
				if c := rowsDiff(merged, ri, m, r); c >= 0 {
					return nil, fmt.Errorf("sweep: merge conflict: journal %s row %d disagrees on kernel %s at config %d",
						src, r, k, c)
				}
				continue
			}
			if merged == nil {
				merged = &Matrix{Space: space}
			}
			rows[k] = len(merged.Kernels)
			merged.Kernels = append(merged.Kernels, k)
			merged.Throughput = append(merged.Throughput, m.Throughput[r])
			merged.TimeNS = append(merged.TimeNS, m.TimeNS[r])
			merged.Bound = append(merged.Bound, m.Bound[r])
			merged.Status = append(merged.Status, m.Status[r])
		}
	}
	return merged, nil
}

// rowsDiff compares row a of ma against row b of mb cell by cell,
// returning the first disagreeing configuration index, or -1 when the
// rows are identical.
func rowsDiff(ma *Matrix, a int, mb *Matrix, b int) int {
	for c := 0; c < ma.Space.Size(); c++ {
		if ma.Throughput[a][c] != mb.Throughput[b][c] ||
			ma.TimeNS[a][c] != mb.TimeNS[b][c] ||
			ma.Bound[a][c] != mb.Bound[b][c] {
			return c
		}
	}
	return -1
}

// WriteCanonicalJournal writes m as a v2 journal at path with rows in
// the given kernel order — the byte-stable rendering two journals are
// compared through. Every named kernel must be present in m with a
// fully OK row. The file is replaced atomically (temp + fsync +
// rename), so a crash mid-write leaves either the old file or the new
// one, never a hybrid.
func WriteCanonicalJournal(path string, m *Matrix, order []string) error {
	buf, err := canonicalJournalBytes(m, order)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".merge*")
	if err != nil {
		return fmt.Errorf("sweep: writing canonical journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: writing canonical journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: writing canonical journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: writing canonical journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sweep: writing canonical journal: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// CanonicalJournalBytes renders m as v2 journal bytes with rows in
// the given kernel order, without touching disk — the comparison form
// for byte-identity assertions.
func CanonicalJournalBytes(m *Matrix, order []string) ([]byte, error) {
	return canonicalJournalBytes(m, order)
}

func canonicalJournalBytes(m *Matrix, order []string) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("sweep: canonical journal: nil matrix")
	}
	var buf bytes.Buffer
	buf.WriteString(journalMagic)
	framed, err := frameRecord(journalRecord{Space: &journalSpace{
		CUs:  m.Space.CUCounts,
		Core: m.Space.CoreClocksMHz,
		Mem:  m.Space.MemClocksMHz,
	}})
	if err != nil {
		return nil, err
	}
	buf.Write(framed)
	for _, k := range order {
		r := m.Row(k)
		if r < 0 {
			return nil, fmt.Errorf("sweep: canonical journal: kernel %s missing", k)
		}
		if !m.RowComplete(r) {
			return nil, fmt.Errorf("sweep: canonical journal: kernel %s row incomplete", k)
		}
		rec, err := rowRecord(m, r)
		if err != nil {
			return nil, err
		}
		buf.Write(rec)
	}
	return buf.Bytes(), nil
}
