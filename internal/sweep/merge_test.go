package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// sweepToJournal runs a clean journaled sweep of ks at the given seed
// and returns the journal path plus the finished matrix.
func sweepToJournal(t *testing.T, dir, name string, ks []*kernel.Kernel, space hw.Space, seed int64) (string, *Matrix) {
	t.Helper()
	path := filepath.Join(dir, name)
	j, err := OpenJournal(path, space)
	if err != nil {
		t.Fatal(err)
	}
	opts := journalOpts()
	opts.Seed = seed
	opts.OnRow = func(m *Matrix, r int) {
		if err := j.AppendRow(m, r); err != nil {
			t.Errorf("AppendRow: %v", err)
		}
	}
	m, rep, err := RunContext(context.Background(), ks, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("sweep incomplete: %s", rep.Summary())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, m
}

// TestMergeByteIdenticalToSingleNode is the distributed sweep's core
// invariant in miniature: three "workers" each sweep one kernel row
// with the per-row seed offset a dist worker uses (base seed + global
// row index), and the merged journal renders byte-identical to the
// single-node run's canonical journal.
func TestMergeByteIdenticalToSingleNode(t *testing.T) {
	space := tinySpace(t)
	ks := testKernels()
	dir := t.TempDir()
	const baseSeed = int64(9) // journalOpts seed

	_, single := sweepToJournal(t, dir, "single.journal", ks, space, baseSeed)

	var workerFiles []string
	for row, k := range ks {
		// A dist worker sweeps its leased kernel at local row 0, so the
		// global row's noise stream is recovered by offsetting the seed.
		p, _ := sweepToJournal(t, dir, k.Name+".journal", []*kernel.Kernel{k}, space, baseSeed+int64(row))
		workerFiles = append(workerFiles, p)
	}

	merged, err := MergeJournals(space, workerFiles...)
	if err != nil {
		t.Fatal(err)
	}
	order := single.Kernels
	want, err := CanonicalJournalBytes(single, order)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CanonicalJournalBytes(merged, order)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("merged journal differs from single-node canonical journal")
	}

	// And the on-disk form round-trips through ReadJournal.
	out := filepath.Join(dir, "merged.journal")
	if err := WriteCanonicalJournal(out, merged, order); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, onDisk) {
		t.Fatal("WriteCanonicalJournal bytes differ from CanonicalJournalBytes")
	}
	if _, err := ReadJournal(out, space); err != nil {
		t.Fatalf("merged journal does not re-read cleanly: %v", err)
	}
}

// TestMergeOverlapAgreement: a row completed by two workers (the
// steal-then-original-finishes shape) merges cleanly when the copies
// agree and fails loudly when they do not.
func TestMergeOverlapAgreement(t *testing.T) {
	space := tinySpace(t)
	ks := testKernels()[:1]
	dir := t.TempDir()

	pa, _ := sweepToJournal(t, dir, "a.journal", ks, space, 9)
	pb, _ := sweepToJournal(t, dir, "b.journal", ks, space, 9)
	m, err := MergeJournals(space, pa, pb)
	if err != nil {
		t.Fatalf("identical overlap should merge: %v", err)
	}
	if len(m.Kernels) != 1 {
		t.Fatalf("overlap should dedupe to one row, got %d", len(m.Kernels))
	}

	// Different seed → different noise → a disagreement the merge must
	// refuse to paper over.
	pc, _ := sweepToJournal(t, dir, "c.journal", ks, space, 10)
	if _, err := MergeJournals(space, pa, pc); err == nil || !strings.Contains(err.Error(), "merge conflict") {
		t.Fatalf("conflicting overlap should fail with a merge conflict, got %v", err)
	}
}

// TestReadJournalStrict: the merge-side reader rejects what OpenJournal
// would salvage — a torn tail means a worker's claim is unverifiable.
func TestReadJournalStrict(t *testing.T) {
	space := tinySpace(t)
	dir := t.TempDir()
	p, _ := sweepToJournal(t, dir, "w.journal", testKernels()[:1], space, 9)

	if _, err := ReadJournal(p, space); err != nil {
		t.Fatalf("clean journal should read: %v", err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, append(data, []byte("deadbeef 5 gar")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(p, space); err == nil {
		t.Fatal("torn tail should be rejected, not salvaged")
	}
	if _, err := ReadJournal(filepath.Join(dir, "missing.journal"), space); err == nil {
		t.Fatal("missing journal should error")
	}
}

func TestWriteCanonicalJournalValidation(t *testing.T) {
	space := tinySpace(t)
	dir := t.TempDir()
	_, m := sweepToJournal(t, dir, "w.journal", testKernels()[:2], space, 9)

	out := filepath.Join(dir, "out.journal")
	if err := WriteCanonicalJournal(out, m, []string{"s/p/nope"}); err == nil {
		t.Fatal("missing kernel should fail")
	}
	if _, err := CanonicalJournalBytes(nil, nil); err == nil {
		t.Fatal("nil matrix should fail")
	}
}
