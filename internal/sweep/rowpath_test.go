package sweep

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// Golden equivalence for the prepared row path: a sweep through
// Options.Row (or the Engine.Row default) must produce a matrix
// byte-identical to the legacy per-cell path — same throughput, time,
// bound and status planes — for every engine, with noise, under fault
// injection, and across resume. The CSV encoding covers all four
// planes, so comparing serialized bytes is the strictest cheap check.

func csvBytes(t *testing.T, m *Matrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lightKernels are small enough for the event-driven engines: the
// per-cell reference half of the equivalence runs O(instructions x
// waves) work per cell with no memoization, so the plumbing test keeps
// launches modest (engine-level equivalence at scale is gcn's job).
func lightKernels() []*kernel.Kernel {
	return []*kernel.Kernel{
		kernel.New("s", "p", "a").Geometry(48, 256).MustBuild(),
		kernel.New("s", "p", "b").Geometry(48, 256).Compute(2000, 100).MustBuild(),
		kernel.New("s", "p", "c").Geometry(16, 256).MustBuild(),
	}
}

func TestRowPathMatchesPerCellPathAllEngines(t *testing.T) {
	space := testSpace(t)
	for _, e := range []Engine{Round, Detailed, Wave, Pipeline} {
		ks := testKernels()
		seeds := []int64{0, 7}
		if e == Wave || e == Pipeline {
			ks = lightKernels()
		}
		if e == Pipeline {
			// A single per-cell pipeline evaluation costs ~40ms of
			// unmemoized cycle simulation; one noisy seed over two
			// kernels proves the plumbing without a minute of runtime.
			ks, seeds = ks[:2], seeds[1:]
		}
		t.Run(e.String(), func(t *testing.T) {
			for _, seed := range seeds {
				var noise float64
				if seed != 0 {
					noise = 0.05
				}
				perCell, _, err := RunContext(context.Background(), ks, space,
					Options{Engine: e, Sim: e.Func(), NoiseStdDev: noise, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				prepared, rep, err := RunContext(context.Background(), ks, space,
					Options{Engine: e, NoiseStdDev: noise, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if a, b := csvBytes(t, perCell), csvBytes(t, prepared); !bytes.Equal(a, b) {
					t.Fatalf("engine %s seed %d: prepared-path matrix differs from per-cell path", e, seed)
				}
				if rep.Prepared.Rows != len(ks) {
					t.Fatalf("prepared rows = %d, want %d", rep.Prepared.Rows, len(ks))
				}
				// The batched round path derives hit rates per CU block
				// (a handful per row) rather than per cell, so hit counts
				// are path-dependent; the memo being exercised at all is
				// the invariant.
				if rep.Prepared.HitRateHits+rep.Prepared.HitRateMisses == 0 {
					t.Fatalf("prepared path never touched the hit-rate memo: %+v", rep.Prepared)
				}
			}
		})
	}
}

func TestRowPathFaultEquivalence(t *testing.T) {
	space := testSpace(t)
	model := fault.Injector{ErrorRate: 0.2, CorruptRate: 0.1, PanicRate: 0.05, Seed: 3}
	base := Options{Retries: 2, Breaker: 4}

	perOpts := base
	perOpts.Sim = model.Wrap(Round.Func())
	perCell, perRep, err := RunContext(context.Background(), testKernels(), space, perOpts)
	if err != nil {
		t.Fatal(err)
	}

	rowOpts := base
	rowOpts.Row = model.WrapRow(Round.Row())
	prepared, rowRep, err := RunContext(context.Background(), testKernels(), space, rowOpts)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := csvBytes(t, perCell), csvBytes(t, prepared); !bytes.Equal(a, b) {
		t.Fatal("fault-injected prepared path differs from fault-injected per-cell path")
	}
	if perRep.OK != rowRep.OK || perRep.Failed != rowRep.Failed ||
		perRep.Attempts != rowRep.Attempts || perRep.Retries != rowRep.Retries {
		t.Fatalf("fault accounting diverged: per-cell %+v vs row %+v", perRep, rowRep)
	}
	if perRep.Failed == 0 || perRep.Retries == 0 {
		t.Fatalf("fault storm too quiet to prove anything: %+v", perRep)
	}
}

func TestRowPathResumeEquivalence(t *testing.T) {
	space := testSpace(t)
	clean, _, err := RunContext(context.Background(), testKernels(), space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First pass: the middle kernel always fails, leaving its row
	// incomplete.
	failName := testKernels()[1].Name
	failB := func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
		if k.Name == failName {
			return gcn.Result{}, fault.ErrInjected
		}
		return gcn.Simulate(k, cfg)
	}
	partial, _, err := RunContext(context.Background(), testKernels(), space, Options{Sim: failB})
	if err != nil {
		t.Fatal(err)
	}
	// Resume on the default prepared path recomputes only row "b".
	resumed, rep, err := Resume(context.Background(), testKernels(), space, Options{}, partial)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 2*space.Size() {
		t.Fatalf("resume skipped %d cells, want %d", rep.Skipped, 2*space.Size())
	}
	if rep.Prepared.Rows != 1 {
		t.Fatalf("resume prepared %d rows, want 1", rep.Prepared.Rows)
	}
	if a, b := csvBytes(t, clean), csvBytes(t, resumed); !bytes.Equal(a, b) {
		t.Fatal("resumed prepared-path matrix differs from clean run")
	}
}

func TestPrepareFailureSettlesRowOnce(t *testing.T) {
	space := testSpace(t)
	bad := kernel.New("s", "p", "huge").Geometry(16, 1024).MustBuild()
	bad.SGPRsPerWave = 512 // passes Validate, fits on no CU
	ks := []*kernel.Kernel{testKernels()[0], bad}
	m, rep, err := RunContext(context.Background(), ks, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.Failed != space.Size() {
		t.Fatalf("failed = %d, want the whole row (%d)", rep.Failed, space.Size())
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("%d failure records for a row-level condition, want 1", len(rep.Failures))
	}
	if !strings.Contains(rep.Failures[0].Err.Error(), "prepare failed for whole row") {
		t.Fatalf("failure record %v does not name the prepare step", rep.Failures[0].Err)
	}
	for c := range m.Status[1] {
		if m.Status[1][c] != StatusFailed {
			t.Fatalf("cell %d status = %v, want failed", c, m.Status[1][c])
		}
		if m.Throughput[1][c] != 0 || m.TimeNS[1][c] != 0 {
			t.Fatalf("failed cell %d holds data", c)
		}
	}
}

// rowQuarantineRecorder captures the batched row-settlement events.
type rowQuarantineRecorder struct {
	NopObserver
	events   atomic.Int64
	cells    atomic.Int64
	cellDone atomic.Int64 // CellDone calls with StatusQuarantined
}

func (r *rowQuarantineRecorder) RowQuarantined(row int, kernel string, status CellStatus, cells int) {
	r.events.Add(1)
	r.cells.Add(int64(cells))
}

func (r *rowQuarantineRecorder) CellDone(row int, kernel string, cfg hw.Config, status CellStatus, attempts int, d time.Duration) {
	if status == StatusQuarantined {
		r.cellDone.Add(1)
	}
}

func TestRowQuarantinedReplacesPerCellEvents(t *testing.T) {
	space := testSpace(t)
	alwaysFail := func(*kernel.Kernel, hw.Config) (gcn.Result, error) {
		return gcn.Result{}, fault.ErrInjected
	}
	rec := &rowQuarantineRecorder{}
	// Breaker trips after 2 failures per row; with QuarantineAfter 1
	// and a single worker, later rows are quarantined wholesale.
	_, rep, err := RunContext(context.Background(), testKernels(), space, Options{
		Sim: alwaysFail, Breaker: 2, QuarantineAfter: 1, Workers: 1, Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.Quarantined == 0 {
		t.Fatal("scenario quarantined nothing; test proves nothing")
	}
	if got := rec.cellDone.Load(); got != 0 {
		t.Fatalf("%d per-cell CellDone events for quarantined cells, want 0 (batched)", got)
	}
	if got := rec.cells.Load(); got != int64(rep.Quarantined) {
		t.Fatalf("RowQuarantined events cover %d cells, report says %d", got, rep.Quarantined)
	}
	// One event per settled row or remainder — never per cell.
	if ev := rec.events.Load(); ev == 0 || ev > int64(len(testKernels())) {
		t.Fatalf("%d RowQuarantined events for %d rows", ev, len(testKernels()))
	}
}

func TestSweepValidatesConfigAxisUpfront(t *testing.T) {
	bad := hw.Space{CUCounts: []int{0}, CoreClocksMHz: []float64{1000}, MemClocksMHz: []float64{1250}}
	_, _, err := RunContext(context.Background(), testKernels(), bad, Options{})
	if err == nil {
		t.Fatal("invalid config axis accepted")
	}
	if !strings.Contains(err.Error(), "config 1 of 1") {
		t.Fatalf("error %q does not position the bad config", err)
	}
}

// slowFirstEvalEngine wraps the round row engine but blocks the first
// Eval long enough for the supervisor to abandon it. done is closed
// when that abandoned call finally returns, so tests can wait for the
// orphaned goroutine deterministically instead of sleeping.
type slowFirstEvalEngine struct {
	stall time.Duration
	fired atomic.Bool
	done  chan struct{}
}

func newSlowFirstEvalEngine(stall time.Duration) *slowFirstEvalEngine {
	return &slowFirstEvalEngine{stall: stall, done: make(chan struct{})}
}

func (e *slowFirstEvalEngine) PrepareRow(k *kernel.Kernel) (gcn.PreparedRow, error) {
	pr, err := gcn.RoundRow.PrepareRow(k)
	if err != nil {
		return nil, err
	}
	return &slowFirstEvalRow{e: e, pr: pr}, nil
}

type slowFirstEvalRow struct {
	e  *slowFirstEvalEngine
	pr gcn.PreparedRow
}

func (r *slowFirstEvalRow) Eval(cfg hw.Config) (gcn.Result, error) {
	if r.e.fired.CompareAndSwap(false, true) {
		defer close(r.e.done)
		time.Sleep(r.e.stall)
	}
	return r.pr.Eval(cfg)
}

func (r *slowFirstEvalRow) Stats() gcn.PreparedStats { return r.pr.Stats() }

func TestAbandonedEvalPoisonsRowAndFallsBack(t *testing.T) {
	space := testSpace(t)
	ks := testKernels()[:1]
	re := newSlowFirstEvalEngine(300 * time.Millisecond)
	m, rep, err := RunContext(context.Background(), ks, space, Options{
		Row:        re,
		SimTimeout: 20 * time.Millisecond,
		Retries:    1,
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	// The timed-out attempt was abandoned; its retry — and every later
	// cell — must go through the per-cell fallback and still succeed.
	if rep.OK != space.Size() {
		t.Fatalf("ok = %d, want %d (%+v)", rep.OK, space.Size(), rep)
	}
	if rep.Prepared.Rows != 1 || rep.Prepared.Abandoned != 1 {
		t.Fatalf("prepared totals %+v, want 1 row abandoned", rep.Prepared)
	}
	clean, _, err := RunContext(context.Background(), ks, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBytes(t, clean), csvBytes(t, m)) {
		t.Fatal("poisoned-row fallback produced a different matrix")
	}
	// Wait for the abandoned goroutine's actual completion — not a
	// "give it time" sleep, which flakes under -race on slow runners —
	// so the race detector sees the full interleaving before the test
	// (and its shared prepared-row scratch) goes away.
	select {
	case <-re.done:
	case <-time.After(10 * time.Second):
		t.Fatal("abandoned engine call never completed")
	}
}

func TestTelemetryPublishesPreparedCounters(t *testing.T) {
	space := testSpace(t)
	tel := NewTelemetry(nil, nil)
	_, rep, err := RunContext(context.Background(), testKernels(), space, Options{Observer: tel})
	if err != nil {
		t.Fatal(err)
	}
	reg := tel.Registry()
	if got := reg.Counter(MetricPreparedRows, "").Value(); got != uint64(rep.Prepared.Rows) {
		t.Fatalf("prepared rows counter = %d, report %d", got, rep.Prepared.Rows)
	}
	if got := reg.Counter(MetricHitRateMemoHits, "").Value(); got != uint64(rep.Prepared.HitRateHits) {
		t.Fatalf("hit-rate memo hits counter = %d, report %d", got, rep.Prepared.HitRateHits)
	}
	if got := reg.Counter(MetricResidentSetMemoMisses, "").Value(); got != uint64(rep.Prepared.ResidentSetMisses) {
		t.Fatalf("resident-set memo misses counter = %d, report %d", got, rep.Prepared.ResidentSetMisses)
	}
}
