// Package sweep executes kernel x configuration grids in parallel and
// stores the resulting performance matrices — the data-collection
// harness that stands in for the paper's weeks of hardware runs.
package sweep

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// Engine selects the simulator fidelity used for a sweep.
type Engine int

const (
	// Round uses the fast batch-steady-state engine (default).
	Round Engine = iota
	// Detailed uses the continuous-dispatch quantum engine.
	Detailed
	// Wave uses the wavefront-level event engine (slowest; only for
	// small spaces or validation runs).
	Wave
)

// Options configures a sweep run.
type Options struct {
	// Workers is the parallel worker count; <= 0 uses GOMAXPROCS.
	Workers int
	// Engine selects the simulator fidelity.
	Engine Engine
	// NoiseStdDev, when positive, multiplies every measured throughput
	// by a lognormal-ish factor (1 + N(0, stddev)) to emulate run-to-
	// run measurement noise for robustness experiments.
	NoiseStdDev float64
	// Seed drives the noise generator; ignored when NoiseStdDev is 0.
	Seed int64
}

// Matrix holds the sweep results: one throughput row per kernel, one
// column per configuration in Space.Configs() order.
type Matrix struct {
	// Space is the configuration grid the columns index into.
	Space hw.Space
	// Kernels are the row names, in input order.
	Kernels []string
	// Throughput[r][c] is work-items/ns of kernel r on configuration c.
	Throughput [][]float64
	// TimeNS[r][c] is the corresponding invocation time.
	TimeNS [][]float64
	// Bound[r][c] is the dominant bound reported by the engine.
	Bound [][]gcn.Bound
}

// Row returns the row index of a kernel name, or -1.
func (m *Matrix) Row(name string) int {
	for i, k := range m.Kernels {
		if k == name {
			return i
		}
	}
	return -1
}

// Run sweeps every kernel over every configuration of the space.
// Kernels are distributed over a worker pool; each worker owns whole
// rows so the output needs no locking. Any simulation error aborts the
// sweep.
func Run(kernels []*kernel.Kernel, space hw.Space, opts Options) (*Matrix, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("sweep: no kernels")
	}
	configs := space.Configs()
	if len(configs) == 0 {
		return nil, fmt.Errorf("sweep: empty configuration space")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	m := &Matrix{
		Space:      space,
		Kernels:    make([]string, len(kernels)),
		Throughput: make([][]float64, len(kernels)),
		TimeNS:     make([][]float64, len(kernels)),
		Bound:      make([][]gcn.Bound, len(kernels)),
	}
	for i, k := range kernels {
		m.Kernels[i] = k.Name
	}

	sim := gcn.Simulate
	switch opts.Engine {
	case Detailed:
		sim = gcn.SimulateDetailed
	case Wave:
		sim = gcn.SimulateWave
	}

	type job struct{ row int }
	jobs := make(chan job)
	errs := make(chan error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := range jobs {
				if failed.Load() {
					continue // drain remaining jobs after a failure
				}
				k := kernels[j.row]
				tput := make([]float64, len(configs))
				times := make([]float64, len(configs))
				bounds := make([]gcn.Bound, len(configs))
				// Per-row noise stream keeps results independent of
				// worker scheduling.
				var rng *rand.Rand
				if opts.NoiseStdDev > 0 {
					rng = rand.New(rand.NewSource(opts.Seed + int64(j.row)))
				}
				aborted := false
				for c, cfg := range configs {
					r, err := sim(k, cfg)
					if err != nil {
						failed.Store(true)
						select {
						case errs <- fmt.Errorf("sweep: %s @ %v: %w", k.Name, cfg, err):
						default:
						}
						aborted = true
						break
					}
					t := r.Throughput
					if rng != nil {
						f := 1 + rng.NormFloat64()*opts.NoiseStdDev
						if f < 0.05 {
							f = 0.05
						}
						t *= f
					}
					tput[c] = t
					times[c] = r.TimeNS
					bounds[c] = r.Bound
				}
				if aborted {
					continue
				}
				m.Throughput[j.row] = tput
				m.TimeNS[j.row] = times
				m.Bound[j.row] = bounds
			}
		}(w)
	}
	for row := range kernels {
		jobs <- job{row: row}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return m, nil
}

// Runs returns the total simulations a sweep of this shape performs.
func Runs(kernels, configs int) int { return kernels * configs }
