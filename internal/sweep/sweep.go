// Package sweep executes kernel x configuration grids in parallel and
// stores the resulting performance matrices — the data-collection
// harness that stands in for the paper's weeks of hardware runs.
//
// Real measurement campaigns are flaky: individual runs hang, die, or
// return garbage. The runtime therefore treats every cell as fallible:
// it validates results, retries transient failures with capped
// exponential backoff, bounds each simulation with a timeout, honours
// context cancellation, and — instead of aborting the whole sweep —
// records a per-cell Status so partial matrices are first-class and a
// later Resume can fill in only the missing rows.
//
// The executor is additionally crash-only: a panicking engine is
// isolated per cell (the panic becomes a CellFailure with a captured
// stack), a stall watchdog abandons engine calls that ignore context
// cancellation past Options.StallGrace, and a per-kernel circuit
// breaker quarantines the rest of a row after Options.Breaker
// consecutive hard failures instead of burning retry budgets on a
// kernel that is clearly down.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// Engine selects the simulator fidelity used for a sweep.
type Engine int

const (
	// Round uses the fast batch-steady-state engine (default).
	Round Engine = iota
	// Detailed uses the continuous-dispatch quantum engine.
	Detailed
	// Wave uses the wavefront-level event engine (slowest; only for
	// small spaces or validation runs).
	Wave
	// Pipeline uses the execution-driven cycle-level engine. Only
	// practical for sweeps through the prepared row path, where the
	// resident-set memo collapses most of a row onto a few cycle
	// simulations.
	Pipeline
)

var engineNames = [...]string{"round", "detailed", "wave", "pipeline"}

// String returns the engine's lower-case CLI name.
func (e Engine) String() string {
	if e < 0 || int(e) >= len(engineNames) {
		return fmt.Sprintf("engine(%d)", int(e))
	}
	return engineNames[e]
}

// ParseEngine inverts String.
func ParseEngine(s string) (Engine, error) {
	for i, n := range engineNames {
		if n == s {
			return Engine(i), nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown engine %q (want round, detailed, wave or pipeline)", s)
}

// Func returns the engine's per-cell simulator function.
func (e Engine) Func() gcn.EngineFunc {
	switch e {
	case Detailed:
		return gcn.SimulateDetailed
	case Wave:
		return gcn.SimulateWave
	case Pipeline:
		return gcn.SimulatePipeline
	default:
		return gcn.Simulate
	}
}

// Row returns the engine's row-granular form: one Prepare per kernel,
// then per-configuration evaluations sharing memoized state.
func (e Engine) Row() gcn.RowEngine {
	switch e {
	case Detailed:
		return gcn.DetailedRow
	case Wave:
		return gcn.WaveRow
	case Pipeline:
		return gcn.PipelineRow
	default:
		return gcn.RoundRow
	}
}

// ErrCorruptResult marks a simulation that returned an unusable value
// (NaN, infinite or non-positive throughput or time). It is treated as
// a transient measurement fault and retried like an error.
var ErrCorruptResult = errors.New("sweep: corrupt result")

// ErrSimTimeout marks a simulation that exceeded Options.SimTimeout.
var ErrSimTimeout = errors.New("sweep: simulation timed out")

// ErrEnginePanic marks a simulator invocation that panicked. The panic
// is confined to its cell: the wrapped error carries the panic value
// and the captured stack, the cell is marked StatusFailed without
// retry (a panicking engine is deterministic breakage, not flakiness),
// and the sweep continues.
var ErrEnginePanic = errors.New("sweep: engine panicked")

// ErrStalled marks an engine call that kept running past context
// cancellation plus Options.StallGrace. The call's goroutine is
// abandoned (Go cannot kill it) and the cell is marked StatusStalled
// so the row settles instead of hanging the sweep.
var ErrStalled = errors.New("sweep: engine ignored cancellation")

// Options configures a sweep run.
type Options struct {
	// Workers is the parallel worker count; <= 0 uses GOMAXPROCS.
	Workers int
	// Engine selects the simulator fidelity.
	Engine Engine
	// Sim, when non-nil, overrides Engine with an arbitrary per-cell
	// simulator function — the seam where fault injection and custom
	// engines plug in. Setting Sim alone forces the legacy per-cell
	// path for every cell.
	Sim gcn.EngineFunc
	// Row, when non-nil, overrides Engine with a row-granular engine:
	// each kernel row is prepared once (validation, lowering, derived
	// state) and then evaluated per configuration with shared memoized
	// state. When neither Sim nor Row is set the sweep defaults to
	// Engine.Row() — the prepared path — with gcn.PerCell(Row) as the
	// per-cell fallback used after an abandoned engine call (timeout
	// or stall) poisons a row's shared scratch. When both are set, Row
	// drives the cells and Sim is the fallback. Retry, fault,
	// breaker, observer and journal semantics are identical on both
	// paths.
	Row gcn.RowEngine
	// DisableBatch forces per-cell evaluation even when the row engine
	// implements gcn.BatchRow. By default a prepared row that supports
	// batching evaluates the whole config axis in one EvalBatch call
	// (results are bit-identical; per-cell faults, retries, status and
	// observer events are preserved), which amortizes the per-cell call
	// overhead across the row. Batching is automatically skipped when
	// SimTimeout or StallGrace is set: supervision needs one goroutine
	// per engine invocation, which is exactly the per-cell shape.
	DisableBatch bool
	// NoiseStdDev, when positive, multiplies every measured throughput
	// by a lognormal factor exp(N(0, stddev)) to emulate run-to-run
	// measurement noise for robustness experiments. The factor's
	// median is exactly 1, so the noise does not bias the mean the way
	// a clamped 1+N(0,sigma) factor does.
	NoiseStdDev float64
	// Seed drives the noise generator; ignored when NoiseStdDev is 0.
	Seed int64
	// Retries is the number of extra attempts per cell after a failed
	// or corrupt simulation. 0 means every fault is final.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per
	// retry up to MaxBackoff. Zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff; defaults to 100 ms
	// when Backoff is set.
	MaxBackoff time.Duration
	// SimTimeout bounds each simulator invocation; expiry counts as a
	// retryable fault. Zero means no bound. The expired invocation's
	// goroutine is abandoned and finishes in the background (Go
	// cannot kill it), so pair timeouts with engines that eventually
	// return.
	SimTimeout time.Duration
	// StallGrace arms the stall watchdog: once the sweep's context is
	// canceled, an in-flight engine call gets this long to return
	// before it is abandoned and its cell marked StatusStalled. Zero
	// disables the watchdog (a canceled in-flight call is abandoned
	// immediately and its cell marked StatusCanceled, the historical
	// behaviour). Like SimTimeout, arming it moves each invocation
	// onto a supervising goroutine.
	StallGrace time.Duration
	// Breaker is the per-kernel circuit breaker: after this many
	// consecutive hard failures (failed or stalled cells) within one
	// kernel row, the row's remaining cells are marked
	// StatusQuarantined without invoking the engine, so one
	// pathologically broken kernel cannot burn the whole retry budget.
	// 0 disables the breaker. Quarantined rows are incomplete, so a
	// later Resume recomputes them.
	Breaker int
	// QuarantineAfter is the sweep-level emergency brake: once this
	// many kernel rows have tripped their circuit breaker, every row
	// not yet started is quarantined wholesale — the failure is
	// systemic (broken engine, dead rig), not per-kernel. 0 disables.
	// Which rows are spared depends on worker scheduling; rerun with
	// Resume after fixing the rig to fill them in.
	QuarantineAfter int
	// OnRow, when non-nil, is called as each kernel row reaches a
	// terminal state, from worker goroutines — it must be safe for
	// concurrent use and should only read row r of m. Journals hook
	// in here to checkpoint completed rows.
	OnRow func(m *Matrix, r int)
	// Observer, when non-nil, receives runtime telemetry events
	// (sweep/cell/attempt lifecycle) from worker goroutines; see the
	// Observer interface. It is a read-only tap: results are
	// byte-identical with or without one. nil disables all
	// instrumentation at the cost of one branch per event site.
	Observer Observer
}

// CellStatus records the terminal state of one matrix cell.
type CellStatus uint8

const (
	// StatusOK marks a validated measurement.
	StatusOK CellStatus = iota
	// StatusFailed marks a cell whose attempts were exhausted by
	// errors or corrupt results.
	StatusFailed
	// StatusCanceled marks a cell abandoned because the sweep's
	// context ended before it could run.
	StatusCanceled
	// StatusStalled marks a cell whose engine call ignored context
	// cancellation past Options.StallGrace and was abandoned by the
	// watchdog.
	StatusStalled
	// StatusQuarantined marks a cell skipped by the circuit breaker
	// after too many consecutive hard failures in its kernel row; the
	// engine was never invoked for it.
	StatusQuarantined
)

var statusNames = [...]string{"ok", "failed", "canceled", "stalled", "quarantined"}

// String returns the status's lower-case name.
func (s CellStatus) String() string {
	if int(s) >= len(statusNames) {
		return fmt.Sprintf("status(%d)", int(s))
	}
	return statusNames[s]
}

// ParseStatus inverts String.
func ParseStatus(s string) (CellStatus, error) {
	for i, n := range statusNames {
		if n == s {
			return CellStatus(i), nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown cell status %q", s)
}

// Matrix holds the sweep results: one throughput row per kernel, one
// column per configuration in Space.Configs() order.
type Matrix struct {
	// Space is the configuration grid the columns index into.
	Space hw.Space
	// Kernels are the row names, in input order.
	Kernels []string
	// Throughput[r][c] is work-items/ns of kernel r on configuration c.
	// Cells whose Status is not StatusOK hold 0.
	Throughput [][]float64
	// TimeNS[r][c] is the corresponding invocation time.
	TimeNS [][]float64
	// Bound[r][c] is the dominant bound reported by the engine.
	Bound [][]gcn.Bound
	// Status[r][c] is the cell's terminal state. A nil Status (legacy
	// producers) means every cell is StatusOK.
	Status [][]CellStatus

	rowOnce sync.Once
	rowIdx  map[string]int
}

// Row returns the row index of a kernel name, or -1. The lookup map is
// built lazily on first use (and is safe for concurrent callers), so
// per-cell lookups over the 267-kernel corpus cost O(1) instead of a
// linear scan per call. Rows appended after the first lookup are not
// visible; treat a Matrix as immutable once handed to readers.
func (m *Matrix) Row(name string) int {
	m.rowOnce.Do(func() {
		m.rowIdx = make(map[string]int, len(m.Kernels))
		for i, k := range m.Kernels {
			if _, dup := m.rowIdx[k]; !dup {
				m.rowIdx[k] = i
			}
		}
	})
	if i, ok := m.rowIdx[name]; ok {
		return i
	}
	return -1
}

// CellOK reports whether cell (r, c) holds a validated measurement.
func (m *Matrix) CellOK(r, c int) bool {
	return m.Status == nil || m.Status[r] == nil || m.Status[r][c] == StatusOK
}

// RowComplete reports whether every cell of row r is StatusOK.
func (m *Matrix) RowComplete(r int) bool {
	if m.Status == nil || m.Status[r] == nil {
		return true
	}
	for _, s := range m.Status[r] {
		if s != StatusOK {
			return false
		}
	}
	return true
}

// Coverage returns the fraction of cells holding validated
// measurements (1 for a fault-free matrix).
func (m *Matrix) Coverage() float64 {
	if len(m.Kernels) == 0 {
		return 0
	}
	total, ok := 0, 0
	for r := range m.Kernels {
		for c := range m.Throughput[r] {
			total++
			if m.CellOK(r, c) {
				ok++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// CellFailure identifies one cell that exhausted its attempts.
type CellFailure struct {
	// Kernel is the row's kernel name.
	Kernel string
	// Config is the failing configuration.
	Config hw.Config
	// Attempts is how many simulator invocations the cell consumed.
	Attempts int
	// Err is the last attempt's error.
	Err error
}

func (f CellFailure) String() string {
	return fmt.Sprintf("%s @ cu=%d core=%g mem=%g after %d attempt(s): %v",
		f.Kernel, f.Config.CUs, f.Config.CoreClockMHz, f.Config.MemClockMHz, f.Attempts, f.Err)
}

// RunReport accounts for every cell of a sweep: how many succeeded,
// failed or were abandoned, and how much work (attempts, retries) the
// run spent. Partial matrices always travel with a report.
type RunReport struct {
	// Kernels and Configs give the sweep shape.
	Kernels, Configs int
	// Cells is Kernels * Configs.
	Cells int
	// OK, Failed, Canceled, Stalled and Quarantined partition the
	// cells this run attempted; Skipped counts cells reused from a
	// prior matrix by Resume. OK + Failed + Canceled + Stalled +
	// Quarantined + Skipped == Cells.
	OK, Failed, Canceled, Stalled, Quarantined, Skipped int
	// Attempts is the total simulator invocations; Retries is the
	// portion beyond each cell's first attempt.
	Attempts, Retries int
	// BreakerTrips counts kernel rows whose circuit breaker opened
	// (Options.Breaker consecutive hard failures).
	BreakerTrips int
	// Prepared aggregates row-engine memoization across the sweep; its
	// Rows field is zero when the sweep ran purely per-cell.
	Prepared PreparedTotals
	// Failures lists each failed or stalled cell with its final error.
	// A row whose preparation failed contributes a single record
	// covering every cell in the row (the engine never ran per cell, so
	// there is only one error to report), so len(Failures) can be
	// smaller than Failed+Stalled but is never zero when they are not.
	Failures []CellFailure
	// WallTime is the end-to-end sweep duration.
	WallTime time.Duration
}

// PreparedTotals sums gcn.PreparedStats over every prepared row of a
// sweep.
type PreparedTotals struct {
	// Rows is how many kernel rows ran through the prepared path.
	Rows int
	// Abandoned is how many of those rows fell back to the per-cell
	// engine after an abandoned (timed-out or stalled) call poisoned
	// the row's shared scratch. Their memo counters are not collected
	// (the abandoned call may still be mutating them).
	Abandoned int
	// ResidentSetHits/Misses count resident-set cycle simulations
	// served from / added to the per-kernel memo.
	ResidentSetHits, ResidentSetMisses int
	// HitRateHits/Misses count cache hit-rate estimates served from /
	// added to the per-kernel memo.
	HitRateHits, HitRateMisses int
	// BatchedRows counts rows whose first attempts ran through one
	// EvalBatch call over the whole config axis.
	BatchedRows int
	// BatchFallbackCells counts per-cell engine invocations that a
	// batching row still needed: retries of batched cells whose first
	// attempt faulted, plus every cell of a row whose batch call failed
	// at the row level.
	BatchFallbackCells int
}

// Complete reports whether every cell holds a validated measurement.
func (r *RunReport) Complete() bool {
	return r.Failed == 0 && r.Canceled == 0 && r.Stalled == 0 && r.Quarantined == 0
}

// Summary renders a one-line accounting suitable for CLI output.
func (r *RunReport) Summary() string {
	s := fmt.Sprintf("%d cells: %d ok, %d failed, %d canceled, %d stalled, %d quarantined, %d reused (%d attempts, %d retries) in %v",
		r.Cells, r.OK, r.Failed, r.Canceled, r.Stalled, r.Quarantined, r.Skipped,
		r.Attempts, r.Retries, r.WallTime.Round(time.Millisecond))
	if r.BreakerTrips > 0 {
		s += fmt.Sprintf("; %d breaker trip(s)", r.BreakerTrips)
	}
	return s
}

// Run sweeps every kernel over every configuration of the space with
// background context and strict semantics: any cell that fails after
// retries turns the whole sweep into an error, matching the historical
// abort-on-error contract. Use RunContext for graceful degradation.
func Run(kernels []*kernel.Kernel, space hw.Space, opts Options) (*Matrix, error) {
	m, rep, err := RunContext(context.Background(), kernels, space, opts)
	if err != nil {
		return nil, err
	}
	if rep.Failed > 0 {
		return nil, fmt.Errorf("sweep: %d/%d cells failed; first: %s",
			rep.Failed, rep.Cells, rep.Failures[0])
	}
	return m, nil
}

// RunContext sweeps every kernel over every configuration, tolerating
// per-cell failures. Kernels are distributed over a worker pool; each
// worker owns whole rows so the output needs no locking. Failed cells
// are marked in the matrix's Status plane rather than aborting the
// sweep, and the report accounts for every cell. The error is non-nil
// only for unusable input or a canceled context; in the latter case
// the partial matrix and report are still returned.
func RunContext(ctx context.Context, kernels []*kernel.Kernel, space hw.Space, opts Options) (*Matrix, *RunReport, error) {
	return resume(ctx, kernels, space, opts, nil)
}

// Resume completes a partial sweep: rows of prior whose every cell is
// StatusOK are copied into the result verbatim (and counted as Skipped
// in the report); all other rows are recomputed. prior may be nil or
// cover any subset of kernels — rows are matched by kernel name, so
// the corpus may have grown or shrunk between runs.
func Resume(ctx context.Context, kernels []*kernel.Kernel, space hw.Space, opts Options, prior *Matrix) (*Matrix, *RunReport, error) {
	return resume(ctx, kernels, space, opts, prior)
}

func resume(ctx context.Context, kernels []*kernel.Kernel, space hw.Space, opts Options, prior *Matrix) (*Matrix, *RunReport, error) {
	if len(kernels) == 0 {
		return nil, nil, fmt.Errorf("sweep: no kernels")
	}
	configs := gridConfigs(space)
	if len(configs) == 0 {
		return nil, nil, fmt.Errorf("sweep: empty configuration space")
	}
	// Validate the configuration axis once, up front, with a
	// positional error — the engines' Eval methods skip the per-cell
	// re-check, so a bad config must never reach the workers.
	// Config.Validate is a conjunction of per-axis range checks with no
	// cross-field terms, so validating each axis value once decides the
	// whole grid; only when an axis value is bad does the per-config
	// loop run, to produce the same positional error it always has.
	if !space.AxesValid() {
		for i, cfg := range configs {
			if err := cfg.Validate(); err != nil {
				return nil, nil, fmt.Errorf("sweep: config %d of %d (cu=%d core=%g mem=%g): %w",
					i+1, len(configs), cfg.CUs, cfg.CoreClockMHz, cfg.MemClockMHz, err)
			}
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	m := &Matrix{
		Space:      space,
		Kernels:    make([]string, len(kernels)),
		Throughput: make([][]float64, len(kernels)),
		TimeNS:     make([][]float64, len(kernels)),
		Bound:      make([][]gcn.Bound, len(kernels)),
		Status:     make([][]CellStatus, len(kernels)),
	}
	for i, k := range kernels {
		m.Kernels[i] = k.Name
	}
	rep := &RunReport{Kernels: len(kernels), Configs: len(configs), Cells: len(kernels) * len(configs)}

	// Reuse complete rows from the prior matrix before spinning up
	// workers, so resumed sweeps only pay for the holes.
	done := make([]bool, len(kernels))
	if prior != nil {
		for i, k := range kernels {
			pr := prior.Row(k.Name)
			if pr < 0 || len(prior.Throughput[pr]) != len(configs) || !prior.RowComplete(pr) {
				continue
			}
			m.Throughput[i] = prior.Throughput[pr]
			m.TimeNS[i] = prior.TimeNS[pr]
			m.Bound[i] = prior.Bound[pr]
			m.Status[i] = okRow(len(configs))
			done[i] = true
			rep.Skipped += len(configs)
		}
	}

	// Engine selection: the prepared row path is the default; an
	// explicit Sim without a Row keeps the legacy per-cell path. With
	// a row engine, the per-cell fallback is its own PerCell adapter
	// so wrappers (fault injection) see one decision stream on both
	// paths.
	re := opts.Row
	sim := opts.Sim
	if sim == nil && re == nil {
		re = opts.Engine.Row()
	}
	if sim == nil {
		sim = gcn.PerCell(re)
	}
	o := opts.Observer
	if o != nil {
		o.SweepStart(len(kernels), len(configs), rep.Skipped)
	}

	start := time.Now()
	var mu sync.Mutex      // guards rep tallies beyond Skipped
	var trips atomic.Int64 // kernel rows whose breaker opened, sweep-wide
	doRow := func(row int) {
		// Rows are all queued up front, so queue wait is measured
		// from sweep start to worker pickup.
		var pickup time.Time
		if o != nil {
			pickup = time.Now()
		}
		if opts.QuarantineAfter > 0 && trips.Load() >= int64(opts.QuarantineAfter) {
			// Enough kernels have tripped their breakers that the
			// failure is systemic: quarantine rows that have not
			// started rather than grind through them.
			quarantineRow(kernels[row], configs, opts, m, row, rep, &mu)
		} else {
			sweepRow(ctx, sim, re, kernels[row], configs, opts, m, row, rep, &mu, start, &trips)
		}
		if o != nil {
			o.RowDone(row, kernels[row].Name, pickup.Sub(start), time.Since(pickup))
		}
		if opts.OnRow != nil {
			opts.OnRow(m, row)
		}
	}
	if workers == 1 {
		// A single worker is sequential either way; running rows on
		// the calling goroutine skips the spawn, the channel
		// handshakes, and a fresh worker stack's growth per run —
		// fixed costs a one-kernel batched sweep otherwise pays on
		// every call.
		for row := range kernels {
			if !done[row] {
				doRow(row)
			}
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for row := range jobs {
					doRow(row)
				}
			}()
		}
		for row := range kernels {
			if !done[row] {
				jobs <- row
			}
		}
		close(jobs)
		wg.Wait()
	}
	rep.WallTime = time.Since(start)
	if o != nil {
		o.SweepEnd(rep)
	}
	return m, rep, ctx.Err()
}

// okRow returns a row of StatusOK cells.
func okRow(n int) []CellStatus { return make([]CellStatus, n) }

// settleRow stamps every plane of row with NaN-free zeros and a
// uniform status — the wholesale settlement used when a row never
// reaches the engine (sweep-level quarantine, failed preparation).
func settleRow(m *Matrix, row, cells int, status CellStatus) {
	st := make([]CellStatus, cells)
	for c := range st {
		st[c] = status
	}
	m.Throughput[row] = make([]float64, cells)
	m.TimeNS[row] = make([]float64, cells)
	m.Bound[row] = make([]gcn.Bound, cells)
	m.Status[row] = st
}

// quarantineRow settles a whole kernel row as StatusQuarantined
// without invoking the engine — the sweep-level brake once
// Options.QuarantineAfter kernels have tripped their breakers. The
// observer sees one RowQuarantined event instead of a per-cell
// CellDone stream, so tracing a quarantined 891-cell row does not
// emit 891 redundant spans.
func quarantineRow(k *kernel.Kernel, configs []hw.Config, opts Options,
	m *Matrix, row int, rep *RunReport, mu *sync.Mutex) {
	settleRow(m, row, len(configs), StatusQuarantined)
	if o := opts.Observer; o != nil {
		o.RowQuarantined(row, k.Name, StatusQuarantined, len(configs))
	}
	mu.Lock()
	rep.Quarantined += len(configs)
	mu.Unlock()
}

// failRowPrepare settles a whole row as failed when its kernel cannot
// be prepared (an invalid kernel, or one that does not fit on a CU).
// No configuration can change either condition, so the row fails once
// with a clear positional error and one observer event instead of
// len(configs) identical per-cell failures.
func failRowPrepare(k *kernel.Kernel, configs []hw.Config, opts Options,
	m *Matrix, row int, rep *RunReport, mu *sync.Mutex, err error) {
	settleRow(m, row, len(configs), StatusFailed)
	if o := opts.Observer; o != nil {
		o.RowQuarantined(row, k.Name, StatusFailed, len(configs))
	}
	mu.Lock()
	rep.Failed += len(configs)
	rep.Failures = append(rep.Failures, CellFailure{
		Kernel:   k.Name,
		Config:   configs[0],
		Attempts: 0,
		Err:      fmt.Errorf("prepare failed for whole row (%d cells): %w", len(configs), err),
	})
	mu.Unlock()
}

// sweepRow measures one kernel over every configuration, retrying
// faulty cells, and merges the row's accounting into the report.
// base anchors observer timing: cell and attempt durations are
// differences of monotonic offsets from it, chained so the common
// single-attempt cell costs exactly one clock read — per-cell
// instrumentation has to stay within a few percent of a ~1µs cell.
// trips is the sweep-wide count of opened circuit breakers.
//
// When re is non-nil the row runs through the prepared path: one
// PrepareRow hoists the kernel-invariant work, and each cell
// evaluates against the shared prepared state. A prepared row is
// owned by this goroutine only — if the supervisor abandons an engine
// call (timeout, stall), the abandoned goroutine may still be using
// the row's scratch, so the row is poisoned and every later call
// degrades to the per-cell sim, which shares no state.
//
// When the prepared row additionally implements gcn.BatchRow (and
// batching is not disabled or preempted by supervision), the whole
// config axis evaluates in one EvalBatch call up front and the cell
// loop consumes each cell's first attempt from the batch planes.
// Everything downstream — validation, retry with backoff, breaker,
// status classification, observer events — is shared with the
// per-cell path: a batched cell whose first attempt faulted re-enters
// runCell at attempt two, drawing from the same fault decision stream
// (injectors roll per (cell, attempt), and the batch advanced each
// cell's counter exactly once). A row-level batch failure falls back
// to pure per-cell evaluation for the entire row.
func sweepRow(ctx context.Context, sim gcn.EngineFunc, re gcn.RowEngine, k *kernel.Kernel, configs []hw.Config,
	opts Options, m *Matrix, row int, rep *RunReport, mu *sync.Mutex, base time.Time, trips *atomic.Int64) {
	cellSim := sim
	var prow gcn.PreparedRow
	var poisoned atomic.Bool
	if re != nil {
		pr, err := re.PrepareRow(k)
		if err != nil {
			failRowPrepare(k, configs, opts, m, row, rep, mu, err)
			return
		}
		prow = pr
		cellSim = func(_ *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			if poisoned.Load() {
				return sim(k, cfg)
			}
			return prow.Eval(cfg)
		}
	}

	// Batched first attempts. The buffers come from a pool so the batch
	// path allocates nothing per row once warm.
	var bbuf *batchBuf
	batched, batchTried := false, false
	if prow != nil && !opts.DisableBatch && opts.SimTimeout <= 0 && opts.StallGrace <= 0 {
		if br, ok := prow.(gcn.BatchRow); ok && ctx.Err() == nil {
			batchTried = true
			bbuf = getBatchBuf(len(configs))
			defer putBatchBuf(bbuf)
			batched = safeBatch(br, configs, bbuf.res, bbuf.errs) == nil
		}
	}

	tput := make([]float64, len(configs))
	times := make([]float64, len(configs))
	bounds := make([]gcn.Bound, len(configs))
	status := make([]CellStatus, len(configs))

	// Per-row noise stream keeps results independent of worker
	// scheduling; one draw per cell (even failed ones) keeps later
	// cells aligned with a fault-free run of the same seed.
	var rng *rand.Rand
	if opts.NoiseStdDev > 0 {
		rng = rand.New(rand.NewSource(opts.Seed + int64(row)))
	}

	o := opts.Observer
	timed := o != nil && o.CellTiming()
	// With no retries, supervision, or observer, runCell reduces to one
	// guarded engine call per cell; take that path directly rather than
	// paying its bookkeeping frame 891 times per row.
	fastCell := opts.Retries == 0 && opts.SimTimeout <= 0 && opts.StallGrace <= 0 && o == nil
	var prev time.Duration // monotonic offset at the current cell's start
	if timed {
		prev = time.Since(base)
	}
	var ok, failed, canceled, stalled, quarantined, attempts, retries, fellBack int
	var failures []CellFailure
	// streak counts consecutive hard failures (failed or stalled
	// cells); Options.Breaker of them in a row opens the breaker and
	// quarantines the rest of the row.
	streak, tripped := 0, false
	// cellRes is the per-cell scratch for the unbatched paths; every
	// producer overwrites it whole, so it never needs re-zeroing. The
	// batched fast path bypasses it entirely and reads results straight
	// out of the batch buffer — the wide Result struct is never copied
	// per cell.
	var cellRes gcn.Result
	for c := range configs {
		cfg := &configs[c]
		noise := 1.0
		if rng != nil {
			noise = math.Exp(rng.NormFloat64() * opts.NoiseStdDev)
		}
		if tripped {
			// The remainder is settled wholesale; one RowQuarantined
			// event after the loop replaces the per-cell CellDone
			// stream.
			status[c] = StatusQuarantined
			quarantined++
			continue
		}
		if ctx.Err() != nil {
			status[c] = StatusCanceled
			canceled++
			if o != nil {
				o.CellDone(row, k.Name, *cfg, StatusCanceled, 0, 0)
			}
			continue
		}
		rp := &cellRes
		var n int
		var end time.Duration
		var err error
		var first *batchOutcome
		if batched {
			// The cell's first attempt already ran inside the batch; an
			// isolated per-cell panic maps onto the same engine-panic
			// classification the per-cell recover produces (final, no
			// retry).
			rp, err = &bbuf.res[c], bbuf.errs[c]
			if err != nil && errors.Is(err, gcn.ErrBatchPanic) {
				err = fmt.Errorf("%w: %v", ErrEnginePanic, err)
			}
			if !fastCell {
				first = &batchOutcome{r: *rp, err: err}
			}
		}
		if fastCell {
			// A fast cell can never be abandoned, so the row can never
			// be poisoned: evaluate the prepared row directly instead of
			// going through cellSim's poison check.
			n = 1
			if !batched {
				if prow != nil {
					cellRes, err = safeEval(prow, *cfg)
				} else {
					cellRes, err = safeCall(cellSim, k, *cfg)
				}
			}
			if err == nil {
				err = validate(rp)
			}
		} else {
			cellRes, n, end, err = runCell(ctx, cellSim, k, *cfg, opts, row, timed, base, prev, &poisoned, first)
			rp = &cellRes
		}
		var cellDur time.Duration
		if timed {
			cellDur = end - prev
			prev = end
		}
		attempts += n
		if n > 1 {
			retries += n - 1
		}
		if batchTried && (!batched || n > 1) {
			// Per-cell work a batching row still needed: the whole row
			// after a row-level batch failure, or retries of a batched
			// cell whose first attempt faulted.
			fellBack++
		}
		if err != nil {
			if errors.Is(err, ErrStalled) {
				status[c] = StatusStalled
				stalled++
			} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				status[c] = StatusCanceled
				canceled++
				if o != nil {
					o.CellDone(row, k.Name, *cfg, StatusCanceled, n, cellDur)
				}
				continue
			} else {
				status[c] = StatusFailed
				failed++
			}
			failures = append(failures, CellFailure{Kernel: k.Name, Config: *cfg, Attempts: n, Err: err})
			if o != nil {
				o.CellDone(row, k.Name, *cfg, status[c], n, cellDur)
			}
			streak++
			if opts.Breaker > 0 && streak >= opts.Breaker {
				tripped = true
				trips.Add(1)
				if o != nil {
					o.BreakerTripped(row, k.Name, streak)
				}
			}
			continue
		}
		streak = 0
		tput[c] = rp.Throughput * noise
		times[c] = rp.TimeNS
		bounds[c] = rp.Bound
		ok++
		if o != nil {
			o.CellDone(row, k.Name, *cfg, StatusOK, n, cellDur)
		}
	}
	if tripped && quarantined > 0 && o != nil {
		o.RowQuarantined(row, k.Name, StatusQuarantined, quarantined)
	}
	m.Throughput[row] = tput
	m.TimeNS[row] = times
	m.Bound[row] = bounds
	m.Status[row] = status

	mu.Lock()
	rep.OK += ok
	rep.Failed += failed
	rep.Canceled += canceled
	rep.Stalled += stalled
	rep.Quarantined += quarantined
	rep.Attempts += attempts
	rep.Retries += retries
	if tripped {
		rep.BreakerTrips++
	}
	rep.Failures = append(rep.Failures, failures...)
	if prow != nil {
		rep.Prepared.Rows++
		if batched {
			rep.Prepared.BatchedRows++
		}
		rep.Prepared.BatchFallbackCells += fellBack
		if poisoned.Load() {
			// The abandoned call may still be mutating the row's
			// scratch and stats; counting the row as abandoned is the
			// only safe read.
			rep.Prepared.Abandoned++
		} else {
			s := prow.Stats()
			rep.Prepared.ResidentSetHits += s.ResidentSetHits
			rep.Prepared.ResidentSetMisses += s.ResidentSetMisses
			rep.Prepared.HitRateHits += s.HitRateHits
			rep.Prepared.HitRateMisses += s.HitRateMisses
		}
	}
	mu.Unlock()
}

// batchOutcome carries a cell's already-evaluated first attempt (from
// a row-level EvalBatch) into runCell, so the retry machinery treats
// it exactly like an attempt it ran itself.
type batchOutcome struct {
	r   gcn.Result
	err error
}

// runCell runs one simulation with validation, retry and backoff.
// It returns the validated result, the number of attempts consumed,
// the monotonic offset (from base) at which the last attempt ended
// when an observer is attached, and the final error if every attempt
// failed. Each simulator invocation is reported to the observer with
// its duration and error. Timing chains off the caller-supplied start
// offset so a single-attempt cell costs one clock read; retry
// attempts (rare) re-read the clock after the backoff sleep so the
// sleep never pollutes an attempt's duration. timed caches
// Observer.CellTiming: when false every clock read is skipped and
// the observer receives zero durations. A non-nil first supplies the
// result of attempt one (batched rows evaluate it up front); retries
// then proceed per-cell with the usual backoff ramp.
func runCell(ctx context.Context, sim gcn.EngineFunc, k *kernel.Kernel, cfg hw.Config,
	opts Options, row int, timed bool, base time.Time, startOff time.Duration, abandoned *atomic.Bool,
	first *batchOutcome) (gcn.Result, int, time.Duration, error) {
	backoff := opts.Backoff
	maxBackoff := opts.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 100 * time.Millisecond
	}
	o := opts.Observer
	var lastErr error
	attempts := 0
	attemptStart := startOff
	end := startOff
	for try := 0; try <= opts.Retries; try++ {
		if try > 0 {
			if backoff > 0 {
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return gcn.Result{}, attempts, end, ctx.Err()
				}
				backoff *= 2
				if backoff > maxBackoff {
					backoff = maxBackoff
				}
			}
			if timed {
				attemptStart = time.Since(base)
			}
		}
		attempts++
		var r gcn.Result
		var err error
		if try == 0 && first != nil {
			r, err = first.r, first.err
		} else if opts.SimTimeout <= 0 && opts.StallGrace <= 0 {
			// No supervision requested: skip the wrapper frame in the
			// hot path (simulate would take the same branch, but each
			// frame copies the full Result back up).
			r, err = safeCall(sim, k, cfg)
		} else {
			r, err = simulate(ctx, sim, k, cfg, opts.SimTimeout, opts.StallGrace, abandoned)
		}
		if err == nil {
			err = validate(&r)
		}
		if o != nil {
			if timed {
				end = time.Since(base)
			}
			o.CellAttempt(row, k.Name, cfg, attempts, end-attemptStart, err)
		}
		if err == nil {
			return r, attempts, end, nil
		}
		// Panics and stalls are final: a panicking engine is broken,
		// not flaky, and a stalled call only surfaces once the sweep is
		// already being torn down — retrying either wastes the budget.
		if errors.Is(err, ErrEnginePanic) || errors.Is(err, ErrStalled) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return gcn.Result{}, attempts, end, err
		}
		lastErr = err
	}
	return gcn.Result{}, attempts, end, lastErr
}

// safeCall invokes the engine with panic isolation: a panic is
// converted into an ErrEnginePanic carrying the panic value and the
// goroutine stack, so one broken kernel model cannot take down a
// multi-hour campaign.
func safeCall(sim gcn.EngineFunc, k *kernel.Kernel, cfg hw.Config) (r gcn.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v\n%s", ErrEnginePanic, p, debug.Stack())
		}
	}()
	return sim(k, cfg)
}

// safeEval is safeCall for a prepared row: same panic isolation, no
// per-cell closure in between.
func safeEval(row gcn.PreparedRow, cfg hw.Config) (r gcn.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v\n%s", ErrEnginePanic, p, debug.Stack())
		}
	}()
	return row.Eval(cfg)
}

// safeBatch runs a whole-row batch evaluation with panic isolation. A
// non-nil return (row-level batch failure, or a panic that escaped the
// engine's own per-cell isolation) makes the caller fall back to pure
// per-cell evaluation for the row — nothing is lost but the speedup.
func safeBatch(br gcn.BatchRow, cfgs []hw.Config, out []gcn.Result, errs []error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v\n%s", ErrEnginePanic, p, debug.Stack())
		}
	}()
	return br.EvalBatch(cfgs, out, errs)
}

// configsCache memoizes the last materialized config axis. Callers
// (benchmarks, refinement loops, the distributed driver's per-lease
// Runs) invoke Run repeatedly over the same grid, and re-deriving the
// 891-point axis is pure per-run overhead at batched speeds. Axes are
// compared by value — and the cached Space is a deep copy, so a caller
// mutating its own axis slices in place can never alias the cache into
// a stale hit — and the returned slice is shared read-only: nothing
// downstream of resume writes a Config.
var configsCache struct {
	mu      sync.Mutex
	space   hw.Space
	configs []hw.Config
}

func gridConfigs(space hw.Space) []hw.Config {
	configsCache.mu.Lock()
	defer configsCache.mu.Unlock()
	if configsCache.configs != nil && space.Equal(configsCache.space) {
		return configsCache.configs
	}
	cfgs := space.Configs()
	configsCache.space = space.Clone()
	configsCache.configs = cfgs
	return cfgs
}

// batchBuf holds one row's batched evaluation planes. Buffers are
// pooled across rows and sweeps so the batch path allocates nothing
// per row once warm — at ~50ns/cell the round batch would otherwise
// spend a measurable share of its budget on two 891-element makes.
type batchBuf struct {
	res  []gcn.Result
	errs []error
}

var batchPool = sync.Pool{New: func() any { return new(batchBuf) }}

func getBatchBuf(n int) *batchBuf {
	b := batchPool.Get().(*batchBuf)
	if cap(b.res) < n {
		b.res = make([]gcn.Result, n)
		b.errs = make([]error, n)
	}
	b.res = b.res[:n]
	b.errs = b.errs[:n]
	return b
}

func putBatchBuf(b *batchBuf) { batchPool.Put(b) }

// simulate invokes the engine, bounded by timeout when one is set and
// supervised by the stall watchdog when grace is set. A timed-out or
// abandoned invocation's goroutine finishes in the background; its
// buffered channel lets it exit without a receiver. Every abandonment
// path sets abandoned (when non-nil) before returning, so a caller
// sharing row-level state with the engine knows the state may still
// be in use by the orphaned goroutine.
func simulate(ctx context.Context, sim gcn.EngineFunc, k *kernel.Kernel, cfg hw.Config, timeout, grace time.Duration, abandoned *atomic.Bool) (gcn.Result, error) {
	if timeout <= 0 && grace <= 0 {
		return safeCall(sim, k, cfg)
	}
	abandon := func() {
		if abandoned != nil {
			abandoned.Store(true)
		}
	}
	type outcome struct {
		r   gcn.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := safeCall(sim, k, cfg)
		ch <- outcome{r, err}
	}()
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case o := <-ch:
		return o.r, o.err
	case <-expire:
		abandon()
		return gcn.Result{}, fmt.Errorf("%w after %v", ErrSimTimeout, timeout)
	case <-ctx.Done():
		if grace <= 0 {
			abandon()
			return gcn.Result{}, ctx.Err()
		}
		// Watchdog: the engine is expected to return promptly once the
		// context ends (cooperative engines poll it; ours just finish
		// the cell). One that keeps running past the grace is wedged —
		// abandon it and report the stall rather than hanging the row.
		g := time.NewTimer(grace)
		defer g.Stop()
		select {
		case o := <-ch:
			if o.err != nil {
				return gcn.Result{}, o.err
			}
			return gcn.Result{}, ctx.Err()
		case <-g.C:
			abandon()
			return gcn.Result{}, fmt.Errorf("%w (no return within %v of cancellation)", ErrStalled, grace)
		}
	}
}

// validate rejects measurements no hardware run could produce —
// exactly the garbage a flaky rig emits. Corruption is retryable.
// Positive, finite, non-NaN is spelled as plain comparisons (x > 0
// already excludes NaN and -Inf; x <= MaxFloat64 excludes +Inf) so the
// check inlines into the per-cell loop with no calls.
func validate(r *gcn.Result) error {
	if r.Throughput > 0 && r.Throughput <= math.MaxFloat64 &&
		r.TimeNS > 0 && r.TimeNS <= math.MaxFloat64 {
		return nil
	}
	return corruptErr(r)
}

// corruptErr builds validate's failure, kept out of line so validate
// itself inlines into the per-cell loop.
func corruptErr(r *gcn.Result) error {
	if !(r.Throughput > 0) || math.IsInf(r.Throughput, 0) {
		return fmt.Errorf("%w: throughput %g", ErrCorruptResult, r.Throughput)
	}
	return fmt.Errorf("%w: time %g ns", ErrCorruptResult, r.TimeNS)
}

// Runs returns the total simulations a sweep of this shape performs.
func Runs(kernels, configs int) int { return kernels * configs }
