// Package sweep executes kernel x configuration grids in parallel and
// stores the resulting performance matrices — the data-collection
// harness that stands in for the paper's weeks of hardware runs.
//
// Real measurement campaigns are flaky: individual runs hang, die, or
// return garbage. The runtime therefore treats every cell as fallible:
// it validates results, retries transient failures with capped
// exponential backoff, bounds each simulation with a timeout, honours
// context cancellation, and — instead of aborting the whole sweep —
// records a per-cell Status so partial matrices are first-class and a
// later Resume can fill in only the missing rows.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// Engine selects the simulator fidelity used for a sweep.
type Engine int

const (
	// Round uses the fast batch-steady-state engine (default).
	Round Engine = iota
	// Detailed uses the continuous-dispatch quantum engine.
	Detailed
	// Wave uses the wavefront-level event engine (slowest; only for
	// small spaces or validation runs).
	Wave
)

// Func returns the engine's simulator function.
func (e Engine) Func() gcn.EngineFunc {
	switch e {
	case Detailed:
		return gcn.SimulateDetailed
	case Wave:
		return gcn.SimulateWave
	default:
		return gcn.Simulate
	}
}

// ErrCorruptResult marks a simulation that returned an unusable value
// (NaN, infinite or non-positive throughput or time). It is treated as
// a transient measurement fault and retried like an error.
var ErrCorruptResult = errors.New("sweep: corrupt result")

// ErrSimTimeout marks a simulation that exceeded Options.SimTimeout.
var ErrSimTimeout = errors.New("sweep: simulation timed out")

// Options configures a sweep run.
type Options struct {
	// Workers is the parallel worker count; <= 0 uses GOMAXPROCS.
	Workers int
	// Engine selects the simulator fidelity.
	Engine Engine
	// Sim, when non-nil, overrides Engine with an arbitrary simulator
	// function — the seam where fault injection and custom engines
	// plug in.
	Sim gcn.EngineFunc
	// NoiseStdDev, when positive, multiplies every measured throughput
	// by a lognormal factor exp(N(0, stddev)) to emulate run-to-run
	// measurement noise for robustness experiments. The factor's
	// median is exactly 1, so the noise does not bias the mean the way
	// a clamped 1+N(0,sigma) factor does.
	NoiseStdDev float64
	// Seed drives the noise generator; ignored when NoiseStdDev is 0.
	Seed int64
	// Retries is the number of extra attempts per cell after a failed
	// or corrupt simulation. 0 means every fault is final.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per
	// retry up to MaxBackoff. Zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff; defaults to 100 ms
	// when Backoff is set.
	MaxBackoff time.Duration
	// SimTimeout bounds each simulator invocation; expiry counts as a
	// retryable fault. Zero means no bound. The expired invocation's
	// goroutine is abandoned and finishes in the background (Go
	// cannot kill it), so pair timeouts with engines that eventually
	// return.
	SimTimeout time.Duration
	// OnRow, when non-nil, is called as each kernel row reaches a
	// terminal state, from worker goroutines — it must be safe for
	// concurrent use and should only read row r of m. Journals hook
	// in here to checkpoint completed rows.
	OnRow func(m *Matrix, r int)
	// Observer, when non-nil, receives runtime telemetry events
	// (sweep/cell/attempt lifecycle) from worker goroutines; see the
	// Observer interface. It is a read-only tap: results are
	// byte-identical with or without one. nil disables all
	// instrumentation at the cost of one branch per event site.
	Observer Observer
}

// CellStatus records the terminal state of one matrix cell.
type CellStatus uint8

const (
	// StatusOK marks a validated measurement.
	StatusOK CellStatus = iota
	// StatusFailed marks a cell whose attempts were exhausted by
	// errors or corrupt results.
	StatusFailed
	// StatusCanceled marks a cell abandoned because the sweep's
	// context ended before it could run.
	StatusCanceled
)

var statusNames = [...]string{"ok", "failed", "canceled"}

// String returns the status's lower-case name.
func (s CellStatus) String() string {
	if int(s) >= len(statusNames) {
		return fmt.Sprintf("status(%d)", int(s))
	}
	return statusNames[s]
}

// ParseStatus inverts String.
func ParseStatus(s string) (CellStatus, error) {
	for i, n := range statusNames {
		if n == s {
			return CellStatus(i), nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown cell status %q", s)
}

// Matrix holds the sweep results: one throughput row per kernel, one
// column per configuration in Space.Configs() order.
type Matrix struct {
	// Space is the configuration grid the columns index into.
	Space hw.Space
	// Kernels are the row names, in input order.
	Kernels []string
	// Throughput[r][c] is work-items/ns of kernel r on configuration c.
	// Cells whose Status is not StatusOK hold 0.
	Throughput [][]float64
	// TimeNS[r][c] is the corresponding invocation time.
	TimeNS [][]float64
	// Bound[r][c] is the dominant bound reported by the engine.
	Bound [][]gcn.Bound
	// Status[r][c] is the cell's terminal state. A nil Status (legacy
	// producers) means every cell is StatusOK.
	Status [][]CellStatus

	rowOnce sync.Once
	rowIdx  map[string]int
}

// Row returns the row index of a kernel name, or -1. The lookup map is
// built lazily on first use (and is safe for concurrent callers), so
// per-cell lookups over the 267-kernel corpus cost O(1) instead of a
// linear scan per call. Rows appended after the first lookup are not
// visible; treat a Matrix as immutable once handed to readers.
func (m *Matrix) Row(name string) int {
	m.rowOnce.Do(func() {
		m.rowIdx = make(map[string]int, len(m.Kernels))
		for i, k := range m.Kernels {
			if _, dup := m.rowIdx[k]; !dup {
				m.rowIdx[k] = i
			}
		}
	})
	if i, ok := m.rowIdx[name]; ok {
		return i
	}
	return -1
}

// CellOK reports whether cell (r, c) holds a validated measurement.
func (m *Matrix) CellOK(r, c int) bool {
	return m.Status == nil || m.Status[r] == nil || m.Status[r][c] == StatusOK
}

// RowComplete reports whether every cell of row r is StatusOK.
func (m *Matrix) RowComplete(r int) bool {
	if m.Status == nil || m.Status[r] == nil {
		return true
	}
	for _, s := range m.Status[r] {
		if s != StatusOK {
			return false
		}
	}
	return true
}

// Coverage returns the fraction of cells holding validated
// measurements (1 for a fault-free matrix).
func (m *Matrix) Coverage() float64 {
	if len(m.Kernels) == 0 {
		return 0
	}
	total, ok := 0, 0
	for r := range m.Kernels {
		for c := range m.Throughput[r] {
			total++
			if m.CellOK(r, c) {
				ok++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// CellFailure identifies one cell that exhausted its attempts.
type CellFailure struct {
	// Kernel is the row's kernel name.
	Kernel string
	// Config is the failing configuration.
	Config hw.Config
	// Attempts is how many simulator invocations the cell consumed.
	Attempts int
	// Err is the last attempt's error.
	Err error
}

func (f CellFailure) String() string {
	return fmt.Sprintf("%s @ cu=%d core=%g mem=%g after %d attempt(s): %v",
		f.Kernel, f.Config.CUs, f.Config.CoreClockMHz, f.Config.MemClockMHz, f.Attempts, f.Err)
}

// RunReport accounts for every cell of a sweep: how many succeeded,
// failed or were abandoned, and how much work (attempts, retries) the
// run spent. Partial matrices always travel with a report.
type RunReport struct {
	// Kernels and Configs give the sweep shape.
	Kernels, Configs int
	// Cells is Kernels * Configs.
	Cells int
	// OK, Failed and Canceled partition the cells this run attempted;
	// Skipped counts cells reused from a prior matrix by Resume.
	// OK + Failed + Canceled + Skipped == Cells.
	OK, Failed, Canceled, Skipped int
	// Attempts is the total simulator invocations; Retries is the
	// portion beyond each cell's first attempt.
	Attempts, Retries int
	// Failures lists each failed cell with its final error.
	Failures []CellFailure
	// WallTime is the end-to-end sweep duration.
	WallTime time.Duration
}

// Complete reports whether every cell holds a validated measurement.
func (r *RunReport) Complete() bool { return r.Failed == 0 && r.Canceled == 0 }

// Summary renders a one-line accounting suitable for CLI output.
func (r *RunReport) Summary() string {
	return fmt.Sprintf("%d cells: %d ok, %d failed, %d canceled, %d reused (%d attempts, %d retries) in %v",
		r.Cells, r.OK, r.Failed, r.Canceled, r.Skipped, r.Attempts, r.Retries,
		r.WallTime.Round(time.Millisecond))
}

// Run sweeps every kernel over every configuration of the space with
// background context and strict semantics: any cell that fails after
// retries turns the whole sweep into an error, matching the historical
// abort-on-error contract. Use RunContext for graceful degradation.
func Run(kernels []*kernel.Kernel, space hw.Space, opts Options) (*Matrix, error) {
	m, rep, err := RunContext(context.Background(), kernels, space, opts)
	if err != nil {
		return nil, err
	}
	if rep.Failed > 0 {
		return nil, fmt.Errorf("sweep: %d/%d cells failed; first: %s",
			rep.Failed, rep.Cells, rep.Failures[0])
	}
	return m, nil
}

// RunContext sweeps every kernel over every configuration, tolerating
// per-cell failures. Kernels are distributed over a worker pool; each
// worker owns whole rows so the output needs no locking. Failed cells
// are marked in the matrix's Status plane rather than aborting the
// sweep, and the report accounts for every cell. The error is non-nil
// only for unusable input or a canceled context; in the latter case
// the partial matrix and report are still returned.
func RunContext(ctx context.Context, kernels []*kernel.Kernel, space hw.Space, opts Options) (*Matrix, *RunReport, error) {
	return resume(ctx, kernels, space, opts, nil)
}

// Resume completes a partial sweep: rows of prior whose every cell is
// StatusOK are copied into the result verbatim (and counted as Skipped
// in the report); all other rows are recomputed. prior may be nil or
// cover any subset of kernels — rows are matched by kernel name, so
// the corpus may have grown or shrunk between runs.
func Resume(ctx context.Context, kernels []*kernel.Kernel, space hw.Space, opts Options, prior *Matrix) (*Matrix, *RunReport, error) {
	return resume(ctx, kernels, space, opts, prior)
}

func resume(ctx context.Context, kernels []*kernel.Kernel, space hw.Space, opts Options, prior *Matrix) (*Matrix, *RunReport, error) {
	if len(kernels) == 0 {
		return nil, nil, fmt.Errorf("sweep: no kernels")
	}
	configs := space.Configs()
	if len(configs) == 0 {
		return nil, nil, fmt.Errorf("sweep: empty configuration space")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	m := &Matrix{
		Space:      space,
		Kernels:    make([]string, len(kernels)),
		Throughput: make([][]float64, len(kernels)),
		TimeNS:     make([][]float64, len(kernels)),
		Bound:      make([][]gcn.Bound, len(kernels)),
		Status:     make([][]CellStatus, len(kernels)),
	}
	for i, k := range kernels {
		m.Kernels[i] = k.Name
	}
	rep := &RunReport{Kernels: len(kernels), Configs: len(configs), Cells: len(kernels) * len(configs)}

	// Reuse complete rows from the prior matrix before spinning up
	// workers, so resumed sweeps only pay for the holes.
	done := make([]bool, len(kernels))
	if prior != nil {
		for i, k := range kernels {
			pr := prior.Row(k.Name)
			if pr < 0 || len(prior.Throughput[pr]) != len(configs) || !prior.RowComplete(pr) {
				continue
			}
			m.Throughput[i] = prior.Throughput[pr]
			m.TimeNS[i] = prior.TimeNS[pr]
			m.Bound[i] = prior.Bound[pr]
			m.Status[i] = okRow(len(configs))
			done[i] = true
			rep.Skipped += len(configs)
		}
	}

	sim := opts.Sim
	if sim == nil {
		sim = opts.Engine.Func()
	}
	o := opts.Observer
	if o != nil {
		o.SweepStart(len(kernels), len(configs), rep.Skipped)
	}

	start := time.Now()
	var mu sync.Mutex // guards rep tallies beyond Skipped
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for row := range jobs {
				// Rows are all queued up front, so queue wait is
				// measured from sweep start to worker pickup.
				var pickup time.Time
				if o != nil {
					pickup = time.Now()
				}
				sweepRow(ctx, sim, kernels[row], configs, opts, m, row, rep, &mu, start)
				if o != nil {
					o.RowDone(row, kernels[row].Name, pickup.Sub(start), time.Since(pickup))
				}
				if opts.OnRow != nil {
					opts.OnRow(m, row)
				}
			}
		}()
	}
	for row := range kernels {
		if !done[row] {
			jobs <- row
		}
	}
	close(jobs)
	wg.Wait()
	rep.WallTime = time.Since(start)
	if o != nil {
		o.SweepEnd(rep)
	}
	return m, rep, ctx.Err()
}

// okRow returns a row of StatusOK cells.
func okRow(n int) []CellStatus { return make([]CellStatus, n) }

// sweepRow measures one kernel over every configuration, retrying
// faulty cells, and merges the row's accounting into the report.
// base anchors observer timing: cell and attempt durations are
// differences of monotonic offsets from it, chained so the common
// single-attempt cell costs exactly one clock read — per-cell
// instrumentation has to stay within a few percent of a ~1µs cell.
func sweepRow(ctx context.Context, sim gcn.EngineFunc, k *kernel.Kernel, configs []hw.Config,
	opts Options, m *Matrix, row int, rep *RunReport, mu *sync.Mutex, base time.Time) {
	tput := make([]float64, len(configs))
	times := make([]float64, len(configs))
	bounds := make([]gcn.Bound, len(configs))
	status := make([]CellStatus, len(configs))

	// Per-row noise stream keeps results independent of worker
	// scheduling; one draw per cell (even failed ones) keeps later
	// cells aligned with a fault-free run of the same seed.
	var rng *rand.Rand
	if opts.NoiseStdDev > 0 {
		rng = rand.New(rand.NewSource(opts.Seed + int64(row)))
	}

	o := opts.Observer
	timed := o != nil && o.CellTiming()
	var prev time.Duration // monotonic offset at the current cell's start
	if timed {
		prev = time.Since(base)
	}
	var ok, failed, canceled, attempts, retries int
	var failures []CellFailure
	for c, cfg := range configs {
		noise := 1.0
		if rng != nil {
			noise = math.Exp(rng.NormFloat64() * opts.NoiseStdDev)
		}
		if ctx.Err() != nil {
			status[c] = StatusCanceled
			canceled++
			if o != nil {
				o.CellDone(row, k.Name, cfg, StatusCanceled, 0, 0)
			}
			continue
		}
		r, n, end, err := runCell(ctx, sim, k, cfg, opts, row, timed, base, prev)
		var cellDur time.Duration
		if timed {
			cellDur = end - prev
			prev = end
		}
		attempts += n
		if n > 1 {
			retries += n - 1
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				status[c] = StatusCanceled
				canceled++
				if o != nil {
					o.CellDone(row, k.Name, cfg, StatusCanceled, n, cellDur)
				}
				continue
			}
			status[c] = StatusFailed
			failed++
			failures = append(failures, CellFailure{Kernel: k.Name, Config: cfg, Attempts: n, Err: err})
			if o != nil {
				o.CellDone(row, k.Name, cfg, StatusFailed, n, cellDur)
			}
			continue
		}
		tput[c] = r.Throughput * noise
		times[c] = r.TimeNS
		bounds[c] = r.Bound
		ok++
		if o != nil {
			o.CellDone(row, k.Name, cfg, StatusOK, n, cellDur)
		}
	}
	m.Throughput[row] = tput
	m.TimeNS[row] = times
	m.Bound[row] = bounds
	m.Status[row] = status

	mu.Lock()
	rep.OK += ok
	rep.Failed += failed
	rep.Canceled += canceled
	rep.Attempts += attempts
	rep.Retries += retries
	rep.Failures = append(rep.Failures, failures...)
	mu.Unlock()
}

// runCell runs one simulation with validation, retry and backoff.
// It returns the validated result, the number of attempts consumed,
// the monotonic offset (from base) at which the last attempt ended
// when an observer is attached, and the final error if every attempt
// failed. Each simulator invocation is reported to the observer with
// its duration and error. Timing chains off the caller-supplied start
// offset so a single-attempt cell costs one clock read; retry
// attempts (rare) re-read the clock after the backoff sleep so the
// sleep never pollutes an attempt's duration. timed caches
// Observer.CellTiming: when false every clock read is skipped and
// the observer receives zero durations.
func runCell(ctx context.Context, sim gcn.EngineFunc, k *kernel.Kernel, cfg hw.Config,
	opts Options, row int, timed bool, base time.Time, startOff time.Duration) (gcn.Result, int, time.Duration, error) {
	backoff := opts.Backoff
	maxBackoff := opts.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 100 * time.Millisecond
	}
	o := opts.Observer
	var lastErr error
	attempts := 0
	attemptStart := startOff
	end := startOff
	for try := 0; try <= opts.Retries; try++ {
		if try > 0 {
			if backoff > 0 {
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return gcn.Result{}, attempts, end, ctx.Err()
				}
				backoff *= 2
				if backoff > maxBackoff {
					backoff = maxBackoff
				}
			}
			if timed {
				attemptStart = time.Since(base)
			}
		}
		attempts++
		r, err := simulate(ctx, sim, k, cfg, opts.SimTimeout)
		if err == nil {
			err = validate(r)
		}
		if o != nil {
			if timed {
				end = time.Since(base)
			}
			o.CellAttempt(row, k.Name, cfg, attempts, end-attemptStart, err)
		}
		if err == nil {
			return r, attempts, end, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return gcn.Result{}, attempts, end, err
		}
		lastErr = err
	}
	return gcn.Result{}, attempts, end, lastErr
}

// simulate invokes the engine, bounded by timeout when one is set. A
// timed-out invocation's goroutine finishes in the background; its
// buffered channel lets it exit without a receiver.
func simulate(ctx context.Context, sim gcn.EngineFunc, k *kernel.Kernel, cfg hw.Config, timeout time.Duration) (gcn.Result, error) {
	if timeout <= 0 {
		return sim(k, cfg)
	}
	type outcome struct {
		r   gcn.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := sim(k, cfg)
		ch <- outcome{r, err}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.r, o.err
	case <-t.C:
		return gcn.Result{}, fmt.Errorf("%w after %v", ErrSimTimeout, timeout)
	case <-ctx.Done():
		return gcn.Result{}, ctx.Err()
	}
}

// validate rejects measurements no hardware run could produce —
// exactly the garbage a flaky rig emits. Corruption is retryable.
func validate(r gcn.Result) error {
	if !(r.Throughput > 0) || math.IsInf(r.Throughput, 0) {
		return fmt.Errorf("%w: throughput %g", ErrCorruptResult, r.Throughput)
	}
	if !(r.TimeNS > 0) || math.IsInf(r.TimeNS, 0) {
		return fmt.Errorf("%w: time %g ns", ErrCorruptResult, r.TimeNS)
	}
	return nil
}

// Runs returns the total simulations a sweep of this shape performs.
func Runs(kernels, configs int) int { return kernels * configs }
