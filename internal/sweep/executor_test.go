package sweep

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// trippedObserver records BreakerTripped events for assertions.
type trippedObserver struct {
	NopObserver
	mu    sync.Mutex
	trips []string
}

func (o *trippedObserver) BreakerTripped(row int, kernel string, consecutive int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.trips = append(o.trips, kernel)
}

// TestPanicIsolation: an engine that panics must not crash the sweep;
// the panic is converted into a failed cell whose error wraps
// ErrEnginePanic and carries the captured stack.
func TestPanicIsolation(t *testing.T) {
	space := testSpace(t)
	opts := Options{
		Workers: 2,
		Sim: func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			if k.Name == "p.b" {
				panic("engine bug: nil dereference in " + k.Name)
			}
			return gcn.Simulate(k, cfg)
		},
	}
	m, rep, err := RunContext(context.Background(), testKernels(), space, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.Failed != space.Size() {
		t.Fatalf("failed = %d, want the whole panicking row (%d)", rep.Failed, space.Size())
	}
	if rep.OK != 2*space.Size() {
		t.Fatalf("ok = %d, want the two healthy rows intact", rep.OK)
	}
	for _, f := range rep.Failures {
		if f.Kernel != "p.b" {
			t.Fatalf("healthy kernel %s failed: %v", f.Kernel, f.Err)
		}
		if !errors.Is(f.Err, ErrEnginePanic) {
			t.Fatalf("failure error %v does not wrap ErrEnginePanic", f.Err)
		}
		if !strings.Contains(f.Err.Error(), "engine bug") {
			t.Fatalf("panic value lost: %v", f.Err)
		}
		if !strings.Contains(f.Err.Error(), "goroutine") {
			t.Fatalf("stack trace missing from panic failure: %.120s", f.Err.Error())
		}
	}
	b := m.Row("p.b")
	for c, s := range m.Status[b] {
		if s != StatusFailed {
			t.Fatalf("panicked cell %d has status %s", c, s)
		}
	}
}

// TestPanicIsNotRetried: a panic is a hard failure — unlike transient
// errors it consumes no retries, fails its cell immediately, and
// counts toward the breaker streak.
func TestPanicIsNotRetried(t *testing.T) {
	space := testSpace(t)
	var once sync.Once
	opts := Options{
		Retries: 2,
		Sim: func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			panicked := false
			once.Do(func() { panicked = true })
			if panicked {
				panic("one-shot")
			}
			return gcn.Simulate(k, cfg)
		},
	}
	_, rep, err := RunContext(context.Background(), testKernels(), space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Retries != 0 {
		t.Fatalf("one-shot panic should fail exactly one cell with no retries: %s", rep.Summary())
	}
	if !errors.Is(rep.Failures[0].Err, ErrEnginePanic) {
		t.Fatalf("failure %v does not wrap ErrEnginePanic", rep.Failures[0].Err)
	}
}

// TestStallWatchdog: an engine call that ignores cancellation is
// abandoned StallGrace after the context dies and its cell is marked
// stalled, not canceled; the sweep itself returns promptly.
func TestStallWatchdog(t *testing.T) {
	space := testSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	defer close(release)
	var entered sync.Once
	opts := Options{
		Workers:    2,
		StallGrace: 5 * time.Millisecond,
		Sim: func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			if k.Name == "p.b" {
				// Deaf engine: cancel the sweep, then sleep through it.
				entered.Do(cancel)
				<-release
				return gcn.Result{}, errors.New("woke up late")
			}
			return gcn.Simulate(k, cfg)
		},
	}
	done := make(chan struct{})
	var rep *RunReport
	var m *Matrix
	go func() {
		defer close(done)
		m, rep, _ = RunContext(ctx, testKernels(), space, opts)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog did not abandon the deaf engine call")
	}
	checkAccounting(t, rep)
	if rep.Stalled == 0 {
		t.Fatalf("no stalled cell recorded: %s", rep.Summary())
	}
	stalled := 0
	for _, f := range rep.Failures {
		if errors.Is(f.Err, ErrStalled) {
			stalled++
			if f.Kernel != "p.b" {
				t.Fatalf("healthy kernel %s reported stalled", f.Kernel)
			}
		}
	}
	if stalled != rep.Stalled {
		t.Fatalf("%d stalled failures in report, counter says %d", stalled, rep.Stalled)
	}
	b := m.Row("p.b")
	found := false
	for _, s := range m.Status[b] {
		if s == StatusStalled {
			found = true
		}
	}
	if !found {
		t.Fatal("no cell in the deaf row carries StatusStalled")
	}
	if strings.Contains(rep.Summary(), "0 stalled") {
		t.Fatalf("summary hides the stall: %s", rep.Summary())
	}
}

// TestCircuitBreakerQuarantinesRow: after Breaker consecutive hard
// failures the rest of the kernel's row is quarantined without
// touching the engine, and the trip is observable.
func TestCircuitBreakerQuarantinesRow(t *testing.T) {
	space := testSpace(t)
	obs := &trippedObserver{}
	calls := 0
	opts := Options{
		Breaker:  3,
		Observer: obs,
		Sim: func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			if k.Name == "p.b" {
				calls++
				return gcn.Result{}, errors.New("bad kernel")
			}
			return gcn.Simulate(k, cfg)
		},
	}
	m, rep, err := RunContext(context.Background(), testKernels(), space, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.Failed != 3 {
		t.Fatalf("failed = %d, want exactly the breaker threshold", rep.Failed)
	}
	if rep.Quarantined != space.Size()-3 {
		t.Fatalf("quarantined = %d, want the rest of the row (%d)",
			rep.Quarantined, space.Size()-3)
	}
	if rep.BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d, want 1", rep.BreakerTrips)
	}
	if calls != 3 {
		t.Fatalf("engine called %d times for the bad kernel after trip, want 3", calls)
	}
	if len(obs.trips) != 1 || obs.trips[0] != "p.b" {
		t.Fatalf("observer saw trips %v, want [p.b]", obs.trips)
	}
	b := m.Row("p.b")
	for c, s := range m.Status[b] {
		want := StatusQuarantined
		if c < 3 {
			want = StatusFailed
		}
		if s != want {
			t.Fatalf("cell %d has status %s, want %s", c, s, want)
		}
	}
	if !strings.Contains(rep.Summary(), "1 breaker trip") {
		t.Fatalf("summary omits the trip: %s", rep.Summary())
	}
}

// TestCircuitBreakerResetsOnSuccess: a streak interrupted by a success
// never trips the breaker.
func TestCircuitBreakerResetsOnSuccess(t *testing.T) {
	space := testSpace(t)
	n := 0
	opts := Options{
		Breaker: 3,
		Sim: func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			n++
			if n%3 == 0 { // every third call fails: streak never exceeds 1
				return gcn.Result{}, errors.New("flaky")
			}
			return gcn.Simulate(k, cfg)
		},
		Workers: 1,
	}
	_, rep, err := RunContext(context.Background(), testKernels(), space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BreakerTrips != 0 || rep.Quarantined != 0 {
		t.Fatalf("interleaved failures tripped the breaker: %s", rep.Summary())
	}
}

// TestBreakerDisabledByDefault: without Options.Breaker a row of pure
// failures still runs every cell.
func TestBreakerDisabledByDefault(t *testing.T) {
	space := testSpace(t)
	opts := Options{
		Sim: func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			if k.Name == "p.b" {
				return gcn.Result{}, errors.New("always down")
			}
			return gcn.Simulate(k, cfg)
		},
	}
	_, rep, err := RunContext(context.Background(), testKernels(), space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != space.Size() || rep.Quarantined != 0 || rep.BreakerTrips != 0 {
		t.Fatalf("breaker fired while disabled: %s", rep.Summary())
	}
}

// TestQuarantineAfterBrakesSweep: once QuarantineAfter breakers trip,
// rows not yet started are quarantined wholesale instead of running.
func TestQuarantineAfterBrakesSweep(t *testing.T) {
	space := testSpace(t)
	opts := Options{
		Workers:         1, // deterministic row order
		Breaker:         2,
		QuarantineAfter: 1,
		Sim: func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			return gcn.Result{}, errors.New("fleet down")
		},
	}
	m, rep, err := RunContext(context.Background(), testKernels(), space, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkAccounting(t, rep)
	if rep.BreakerTrips == 0 {
		t.Fatalf("no breaker trip under total failure: %s", rep.Summary())
	}
	// First row: 2 failures then quarantined remainder. Later rows:
	// fully quarantined by the sweep-level brake.
	if rep.Failed != 2 {
		t.Fatalf("failed = %d, want only the first row's streak", rep.Failed)
	}
	if rep.Quarantined != rep.Cells-2 {
		t.Fatalf("quarantined = %d, want everything else (%d)", rep.Quarantined, rep.Cells-2)
	}
	for r := 1; r < len(m.Kernels); r++ {
		for c, s := range m.Status[r] {
			if s != StatusQuarantined {
				t.Fatalf("row %d cell %d has status %s after sweep brake", r, c, s)
			}
		}
	}
}
