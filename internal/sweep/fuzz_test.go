package sweep

import (
	"math"
	"strings"
	"testing"

	"gpuscale/internal/hw"
)

// fuzzSpace is the fixed grid both fuzz targets decode against; seed
// corpus entries in testdata/fuzz/ are written for it.
func fuzzSpace(f *testing.F) hw.Space {
	f.Helper()
	s, err := hw.NewSpace([]int{4, 44}, []float64{200, 1000}, []float64{150, 1250})
	if err != nil {
		f.Fatal(err)
	}
	return s
}

// FuzzJournalScan hammers the v2 journal recovery scanner with
// arbitrary bytes: it must never panic, never claim a clean prefix
// longer than the input, and anything it does recover must satisfy the
// journal's row invariants (full planes, positive finite measurements,
// all-OK statuses).
func FuzzJournalScan(f *testing.F) {
	space := fuzzSpace(f)
	full := func() []byte {
		m, err := Run(testKernels(), space, Options{})
		if err != nil {
			f.Fatal(err)
		}
		var b []byte
		b = append(b, journalMagic...)
		sp, err := frameRecord(journalRecord{Space: &journalSpace{
			CUs: space.CUCounts, Core: space.CoreClocksMHz, Mem: space.MemClocksMHz,
		}})
		if err != nil {
			f.Fatal(err)
		}
		b = append(b, sp...)
		for r := range m.Kernels {
			row, err := rowRecord(m, r)
			if err != nil {
				f.Fatal(err)
			}
			b = append(b, row...)
		}
		return b
	}()
	f.Add(full)
	f.Add(full[:len(full)-7])        // torn tail
	f.Add([]byte(journalMagic))      // header only
	f.Add([]byte(journalMagic[:9]))  // torn magic
	f.Add([]byte("deadbeef 3 {}\n")) // frame without magic
	f.Add([]byte(nil))               // empty
	f.Fuzz(func(t *testing.T, data []byte) {
		m, good, _, err := scanJournal(data, space)
		if err != nil {
			// Only the wrong-space refusal may error; it must salvage
			// nothing.
			if m != nil {
				t.Fatal("scan errored but returned a matrix")
			}
			return
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("clean prefix %d outside [0,%d]", good, len(data))
		}
		if m == nil {
			return
		}
		nCfg := space.Size()
		seen := map[string]bool{}
		for r, k := range m.Kernels {
			if k == "" {
				t.Fatal("recovered row with empty kernel name")
			}
			if seen[k] {
				t.Fatalf("kernel %q recovered twice", k)
			}
			seen[k] = true
			if len(m.Throughput[r]) != nCfg || len(m.TimeNS[r]) != nCfg ||
				len(m.Bound[r]) != nCfg || len(m.Status[r]) != nCfg {
				t.Fatalf("row %d has ragged planes", r)
			}
			if !m.RowComplete(r) {
				t.Fatalf("recovered row %d not all StatusOK", r)
			}
			for c := 0; c < nCfg; c++ {
				if !(m.Throughput[r][c] > 0) || math.IsInf(m.Throughput[r][c], 0) {
					t.Fatalf("row %d cell %d throughput %g", r, c, m.Throughput[r][c])
				}
				if !(m.TimeNS[r][c] > 0) || math.IsInf(m.TimeNS[r][c], 0) {
					t.Fatalf("row %d cell %d time %g", r, c, m.TimeNS[r][c])
				}
			}
		}
	})
}

// FuzzReadCSV hammers both CSV loaders: no panics, and any matrix the
// lenient loader accepts must have sane statuses and measurements.
func FuzzReadCSV(f *testing.F) {
	space := fuzzSpace(f)
	const hdr = "kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound,status\n"
	f.Add(hdr)
	f.Add(hdr + "k,4,200,150,1.5,100,compute,ok\n")
	f.Add(hdr + "k,4,200,150,NaN,100,compute,ok\n")
	f.Add(hdr + "k,4,200,150,1.5,100,teapot,ok\n")
	f.Add("kernel,cus,core_mhz,mem_mhz,throughput,time_ns,bound\nk,4,200,150,1,1,compute\n")
	f.Add("not,a,sweep\n1,2,3\n")
	f.Fuzz(func(t *testing.T, data string) {
		m, err := ReadCSVPartial(strings.NewReader(data), space)
		if err == nil {
			nCfg := space.Size()
			for r, k := range m.Kernels {
				if k == "" {
					t.Fatal("accepted row with empty kernel name")
				}
				for c := 0; c < nCfg; c++ {
					s := m.Status[r][c]
					if s < StatusOK || s > StatusQuarantined {
						t.Fatalf("row %d cell %d has out-of-range status %d", r, c, s)
					}
					if s != StatusOK {
						continue
					}
					if !(m.Throughput[r][c] > 0) || math.IsInf(m.Throughput[r][c], 0) ||
						math.IsNaN(m.Throughput[r][c]) {
						t.Fatalf("OK cell (%d,%d) has throughput %g", r, c, m.Throughput[r][c])
					}
				}
			}
		}
		// The strict loader must agree with the lenient one about what
		// parses at all, and only ever accepts complete grids.
		if sm, serr := ReadCSV(strings.NewReader(data), space); serr == nil {
			if err != nil {
				t.Fatal("strict loader accepted what the lenient loader rejected")
			}
			for r := range sm.Kernels {
				for c := 0; c < space.Size(); c++ {
					if sm.Status[r][c] == StatusFailed && sm.Throughput[r][c] != 0 {
						t.Fatalf("failed cell (%d,%d) carries a measurement", r, c)
					}
				}
			}
		}
	})
}
